package plancheck

import (
	"bytes"
	"encoding/json"
	"fmt"

	"seco/internal/mart"
	"seco/internal/plan"
)

// CheckRoundTrip verifies JSON round-trip integrity: the plan must
// marshal, decode against the registry, and re-marshal to the same bytes.
// A plan that fails this cannot be shipped to an execution tier or stored
// without silently changing meaning.
func CheckRoundTrip(p *plan.Plan, reg *mart.Registry) *Report {
	r := &Report{}
	if p == nil {
		r.add(CodeStructure, "", Error, "plan is nil")
		return r
	}
	first, err := json.Marshal(p)
	if err != nil {
		r.add(CodeRoundTrip, "", Error, "marshal: %v", err)
		return r
	}
	decoded, err := plan.UnmarshalPlan(first, reg)
	if err != nil {
		r.add(CodeRoundTrip, "", Error, "decode of own encoding: %v", err)
		return r
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		r.add(CodeRoundTrip, "", Error, "re-marshal: %v", err)
		return r
	}
	if !bytes.Equal(first, second) {
		r.add(CodeRoundTrip, "", Error,
			"encoding is not stable under a decode/encode round trip (%d vs %d bytes)", len(first), len(second))
	}
	return r
}

// Unmarshal decodes a plan from JSON and verifies it, returning the plan
// together with the full report. The returned error is non-nil when
// decoding fails or the plan carries Error diagnostics; callers that want
// to inspect warnings (or render diagnostics themselves) read the report.
func Unmarshal(data []byte, reg *mart.Registry) (*plan.Plan, *Report, error) {
	p, err := plan.UnmarshalPlan(data, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("plancheck: %w", err)
	}
	r := Check(p)
	return p, r, r.Err()
}
