package plancheck

import (
	"seco/internal/plan"
)

// This file verifies the engine's compiled operator graph against the
// plan it was compiled from. The engine describes each compiled operator
// neutrally (OpDesc) so the check lives here, beside the other plan
// invariants, without plancheck importing the engine.

// CodeCompile: the compiled operator graph disagrees with the plan —
// a node compiled to the wrong operator kind, with the wrong inputs,
// missing, duplicated, or with a sharing decision that contradicts the
// plan's fan-out.
const CodeCompile = "plan-compile"

// Operator kinds a compiled plan node can map to, as reported in
// OpDesc.Kind.
const (
	// OpInput: the single-empty-combination source of the input node.
	OpInput = "input"
	// OpSelection: a filtering operator over one upstream.
	OpSelection = "selection"
	// OpScan: the service scan of a non-piped service node.
	OpScan = "scan"
	// OpPipe: the windowed pipe join of a piped service node.
	OpPipe = "pipe"
	// OpJoin: the parallel (tile-explored) join of a join node.
	OpJoin = "join"
	// OpMultiJoin: the n-ary ranked (sorted-intersection) join of a
	// multijoin node.
	OpMultiJoin = "multijoin"
)

// OpDesc describes one compiled operator.
type OpDesc struct {
	// Node is the plan node the operator implements.
	Node string
	// Kind is one of the Op* constants.
	Kind string
	// Inputs are the plan nodes whose operators feed this one, in wiring
	// order.
	Inputs []string
	// Shared reports that the operator is evaluated once and fanned out
	// to several consumers through tees.
	Shared bool
}

// OpGraph describes a compiled operator graph.
type OpGraph struct {
	// Root is the plan node whose operator the driver pulls (the output
	// node's single predecessor).
	Root string
	// Ops lists one description per compiled plan node.
	Ops []OpDesc
}

// CheckOpGraph verifies a compiled operator graph against its plan: every
// node except the output must compile to exactly one operator of the kind
// the node's plan kind dictates (service nodes split into scan vs. pipe on
// their binding sources), wired to exactly the node's plan predecessors,
// shared iff the node fans out to several plan successors, and the root
// must be the output node's predecessor. Any disagreement is an Error: a
// mis-compiled graph would execute a different query than the plan the
// caller validated.
func CheckOpGraph(p *plan.Plan, g OpGraph) *Report {
	r := &Report{}
	if p == nil {
		r.add(CodeCompile, "", Error, "plan is nil")
		return r
	}
	byNode := map[string]OpDesc{}
	for _, d := range g.Ops {
		if _, dup := byNode[d.Node]; dup {
			r.add(CodeCompile, d.Node, Error, "node compiled to more than one operator")
			continue
		}
		byNode[d.Node] = d
	}
	outID := ""
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		if n.Kind == plan.KindOutput {
			outID = id
			if _, ok := byNode[id]; ok {
				r.add(CodeCompile, id, Error, "output node has an operator; the driver pulls its predecessor directly")
				delete(byNode, id)
			}
			continue
		}
		d, ok := byNode[id]
		if !ok {
			r.add(CodeCompile, id, Error, "node has no compiled operator")
			continue
		}
		delete(byNode, id)
		if want := wantKind(n); d.Kind != want {
			r.add(CodeCompile, id, Error, "node compiled to a %q operator, want %q", d.Kind, want)
		}
		preds := p.Predecessors(id)
		if !sameStrings(d.Inputs, preds) {
			r.add(CodeCompile, id, Error, "operator wired to inputs %v, want plan predecessors %v", d.Inputs, preds)
		}
		if fanout := len(p.Successors(id)) > 1; d.Shared != fanout {
			if fanout {
				r.add(CodeCompile, id, Error, "node fans out to %d consumers but its operator is not shared", len(p.Successors(id)))
			} else {
				r.add(CodeCompile, id, Error, "single-consumer node compiled to a shared operator")
			}
		}
	}
	for id := range byNode {
		r.add(CodeCompile, id, Error, "operator for unknown plan node")
	}
	if outID != "" {
		if preds := p.Predecessors(outID); len(preds) == 1 && g.Root != preds[0] {
			r.add(CodeCompile, outID, Error, "graph root is %q, want the output's predecessor %q", g.Root, preds[0])
		}
	}
	return r
}

// wantKind maps a plan node to the operator kind its compilation must
// produce.
func wantKind(n *plan.Node) string {
	switch n.Kind {
	case plan.KindInput:
		return OpInput
	case plan.KindSelection:
		return OpSelection
	case plan.KindService:
		if n.PipedFrom() {
			return OpPipe
		}
		return OpScan
	case plan.KindJoin:
		return OpJoin
	case plan.KindMultiJoin:
		return OpMultiJoin
	}
	return ""
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
