// Package plancheck is a semantic analyzer over plan.Plan: it verifies
// the invariants the execution engine's correctness arguments take for
// granted — DAG acyclicity, single-input/single-output topology, binding
// coverage (every piped input produced by an upstream service), strategy
// legality per node kind, chunk-flow consistency against the annotation
// engine, and the monotone non-negative ranking weights required by the
// streaming executor's top-k threshold bound — and reports violations as
// structured diagnostics rather than a bare error.
//
// plan.Validate remains the cheap structural gate used while plans are
// being built; plancheck is the pre-execution verifier: the optimizer
// asserts its outputs with it, the engine refuses plans that fail it (see
// engine.Options.SkipValidate), and plancheck.Unmarshal guards plans
// loaded from JSON.
package plancheck

import (
	"fmt"
	"strings"

	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/query"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Error marks an invariant violation that makes execution unsound or
	// impossible; the engine refuses plans with Error diagnostics.
	Error Severity = iota
	// Warning marks a suspicious construct that does not compromise
	// soundness (the engine degrades gracefully) but likely defeats the
	// plan's intent.
	Warning
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic codes. The broken-plan corpus in plancheck_test.go pins one
// corpus entry to each code; DESIGN.md documents the catalogue.
const (
	// CodeStructure: K, node arities, input/output uniqueness.
	CodeStructure = "plan-structure"
	// CodeCycle: the plan graph is not a DAG.
	CodeCycle = "plan-cycle"
	// CodeConnectivity: a node is unreachable from the input node or
	// cannot reach the output node.
	CodeConnectivity = "plan-connectivity"
	// CodeStats: a service node carries invalid statistics or an
	// out-of-range selectivity.
	CodeStats = "plan-stats"
	// CodeStrategy: an illegal join strategy, or strategy parameters on a
	// node kind that ignores them.
	CodeStrategy = "plan-strategy"
	// CodeBinding: an input attribute of a service invocation is not
	// covered, or a piped binding's source service is not an ancestor.
	CodeBinding = "plan-binding"
	// CodeFetch: a fetching-factor assignment that contradicts the plan's
	// chunk structure, or an annotation inconsistent with plan.Annotate.
	CodeFetch = "plan-fetch"
	// CodeWeights: ranking weights that violate the monotone-bound
	// requirement of top-k early termination, or weights referencing
	// aliases absent from the plan.
	CodeWeights = "plan-weights"
	// CodeRoundTrip: the plan does not survive a JSON round-trip.
	CodeRoundTrip = "plan-roundtrip"
	// CodeMultiJoin: a multi-way join node violates the n-ary legality
	// rules — a cross-branch predicate outside the atomic-equality /
	// bounded-proximity classes, a branch not bound by any cross
	// predicate, or a predicate referencing an alias no branch produces.
	CodeMultiJoin = "plan-multijoin"
)

// Diagnostic is one verified violation.
type Diagnostic struct {
	// Code is one of the Code* constants.
	Code string
	// Node is the offending plan node ID ("" for plan-level findings).
	Node string
	// Severity grades the finding.
	Severity Severity
	// Message describes the violation.
	Message string
}

// String renders "code node: severity: message".
func (d Diagnostic) String() string {
	loc := d.Code
	if d.Node != "" {
		loc += " " + d.Node
	}
	return fmt.Sprintf("%s: %s: %s", loc, d.Severity, d.Message)
}

// Report collects the diagnostics of one check.
type Report struct {
	Diags []Diagnostic
}

func (r *Report) add(code, node string, sev Severity, format string, args ...any) {
	r.Diags = append(r.Diags, Diagnostic{
		Code: code, Node: node, Severity: sev,
		Message: fmt.Sprintf(format, args...),
	})
}

// Merge appends the diagnostics of another report.
func (r *Report) Merge(o *Report) {
	if o != nil {
		r.Diags = append(r.Diags, o.Diags...)
	}
}

// Errors returns the Error-severity diagnostics.
func (r *Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the plan passed (no Error diagnostics; warnings are
// allowed).
func (r *Report) OK() bool { return len(r.Errors()) == 0 }

// HasCode reports whether any diagnostic carries the given code.
func (r *Report) HasCode(code string) bool {
	for _, d := range r.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// Err aggregates the Error diagnostics into a single error, or nil when
// the plan passed.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	parts := make([]string, len(errs))
	for i, d := range errs {
		parts[i] = d.String()
	}
	return fmt.Errorf("plancheck: %s", strings.Join(parts, "; "))
}

// Check verifies the static invariants of a plan and returns every
// violation found. It never panics, whatever the input: malformed graphs
// (as produced by hand or by UnmarshalPlan, which performs no semantic
// validation) yield diagnostics instead.
func Check(p *plan.Plan) *Report {
	r := &Report{}
	if p == nil {
		r.add(CodeStructure, "", Error, "plan is nil")
		return r
	}
	checkStructure(p, r)
	order, err := p.TopoSort()
	if err != nil {
		r.add(CodeCycle, "", Error, "%v", err)
		// Everything below needs a topological order; stop here.
		return r
	}
	checkConnectivity(p, order, r)
	checkBindings(p, r)
	if r.OK() {
		// The annotation engine assumes the arities verified above
		// (e.g. joins with exactly two predecessors); only consult it on
		// plans that are structurally sound so far.
		if _, err := plan.Annotate(p, nil); err != nil {
			r.add(CodeFetch, "", Error, "annotation: %v", err)
		}
	}
	return r
}

// checkStructure verifies K, node-kind arities and per-node parameters —
// the diagnostics counterpart of plan.Validate's structural gate, plus the
// strategy-legality-per-kind rules Validate does not cover.
func checkStructure(p *plan.Plan, r *Report) {
	if p.K <= 0 {
		r.add(CodeStructure, "", Error, "K must be positive, got %d", p.K)
	}
	var inputs, outputs int
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		preds, succs := p.Predecessors(id), p.Successors(id)
		switch n.Kind {
		case plan.KindInput:
			inputs++
			if len(preds) != 0 {
				r.add(CodeStructure, id, Error, "input node has %d predecessors", len(preds))
			}
		case plan.KindOutput:
			outputs++
			if len(succs) != 0 {
				r.add(CodeStructure, id, Error, "output node has %d successors", len(succs))
			}
			if len(preds) != 1 {
				r.add(CodeStructure, id, Error, "output node needs exactly one predecessor, has %d", len(preds))
			}
		case plan.KindJoin:
			if len(preds) != 2 {
				r.add(CodeStructure, id, Error, "join node needs exactly two predecessors, has %d", len(preds))
			}
			if err := n.Strategy.Validate(); err != nil {
				r.add(CodeStrategy, id, Error, "%v", err)
			}
			if n.JoinSelectivity <= 0 || n.JoinSelectivity > 1 {
				r.add(CodeStats, id, Error, "join selectivity %v out of (0,1]", n.JoinSelectivity)
			}
		case plan.KindMultiJoin:
			if len(preds) < 2 {
				r.add(CodeStructure, id, Error, "multijoin node needs at least two predecessors, has %d", len(preds))
			}
			if n.JoinSelectivity <= 0 || n.JoinSelectivity > 1 {
				r.add(CodeStats, id, Error, "multijoin selectivity %v out of (0,1]", n.JoinSelectivity)
			}
			checkStrategyUnused(n, id, r)
			checkMultiJoin(p, n, id, r)
		case plan.KindService:
			if len(preds) != 1 {
				r.add(CodeStructure, id, Error, "service node needs exactly one predecessor, has %d", len(preds))
			}
			if n.Interface == nil {
				r.add(CodeStructure, id, Error, "service node has no interface")
			}
			if n.Alias == "" {
				r.add(CodeStructure, id, Error, "service node has no alias")
			}
			if err := n.Stats.Validate(); err != nil {
				r.add(CodeStats, id, Error, "%v", err)
			}
			if n.PipeSelectivity < 0 || n.PipeSelectivity > 1 {
				r.add(CodeStats, id, Error, "pipe selectivity %v out of [0,1]", n.PipeSelectivity)
			}
			if n.Limit < 0 {
				r.add(CodeStats, id, Error, "negative per-invocation limit %d", n.Limit)
			}
			checkStrategyUnused(n, id, r)
		case plan.KindSelection:
			if len(preds) != 1 {
				r.add(CodeStructure, id, Error, "selection node needs exactly one predecessor, has %d", len(preds))
			}
			if n.Selectivity <= 0 || n.Selectivity > 1 {
				r.add(CodeStats, id, Error, "selection selectivity %v out of (0,1]", n.Selectivity)
			}
			checkStrategyUnused(n, id, r)
		default:
			r.add(CodeStructure, id, Error, "unknown node kind %d", int(n.Kind))
		}
	}
	if inputs != 1 {
		r.add(CodeStructure, "", Error, "need exactly one input node, have %d", inputs)
	}
	if outputs != 1 {
		r.add(CodeStructure, "", Error, "need exactly one output node, have %d", outputs)
	}
	// Service aliases must be unique: the engine keys counters, weights
	// and combination components by alias.
	byAlias := map[string]string{}
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		if n.Kind != plan.KindService || n.Alias == "" {
			continue
		}
		if prev, dup := byAlias[n.Alias]; dup {
			r.add(CodeStructure, id, Error, "alias %q already used by node %q", n.Alias, prev)
			continue
		}
		byAlias[n.Alias] = id
	}
}

// checkStrategyUnused flags parallel-join strategy parameters on node
// kinds that ignore them — a sign the plan author confused pipe and
// parallel placement.
func checkStrategyUnused(n *plan.Node, id string, r *Report) {
	s := n.Strategy
	if s.Invocation != 0 || s.Completion != 0 || s.H != 0 || s.RatioX != 0 || s.RatioY != 0 || s.FlushOnExhaust {
		r.add(CodeStrategy, id, Warning,
			"%s node carries a parallel-join strategy (%s), which only join nodes use", n.Kind, s)
	}
}

// checkMultiJoin verifies the n-ary legality rules on a multi-way join
// node: every cross-branch predicate must be an atomic equality or
// bounded proximity (with at least one equality edge, the posting-list
// key), every predicate must reference aliases some branch produces, and
// every branch must be bound by at least one legal cross predicate — an
// unbound branch would degenerate into a cross product the ranked
// intersection cannot bound.
func checkMultiJoin(p *plan.Plan, n *plan.Node, id string, r *Report) {
	if err := join.LegalMultiway(n.JoinPreds); err != nil {
		r.add(CodeMultiJoin, id, Error, "%v", err)
	}
	preds := p.Predecessors(id)
	if len(preds) < 2 {
		return // arity already a CodeStructure error
	}
	branches := make([]map[string]bool, len(preds))
	known := map[string]bool{}
	for i, pr := range preds {
		branches[i] = branchAliases(p, pr)
		for a := range branches[i] {
			known[a] = true
		}
	}
	for _, jp := range n.JoinPreds {
		if jp.Right.Kind != query.TermPath {
			continue // already flagged by LegalMultiway
		}
		if !known[jp.Left.Alias] {
			r.add(CodeMultiJoin, id, Error, "predicate %s references alias %q, which no branch produces", jp, jp.Left.Alias)
		}
		if !known[jp.Right.Path.Alias] {
			r.add(CodeMultiJoin, id, Error, "predicate %s references alias %q, which no branch produces", jp, jp.Right.Path.Alias)
		}
	}
	for _, i := range join.CoverMultiway(branches, n.JoinPreds) {
		r.add(CodeMultiJoin, id, Error,
			"branch %q is not bound by any cross-branch predicate", preds[i])
	}
}

// branchAliases returns the aliases of the service nodes in one branch of
// a multi-way join: the branch root itself plus everything upstream.
func branchAliases(p *plan.Plan, id string) map[string]bool {
	out := ancestorAliases(p, id)
	if n, ok := p.Node(id); ok && n.Kind == plan.KindService {
		out[n.Alias] = true
	}
	return out
}

// checkConnectivity verifies that every node lies on an input → output
// path.
func checkConnectivity(p *plan.Plan, order []string, r *Report) {
	reach := map[string]bool{}
	for _, id := range order {
		n, _ := p.Node(id)
		if n.Kind == plan.KindInput || anyIn(reach, p.Predecessors(id)) {
			reach[id] = true
		}
	}
	coreach := map[string]bool{}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n, _ := p.Node(id)
		if n.Kind == plan.KindOutput || anyIn(coreach, p.Successors(id)) {
			coreach[id] = true
		}
	}
	for _, id := range order {
		if !reach[id] {
			r.add(CodeConnectivity, id, Error, "node not reachable from the input node")
		}
		if !coreach[id] {
			r.add(CodeConnectivity, id, Error, "node cannot reach the output node")
		}
	}
}

func anyIn(set map[string]bool, ids []string) bool {
	for _, id := range ids {
		if set[id] {
			return true
		}
	}
	return false
}

// checkBindings verifies binding coverage for every service invocation:
// each input path of the bound interface must be covered by a binding, and
// each piped (BindJoin) binding must be fed by a service node that is a
// strict ancestor in the DAG — otherwise the invocation would block on a
// value no upstream node produces.
func checkBindings(p *plan.Plan, r *Report) {
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		if n.Kind != plan.KindService {
			continue
		}
		anc := ancestorAliases(p, id)
		covered := map[string]bool{}
		for _, b := range n.Bindings {
			covered[b.Path] = true
			if b.Source.Kind != query.BindJoin {
				continue
			}
			from := b.Source.From.Alias
			if from == n.Alias {
				r.add(CodeBinding, id, Error, "input %q piped from the node's own alias %q", b.Path, from)
				continue
			}
			if !anc[from] {
				r.add(CodeBinding, id, Error,
					"input %q piped from %q, which is not an upstream service of this node", b.Path, from)
			}
		}
		if n.Interface == nil {
			continue // already a CodeStructure error
		}
		for _, in := range n.Interface.InputPaths() {
			if !covered[in] {
				r.add(CodeBinding, id, Error,
					"input attribute %q of interface %s has no binding", in, n.Interface.Name)
			}
		}
	}
}

// ancestorAliases returns the aliases of every service node upstream of
// the given node.
func ancestorAliases(p *plan.Plan, id string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]bool{}
	stack := append([]string(nil), p.Predecessors(id)...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if n, ok := p.Node(cur); ok && n.Kind == plan.KindService {
			out[n.Alias] = true
		}
		stack = append(stack, p.Predecessors(cur)...)
	}
	return out
}

// CheckAnnotated verifies a fully instantiated plan: the plan invariants
// plus chunk-flow consistency — the fetching-factor assignment must refer
// to chunked service nodes with factors ≥ 1, and the stored annotations
// must agree with what plan.Annotate computes for that assignment (a stale
// or hand-edited annotation would desynchronize the cost model from the
// execution).
func CheckAnnotated(a *plan.Annotated) *Report {
	r := &Report{}
	if a == nil || a.Plan == nil {
		r.add(CodeStructure, "", Error, "annotated plan is nil")
		return r
	}
	r.Merge(Check(a.Plan))
	for id, f := range a.Fetches {
		n, ok := a.Plan.Node(id)
		switch {
		case !ok:
			r.add(CodeFetch, id, Error, "fetching factor for unknown node")
		case n.Kind != plan.KindService:
			r.add(CodeFetch, id, Error, "fetching factor on a %s node", n.Kind)
		case !n.Stats.Chunked():
			r.add(CodeFetch, id, Error, "fetching factor %d on a non-chunked service", f)
		case f < 1:
			r.add(CodeFetch, id, Error, "fetching factor %d below 1", f)
		}
	}
	if !r.OK() {
		return r
	}
	fresh, err := plan.Annotate(a.Plan, a.Fetches)
	if err != nil {
		r.add(CodeFetch, "", Error, "annotation: %v", err)
		return r
	}
	const tol = 1e-6
	for _, id := range a.Plan.NodeIDs() {
		got, want := a.Ann[id], fresh.Ann[id]
		if !closeEnough(got.TIn, want.TIn, tol) || !closeEnough(got.TOut, want.TOut, tol) ||
			!closeEnough(got.Calls, want.Calls, tol) || got.Fetches != want.Fetches {
			r.add(CodeFetch, id, Error,
				"stale annotation: stored (tin=%g tout=%g calls=%g fetches=%d), recomputed (tin=%g tout=%g calls=%g fetches=%d)",
				got.TIn, got.TOut, got.Calls, got.Fetches, want.TIn, want.TOut, want.Calls, want.Fetches)
		}
	}
	return r
}

func closeEnough(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return d <= tol*scale
}

// Exec describes one intended execution of a plan, for CheckExec.
type Exec struct {
	// Weights is the ranking function (alias → weight).
	Weights map[string]float64
	// TargetK is the requested top-K truncation (0 = full drain).
	TargetK int
	// Streaming reports whether the streaming executor (with its top-k
	// early-termination bound) will run; the materializing baseline ranks
	// after a full drain and needs no monotonicity.
	Streaming bool
	// Degrade reports that graceful degradation to partial results was
	// requested; only the streaming executor can honour it.
	Degrade bool
}

// CheckExec verifies the execution-time parameters against the plan: the
// top-k threshold bound of the streaming executor is only sound for
// monotone ranking functions, i.e. non-negative weights, so a negative
// weight combined with TargetK under streaming is an error. Weights
// referencing aliases absent from the plan are flagged as warnings (they
// silently contribute nothing).
func CheckExec(p *plan.Plan, e Exec) *Report {
	r := &Report{}
	if p == nil {
		r.add(CodeStructure, "", Error, "plan is nil")
		return r
	}
	if e.TargetK < 0 {
		r.add(CodeWeights, "", Error, "negative TargetK %d", e.TargetK)
	}
	if e.Degrade && !e.Streaming {
		r.add(CodeStructure, "", Warning,
			"Degrade requested under the materializing executor, which has no partial state to return; failures will surface as errors")
	}
	aliases := map[string]bool{}
	for _, id := range p.NodeIDs() {
		if n, _ := p.Node(id); n.Kind == plan.KindService {
			aliases[n.Alias] = true
		}
	}
	for alias, w := range e.Weights {
		if w < 0 && e.TargetK > 0 && e.Streaming {
			r.add(CodeWeights, "", Error,
				"negative weight %g for alias %q breaks the monotone top-%d stopping bound", w, alias, e.TargetK)
		}
		if !aliases[alias] {
			r.add(CodeWeights, "", Warning, "weight for alias %q, which no service node produces", alias)
		}
	}
	return r
}
