package plancheck_test

import (
	"testing"

	"seco/internal/plan"
	"seco/internal/plancheck"
)

// describePlan builds the operator-graph description a faithful compiler
// would produce, to serve as the valid baseline the mutations break.
func describePlan(t *testing.T, p *plan.Plan) plancheck.OpGraph {
	t.Helper()
	g := plancheck.OpGraph{}
	for _, id := range p.NodeIDs() {
		n, ok := p.Node(id)
		if !ok {
			t.Fatalf("node %q missing", id)
		}
		var kind string
		switch n.Kind {
		case plan.KindInput:
			kind = plancheck.OpInput
		case plan.KindSelection:
			kind = plancheck.OpSelection
		case plan.KindService:
			kind = plancheck.OpScan
			if n.PipedFrom() {
				kind = plancheck.OpPipe
			}
		case plan.KindJoin:
			kind = plancheck.OpJoin
		case plan.KindMultiJoin:
			kind = plancheck.OpMultiJoin
		case plan.KindOutput:
			g.Root = p.Predecessors(id)[0]
			continue
		default:
			t.Fatalf("unexpected node kind %v", n.Kind)
		}
		g.Ops = append(g.Ops, plancheck.OpDesc{
			Node:   id,
			Kind:   kind,
			Inputs: p.Predecessors(id),
			Shared: len(p.Successors(id)) > 1,
		})
	}
	return g
}

func TestCheckOpGraphAcceptsFaithfulCompilation(t *testing.T) {
	p, _ := movieFixture(t)
	rep := plancheck.CheckOpGraph(p, describePlan(t, p))
	if !rep.OK() {
		t.Fatalf("faithful graph rejected: %v", rep.Diags)
	}
}

func TestCheckOpGraphRejectsMiscompilations(t *testing.T) {
	p, _ := movieFixture(t)
	base := describePlan(t, p)

	cases := []struct {
		name   string
		mutate func(g *plancheck.OpGraph)
	}{
		{"missing-operator", func(g *plancheck.OpGraph) {
			g.Ops = g.Ops[1:]
		}},
		{"duplicate-operator", func(g *plancheck.OpGraph) {
			g.Ops = append(g.Ops, g.Ops[0])
		}},
		{"wrong-kind", func(g *plancheck.OpGraph) {
			for i := range g.Ops {
				if g.Ops[i].Kind == plancheck.OpScan {
					g.Ops[i].Kind = plancheck.OpPipe
					return
				}
			}
			t.Fatal("no scan operator in the fixture")
		}},
		{"wrong-inputs", func(g *plancheck.OpGraph) {
			for i := range g.Ops {
				if len(g.Ops[i].Inputs) > 0 {
					g.Ops[i].Inputs = append([]string{g.Ops[i].Node}, g.Ops[i].Inputs[1:]...)
					return
				}
			}
			t.Fatal("no wired operator in the fixture")
		}},
		{"wrong-sharing", func(g *plancheck.OpGraph) {
			g.Ops[0].Shared = !g.Ops[0].Shared
		}},
		{"wrong-root", func(g *plancheck.OpGraph) {
			g.Root = g.Ops[0].Node
			if g.Root == base.Root {
				g.Root = "nowhere"
			}
		}},
		{"unknown-node", func(g *plancheck.OpGraph) {
			g.Ops = append(g.Ops, plancheck.OpDesc{Node: "ghost", Kind: plancheck.OpScan})
		}},
		{"operator-for-output", func(g *plancheck.OpGraph) {
			for _, id := range p.NodeIDs() {
				if n, _ := p.Node(id); n.Kind == plan.KindOutput {
					g.Ops = append(g.Ops, plancheck.OpDesc{Node: id, Kind: plancheck.OpInput})
					return
				}
			}
			t.Fatal("no output node in the fixture")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := plancheck.OpGraph{Root: base.Root, Ops: append([]plancheck.OpDesc(nil), base.Ops...)}
			tc.mutate(&g)
			rep := plancheck.CheckOpGraph(p, g)
			if rep.OK() {
				t.Fatal("mis-compiled graph accepted")
			}
			if !rep.HasCode(plancheck.CodeCompile) {
				t.Fatalf("want %s diagnostics, got: %v", plancheck.CodeCompile, rep.Diags)
			}
		})
	}

	if rep := plancheck.CheckOpGraph(nil, base); rep.OK() || !rep.HasCode(plancheck.CodeCompile) {
		t.Error("nil plan accepted")
	}
}

// TestCheckOpGraphMultiway verifies the compiled-graph check on the
// n-ary topology: the faithful triangle compilation passes, and a
// compiler that silently lowered the multi-way node to a binary join
// operator is rejected.
func TestCheckOpGraphMultiway(t *testing.T) {
	p, mj := triangleFixture(t)
	base := describePlan(t, p)
	if rep := plancheck.CheckOpGraph(p, base); !rep.OK() {
		t.Fatalf("faithful triangle graph rejected: %v", rep.Diags)
	}

	g := plancheck.OpGraph{Root: base.Root, Ops: append([]plancheck.OpDesc(nil), base.Ops...)}
	for i := range g.Ops {
		if g.Ops[i].Node == mj {
			g.Ops[i].Kind = plancheck.OpJoin
		}
	}
	rep := plancheck.CheckOpGraph(p, g)
	if rep.OK() {
		t.Fatal("binary-lowered multijoin accepted")
	}
	if !rep.HasCode(plancheck.CodeCompile) {
		t.Fatalf("want %s diagnostics, got: %v", plancheck.CodeCompile, rep.Diags)
	}
}
