package plancheck_test

import (
	"fmt"
	"testing"

	"seco/internal/cost"
	"seco/internal/join"
	"seco/internal/mart"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/plancheck"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/synth"
	"seco/internal/types"
)

// movieFixture returns the running-example plan and its registry.
func movieFixture(t *testing.T) (*plan.Plan, *mart.Registry) {
	t.Helper()
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	return p, reg
}

// triangleFixture returns the optimized cyclic triangle plan and the ID
// of its multi-way join node.
func triangleFixture(t *testing.T) (*plan.Plan, string) {
	t.Helper()
	reg, err := mart.TriangleScenario()
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.TriangleExample(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTriangleWorld(reg, synth.TriangleConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]service.Stats{}
	for alias, svc := range world.Services() {
		stats[alias] = svc.Stats()
	}
	res, err := optimizer.Optimize(q, reg, optimizer.Options{
		K: 5, Metric: cost.RequestResponse{}, Stats: stats, FixedInterfaces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Plan.NodeIDs() {
		if n, _ := res.Plan.Node(id); n.Kind == plan.KindMultiJoin {
			return res.Plan, id
		}
	}
	t.Fatal("optimizer did not choose the multi-way plan for the triangle query")
	return nil, ""
}

// touchesAlias reports whether a cross-branch predicate references the
// alias on either side.
func touchesAlias(p query.Predicate, alias string) bool {
	if p.Left.Alias == alias {
		return true
	}
	return p.Right.Kind == query.TermPath && p.Right.Path.Alias == alias
}

func mutate(t *testing.T, p *plan.Plan, id string, f func(n *plan.Node)) *plan.Plan {
	t.Helper()
	c := p.Clone()
	n, ok := c.Node(id)
	if !ok {
		t.Fatalf("fixture node %q missing", id)
	}
	f(n)
	return c
}

// TestBrokenPlanCorpus drives plancheck over a corpus of deliberately
// broken plans, asserting each is rejected with the documented diagnostic
// code.
func TestBrokenPlanCorpus(t *testing.T) {
	base, _ := movieFixture(t)

	corpus := []struct {
		name string
		code string
		// warnOnly marks violations that degrade gracefully at runtime:
		// they must be diagnosed but do not reject the plan.
		warnOnly bool
		rep      func(t *testing.T) *plancheck.Report
	}{
		{"cycle", plancheck.CodeCycle, false, func(t *testing.T) *plancheck.Report {
			c := base.Clone()
			// R → M closes the loop M → MS → R → M.
			if err := c.Connect("R", "M"); err != nil {
				t.Fatal(err)
			}
			return plancheck.Check(c)
		}},
		{"uncovered-pipe-binding", plancheck.CodeBinding, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "R", func(n *plan.Node) {
				for i := range n.Bindings {
					if n.Bindings[i].Source.Kind == query.BindJoin {
						n.Bindings[i].Source.From.Alias = "Z" // no such upstream service
					}
				}
			})
			return plancheck.Check(c)
		}},
		{"missing-input-binding", plancheck.CodeBinding, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "R", func(n *plan.Node) {
				n.Bindings = nil
			})
			return plancheck.Check(c)
		}},
		{"self-piped-binding", plancheck.CodeBinding, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "R", func(n *plan.Node) {
				for i := range n.Bindings {
					if n.Bindings[i].Source.Kind == query.BindJoin {
						n.Bindings[i].Source.From.Alias = "R"
					}
				}
			})
			return plancheck.Check(c)
		}},
		{"illegal-strategy", plancheck.CodeStrategy, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "MS", func(n *plan.Node) {
				n.Strategy = join.Strategy{Invocation: join.NestedLoop, H: 0}
			})
			return plancheck.Check(c)
		}},
		{"strategy-on-service-node", plancheck.CodeStrategy, true, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "M", func(n *plan.Node) {
				n.Strategy = join.Strategy{Invocation: join.MergeScan, RatioX: 3, RatioY: 5}
			})
			return plancheck.Check(c)
		}},
		{"join-selectivity-out-of-range", plancheck.CodeStats, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "MS", func(n *plan.Node) {
				n.JoinSelectivity = 1.5
			})
			return plancheck.Check(c)
		}},
		{"invalid-service-stats", plancheck.CodeStats, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "T", func(n *plan.Node) {
				n.Stats.ChunkSize = -1
			})
			return plancheck.Check(c)
		}},
		{"duplicate-alias", plancheck.CodeStructure, false, func(t *testing.T) *plancheck.Report {
			c := mutate(t, base, "T", func(n *plan.Node) {
				n.Alias = "M"
			})
			return plancheck.Check(c)
		}},
		{"join-arity", plancheck.CodeStructure, false, func(t *testing.T) *plancheck.Report {
			p := plan.New(5)
			for _, n := range []*plan.Node{
				{ID: "input", Kind: plan.KindInput},
				{ID: "J", Kind: plan.KindJoin, Strategy: join.Strategy{Invocation: join.MergeScan}, JoinSelectivity: 0.5},
				{ID: "output", Kind: plan.KindOutput},
			} {
				if err := p.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
			for _, arc := range [][2]string{{"input", "J"}, {"J", "output"}} {
				if err := p.Connect(arc[0], arc[1]); err != nil {
					t.Fatal(err)
				}
			}
			return plancheck.Check(p)
		}},
		{"multijoin-arity", plancheck.CodeStructure, false, func(t *testing.T) *plancheck.Report {
			// A multi-way join with a single predecessor: n-ary in name
			// only, rejected before the legality rules even apply.
			p := plan.New(5)
			for _, n := range []*plan.Node{
				{ID: "input", Kind: plan.KindInput},
				{ID: "MJ", Kind: plan.KindMultiJoin, JoinSelectivity: 0.5},
				{ID: "output", Kind: plan.KindOutput},
			} {
				if err := p.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
			for _, arc := range [][2]string{{"input", "MJ"}, {"MJ", "output"}} {
				if err := p.Connect(arc[0], arc[1]); err != nil {
					t.Fatal(err)
				}
			}
			return plancheck.Check(p)
		}},
		{"multijoin-unbound-branch", plancheck.CodeMultiJoin, false, func(t *testing.T) *plancheck.Report {
			tri, mj := triangleFixture(t)
			c := mutate(t, tri, mj, func(n *plan.Node) {
				// Dropping every predicate that touches P leaves its branch
				// unbound: the intersection would cross-product it.
				kept := n.JoinPreds[:0:0]
				for _, jp := range n.JoinPreds {
					if !touchesAlias(jp, "P") {
						kept = append(kept, jp)
					}
				}
				n.JoinPreds = kept
			})
			return plancheck.Check(c)
		}},
		{"multijoin-illegal-cross-predicate", plancheck.CodeMultiJoin, false, func(t *testing.T) *plancheck.Report {
			tri, mj := triangleFixture(t)
			c := mutate(t, tri, mj, func(n *plan.Node) {
				// `like` is neither an equality nor a bounded proximity, so
				// the node cannot drive a posting-list intersection.
				preds := append([]query.Predicate(nil), n.JoinPreds...)
				preds[0].Op = types.OpLike
				n.JoinPreds = preds
			})
			return plancheck.Check(c)
		}},
		{"multijoin-no-equality-edge", plancheck.CodeMultiJoin, false, func(t *testing.T) *plancheck.Report {
			tri, mj := triangleFixture(t)
			c := mutate(t, tri, mj, func(n *plan.Node) {
				// All-proximity predicate sets have no posting-list key.
				preds := append([]query.Predicate(nil), n.JoinPreds...)
				for i := range preds {
					if preds[i].Op == types.OpEq {
						preds[i].Op = types.OpLe
					}
				}
				n.JoinPreds = preds
			})
			return plancheck.Check(c)
		}},
		{"multijoin-alias-outside-branches", plancheck.CodeMultiJoin, false, func(t *testing.T) *plancheck.Report {
			tri, mj := triangleFixture(t)
			c := mutate(t, tri, mj, func(n *plan.Node) {
				preds := append([]query.Predicate(nil), n.JoinPreds...)
				preds[0].Left.Alias = "Z" // no branch produces Z
				n.JoinPreds = preds
			})
			return plancheck.Check(c)
		}},
		{"strategy-on-multijoin-node", plancheck.CodeStrategy, true, func(t *testing.T) *plancheck.Report {
			tri, mj := triangleFixture(t)
			c := mutate(t, tri, mj, func(n *plan.Node) {
				n.Strategy = join.Strategy{Invocation: join.MergeScan, RatioX: 3, RatioY: 5}
			})
			return plancheck.Check(c)
		}},
		{"nonpositive-k", plancheck.CodeStructure, false, func(t *testing.T) *plancheck.Report {
			p := plan.New(0)
			for _, n := range []*plan.Node{
				{ID: "input", Kind: plan.KindInput},
				{ID: "output", Kind: plan.KindOutput},
			} {
				if err := p.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Connect("input", "output"); err != nil {
				t.Fatal(err)
			}
			return plancheck.Check(p)
		}},
		{"dead-end-node", plancheck.CodeConnectivity, false, func(t *testing.T) *plancheck.Report {
			p := plan.New(5)
			for _, n := range []*plan.Node{
				{ID: "input", Kind: plan.KindInput},
				{ID: "output", Kind: plan.KindOutput},
				{ID: "sigma", Kind: plan.KindSelection, Selectivity: 0.5},
			} {
				if err := p.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
			for _, arc := range [][2]string{{"input", "output"}, {"input", "sigma"}} {
				if err := p.Connect(arc[0], arc[1]); err != nil {
					t.Fatal(err)
				}
			}
			return plancheck.Check(p)
		}},
		{"fetch-on-join-node", plancheck.CodeFetch, false, func(t *testing.T) *plancheck.Report {
			a, err := plan.Annotate(base, plan.Fig10Fetches())
			if err != nil {
				t.Fatal(err)
			}
			a.Fetches["MS"] = 2
			return plancheck.CheckAnnotated(a)
		}},
		{"fetch-below-one", plancheck.CodeFetch, false, func(t *testing.T) *plancheck.Report {
			a, err := plan.Annotate(base, plan.Fig10Fetches())
			if err != nil {
				t.Fatal(err)
			}
			a.Fetches["M"] = 0
			return plancheck.CheckAnnotated(a)
		}},
		{"stale-annotation", plancheck.CodeFetch, false, func(t *testing.T) *plancheck.Report {
			a, err := plan.Annotate(base, plan.Fig10Fetches())
			if err != nil {
				t.Fatal(err)
			}
			ann := a.Ann["R"]
			ann.Calls *= 7
			a.Ann["R"] = ann
			return plancheck.CheckAnnotated(a)
		}},
		{"negative-weight-with-target-k", plancheck.CodeWeights, false, func(t *testing.T) *plancheck.Report {
			return plancheck.CheckExec(base, plancheck.Exec{
				Weights:   map[string]float64{"M": 1, "T": -0.5},
				TargetK:   5,
				Streaming: true,
			})
		}},
		{"roundtrip-against-wrong-registry", plancheck.CodeRoundTrip, false, func(t *testing.T) *plancheck.Report {
			other, err := mart.TravelScenario()
			if err != nil {
				t.Fatal(err)
			}
			return plancheck.CheckRoundTrip(base, other)
		}},
		{"miscompiled-operator-graph", plancheck.CodeCompile, false, func(t *testing.T) *plancheck.Report {
			// A compiler that dropped every operator and points the root at
			// a node that is not the output's predecessor.
			return plancheck.CheckOpGraph(base, plancheck.OpGraph{Root: "M"})
		}},
	}

	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			rep := tc.rep(t)
			if tc.warnOnly {
				if !rep.OK() {
					t.Fatalf("warning-level violation rejected the plan: %v", rep.Err())
				}
			} else if rep.OK() {
				t.Fatalf("broken plan accepted; diagnostics: %v", rep.Diags)
			}
			if !rep.HasCode(tc.code) {
				t.Fatalf("expected diagnostic code %q, got: %v", tc.code, rep.Diags)
			}
		})
	}
}

// TestWarningsDoNotReject verifies Warning-severity diagnostics leave the
// plan acceptable: a weight for an alias the plan does not produce is
// suspicious but sound.
func TestWarningsDoNotReject(t *testing.T) {
	base, _ := movieFixture(t)
	rep := plancheck.CheckExec(base, plancheck.Exec{
		Weights:   map[string]float64{"M": 1, "ghost": 1},
		TargetK:   5,
		Streaming: true,
	})
	if !rep.OK() {
		t.Fatalf("warning-only report rejected the plan: %v", rep.Err())
	}
	if !rep.HasCode(plancheck.CodeWeights) {
		t.Fatalf("expected a %s warning, got: %v", plancheck.CodeWeights, rep.Diags)
	}
	if len(rep.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors())
	}
}

// TestFixturePlansPassClean verifies both worked-example fixtures pass
// every check, including annotation consistency and JSON round-trip.
func TestFixturePlansPassClean(t *testing.T) {
	movieReg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	travelReg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	mp, _, err := plan.RunningExamplePlan(movieReg)
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := plan.TravelPlan(travelReg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		p       *plan.Plan
		reg     *mart.Registry
		fetches map[string]int
	}{
		{"running-example", mp, movieReg, plan.Fig10Fetches()},
		{"travel", tp, travelReg, map[string]int{"F": 2, "H": 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rep := plancheck.Check(tc.p); !rep.OK() {
				t.Errorf("Check: %v", rep.Err())
			}
			a, err := plan.Annotate(tc.p, tc.fetches)
			if err != nil {
				t.Fatal(err)
			}
			if rep := plancheck.CheckAnnotated(a); !rep.OK() {
				t.Errorf("CheckAnnotated: %v", rep.Err())
			}
			if rep := plancheck.CheckRoundTrip(tc.p, tc.reg); !rep.OK() {
				t.Errorf("CheckRoundTrip: %v", rep.Err())
			}
		})
	}
}

// TestRandomizedOptimizerPlansPassClean runs the optimizer over 100
// randomized workload/heuristic configurations and verifies every winning
// plan passes plancheck, round-trips through JSON, and accepts its query's
// ranking weights.
func TestRandomizedOptimizerPlansPassClean(t *testing.T) {
	heuristics := []optimizer.Heuristics{
		{Access: optimizer.BoundIsBetter, Topology: optimizer.SelectiveFirst},
		{Access: optimizer.BoundIsBetter, Topology: optimizer.ParallelIsBetter},
		{Access: optimizer.UnboundIsEasier, Topology: optimizer.SelectiveFirst},
		{Access: optimizer.UnboundIsEasier, Topology: optimizer.ParallelIsBetter},
	}
	metrics := []cost.Metric{cost.RequestResponse{}, cost.ExecutionTime{}}
	checked := 0
	for seed := int64(0); checked < 100; seed++ {
		n := 2 + int(seed%4)
		w, err := synth.RandomWorkload(seed, n)
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.Parse(w.QueryText)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := q.Analyze(w.Registry); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := heuristics[int(seed)%len(heuristics)]
		m := metrics[int(seed)%len(metrics)]
		res, err := optimizer.Optimize(q, w.Registry, optimizer.Options{
			K: 5 + int(seed%10), Metric: m, Stats: w.Stats,
			Heuristics: h, FixedInterfaces: true, MaxPlans: 60,
		})
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		label := fmt.Sprintf("seed %d n=%d %s/%s", seed, n, h.Access, h.Topology)
		if rep := plancheck.CheckAnnotated(res.Annotated); !rep.OK() {
			t.Errorf("%s: %v", label, rep.Err())
		}
		if rep := plancheck.CheckRoundTrip(res.Plan, w.Registry); !rep.OK() {
			t.Errorf("%s: round trip: %v", label, rep.Err())
		}
		if rep := plancheck.CheckExec(res.Plan, plancheck.Exec{
			Weights: res.Query.Weights, TargetK: res.Plan.K, Streaming: true,
		}); !rep.OK() {
			t.Errorf("%s: exec: %v", label, rep.Err())
		}
		checked++
	}
}

// TestUnmarshalRejectsBrokenJSON verifies the guarded decoding entry
// point: structurally broken JSON plans decode but fail verification.
func TestUnmarshalRejectsBrokenJSON(t *testing.T) {
	_, reg := movieFixture(t)
	// A join node with a single predecessor and a service with no
	// bindings for its required inputs.
	broken := `{
	  "k": 5,
	  "nodes": [
	    {"id": "input", "kind": "input"},
	    {"id": "M", "kind": "service", "alias": "M", "interface": "Movie1",
	     "stats": {"avgCardinality": 10, "chunkSize": 0, "latencyMs": 1, "costPerCall": 1, "scoring": "constant"}},
	    {"id": "output", "kind": "output"}
	  ],
	  "arcs": [["input", "M"], ["M", "output"]]
	}`
	p, rep, err := plancheck.Unmarshal([]byte(broken), reg)
	if err == nil {
		t.Fatal("broken JSON plan accepted")
	}
	if p == nil || rep == nil {
		t.Fatal("Unmarshal should return the decoded plan and report for inspection")
	}
	if !rep.HasCode(plancheck.CodeBinding) {
		t.Fatalf("expected %s diagnostics, got: %v", plancheck.CodeBinding, rep.Diags)
	}
}
