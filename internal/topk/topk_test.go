package topk

import (
	"context"
	"sort"
	"testing"
	"testing/quick"

	"seco/internal/join"
	"seco/internal/service"
	"seco/internal/synth"
	"seco/internal/types"
)

// rankedPair builds two ranked chunked services joining on Key.
func rankedPair(t testing.TB, n, keyMod, chunk int, seedX, seedY int64) (*service.Table, *service.Table) {
	t.Helper()
	mk := func(name string, seed int64) *service.Table {
		tab, err := synth.NewRanked(synth.RankedConfig{
			Name: name, N: n, KeyMod: keyMod, Shuffle: true, Seed: seed,
			Stats: service.Stats{AvgCardinality: float64(n), ChunkSize: chunk, Scoring: service.Linear(n)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	return mk("X", seedX), mk("Y", seedY)
}

func invoke(t testing.TB, tab *service.Table) service.Invocation {
	t.Helper()
	inv, err := tab.Invoke(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func keyPred() join.Predicate {
	return join.Predicate{Conds: []join.Condition{{Left: "Key", Right: "Key"}}}
}

// bruteForceTopK computes the exact top-k pair scores of the full join.
func bruteForceTopK(t testing.TB, xs, ys *service.Table, comb Combiner, k int) []float64 {
	t.Helper()
	drain := func(tab *service.Table) []*types.Tuple {
		inv := invoke(t, tab)
		var all []*types.Tuple
		for {
			c, err := inv.Fetch(context.Background())
			if err != nil {
				break
			}
			all = append(all, c.Tuples...)
		}
		return all
	}
	var scores []float64
	pred := keyPred()
	for _, xt := range drain(xs) {
		for _, yt := range drain(ys) {
			ok, err := pred.Match(xt, yt)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				scores = append(scores, comb.Combine(xt.Score, yt.Score))
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// The rank join must return exactly the brute-force top-k scores.
func TestJoinReturnsExactTopK(t *testing.T) {
	for _, comb := range []Combiner{Product{}, WeightedSum{WX: 0.3, WY: 0.7}} {
		xs, ys := rankedPair(t, 60, 6, 5, 1, 2)
		want := bruteForceTopK(t, xs, ys, comb, 10)
		got, stats, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{
			K: 10, Combiner: comb, Predicate: keyPred(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%T: got %d results, want %d", comb, len(got), len(want))
		}
		for i := range want {
			if diff := got[i].Score - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%T: result %d score %v, want %v", comb, i, got[i].Score, want[i])
			}
		}
		if stats.Emitted != 10 {
			t.Errorf("stats.Emitted = %d", stats.Emitted)
		}
	}
}

func TestJoinEmissionOrderNonIncreasing(t *testing.T) {
	xs, ys := rankedPair(t, 80, 8, 10, 3, 4)
	got, _, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{
		K: 20, Predicate: keyPred(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score+1e-12 {
			t.Fatalf("order violated at %d: %v after %v", i, got[i].Score, got[i-1].Score)
		}
	}
}

func TestJoinStopsBeforeExhaustion(t *testing.T) {
	xs, ys := rankedPair(t, 200, 2, 10, 5, 6) // dense matches
	_, stats, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{
		K: 5, Predicate: keyPred(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exhausted {
		t.Error("dense join reported exhaustion")
	}
	// 200 tuples per side = 20 chunks each; top-5 must not need them all.
	if stats.TotalFetches() >= 40 {
		t.Errorf("no early termination: %d fetches", stats.TotalFetches())
	}
}

func TestJoinExhaustsWhenKTooLarge(t *testing.T) {
	xs, ys := rankedPair(t, 12, 4, 4, 7, 8)
	got, stats, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{
		K: 10000, Predicate: keyPred(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Exhausted {
		t.Error("exhaustion not reported")
	}
	want := bruteForceTopK(t, xs, ys, Product{}, 1<<30)
	if len(got) != len(want) {
		t.Errorf("drained %d results, full join has %d", len(got), len(want))
	}
}

func TestJoinEmptySide(t *testing.T) {
	xs, _ := rankedPair(t, 10, 2, 5, 9, 10)
	empty, err := synth.NewRanked(synth.RankedConfig{
		Name: "E", N: 1, KeyMod: 1,
		Stats: service.Stats{AvgCardinality: 1, ChunkSize: 5, Scoring: service.Linear(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// An empty result list: invoke with a non-matching filter is not
	// possible here, so drain the one chunk first.
	inv := invoke(t, empty)
	if _, err := inv.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Join(context.Background(), invoke(t, xs), inv, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || !stats.Exhausted {
		t.Errorf("join with exhausted side: %d results, exhausted=%v", len(got), stats.Exhausted)
	}
}

func TestJoinInvalidK(t *testing.T) {
	xs, ys := rankedPair(t, 4, 2, 2, 1, 2)
	if _, _, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestJoinContextCancel(t *testing.T) {
	xs, ys := rankedPair(t, 10, 2, 2, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	xi, yi := invoke(t, xs), invoke(t, ys)
	cancel()
	if _, _, err := Join(ctx, xi, yi, Options{K: 3}); err == nil {
		t.Error("cancelled join succeeded")
	}
}

func TestJoinClockRatioRespected(t *testing.T) {
	xs, ys := rankedPair(t, 100, 2, 5, 1, 2)
	_, stats, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{
		K: 40, RatioX: 1, RatioY: 2, Predicate: keyPred(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FetchesY < stats.FetchesX {
		t.Errorf("ratio 1:2 ignored: %d X fetches vs %d Y", stats.FetchesX, stats.FetchesY)
	}
}

// The top-k guarantee costs at least as many fetches as the approximate
// extraction-optimal method stopped at the same k — the Section 3.2
// trade-off ("normally faster than top-k join methods").
func TestGuaranteeCostsAtLeastApproximate(t *testing.T) {
	xs, ys := rankedPair(t, 120, 10, 10, 11, 12)
	const k = 10
	_, exact, err := Join(context.Background(), invoke(t, xs), invoke(t, ys), Options{
		K: k, Predicate: keyPred(),
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	approx, err := join.Parallel(context.Background(), invoke(t, xs), invoke(t, ys),
		join.Strategy{Invocation: join.MergeScan, Completion: join.Triangular, FlushOnExhaust: true},
		keyPred(), 0, 0, func(join.Pair) error {
			count++
			if count >= k {
				return join.ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if exact.TotalFetches() < approx.TotalFetches() {
		t.Errorf("top-k guarantee cheaper than approximation: %d vs %d fetches",
			exact.TotalFetches(), approx.TotalFetches())
	}
}

// Combiners must be monotone; the two provided ones are.
func TestCombinerMonotoneProperty(t *testing.T) {
	combs := []Combiner{Product{}, WeightedSum{WX: 0.4, WY: 0.6}}
	f := func(a, b, d uint8) bool {
		sx := float64(a) / 255
		sy := float64(b) / 255
		delta := float64(d) / 255
		for _, c := range combs {
			if c.Combine(sx+delta, sy) < c.Combine(sx, sy)-1e-12 {
				return false
			}
			if c.Combine(sx, sy+delta) < c.Combine(sx, sy)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The pairwise corner bound must dominate every pair that uses at least
// one unseen tuple (score ≤ cur on its side, best on the other).
func TestThresholdDominatesUnseenPairs(t *testing.T) {
	comb := WeightedSum{WX: 0.6, WY: 0.4}
	topX, topY := 0.9, 0.8
	curX, curY := 0.5, 0.3
	tau := Threshold(comb, topX, topY, curX, curY)
	for _, sx := range []float64{0.5, 0.4, 0.1, 0} {
		for _, sy := range []float64{0.8, 0.3, 0.2} {
			if sx <= curX || sy <= curY { // at least one unseen component
				if got := comb.Combine(sx, sy); got > tau+1e-12 {
					t.Errorf("pair (%v,%v) scores %v above threshold %v", sx, sy, got, tau)
				}
			}
		}
	}
	if want := comb.Combine(topX, curY); tau < want {
		t.Errorf("threshold %v below corner %v", tau, want)
	}
}

// WeightedThreshold at n=2 must agree with the pairwise Threshold under
// the same weighted-sum combiner.
func TestWeightedThresholdMatchesPairwise(t *testing.T) {
	cases := []struct{ wx, wy, topX, topY, curX, curY float64 }{
		{0.5, 0.5, 1, 1, 0.7, 0.4},
		{0.3, 0.7, 0.9, 0.95, 0.9, 0.2},
		{1, 0, 0.8, 0.6, 0.1, 0.6},
		{0.25, 0.75, 0.5, 0.5, 0.5, 0.5},
	}
	for _, c := range cases {
		pair := Threshold(WeightedSum{WX: c.wx, WY: c.wy}, c.topX, c.topY, c.curX, c.curY)
		nary := WeightedThreshold(
			[]float64{c.wx, c.wy},
			[]float64{c.topX, c.topY},
			[]float64{c.curX, c.curY},
		)
		if diff := pair - nary; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("case %+v: pairwise %v vs n-ary %v", c, pair, nary)
		}
	}
}

// The n-ary bound must dominate every combination with at least one
// unseen component, over randomized inputs.
func TestWeightedThresholdDominates(t *testing.T) {
	weights := []float64{0.3, 0.5, 0.2}
	best := []float64{1, 0.9, 0.8}
	cur := []float64{0.6, 0.5, 0.8}
	tau := WeightedThreshold(weights, best, cur)
	// Enumerate a grid of candidate scores; any combination where some
	// component i is "unseen" (≤ cur[i]) must be bounded by tau.
	grid := []float64{0, 0.2, 0.5, 0.6, 0.8, 0.9, 1}
	for _, s0 := range grid {
		for _, s1 := range grid {
			for _, s2 := range grid {
				s := []float64{s0, s1, s2}
				unseen := false
				sound := true
				for i := range s {
					if s[i] <= cur[i] {
						unseen = true
					}
					if s[i] > best[i] { // impossible: nothing beats the top
						sound = false
					}
				}
				if !unseen || !sound {
					continue
				}
				total := 0.0
				for i := range s {
					total += weights[i] * s[i]
				}
				if total > tau+1e-12 {
					t.Errorf("combination %v scores %v above threshold %v", s, total, tau)
				}
			}
		}
	}
}
