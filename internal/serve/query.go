package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"seco/internal/admission"
	"seco/internal/engine"
	"seco/internal/obs"
	"seco/internal/types"
)

// queryRequest is the POST /query body. Every field is optional: an
// empty body runs the scenario's canonical query with the server
// defaults under the anonymous tenant.
type queryRequest struct {
	// Query is SecoQL text (default: the scenario's canonical query).
	Query string `json:"query,omitempty"`
	// K overrides the requested combinations.
	K int `json:"k,omitempty"`
	// DeadlineMS is the client's end-to-end deadline in milliseconds.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Tenant identifies the quota bucket (X-Seco-Tenant also accepted).
	Tenant string `json:"tenant,omitempty"`
	// Inputs overrides the scenario's INPUT bindings (literal syntax:
	// quoted strings, numbers, true/false, dates).
	Inputs map[string]string `json:"inputs,omitempty"`
}

// queryCombination is one ranked result row.
type queryCombination struct {
	Score float64 `json:"score"`
	Combo string  `json:"combo"`
}

// queryDegradation is the wire-safe form of engine.Degradation: the
// engine reports an exhausted stop bound as -Inf, which JSON cannot
// encode, so the bound crosses the wire as a pointer that is absent
// when nothing unseen remains.
type queryDegradation struct {
	Reason string   `json:"reason"`
	Failed []string `json:"failed,omitempty"`
	Cause  string   `json:"cause,omitempty"`
	// Bound is the streaming score bound at the stop point; nil when no
	// unseen combination remains (the partial result is exact).
	Bound      *float64 `json:"bound,omitempty"`
	CertifiedK int      `json:"certified_k"`
}

func wireDegradation(d *engine.Degradation) *queryDegradation {
	if d == nil {
		return nil
	}
	out := &queryDegradation{
		Reason:     string(d.Reason),
		Failed:     d.Failed,
		Cause:      d.Cause,
		CertifiedK: d.CertifiedK,
	}
	if !math.IsInf(d.Bound, 0) {
		b := d.Bound
		out.Bound = &b
	}
	return out
}

// queryResponse is the POST /query success payload.
type queryResponse struct {
	// Tenant and Tier echo the admission decision ("admit" or "degrade";
	// rejections never reach execution).
	Tenant string `json:"tenant"`
	Tier   string `json:"tier"`
	// Reason is the admission reason ("ok", "occupancy", "queued").
	Reason string `json:"reason"`
	// BudgetMS is the execution budget the query ran under.
	BudgetMS float64 `json:"budget_ms"`
	// ElapsedMS is the run time on the engine clock (simulated under a
	// virtual clock).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Halted reports top-k early termination.
	Halted bool `json:"halted"`
	// Degraded is non-nil when the run returned a certified partial.
	Degraded *queryDegradation `json:"degraded,omitempty"`
	// CertifiedK is the provably-correct result prefix: all of
	// Combinations for a complete run, Degraded.CertifiedK for a partial.
	CertifiedK   int                `json:"certified_k"`
	Combinations []queryCombination `json:"combinations"`
}

// queryRejection is the POST /query 429 payload.
type queryRejection struct {
	Error        string  `json:"error"`
	Reason       string  `json:"reason"`
	RetryAfterMS float64 `json:"retry_after_ms"`
}

// budgetGrace pads the HTTP context deadline past the execution budget,
// so the engine's own budget machinery — which degrades gracefully into
// a certified partial — always fires before the raw context cancel,
// which would surface as an opaque execution error.
const budgetGrace = 100 * time.Millisecond

// handleQuery is POST /query: admission control, then a budgeted
// degradable execution on the cached engine for the requested
// (query, K) pair.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Seco-Tenant")
	}
	deadline := time.Duration(req.DeadlineMS * float64(time.Millisecond))
	// X-Seco-Queued-Ns carries the ingress lag (admission-time minus
	// arrival-time on the shared clock); a fronting proxy or the loadgen
	// driver stamps it so admission sees deadline already spent queueing.
	var queued time.Duration
	if h := r.Header.Get("X-Seco-Queued-Ns"); h != "" {
		ns, err := strconv.ParseInt(h, 10, 64)
		if err != nil {
			http.Error(w, "bad X-Seco-Queued-Ns: "+err.Error(), http.StatusBadRequest)
			return
		}
		queued = time.Duration(ns)
	}

	dec, release := s.adm.Admit(admission.Request{Tenant: tenant, Deadline: deadline, Queued: queued})
	defer release()
	if dec.Tier == admission.TierReject {
		s.reg.Counter("seco.serve.rejected").Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(dec.RetryAfter.Seconds()))))
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(queryRejection{
			Error:        "rejected: " + dec.Reason,
			Reason:       dec.Reason,
			RetryAfterMS: float64(dec.RetryAfter) / float64(time.Millisecond),
		})
		return
	}

	text := req.Query
	if text == "" {
		text = s.defaultText
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.K
	}
	entry, err := s.entryFor(text, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	inputs := s.inputs
	if len(req.Inputs) > 0 {
		inputs = make(map[string]types.Value, len(s.inputs)+len(req.Inputs))
		for name, v := range s.inputs {
			inputs[name] = v
		}
		for name, lit := range req.Inputs {
			inputs[name] = types.ParseValue(lit)
		}
	}

	budget := dec.Budget
	if max := s.cfg.MaxBudget; max > 0 && budget > max {
		budget = max
	}
	// The degraded tier runs under a shed budget; a plain admit's budget
	// is the client's own deadline. The distinction surfaces in
	// Run.Degraded.Reason when the budget expires mid-run.
	reason := engine.DegradeDeadline
	if dec.Tier == admission.TierDegrade {
		reason = engine.DegradeShed
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget+budgetGrace)
	defer cancel()
	run, err := entry.eng.Execute(ctx, entry.res.Annotated, engine.Options{
		Inputs:       inputs,
		Weights:      entry.res.Query.Weights,
		TargetK:      entry.res.Plan.K,
		Parallelism:  s.cfg.Parallelism,
		Budget:       budget,
		Degrade:      true,
		BudgetReason: reason,
	})
	if err != nil {
		s.reg.Counter("seco.serve.http_500").Add(1)
		http.Error(w, "execution failed: "+err.Error(), http.StatusInternalServerError)
		return
	}

	s.reg.Counter("seco.serve.queries").Add(1)
	elapsedMS := float64(run.Elapsed) / float64(time.Millisecond)
	s.reg.Histogram("seco.serve.latency_ms", obs.LatencyBucketsMS).Observe(elapsedMS)
	resp := queryResponse{
		Tenant:     tenant,
		Tier:       dec.Tier.String(),
		Reason:     dec.Reason,
		BudgetMS:   float64(budget) / float64(time.Millisecond),
		ElapsedMS:  elapsedMS,
		Halted:     run.Halted,
		Degraded:   wireDegradation(run.Degraded),
		CertifiedK: len(run.Combinations),
	}
	if run.Degraded != nil {
		s.reg.Counter("seco.serve.degraded_runs").Add(1)
		resp.CertifiedK = run.Degraded.CertifiedK
	}
	resp.Combinations = make([]queryCombination, 0, len(run.Combinations))
	for _, c := range run.Combinations {
		resp.Combinations = append(resp.Combinations, queryCombination{
			Score: c.Score, Combo: fmt.Sprint(c),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
