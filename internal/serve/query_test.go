package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"seco/internal/admission"
	"seco/internal/chaos"
	"seco/internal/engine"
	"seco/internal/service"
)

// postQuery sends one POST /query and decodes the response body.
func postQuery(t *testing.T, ts *httptest.Server, body string, headers map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func decodeResponse(t *testing.T, raw []byte) queryResponse {
	t.Helper()
	var resp queryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("invalid response JSON: %v\n%s", err, raw)
	}
	return resp
}

func TestQueryAdmitFullRun(t *testing.T) {
	_, ts := startServer(t)
	code, _, raw := postQuery(t, ts, `{"tenant":"alice"}`, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	resp := decodeResponse(t, raw)
	if resp.Tier != "admit" || resp.Reason != "ok" {
		t.Fatalf("tier %s/%s, want admit/ok", resp.Tier, resp.Reason)
	}
	if resp.Tenant != "alice" {
		t.Fatalf("tenant %q, want alice", resp.Tenant)
	}
	if resp.Degraded != nil {
		t.Fatalf("unexpected degradation: %+v", resp.Degraded)
	}
	if len(resp.Combinations) == 0 || resp.CertifiedK != len(resp.Combinations) {
		t.Fatalf("combinations %d, certified %d — want a full certified result",
			len(resp.Combinations), resp.CertifiedK)
	}
}

func TestQueryEmptyBodyAndHeaderTenant(t *testing.T) {
	s, ts := startServer(t)
	code, _, raw := postQuery(t, ts, "", map[string]string{"X-Seco-Tenant": "bob"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp := decodeResponse(t, raw); resp.Tenant != "bob" {
		t.Fatalf("tenant %q, want header tenant bob", resp.Tenant)
	}
	if got := s.reg.Counter("seco.serve.queries").Value(); got != 1 {
		t.Fatalf("queries counter %d, want 1", got)
	}
}

func TestQueryPerRequestKHitsPlanCache(t *testing.T) {
	s, ts := startServer(t)
	code, _, raw := postQuery(t, ts, `{"k":3}`, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	resp := decodeResponse(t, raw)
	if len(resp.Combinations) == 0 || len(resp.Combinations) > 3 {
		t.Fatalf("got %d combinations for k=3", len(resp.Combinations))
	}
	misses := s.reg.Counter("seco.serve.plan_cache.misses").Value()
	code, _, _ = postQuery(t, ts, `{"k":3}`, nil)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	if got := s.reg.Counter("seco.serve.plan_cache.misses").Value(); got != misses {
		t.Fatalf("repeat (query,k) re-planned: misses %d -> %d", misses, got)
	}
	if got := s.reg.Counter("seco.serve.plan_cache.hits").Value(); got == 0 {
		t.Fatal("repeat (query,k) did not hit the plan cache")
	}
}

func TestQueryShedTierDegrades(t *testing.T) {
	// 40% of the deadline already spent queueing puts admission in the
	// degrade tier; the shed budget (half the remainder, here 30ms of
	// simulated time) is far below the canonical run's cost, so the run
	// must come back as a certified partial with the load-shed reason.
	_, ts := startServer(t)
	code, _, raw := postQuery(t, ts, `{"deadline_ms":100,"tenant":"alice"}`,
		map[string]string{"X-Seco-Queued-Ns": fmt.Sprint(40 * 1000 * 1000)})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	resp := decodeResponse(t, raw)
	if resp.Tier != "degrade" || resp.Reason != "queued" {
		t.Fatalf("tier %s/%s, want degrade/queued", resp.Tier, resp.Reason)
	}
	if resp.BudgetMS != 30 {
		t.Fatalf("budget %vms, want (100-40)/2 = 30ms", resp.BudgetMS)
	}
	if resp.Degraded == nil || resp.Degraded.Reason != string(engine.DegradeShed) {
		t.Fatalf("degradation %+v, want reason %q", resp.Degraded, engine.DegradeShed)
	}
	if resp.CertifiedK > len(resp.Combinations) {
		t.Fatalf("certified %d > returned %d", resp.CertifiedK, len(resp.Combinations))
	}
}

func TestQueryDeadlineBudgetDegrades(t *testing.T) {
	// A tight client deadline admitted at the full tier still expires
	// mid-run; the degradation must name the deadline, not load shedding.
	_, ts := startServer(t)
	code, _, raw := postQuery(t, ts, `{"deadline_ms":6,"tenant":"alice"}`, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	resp := decodeResponse(t, raw)
	if resp.Tier != "admit" {
		t.Fatalf("tier %s, want admit", resp.Tier)
	}
	if resp.Degraded == nil || resp.Degraded.Reason != string(engine.DegradeDeadline) {
		t.Fatalf("degradation %+v, want reason %q", resp.Degraded, engine.DegradeDeadline)
	}
}

func TestQueryTenantQuotaRejects(t *testing.T) {
	_, ts := startServerWith(t, Config{
		Scenario: "movienight", Seed: 7, K: 10, Parallelism: 2, CacheCalls: true,
		Admission: admission.Config{TenantRate: 1, TenantBurst: 1},
	})
	code, _, raw := postQuery(t, ts, `{"tenant":"hot"}`, nil)
	if code != http.StatusOK {
		t.Fatalf("first query status %d: %s", code, raw)
	}
	code, hdr, raw := postQuery(t, ts, `{"tenant":"hot"}`, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("drained tenant status %d, want 429: %s", code, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var rej queryRejection
	if err := json.Unmarshal(raw, &rej); err != nil {
		t.Fatalf("invalid rejection JSON: %v\n%s", err, raw)
	}
	if rej.Reason != "tenant-quota" || rej.RetryAfterMS <= 0 {
		t.Fatalf("rejection %+v, want tenant-quota with retry hint", rej)
	}
	// An independent tenant is unaffected.
	code, _, raw = postQuery(t, ts, `{"tenant":"cold"}`, nil)
	if code != http.StatusOK {
		t.Fatalf("independent tenant status %d: %s", code, raw)
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, ts := startServer(t)
	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/query")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET status %d, want 405", resp.StatusCode)
		}
	})
	t.Run("body", func(t *testing.T) {
		code, _, _ := postQuery(t, ts, `{"nope`, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("truncated JSON status %d, want 400", code)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		code, _, _ := postQuery(t, ts, `{"qeury":"typo"}`, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("unknown field status %d, want 400", code)
		}
	})
	t.Run("bad query text", func(t *testing.T) {
		code, _, _ := postQuery(t, ts, `{"query":"DEFINE nonsense"}`, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("unparsable query status %d, want 400", code)
		}
	})
	t.Run("bad queued header", func(t *testing.T) {
		code, _, _ := postQuery(t, ts, `{}`, map[string]string{"X-Seco-Queued-Ns": "soon"})
		if code != http.StatusBadRequest {
			t.Fatalf("bad queued header status %d, want 400", code)
		}
	})
}

// TestConcurrentQueriesSharedEngineRace hammers /query from many
// goroutines. Every request for the same (query, K) pair executes on the
// single cached engine, so under -race this contends the whole serving
// stack at once: admission slots, the hedging layer, the share memo, the
// breaker state machine and the cumulative registry. Overload must
// surface as 200s (full or certified partial) and 429s — never a 500.
func TestConcurrentQueriesSharedEngineRace(t *testing.T) {
	s, err := New(Config{
		Scenario: "movienight", Seed: 7, K: 10, Parallelism: 2, CacheCalls: true,
		Hedge: true,
		Admission: admission.Config{Capacity: 4, TenantRate: 1000, TenantBurst: 1000,
			MaxDeadline: time.Hour},
		Wrap: func(alias string, svc service.Service) service.Service {
			inj := chaos.NewInjector(svc, 7,
				chaos.TransientRate{P: 0.05},
				chaos.LatencySpike{Every: 7, Delay: 20 * time.Millisecond})
			b := service.NewBreaker(service.NewRetry(inj))
			b.Threshold = 50
			b.Cooldown = 100 * time.Millisecond
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	codes := make([]int, 8*10)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body := fmt.Sprintf(`{"tenant":"t%d","deadline_ms":60000}`, g%3)
				code, _, raw := postQuery(t, ts, body, nil)
				codes[g*10+i] = code
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("status %d: %s", code, raw)
				}
			}
		}(g)
	}
	wg.Wait()
	ok := 0
	for _, c := range codes {
		if c == http.StatusOK {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no query succeeded; hammer is vacuous")
	}
}

func TestQueryDecisionsDeterministic(t *testing.T) {
	// Two fresh servers receiving the identical request sequence must
	// produce byte-identical response bodies: admission runs on the
	// virtual engine clock, and execution charges only simulated time.
	// Deadlines are generous so every admitted run completes — a
	// budget-expired run's fetch depths are schedule-dependent (the same
	// caveat the chaos sweep documents for its budget cells), while full
	// runs and rejections are exactly reproducible.
	run := func() []string {
		s, err := New(Config{
			Scenario: "movienight", Seed: 7, K: 10, Parallelism: 2, CacheCalls: true,
			Admission: admission.Config{TenantRate: 2, TenantBurst: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var out []string
		for i := 0; i < 6; i++ {
			body := fmt.Sprintf(`{"tenant":"t%d","deadline_ms":9000}`, i%2)
			code, _, raw := postQuery(t, ts, body, nil)
			out = append(out, fmt.Sprintf("%d %s", code, raw))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("response %d diverged between identical replays:\n a: %s\n b: %s", i, a[i], b[i])
		}
	}
}
