// Package serve is the query-serving layer behind cmd/secoserve: a
// long-lived multi-tenant HTTP service over one engine clock, combining
//
//   - POST /query — SecoQL execution with per-request K, deadline and
//     tenant, behind admission control (per-tenant token buckets, a
//     global concurrency gate, and load-shedding tiers that map onto the
//     engine's Budget/Degrade machinery: a saturated server returns
//     certified partial top-k answers, never errors);
//   - the observability surface grown in earlier PRs — /metrics[.txt],
//     /runs/last, /trace/last[.chrome], /debug/pprof/* — on the same
//     cumulative registry the admission and hedging layers feed.
//
// The package (rather than the command) owns the server so the loadgen
// harness can drive the exact HTTP handler in-process against a virtual
// clock: every admission decision, degraded budget and hedge count is
// then a deterministic function of the request schedule.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"seco/internal/admission"
	"seco/internal/core"
	"seco/internal/engine"
	"seco/internal/fidelity"
	"seco/internal/obs"
	"seco/internal/optimizer"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// maxPlans bounds the plan/engine cache; distinct (query, K, metric)
// triples past the bound evict an arbitrary older entry.
const maxPlans = 64

// Config assembles a Server.
type Config struct {
	// Scenario selects the built-in world: movienight, conftravel or
	// triangle.
	Scenario string
	// Seed is the world seed.
	Seed int64
	// K is the default requested combinations per query (requests may
	// override it).
	K int
	// Metric names the planning cost metric.
	Metric string
	// Parallelism bounds pipe-join parallelism per run.
	Parallelism int
	// DisableMultiway restricts planning to binary join trees, never
	// proposing the n-ary multijoin. Plans are cached per toggle state,
	// so flipping it cannot serve a stale topology.
	DisableMultiway bool
	// CacheCalls enables the engines' cross-query call-sharing layer.
	CacheCalls bool
	// Live selects the wall clock with live latency pacing; off (the
	// default) runs on a virtual clock — fetches complete instantly
	// while charging their published latency to simulated time, which is
	// what makes served load deterministic.
	Live bool
	// Hedge mounts the hedged-call layer on every service lane.
	Hedge bool
	// HedgePolicy tunes hedging when Hedge is set (zero value =
	// defaults).
	HedgePolicy service.HedgePolicy
	// Admission tunes the admission controller. Its Metrics field is
	// overwritten with the server's registry.
	Admission admission.Config
	// MaxBudget caps the execution budget of any admitted query
	// (0 = bounded by the request deadline alone).
	MaxBudget time.Duration
	// Wrap, when non-nil, decorates each bound service per plan alias
	// before the engine is built — the hook the loadgen harness uses to
	// inject chaos faults and resilience middleware.
	Wrap func(alias string, svc service.Service) service.Service
	// Clock overrides the engine clock (default: VirtualClock, or
	// WallClock when Live).
	Clock engine.Clock
	// Metrics overrides the registry (default: a fresh one).
	Metrics *obs.Registry
}

// Server is one long-lived serving instance: the scenario system, the
// shared engine clock, the admission controller, a plan/engine cache
// keyed by (query, K, metric), and the last background run's
// introspection state.
type Server struct {
	cfg         Config
	sys         *core.System
	inputs      map[string]types.Value
	defaultText string
	clock       engine.Clock
	reg         *obs.Registry
	adm         *admission.Controller

	planMu sync.Mutex
	plans  map[string]*planEntry

	mu        sync.Mutex
	lastRun   *engine.Run
	lastTrace *obs.Trace
	runs      int64
	failures  int64
}

// planEntry is one cached (query, K, metric) plan with its long-lived
// engine. The engine — not just the plan — is cached so repeated queries
// share one Invoker: the sharing layer, the hedging trigger histograms
// and the cumulative metrics all need call history to be useful.
type planEntry struct {
	res *optimizer.Result
	eng *engine.Engine
}

// New builds a server over a built-in scenario.
func New(cfg Config) (*Server, error) {
	var (
		sys    *core.System
		inputs map[string]types.Value
		text   string
		err    error
	)
	switch cfg.Scenario {
	case "movienight":
		sys, inputs, err = core.MovieNight(cfg.Seed)
		text = query.RunningExampleText
	case "conftravel":
		sys, inputs, err = core.ConfTravel(cfg.Seed)
		text = query.TravelExampleText
	case "triangle":
		sys, inputs, err = core.Triangle(cfg.Seed)
		text = query.TriangleExampleText
	default:
		return nil, fmt.Errorf("unknown scenario %q", cfg.Scenario)
	}
	if err != nil {
		return nil, err
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Metric == "" {
		cfg.Metric = "request-response"
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	clock := cfg.Clock
	if clock == nil {
		if cfg.Live {
			clock = engine.WallClock{}
		} else {
			clock = engine.NewVirtualClock()
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	admCfg := cfg.Admission
	admCfg.Metrics = reg
	s := &Server{
		cfg:         cfg,
		sys:         sys,
		inputs:      inputs,
		defaultText: text,
		clock:       clock,
		reg:         reg,
		adm:         admission.NewController(admCfg, clock),
		plans:       map[string]*planEntry{},
	}
	// Warm the canonical entry so construction fails fast on a broken
	// scenario and the background loop's first run needs no planning.
	if _, err := s.entryFor(text, cfg.K); err != nil {
		return nil, err
	}
	return s, nil
}

// Clock exposes the engine clock shared by every engine, the admission
// controller and all resilience timing.
func (s *Server) Clock() engine.Clock { return s.clock }

// Metrics exposes the server's cumulative registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Admission exposes the admission controller.
func (s *Server) Admission() *admission.Controller { return s.adm }

// entryFor returns the cached plan+engine for (text, k) under the
// server's metric and join-topology toggle, planning and binding on
// miss.
func (s *Server) entryFor(text string, k int) (*planEntry, error) {
	key := fmt.Sprintf("%d|%s|%t|%s", k, s.cfg.Metric, s.cfg.DisableMultiway, text)
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if e, ok := s.plans[key]; ok {
		s.reg.Counter("seco.serve.plan_cache.hits").Add(1)
		return e, nil
	}
	s.reg.Counter("seco.serve.plan_cache.misses").Add(1)
	q, err := s.sys.Parse(text)
	if err != nil {
		return nil, err
	}
	res, err := s.sys.Plan(q, core.PlanOptions{
		K: k, Metric: s.cfg.Metric, DisableMultiway: s.cfg.DisableMultiway,
	})
	if err != nil {
		return nil, err
	}
	eng, err := s.engineFor(res)
	if err != nil {
		return nil, err
	}
	if len(s.plans) >= maxPlans {
		for k := range s.plans {
			delete(s.plans, k)
			s.reg.Counter("seco.serve.plan_cache.evictions").Add(1)
			break
		}
	}
	e := &planEntry{res: res, eng: eng}
	s.plans[key] = e
	return e, nil
}

// engineFor binds the plan's aliases to the scenario services — through
// the Wrap hook when configured — on the server's shared clock, registry
// and hedging policy.
func (s *Server) engineFor(res *optimizer.Result) (*engine.Engine, error) {
	byAlias := map[string]service.Service{}
	for _, ref := range res.Query.Services {
		svc, ok := s.sys.Service(ref.Interface.Name)
		if !ok {
			return nil, fmt.Errorf("no service bound for interface %q (alias %s)",
				ref.Interface.Name, ref.Alias)
		}
		if s.cfg.Wrap != nil {
			svc = s.cfg.Wrap(ref.Alias, svc)
		}
		byAlias[ref.Alias] = svc
	}
	ecfg := engine.Config{Clock: s.clock, Share: s.cfg.CacheCalls, Metrics: s.reg}
	if s.cfg.Hedge {
		policy := s.cfg.HedgePolicy
		ecfg.Hedge = &policy
	}
	return engine.NewWithConfig(byAlias, ecfg), nil
}

// RunOnce executes the canonical query with a fresh tracer and replaces
// the last-run record; the background loop and tests drive it.
func (s *Server) RunOnce() error {
	e, err := s.entryFor(s.defaultText, s.cfg.K)
	if err != nil {
		return err
	}
	tr := obs.NewTracer()
	// The refresh run is bounded like any admitted query, so a wedged
	// service cannot stall the background loop; the cap is wall time and
	// never fires under the virtual clock's instant runs.
	limit := s.cfg.MaxBudget
	if limit <= 0 {
		limit = time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	// Fidelity is always scored on the refresh run: it is one cheap
	// assessment per run and the /fidelity/last surface is how an
	// operator notices the scenario statistics drifting from the data.
	run, err := e.eng.Execute(ctx, e.res.Annotated, engine.Options{
		Inputs:      s.inputs,
		Weights:     e.res.Query.Weights,
		TargetK:     e.res.Plan.K,
		Parallelism: s.cfg.Parallelism,
		Trace:       tr,
		Fidelity:    true,
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs++
	if err != nil {
		s.failures++
		return err
	}
	s.lastRun = run
	s.lastTrace = tr.Snapshot()
	return nil
}

// Loop drives the background executions. A zero interval runs the query
// once, so the endpoints have data without generating steady load.
func (s *Server) Loop(ctx context.Context, interval time.Duration) {
	if err := s.RunOnce(); err != nil {
		fmt.Fprintln(os.Stderr, "secoserve: run:", err)
	}
	if interval <= 0 {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := s.RunOnce(); err != nil {
				fmt.Fprintln(os.Stderr, "secoserve: run:", err)
			}
		}
	}
}

// Handler builds the server's mux. The pprof handlers are registered
// explicitly (not via the net/http/pprof DefaultServeMux side effect),
// so tests and the loadgen harness can mount the whole surface without a
// listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetricsJSON)
	mux.HandleFunc("/metrics.txt", s.handleMetricsText)
	mux.HandleFunc("/runs/last", s.handleLastRun)
	mux.HandleFunc("/fidelity/last", s.handleLastFidelity)
	mux.HandleFunc("/fidelity/last.txt", s.handleLastFidelityText)
	mux.HandleFunc("/trace/last", s.handleLastTrace)
	mux.HandleFunc("/trace/last.chrome", s.handleLastTraceChrome)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.reg.Text())
}

// lastRunRecord is the /runs/last introspection payload.
type lastRunRecord struct {
	Runs         int64                              `json:"runs"`
	Failures     int64                              `json:"failures"`
	Combinations int                                `json:"combinations"`
	TopScore     float64                            `json:"top_score,omitempty"`
	Halted       bool                               `json:"halted"`
	ElapsedMS    float64                            `json:"elapsed_ms"`
	Calls        map[string]int64                   `json:"calls"`
	Invocations  map[string]int64                   `json:"invocations"`
	Produced     map[string]int                     `json:"produced"`
	CallsSaved   float64                            `json:"calls_saved"`
	Degraded     *engine.Degradation                `json:"degraded,omitempty"`
	Resilience   map[string]service.ResilienceStats `json:"resilience,omitempty"`
	Fidelity     *fidelity.Report                   `json:"fidelity,omitempty"`
}

func (s *Server) handleLastRun(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	run := s.lastRun
	runs, failures := s.runs, s.failures
	s.mu.Unlock()
	if run == nil {
		http.Error(w, "no run yet", http.StatusServiceUnavailable)
		return
	}
	rec := lastRunRecord{
		Runs:         runs,
		Failures:     failures,
		Combinations: len(run.Combinations),
		Halted:       run.Halted,
		ElapsedMS:    float64(run.Elapsed) / float64(time.Millisecond),
		Calls:        run.Calls,
		Invocations:  run.Invocations,
		Produced:     run.Produced,
		CallsSaved:   run.CallsSaved,
		Degraded:     run.Degraded,
		Resilience:   run.Resilience,
		Fidelity:     run.Fidelity,
	}
	if len(run.Combinations) > 0 {
		rec.TopScore = run.Combinations[0].Score
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) lastFidelity() *fidelity.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastRun == nil {
		return nil
	}
	return s.lastRun.Fidelity
}

func (s *Server) handleLastFidelity(w http.ResponseWriter, _ *http.Request) {
	rep := s.lastFidelity()
	if rep == nil {
		http.Error(w, "no fidelity report yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleLastFidelityText renders the report as the same fixed-width
// table Report.Text produces everywhere else, so a curl against a
// virtual-clock server is byte-deterministic.
func (s *Server) handleLastFidelityText(w http.ResponseWriter, _ *http.Request) {
	rep := s.lastFidelity()
	if rep == nil {
		http.Error(w, "no fidelity report yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, rep.Text())
}

func (s *Server) lastTraceSnapshot() *obs.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace
}

func (s *Server) handleLastTrace(w http.ResponseWriter, _ *http.Request) {
	tr := s.lastTraceSnapshot()
	if tr == nil {
		http.Error(w, "no trace yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLastTraceChrome(w http.ResponseWriter, _ *http.Request) {
	tr := s.lastTraceSnapshot()
	if tr == nil {
		http.Error(w, "no trace yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChrome(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
