package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seco/internal/fidelity"
	"seco/internal/plan"
)

// startServer builds the movienight server, executes one run, and mounts
// the full handler surface on an httptest server.
func startServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return startServerWith(t, Config{
		Scenario: "movienight", Seed: 7, K: 10, Parallelism: 2, CacheCalls: true,
	})
}

func startServerWith(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestEndpoints(t *testing.T) {
	_, ts := startServer(t)

	t.Run("metrics JSON", func(t *testing.T) {
		code, body := get(t, ts.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if _, ok := m["seco.engine.runs.pull"]; !ok {
			t.Errorf("seco.engine.runs.pull missing from %v", m)
		}
	})

	t.Run("metrics text", func(t *testing.T) {
		code, body := get(t, ts.URL+"/metrics.txt")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(string(body), "seco.invoker.invocations.") {
			t.Errorf("text dump missing invoker counters:\n%s", body)
		}
	})

	t.Run("last run", func(t *testing.T) {
		code, body := get(t, ts.URL+"/runs/last")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var rec lastRunRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if rec.Runs != 1 || rec.Combinations == 0 || len(rec.Invocations) == 0 {
			t.Errorf("record incomplete: %+v", rec)
		}
	})

	t.Run("last run fidelity", func(t *testing.T) {
		code, body := get(t, ts.URL+"/runs/last")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var rec lastRunRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if rec.Fidelity == nil || len(rec.Fidelity.Nodes) == 0 {
			t.Fatalf("last-run record carries no fidelity table: %+v", rec.Fidelity)
		}
	})

	t.Run("fidelity JSON", func(t *testing.T) {
		code, body := get(t, ts.URL+"/fidelity/last")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var rep fidelity.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if len(rep.Nodes) == 0 || rep.Threshold != fidelity.DefaultThreshold {
			t.Fatalf("report incomplete: %+v", rep)
		}
		for _, nf := range rep.Nodes {
			if nf.Node == "" || nf.Kind == "" || nf.Q < 1 {
				t.Fatalf("malformed node fidelity: %+v", nf)
			}
		}
	})

	t.Run("fidelity text deterministic", func(t *testing.T) {
		code, body := get(t, ts.URL+"/fidelity/last.txt")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(string(body), "threshold=") || !strings.Contains(string(body), "q-out") {
			t.Fatalf("unexpected text report:\n%s", body)
		}
		// The server runs on a virtual clock, so a repeat curl after an
		// identical refresh run yields the identical table.
		code2, body2 := get(t, ts.URL+"/fidelity/last.txt")
		if code2 != http.StatusOK || string(body2) != string(body) {
			t.Fatalf("text report not stable across reads:\n%s\nvs\n%s", body, body2)
		}
	})

	t.Run("last trace", func(t *testing.T) {
		code, body := get(t, ts.URL+"/trace/last")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var doc struct {
			Deterministic bool             `json:"deterministic"`
			Spans         []map[string]any `json:"spans"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if !doc.Deterministic || len(doc.Spans) == 0 {
			t.Errorf("trace empty or not deterministic: det=%v spans=%d", doc.Deterministic, len(doc.Spans))
		}
	})

	t.Run("last trace chrome", func(t *testing.T) {
		code, body := get(t, ts.URL+"/trace/last.chrome")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Error("no trace events")
		}
	})

	t.Run("pprof index", func(t *testing.T) {
		code, body := get(t, ts.URL+"/debug/pprof/")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(string(body), "goroutine") {
			t.Error("pprof index missing profile listing")
		}
	})
}

func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	s, _ := startServer(t)
	before := s.reg.Counter("seco.engine.runs.pull").Value()
	if err := s.RunOnce(); err != nil {
		t.Fatal(err)
	}
	after := s.reg.Counter("seco.engine.runs.pull").Value()
	if after != before+1 {
		t.Fatalf("runs.pull %d -> %d, want +1", before, after)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runs != 2 || s.failures != 0 {
		t.Fatalf("runs=%d failures=%d", s.runs, s.failures)
	}
}

func TestUnknownScenario(t *testing.T) {
	if _, err := New(Config{Scenario: "nope", Seed: 1, K: 5}); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

// TestTriangleScenarioMultiwayToggle serves the cyclic triangle scenario
// and verifies the plan cache keys on the join-topology toggle: the
// default plan uses the n-ary multijoin, flipping DisableMultiway misses
// the cache and re-plans a binary tree, and flipping back returns the
// original cached entry.
func TestTriangleScenarioMultiwayToggle(t *testing.T) {
	s, _ := startServerWith(t, Config{
		Scenario: "triangle", Seed: 7, K: 5, Parallelism: 2,
	})
	hasMultijoin := func(p *plan.Plan) bool {
		for _, id := range p.NodeIDs() {
			if n, _ := p.Node(id); n.Kind == plan.KindMultiJoin {
				return true
			}
		}
		return false
	}

	nary, err := s.entryFor(s.defaultText, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMultijoin(nary.res.Plan) {
		t.Fatal("triangle default plan has no multijoin node")
	}

	misses := s.reg.Counter("seco.serve.plan_cache.misses").Value()
	s.cfg.DisableMultiway = true
	binary, err := s.entryFor(s.defaultText, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.reg.Counter("seco.serve.plan_cache.misses").Value(); got != misses+1 {
		t.Fatalf("toggled topology hit the cache: misses %d -> %d", misses, got)
	}
	if hasMultijoin(binary.res.Plan) {
		t.Fatal("binary-only plan still contains a multijoin node")
	}

	s.cfg.DisableMultiway = false
	again, err := s.entryFor(s.defaultText, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if again != nary {
		t.Fatal("toggling back did not return the cached n-ary entry")
	}
}
