package plan_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/plancheck"
)

// FuzzUnmarshalPlan feeds arbitrary JSON through UnmarshalPlan and the
// plancheck verifier: neither may panic, whatever the input, and every
// plan the decoder accepts must re-marshal to a stable encoding (decode →
// encode → decode → encode yields identical bytes). The corpus is seeded
// with the encodings of both worked-example fixture plans and a few
// structural mutations.
func FuzzUnmarshalPlan(f *testing.F) {
	movieReg, err := mart.MovieScenario()
	if err != nil {
		f.Fatal(err)
	}
	travelReg, err := mart.TravelScenario()
	if err != nil {
		f.Fatal(err)
	}
	triangleReg, err := mart.TriangleScenario()
	if err != nil {
		f.Fatal(err)
	}
	regs := []*mart.Registry{movieReg, travelReg, triangleReg}

	mp, _, err := plan.RunningExamplePlan(movieReg)
	if err != nil {
		f.Fatal(err)
	}
	tp, _, err := plan.TravelPlan(travelReg)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range []*plan.Plan{mp, tp} {
		data, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"k":1,"nodes":[{"id":"input","kind":"input"},{"id":"output","kind":"output"}],"arcs":[["input","output"]]}`))
	f.Add([]byte(`{"k":-3,"nodes":[{"id":"a","kind":"join","strategy":{"invocation":"merge-scan","completion":"triangular"}}],"arcs":[["a","a"]]}`))
	f.Add([]byte(`{"nodes":[{"id":"x","kind":"service","interface":"Movie1"}]}`))
	// Multi-way join seeds: a well-formed n-ary node, one whose cross
	// predicate falls outside the equality/proximity classes, and one with
	// too few predecessors.
	f.Add([]byte(`{"k":5,"nodes":[{"id":"input","kind":"input"},{"id":"mj","kind":"multijoin","joinSelectivity":0.2,"joinPreds":[{"leftAlias":"A","leftPath":"Genre","op":"=","termKind":"path","pathAlias":"V","pathPath":"Genre"},{"leftAlias":"A","leftPath":"Draw","op":"<=","termKind":"path","pathAlias":"V","pathPath":"Capacity"}]},{"id":"output","kind":"output"}],"arcs":[["input","mj"],["mj","output"]]}`))
	f.Add([]byte(`{"k":5,"nodes":[{"id":"mj","kind":"multijoin","joinPreds":[{"leftAlias":"A","leftPath":"Draw","op":"like","termKind":"const","const":"x"}]}],"arcs":[]}`))
	f.Add([]byte(`{"k":-1,"nodes":[{"id":"mj","kind":"multijoin","joinSelectivity":7}],"arcs":[["mj","mj"]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, reg := range regs {
			p, err := plan.UnmarshalPlan(data, reg)
			if err != nil {
				continue // rejected inputs only need to not panic
			}
			// The verifier must be total on whatever the decoder accepts.
			rep := plancheck.Check(p)

			first, err := json.Marshal(p)
			if err != nil {
				t.Fatalf("decoded plan does not marshal: %v", err)
			}
			p2, err := plan.UnmarshalPlan(first, reg)
			if err != nil {
				t.Fatalf("own encoding rejected: %v\nencoding: %s", err, first)
			}
			second, err := json.Marshal(p2)
			if err != nil {
				t.Fatalf("re-decoded plan does not marshal: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("unstable round trip:\nfirst:  %s\nsecond: %s", first, second)
			}
			// Verification must agree between the equivalent plans.
			if ok2 := plancheck.Check(p2).OK(); rep.OK() != ok2 {
				t.Fatalf("verification differs across round trip: %v vs %v", rep.OK(), ok2)
			}
		}
	})
}
