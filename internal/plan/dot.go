package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan in Graphviz syntax, using the shapes of Fig. 1:
// plaintext input/output markers, boxes for exact services, double boxes
// ("Mrecord") for search services, diamond join nodes and ellipse
// selections. When ann is non-nil the labels carry the tin/tout/fetch
// annotations of the fully instantiated plan.
func (p *Plan) DOT(ann *Annotated) string { return p.DOTOverlay(ann, nil) }

// DOTOverlay renders like DOT with one extra measured line per node,
// keyed by node ID: planviz -trace feeds it the per-operator call
// counts, fetch depth and busy time aggregated from an execution trace.
// Overlaid nodes are filled so the traced path stands out.
func (p *Plan) DOTOverlay(ann *Annotated, overlay map[string]string) string {
	return p.DOTStyled(ann, overlay, nil)
}

// DOTStyled renders like DOTOverlay with explicit per-node fill colors:
// a node present in fills is painted that color instead of the default
// overlay highlight. planviz uses it to flag fidelity-drifted operators
// in red while the rest of the traced path keeps the standard tint.
func (p *Plan) DOTStyled(ann *Annotated, overlay, fills map[string]string) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  rankdir=LR;\n")
	for _, id := range p.NodeIDs() {
		n := p.nodes[id]
		label := n.label()
		if ann != nil {
			if a, ok := ann.Ann[id]; ok && n.Kind != KindInput && n.Kind != KindOutput {
				label += fmt.Sprintf("\\ntin=%.4g tout=%.4g", a.TIn, a.TOut)
				if a.Fetches > 0 {
					label += fmt.Sprintf(" F=%d", a.Fetches)
				}
			}
		}
		fill := ""
		if o, ok := overlay[id]; ok && o != "" {
			label += "\\n" + o
			fill = "#fff3c4"
		}
		if c, ok := fills[id]; ok && c != "" {
			fill = c
		}
		extra := ""
		if fill != "" {
			extra = fmt.Sprintf(" style=filled fillcolor=%q", fill)
		}
		fmt.Fprintf(&b, "  %q [label=%q shape=%s%s];\n", id, label, n.shape(), extra)
	}
	for _, from := range p.NodeIDs() {
		for _, to := range p.Successors(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (n *Node) label() string {
	switch n.Kind {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindService:
		tag := "exact"
		if n.IsSearch() {
			tag = "search"
		}
		return fmt.Sprintf("%s\\n[%s %s]", n.ID, tag, n.Interface.Name)
	case KindJoin:
		return fmt.Sprintf("join\\n%s", n.Strategy)
	case KindMultiJoin:
		return fmt.Sprintf("multijoin\\n%d cross preds", len(n.JoinPreds))
	case KindSelection:
		preds := make([]string, len(n.Selections))
		for i, s := range n.Selections {
			preds[i] = s.String()
		}
		return "σ " + strings.Join(preds, " and ")
	default:
		return n.ID
	}
}

func (n *Node) shape() string {
	switch n.Kind {
	case KindInput, KindOutput:
		return "plaintext"
	case KindService:
		if n.IsSearch() {
			return "box3d"
		}
		return "box"
	case KindJoin:
		return "diamond"
	case KindMultiJoin:
		return "Mdiamond"
	case KindSelection:
		return "ellipse"
	default:
		return "box"
	}
}

// Describe renders a human-readable multi-line summary of the plan in
// topological order, used by the CLI explainers.
func (p *Plan) Describe(ann *Annotated) string {
	order, err := p.TopoSort()
	if err != nil {
		return "invalid plan: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan (K=%d)\n", p.K)
	for _, id := range order {
		n := p.nodes[id]
		fmt.Fprintf(&b, "  %-12s %-10s", id, n.Kind)
		switch n.Kind {
		case KindService:
			tag := "exact"
			if n.IsSearch() {
				tag = "search"
			}
			fmt.Fprintf(&b, " %s %s", tag, n.Interface.Name)
			if n.PipeSelectivity > 0 && n.PipeSelectivity < 1 {
				fmt.Fprintf(&b, " pipeSel=%.3g", n.PipeSelectivity)
			}
		case KindJoin:
			fmt.Fprintf(&b, " %s sel=%.3g", n.Strategy, n.JoinSelectivity)
		case KindMultiJoin:
			fmt.Fprintf(&b, " %d-ary sel=%.3g", len(p.pred[id]), n.JoinSelectivity)
		case KindSelection:
			fmt.Fprintf(&b, " sel=%.3g", n.Selectivity)
		}
		if ann != nil {
			if a, ok := ann.Ann[id]; ok && n.Kind != KindInput {
				fmt.Fprintf(&b, "  tin=%.4g tout=%.4g", a.TIn, a.TOut)
				if a.Fetches > 0 {
					fmt.Fprintf(&b, " F=%d", a.Fetches)
				}
				if a.Calls > 0 {
					fmt.Fprintf(&b, " calls=%.4g", a.Calls)
				}
			}
		}
		if succ := p.Successors(id); len(succ) > 0 {
			fmt.Fprintf(&b, "  -> %s", strings.Join(succ, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
