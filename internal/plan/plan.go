// Package plan models executable query plans (Section 3.2): directed
// acyclic graphs whose nodes are service invocations, parallel joins,
// selections and the query input/output, and whose arcs carry dataflow.
// The package also implements the annotation engine that computes the
// expected tuple flows (tin, tout) and request-response counts of a fully
// instantiated plan, reproducing the worked numbers of Figs. 3 and 10.
package plan

import (
	"fmt"
	"sort"

	"seco/internal/join"
	"seco/internal/mart"
	"seco/internal/query"
	"seco/internal/service"
)

// NodeKind discriminates plan nodes, following the alphabet of Fig. 1.
type NodeKind int

const (
	// KindInput is the unique start node that injects the single user
	// input tuple.
	KindInput NodeKind = iota
	// KindOutput is the unique sink returning combinations to the query
	// interface.
	KindOutput
	// KindService is a service invocation (exact or search; the service
	// statistics decide).
	KindService
	// KindJoin is an explicit parallel-join node.
	KindJoin
	// KindSelection evaluates residual predicates on passing tuples.
	KindSelection
	// KindMultiJoin is an n-ary ranked join over three or more branches:
	// all cross-branch predicates are evaluated in one operator, so cyclic
	// connection patterns never materialize an intermediate larger than the
	// output. Legality (atomic equality or bounded proximity only) is
	// enforced by plancheck via join.LegalMultiway.
	KindMultiJoin
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindService:
		return "service"
	case KindJoin:
		return "join"
	case KindSelection:
		return "selection"
	case KindMultiJoin:
		return "multijoin"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one operation of a query plan.
type Node struct {
	// ID is unique within the plan. Service nodes use the query alias.
	ID string
	// Kind discriminates the variant.
	Kind NodeKind

	// Service-node fields.

	// Alias is the query alias of a service node.
	Alias string
	// Interface is the bound service interface.
	Interface *mart.Interface
	// Stats is the statistics snapshot used for annotation and costing.
	Stats service.Stats
	// Bindings describes how each input path is covered (constants,
	// INPUT variables, or pipes from upstream services).
	Bindings []query.InputBinding
	// PipeSelectivity is the probability that one upstream tuple piped
	// into this service yields any match (the selectivity of the pipe
	// join; 1 for services fed only by user input).
	PipeSelectivity float64
	// Limit caps the tuples kept per invocation (0 = no cap). Fig. 10
	// keeps only the best restaurant per theatre: Limit = 1.
	Limit int

	// Join-node fields.

	// Strategy is the parallel-join method.
	Strategy join.Strategy
	// JoinSelectivity is the fraction of candidate pairs that satisfy
	// the join predicate.
	JoinSelectivity float64
	// JoinPreds are the equality predicates evaluated by the join.
	JoinPreds []query.Predicate

	// Selection-node fields.

	// Selections are the residual predicates evaluated by a selection
	// node.
	Selections []query.Predicate
	// Selectivity is their combined selectivity estimate.
	Selectivity float64
}

// IsSearch reports whether a service node invokes a search service.
func (n *Node) IsSearch() bool {
	return n.Kind == KindService && n.Interface != nil && n.Interface.IsSearch()
}

// PipedFrom reports whether any input of a service node is piped from an
// upstream service (a BindJoin binding), which forces one invocation per
// incoming tuple instead of a single invocation.
func (n *Node) PipedFrom() bool {
	for _, b := range n.Bindings {
		if b.Source.Kind == query.BindJoin {
			return true
		}
	}
	return false
}

// Plan is a query plan DAG. Build it with AddNode/Connect, then Validate.
type Plan struct {
	nodes map[string]*Node
	succ  map[string][]string
	pred  map[string][]string
	// K is the number of requested output combinations (the optimization
	// parameter of Section 3.2).
	K int
}

// New returns an empty plan with the given K.
func New(k int) *Plan {
	return &Plan{
		nodes: make(map[string]*Node),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
		K:     k,
	}
}

// AddNode inserts a node; IDs must be unique.
func (p *Plan) AddNode(n *Node) error {
	if n.ID == "" {
		return fmt.Errorf("plan: node with empty ID")
	}
	if _, dup := p.nodes[n.ID]; dup {
		return fmt.Errorf("plan: duplicate node %q", n.ID)
	}
	p.nodes[n.ID] = n
	return nil
}

// Connect adds a dataflow arc from → to.
func (p *Plan) Connect(from, to string) error {
	if _, ok := p.nodes[from]; !ok {
		return fmt.Errorf("plan: arc from unknown node %q", from)
	}
	if _, ok := p.nodes[to]; !ok {
		return fmt.Errorf("plan: arc to unknown node %q", to)
	}
	for _, s := range p.succ[from] {
		if s == to {
			return fmt.Errorf("plan: duplicate arc %s→%s", from, to)
		}
	}
	p.succ[from] = append(p.succ[from], to)
	p.pred[to] = append(p.pred[to], from)
	return nil
}

// Node returns a node by ID.
func (p *Plan) Node(id string) (*Node, bool) {
	n, ok := p.nodes[id]
	return n, ok
}

// Successors returns the successors of a node, sorted.
func (p *Plan) Successors(id string) []string {
	out := append([]string(nil), p.succ[id]...)
	sort.Strings(out)
	return out
}

// Predecessors returns the predecessors of a node, sorted.
func (p *Plan) Predecessors(id string) []string {
	in := append([]string(nil), p.pred[id]...)
	sort.Strings(in)
	return in
}

// NodeIDs returns every node ID, sorted.
func (p *Plan) NodeIDs() []string {
	ids := make([]string, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ServiceNodes returns the service nodes in topological order.
func (p *Plan) ServiceNodes() []*Node {
	order, err := p.TopoSort()
	if err != nil {
		return nil
	}
	var ns []*Node
	for _, id := range order {
		if n := p.nodes[id]; n.Kind == KindService {
			ns = append(ns, n)
		}
	}
	return ns
}

// TopoSort returns a deterministic topological order (Kahn's algorithm,
// smallest ID first) or an error if the graph has a cycle.
func (p *Plan) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(p.nodes))
	for id := range p.nodes {
		indeg[id] = len(p.pred[id])
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		added := false
		for _, s := range p.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
				added = true
			}
		}
		if added {
			sort.Strings(ready)
		}
	}
	if len(order) != len(p.nodes) {
		return nil, fmt.Errorf("plan: cycle detected (%d of %d nodes ordered)", len(order), len(p.nodes))
	}
	return order, nil
}

// Validate checks structural well-formedness: exactly one input and one
// output node, acyclicity, every node on a path from input to output,
// join nodes with exactly two predecessors (multijoin nodes with at least
// two), service and selection nodes with exactly one, and K positive.
func (p *Plan) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("plan: K must be positive, got %d", p.K)
	}
	var inputs, outputs int
	for _, n := range p.nodes {
		switch n.Kind {
		case KindInput:
			inputs++
			if len(p.pred[n.ID]) != 0 {
				return fmt.Errorf("plan: input node %q has predecessors", n.ID)
			}
		case KindOutput:
			outputs++
			if len(p.succ[n.ID]) != 0 {
				return fmt.Errorf("plan: output node %q has successors", n.ID)
			}
			if len(p.pred[n.ID]) != 1 {
				return fmt.Errorf("plan: output node %q needs exactly one predecessor, has %d", n.ID, len(p.pred[n.ID]))
			}
		case KindJoin:
			if len(p.pred[n.ID]) != 2 {
				return fmt.Errorf("plan: join node %q needs exactly two predecessors, has %d", n.ID, len(p.pred[n.ID]))
			}
			if err := n.Strategy.Validate(); err != nil {
				return fmt.Errorf("plan: join node %q: %w", n.ID, err)
			}
			if n.JoinSelectivity <= 0 || n.JoinSelectivity > 1 {
				return fmt.Errorf("plan: join node %q selectivity %v out of (0,1]", n.ID, n.JoinSelectivity)
			}
		case KindMultiJoin:
			if len(p.pred[n.ID]) < 2 {
				return fmt.Errorf("plan: multijoin node %q needs at least two predecessors, has %d", n.ID, len(p.pred[n.ID]))
			}
			if n.JoinSelectivity <= 0 || n.JoinSelectivity > 1 {
				return fmt.Errorf("plan: multijoin node %q selectivity %v out of (0,1]", n.ID, n.JoinSelectivity)
			}
		case KindService:
			if len(p.pred[n.ID]) != 1 {
				return fmt.Errorf("plan: service node %q needs exactly one predecessor, has %d", n.ID, len(p.pred[n.ID]))
			}
			if n.Interface == nil {
				return fmt.Errorf("plan: service node %q has no interface", n.ID)
			}
			if err := n.Stats.Validate(); err != nil {
				return fmt.Errorf("plan: service node %q: %w", n.ID, err)
			}
			if n.PipeSelectivity < 0 || n.PipeSelectivity > 1 {
				return fmt.Errorf("plan: service node %q pipe selectivity %v out of [0,1]", n.ID, n.PipeSelectivity)
			}
		case KindSelection:
			if len(p.pred[n.ID]) != 1 {
				return fmt.Errorf("plan: selection node %q needs exactly one predecessor, has %d", n.ID, len(p.pred[n.ID]))
			}
			if n.Selectivity <= 0 || n.Selectivity > 1 {
				return fmt.Errorf("plan: selection node %q selectivity %v out of (0,1]", n.ID, n.Selectivity)
			}
		}
	}
	if inputs != 1 {
		return fmt.Errorf("plan: need exactly one input node, have %d", inputs)
	}
	if outputs != 1 {
		return fmt.Errorf("plan: need exactly one output node, have %d", outputs)
	}
	order, err := p.TopoSort()
	if err != nil {
		return err
	}
	// Reachability from input and co-reachability from output.
	reach := map[string]bool{}
	for _, id := range order {
		if p.nodes[id].Kind == KindInput || anyReached(reach, p.pred[id]) {
			reach[id] = true
		}
	}
	coreach := map[string]bool{}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if p.nodes[id].Kind == KindOutput || anyReached(coreach, p.succ[id]) {
			coreach[id] = true
		}
	}
	for id := range p.nodes {
		if !reach[id] {
			return fmt.Errorf("plan: node %q not reachable from input", id)
		}
		if !coreach[id] {
			return fmt.Errorf("plan: node %q cannot reach output", id)
		}
	}
	return nil
}

func anyReached(set map[string]bool, ids []string) bool {
	for _, id := range ids {
		if set[id] {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the plan graph (nodes are copied shallowly
// except for slices, which are duplicated).
func (p *Plan) Clone() *Plan {
	c := New(p.K)
	for id, n := range p.nodes {
		cn := *n
		cn.Bindings = append([]query.InputBinding(nil), n.Bindings...)
		cn.JoinPreds = append([]query.Predicate(nil), n.JoinPreds...)
		cn.Selections = append([]query.Predicate(nil), n.Selections...)
		c.nodes[id] = &cn
	}
	for from, tos := range p.succ {
		c.succ[from] = append([]string(nil), tos...)
	}
	for to, froms := range p.pred {
		c.pred[to] = append([]string(nil), froms...)
	}
	return c
}
