package plan

import (
	"strings"
	"testing"

	"seco/internal/join"
	"seco/internal/mart"
	"seco/internal/service"
)

func movieReg(t *testing.T) *mart.Registry {
	t.Helper()
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func travelReg(t *testing.T) *mart.Registry {
	t.Helper()
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRunningExamplePlanValid(t *testing.T) {
	p, q, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	if q == nil || !q.Analyzed() {
		t.Error("query not analyzed")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	order, err := p.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, c := range [][2]string{{"input", "M"}, {"M", "MS"}, {"T", "MS"}, {"MS", "R"}, {"R", "output"}} {
		if pos[c[0]] >= pos[c[1]] {
			t.Errorf("topo order violates %s before %s: %v", c[0], c[1], order)
		}
	}
}

func TestPlanStructuralErrors(t *testing.T) {
	reg := movieReg(t)
	si, _ := reg.Interface("Movie1")
	stats := service.Stats{AvgCardinality: 1, Scoring: service.Constant(0.5)}

	t.Run("duplicate node", func(t *testing.T) {
		p := New(10)
		if err := p.AddNode(&Node{ID: "a", Kind: KindInput}); err != nil {
			t.Fatal(err)
		}
		if err := p.AddNode(&Node{ID: "a", Kind: KindOutput}); err == nil {
			t.Error("duplicate accepted")
		}
	})
	t.Run("empty id", func(t *testing.T) {
		p := New(10)
		if err := p.AddNode(&Node{Kind: KindInput}); err == nil {
			t.Error("empty ID accepted")
		}
	})
	t.Run("arc to unknown", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "a", Kind: KindInput})
		if err := p.Connect("a", "b"); err == nil {
			t.Error("arc to unknown node accepted")
		}
		if err := p.Connect("b", "a"); err == nil {
			t.Error("arc from unknown node accepted")
		}
	})
	t.Run("duplicate arc", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "a", Kind: KindInput})
		_ = p.AddNode(&Node{ID: "b", Kind: KindOutput})
		if err := p.Connect("a", "b"); err != nil {
			t.Fatal(err)
		}
		if err := p.Connect("a", "b"); err == nil {
			t.Error("duplicate arc accepted")
		}
	})
	t.Run("nonpositive K", func(t *testing.T) {
		p := New(0)
		if err := p.Validate(); err == nil {
			t.Error("K=0 accepted")
		}
	})
	t.Run("missing output", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "in", Kind: KindInput})
		if err := p.Validate(); err == nil {
			t.Error("plan without output accepted")
		}
	})
	t.Run("join with one predecessor", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "in", Kind: KindInput})
		_ = p.AddNode(&Node{ID: "out", Kind: KindOutput})
		_ = p.AddNode(&Node{ID: "j", Kind: KindJoin, JoinSelectivity: 0.5,
			Strategy: join.Strategy{Invocation: join.MergeScan}})
		_ = p.Connect("in", "j")
		_ = p.Connect("j", "out")
		if err := p.Validate(); err == nil {
			t.Error("join with one predecessor accepted")
		}
	})
	t.Run("unreachable node", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "in", Kind: KindInput})
		_ = p.AddNode(&Node{ID: "out", Kind: KindOutput})
		_ = p.AddNode(&Node{ID: "s", Kind: KindService, Interface: si, Stats: stats})
		_ = p.Connect("in", "out")
		// s dangles with no predecessor: caught as wrong arity.
		if err := p.Validate(); err == nil {
			t.Error("dangling service accepted")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "a", Kind: KindService, Interface: si, Stats: stats})
		_ = p.AddNode(&Node{ID: "b", Kind: KindService, Interface: si, Stats: stats})
		_ = p.Connect("a", "b")
		_ = p.Connect("b", "a")
		if _, err := p.TopoSort(); err == nil {
			t.Error("cycle not detected")
		}
	})
	t.Run("bad join selectivity", func(t *testing.T) {
		p := New(10)
		_ = p.AddNode(&Node{ID: "in", Kind: KindInput})
		_ = p.AddNode(&Node{ID: "out", Kind: KindOutput})
		_ = p.AddNode(&Node{ID: "s1", Kind: KindService, Interface: si, Stats: stats})
		_ = p.AddNode(&Node{ID: "s2", Kind: KindService, Interface: si, Stats: stats})
		_ = p.AddNode(&Node{ID: "j", Kind: KindJoin, JoinSelectivity: 0,
			Strategy: join.Strategy{Invocation: join.MergeScan}})
		_ = p.Connect("in", "s1")
		_ = p.Connect("in", "s2")
		_ = p.Connect("s1", "j")
		_ = p.Connect("s2", "j")
		_ = p.Connect("j", "out")
		if err := p.Validate(); err == nil {
			t.Error("zero join selectivity accepted")
		}
	})
}

func TestPlanClone(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	// Mutating the clone must not affect the original.
	n, _ := c.Node("MS")
	n.JoinSelectivity = 0.9
	orig, _ := p.Node("MS")
	if orig.JoinSelectivity == 0.9 {
		t.Error("clone shares nodes")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
	if len(c.NodeIDs()) != len(p.NodeIDs()) {
		t.Error("clone lost nodes")
	}
}

// E2 / Fig. 10: the annotation engine must reproduce the chapter's
// instantiated numbers exactly: Movie tout = 100 (5 fetches × chunk 20),
// Theatre tout = 25 (5 × 5), MS candidates = 1250 (2500 halved by the
// triangular completion), MS tout = 25 (× 2% Shows selectivity),
// Restaurant tin = 25 and tout = 10 = K (× 40% DinnerPlace selectivity,
// keeping the best restaurant per theatre).
func TestE2_Fig10Annotations(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(p, Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	check := func(id string, field string, got, want float64) {
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s.%s = %v, want %v", id, field, got, want)
		}
	}
	check("M", "tout", a.Ann["M"].TOut, 100)
	check("T", "tout", a.Ann["T"].TOut, 25)
	check("MS", "candidates", a.Ann["MS"].Candidates, 1250)
	check("MS", "tout", a.Ann["MS"].TOut, 25)
	check("R", "tin", a.Ann["R"].TIn, 25)
	check("R", "tout", a.Ann["R"].TOut, 10)
	check("output", "tout", a.Output(), 10)
	if !a.MeetsK() {
		t.Error("plan does not meet K=10")
	}
	if a.Ann["M"].Fetches != 5 || a.Ann["T"].Fetches != 5 {
		t.Errorf("fetches = %d/%d, want 5/5", a.Ann["M"].Fetches, a.Ann["T"].Fetches)
	}
	// Request-responses: Movie 5, Theatre 5, Restaurant 25 (one fetch per
	// piped theatre).
	check("M", "calls", a.Ann["M"].Calls, 5)
	check("T", "calls", a.Ann["T"].Calls, 5)
	check("R", "calls", a.Ann["R"].Calls, 25)
	check("plan", "totalCalls", a.TotalCalls(), 35)
}

// K back-propagation on the running example reproduces Section 5.6:
// required Restaurant output = 10, required MS output = 25.
func TestE2_Fig10BackPropagation(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	req, err := RequiredOutputs(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := req["R"]; got != 10 {
		t.Errorf("req[R] = %v, want 10", got)
	}
	if got := req["MS"]; got != 25 {
		t.Errorf("req[MS] = %v, want 25", got)
	}
	// Each MS input side must produce √(25/0.02/0.5) = √2500 = 50.
	if got := req["M"]; got != 50 {
		t.Errorf("req[M] = %v, want 50", got)
	}
	if got := req["T"]; got != 50 {
		t.Errorf("req[T] = %v, want 50", got)
	}
}

// E1 / Fig. 3: the travel plan's annotations with documented parameters:
// Conference 1→20 (avg cardinality 20 as stated with Fig. 2), Weather
// selective in context (20 in → 2 out after the temperature selection).
func TestE1_Fig3Annotations(t *testing.T) {
	p, _, err := TravelPlan(travelReg(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Ann["C"].TOut; got != 20 {
		t.Errorf("Conference tout = %v, want 20", got)
	}
	// Weather + selection: 20 → 6 → 2.
	if got := a.Ann["W"].TOut; got != 6 {
		t.Errorf("Weather tout = %v, want 6", got)
	}
	if got := a.Ann["sigma"].TOut; got != 2 {
		t.Errorf("selection tout = %v, want 2", got)
	}
	// The exact Weather service is selective in the context of the query:
	// fewer tuples leave the W+σ pair than enter it.
	if a.Ann["sigma"].TOut >= a.Ann["W"].TIn {
		t.Error("Weather not selective in context")
	}
	// Flights and hotels: 2 invocations × 2 fetches × chunk 10 = 40 each.
	if got := a.Ann["F"].TOut; got != 40 {
		t.Errorf("Flight tout = %v, want 40", got)
	}
	if got := a.Ann["H"].TOut; got != 40 {
		t.Errorf("Hotel tout = %v, want 40", got)
	}
	// MS join: 1600 candidates × 5% = 80 expected combinations ≥ K.
	if got := a.Ann["MS"].Candidates; got != 1600 {
		t.Errorf("MS candidates = %v, want 1600", got)
	}
	if !a.MeetsK() {
		t.Error("travel plan does not meet K")
	}
}

func TestAnnotateRejectsBadFetches(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Annotate(p, map[string]int{"M": 0}); err == nil {
		t.Error("fetch factor 0 accepted")
	}
}

// Increasing any fetching factor never decreases any node's tout
// (monotonicity invariant used by phase 3 of the optimizer).
func TestAnnotateMonotoneInFetches(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Annotate(p, map[string]int{"M": 2, "T": 2, "R": 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bump := range []string{"M", "T", "R"} {
		f := map[string]int{"M": 2, "T": 2, "R": 1}
		f[bump]++
		a, err := Annotate(p, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range p.NodeIDs() {
			if a.Ann[id].TOut < base.Ann[id].TOut-1e-9 {
				t.Errorf("bumping %s decreased tout of %s: %v → %v",
					bump, id, base.Ann[id].TOut, a.Ann[id].TOut)
			}
		}
	}
}

func TestSearchYieldCappedByCardinality(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Movie has average cardinality 200 = 10 chunks; asking for 100
	// fetches cannot produce more than 200 tuples.
	a, err := Annotate(p, map[string]int{"M": 100, "T": 1, "R": 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Ann["M"].TOut; got != 200 {
		t.Errorf("Movie tout = %v, want 200 (capped)", got)
	}
}

func TestDOTAndDescribe(t *testing.T) {
	p, _, err := RunningExamplePlan(movieReg(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Annotate(p, Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	dot := p.DOT(a)
	for _, frag := range []string{"digraph plan", `"M" ->`, "diamond", "box3d", "tout=100"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
	desc := p.Describe(a)
	for _, frag := range []string{"plan (K=10)", "search Movie1", "merge-scan/triangular", "tout=10"} {
		if !strings.Contains(desc, frag) {
			t.Errorf("Describe missing %q in:\n%s", frag, desc)
		}
	}
	// DOT without annotations still renders.
	if !strings.Contains(p.DOT(nil), "digraph plan") {
		t.Error("DOT(nil) broken")
	}
}

func TestServiceNodesTopoOrder(t *testing.T) {
	p, _, err := TravelPlan(travelReg(t))
	if err != nil {
		t.Fatal(err)
	}
	ns := p.ServiceNodes()
	if len(ns) != 4 || ns[0].ID != "C" || ns[1].ID != "W" {
		ids := make([]string, len(ns))
		for i, n := range ns {
			ids[i] = n.ID
		}
		t.Errorf("ServiceNodes = %v", ids)
	}
}
