package plan

import (
	"encoding/json"
	"testing"
)

// Round trip: marshal the Fig. 10 plan, decode it against the same
// registry, and verify the structure, annotations and rendering survive.
func TestPlanJSONRoundTrip(t *testing.T) {
	reg := movieReg(t)
	p, _, err := RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded plan invalid: %v", err)
	}
	if back.K != p.K {
		t.Errorf("K = %d, want %d", back.K, p.K)
	}
	// Annotations must match exactly: same flows through the same plan.
	a1, err := Annotate(p, Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Annotate(back, Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.NodeIDs() {
		if a1.Ann[id] != a2.Ann[id] {
			t.Errorf("annotation of %s drifted: %+v vs %+v", id, a1.Ann[id], a2.Ann[id])
		}
	}
	// Idempotence: a second round trip produces identical JSON.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("JSON not stable across round trips")
	}
	// The decoded service node keeps its bindings and pipe settings.
	r1, _ := p.Node("R")
	r2, _ := back.Node("R")
	if len(r2.Bindings) != len(r1.Bindings) || r2.PipeSelectivity != r1.PipeSelectivity || r2.Limit != r1.Limit {
		t.Errorf("R node drifted: %+v vs %+v", r2, r1)
	}
	if !r2.PipedFrom() {
		t.Error("decoded R lost its piped bindings")
	}
}

func TestPlanJSONTravelRoundTrip(t *testing.T) {
	reg := travelReg(t)
	p, _, err := TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded travel plan invalid: %v", err)
	}
	sigma, ok := back.Node("sigma")
	if !ok || len(sigma.Selections) != 1 || sigma.Selectivity != 1.0/3.0 {
		t.Errorf("selection node drifted: %+v", sigma)
	}
}

func TestUnmarshalPlanErrors(t *testing.T) {
	reg := movieReg(t)
	cases := []string{
		`{`, // malformed
		`{"k":10,"nodes":[{"id":"x","kind":"bogus"}]}`,
		`{"k":10,"nodes":[{"id":"s","kind":"service","interface":"Nope"}]}`,
		`{"k":10,"nodes":[{"id":"j","kind":"join"}]}`, // no strategy
		`{"k":10,"nodes":[{"id":"a","kind":"input"}],"arcs":[["a","missing"]]}`,
		`{"k":10,"nodes":[{"id":"s","kind":"service","interface":"Movie1","stats":{"scoring":"bogus"}}]}`,
		`{"k":10,"nodes":[{"id":"s","kind":"service","interface":"Movie1","stats":{"scoring":"constant"},"bindings":[{"path":"p","kind":"bogus","op":"="}]}]}`,
	}
	for _, src := range cases {
		if _, err := UnmarshalPlan([]byte(src), reg); err == nil {
			t.Errorf("UnmarshalPlan(%q) succeeded, want error", src)
		}
	}
}

func TestCutFirst(t *testing.T) {
	a, p, ok := cutFirst("T.Movies.Title")
	if !ok || a != "T" || p != "Movies.Title" {
		t.Errorf("cutFirst = %q %q %v", a, p, ok)
	}
	if _, _, ok := cutFirst("nodot"); ok {
		t.Error("cutFirst accepted dotless string")
	}
}
