package plan

import (
	"fmt"
	"math"

	"seco/internal/join"
)

// Annotation carries the expected flow numbers of one node in a fully
// instantiated plan (Section 3.2, Figs. 3 and 10).
type Annotation struct {
	// TIn is the expected number of tuples entering the node.
	TIn float64
	// TOut is the expected number of tuples leaving the node.
	TOut float64
	// Fetches is the fetching factor of a chunked service node: chunks
	// fetched per invocation. Zero for other nodes.
	Fetches int
	// Calls is the expected number of request-responses issued by a
	// service node (invocations × fetches for chunked services).
	Calls float64
	// Candidates is, for join nodes, the number of candidate pairs the
	// join processes (after the completion-strategy reduction).
	Candidates float64
}

// Annotated is a fully instantiated plan: the plan plus per-node flow
// annotations computed for given fetching factors.
type Annotated struct {
	Plan *Plan
	// Ann maps node ID → its annotation.
	Ann map[string]Annotation
	// Fetches is the fetching-factor assignment the annotation used.
	Fetches map[string]int
}

// TriangularFactor is the analytical fraction of candidate pairs a
// triangular completion processes, following the worked example of
// Section 5.6 (2500 candidates → 1250 "most promising" combinations).
const TriangularFactor = 0.5

// MultiwayFactor is the analytical fraction of the candidate product a
// multi-way ranked join explores: the leapfrog-style sorted intersection
// skips candidate prefixes that cannot complete on every edge, pruning
// about as aggressively as one triangular completion — but applied once
// across all branches instead of compounding per binary join, which is
// exactly why a cyclic pattern annotates cheaper as one n-ary node than
// as any binary tree.
const MultiwayFactor = 0.5

// Annotate computes tin/tout/calls for every node given per-service
// fetching factors (chunks fetched per invocation; defaulting to 1 for
// chunked services without an entry, per Section 5.5). The plan must be
// valid.
func Annotate(p *Plan, fetches map[string]int) (*Annotated, error) {
	order, err := p.TopoSort()
	if err != nil {
		return nil, err
	}
	a := &Annotated{Plan: p, Ann: make(map[string]Annotation, len(order)), Fetches: map[string]int{}}
	for _, id := range order {
		n := p.nodes[id]
		var ann Annotation
		switch n.Kind {
		case KindInput:
			// The user always injects one single input tuple.
			ann.TOut = 1
		case KindOutput:
			ann.TIn = a.inFlow(p, id)
			ann.TOut = ann.TIn
		case KindSelection:
			ann.TIn = a.inFlow(p, id)
			ann.TOut = ann.TIn * n.Selectivity
		case KindService:
			ann.TIn = a.inFlow(p, id)
			f := 1
			if n.Stats.Chunked() {
				if v, ok := fetches[n.ID]; ok {
					if v < 1 {
						return nil, fmt.Errorf("plan: fetching factor %d for %q below 1", v, n.ID)
					}
					f = v
				}
				ann.Fetches = f
				a.Fetches[n.ID] = f
			}
			yield := n.Stats.AvgCardinality
			if n.Stats.Chunked() {
				yield = float64(n.Stats.ChunkSize * f)
				if n.Stats.AvgCardinality > 0 {
					yield = math.Min(yield, n.Stats.AvgCardinality)
				}
			}
			if n.Limit > 0 {
				yield = math.Min(yield, float64(n.Limit))
			}
			pipeSel := n.PipeSelectivity
			if pipeSel == 0 {
				pipeSel = 1
			}
			ann.TOut = ann.TIn * pipeSel * yield
			// Piped services (some input arrives per upstream tuple) are
			// invoked once per input tuple; services whose inputs are all
			// constants or INPUT variables are invoked exactly once, even
			// when placed in series after other services.
			invocations := 1.0
			if n.PipedFrom() {
				invocations = ann.TIn
			}
			ann.Calls = invocations * float64(f)
		case KindJoin:
			preds := p.Predecessors(id)
			l := a.Ann[preds[0]].TOut
			r := a.Ann[preds[1]].TOut
			factor := 1.0
			if n.Strategy.Completion == join.Triangular {
				factor = TriangularFactor
			}
			ann.Candidates = l * r * factor
			ann.TIn = l + r
			ann.TOut = ann.Candidates * n.JoinSelectivity
		case KindMultiJoin:
			// One n-ary node evaluates every cross-branch edge at once: the
			// sorted intersection skips candidate prefixes that cannot
			// complete on every edge (the Candidates side pays only the
			// MultiwayFactor fraction of the product), but it is lossless —
			// every combination satisfying all edges is emitted, so TOut
			// keeps the full product, where a binary tree surrenders a
			// completion factor of its output at each triangular join.
			product := 1.0
			sum := 0.0
			for _, pr := range p.Predecessors(id) {
				t := a.Ann[pr].TOut
				product *= t
				sum += t
			}
			ann.Candidates = product * MultiwayFactor
			ann.TIn = sum
			ann.TOut = product * n.JoinSelectivity
		}
		a.Ann[id] = ann
	}
	return a, nil
}

// inFlow sums the TOut of a node's predecessors (service and selection
// nodes have exactly one).
func (a *Annotated) inFlow(p *Plan, id string) float64 {
	sum := 0.0
	for _, pr := range p.Predecessors(id) {
		sum += a.Ann[pr].TOut
	}
	return sum
}

// Output returns the expected number of result combinations of the plan.
func (a *Annotated) Output() float64 {
	for id, n := range a.Plan.nodes {
		if n.Kind == KindOutput {
			return a.Ann[id].TOut
		}
	}
	return 0
}

// TotalCalls sums the expected request-responses over all service nodes.
func (a *Annotated) TotalCalls() float64 {
	sum := 0.0
	for id, n := range a.Plan.nodes {
		if n.Kind == KindService {
			sum += a.Ann[id].Calls
		}
	}
	return sum
}

// MeetsK reports whether the annotated plan is expected to deliver at
// least K combinations.
func (a *Annotated) MeetsK() bool { return a.Output() >= float64(a.Plan.K) }

// RequiredOutputs back-propagates K through the plan (the "K can be
// back-propagated through the nodes of the plan" step of Section 5.6),
// returning for each node the number of output tuples it must produce for
// the plan to deliver K combinations. It inverts the forward rules:
// selections divide by their selectivity, piped services divide by pipe
// selectivity × per-input yield, joins divide by selectivity and the
// completion factor and split the candidate requirement evenly between
// their two inputs (each side must produce √candidates).
func RequiredOutputs(p *Plan) (map[string]float64, error) {
	order, err := p.TopoSort()
	if err != nil {
		return nil, err
	}
	req := make(map[string]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n := p.nodes[id]
		if n.Kind == KindOutput {
			req[id] = float64(p.K)
			continue
		}
		// Requirement flows from the successors: take the max over them
		// (a node may feed several consumers).
		need := 0.0
		for _, s := range p.Successors(id) {
			var up float64
			sn := p.nodes[s]
			switch sn.Kind {
			case KindOutput:
				up = req[s]
			case KindSelection:
				up = req[s] / sn.Selectivity
			case KindService:
				pipeSel := sn.PipeSelectivity
				if pipeSel == 0 {
					pipeSel = 1
				}
				// The piped service needs enough input tuples:
				// req(service) / (pipeSel × yield-per-input); the yield
				// per input depends on the fetching factor chosen later,
				// so use one chunk as the conservative baseline.
				yield := sn.Stats.AvgCardinality
				if sn.Stats.Chunked() {
					yield = float64(sn.Stats.ChunkSize)
				}
				if sn.Limit > 0 {
					yield = math.Min(yield, float64(sn.Limit))
				}
				if yield <= 0 {
					yield = 1
				}
				up = req[s] / (pipeSel * yield)
			case KindJoin:
				factor := 1.0
				if sn.Strategy.Completion == join.Triangular {
					factor = TriangularFactor
				}
				candidates := req[s] / sn.JoinSelectivity / factor
				up = math.Sqrt(candidates)
			case KindMultiJoin:
				// The intersection is lossless, so the branch product only
				// needs to cover req/selectivity; split evenly over the N
				// branches: each must produce the N-th root.
				candidates := req[s] / sn.JoinSelectivity
				if nb := len(p.pred[s]); nb > 0 {
					up = math.Pow(candidates, 1/float64(nb))
				} else {
					up = candidates
				}
			}
			if up > need {
				need = up
			}
		}
		if n.Kind == KindInput && need < 1 {
			need = 1
		}
		req[id] = need
	}
	return req, nil
}
