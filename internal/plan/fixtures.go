package plan

import (
	"fmt"
	"time"

	"seco/internal/join"
	"seco/internal/mart"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// This file builds the chapter's two worked plans as reusable fixtures:
// the fully instantiated running-example plan of Fig. 10 (topology (d) of
// Fig. 9) and the Conference/Weather/Flight/Hotel plan of Figs. 2–3. The
// statistics encode the chapter's published numbers where given (movie
// chunks of 20, theatre chunks of 5, Shows selectivity 2%, DinnerPlace
// selectivity 40%, Conference average cardinality 20) and documented
// defaults elsewhere.

// RunningExampleStats returns the service statistics of the running
// example keyed by query alias.
func RunningExampleStats() map[string]service.Stats {
	return map[string]service.Stats{
		"M": {
			AvgCardinality: 200, ChunkSize: 20,
			Latency: 120 * time.Millisecond, CostPerCall: 1,
			Scoring: service.Linear(200),
		},
		"T": {
			AvgCardinality: 50, ChunkSize: 5,
			Latency: 80 * time.Millisecond, CostPerCall: 1,
			Scoring: service.Square(50),
		},
		"R": {
			AvgCardinality: 30, ChunkSize: 10,
			Latency: 100 * time.Millisecond, CostPerCall: 1,
			Scoring: service.Linear(30),
		},
	}
}

// RunningExamplePlan builds the fully instantiated plan of Fig. 10:
// Movie1 and Theatre1 joined by a triangular merge-scan parallel join
// implementing Shows (selectivity 2%), piped into Restaurant1 via
// DinnerPlace (selectivity 40%, keeping the best restaurant per theatre),
// with K = 10. The returned plan is validated.
func RunningExamplePlan(reg *mart.Registry) (*Plan, *query.Query, error) {
	q, err := query.RunningExample(reg)
	if err != nil {
		return nil, nil, err
	}
	f, err := q.CheckFeasibility()
	if err != nil {
		return nil, nil, err
	}
	if !f.Feasible {
		return nil, nil, fmt.Errorf("plan: running example infeasible: %v", f.Unreachable)
	}
	stats := RunningExampleStats()
	p := New(10)
	shows, _ := reg.Pattern("Shows")
	dinner, _ := reg.Pattern("DinnerPlace")

	nodes := []*Node{
		{ID: "input", Kind: KindInput},
		{ID: "output", Kind: KindOutput},
		{
			ID: "M", Kind: KindService, Alias: "M",
			Interface: mustInterface(reg, "Movie1"), Stats: stats["M"],
			Bindings: f.Bindings["M"],
		},
		{
			ID: "T", Kind: KindService, Alias: "T",
			Interface: mustInterface(reg, "Theatre1"), Stats: stats["T"],
			Bindings: f.Bindings["T"],
		},
		{
			ID: "MS", Kind: KindJoin,
			Strategy: join.Strategy{
				Invocation: join.MergeScan,
				Completion: join.Triangular,
			},
			JoinSelectivity: shows.Selectivity,
			JoinPreds:       patternPreds(q, "Shows"),
		},
		{
			ID: "R", Kind: KindService, Alias: "R",
			Interface: mustInterface(reg, "Restaurant1"), Stats: stats["R"],
			Bindings:        f.Bindings["R"],
			PipeSelectivity: dinner.Selectivity,
			Limit:           1,
		},
	}
	for _, n := range nodes {
		if err := p.AddNode(n); err != nil {
			return nil, nil, err
		}
	}
	for _, arc := range [][2]string{
		{"input", "M"}, {"input", "T"},
		{"M", "MS"}, {"T", "MS"},
		{"MS", "R"}, {"R", "output"},
	} {
		if err := p.Connect(arc[0], arc[1]); err != nil {
			return nil, nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, q, nil
}

// Fig10Fetches is the fetching-factor assignment of Section 5.6: 5 chunks
// of 20 movies and 5 chunks of 5 theatres (Restaurant keeps one fetch per
// invocation).
func Fig10Fetches() map[string]int {
	return map[string]int{"M": 5, "T": 5, "R": 1}
}

// TravelStats returns the service statistics of the Conference/Weather/
// Flight/Hotel plan, keyed by alias. Conference produces 20 tuples on
// average (the number given with Fig. 2); Weather returns one climate
// tuple per city and month; Flight and Hotel are chunked search services.
func TravelStats() map[string]service.Stats {
	return map[string]service.Stats{
		"C": {
			AvgCardinality: 20,
			Latency:        150 * time.Millisecond, CostPerCall: 1,
			Scoring: service.Constant(0.5),
		},
		"W": {
			AvgCardinality: 1,
			Latency:        60 * time.Millisecond, CostPerCall: 1,
			Scoring: service.Constant(0.5),
		},
		"F": {
			AvgCardinality: 40, ChunkSize: 10,
			Latency: 200 * time.Millisecond, CostPerCall: 2,
			Scoring: service.Linear(40),
		},
		"H": {
			AvgCardinality: 40, ChunkSize: 10,
			Latency: 90 * time.Millisecond, CostPerCall: 1,
			Scoring: service.Square(40),
		},
	}
}

// TravelPlan builds the plan of Figs. 2–3: Conference (exact,
// proliferative) piped into Weather (exact, made selective in the context
// of the query by the AvgTemp > 26 selection), whose surviving tuples feed
// the Flight and Hotel search services, merge-scan joined and returned.
func TravelPlan(reg *mart.Registry) (*Plan, *query.Query, error) {
	q, err := query.TravelExample(reg)
	if err != nil {
		return nil, nil, err
	}
	f, err := q.CheckFeasibility()
	if err != nil {
		return nil, nil, err
	}
	if !f.Feasible {
		return nil, nil, fmt.Errorf("plan: travel example infeasible: %v", f.Unreachable)
	}
	stats := TravelStats()
	p := New(10)
	forecast, _ := reg.Pattern("Forecast")

	var tempSelection []query.Predicate
	for _, pr := range q.SelectionsFor("W") {
		if pr.Left.Path == "AvgTemp" {
			tempSelection = append(tempSelection, pr)
		}
	}
	nodes := []*Node{
		{ID: "input", Kind: KindInput},
		{ID: "output", Kind: KindOutput},
		{
			ID: "C", Kind: KindService, Alias: "C",
			Interface: mustInterface(reg, "Conference1"), Stats: stats["C"],
			Bindings: f.Bindings["C"],
		},
		{
			ID: "W", Kind: KindService, Alias: "W",
			Interface: mustInterface(reg, "Weather1"), Stats: stats["W"],
			Bindings:        f.Bindings["W"],
			PipeSelectivity: forecast.Selectivity,
		},
		{
			ID: "sigma", Kind: KindSelection,
			Selections:  tempSelection,
			Selectivity: 1.0 / 3.0,
		},
		{
			ID: "F", Kind: KindService, Alias: "F",
			Interface: mustInterface(reg, "Flight1"), Stats: stats["F"],
			Bindings: f.Bindings["F"],
		},
		{
			ID: "H", Kind: KindService, Alias: "H",
			Interface: mustInterface(reg, "Hotel1"), Stats: stats["H"],
			Bindings: f.Bindings["H"],
		},
		{
			ID: "MS", Kind: KindJoin,
			Strategy: join.Strategy{
				Invocation: join.MergeScan,
				Completion: join.Rectangular,
			},
			JoinSelectivity: 0.05,
		},
	}
	for _, n := range nodes {
		if err := p.AddNode(n); err != nil {
			return nil, nil, err
		}
	}
	for _, arc := range [][2]string{
		{"input", "C"}, {"C", "W"}, {"W", "sigma"},
		{"sigma", "F"}, {"sigma", "H"},
		{"F", "MS"}, {"H", "MS"}, {"MS", "output"},
	} {
		if err := p.Connect(arc[0], arc[1]); err != nil {
			return nil, nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, q, nil
}

func mustInterface(reg *mart.Registry, name string) *mart.Interface {
	si, ok := reg.Interface(name)
	if !ok {
		panic("plan: fixture interface missing: " + name)
	}
	return si
}

// patternPreds returns the expanded join predicates of the named pattern
// use within q.
func patternPreds(q *query.Query, pattern string) []query.Predicate {
	var out []query.Predicate
	for _, u := range q.Patterns {
		if u.Name != pattern || u.Pattern == nil {
			continue
		}
		for _, j := range u.Pattern.Joins {
			out = append(out, query.Predicate{
				Left: query.PathRef{Alias: u.FromAlias, Path: j.From},
				Op:   types.OpEq,
				Right: query.Term{Kind: query.TermPath,
					Path: query.PathRef{Alias: u.ToAlias, Path: j.To}},
			})
		}
	}
	return out
}
