package plan

import (
	"encoding/json"
	"fmt"
	"time"

	"seco/internal/join"
	"seco/internal/mart"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// This file gives plans a stable JSON representation so optimized plans
// can be stored, shipped to an execution tier, and reloaded against a
// registry. Interfaces are serialized by name and re-resolved on load;
// everything else (statistics, bindings, strategies, predicates) is
// self-contained.

type jsonPlan struct {
	K     int         `json:"k"`
	Nodes []jsonNode  `json:"nodes"`
	Arcs  [][2]string `json:"arcs"`
}

type jsonNode struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`

	Alias           string        `json:"alias,omitempty"`
	Interface       string        `json:"interface,omitempty"`
	Stats           *jsonStats    `json:"stats,omitempty"`
	Bindings        []jsonBinding `json:"bindings,omitempty"`
	PipeSelectivity float64       `json:"pipeSelectivity,omitempty"`
	Limit           int           `json:"limit,omitempty"`

	Strategy        *jsonStrategy `json:"strategy,omitempty"`
	JoinSelectivity float64       `json:"joinSelectivity,omitempty"`
	JoinPreds       []jsonPred    `json:"joinPreds,omitempty"`

	Selections  []jsonPred `json:"selections,omitempty"`
	Selectivity float64    `json:"selectivity,omitempty"`
}

type jsonStats struct {
	AvgCardinality float64 `json:"avgCardinality"`
	ChunkSize      int     `json:"chunkSize"`
	LatencyMS      float64 `json:"latencyMs"`
	CostPerCall    float64 `json:"costPerCall"`
	Scoring        string  `json:"scoring"`
	ScoringN       int     `json:"scoringN,omitempty"`
	ScoringH       int     `json:"scoringH,omitempty"`
	ScoringHigh    float64 `json:"scoringHigh,omitempty"`
	ScoringLow     float64 `json:"scoringLow,omitempty"`
	ScoringRatio   float64 `json:"scoringRatio,omitempty"`
}

type jsonBinding struct {
	Path  string `json:"path"`
	Kind  string `json:"kind"` // const | input | join
	Op    string `json:"op"`
	Const string `json:"const,omitempty"`
	Input string `json:"input,omitempty"`
	From  string `json:"from,omitempty"` // Alias.Path
}

type jsonStrategy struct {
	Invocation     string `json:"invocation"`
	Completion     string `json:"completion"`
	H              int    `json:"h,omitempty"`
	RatioX         int    `json:"ratioX,omitempty"`
	RatioY         int    `json:"ratioY,omitempty"`
	FlushOnExhaust bool   `json:"flushOnExhaust,omitempty"`
}

type jsonPred struct {
	LeftAlias string `json:"leftAlias"`
	LeftPath  string `json:"leftPath"`
	Op        string `json:"op"`
	TermKind  string `json:"termKind"` // const | input | path
	Const     string `json:"const,omitempty"`
	Input     string `json:"input,omitempty"`
	PathAlias string `json:"pathAlias,omitempty"`
	PathPath  string `json:"pathPath,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Plan) MarshalJSON() ([]byte, error) {
	jp := jsonPlan{K: p.K}
	for _, id := range p.NodeIDs() {
		n := p.nodes[id]
		jn := jsonNode{ID: n.ID, Kind: n.Kind.String()}
		switch n.Kind {
		case KindService:
			jn.Alias = n.Alias
			if n.Interface != nil {
				jn.Interface = n.Interface.Name
			}
			jn.Stats = encodeStats(n.Stats)
			for _, b := range n.Bindings {
				jn.Bindings = append(jn.Bindings, encodeBinding(b))
			}
			jn.PipeSelectivity = n.PipeSelectivity
			jn.Limit = n.Limit
			jn.JoinPreds = encodePreds(n.JoinPreds)
		case KindJoin:
			jn.Strategy = &jsonStrategy{
				Invocation:     n.Strategy.Invocation.String(),
				Completion:     n.Strategy.Completion.String(),
				H:              n.Strategy.H,
				RatioX:         n.Strategy.RatioX,
				RatioY:         n.Strategy.RatioY,
				FlushOnExhaust: n.Strategy.FlushOnExhaust,
			}
			jn.JoinSelectivity = n.JoinSelectivity
			jn.JoinPreds = encodePreds(n.JoinPreds)
		case KindMultiJoin:
			jn.JoinSelectivity = n.JoinSelectivity
			jn.JoinPreds = encodePreds(n.JoinPreds)
		case KindSelection:
			jn.Selections = encodePreds(n.Selections)
			jn.Selectivity = n.Selectivity
		}
		jp.Nodes = append(jp.Nodes, jn)
	}
	for _, from := range p.NodeIDs() {
		for _, to := range p.Successors(from) {
			jp.Arcs = append(jp.Arcs, [2]string{from, to})
		}
	}
	return json.Marshal(jp)
}

// UnmarshalPlan decodes a plan, resolving interface names against reg.
func UnmarshalPlan(data []byte, reg *mart.Registry) (*Plan, error) {
	var jp jsonPlan
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", err)
	}
	p := New(jp.K)
	for _, jn := range jp.Nodes {
		n := &Node{ID: jn.ID}
		switch jn.Kind {
		case "input":
			n.Kind = KindInput
		case "output":
			n.Kind = KindOutput
		case "service":
			n.Kind = KindService
			n.Alias = jn.Alias
			si, ok := reg.Interface(jn.Interface)
			if !ok {
				return nil, fmt.Errorf("plan: unknown interface %q in node %s", jn.Interface, jn.ID)
			}
			n.Interface = si
			if jn.Stats != nil {
				st, err := decodeStats(*jn.Stats)
				if err != nil {
					return nil, err
				}
				n.Stats = st
			}
			for _, jb := range jn.Bindings {
				b, err := decodeBinding(jb)
				if err != nil {
					return nil, err
				}
				n.Bindings = append(n.Bindings, b)
			}
			n.PipeSelectivity = jn.PipeSelectivity
			n.Limit = jn.Limit
			preds, err := decodePreds(jn.JoinPreds)
			if err != nil {
				return nil, err
			}
			n.JoinPreds = preds
		case "join":
			n.Kind = KindJoin
			if jn.Strategy == nil {
				return nil, fmt.Errorf("plan: join node %s without strategy", jn.ID)
			}
			s, err := decodeStrategy(*jn.Strategy)
			if err != nil {
				return nil, err
			}
			n.Strategy = s
			n.JoinSelectivity = jn.JoinSelectivity
			preds, err := decodePreds(jn.JoinPreds)
			if err != nil {
				return nil, err
			}
			n.JoinPreds = preds
		case "multijoin":
			n.Kind = KindMultiJoin
			n.JoinSelectivity = jn.JoinSelectivity
			preds, err := decodePreds(jn.JoinPreds)
			if err != nil {
				return nil, err
			}
			n.JoinPreds = preds
		case "selection":
			n.Kind = KindSelection
			preds, err := decodePreds(jn.Selections)
			if err != nil {
				return nil, err
			}
			n.Selections = preds
			n.Selectivity = jn.Selectivity
		default:
			return nil, fmt.Errorf("plan: unknown node kind %q", jn.Kind)
		}
		if err := p.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, arc := range jp.Arcs {
		if err := p.Connect(arc[0], arc[1]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func encodeStats(st service.Stats) *jsonStats {
	return &jsonStats{
		AvgCardinality: st.AvgCardinality,
		ChunkSize:      st.ChunkSize,
		LatencyMS:      float64(st.Latency) / float64(time.Millisecond),
		CostPerCall:    st.CostPerCall,
		Scoring:        st.Scoring.Kind.String(),
		ScoringN:       st.Scoring.N,
		ScoringH:       st.Scoring.H,
		ScoringHigh:    st.Scoring.High,
		ScoringLow:     st.Scoring.Low,
		ScoringRatio:   st.Scoring.Ratio,
	}
}

func decodeStats(js jsonStats) (service.Stats, error) {
	var kind service.ScoringKind
	switch js.Scoring {
	case "constant":
		kind = service.ScoringConstant
	case "step":
		kind = service.ScoringStep
	case "linear":
		kind = service.ScoringLinear
	case "square":
		kind = service.ScoringSquare
	case "geometric":
		kind = service.ScoringGeometric
	default:
		return service.Stats{}, fmt.Errorf("plan: unknown scoring kind %q", js.Scoring)
	}
	st := service.Stats{
		AvgCardinality: js.AvgCardinality,
		ChunkSize:      js.ChunkSize,
		Latency:        time.Duration(js.LatencyMS * float64(time.Millisecond)),
		CostPerCall:    js.CostPerCall,
		Scoring: service.Scoring{
			Kind: kind, N: js.ScoringN, H: js.ScoringH,
			High: js.ScoringHigh, Low: js.ScoringLow, Ratio: js.ScoringRatio,
		},
	}
	return st, st.Validate()
}

func encodeBinding(b query.InputBinding) jsonBinding {
	jb := jsonBinding{Path: b.Path, Op: b.Source.Op.String()}
	switch b.Source.Kind {
	case query.BindConst:
		jb.Kind = "const"
		jb.Const = b.Source.Const.String()
	case query.BindInput:
		jb.Kind = "input"
		jb.Input = b.Source.Input
	case query.BindJoin:
		jb.Kind = "join"
		jb.From = b.Source.From.Alias + "." + b.Source.From.Path
	}
	return jb
}

func decodeBinding(jb jsonBinding) (query.InputBinding, error) {
	op, err := types.ParseOp(jb.Op)
	if err != nil {
		return query.InputBinding{}, err
	}
	b := query.InputBinding{Path: jb.Path, Source: query.BindingSource{Op: op}}
	switch jb.Kind {
	case "const":
		b.Source.Kind = query.BindConst
		b.Source.Const = types.ParseValue(jb.Const)
	case "input":
		b.Source.Kind = query.BindInput
		b.Source.Input = jb.Input
	case "join":
		b.Source.Kind = query.BindJoin
		alias, path, ok := cutFirst(jb.From)
		if !ok {
			return query.InputBinding{}, fmt.Errorf("plan: malformed binding source %q", jb.From)
		}
		b.Source.From = query.PathRef{Alias: alias, Path: path}
	default:
		return query.InputBinding{}, fmt.Errorf("plan: unknown binding kind %q", jb.Kind)
	}
	return b, nil
}

func decodeStrategy(js jsonStrategy) (join.Strategy, error) {
	s := join.Strategy{
		H: js.H, RatioX: js.RatioX, RatioY: js.RatioY,
		FlushOnExhaust: js.FlushOnExhaust,
	}
	switch js.Invocation {
	case "nested-loop":
		s.Invocation = join.NestedLoop
	case "merge-scan":
		s.Invocation = join.MergeScan
	default:
		return s, fmt.Errorf("plan: unknown invocation strategy %q", js.Invocation)
	}
	switch js.Completion {
	case "rectangular":
		s.Completion = join.Rectangular
	case "triangular":
		s.Completion = join.Triangular
	default:
		return s, fmt.Errorf("plan: unknown completion strategy %q", js.Completion)
	}
	return s, s.Validate()
}

func encodePreds(preds []query.Predicate) []jsonPred {
	var out []jsonPred
	for _, p := range preds {
		jp := jsonPred{
			LeftAlias: p.Left.Alias, LeftPath: p.Left.Path, Op: p.Op.String(),
		}
		switch p.Right.Kind {
		case query.TermConst:
			jp.TermKind = "const"
			jp.Const = p.Right.Const.String()
		case query.TermInput:
			jp.TermKind = "input"
			jp.Input = p.Right.Input
		case query.TermPath:
			jp.TermKind = "path"
			jp.PathAlias = p.Right.Path.Alias
			jp.PathPath = p.Right.Path.Path
		}
		out = append(out, jp)
	}
	return out
}

func decodePreds(jps []jsonPred) ([]query.Predicate, error) {
	var out []query.Predicate
	for _, jp := range jps {
		op, err := types.ParseOp(jp.Op)
		if err != nil {
			return nil, err
		}
		p := query.Predicate{
			Left: query.PathRef{Alias: jp.LeftAlias, Path: jp.LeftPath},
			Op:   op,
		}
		switch jp.TermKind {
		case "const":
			p.Right = query.Term{Kind: query.TermConst, Const: types.ParseValue(jp.Const)}
		case "input":
			p.Right = query.Term{Kind: query.TermInput, Input: jp.Input}
		case "path":
			p.Right = query.Term{Kind: query.TermPath,
				Path: query.PathRef{Alias: jp.PathAlias, Path: jp.PathPath}}
		default:
			return nil, fmt.Errorf("plan: unknown term kind %q", jp.TermKind)
		}
		out = append(out, p)
	}
	return out, nil
}

// cutFirst splits "Alias.Rest.Of.Path" at the first dot.
func cutFirst(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}
