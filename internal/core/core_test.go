package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"seco/internal/engine"
	"seco/internal/mart"
	"seco/internal/query"
	"seco/internal/service"
)

func TestMovieNightEndToEnd(t *testing.T) {
	sys, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Validate() != nil {
		t.Fatal("invalid optimized plan")
	}
	run, err := sys.Run(context.Background(), res, RunOptions{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Combinations) == 0 {
		t.Fatal("no results")
	}
	if len(run.Combinations) > 10 {
		t.Errorf("K=10 exceeded: %d results", len(run.Combinations))
	}
	explain := sys.Explain(res)
	for _, frag := range []string{"topology:", "cost:", "plan (K=10)"} {
		if !strings.Contains(explain, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, explain)
		}
	}
	if !strings.Contains(sys.DOT(res), "digraph plan") {
		t.Error("DOT output malformed")
	}
}

func TestConfTravelEndToEnd(t *testing.T) {
	sys, inputs, err := ConfTravel(11)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.TravelExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 5, Metric: "execution-time"})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run(context.Background(), res, RunOptions{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Combinations) == 0 {
		t.Fatal("no travel results")
	}
}

func TestSystemSession(t *testing.T) {
	sys, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.Session(res, RunOptions{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("empty first batch")
	}
	if len(first) > 3 {
		t.Errorf("batch larger than K: %d", len(first))
	}
}

// RunToK keeps doubling fetch factors until K results materialize (or no
// progress is possible), absorbing annotation estimation error.
func TestRunToKReachesTarget(t *testing.T) {
	sys, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the starting fetch factors to force under-delivery.
	for id := range res.Annotated.Fetches {
		res.Annotated.Fetches[id] = 1
	}
	combos, run, err := sys.RunToK(context.Background(), res, RunOptions{Inputs: inputs}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil || len(combos) == 0 {
		t.Fatal("RunToK produced nothing")
	}
	if len(combos) < 8 {
		t.Logf("RunToK stopped at %d results (world exhausted); acceptable", len(combos))
	}
	// Ranked output invariant holds.
	for i := 1; i < len(combos); i++ {
		if combos[i].Score > combos[i-1].Score+1e-12 {
			t.Fatalf("RunToK output unranked at %d", i)
		}
	}
}

// An impossible K terminates by the no-progress rule, not the round cap.
func TestRunToKStopsOnExhaustion(t *testing.T) {
	sys, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	res.Plan.K = 100000
	combos, _, err := sys.RunToK(context.Background(), res, RunOptions{Inputs: inputs}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) == 0 {
		t.Error("exhaustion run produced nothing")
	}
	if len(combos) >= 100000 {
		t.Error("impossible K satisfied?")
	}
}

// CacheCalls changes call counts, never results.
func TestRunWithCacheCalls(t *testing.T) {
	sys, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Run(context.Background(), res, RunOptions{Inputs: inputs, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sys.Run(context.Background(), res, RunOptions{
		Inputs: inputs, Parallelism: 1, CacheCalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Combinations) != len(cached.Combinations) {
		t.Fatalf("cache changed results: %d vs %d",
			len(plain.Combinations), len(cached.Combinations))
	}
	for i := range plain.Combinations {
		if plain.Combinations[i].String() != cached.Combinations[i].String() {
			t.Errorf("combination %d differs under cache", i)
		}
	}
}

func TestPlanUnknownMetric(t *testing.T) {
	sys, _, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Plan(q, PlanOptions{Metric: "nope"}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestBindErrors(t *testing.T) {
	sys := NewSystem()
	// Unregistered interface.
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	si, _ := reg.Interface("Movie1")
	tab, err := service.NewTable(si, service.Stats{Scoring: service.Constant(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bind(tab); err == nil {
		t.Error("bind to unregistered interface accepted")
	}
	// Duplicate bind.
	sys2 := NewSystemWith(reg)
	if err := sys2.Bind(tab); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Bind(tab); err == nil {
		t.Error("duplicate bind accepted")
	}
	if _, ok := sys2.Service("Movie1"); !ok {
		t.Error("Service lookup failed")
	}
}

func TestRunWithoutBoundServiceFails(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystemWith(reg)
	// Bind only Movie1 with stats so planning fails on missing stats, or
	// bind all but run against a system missing one binding.
	full, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := full.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := full.Plan(q, PlanOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), res, RunOptions{Inputs: inputs}); err == nil {
		t.Error("run without bound services succeeded")
	}
}

func TestRunBudgetAndDegrade(t *testing.T) {
	sys, inputs, err := MovieNight(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	clean, err := sys.Run(ctx, res, RunOptions{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded != nil {
		t.Fatalf("unbudgeted run degraded: %v", clean.Degraded)
	}
	budget := clean.Elapsed / 2
	if _, err := sys.Run(ctx, res, RunOptions{Inputs: inputs, Budget: budget}); !errors.Is(err, engine.ErrBudget) {
		t.Fatalf("budget without Degrade: want ErrBudget, got %v", err)
	}
	run, err := sys.Run(ctx, res, RunOptions{Inputs: inputs, Budget: budget, Degrade: true})
	if err != nil {
		t.Fatalf("degraded run errored: %v", err)
	}
	d := run.Degraded
	if d == nil {
		t.Fatal("budgeted Degrade run returned no Degraded report")
	}
	if d.Reason != engine.DegradeBudget {
		t.Errorf("reason = %v, want DegradeBudget", d.Reason)
	}
	if d.CertifiedK > len(run.Combinations) {
		t.Fatalf("CertifiedK %d > %d results", d.CertifiedK, len(run.Combinations))
	}
	for i := 0; i < d.CertifiedK; i++ {
		if run.Combinations[i].Score != clean.Combinations[i].Score {
			t.Errorf("certified combo %d: score %v != clean %v",
				i, run.Combinations[i].Score, clean.Combinations[i].Score)
		}
	}
}
