package core

import (
	"seco/internal/mart"
	"seco/internal/synth"
	"seco/internal/types"
)

// MovieNight builds a ready-to-query system for the running example: the
// Movie/Theatre/Restaurant scenario registry with a synthetic world bound
// to each interface. It returns the system and the canonical INPUT
// bindings (a user in Milano looking for a recent comedy and a pizzeria).
func MovieNight(seed int64) (*System, map[string]types.Value, error) {
	reg, err := mart.MovieScenario()
	if err != nil {
		return nil, nil, err
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	sys := NewSystemWith(reg)
	if err := sys.Bind(world.Movies); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Theatres); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Restaurants); err != nil {
		return nil, nil, err
	}
	return sys, world.Inputs, nil
}

// Triangle builds a ready-to-query system for the cyclic Festival/
// Artist/Venue/Promoter scenario that exercises the n-ary ranked join,
// returning the system and the canonical INPUT bindings (the festival
// name).
func Triangle(seed int64) (*System, map[string]types.Value, error) {
	return triangleSystem(synth.TriangleConfig{Seed: seed})
}

// TriangleZipf builds the triangle system over a zipf-skewed world: the
// edge-attribute keys concentrate on a few hot values while the
// registered service statistics stay those of the uniform world. The
// optimizer therefore plans with edge selectivity 1/Keys although the
// skewed data matches far more often — the canonical scenario for
// fidelity drift detection (a controlled stats-vs-data lie, after the
// skewed workloads of the cardinality-estimation benchmarks).
func TriangleZipf(seed int64) (*System, map[string]types.Value, error) {
	return triangleSystem(synth.TriangleConfig{Seed: seed, Skew: 2})
}

// triangleSystem shares the registry/bind boilerplate between the
// uniform and skewed triangle constructors.
func triangleSystem(cfg synth.TriangleConfig) (*System, map[string]types.Value, error) {
	reg, err := mart.TriangleScenario()
	if err != nil {
		return nil, nil, err
	}
	world, err := synth.NewTriangleWorld(reg, cfg)
	if err != nil {
		return nil, nil, err
	}
	sys := NewSystemWith(reg)
	if err := sys.Bind(world.Festivals); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Artists); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Venues); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Promoters); err != nil {
		return nil, nil, err
	}
	return sys, world.Inputs, nil
}

// ConfTravel builds a ready-to-query system for the Conference/Weather/
// Flight/Hotel scenario of Figs. 2–3, returning the system and the
// canonical INPUT bindings.
func ConfTravel(seed int64) (*System, map[string]types.Value, error) {
	reg, err := mart.TravelScenario()
	if err != nil {
		return nil, nil, err
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	sys := NewSystemWith(reg)
	if err := sys.Bind(world.Conferences); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Weather); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Flights); err != nil {
		return nil, nil, err
	}
	if err := sys.Bind(world.Hotels); err != nil {
		return nil, nil, err
	}
	return sys, world.Inputs, nil
}
