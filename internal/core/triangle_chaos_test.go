package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seco/internal/engine"
	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/synth"
)

// failAfterSvc wraps one triangle branch service and fails every call
// permanently once limit calls (Invoke and Fetch together) went through.
type failAfterSvc struct {
	inner service.Service
	limit int64
	calls atomic.Int64
}

func (d *failAfterSvc) Interface() *mart.Interface { return d.inner.Interface() }
func (d *failAfterSvc) Stats() service.Stats       { return d.inner.Stats() }
func (d *failAfterSvc) Unwrap() service.Service    { return d.inner }

func (d *failAfterSvc) fail() error {
	if d.calls.Add(1) > d.limit {
		return fmt.Errorf("branch gone: %w", service.ErrPermanent)
	}
	return nil
}

func (d *failAfterSvc) Invoke(ctx context.Context, in service.Input) (service.Invocation, error) {
	if err := d.fail(); err != nil {
		return nil, err
	}
	inv, err := d.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &failAfterInvocation{svc: d, inner: inv}, nil
}

type failAfterInvocation struct {
	svc   *failAfterSvc
	inner service.Invocation
}

func (di *failAfterInvocation) Fetch(ctx context.Context) (service.Chunk, error) {
	if err := di.svc.fail(); err != nil {
		return service.Chunk{}, err
	}
	return di.inner.Fetch(ctx)
}

// triangleWith builds the triangle system with an optional per-alias
// service wrapper applied before binding.
func triangleWith(t *testing.T, seed int64, wrap func(alias string, svc service.Service) service.Service) (*System, *synth.TriangleWorld) {
	t.Helper()
	reg, err := mart.TriangleScenario()
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTriangleWorld(reg, synth.TriangleConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystemWith(reg)
	for alias, svc := range world.Services() {
		if wrap != nil {
			svc = wrap(alias, svc)
		}
		if err := sys.Bind(svc); err != nil {
			t.Fatal(err)
		}
	}
	return sys, world
}

// TestTriangleChaosCertifiedPrefix is the chaos-sweep equivalence family
// of the multi-way join: killing any one branch mid-run under Degrade
// must yield a partial result whose certified prefix is byte-identical
// to the fault-free ranking — the n-ary corner bound must stay sound
// when one of its branches dies.
func TestTriangleChaosCertifiedPrefix(t *testing.T) {
	const seed = 7
	clean, world := triangleWith(t, seed, nil)
	res := planTriangle(t, clean, 5, false)
	if !hasMultiJoin(res.Plan) {
		t.Fatal("no multijoin in the default triangle plan")
	}
	cleanRun, err := clean.Run(context.Background(), fullBudget(t, res),
		RunOptions{Inputs: world.Inputs})
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanRun.Combinations) < 5 {
		t.Fatalf("clean run found %d combinations", len(cleanRun.Combinations))
	}

	for _, victim := range []string{"A", "V", "P"} {
		for _, limit := range []int64{1, 2, 4, 8, 16} {
			t.Run(fmt.Sprintf("%s/limit=%d", victim, limit), func(t *testing.T) {
				sys, w := triangleWith(t, seed, func(alias string, svc service.Service) service.Service {
					if alias == victim {
						return &failAfterSvc{inner: svc, limit: limit}
					}
					return svc
				})
				run, err := sys.Run(context.Background(), fullBudget(t, res),
					RunOptions{Inputs: w.Inputs, Degrade: true})
				if err != nil {
					t.Fatalf("Degrade still surfaced the branch failure: %v", err)
				}
				d := run.Degraded
				if d == nil {
					// The run completed before the fault window: only
					// possible when the driver certified its top-5 within
					// the surviving call budget.
					if len(run.Combinations) < 5 {
						t.Fatalf("run neither degraded nor completed (%d combinations)",
							len(run.Combinations))
					}
					return
				}
				if d.Reason != engine.DegradeServiceFailure {
					t.Errorf("reason = %s, want %s", d.Reason, engine.DegradeServiceFailure)
				}
				found := false
				for _, f := range d.Failed {
					if f == victim {
						found = true
					}
				}
				if !found {
					t.Errorf("failed services = %v, want to include %s", d.Failed, victim)
				}
				if d.CertifiedK > len(run.Combinations) {
					t.Fatalf("certified %d of %d results", d.CertifiedK, len(run.Combinations))
				}
				for i := 0; i < d.CertifiedK; i++ {
					got, want := fingerprint(run.Combinations[i]), fingerprint(cleanRun.Combinations[i])
					if got != want {
						t.Errorf("certified combination %d differs from fault-free run:\n got %s\n want %s",
							i, got, want)
					}
				}
			})
		}
	}
}

// TestTriangleChaosTransientsTransparent wraps every triangle service in
// Retry(Flaky(svc)): injected transient faults must be invisible in the
// result — the n-ary run returns the identical certified top-5.
func TestTriangleChaosTransientsTransparent(t *testing.T) {
	const seed = 23
	clean, world := triangleWith(t, seed, nil)
	res := planTriangle(t, clean, 5, false)
	if !hasMultiJoin(res.Plan) {
		t.Fatal("no multijoin in the default triangle plan")
	}
	cleanRun, err := clean.Run(context.Background(), fullBudget(t, res),
		RunOptions{Inputs: world.Inputs})
	if err != nil {
		t.Fatal(err)
	}

	flakies := map[string]*service.Flaky{}
	sys, w := triangleWith(t, seed, func(alias string, svc service.Service) service.Service {
		f := service.NewFlaky(svc, 3)
		r := service.NewRetry(f)
		r.Sleep = func(time.Duration) {}
		flakies[alias] = f
		return r
	})
	run, err := sys.Run(context.Background(), fullBudget(t, res),
		RunOptions{Inputs: w.Inputs})
	if err != nil {
		t.Fatalf("run failed despite retries: %v", err)
	}
	injected := 0
	for _, f := range flakies {
		injected += f.Injected()
	}
	if injected == 0 {
		t.Fatal("no failures injected; test is vacuous")
	}
	got := strings.Join(fingerprints(run.Combinations), "\n")
	want := strings.Join(fingerprints(cleanRun.Combinations), "\n")
	if got != want {
		t.Errorf("faulty run differs from clean run:\n got:\n%s\n want:\n%s", got, want)
	}
}
