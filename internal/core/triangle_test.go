package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/types"
)

// planTriangle optimizes the canonical triangle query, with or without
// the n-ary multijoin topology enabled.
func planTriangle(t *testing.T, sys *System, k int, disableMultiway bool) *optimizer.Result {
	t.Helper()
	q, err := sys.Parse(query.TriangleExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: k, DisableMultiway: disableMultiway})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hasMultiJoin(p *plan.Plan) bool {
	for _, id := range p.NodeIDs() {
		if n, _ := p.Node(id); n.Kind == plan.KindMultiJoin {
			return true
		}
	}
	return false
}

// fullBudget re-annotates a planned result with every chunked service at
// its fetch cap, so the pull driver's corner-bound stopping rule — not
// the optimizer's fetch assignment — decides how many calls are issued
// before the top-k is certified.
func fullBudget(t *testing.T, res *optimizer.Result) *optimizer.Result {
	t.Helper()
	fetches := map[string]int{}
	for _, id := range res.Plan.NodeIDs() {
		n, _ := res.Plan.Node(id)
		if n.Kind == plan.KindService && n.Stats.Chunked() {
			fetches[id] = int((n.Stats.AvgCardinality + float64(n.Stats.ChunkSize) - 1) / float64(n.Stats.ChunkSize))
		}
	}
	a, err := plan.Annotate(res.Plan, fetches)
	if err != nil {
		t.Fatal(err)
	}
	full := *res
	full.Annotated = a
	return &full
}

// TestTriangleOptimizerPicksMultiway is the acceptance criterion on the
// cost model: on the cyclic triangle scenario the optimizer must select
// the n-ary plan, and must fall back to a binary tree when the multi-way
// topology is disabled.
func TestTriangleOptimizerPicksMultiway(t *testing.T) {
	sys, _, err := Triangle(7)
	if err != nil {
		t.Fatal(err)
	}
	res := planTriangle(t, sys, 5, false)
	if !hasMultiJoin(res.Plan) {
		t.Fatalf("optimizer did not select the n-ary plan:\n%s", sys.Explain(res))
	}
	bin := planTriangle(t, sys, 5, true)
	if hasMultiJoin(bin.Plan) {
		t.Fatalf("DisableMultiway still produced a multijoin node:\n%s", sys.Explain(bin))
	}
}

// fingerprint renders one combination reproducibly: score plus every
// component's Name, in alias order.
func fingerprint(c *types.Combination) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.9f", c.Score)
	for _, a := range c.Aliases() {
		name := c.Components[a].Atomic("Name").String()
		fmt.Fprintf(&b, "|%s=%s", a, name)
	}
	return b.String()
}

func fingerprints(cs []*types.Combination) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = fingerprint(c)
	}
	// Equal-score combinations may surface in either order depending on
	// arrival interleaving; the result SET is what both topologies must
	// agree on.
	sort.Strings(out)
	return out
}

// TestTriangleEquivalence proves the n-ary and binary plans return the
// identical top-k on the triangle scenario under both driver policies.
func TestTriangleEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 23, 91} {
		sys, inputs, err := Triangle(seed)
		if err != nil {
			t.Fatal(err)
		}
		nary := planTriangle(t, sys, 5, false)
		if !hasMultiJoin(nary.Plan) {
			t.Fatalf("seed %d: no multijoin in default plan", seed)
		}
		binary := planTriangle(t, sys, 5, true)
		for _, materialize := range []bool{false, true} {
			var got [2][]string
			for i, res := range []*optimizer.Result{nary, binary} {
				run, err := sys.Run(context.Background(), fullBudget(t, res),
					RunOptions{Inputs: inputs, Materialize: materialize})
				if err != nil {
					t.Fatalf("seed %d materialize=%v variant %d: %v", seed, materialize, i, err)
				}
				got[i] = fingerprints(run.Combinations)
			}
			if len(got[0]) == 0 {
				t.Fatalf("seed %d materialize=%v: no results", seed, materialize)
			}
			if strings.Join(got[0], "\n") != strings.Join(got[1], "\n") {
				t.Errorf("seed %d materialize=%v: n-ary and binary top-k differ:\nn-ary:\n%s\nbinary:\n%s",
					seed, materialize, strings.Join(got[0], "\n"), strings.Join(got[1], "\n"))
			}
		}
	}
}

// TestTriangleFewerCalls is the acceptance criterion on the runtime: the
// pull driver must complete the top-5 over the n-ary plan with at least
// 30% fewer service request-responses than the best binary plan.
func TestTriangleFewerCalls(t *testing.T) {
	sys, inputs, err := Triangle(7)
	if err != nil {
		t.Fatal(err)
	}
	nary := planTriangle(t, sys, 5, false)
	binary := planTriangle(t, sys, 5, true)
	total := func(res *optimizer.Result) int64 {
		run, err := sys.Run(context.Background(), fullBudget(t, res), RunOptions{Inputs: inputs})
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Combinations) < 5 {
			t.Fatalf("only %d combinations", len(run.Combinations))
		}
		return run.TotalCalls()
	}
	nc, bc := total(nary), total(binary)
	if float64(nc) > 0.7*float64(bc) {
		t.Errorf("n-ary used %d calls, binary %d: want at least 30%% fewer", nc, bc)
	}
}
