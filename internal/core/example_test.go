package core_test

import (
	"context"
	"fmt"
	"log"

	"seco/internal/core"
	"seco/internal/query"
)

// The full chain on the running example: build the scenario system, parse
// the chapter's query, optimize with branch and bound, execute, and read
// the ranked combinations.
func Example() {
	sys, inputs, err := core.MovieNight(7)
	if err != nil {
		log.Fatal(err)
	}
	q, err := sys.Parse(query.RunningExampleText)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Plan(q, core.PlanOptions{K: 10, Metric: "execution-time"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology:", res.Topology)
	run, err := sys.Run(context.Background(), res, core.RunOptions{Inputs: inputs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("have results:", len(run.Combinations) > 0)
	// Output:
	// topology: (M‖T) → R
	// have results: true
}
