// Package core is the public face of the library: a System bundles the
// design-time registry (marts, interfaces, connection patterns), the
// runtime services bound to each interface, and the full query-processing
// chain — parse, analyze, check feasibility, optimize with branch and
// bound, and execute the winning plan against the bound services.
//
//	sys, inputs, _ := core.MovieNight(7)
//	q, _ := sys.Parse(query.RunningExampleText)
//	res, _ := sys.Plan(q, core.PlanOptions{K: 10})
//	run, _ := sys.Run(ctx, res, core.RunOptions{Inputs: inputs})
package core

import (
	"context"
	"fmt"
	"time"

	"seco/internal/cost"
	"seco/internal/engine"
	"seco/internal/mart"
	"seco/internal/obs"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// System is a configured Search Computing instance.
type System struct {
	reg      *mart.Registry
	services map[string]service.Service // by interface name
}

// NewSystem returns an empty system with a fresh registry.
func NewSystem() *System {
	return &System{reg: mart.NewRegistry(), services: map[string]service.Service{}}
}

// NewSystemWith wraps an existing registry.
func NewSystemWith(reg *mart.Registry) *System {
	return &System{reg: reg, services: map[string]service.Service{}}
}

// Registry exposes the design-time registry for mart/pattern registration.
func (s *System) Registry() *mart.Registry { return s.reg }

// Bind attaches a runtime service to its interface. The interface must be
// registered and the service must implement it.
func (s *System) Bind(svc service.Service) error {
	name := svc.Interface().Name
	if _, ok := s.reg.Interface(name); !ok {
		return fmt.Errorf("core: binding service for unregistered interface %q", name)
	}
	if _, dup := s.services[name]; dup {
		return fmt.Errorf("core: interface %q already bound", name)
	}
	s.services[name] = svc
	return nil
}

// Service returns the service bound to an interface.
func (s *System) Service(ifaceName string) (service.Service, bool) {
	svc, ok := s.services[ifaceName]
	return svc, ok
}

// Parse parses and analyzes a query against the system registry.
func (s *System) Parse(src string) (*query.Query, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := q.Analyze(s.reg); err != nil {
		return nil, err
	}
	return q, nil
}

// PlanOptions configures optimization.
type PlanOptions struct {
	// K is the number of requested combinations (default 10).
	K int
	// Metric names the cost metric (default "request-response").
	Metric string
	// Heuristics select branch orderings (zero value = bound-is-better,
	// selective-first, greedy).
	Heuristics optimizer.Heuristics
	// MaxPlans bounds the anytime search (0 = exhaust).
	MaxPlans int
	// ExploreInterfaces lets phase 1 consider every interface of each
	// mart instead of the ones the query names.
	ExploreInterfaces bool
	// DisableMultiway restricts phase 2 to binary join trees, never
	// proposing the n-ary multijoin for eligible parallel groups.
	DisableMultiway bool
}

// Plan optimizes an analyzed query into a fully instantiated plan, taking
// service statistics from the bound services.
func (s *System) Plan(q *query.Query, opts PlanOptions) (*optimizer.Result, error) {
	metricName := opts.Metric
	if metricName == "" {
		metricName = "request-response"
	}
	metric, err := cost.ByName(metricName)
	if err != nil {
		return nil, err
	}
	byIface := map[string]service.Stats{}
	for name, svc := range s.services {
		byIface[name] = svc.Stats()
	}
	return optimizer.Optimize(q, s.reg, optimizer.Options{
		K:                opts.K,
		Metric:           metric,
		Heuristics:       opts.Heuristics,
		StatsByInterface: byIface,
		MaxPlans:         opts.MaxPlans,
		FixedInterfaces:  !opts.ExploreInterfaces,
		DisableMultiway:  opts.DisableMultiway,
	})
}

// RunOptions configures execution.
type RunOptions struct {
	// Inputs binds the query's INPUT variables.
	Inputs map[string]types.Value
	// Parallelism bounds concurrent pipe-join invocations (default 8).
	Parallelism int
	// LiveLatency makes every fetch sleep the service's published
	// latency, so wall-clock measurements reflect the cost model.
	LiveLatency bool
	// CacheCalls enables the engine's call-sharing layer: service chunks
	// are memoized per input binding and concurrent fetches of the same
	// chunk are deduplicated in flight, cutting repeated pipe-join wire
	// calls (results are unchanged). Aliases bound to the same interface
	// share one layer.
	CacheCalls bool
	// Materialize selects the materialize-then-truncate executor instead
	// of the default pull-based streaming pipeline (see package engine).
	Materialize bool
	// Budget bounds the execution time as measured on the engine clock
	// (virtual when LiveLatency is off); 0 means unbounded.
	Budget time.Duration
	// Degrade returns a partial result with Run.Degraded populated when
	// a service fails permanently or the Budget expires mid-run, instead
	// of an error (streaming executor only).
	Degrade bool
	// Trace, when non-nil, records per-operator spans for the execution
	// (see engine.Options.Trace). Pass a fresh obs.NewTracer per Run.
	Trace *obs.Tracer
	// Metrics, when non-nil, registers the engine's instruments (per-alias
	// call counters, latency/chunk-depth histograms, share-layer hits,
	// driver counters) and fills Run.Metrics with a text snapshot.
	Metrics *obs.Registry
	// Fidelity enables the per-node estimate-vs-actual accounting and
	// fills Run.Fidelity with the q-error report (see engine.Options).
	Fidelity bool
	// DriftThreshold overrides the fidelity report's one-sided drift
	// factor (0 = fidelity.DefaultThreshold).
	DriftThreshold float64
}

// Run executes an optimized plan and returns the ranked combinations.
func (s *System) Run(ctx context.Context, res *optimizer.Result, opts RunOptions) (*engine.Run, error) {
	e, err := s.engineFor(res, opts)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, res.Annotated, engine.Options{
		Inputs:         opts.Inputs,
		Weights:        res.Query.Weights,
		TargetK:        res.Plan.K,
		Parallelism:    opts.Parallelism,
		Materialize:    opts.Materialize,
		Budget:         opts.Budget,
		Degrade:        opts.Degrade,
		Trace:          opts.Trace,
		Fidelity:       opts.Fidelity,
		DriftThreshold: opts.DriftThreshold,
	})
}

// RunToK executes an optimized plan and, when the statistics-based fetch
// assignment under-delivers (estimation error, Section 3.2's independence
// assumptions), automatically continues the plan execution with doubled
// fetching factors until K combinations are produced, the services are
// exhausted, or maxRounds is hit. It returns the best K combinations
// found and the last round's Run.
func (s *System) RunToK(ctx context.Context, res *optimizer.Result, opts RunOptions, maxRounds int) ([]*types.Combination, *engine.Run, error) {
	if maxRounds <= 0 {
		maxRounds = 5
	}
	e, err := s.engineFor(res, opts)
	if err != nil {
		return nil, nil, err
	}
	fetches := map[string]int{}
	for k, v := range res.Annotated.Fetches {
		fetches[k] = v
	}
	k := res.Plan.K
	var last *engine.Run
	for round := 0; round < maxRounds; round++ {
		a, err := plan.Annotate(res.Plan, fetches)
		if err != nil {
			return nil, nil, err
		}
		run, err := e.Execute(ctx, a, engine.Options{
			Inputs:      opts.Inputs,
			Weights:     res.Query.Weights,
			TargetK:     k,
			Parallelism: opts.Parallelism,
			Materialize: opts.Materialize,
			Budget:      opts.Budget,
			Degrade:     opts.Degrade,
			Trace:       opts.Trace,
		})
		if err != nil {
			return nil, nil, err
		}
		if last != nil && len(run.Combinations) == len(last.Combinations) {
			// No progress: the services are exhausted for this query.
			return run.Combinations, run, nil
		}
		last = run
		if len(run.Combinations) >= k {
			return run.Combinations, run, nil
		}
		grew := false
		for _, id := range res.Plan.NodeIDs() {
			n, ok := res.Plan.Node(id)
			if ok && n.Kind == plan.KindService && n.Stats.Chunked() {
				f := fetches[id]
				if f <= 0 {
					f = 1
				}
				fetches[id] = f * 2
				grew = true
			}
		}
		if !grew {
			return run.Combinations, run, nil
		}
	}
	return last.Combinations, last, nil
}

// Session opens a resumable execution ("more results") over an optimized
// plan.
func (s *System) Session(res *optimizer.Result, opts RunOptions) (*engine.Session, error) {
	e, err := s.engineFor(res, opts)
	if err != nil {
		return nil, err
	}
	return engine.NewSession(e, res.Plan, res.Annotated.Fetches, engine.Options{
		Inputs:      opts.Inputs,
		Weights:     res.Query.Weights,
		TargetK:     res.Plan.K,
		Parallelism: opts.Parallelism,
		Materialize: opts.Materialize,
	}), nil
}

// Engine builds the execution engine a Run for this plan would use —
// per-alias service bindings, clock/delay policy, sharing layer and
// metrics registry. Long-lived callers (the secoserve debug server, the
// Session API) hold one Engine and execute many runs against it, so the
// sharing layer and the cumulative metrics span all of them.
func (s *System) Engine(res *optimizer.Result, opts RunOptions) (*engine.Engine, error) {
	return s.engineFor(res, opts)
}

// engineFor maps the plan's aliases to bound services. With CacheCalls,
// the engine's Invoker shares one dedup/memo layer per underlying service
// value, so aliases over the same interface reuse each other's fetches.
func (s *System) engineFor(res *optimizer.Result, opts RunOptions) (*engine.Engine, error) {
	byAlias := map[string]service.Service{}
	for _, ref := range res.Query.Services {
		svc, ok := s.services[ref.Interface.Name]
		if !ok {
			return nil, fmt.Errorf("core: no service bound for interface %q (alias %s)",
				ref.Interface.Name, ref.Alias)
		}
		byAlias[ref.Alias] = svc
	}
	var delay func(time.Duration)
	if opts.LiveLatency {
		delay = time.Sleep
	}
	return engine.NewWithConfig(byAlias, engine.Config{
		Delay: delay, Share: opts.CacheCalls, Metrics: opts.Metrics,
	}), nil
}

// Explain renders a human-readable description of an optimization result:
// the winning topology, its annotations and its cost.
func (s *System) Explain(res *optimizer.Result) string {
	return fmt.Sprintf("topology: %s\ncost: %.6g (plans explored: %d, pruned: %d)\n%s",
		res.Topology, res.Cost, res.Explored, res.Pruned,
		res.Plan.Describe(res.Annotated))
}

// DOT renders the optimized plan in Graphviz syntax.
func (s *System) DOT(res *optimizer.Result) string {
	return res.Plan.DOT(res.Annotated)
}
