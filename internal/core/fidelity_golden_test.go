package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"seco/internal/engine"
	"seco/internal/obs"
	"seco/internal/query"
)

// Regenerate with:
//
//	go test ./internal/core -run TestTriangleFidelityGolden -update-fidelity-golden
var updateFidelityGolden = flag.Bool("update-fidelity-golden", false, "rewrite triangle trace/fidelity golden files")

// tracedTriangleRun executes the optimized triangle plan (the n-ary
// multijoin topology) on the virtual clock with fidelity scoring and
// returns the run plus the trace snapshot. Parallelism is pinned to 1
// for the same reason as the movienight trace golden: within-lane span
// order must be deterministic.
func tracedTriangleRun(t *testing.T, materialize bool) (*engine.Run, *obs.Trace) {
	t.Helper()
	sys, inputs, err := Triangle(7)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.Parse(query.TriangleExampleText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Plan(q, PlanOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	run, err := sys.Run(context.Background(), res, RunOptions{
		Inputs:      inputs,
		Parallelism: 1,
		Materialize: materialize,
		Trace:       tr,
		Fidelity:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run, tr.Snapshot()
}

// fidelityEventCount counts the per-node "fidelity" instants in a
// trace.
func fidelityEventCount(tr *obs.Trace) int {
	n := 0
	for _, sp := range tr.Spans {
		if sp.Kind == obs.KindEvent && sp.Name == "fidelity" {
			n++
		}
	}
	return n
}

// TestTriangleFidelityGoldenDrain pins the full Chrome trace of the
// triangle's drain-mode execution — fidelity events included — and the
// textual fidelity report. Drain runs every operator to exhaustion, so
// no halt races a branch prefetch: the virtual clock plus the sorted
// per-node fidelity events make both artifacts byte-deterministic, and
// the goldens double as a regression guard on the estimate/actual
// accounting itself — any change to candidate counting, q-error math
// or drift classification shows up as a diff here.
func TestTriangleFidelityGoldenDrain(t *testing.T) {
	run, first := tracedTriangleRun(t, true)
	if run.Fidelity == nil || len(run.Fidelity.Nodes) == 0 {
		t.Fatal("run carries no fidelity report")
	}
	_, second := tracedTriangleRun(t, true)

	var buf bytes.Buffer
	if err := first.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	var again bytes.Buffer
	if err := second.WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again.Bytes()) {
		t.Fatalf("virtual-clock trace not byte-stable across two runs (%d vs %d bytes)",
			len(got), len(again.Bytes()))
	}
	if n := fidelityEventCount(first); n != len(run.Fidelity.Nodes) {
		t.Fatalf("%d fidelity events in trace, report has %d nodes", n, len(run.Fidelity.Nodes))
	}

	for name, data := range map[string][]byte{
		"trace_triangle_drain.golden":    got,
		"fidelity_triangle_drain.golden": []byte(run.Fidelity.Text()),
	} {
		golden := filepath.Join("testdata", name)
		if *updateFidelityGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update-fidelity-golden): %v", err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s drifted (%d vs %d bytes); rerun with -update-fidelity-golden and review the diff",
				golden, len(data), len(want))
		}
	}
}

// TestTriangleFidelityPull covers the pull policy structurally instead
// of byte-for-byte: the early halt can land while a branch prefetch is
// in flight (the same scheduling sensitivity E15 notes for pull-mode
// call counts), so the exact span set may vary by one fetch per branch
// run over run. What must hold regardless: the report is present and
// self-consistent, every node's fidelity event is in the trace, the
// multijoin's candidate actuals undershoot the full-product estimate
// (the intersection prunes what the cross-product annotation budgets,
// and the pull driver stops at the top-k), and that benign overestimate
// does not drift.
func TestTriangleFidelityPull(t *testing.T) {
	run, tr := tracedTriangleRun(t, false)
	rep := run.Fidelity
	if rep == nil || len(rep.Nodes) == 0 {
		t.Fatal("run carries no fidelity report")
	}
	if n := fidelityEventCount(tr); n != len(rep.Nodes) {
		t.Fatalf("%d fidelity events in trace, report has %d nodes", n, len(rep.Nodes))
	}
	sawMulti := false
	for _, nf := range rep.Nodes {
		if nf.Q < 1 {
			t.Errorf("node %s: q %v < 1", nf.Node, nf.Q)
		}
		if nf.Kind != "multijoin" {
			continue
		}
		sawMulti = true
		if nf.ActCand >= nf.EstCand {
			t.Errorf("multijoin candidates act %v >= est %v under an early halt", nf.ActCand, nf.EstCand)
		}
		if nf.Drift {
			t.Errorf("multijoin overestimate flagged as drift: %+v", nf)
		}
	}
	if !sawMulti {
		t.Fatal("no multijoin row in the fidelity report")
	}
	if rep.Drifted != 0 {
		t.Errorf("uniform triangle drifted %d nodes, want 0:\n%s", rep.Drifted, rep.Text())
	}
}
