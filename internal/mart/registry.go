package mart

import (
	"fmt"
	"sort"
)

// Registry is the design-time catalogue: marts, their service interfaces,
// and connection patterns. It is not safe for concurrent mutation; build it
// once at startup and then treat it as read-only.
type Registry struct {
	marts      map[string]*Mart
	interfaces map[string]*Interface
	patterns   map[string]*ConnectionPattern
	byMart     map[string][]*Interface
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		marts:      make(map[string]*Mart),
		interfaces: make(map[string]*Interface),
		patterns:   make(map[string]*ConnectionPattern),
		byMart:     make(map[string][]*Interface),
	}
}

// AddMart registers a mart. Names must be unique.
func (r *Registry) AddMart(m *Mart) error {
	if _, dup := r.marts[m.Name]; dup {
		return fmt.Errorf("registry: duplicate mart %q", m.Name)
	}
	seen := make(map[string]bool)
	for _, p := range m.Paths() {
		if seen[p] {
			return fmt.Errorf("registry: mart %q has duplicate path %q", m.Name, p)
		}
		seen[p] = true
	}
	r.marts[m.Name] = m
	return nil
}

// AddInterface registers a service interface. Its mart must already be
// registered and names must be unique.
func (r *Registry) AddInterface(si *Interface) error {
	if _, dup := r.interfaces[si.Name]; dup {
		return fmt.Errorf("registry: duplicate interface %q", si.Name)
	}
	if _, ok := r.marts[si.Mart.Name]; !ok {
		return fmt.Errorf("registry: interface %q over unregistered mart %q", si.Name, si.Mart.Name)
	}
	r.interfaces[si.Name] = si
	r.byMart[si.Mart.Name] = append(r.byMart[si.Mart.Name], si)
	return nil
}

// AddPattern registers a connection pattern after validating it. Both end
// marts must already be registered.
func (r *Registry) AddPattern(cp *ConnectionPattern) error {
	if _, dup := r.patterns[cp.Name]; dup {
		return fmt.Errorf("registry: duplicate pattern %q", cp.Name)
	}
	if err := cp.Validate(); err != nil {
		return err
	}
	for _, m := range []*Mart{cp.From, cp.To} {
		if _, ok := r.marts[m.Name]; !ok {
			return fmt.Errorf("registry: pattern %q references unregistered mart %q", cp.Name, m.Name)
		}
	}
	r.patterns[cp.Name] = cp
	return nil
}

// Mart looks up a mart by name.
func (r *Registry) Mart(name string) (*Mart, bool) {
	m, ok := r.marts[name]
	return m, ok
}

// Interface looks up a service interface by name.
func (r *Registry) Interface(name string) (*Interface, bool) {
	si, ok := r.interfaces[name]
	return si, ok
}

// Pattern looks up a connection pattern by name.
func (r *Registry) Pattern(name string) (*ConnectionPattern, bool) {
	cp, ok := r.patterns[name]
	return cp, ok
}

// InterfacesFor returns all interfaces over the named mart, sorted by name.
// This is the candidate set explored by phase 1 of the optimizer when the
// query is posed over marts rather than interfaces.
func (r *Registry) InterfacesFor(martName string) []*Interface {
	sis := append([]*Interface(nil), r.byMart[martName]...)
	sort.Slice(sis, func(i, j int) bool { return sis[i].Name < sis[j].Name })
	return sis
}

// Marts returns all mart names in sorted order.
func (r *Registry) Marts() []string {
	names := make([]string, 0, len(r.marts))
	for n := range r.marts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Patterns returns all pattern names in sorted order.
func (r *Registry) Patterns() []string {
	names := make([]string, 0, len(r.patterns))
	for n := range r.patterns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
