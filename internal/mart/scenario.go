package mart

import "seco/internal/types"

// This file defines the two scenarios used throughout the chapter as
// reusable registry builders: the Movie/Theatre/Restaurant running example
// (Sections 3.1 and 5.6) and the Conference/Weather/Flight/Hotel plan of
// Figs. 2–3. The adornments follow Section 5.6 verbatim.

// MovieScenario builds a registry holding the running example: the Movie,
// Theatre and Restaurant marts, the Movie1/Theatre1/Restaurant1 interfaces
// with the chapter's I/O/R adornments, and the Shows and DinnerPlace
// connection patterns with the chapter's selectivities (2% and 40%).
func MovieScenario() (*Registry, error) {
	r := NewRegistry()

	movie := &Mart{Name: "Movie", Attributes: []Attribute{
		{Name: "Title", Kind: types.KindString},
		{Name: "Director", Kind: types.KindString},
		{Name: "Score", Kind: types.KindFloat},
		{Name: "Year", Kind: types.KindInt},
		{Name: "Genres", Sub: []Attribute{{Name: "Genre", Kind: types.KindString}}},
		{Name: "Language", Kind: types.KindString},
		{Name: "Openings", Sub: []Attribute{
			{Name: "Country", Kind: types.KindString},
			{Name: "Date", Kind: types.KindDate},
		}},
		{Name: "Actors", Sub: []Attribute{{Name: "Name", Kind: types.KindString}}},
	}}

	theatre := &Mart{Name: "Theatre", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "UAddress", Kind: types.KindString},
		{Name: "UCity", Kind: types.KindString},
		{Name: "UCountry", Kind: types.KindString},
		{Name: "TAddress", Kind: types.KindString},
		{Name: "TCity", Kind: types.KindString},
		{Name: "TCountry", Kind: types.KindString},
		{Name: "TPhone", Kind: types.KindString},
		{Name: "Distance", Kind: types.KindFloat},
		{Name: "Movies", Sub: []Attribute{
			{Name: "Title", Kind: types.KindString},
			{Name: "StartTimes", Kind: types.KindString},
			{Name: "Duration", Kind: types.KindInt},
		}},
	}}

	restaurant := &Mart{Name: "Restaurant", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "UAddress", Kind: types.KindString},
		{Name: "UCity", Kind: types.KindString},
		{Name: "UCountry", Kind: types.KindString},
		{Name: "RAddress", Kind: types.KindString},
		{Name: "RCity", Kind: types.KindString},
		{Name: "RCountry", Kind: types.KindString},
		{Name: "Phone", Kind: types.KindString},
		{Name: "Url", Kind: types.KindString},
		{Name: "MapUrl", Kind: types.KindString},
		{Name: "Distance", Kind: types.KindFloat},
		{Name: "Rating", Kind: types.KindFloat},
		{Name: "Categories", Sub: []Attribute{{Name: "Name", Kind: types.KindString}}},
	}}

	for _, m := range []*Mart{movie, theatre, restaurant} {
		if err := r.AddMart(m); err != nil {
			return nil, err
		}
	}

	// Movie1(Title^O, Director^O, Score^R, Year^O, Genres.Genre^I,
	// Language^I, Openings.Country^I, Openings.Date^I, Actors.Name^O)
	movie1, err := NewInterface("Movie1", movie, map[string]Adornment{
		"Score":            Ranked,
		"Genres.Genre":     Input,
		"Language":         Input,
		"Openings.Country": Input,
		"Openings.Date":    Input,
	})
	if err != nil {
		return nil, err
	}

	// Theatre1(Name^O, UAddress^I, UCity^I, UCountry^I, TAddress^O,
	// TCity^O, TCountry^O, TPhone^O, Distance^R, Movies.Title^O,
	// Movies.StartTimes^O, Movies.Duration^O)
	theatre1, err := NewInterface("Theatre1", theatre, map[string]Adornment{
		"UAddress": Input,
		"UCity":    Input,
		"UCountry": Input,
		"Distance": Ranked,
	})
	if err != nil {
		return nil, err
	}

	// Restaurant1(Name^O, UAddress^I, UCity^O, UCountry^O, RAddress^O,
	// RCity^O, RCountry^O, Phone^O, Url^O, MapUrl^O, Distance^R,
	// Rating^R, Categories.Name^I)
	//
	// The chapter adorns Restaurant1's UAddress as input and its RCity /
	// RCountry via the DinnerPlace join; to honour "the three input
	// attributes of Restaurant are joined with the homonymous ones that
	// are in output in Theatre" we adorn UAddress, UCity and UCountry as
	// inputs.
	restaurant1, err := NewInterface("Restaurant1", restaurant, map[string]Adornment{
		"UAddress":        Input,
		"UCity":           Input,
		"UCountry":        Input,
		"Distance":        Ranked,
		"Rating":          Ranked,
		"Categories.Name": Input,
	})
	if err != nil {
		return nil, err
	}

	for _, si := range []*Interface{movie1, theatre1, restaurant1} {
		if err := r.AddInterface(si); err != nil {
			return nil, err
		}
	}

	// Shows(M,T): probability a given movie shows in a given theatre = 2%.
	shows := &ConnectionPattern{
		Name: "Shows", From: movie, To: theatre,
		Joins:       []Join{{From: "Title", To: "Movies.Title"}},
		Selectivity: 0.02,
	}
	// DinnerPlace(T,R): probability a theatre is near a good restaurant = 40%.
	dinner := &ConnectionPattern{
		Name: "DinnerPlace", From: theatre, To: restaurant,
		Joins: []Join{
			{From: "TAddress", To: "UAddress"},
			{From: "TCity", To: "UCity"},
			{From: "TCountry", To: "UCountry"},
		},
		Selectivity: 0.40,
	}
	for _, cp := range []*ConnectionPattern{shows, dinner} {
		if err := r.AddPattern(cp); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// TriangleScenario builds the cyclic registry used to exercise the n-ary
// ranked join: a Festival seed service (exact, selected by name) pipes
// its City into the Artist, Venue and Promoter search services, whose
// three connection patterns — Hosts(Artist,Venue) on Genre,
// Books(Venue,Promoter) on District, Signs(Promoter,Artist) on Label —
// close a cycle over three distinct join attributes (no edge is implied
// transitively by the other two). The three search services share the
// single dependency on the seed, so they form one parallel group and the
// optimizer weighs a binary join cascade against the multi-way
// intersection.
func TriangleScenario() (*Registry, error) {
	r := NewRegistry()

	festival := &Mart{Name: "Festival", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
	}}
	artist := &Mart{Name: "Artist", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
		{Name: "Genre", Kind: types.KindString},
		{Name: "Label", Kind: types.KindString},
		{Name: "Draw", Kind: types.KindInt},
		{Name: "Score", Kind: types.KindFloat},
	}}
	venue := &Mart{Name: "Venue", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
		{Name: "Genre", Kind: types.KindString},
		{Name: "District", Kind: types.KindString},
		{Name: "Capacity", Kind: types.KindInt},
		{Name: "Score", Kind: types.KindFloat},
	}}
	promoter := &Mart{Name: "Promoter", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
		{Name: "District", Kind: types.KindString},
		{Name: "Label", Kind: types.KindString},
		{Name: "Score", Kind: types.KindFloat},
	}}
	for _, m := range []*Mart{festival, artist, venue, promoter} {
		if err := r.AddMart(m); err != nil {
			return nil, err
		}
	}

	festival1, err := NewInterface("Festival1", festival, map[string]Adornment{
		"Name": Input,
	})
	if err != nil {
		return nil, err
	}
	artist1, err := NewInterface("Artist1", artist, map[string]Adornment{
		"City":  Input,
		"Score": Ranked,
	})
	if err != nil {
		return nil, err
	}
	venue1, err := NewInterface("Venue1", venue, map[string]Adornment{
		"City":  Input,
		"Score": Ranked,
	})
	if err != nil {
		return nil, err
	}
	promoter1, err := NewInterface("Promoter1", promoter, map[string]Adornment{
		"City":  Input,
		"Score": Ranked,
	})
	if err != nil {
		return nil, err
	}
	for _, si := range []*Interface{festival1, artist1, venue1, promoter1} {
		if err := r.AddInterface(si); err != nil {
			return nil, err
		}
	}

	// Seed pipes: every search service is invoked with the festival's
	// city, so the pipe equality holds trivially (selectivity 1).
	features := &ConnectionPattern{
		Name: "Features", From: festival, To: artist,
		Joins:       []Join{{From: "City", To: "City"}},
		Selectivity: 1,
	}
	inCity := &ConnectionPattern{
		Name: "InCity", From: festival, To: venue,
		Joins:       []Join{{From: "City", To: "City"}},
		Selectivity: 1,
	}
	covers := &ConnectionPattern{
		Name: "Covers", From: festival, To: promoter,
		Joins:       []Join{{From: "City", To: "City"}},
		Selectivity: 1,
	}
	// Cross edges closing the cycle over three distinct attributes.
	hosts := &ConnectionPattern{
		Name: "Hosts", From: artist, To: venue,
		Joins:       []Join{{From: "Genre", To: "Genre"}},
		Selectivity: 1.0 / 6,
	}
	books := &ConnectionPattern{
		Name: "Books", From: venue, To: promoter,
		Joins:       []Join{{From: "District", To: "District"}},
		Selectivity: 1.0 / 6,
	}
	signs := &ConnectionPattern{
		Name: "Signs", From: promoter, To: artist,
		Joins:       []Join{{From: "Label", To: "Label"}},
		Selectivity: 1.0 / 6,
	}
	for _, cp := range []*ConnectionPattern{features, inCity, covers, hosts, books, signs} {
		if err := r.AddPattern(cp); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// TravelScenario builds the Conference/Weather/Flight/Hotel registry behind
// the example plan of Figs. 2–3: Conference is an exact proliferative
// service (20 tuples on average), Weather is exact and selective in the
// context of the query, Flight and Hotel are chunked search services joined
// with a merge-scan parallel join.
func TravelScenario() (*Registry, error) {
	r := NewRegistry()

	conference := &Mart{Name: "Conference", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "Topic", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
		{Name: "Country", Kind: types.KindString},
		{Name: "StartDate", Kind: types.KindDate},
		{Name: "EndDate", Kind: types.KindDate},
	}}
	weather := &Mart{Name: "Weather", Attributes: []Attribute{
		{Name: "City", Kind: types.KindString},
		{Name: "Month", Kind: types.KindInt},
		{Name: "AvgTemp", Kind: types.KindFloat},
	}}
	flight := &Mart{Name: "Flight", Attributes: []Attribute{
		{Name: "From", Kind: types.KindString},
		{Name: "To", Kind: types.KindString},
		{Name: "Date", Kind: types.KindDate},
		{Name: "Carrier", Kind: types.KindString},
		{Name: "Price", Kind: types.KindFloat},
	}}
	hotel := &Mart{Name: "Hotel", Attributes: []Attribute{
		{Name: "Name", Kind: types.KindString},
		{Name: "City", Kind: types.KindString},
		{Name: "Stars", Kind: types.KindInt},
		{Name: "Price", Kind: types.KindFloat},
		{Name: "Rating", Kind: types.KindFloat},
	}}
	for _, m := range []*Mart{conference, weather, flight, hotel} {
		if err := r.AddMart(m); err != nil {
			return nil, err
		}
	}

	conference1, err := NewInterface("Conference1", conference, map[string]Adornment{
		"Topic": Input,
	})
	if err != nil {
		return nil, err
	}
	weather1, err := NewInterface("Weather1", weather, map[string]Adornment{
		"City":  Input,
		"Month": Input,
	})
	if err != nil {
		return nil, err
	}
	flight1, err := NewInterface("Flight1", flight, map[string]Adornment{
		"From":  Input,
		"To":    Input,
		"Date":  Input,
		"Price": Ranked,
	})
	if err != nil {
		return nil, err
	}
	hotel1, err := NewInterface("Hotel1", hotel, map[string]Adornment{
		"City":   Input,
		"Rating": Ranked,
	})
	if err != nil {
		return nil, err
	}
	for _, si := range []*Interface{conference1, weather1, flight1, hotel1} {
		if err := r.AddInterface(si); err != nil {
			return nil, err
		}
	}

	forecast := &ConnectionPattern{
		Name: "Forecast", From: conference, To: weather,
		Joins:       []Join{{From: "City", To: "City"}},
		Selectivity: 0.30,
	}
	reachedBy := &ConnectionPattern{
		Name: "ReachedBy", From: conference, To: flight,
		Joins: []Join{
			{From: "City", To: "To"},
			{From: "StartDate", To: "Date"},
		},
		Selectivity: 0.10,
	}
	staysAt := &ConnectionPattern{
		Name: "StaysAt", From: conference, To: hotel,
		Joins:       []Join{{From: "City", To: "City"}},
		Selectivity: 0.20,
	}
	for _, cp := range []*ConnectionPattern{forecast, reachedBy, staysAt} {
		if err := r.AddPattern(cp); err != nil {
			return nil, err
		}
	}
	return r, nil
}
