package mart

import (
	"testing"

	"seco/internal/types"
)

func TestRegistryAddAndLookup(t *testing.T) {
	r := NewRegistry()
	m := testMart()
	if err := r.AddMart(m); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMart(m); err == nil {
		t.Error("duplicate mart accepted")
	}
	got, ok := r.Mart("Movie")
	if !ok || got != m {
		t.Error("Mart lookup failed")
	}
	if _, ok := r.Mart("X"); ok {
		t.Error("missing mart found")
	}

	si, _ := NewInterface("Movie1", m, nil)
	if err := r.AddInterface(si); err != nil {
		t.Fatal(err)
	}
	if err := r.AddInterface(si); err == nil {
		t.Error("duplicate interface accepted")
	}
	other := &Mart{Name: "Ghost"}
	gi, _ := NewInterface("Ghost1", other, nil)
	if err := r.AddInterface(gi); err == nil {
		t.Error("interface over unregistered mart accepted")
	}
	if _, ok := r.Interface("Movie1"); !ok {
		t.Error("Interface lookup failed")
	}
}

func TestRegistryDuplicatePathMart(t *testing.T) {
	r := NewRegistry()
	bad := &Mart{Name: "Dup", Attributes: []Attribute{
		{Name: "A", Kind: types.KindInt},
		{Name: "A", Kind: types.KindString},
	}}
	if err := r.AddMart(bad); err == nil {
		t.Error("mart with duplicate path accepted")
	}
}

func TestRegistryPatterns(t *testing.T) {
	r := NewRegistry()
	m1, m2 := testMart(), &Mart{Name: "Theatre", Attributes: []Attribute{
		{Name: "MTitle", Kind: types.KindString},
	}}
	if err := r.AddMart(m1); err != nil {
		t.Fatal(err)
	}
	cp := &ConnectionPattern{Name: "Shows", From: m1, To: m2,
		Joins: []Join{{From: "Title", To: "MTitle"}}, Selectivity: 0.02}
	if err := r.AddPattern(cp); err == nil {
		t.Error("pattern with unregistered To-mart accepted")
	}
	if err := r.AddMart(m2); err != nil {
		t.Fatal(err)
	}
	if err := r.AddPattern(cp); err != nil {
		t.Fatal(err)
	}
	if err := r.AddPattern(cp); err == nil {
		t.Error("duplicate pattern accepted")
	}
	if _, ok := r.Pattern("Shows"); !ok {
		t.Error("Pattern lookup failed")
	}
	if got := r.Patterns(); len(got) != 1 || got[0] != "Shows" {
		t.Errorf("Patterns = %v", got)
	}
}

func TestInterfacesForSorted(t *testing.T) {
	r := NewRegistry()
	m := testMart()
	if err := r.AddMart(m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Movie2", "Movie1", "Movie3"} {
		si, _ := NewInterface(name, m, nil)
		if err := r.AddInterface(si); err != nil {
			t.Fatal(err)
		}
	}
	got := r.InterfacesFor("Movie")
	if len(got) != 3 || got[0].Name != "Movie1" || got[2].Name != "Movie3" {
		t.Errorf("InterfacesFor order: %v", got)
	}
	if got := r.InterfacesFor("None"); len(got) != 0 {
		t.Errorf("InterfacesFor(None) = %v", got)
	}
}

func TestMovieScenario(t *testing.T) {
	r, err := MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Marts(); len(got) != 3 {
		t.Fatalf("Marts = %v", got)
	}
	m1, ok := r.Interface("Movie1")
	if !ok {
		t.Fatal("Movie1 missing")
	}
	// Chapter 5.6 adornments: Movie1 inputs are Genres.Genre, Language,
	// Openings.Country, Openings.Date.
	in := m1.InputPaths()
	want := []string{"Genres.Genre", "Language", "Openings.Country", "Openings.Date"}
	if len(in) != len(want) {
		t.Fatalf("Movie1 inputs = %v", in)
	}
	for i := range want {
		if in[i] != want[i] {
			t.Errorf("Movie1 input[%d] = %q, want %q", i, in[i], want[i])
		}
	}
	if !m1.IsSearch() {
		t.Error("Movie1 should be a search service (Score^R)")
	}
	shows, ok := r.Pattern("Shows")
	if !ok || shows.Selectivity != 0.02 {
		t.Errorf("Shows pattern: %+v, %v", shows, ok)
	}
	dinner, ok := r.Pattern("DinnerPlace")
	if !ok || dinner.Selectivity != 0.40 || len(dinner.Joins) != 3 {
		t.Errorf("DinnerPlace pattern: %+v, %v", dinner, ok)
	}
}

func TestTravelScenario(t *testing.T) {
	r, err := TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	c1, ok := r.Interface("Conference1")
	if !ok || c1.IsSearch() {
		t.Errorf("Conference1 should be exact: %v %v", c1, ok)
	}
	f1, ok := r.Interface("Flight1")
	if !ok || !f1.IsSearch() {
		t.Errorf("Flight1 should be search: %v %v", f1, ok)
	}
	h1, ok := r.Interface("Hotel1")
	if !ok || !h1.IsSearch() {
		t.Errorf("Hotel1 should be search: %v %v", h1, ok)
	}
	for _, p := range []string{"Forecast", "ReachedBy", "StaysAt"} {
		if _, ok := r.Pattern(p); !ok {
			t.Errorf("pattern %s missing", p)
		}
	}
}
