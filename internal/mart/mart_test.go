package mart

import (
	"strings"
	"testing"

	"seco/internal/types"
)

func testMart() *Mart {
	return &Mart{Name: "Movie", Attributes: []Attribute{
		{Name: "Title", Kind: types.KindString},
		{Name: "Score", Kind: types.KindFloat},
		{Name: "Genres", Sub: []Attribute{{Name: "Genre", Kind: types.KindString}}},
	}}
}

func TestMartAttributeLookup(t *testing.T) {
	m := testMart()
	a, ok := m.Attribute("Title")
	if !ok || a.Kind != types.KindString {
		t.Fatalf("Attribute(Title) = %v,%v", a, ok)
	}
	if _, ok := m.Attribute("Nope"); ok {
		t.Error("Attribute(Nope) found")
	}
	g, ok := m.Attribute("Genres")
	if !ok || !g.IsGroup() {
		t.Fatalf("Genres not a group: %v,%v", g, ok)
	}
}

func TestHasPath(t *testing.T) {
	m := testMart()
	cases := map[string]bool{
		"Title":        true,
		"Genres.Genre": true,
		"Genres":       false, // group itself is not atomic
		"Title.Sub":    false,
		"Genres.Nope":  false,
		"Nope":         false,
		"Nope.Sub":     false,
	}
	for p, want := range cases {
		if got := m.HasPath(p); got != want {
			t.Errorf("HasPath(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestPathKind(t *testing.T) {
	m := testMart()
	k, err := m.PathKind("Score")
	if err != nil || k != types.KindFloat {
		t.Errorf("PathKind(Score) = %v,%v", k, err)
	}
	k, err = m.PathKind("Genres.Genre")
	if err != nil || k != types.KindString {
		t.Errorf("PathKind(Genres.Genre) = %v,%v", k, err)
	}
	for _, bad := range []string{"Genres", "Title.X", "Genres.Nope", "Missing"} {
		if _, err := m.PathKind(bad); err == nil {
			t.Errorf("PathKind(%q) succeeded", bad)
		}
	}
}

func TestPaths(t *testing.T) {
	got := testMart().Paths()
	want := []string{"Title", "Score", "Genres.Genre"}
	if len(got) != len(want) {
		t.Fatalf("Paths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Paths[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewInterfaceDefaultsAndOverrides(t *testing.T) {
	m := testMart()
	si, err := NewInterface("Movie1", m, map[string]Adornment{
		"Genres.Genre": Input,
		"Score":        Ranked,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := si.InputPaths(); len(got) != 1 || got[0] != "Genres.Genre" {
		t.Errorf("InputPaths = %v", got)
	}
	if got := si.RankedPaths(); len(got) != 1 || got[0] != "Score" {
		t.Errorf("RankedPaths = %v", got)
	}
	if got := si.OutputPaths(); len(got) != 2 { // Title + Score(ranked counts as output)
		t.Errorf("OutputPaths = %v", got)
	}
	if !si.IsSearch() {
		t.Error("interface with ranked path not a search service")
	}
}

func TestNewInterfaceUnknownPath(t *testing.T) {
	if _, err := NewInterface("X", testMart(), map[string]Adornment{"Bogus": Input}); err == nil {
		t.Error("NewInterface with bogus override succeeded")
	}
}

func TestInterfaceStringNotation(t *testing.T) {
	si, _ := NewInterface("Movie1", testMart(), map[string]Adornment{
		"Genres.Genre": Input, "Score": Ranked,
	})
	s := si.String()
	for _, frag := range []string{"Movie1(", "Title^O", "Score^R", "Genres.Genre^I"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}

func TestExactInterfaceIsNotSearch(t *testing.T) {
	si, _ := NewInterface("MovieExact", testMart(), nil)
	if si.IsSearch() {
		t.Error("all-output interface classified as search")
	}
}

func TestConnectionPatternValidate(t *testing.T) {
	m1, m2 := testMart(), &Mart{Name: "Theatre", Attributes: []Attribute{
		{Name: "MTitle", Kind: types.KindString},
	}}
	ok := &ConnectionPattern{Name: "Shows", From: m1, To: m2,
		Joins: []Join{{From: "Title", To: "MTitle"}}, Selectivity: 0.02}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	bad := []*ConnectionPattern{
		{Name: "NoJoins", From: m1, To: m2, Selectivity: 0.1},
		{Name: "BadSel", From: m1, To: m2, Joins: []Join{{From: "Title", To: "MTitle"}}, Selectivity: 0},
		{Name: "BadSel2", From: m1, To: m2, Joins: []Join{{From: "Title", To: "MTitle"}}, Selectivity: 1.5},
		{Name: "BadFrom", From: m1, To: m2, Joins: []Join{{From: "X", To: "MTitle"}}, Selectivity: 0.1},
		{Name: "BadTo", From: m1, To: m2, Joins: []Join{{From: "Title", To: "X"}}, Selectivity: 0.1},
	}
	for _, cp := range bad {
		if err := cp.Validate(); err == nil {
			t.Errorf("pattern %s validated, want error", cp.Name)
		}
	}
}

func TestAdornmentString(t *testing.T) {
	if Input.String() != "I" || Output.String() != "O" || Ranked.String() != "R" {
		t.Error("adornment letters wrong")
	}
	if Adornment(9).String() != "?" {
		t.Error("unknown adornment")
	}
}
