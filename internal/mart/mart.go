// Package mart models the design-time registry of Search Computing:
// service marts, their attributes (atomic and repeating groups), service
// interfaces with access-pattern adornments, and connection patterns that
// predefine join conditions between marts (Chapter 9 of the book, used
// throughout the optimization chapter).
//
// A service mart is the conceptual description of an information source.
// A service interface is one concrete way to call it, characterized by an
// adornment that classifies each (sub-)attribute as Input, Output or
// Ranked. Connection patterns name reusable join conditions between two
// marts, so queries can write Shows(M,T) instead of spelling out the
// attribute equalities.
package mart

import (
	"fmt"
	"sort"
	"strings"

	"seco/internal/types"
)

// Adornment classifies the role of a (sub-)attribute in a service
// interface's access pattern, following the I/O/R notation of Section 5.6.
type Adornment int

const (
	// Output marks an attribute produced by the service.
	Output Adornment = iota
	// Input marks an attribute that must be bound to invoke the service.
	Input
	// Ranked marks an output attribute that carries the ranking measure of
	// a search service.
	Ranked
)

// String returns the single-letter adornment used in the chapter (I, O, R).
func (a Adornment) String() string {
	switch a {
	case Input:
		return "I"
	case Output:
		return "O"
	case Ranked:
		return "R"
	default:
		return "?"
	}
}

// Attribute describes one attribute of a service mart. If Sub is non-empty
// the attribute is a repeating group whose members are the sub-attributes;
// otherwise it is atomic.
type Attribute struct {
	// Name is the attribute name, unique within the mart.
	Name string
	// Kind is the value type of an atomic attribute; ignored for
	// repeating groups.
	Kind types.Kind
	// Sub lists the sub-attributes when the attribute is a repeating group.
	Sub []Attribute
}

// IsGroup reports whether the attribute is a repeating group.
func (a Attribute) IsGroup() bool { return len(a.Sub) > 0 }

// Mart is a service mart: a named, flat schema of attributes and repeating
// groups describing one class of information objects.
type Mart struct {
	// Name is the mart name (e.g. "Movie").
	Name string
	// Attributes is the mart schema in declaration order.
	Attributes []Attribute
}

// Attribute returns the attribute with the given name, or false.
func (m *Mart) Attribute(name string) (Attribute, bool) {
	for _, a := range m.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// HasPath reports whether path ("Attr" or "Group.Sub") names an attribute
// or sub-attribute of the mart.
func (m *Mart) HasPath(path string) bool {
	group, sub, dotted := strings.Cut(path, ".")
	a, ok := m.Attribute(group)
	if !ok {
		return false
	}
	if !dotted {
		return !a.IsGroup()
	}
	if !a.IsGroup() {
		return false
	}
	for _, s := range a.Sub {
		if s.Name == sub {
			return true
		}
	}
	return false
}

// PathKind returns the value kind of an attribute path, or an error if the
// path does not name an atomic (sub-)attribute of the mart.
func (m *Mart) PathKind(path string) (types.Kind, error) {
	group, sub, dotted := strings.Cut(path, ".")
	a, ok := m.Attribute(group)
	if !ok {
		return types.KindNull, fmt.Errorf("mart %s: no attribute %q", m.Name, group)
	}
	if !dotted {
		if a.IsGroup() {
			return types.KindNull, fmt.Errorf("mart %s: %q is a repeating group, not atomic", m.Name, group)
		}
		return a.Kind, nil
	}
	if !a.IsGroup() {
		return types.KindNull, fmt.Errorf("mart %s: %q is atomic, has no sub-attribute %q", m.Name, group, sub)
	}
	for _, s := range a.Sub {
		if s.Name == sub {
			return s.Kind, nil
		}
	}
	return types.KindNull, fmt.Errorf("mart %s: group %q has no sub-attribute %q", m.Name, group, sub)
}

// Paths returns every atomic attribute path of the mart ("Attr" and
// "Group.Sub"), in declaration order.
func (m *Mart) Paths() []string {
	var ps []string
	for _, a := range m.Attributes {
		if a.IsGroup() {
			for _, s := range a.Sub {
				ps = append(ps, a.Name+"."+s.Name)
			}
		} else {
			ps = append(ps, a.Name)
		}
	}
	return ps
}

// Interface is a service interface: a concrete access pattern over a mart.
// Every atomic path of the mart is adorned Input, Output or Ranked.
type Interface struct {
	// Name identifies the interface (e.g. "Movie1").
	Name string
	// Mart is the mart this interface implements.
	Mart *Mart
	// Adornments maps each atomic attribute path to its role.
	Adornments map[string]Adornment
}

// NewInterface builds an interface over m, defaulting every path to Output
// and applying the given overrides. It returns an error if an override
// names an unknown path.
func NewInterface(name string, m *Mart, overrides map[string]Adornment) (*Interface, error) {
	ad := make(map[string]Adornment, len(m.Paths()))
	for _, p := range m.Paths() {
		ad[p] = Output
	}
	for p, a := range overrides {
		if _, ok := ad[p]; !ok {
			return nil, fmt.Errorf("interface %s: adornment for unknown path %q", name, p)
		}
		ad[p] = a
	}
	return &Interface{Name: name, Mart: m, Adornments: ad}, nil
}

// InputPaths returns the interface's input attribute paths in sorted order.
func (si *Interface) InputPaths() []string {
	return si.pathsWith(Input)
}

// OutputPaths returns the output and ranked paths in sorted order.
func (si *Interface) OutputPaths() []string {
	out := si.pathsWith(Output)
	out = append(out, si.pathsWith(Ranked)...)
	sort.Strings(out)
	return out
}

// RankedPaths returns the ranked paths in sorted order. A non-empty result
// marks the interface as a search service.
func (si *Interface) RankedPaths() []string {
	return si.pathsWith(Ranked)
}

// IsSearch reports whether the interface exposes a ranking measure, i.e.
// whether it is a search service in the chapter's classification.
func (si *Interface) IsSearch() bool { return len(si.RankedPaths()) > 0 }

func (si *Interface) pathsWith(a Adornment) []string {
	var ps []string
	for p, ad := range si.Adornments {
		if ad == a {
			ps = append(ps, p)
		}
	}
	sort.Strings(ps)
	return ps
}

// String renders the interface in the chapter's adornment notation:
// Name(path^A, ...).
func (si *Interface) String() string {
	var b strings.Builder
	b.WriteString(si.Name)
	b.WriteByte('(')
	for i, p := range si.Mart.Paths() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s^%s", p, si.Adornments[p])
	}
	b.WriteByte(')')
	return b.String()
}

// Join is one attribute equality of a connection pattern: the path on the
// source mart equated with the path on the target mart.
type Join struct {
	// From is the attribute path on the pattern's source mart.
	From string
	// To is the attribute path on the pattern's target mart.
	To string
}

// ConnectionPattern is a named, directed join condition between two marts,
// e.g. Shows(Movie, Theatre) ≡ Movie.Title = Theatre.Movie.Title.
type ConnectionPattern struct {
	// Name is the pattern name used in queries (e.g. "Shows").
	Name string
	// From and To are the two marts the pattern connects.
	From, To *Mart
	// Joins is the conjunction of attribute equalities.
	Joins []Join
	// Selectivity estimates the fraction of candidate pairs that satisfy
	// the pattern, used by the annotation engine (e.g. Shows = 0.02).
	Selectivity float64
}

// Validate checks that every join path exists on the respective mart.
func (cp *ConnectionPattern) Validate() error {
	if len(cp.Joins) == 0 {
		return fmt.Errorf("pattern %s: no join conditions", cp.Name)
	}
	if cp.Selectivity <= 0 || cp.Selectivity > 1 {
		return fmt.Errorf("pattern %s: selectivity %v out of (0,1]", cp.Name, cp.Selectivity)
	}
	for _, j := range cp.Joins {
		if !cp.From.HasPath(j.From) {
			return fmt.Errorf("pattern %s: mart %s has no path %q", cp.Name, cp.From.Name, j.From)
		}
		if !cp.To.HasPath(j.To) {
			return fmt.Errorf("pattern %s: mart %s has no path %q", cp.Name, cp.To.Name, j.To)
		}
	}
	return nil
}
