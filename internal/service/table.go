package service

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"seco/internal/mart"
	"seco/internal/types"
)

// Table is an in-memory Service backed by a slice of tuples. It is the
// substrate standing in for remote web services: the synthetic scenario
// generators load it with deterministic data, and it then behaves exactly
// like the chapter's services — it honours access limitations (all input
// paths must be bound), filters rows by the input binding with the
// single-sub-tuple repeating-group semantics of Section 3.1, and serves the
// matching rows in decreasing score order, chunk by chunk.
type Table struct {
	si    *mart.Interface
	stats Stats
	rows  []*types.Tuple
	// matchOps optionally overrides the comparison used for an input
	// path; the default is equality. The running example uses OpGe for
	// Movie1's Openings.Date input ("opening after the given date").
	matchOps map[string]types.Op
}

// NewTable builds a table service over si with the given statistics.
func NewTable(si *mart.Interface, stats Stats) (*Table, error) {
	if err := stats.Validate(); err != nil {
		return nil, err
	}
	return &Table{si: si, stats: stats, matchOps: make(map[string]types.Op)}, nil
}

// SetMatchOp overrides the comparison operator used when matching the
// given input path against its bound value. The operator is evaluated as
// "row value op bound value".
func (t *Table) SetMatchOp(path string, op types.Op) { t.matchOps[path] = op }

// Add appends rows to the table, interning their string values in the
// process-global scope. Load time is the one point the table exclusively
// owns its rows, so the in-place rewrite is safe, and every value served
// afterwards carries an intern handle — equality during matching and
// joining is then a handle comparison.
func (t *Table) Add(rows ...*types.Tuple) {
	for _, row := range rows {
		types.InternTupleInPlace(row)
	}
	t.rows = append(t.rows, rows...)
}

// Len returns the number of rows loaded.
func (t *Table) Len() int { return len(t.rows) }

// Interface implements Service.
func (t *Table) Interface() *mart.Interface { return t.si }

// Stats implements Service.
func (t *Table) Stats() Stats { return t.stats }

// Invoke implements Service: it filters rows by the binding, sorts the
// matches by decreasing score (stable, so generation order breaks ties) and
// returns an invocation serving them in chunks of Stats().ChunkSize.
func (t *Table) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := CheckInput(t.si, in); err != nil {
		return nil, err
	}
	mp := t.planMatch(in)
	var matches []*types.Tuple
	for _, row := range t.rows {
		ok, err := t.matches(row, in, mp)
		if err != nil {
			return nil, err
		}
		if ok {
			matches = append(matches, row)
		}
	}
	sort.SliceStable(matches, func(i, j int) bool {
		return matches[i].Score > matches[j].Score
	})
	return &tableInvocation{table: t, matches: matches}, nil
}

// matchPlan is the per-invocation decomposition of an input binding:
// atomic paths and per-group dotted paths split and sorted once, instead
// of rebuilding the grouping map (and re-cutting every path) per row.
type matchPlan struct {
	atomics []string
	groups  []matchGroup
}

type matchGroup struct {
	name  string
	paths []string // full dotted paths, sorted
	subs  []string // the sub-attribute of each path
}

// planMatch decomposes the binding for one invocation's row scan.
func (t *Table) planMatch(in Input) matchPlan {
	var mp matchPlan
	byGroup := map[string]int{}
	for p := range in {
		g, _, dotted := strings.Cut(p, ".")
		if !dotted {
			mp.atomics = append(mp.atomics, p)
			continue
		}
		i, ok := byGroup[g]
		if !ok {
			i = len(mp.groups)
			byGroup[g] = i
			mp.groups = append(mp.groups, matchGroup{name: g})
		}
		mp.groups[i].paths = append(mp.groups[i].paths, p)
	}
	for i := range mp.groups {
		sort.Strings(mp.groups[i].paths)
		mp.groups[i].subs = make([]string, len(mp.groups[i].paths))
		for j, p := range mp.groups[i].paths {
			_, sub, _ := strings.Cut(p, ".")
			mp.groups[i].subs[j] = sub
		}
	}
	return mp
}

// matches evaluates the input binding against one row. Atomic paths must
// satisfy their operator directly. Input paths on the same repeating group
// must be satisfied together by a single sub-tuple, realizing the
// existential single-mapping semantics of Section 3.1.
func (t *Table) matches(row *types.Tuple, in Input, mp matchPlan) (bool, error) {
	for _, p := range mp.atomics {
		ok, err := t.op(p).Eval(row.Get(p), in[p])
		if err != nil {
			return false, fmt.Errorf("service %s: matching %q: %w", t.si.Name, p, err)
		}
		if !ok {
			return false, nil
		}
	}
	for i := range mp.groups {
		if !t.groupMatches(row, &mp.groups[i], in) {
			return false, nil
		}
	}
	return true, nil
}

func (t *Table) groupMatches(row *types.Tuple, g *matchGroup, in Input) bool {
	for _, st := range row.Groups[g.name] {
		all := true
		for j, p := range g.paths {
			ok, err := t.op(p).Eval(st[g.subs[j]], in[p])
			if err != nil || !ok {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func (t *Table) op(path string) types.Op {
	if op, ok := t.matchOps[path]; ok {
		return op
	}
	return types.OpEq
}

type tableInvocation struct {
	table   *Table
	matches []*types.Tuple
	next    int // index of the next chunk
}

// Fetch implements Invocation.
func (inv *tableInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := ctx.Err(); err != nil {
		return Chunk{}, err
	}
	size := inv.table.stats.ChunkSize
	if size <= 0 {
		size = len(inv.matches)
		if size == 0 && inv.next == 0 {
			inv.next = 1
			return Chunk{Index: 0}, nil
		}
	}
	lo := inv.next * size
	if lo >= len(inv.matches) && !(inv.next == 0 && inv.table.stats.ChunkSize <= 0) {
		return Chunk{}, ErrExhausted
	}
	hi := lo + size
	if hi > len(inv.matches) {
		hi = len(inv.matches)
	}
	c := Chunk{Index: inv.next, Tuples: inv.matches[lo:hi]}
	inv.next++
	return c, nil
}
