package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFlakyInjectsFailures(t *testing.T) {
	tab := newMovieTable(t, 0)
	f := NewFlaky(tab, 2) // every 2nd call fails
	// Call 1 (invoke) succeeds, call 2 (fetch) fails.
	inv, err := f.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Fetch(context.Background()); !errors.Is(err, ErrTransient) {
		t.Fatalf("fetch err = %v, want transient", err)
	}
	if f.Injected() != 1 {
		t.Errorf("Injected = %d", f.Injected())
	}
	// Next fetch (call 3) succeeds.
	if _, err := inv.Fetch(context.Background()); err != nil {
		t.Fatalf("retry-able fetch failed hard: %v", err)
	}
	if f.Interface() != tab.Interface() || f.Stats().ChunkSize != 0 {
		t.Error("Flaky does not forward Interface/Stats")
	}
}

func TestFlakyDisabled(t *testing.T) {
	tab := newMovieTable(t, 0)
	f := NewFlaky(tab, 0)
	inv, err := f.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Fetch(context.Background()); err != nil {
		t.Errorf("disabled flaky failed: %v", err)
	}
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	tab := newMovieTable(t, 1)
	f := NewFlaky(tab, 3)
	var slept []time.Duration
	r := NewRetry(f)
	r.Sleep = func(d time.Duration) { slept = append(slept, d) }
	inv, err := r.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		c, err := inv.Fetch(context.Background())
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatalf("fetch failed despite retries: %v", err)
		}
		got += len(c.Tuples)
	}
	if got != 2 {
		t.Errorf("tuples = %d, want 2", got)
	}
	if r.Retried() == 0 || len(slept) == 0 {
		t.Error("no retries recorded despite injected failures")
	}
	// Exponential backoff: each sleep doubles within one attempt run.
	if len(slept) >= 2 && slept[0] != 10*time.Millisecond {
		t.Errorf("first backoff = %v, want 10ms", slept[0])
	}
}

func TestRetryGivesUpAfterMax(t *testing.T) {
	tab := newMovieTable(t, 1)
	f := NewFlaky(tab, 1) // every call fails
	r := NewRetry(f)
	r.MaxRetries = 2
	r.Sleep = func(time.Duration) {}
	if _, err := r.Invoke(context.Background(), movieInput()); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped transient after give-up", err)
	}
	if r.Retried() != 2 {
		t.Errorf("Retried = %d, want 2", r.Retried())
	}
}

func TestRetryPassesThroughHardErrors(t *testing.T) {
	tab := newMovieTable(t, 1)
	r := NewRetry(tab)
	r.Sleep = func(time.Duration) {}
	// Missing input is a hard error: no retries.
	if _, err := r.Invoke(context.Background(), Input{}); err == nil {
		t.Fatal("hard error swallowed")
	}
	if r.Retried() != 0 {
		t.Errorf("hard error retried %d times", r.Retried())
	}
	// Exhaustion passes through untouched.
	inv, err := r.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := inv.Fetch(context.Background()); errors.Is(err, ErrExhausted) {
			return
		}
	}
	t.Error("exhaustion never surfaced")
}

func TestRetryRespectsContext(t *testing.T) {
	tab := newMovieTable(t, 1)
	f := NewFlaky(tab, 1)
	r := NewRetry(f)
	ctx, cancel := context.WithCancel(context.Background())
	r.Sleep = func(time.Duration) { cancel() }
	if _, err := r.Invoke(ctx, movieInput()); err == nil {
		t.Fatal("cancelled retry succeeded")
	}
	if r.Retried() > 1 {
		t.Errorf("kept retrying after cancel: %d", r.Retried())
	}
}

func TestRetryForwarding(t *testing.T) {
	tab := newMovieTable(t, 1)
	r := NewRetry(tab)
	if r.Interface() != tab.Interface() || r.Stats().ChunkSize != 1 {
		t.Error("Retry does not forward Interface/Stats")
	}
}
