package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"seco/internal/mart"
)

// ErrTransient marks a retryable failure of a remote service (timeouts,
// overload). Wrappers test for it with errors.Is.
var ErrTransient = errors.New("service: transient failure")

// Flaky wraps a service and injects deterministic transient failures: one
// failure every FailEvery calls (counting Invoke and Fetch together). It
// simulates the unreliable remote services a production deployment faces,
// for failure-injection tests.
type Flaky struct {
	inner Service
	// FailEvery injects one failure on every n-th call; 0 disables
	// injection.
	FailEvery int
	calls     int
	injected  int
}

// NewFlaky wraps svc.
func NewFlaky(svc Service, failEvery int) *Flaky {
	return &Flaky{inner: svc, FailEvery: failEvery}
}

// Injected reports how many failures have been injected so far.
func (f *Flaky) Injected() int { return f.injected }

// Interface implements Service.
func (f *Flaky) Interface() *mart.Interface { return f.inner.Interface() }

// Stats implements Service.
func (f *Flaky) Stats() Stats { return f.inner.Stats() }

// Invoke implements Service, possibly failing transiently.
func (f *Flaky) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := f.maybeFail("invoke"); err != nil {
		return nil, err
	}
	inv, err := f.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &flakyInvocation{flaky: f, inner: inv}, nil
}

func (f *Flaky) maybeFail(op string) error {
	f.calls++
	if f.FailEvery > 0 && f.calls%f.FailEvery == 0 {
		f.injected++
		return fmt.Errorf("service %s: injected %s failure #%d: %w",
			f.inner.Interface().Name, op, f.injected, ErrTransient)
	}
	return nil
}

type flakyInvocation struct {
	flaky *Flaky
	inner Invocation
}

// Fetch implements Invocation, possibly failing transiently.
func (fi *flakyInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := fi.flaky.maybeFail("fetch"); err != nil {
		return Chunk{}, err
	}
	return fi.inner.Fetch(ctx)
}

// Retry wraps a service with transient-failure retries: Invoke and Fetch
// attempts that fail with ErrTransient are repeated up to MaxRetries
// times, sleeping an exponentially growing backoff between attempts via
// an injectable sleep hook. Non-transient errors, ErrExhausted and
// context cancellation pass through immediately.
type Retry struct {
	inner Service
	// MaxRetries is the number of re-attempts after the first failure
	// (default 3 when zero).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 10 ms); it doubles
	// per attempt.
	BaseBackoff time.Duration
	// Sleep is the delay hook (default: real time.Sleep; tests inject a
	// recorder).
	Sleep func(time.Duration)

	retried int
}

// NewRetry wraps svc with default policy.
func NewRetry(svc Service) *Retry {
	return &Retry{inner: svc}
}

// Retried reports the total retry attempts performed.
func (r *Retry) Retried() int { return r.retried }

// Interface implements Service.
func (r *Retry) Interface() *mart.Interface { return r.inner.Interface() }

// Stats implements Service.
func (r *Retry) Stats() Stats { return r.inner.Stats() }

func (r *Retry) policy() (int, time.Duration, func(time.Duration)) {
	max := r.MaxRetries
	if max <= 0 {
		max = 3
	}
	base := r.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return max, base, sleep
}

// Invoke implements Service with retries.
func (r *Retry) Invoke(ctx context.Context, in Input) (Invocation, error) {
	var inv Invocation
	err := r.attempt(ctx, func() error {
		var e error
		inv, e = r.inner.Invoke(ctx, in)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryInvocation{retry: r, ctx: ctx, inner: inv}, nil
}

// attempt runs op with the retry policy.
func (r *Retry) attempt(ctx context.Context, op func() error) error {
	max, backoff, sleep := r.policy()
	var err error
	for tries := 0; ; tries++ {
		err = op()
		if err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
		if tries >= max {
			return fmt.Errorf("service %s: giving up after %d retries: %w",
				r.inner.Interface().Name, max, err)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		r.retried++
		sleep(backoff)
		backoff *= 2
	}
}

type retryInvocation struct {
	retry *Retry
	ctx   context.Context
	inner Invocation
}

// Fetch implements Invocation with retries.
func (ri *retryInvocation) Fetch(ctx context.Context) (Chunk, error) {
	var chunk Chunk
	err := ri.retry.attempt(ctx, func() error {
		var e error
		chunk, e = ri.inner.Fetch(ctx)
		return e
	})
	return chunk, err
}
