package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"seco/internal/mart"
	"seco/internal/obs"
)

// Retry wraps a service with policy-driven transient-failure retries:
// Invoke and Fetch attempts that fail with ErrTransient are repeated up
// to MaxRetries times, sleeping a jittered exponential backoff between
// attempts. Backoff time flows through the installed TimeSource — the
// engine installs its Clock, so virtual-clock runs charge backoff into
// the simulated Elapsed deterministically — or through the explicit
// Sleep hook when one is set; with neither, retries proceed without
// delay. Non-transient errors (including ErrPermanent and ErrOpen),
// ErrExhausted, budget exhaustion and context cancellation pass through
// immediately. Counters are atomic: parallel joins drive a wrapped
// service from many goroutines.
type Retry struct {
	inner Service
	// MaxRetries is the number of re-attempts after the first failure
	// (default 3 when zero).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 10 ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the grown delay (default 2 s).
	MaxBackoff time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter subtracts a uniform random share of up to Jitter (in [0,1])
	// from each delay, decorrelating the retry storms of concurrent
	// invocations. 0 (the default) keeps delays exact; the draw is seeded
	// so schedules are reproducible.
	Jitter float64
	// Seed drives the jitter draws (same seed, same schedule).
	Seed int64
	// Sleep, when set, overrides the delay hook (tests inject recorders).
	Sleep func(time.Duration)

	clock   atomic.Pointer[tsBox]
	retried atomic.Int64
	giveups atomic.Int64

	jmu sync.Mutex
	rng *rand.Rand
}

// tsBox wraps a TimeSource so an interface value can live in an
// atomic.Pointer (SetTimeSource may race with in-flight attempts).
type tsBox struct{ ts TimeSource }

// NewRetry wraps svc with the default policy.
func NewRetry(svc Service) *Retry {
	return &Retry{inner: svc}
}

// Retried reports the total retry attempts performed.
func (r *Retry) Retried() int { return int(r.retried.Load()) }

// Resilience implements ResilienceReporter.
func (r *Retry) Resilience() ResilienceStats {
	return ResilienceStats{Retries: r.retried.Load(), GiveUps: r.giveups.Load()}
}

// Unwrap implements Wrapper.
func (r *Retry) Unwrap() Service { return r.inner }

// SetTimeSource implements TimeSourceSetter: backoff sleeps are charged
// to ts unless an explicit Sleep hook is set.
func (r *Retry) SetTimeSource(ts TimeSource) { r.clock.Store(&tsBox{ts: ts}) }

// Interface implements Service.
func (r *Retry) Interface() *mart.Interface { return r.inner.Interface() }

// Stats implements Service.
func (r *Retry) Stats() Stats { return r.inner.Stats() }

// policy resolves the effective retry policy.
func (r *Retry) policy() (max int, base, cap time.Duration, mult float64, sleep func(time.Duration)) {
	max = r.MaxRetries
	if max <= 0 {
		max = 3
	}
	base = r.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	cap = r.MaxBackoff
	if cap <= 0 {
		cap = 2 * time.Second
	}
	mult = r.Multiplier
	if mult < 1 {
		mult = 2
	}
	sleep = r.Sleep
	if sleep == nil {
		if box := r.clock.Load(); box != nil && box.ts != nil {
			sleep = box.ts.Sleep
		} else {
			sleep = func(time.Duration) {}
		}
	}
	return max, base, cap, mult, sleep
}

// backoff computes the delay before retry attempt tries (0-based),
// applying the seeded jitter draw.
func (r *Retry) backoff(base, cap time.Duration, mult float64, tries int) time.Duration {
	d := float64(base)
	for i := 0; i < tries; i++ {
		d *= mult
		if d >= float64(cap) {
			d = float64(cap)
			break
		}
	}
	if r.Jitter > 0 {
		r.jmu.Lock()
		if r.rng == nil {
			r.rng = rand.New(rand.NewSource(r.Seed))
		}
		d -= r.Jitter * r.rng.Float64() * d
		r.jmu.Unlock()
	}
	return time.Duration(d)
}

// Invoke implements Service with retries.
func (r *Retry) Invoke(ctx context.Context, in Input) (Invocation, error) {
	var inv Invocation
	err := r.attempt(ctx, func() error {
		var e error
		inv, e = r.inner.Invoke(ctx, in)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryInvocation{retry: r, inner: inv}, nil
}

// attempt runs op with the retry policy.
func (r *Retry) attempt(ctx context.Context, op func() error) error {
	max, base, cap, mult, sleep := r.policy()
	var err error
	for tries := 0; ; tries++ {
		err = op()
		if err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
		if tries >= max {
			r.giveups.Add(1)
			obs.ScopeFrom(ctx).Event("retry-giveup", obs.KI("attempts", int64(max)))
			return fmt.Errorf("service %s: giving up after %d retries: %w",
				r.inner.Interface().Name, max, err)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		// A spent execution budget is never slept against: surface it
		// instead of burning more simulated or real time on backoff.
		if budgetErr := CheckBudget(ctx); budgetErr != nil {
			return budgetErr
		}
		r.retried.Add(1)
		d := r.backoff(base, cap, mult, tries)
		obs.ScopeFrom(ctx).Event("retry", obs.KI("attempt", int64(tries+1)), obs.KD("backoff", d))
		sleep(d)
	}
}

type retryInvocation struct {
	retry *Retry
	inner Invocation
}

// Fetch implements Invocation with retries.
func (ri *retryInvocation) Fetch(ctx context.Context) (Chunk, error) {
	var chunk Chunk
	err := ri.retry.attempt(ctx, func() error {
		var e error
		chunk, e = ri.inner.Fetch(ctx)
		return e
	})
	return chunk, err
}
