package service

import (
	"time"

	"seco/internal/obs"
	"seco/internal/types"
)

// Invoker is the single service-call choke point beneath the execution
// engine's operators. It owns, exactly once per engine, the concerns the
// two executors used to wire separately per run:
//
//   - the middleware composition order: per-run Counter (budget probe,
//     latency charge, logical call counting) over the optional Share
//     layer (cross-query singleflight + memo) over the user-supplied
//     chain (Retry/Breaker/chaos injectors) over the base service;
//   - per-run counter isolation: every execution gets a fresh RunScope
//     with its own Counters, so N concurrent queries through one engine
//     never mix their Run stats;
//   - cross-query call sharing: with Share enabled, aliases bound to the
//     same underlying service funnel through one Share layer, so
//     overlapping queries deduplicate in-flight wire calls and replay
//     memoized chunks.
type Invoker struct {
	delay  func(time.Duration)
	lanes  map[string]Service // per alias: [Share →] user chain → base
	shares []*Share
	inst   map[string]*instruments // per alias; nil when unmetered
}

// InvokerOptions configures an Invoker.
type InvokerOptions struct {
	// Delay, when non-nil, is invoked with the service latency on every
	// counted fetch (real sleep or virtual-clock advance).
	Delay func(time.Duration)
	// Share enables the cross-query call-sharing layer. Aliases bound to
	// the same underlying Service value share one layer, reproducing the
	// one-cache-per-interface behavior of the former per-run Cache
	// wrapping — but engine-wide and safe across concurrent runs.
	Share bool
	// Metrics, when non-nil, receives per-alias call counters and
	// latency/chunk-depth histograms (fed by each run's Counters) and
	// per-service share-layer counters. Nil keeps the hot path
	// unmetered.
	Metrics *obs.Registry
	// Interner, when non-nil, canonicalizes the string values of every
	// memoized chunk at wire-fetch time, so replayed chunks carry interned
	// tuples whose equality checks are handle comparisons. The engine
	// passes its per-engine interner here; nil leaves chunks as fetched.
	Interner *types.Interner
	// Hedge, when non-nil, mounts a hedging layer on every lane, above
	// Share: hedgeable primary failures get one immediate second attempt,
	// and slow successes are counted against the latency-percentile
	// trigger fed by the lane's latency histogram. Mounting above Share
	// keeps hedges exempt from duplicate upstream load — a hedged pair
	// coalesces on Share's singleflight/memo.
	Hedge *HedgePolicy
}

// NewInvoker builds the choke point over the bound services. The map
// values are the complete user middleware chains (resilience wrappers
// already applied); the Invoker adds its own layers above them.
func NewInvoker(services map[string]Service, opts InvokerOptions) *Invoker {
	inv := &Invoker{delay: opts.Delay, lanes: map[string]Service{}, shares: nil}
	if opts.Metrics != nil {
		inv.inst = map[string]*instruments{}
		for alias := range services {
			inv.inst[alias] = newInstruments(opts.Metrics, alias)
		}
	}
	sharesBySvc := map[Service]*Share{}
	for alias, svc := range services {
		lane := svc
		if opts.Share {
			sh, ok := sharesBySvc[svc]
			if !ok {
				sh = NewShare(svc)
				sh.intern = opts.Interner
				sh.bindMetrics(opts.Metrics)
				sharesBySvc[svc] = sh
				inv.shares = append(inv.shares, sh)
			}
			lane = sh
		}
		if opts.Hedge != nil {
			h := NewHedge(lane, *opts.Hedge)
			if inst := inv.inst[alias]; inst != nil {
				h.SetLatencySource(inst.latencyMS)
			}
			h.bindMetrics(opts.Metrics, alias)
			lane = h
		}
		inv.lanes[alias] = lane
	}
	return inv
}

// Aliases lists the bound aliases.
func (inv *Invoker) Aliases() []string {
	out := make([]string, 0, len(inv.lanes))
	for alias := range inv.lanes {
		out = append(out, alias)
	}
	return out
}

// Lane returns the alias's service chain as seen by a run's Counter
// (including the Share layer when sharing is on). It is the anchor for
// chain-walking helpers like InstallTimeSource and CollectResilience.
func (inv *Invoker) Lane(alias string) (Service, bool) {
	lane, ok := inv.lanes[alias]
	return lane, ok
}

// Sharing reports whether the cross-query call-sharing layer is active.
func (inv *Invoker) Sharing() bool { return len(inv.shares) > 0 }

// ShareStats sums the counters of all share layers. Zero-valued when
// sharing is off.
func (inv *Invoker) ShareStats() ShareStats {
	var sum ShareStats
	for _, sh := range inv.shares {
		sum.Add(sh.Counters())
	}
	return sum
}

// NewRun opens an isolated counting scope for one execution: a fresh
// Counter per alias over the shared lanes. Concurrent runs each hold
// their own scope and may proceed simultaneously.
func (inv *Invoker) NewRun() *RunScope {
	scope := &RunScope{counters: map[string]*Counter{}}
	for alias, lane := range inv.lanes {
		c := NewCounter(lane, inv.delay)
		c.inst = inv.inst[alias]
		scope.counters[alias] = c
	}
	return scope
}

// instruments bundles one alias's metrics handles. All methods are
// nil-safe so the Counter's hot path needs no registry branching.
type instruments struct {
	invocations *obs.Counter
	fetches     *obs.Counter
	tuples      *obs.Counter
	latencyMS   *obs.Histogram
	chunkDepth  *obs.Histogram
}

func newInstruments(reg *obs.Registry, alias string) *instruments {
	return &instruments{
		invocations: reg.Counter("seco.invoker.invocations." + alias),
		fetches:     reg.Counter("seco.invoker.fetches." + alias),
		tuples:      reg.Counter("seco.invoker.tuples." + alias),
		latencyMS:   reg.Histogram("seco.invoker.latency_ms."+alias, obs.LatencyBucketsMS),
		chunkDepth:  reg.Histogram("seco.invoker.chunk_depth."+alias, obs.DepthBuckets),
	}
}

func (i *instruments) invoke() {
	if i == nil {
		return
	}
	i.invocations.Add(1)
}

func (i *instruments) fetch(latency time.Duration, depth int64, tuples int) {
	if i == nil {
		return
	}
	i.fetches.Add(1)
	i.tuples.Add(int64(tuples))
	i.latencyMS.Observe(float64(latency) / float64(time.Millisecond))
	i.chunkDepth.Observe(float64(depth))
}

// RunScope is one execution's private view of the Invoker: per-alias
// Counters (budget probe, latency charge, logical call counts) over the
// engine-wide lanes.
type RunScope struct {
	counters map[string]*Counter
}

// Counter returns the run's counting wrapper for an alias, or nil when
// the alias is not bound.
func (r *RunScope) Counter(alias string) *Counter { return r.counters[alias] }

// Counters exposes the full per-alias counter map (read-only by
// convention) for run-report assembly.
func (r *RunScope) Counters() map[string]*Counter { return r.counters }
