package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"seco/internal/types"
)

// drainShared fetches every chunk of one binding through svc, returning
// the number of successful fetches and tuples seen.
func drainShared(t *testing.T, svc Service, in Input) (fetches, tuples int) {
	t.Helper()
	inv, err := svc.Invoke(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, err := inv.Fetch(context.Background())
		if errors.Is(err, ErrExhausted) {
			return fetches, tuples
		}
		if err != nil {
			t.Fatal(err)
		}
		fetches++
		tuples += len(c.Tuples)
	}
}

func TestShareMemoizesAcrossCallers(t *testing.T) {
	tab := newMovieTable(t, 1)
	wire := NewCounter(tab, nil)
	sh := NewShare(wire)

	f1, n1 := drainShared(t, sh, movieInput())
	wireAfterFirst := wire.Fetches()
	f2, n2 := drainShared(t, sh, movieInput())
	if f1 != f2 || n1 != n2 || n1 == 0 {
		t.Fatalf("replay differs: %d/%d vs %d/%d tuples", f1, n1, f2, n2)
	}
	if wire.Fetches() != wireAfterFirst {
		t.Errorf("second drain hit the wire: %d → %d", wireAfterFirst, wire.Fetches())
	}
	st := sh.Counters()
	if st.WireFetches != wireAfterFirst || st.MemoHits != int64(f2) || st.DedupHits != 0 {
		t.Errorf("counters: %+v (wire after first drain %d)", st, wireAfterFirst)
	}
	if got := int64(f1 + f2); got != st.WireFetches+st.MemoHits+st.DedupHits {
		t.Errorf("coherence: %d logical fetches vs wire %d + memo %d + dedup %d",
			got, st.WireFetches, st.MemoHits, st.DedupHits)
	}
}

func TestShareDistinguishesBindings(t *testing.T) {
	tab := newMovieTable(t, 0)
	wire := NewCounter(tab, nil)
	sh := NewShare(wire)
	other := movieInput()
	other["Genres.Genre"] = types.String("Drama")
	drainShared(t, sh, movieInput())
	drainShared(t, sh, other)
	if wire.Invocations() != 2 {
		t.Errorf("distinct bindings shared an entry: %d wire invocations", wire.Invocations())
	}
}

func TestShareUnchunkedService(t *testing.T) {
	tab := newMovieTable(t, 0) // unchunked: one response carries all
	sh := NewShare(tab)
	for round := 0; round < 2; round++ {
		f, n := drainShared(t, sh, movieInput())
		if f != 1 || n != 2 {
			t.Fatalf("round %d: %d fetches, %d tuples", round, f, n)
		}
	}
	if st := sh.Counters(); st.WireFetches != 1 || st.MemoHits != 1 {
		t.Errorf("counters: %+v", st)
	}
}

func TestShareConcurrentCoherence(t *testing.T) {
	tab := newMovieTable(t, 1)
	wire := NewCounter(tab, nil)
	sh := NewShare(wire)

	const runs = 8
	logical := make([]int, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine models one run: its own Counter above the
			// shared layer, as the Invoker composes them.
			c := NewCounter(sh, nil)
			f, _ := drainShared(t, c, movieInput())
			logical[i] = f
		}(i)
	}
	wg.Wait()

	var total int64
	for i, f := range logical {
		if f != logical[0] {
			t.Errorf("run %d saw %d chunks, run 0 saw %d", i, f, logical[0])
		}
		total += int64(f)
	}
	st := sh.Counters()
	if wire.Fetches() != st.WireFetches {
		t.Errorf("wire saw %d fetches, share counted %d", wire.Fetches(), st.WireFetches)
	}
	if total != st.WireFetches+st.MemoHits+st.DedupHits {
		t.Errorf("coherence: %d logical fetches vs wire %d + memo %d + dedup %d",
			total, st.WireFetches, st.MemoHits, st.DedupHits)
	}
	// The ranked list has 2 matching chunks: everything beyond one wire
	// drain must have been absorbed by the sharing layer.
	if st.WireFetches != 2 {
		t.Errorf("wire fetches = %d, want 2", st.WireFetches)
	}
	if st.Saved() != total-st.WireFetches {
		t.Errorf("Saved() = %d, want %d", st.Saved(), total-st.WireFetches)
	}
}

// failingService errors the first Invoke, then recovers — for asserting
// that Share never caches failures and waiters retry as leaders.
type failingService struct {
	Service
	mu       sync.Mutex
	failures int
}

func (f *failingService) Invoke(ctx context.Context, in Input) (Invocation, error) {
	f.mu.Lock()
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("transient outage")
	}
	return f.Service.Invoke(ctx, in)
}

func TestShareDoesNotCacheErrors(t *testing.T) {
	flaky := &failingService{Service: newMovieTable(t, 1), failures: 1}
	sh := NewShare(flaky)
	inv, err := sh.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Fetch(context.Background()); err == nil {
		t.Fatal("first fetch should surface the outage")
	}
	if st := sh.Counters(); st.WireFetches != 0 {
		t.Fatalf("failed fetch counted: %+v", st)
	}
	// The failure was not cached: the next caller leads its own attempt
	// and succeeds.
	if f, n := drainShared(t, sh, movieInput()); f != 2 || n == 0 {
		t.Errorf("recovery drain: %d fetches, %d tuples", f, n)
	}
}

func TestInvokerRunScopeIsolation(t *testing.T) {
	tab := newMovieTable(t, 1)
	inv := NewInvoker(map[string]Service{"M": tab, "N": tab}, InvokerOptions{})
	if inv.Sharing() {
		t.Fatal("sharing on without opt-in")
	}
	a, b := inv.NewRun(), inv.NewRun()
	drainShared(t, a.Counter("M"), movieInput())
	if a.Counter("M").Fetches() == 0 {
		t.Error("run A counted nothing")
	}
	if b.Counter("M").Fetches() != 0 || a.Counter("N").Fetches() != 0 {
		t.Error("counters leaked across runs or aliases")
	}
	if a.Counter("Z") != nil {
		t.Error("unbound alias returned a counter")
	}
	if len(inv.Aliases()) != 2 {
		t.Errorf("aliases: %v", inv.Aliases())
	}
}

func TestInvokerSharesPerServiceValue(t *testing.T) {
	tab := newMovieTable(t, 1)
	other := newMovieTable(t, 1)
	inv := NewInvoker(map[string]Service{"M": tab, "N": tab, "O": other},
		InvokerOptions{Share: true})
	if !inv.Sharing() {
		t.Fatal("sharing off")
	}
	scope := inv.NewRun()
	fM, _ := drainShared(t, scope.Counter("M"), movieInput())
	fN, _ := drainShared(t, scope.Counter("N"), movieInput())
	fO, _ := drainShared(t, scope.Counter("O"), movieInput())
	st := inv.ShareStats()
	// M and N share one layer over the same service value; O has its own.
	if st.WireFetches != int64(fM+fO) {
		t.Errorf("wire fetches = %d, want %d", st.WireFetches, fM+fO)
	}
	if st.MemoHits != int64(fN) {
		t.Errorf("memo hits = %d, want %d (alias N replays alias M's fetches)", st.MemoHits, fN)
	}
	laneM, _ := inv.Lane("M")
	laneN, _ := inv.Lane("N")
	laneO, _ := inv.Lane("O")
	if laneM != laneN || laneM == laneO {
		t.Error("share layers not grouped by service value")
	}
}
