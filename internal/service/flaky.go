package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"seco/internal/mart"
)

// ErrTransient marks a retryable failure of a remote service (timeouts,
// overload). Wrappers test for it with errors.Is.
var ErrTransient = errors.New("service: transient failure")

// Flaky wraps a service and injects deterministic transient failures: one
// failure every FailEvery calls (counting Invoke and Fetch together). It
// is the simplest fault model; internal/chaos composes richer seeded
// schedules (bursts, permanent failures, per-binding faults, latency
// spikes) on top of the same Service surface. Counters are atomic: the
// engine's parallel joins invoke a wrapped service from many goroutines.
type Flaky struct {
	inner Service
	// FailEvery injects one failure on every n-th call; 0 disables
	// injection.
	FailEvery int
	calls     atomic.Int64
	injected  atomic.Int64
}

// NewFlaky wraps svc.
func NewFlaky(svc Service, failEvery int) *Flaky {
	return &Flaky{inner: svc, FailEvery: failEvery}
}

// Injected reports how many failures have been injected so far.
func (f *Flaky) Injected() int { return int(f.injected.Load()) }

// Resilience implements ResilienceReporter.
func (f *Flaky) Resilience() ResilienceStats {
	return ResilienceStats{Injected: f.injected.Load()}
}

// Unwrap implements Wrapper.
func (f *Flaky) Unwrap() Service { return f.inner }

// Interface implements Service.
func (f *Flaky) Interface() *mart.Interface { return f.inner.Interface() }

// Stats implements Service.
func (f *Flaky) Stats() Stats { return f.inner.Stats() }

// Invoke implements Service, possibly failing transiently.
func (f *Flaky) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := f.maybeFail("invoke"); err != nil {
		return nil, err
	}
	inv, err := f.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &flakyInvocation{flaky: f, inner: inv}, nil
}

func (f *Flaky) maybeFail(op string) error {
	calls := f.calls.Add(1)
	if f.FailEvery > 0 && calls%int64(f.FailEvery) == 0 {
		n := f.injected.Add(1)
		return fmt.Errorf("service %s: injected %s failure #%d: %w",
			f.inner.Interface().Name, op, n, ErrTransient)
	}
	return nil
}

type flakyInvocation struct {
	flaky *Flaky
	inner Invocation
}

// Fetch implements Invocation, possibly failing transiently.
func (fi *flakyInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := fi.flaky.maybeFail("fetch"); err != nil {
		return Chunk{}, err
	}
	return fi.inner.Fetch(ctx)
}
