package service

import (
	"context"
	"errors"
	"time"
)

// This file is the shared substrate of the resilience middleware (Retry,
// Breaker, Flaky and the chaos injectors): the failure taxonomy, the
// injected time source that keeps all backoff and cooldown timing on the
// engine's Clock, the Unwrap convention for walking middleware chains,
// and the execution-budget context hook the engine threads through every
// Invoke/Fetch.

// ErrPermanent marks a non-retryable failure of a remote service: the
// service is gone for the remainder of the run (crashed, revoked,
// decommissioned). Retry passes it through untouched; the engine's
// Degrade mode turns it into a partial result instead of a failed run.
var ErrPermanent = errors.New("service: permanent failure")

// ErrOpen is returned by a tripped Breaker while its cooldown has not
// elapsed. It is deliberately neither transient nor permanent: Retry does
// not hammer an open circuit, and the engine treats it as a service
// failure for degradation purposes.
var ErrOpen = errors.New("service: circuit open")

// TimeSource provides the two clock primitives the resilience middleware
// needs: Now anchors cooldown windows and Sleep charges backoff delays.
// The engine's Clock (internal/engine) satisfies it, so virtual-clock
// runs charge retry backoff and breaker cooldowns into simulated time
// deterministically. The zero state (no time source installed) is
// timeless: Retry skips its backoff sleeps and Breaker stays open until
// reset, so no middleware ever falls back to the wall clock on its own.
type TimeSource interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Wrapper is implemented by middleware services that decorate another
// Service. Unwrap returns the decorated service, exposing the chain for
// InstallTimeSource and CollectResilience.
type Wrapper interface {
	Unwrap() Service
}

// TimeSourceSetter is implemented by middleware whose behavior depends on
// time (Retry backoff, Breaker cooldown, chaos latency spikes).
type TimeSourceSetter interface {
	SetTimeSource(ts TimeSource)
}

// InstallTimeSource walks the middleware chain of svc (via Wrapper) and
// installs ts into every layer that accepts one. The engine calls it for
// each bound service at construction, so all resilience timing flows
// through the engine Clock without the middleware importing the engine.
func InstallTimeSource(svc Service, ts TimeSource) {
	for s := svc; s != nil; {
		if setter, ok := s.(TimeSourceSetter); ok {
			setter.SetTimeSource(ts)
		}
		w, ok := s.(Wrapper)
		if !ok {
			break
		}
		s = w.Unwrap()
	}
}

// ResilienceStats aggregates the counters of a service's resilience
// middleware chain for the run report.
type ResilienceStats struct {
	// Retries counts backoff-and-retry attempts performed by Retry.
	Retries int64
	// GiveUps counts operations Retry abandoned after exhausting the
	// retry budget.
	GiveUps int64
	// Injected counts transient faults injected by Flaky or a chaos
	// injector.
	Injected int64
	// Permanent counts permanent faults injected by a chaos injector.
	Permanent int64
	// Tripped counts closed→open transitions of the circuit breaker.
	Tripped int64
	// Rejected counts calls the breaker refused while open.
	Rejected int64
	// Spikes counts injected latency spikes.
	Spikes int64
	// Hedges counts second attempts issued by the Hedge layer after a
	// hedgeable primary failure.
	Hedges int64
	// HedgeWins counts hedged attempts that recovered the call.
	HedgeWins int64
}

// Zero reports whether no resilience event was recorded.
func (s ResilienceStats) Zero() bool { return s == ResilienceStats{} }

// Add accumulates o into s.
func (s *ResilienceStats) Add(o ResilienceStats) {
	s.Retries += o.Retries
	s.GiveUps += o.GiveUps
	s.Injected += o.Injected
	s.Permanent += o.Permanent
	s.Tripped += o.Tripped
	s.Rejected += o.Rejected
	s.Spikes += o.Spikes
	s.Hedges += o.Hedges
	s.HedgeWins += o.HedgeWins
}

// ResilienceReporter is implemented by middleware that contributes to the
// run report's resilience counters.
type ResilienceReporter interface {
	Resilience() ResilienceStats
}

// CollectResilience walks the middleware chain of svc and sums the
// resilience counters of every reporting layer.
func CollectResilience(svc Service) ResilienceStats {
	var sum ResilienceStats
	for s := svc; s != nil; {
		if rep, ok := s.(ResilienceReporter); ok {
			sum.Add(rep.Resilience())
		}
		w, ok := s.(Wrapper)
		if !ok {
			break
		}
		s = w.Unwrap()
	}
	return sum
}

// budgetKey carries the execution-budget check in a context.
type budgetKey struct{}

// WithBudget attaches a budget check to the context. check returns nil
// while the budget holds and the budget-exhaustion error once it is
// spent; the engine installs a closure over its Clock so the check works
// identically under wall and virtual time.
func WithBudget(ctx context.Context, check func() error) context.Context {
	return context.WithValue(ctx, budgetKey{}, check)
}

// CheckBudget returns the budget-exhaustion error when the context
// carries a spent execution budget, nil otherwise. Counter consults it
// before every Invoke and Fetch, which propagates the engine's deadline
// through every service call of a run; Retry consults it before each
// backoff so a spent budget is never slept against.
func CheckBudget(ctx context.Context) error {
	if check, ok := ctx.Value(budgetKey{}).(func() error); ok {
		return check()
	}
	return nil
}

// remainingKey carries the remaining-time probe in a context.
type remainingKey struct{}

// WithRemaining attaches a remaining-time probe to the context. remaining
// reports how much of the execution budget is left; the engine installs a
// closure over its wall-clock deadline so the Counter can derive a
// per-call timeout for every Invoke and Fetch (deadline propagation all
// the way into the service layer). Virtual-clock runs do not install it —
// their budget enforcement is the deterministic CheckBudget probe, and a
// wall timeout over simulated time would be meaningless.
func WithRemaining(ctx context.Context, remaining func() time.Duration) context.Context {
	return context.WithValue(ctx, remainingKey{}, remaining)
}

// RemainingBudget reports the remaining execution time carried by the
// context, or ok=false when no probe is installed.
func RemainingBudget(ctx context.Context) (time.Duration, bool) {
	if remaining, ok := ctx.Value(remainingKey{}).(func() time.Duration); ok {
		return remaining(), true
	}
	return 0, false
}
