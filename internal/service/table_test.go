package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"seco/internal/mart"
	"seco/internal/types"
)

// movieInterface builds a small search interface for table tests:
// Movie(Title^O, Score^R, Genres.Genre^I, Openings.Country^I,
// Openings.Date^I).
func movieInterface(t *testing.T) *mart.Interface {
	t.Helper()
	m := &mart.Mart{Name: "Movie", Attributes: []mart.Attribute{
		{Name: "Title", Kind: types.KindString},
		{Name: "Score", Kind: types.KindFloat},
		{Name: "Genres", Sub: []mart.Attribute{{Name: "Genre", Kind: types.KindString}}},
		{Name: "Openings", Sub: []mart.Attribute{
			{Name: "Country", Kind: types.KindString},
			{Name: "Date", Kind: types.KindDate},
		}},
	}}
	si, err := mart.NewInterface("Movie1", m, map[string]mart.Adornment{
		"Score":            mart.Ranked,
		"Genres.Genre":     mart.Input,
		"Openings.Country": mart.Input,
		"Openings.Date":    mart.Input,
	})
	if err != nil {
		t.Fatal(err)
	}
	return si
}

func movieTuple(title string, score float64, genre, country string, date time.Time) *types.Tuple {
	tu := types.NewTuple(score)
	tu.Set("Title", types.String(title)).Set("Score", types.Float(score))
	tu.AddGroup("Genres", types.SubTuple{"Genre": types.String(genre)})
	tu.AddGroup("Openings", types.SubTuple{
		"Country": types.String(country),
		"Date":    types.Date(date),
	})
	return tu
}

func newMovieTable(t *testing.T, chunkSize int) *Table {
	t.Helper()
	tab, err := NewTable(movieInterface(t), Stats{
		AvgCardinality: 3, ChunkSize: chunkSize, Scoring: Linear(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetMatchOp("Openings.Date", types.OpGe)
	day := time.Date(2009, 7, 1, 0, 0, 0, 0, time.UTC)
	tab.Add(
		movieTuple("A", 0.9, "Comedy", "Italy", day),
		movieTuple("B", 0.8, "Comedy", "Italy", day.AddDate(0, 0, 5)),
		movieTuple("C", 0.7, "Drama", "Italy", day),
		movieTuple("D", 0.95, "Comedy", "France", day),
		movieTuple("E", 0.6, "Comedy", "Italy", day.AddDate(0, -1, 0)),
	)
	return tab
}

func movieInput() Input {
	return Input{
		"Genres.Genre":     types.String("Comedy"),
		"Openings.Country": types.String("Italy"),
		"Openings.Date":    types.Date(time.Date(2009, 7, 1, 0, 0, 0, 0, time.UTC)),
	}
}

func drain(t *testing.T, inv Invocation) []*types.Tuple {
	t.Helper()
	var all []*types.Tuple
	for {
		c, err := inv.Fetch(context.Background())
		if errors.Is(err, ErrExhausted) {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, c.Tuples...)
		if len(c.Tuples) == 0 {
			return all
		}
	}
}

func TestTableFiltersAndRanks(t *testing.T) {
	tab := newMovieTable(t, 0)
	inv, err := tab.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, inv)
	// Matching: A (0.9) and B (0.8). C is Drama, D is France, E opened
	// before the date bound. Order: descending score.
	if len(got) != 2 {
		t.Fatalf("got %d tuples, want 2: %v", len(got), got)
	}
	if got[0].Get("Title").Str() != "A" || got[1].Get("Title").Str() != "B" {
		t.Errorf("order: %v, %v", got[0].Get("Title"), got[1].Get("Title"))
	}
}

func TestTableGroupSemanticsSingleSubTuple(t *testing.T) {
	// A movie whose Country and Date bindings are satisfied only by
	// different sub-tuples must NOT match (Section 3.1 semantics).
	tab, err := NewTable(movieInterface(t), Stats{Scoring: Constant(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetMatchOp("Openings.Date", types.OpGe)
	day := time.Date(2009, 7, 1, 0, 0, 0, 0, time.UTC)
	split := movieTuple("Split", 0.5, "Comedy", "Italy", day.AddDate(0, -2, 0))
	split.AddGroup("Openings", types.SubTuple{
		"Country": types.String("France"),
		"Date":    types.Date(day.AddDate(0, 1, 0)),
	})
	tab.Add(split)
	inv, err := tab.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, inv); len(got) != 0 {
		t.Errorf("split tuple matched: %v", got)
	}
}

func TestTableChunking(t *testing.T) {
	tab := newMovieTable(t, 1)
	inv, err := tab.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	c0, err := inv.Fetch(context.Background())
	if err != nil || c0.Index != 0 || len(c0.Tuples) != 1 {
		t.Fatalf("chunk0 = %+v, %v", c0, err)
	}
	c1, err := inv.Fetch(context.Background())
	if err != nil || c1.Index != 1 || len(c1.Tuples) != 1 {
		t.Fatalf("chunk1 = %+v, %v", c1, err)
	}
	if _, err := inv.Fetch(context.Background()); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third fetch err = %v, want ErrExhausted", err)
	}
}

func TestTableMissingInputRejected(t *testing.T) {
	tab := newMovieTable(t, 0)
	in := movieInput()
	delete(in, "Genres.Genre")
	if _, err := tab.Invoke(context.Background(), in); err == nil {
		t.Error("Invoke without a bound input succeeded")
	}
	in["Genres.Genre"] = types.Null
	if _, err := tab.Invoke(context.Background(), in); err == nil {
		t.Error("Invoke with null input succeeded")
	}
}

func TestTableEmptyResultUnchunked(t *testing.T) {
	tab := newMovieTable(t, 0)
	in := movieInput()
	in["Genres.Genre"] = types.String("Western")
	inv, err := tab.Invoke(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	c, err := inv.Fetch(context.Background())
	if err != nil || len(c.Tuples) != 0 {
		t.Fatalf("first fetch = %+v, %v; want empty chunk", c, err)
	}
	if _, err := inv.Fetch(context.Background()); !errors.Is(err, ErrExhausted) {
		t.Fatalf("second fetch err = %v", err)
	}
}

func TestTableEmptyResultChunked(t *testing.T) {
	tab := newMovieTable(t, 2)
	in := movieInput()
	in["Genres.Genre"] = types.String("Western")
	inv, err := tab.Invoke(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Fetch(context.Background()); !errors.Is(err, ErrExhausted) {
		t.Fatalf("fetch err = %v, want ErrExhausted", err)
	}
}

func TestTableContextCancelled(t *testing.T) {
	tab := newMovieTable(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tab.Invoke(ctx, movieInput()); err == nil {
		t.Error("Invoke on cancelled context succeeded")
	}
	inv, err := tab.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Fetch(ctx); err == nil {
		t.Error("Fetch on cancelled context succeeded")
	}
}

func TestTableInputClone(t *testing.T) {
	in := movieInput()
	c := in.Clone()
	c["Genres.Genre"] = types.String("Horror")
	if in["Genres.Genre"].Str() != "Comedy" {
		t.Error("Clone shares map")
	}
}

func TestNewTableRejectsBadStats(t *testing.T) {
	if _, err := NewTable(movieInterface(t), Stats{AvgCardinality: -1}); err == nil {
		t.Error("negative cardinality accepted")
	}
	if _, err := NewTable(movieInterface(t), Stats{ChunkSize: -2}); err == nil {
		t.Error("negative chunk size accepted")
	}
}

func TestStatsClassification(t *testing.T) {
	if !(Stats{AvgCardinality: 0.5}).Selective() {
		t.Error("0.5 not selective")
	}
	if (Stats{AvgCardinality: 2}).Selective() {
		t.Error("2 selective")
	}
	if !(Stats{ChunkSize: 10}).Chunked() {
		t.Error("chunked not detected")
	}
	if (Stats{}).Chunked() {
		t.Error("unchunked detected as chunked")
	}
}

func TestCounterCountsAndDelays(t *testing.T) {
	tab := newMovieTable(t, 1)
	var waited time.Duration
	// Give the service a published latency so the delay hook observes it.
	tab.stats.Latency = 7 * time.Millisecond
	c := NewCounter(tab, func(d time.Duration) { waited += d })
	inv, err := c.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := inv.Fetch(context.Background()); err != nil {
			break
		}
	}
	if got := c.Invocations(); got != 1 {
		t.Errorf("Invocations = %d", got)
	}
	if got := c.Fetches(); got != 2 {
		t.Errorf("Fetches = %d, want 2", got)
	}
	if got := c.Tuples(); got != 2 {
		t.Errorf("Tuples = %d, want 2", got)
	}
	if waited != 14*time.Millisecond {
		t.Errorf("delay hook saw %v, want 14ms", waited)
	}
	if c.Interface() != tab.Interface() || c.Stats().ChunkSize != 1 {
		t.Error("Counter does not forward Interface/Stats")
	}
	c.Reset()
	if c.Invocations() != 0 || c.Fetches() != 0 || c.Tuples() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestCounterInvokeErrorNotCounted(t *testing.T) {
	tab := newMovieTable(t, 1)
	c := NewCounter(tab, nil)
	if _, err := c.Invoke(context.Background(), Input{}); err == nil {
		t.Fatal("want error")
	}
	if c.Invocations() != 0 {
		t.Error("failed invoke counted")
	}
}

func TestFuncInvocation(t *testing.T) {
	calls := 0
	inv := FuncInvocation(func(ctx context.Context) (Chunk, error) {
		calls++
		return Chunk{Index: calls - 1}, nil
	})
	c, err := inv.Fetch(context.Background())
	if err != nil || c.Index != 0 || calls != 1 {
		t.Errorf("FuncInvocation: %+v %v %d", c, err, calls)
	}
}
