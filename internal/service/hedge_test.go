package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"seco/internal/mart"
)

// oddInvokeFails fails every odd-numbered Invoke transiently: each
// primary attempt fails and its hedge succeeds.
type oddInvokeFails struct {
	inner Service
	calls int
	mu    sync.Mutex
}

func (s *oddInvokeFails) Interface() *mart.Interface { return s.inner.Interface() }
func (s *oddInvokeFails) Stats() Stats               { return s.inner.Stats() }
func (s *oddInvokeFails) Unwrap() Service            { return s.inner }

func (s *oddInvokeFails) Invoke(ctx context.Context, in Input) (Invocation, error) {
	s.mu.Lock()
	s.calls++
	fail := s.calls%2 == 1
	s.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("primary outage: %w", ErrTransient)
	}
	return s.inner.Invoke(ctx, in)
}

func TestHedgeRecoversTransientInvoke(t *testing.T) {
	h := NewHedge(&oddInvokeFails{inner: newMovieTable(t, 0)}, HedgePolicy{})
	if _, err := h.Invoke(context.Background(), movieInput()); err != nil {
		t.Fatalf("hedged invoke failed: %v", err)
	}
	if h.Hedged() != 1 || h.Wins() != 1 {
		t.Fatalf("attempts %d wins %d, want 1/1", h.Hedged(), h.Wins())
	}
	rs := h.Resilience()
	if rs.Hedges != 1 || rs.HedgeWins != 1 {
		t.Fatalf("resilience stats %+v", rs)
	}
}

func TestHedgeSkipsUnhedgeableErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"permanent", ErrPermanent},
		{"open circuit", ErrOpen},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHedge(&errService{inner: newMovieTable(t, 0), err: tc.err}, HedgePolicy{})
			if _, err := h.Invoke(context.Background(), movieInput()); !errors.Is(err, tc.err) {
				t.Fatalf("err = %v, want %v", err, tc.err)
			}
			if h.Hedged() != 0 {
				t.Fatalf("unhedgeable error was hedged %d times", h.Hedged())
			}
		})
	}
}

// errService fails every Invoke with a fixed error.
type errService struct {
	inner Service
	err   error
}

func (s *errService) Interface() *mart.Interface { return s.inner.Interface() }
func (s *errService) Stats() Stats               { return s.inner.Stats() }

func (s *errService) Invoke(context.Context, Input) (Invocation, error) {
	return nil, fmt.Errorf("down: %w", s.err)
}

// failFirstPerChunk fails the first fetch attempt of each of the first n
// chunks transiently, honoring the layer convention that a failed fetch
// does not advance the stream cursor.
type failFirstPerChunk struct {
	inner Service
	n     int
}

func (s *failFirstPerChunk) Interface() *mart.Interface { return s.inner.Interface() }
func (s *failFirstPerChunk) Stats() Stats               { return s.inner.Stats() }
func (s *failFirstPerChunk) Unwrap() Service            { return s.inner }

func (s *failFirstPerChunk) Invoke(ctx context.Context, in Input) (Invocation, error) {
	inv, err := s.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &failFirstInvocation{inner: inv, remaining: s.n}, nil
}

type failFirstInvocation struct {
	inner     Invocation
	mu        sync.Mutex
	remaining int  // chunks still owed a failure
	failed    bool // current chunk's failure already injected
}

func (fi *failFirstInvocation) Fetch(ctx context.Context) (Chunk, error) {
	fi.mu.Lock()
	inject := fi.remaining > 0 && !fi.failed
	if inject {
		fi.failed = true
	}
	fi.mu.Unlock()
	if inject {
		return Chunk{}, fmt.Errorf("first attempt drop: %w", ErrTransient)
	}
	c, err := fi.inner.Fetch(ctx)
	if err == nil {
		fi.mu.Lock()
		if fi.failed {
			fi.remaining--
			fi.failed = false
		}
		fi.mu.Unlock()
	}
	return c, err
}

// TestHedgeShareOneUpstreamFetchPerChunk is the sharing-exemption
// guarantee: a hedged pair mounted above Share performs at most one
// successful upstream fetch per chunk — the hedge rides the dedup/memo
// layer instead of duplicating wire traffic.
func TestHedgeShareOneUpstreamFetchPerChunk(t *testing.T) {
	// Count the fault-free chunks first, so the fault schedule and the
	// assertions don't hard-code the fixture's shape.
	chunks, _ := drainShared(t, newMovieTable(t, 1), movieInput())
	if chunks < 2 {
		t.Fatalf("fixture has %d chunks; need at least 2", chunks)
	}

	wire := NewCounter(&failFirstPerChunk{inner: newMovieTable(t, 1), n: chunks}, nil)
	sh := NewShare(wire)
	h := NewHedge(sh, HedgePolicy{})

	got, tuples := drainShared(t, h, movieInput())
	if got != chunks || tuples == 0 {
		t.Fatalf("hedged drain returned %d chunks (%d tuples), want %d", got, tuples, chunks)
	}
	if h.Hedged() != chunks || h.Wins() != chunks {
		t.Fatalf("hedge attempts %d wins %d, want %d each (one per chunk)",
			h.Hedged(), h.Wins(), chunks)
	}
	if st := sh.Counters(); st.WireFetches != int64(chunks) {
		t.Fatalf("share saw %d wire fetches for %d chunks — hedging duplicated upstream traffic: %+v",
			st.WireFetches, chunks, st)
	}
	if wire.Fetches() != int64(chunks) {
		t.Fatalf("wire counted %d successful fetches, want %d", wire.Fetches(), chunks)
	}

	// Replays ride the memo: no new upstream traffic, no new hedges.
	drainShared(t, h, movieInput())
	if st := sh.Counters(); st.WireFetches != int64(chunks) || st.MemoHits != int64(chunks) {
		t.Fatalf("replay hit the wire: %+v", st)
	}
	if h.Hedged() != chunks {
		t.Fatalf("replay issued new hedges: %d", h.Hedged())
	}
}

// withLatency overrides the published latency of a fixture service.
type withLatency struct {
	Service
	lat time.Duration
}

func (s *withLatency) Stats() Stats {
	st := s.Service.Stats()
	st.Latency = s.lat
	return st
}

func (s *withLatency) Unwrap() Service { return s.Service }

// slowFetch charges extra latency to the shared clock below the hedge on
// every fetch — a simulated slow backend.
type slowFetch struct {
	inner Service
	clk   *fakeClock
	delay time.Duration
}

func (s *slowFetch) Interface() *mart.Interface { return s.inner.Interface() }
func (s *slowFetch) Stats() Stats               { return s.inner.Stats() }
func (s *slowFetch) Unwrap() Service            { return s.inner }

func (s *slowFetch) Invoke(ctx context.Context, in Input) (Invocation, error) {
	inv, err := s.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &slowInvocation{inner: inv, svc: s}, nil
}

type slowInvocation struct {
	inner Invocation
	svc   *slowFetch
}

func (si *slowInvocation) Fetch(ctx context.Context) (Chunk, error) {
	si.svc.clk.Sleep(si.svc.delay)
	return si.inner.Fetch(ctx)
}

func TestHedgeLateTriggerCountsSlowCalls(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	published := 40 * time.Millisecond
	tab := &withLatency{Service: newMovieTable(t, 1), lat: published}
	// The trigger falls back to published latency × multiplier while the
	// histogram is cold; a fetch that sleeps 2× the published latency on
	// the clock is measured at 3× (slept + charged) and must count late.
	h := NewHedge(&slowFetch{inner: tab, clk: clk, delay: 2 * published}, HedgePolicy{Multiplier: 1.5})
	h.SetTimeSource(clk)
	if _, n := drainShared(t, h, movieInput()); n == 0 {
		t.Fatal("no tuples")
	}
	if h.Late() == 0 {
		t.Fatal("no late fetches counted despite a 3x-trigger backend")
	}
	if h.Hedged() != 0 {
		t.Fatalf("late counting issued %d real hedges; under Share a raced hedge is a no-op and none must be sent",
			h.Hedged())
	}

	// Fast fetches stay under the trigger.
	h2 := NewHedge(newMovieTable(t, 1), HedgePolicy{Multiplier: 1.5})
	h2.SetTimeSource(&fakeClock{now: time.Unix(0, 0)})
	drainShared(t, h2, movieInput())
	if h2.Late() != 0 {
		t.Fatalf("fast backend counted %d late fetches", h2.Late())
	}
}

// TestBreakerHalfOpenHammerRace drives one Breaker from many goroutines
// across a trip/cooldown/recovery cycle. Under -race this exercises the
// half-open single-probe gate (the probing flag) against concurrent
// Invokes — the exact contention pattern of concurrent runs sharing one
// engine, whose lanes funnel into a single breaker instance.
func TestBreakerHalfOpenHammerRace(t *testing.T) {
	sw := &switchSvc{inner: newMovieTable(t, 0)}
	b := NewBreaker(sw)
	b.Threshold = 3
	b.Cooldown = 250 * time.Millisecond
	clk := &fakeClock{now: time.Unix(0, 0)}
	b.SetTimeSource(clk)
	ctx := context.Background()

	hammer := func(workers, calls int) {
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					if inv, err := b.Invoke(ctx, movieInput()); err == nil {
						inv.Fetch(ctx)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: a failing backend under concurrent load must trip the
	// circuit and keep rejecting without touching the service.
	sw.failing.Store(true)
	hammer(8, 25)
	if b.State() != "open" {
		t.Fatalf("after failing hammer: state %s, want open", b.State())
	}
	if b.Tripped() == 0 || b.Rejected() == 0 {
		t.Fatalf("hammer tripped %d, rejected %d — vacuous", b.Tripped(), b.Rejected())
	}

	// Phase 2: backend recovers; concurrent goroutines race for the
	// single half-open probe after each cooldown. Exactly one wins it and
	// its success must close the circuit for everyone.
	sw.failing.Store(false)
	for round := 0; round < 50 && b.State() != "closed"; round++ {
		clk.advance(b.Cooldown)
		hammer(8, 5)
	}
	if b.State() != "closed" {
		t.Fatalf("breaker never recovered through half-open: state %s", b.State())
	}

	// Phase 3: a recovered circuit under concurrent load stays closed and
	// admits everything.
	rejectedBefore := b.Rejected()
	hammer(8, 25)
	if b.State() != "closed" || b.Rejected() != rejectedBefore {
		t.Fatalf("closed circuit rejected calls: state %s, rejected %d -> %d",
			b.State(), rejectedBefore, b.Rejected())
	}
}
