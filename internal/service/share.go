package service

import (
	"context"
	"sync"
	"sync/atomic"

	"seco/internal/mart"
	"seco/internal/obs"
	"seco/internal/types"
)

// Share is the cross-query call-sharing layer of the Invoker: a
// singleflight-deduplicating memo cache keyed on (service, input binding,
// chunk index). When several concurrent runs demand the same chunk of the
// same ranked result list, exactly one request-response goes to the wire
// and every waiter shares its result; chunks already fetched are replayed
// from memory without any wire traffic.
//
// Deduplication and memoization are one mechanism here, not two options:
// a ranked chunk stream is only reachable through its prefix (chunk i
// exists only behind chunks 0..i-1 of one live invocation), so coalescing
// two readers onto one wire stream requires retaining the prefix for the
// later reader — which is exactly a memo cache with per-chunk flights.
// Entries live as long as the Share, matching the per-engine lifetime the
// old per-execution Cache had.
//
// Error handling is per-caller: a failed wire fetch is never cached and
// is returned only to the caller that led it; waiters re-enter the loop
// and lead their own attempt, so one run's cancellation or budget expiry
// never poisons another run's result. Share is safe for concurrent use.
type Share struct {
	inner   Service
	intern  *types.Interner // nil: memoize chunks as fetched
	mu      sync.Mutex
	entries map[string]*shareEntry

	wireInvokes atomic.Int64
	wireFetches atomic.Int64
	memoHits    atomic.Int64
	dedupHits   atomic.Int64

	// metrics mirrors of the counters above, registered per underlying
	// service interface; nil handles are no-ops.
	mWire  *obs.Counter
	mMemo  *obs.Counter
	mDedup *obs.Counter
}

// NewShare wraps svc in a call-sharing layer.
func NewShare(svc Service) *Share {
	return &Share{inner: svc, entries: map[string]*shareEntry{}}
}

// bindMetrics registers the layer's counters on reg, keyed by the
// wrapped service's interface name. A nil registry leaves the layer
// unmetered.
func (s *Share) bindMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	name := s.inner.Interface().Name
	s.mWire = reg.Counter("seco.share.wire_fetches." + name)
	s.mMemo = reg.Counter("seco.share.memo_hits." + name)
	s.mDedup = reg.Counter("seco.share.dedup_joins." + name)
}

// ShareStats are the coherent counters of one or more Share layers.
type ShareStats struct {
	// WireInvocations counts Invoke calls that reached the wrapped
	// service.
	WireInvocations int64
	// WireFetches counts request-responses that reached the wrapped
	// service.
	WireFetches int64
	// MemoHits counts fetches served from an already-cached chunk.
	MemoHits int64
	// DedupHits counts fetches that waited on another caller's in-flight
	// wire call and shared its result (the singleflight coalescing).
	DedupHits int64
}

// Saved is the number of request-responses the sharing layer absorbed.
func (s ShareStats) Saved() int64 { return s.MemoHits + s.DedupHits }

// Add accumulates o into s.
func (s *ShareStats) Add(o ShareStats) {
	s.WireInvocations += o.WireInvocations
	s.WireFetches += o.WireFetches
	s.MemoHits += o.MemoHits
	s.DedupHits += o.DedupHits
}

// Counters returns the layer's sharing counters (Stats is taken by the
// Service interface, which this layer forwards). The fundamental
// coherence invariant — the concurrent stress tests assert it — is that
// the sum of all runs' logical fetches equals WireFetches + MemoHits +
// DedupHits.
func (s *Share) Counters() ShareStats {
	return ShareStats{
		WireInvocations: s.wireInvokes.Load(),
		WireFetches:     s.wireFetches.Load(),
		MemoHits:        s.memoHits.Load(),
		DedupHits:       s.dedupHits.Load(),
	}
}

// Unwrap implements Wrapper.
func (s *Share) Unwrap() Service { return s.inner }

// Interface implements Service.
func (s *Share) Interface() *mart.Interface { return s.inner.Interface() }

// Stats implements Service.
func (s *Share) Stats() Stats { return s.inner.Stats() }

// Invoke implements Service.
func (s *Share) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := CheckInput(s.inner.Interface(), in); err != nil {
		return nil, err
	}
	key := inputKey(in)
	s.mu.Lock()
	entry, ok := s.entries[key]
	if !ok {
		entry = &shareEntry{share: s, input: in.Clone()}
		s.entries[key] = entry
	}
	s.mu.Unlock()
	return &shareInvocation{entry: entry}, nil
}

// shareEntry is the shared ranked stream for one input binding: the
// cached chunk prefix, the live upstream invocation extending it, and the
// flight state coalescing concurrent extenders.
type shareEntry struct {
	share *Share
	input Input

	mu       sync.Mutex
	chunks   []Chunk
	done     bool
	upstream Invocation
	// fetching marks a wire call for chunks[len(chunks)] in flight;
	// flight is closed when it completes (successfully or not).
	fetching bool
	flight   chan struct{}
}

// fetchAt returns chunk i, extending the shared prefix through the
// wrapped service when needed.
func (e *shareEntry) fetchAt(ctx context.Context, i int) (Chunk, error) {
	e.mu.Lock()
	waited := false
	for {
		if i < len(e.chunks) {
			chunk := e.chunks[i]
			e.mu.Unlock()
			if waited {
				e.share.dedupHits.Add(1)
				e.share.mDedup.Add(1)
				obs.ScopeFrom(ctx).Event("share-dedup-join", obs.KI("chunk", int64(i+1)))
			} else {
				e.share.memoHits.Add(1)
				e.share.mMemo.Add(1)
				obs.ScopeFrom(ctx).Event("share-memo-hit", obs.KI("chunk", int64(i+1)))
			}
			return chunk, nil
		}
		if e.done {
			e.mu.Unlock()
			return Chunk{}, ErrExhausted
		}
		if e.fetching {
			// Another caller is extending the prefix: wait for its flight
			// and re-check. Only a successful flight is accepted; a failed
			// one makes this caller lead its own attempt, so errors stay
			// attributed to the run whose wire call raised them.
			waited = true
			flight := e.flight
			e.mu.Unlock()
			select {
			case <-flight:
			case <-ctx.Done():
				return Chunk{}, ctx.Err()
			}
			e.mu.Lock()
			continue
		}
		// Lead the flight for the next chunk.
		e.fetching = true
		e.flight = make(chan struct{})
		flight := e.flight
		chunk, err := e.extend(ctx)
		e.fetching = false
		close(flight)
		if err != nil {
			if err == ErrExhausted {
				continue // done is set; the loop returns ErrExhausted
			}
			e.mu.Unlock()
			return Chunk{}, err
		}
		if i < len(e.chunks) {
			// The led fetch produced this caller's chunk; it was counted
			// as a wire fetch, not as a hit.
			chunk = e.chunks[i]
			e.mu.Unlock()
			return chunk, nil
		}
	}
}

// extend performs one wire fetch, appending the chunk to the prefix (or
// marking the stream done). Called with e.mu held; the lock is released
// for the wire call itself so concurrent callers can line up on the
// flight instead of the mutex.
func (e *shareEntry) extend(ctx context.Context) (Chunk, error) {
	if e.upstream == nil {
		e.mu.Unlock()
		inv, err := e.share.inner.Invoke(ctx, e.input)
		e.mu.Lock()
		if err != nil {
			return Chunk{}, err
		}
		e.share.wireInvokes.Add(1)
		e.upstream = inv
	}
	up := e.upstream
	e.mu.Unlock()
	chunk, err := up.Fetch(ctx)
	e.mu.Lock()
	chunked := e.share.inner.Stats().Chunked()
	if err == ErrExhausted || (err == nil && len(chunk.Tuples) == 0 && chunked) {
		e.done = true
		return Chunk{}, ErrExhausted
	}
	if err != nil {
		return Chunk{}, err
	}
	e.share.wireFetches.Add(1)
	e.share.mWire.Add(1)
	// The memoized chunk is the canonical copy every later hit replays:
	// intern its tuples once here, so the string values all sharing runs
	// compare against are handles, not fresh per-hit copies. Interner.Tuple
	// keeps the served pointer when the source already interned at load
	// time and deep-copies otherwise, so rows shared with the service are
	// never mutated.
	if it := e.share.intern; it != nil {
		for i, tu := range chunk.Tuples {
			chunk.Tuples[i] = it.Tuple(tu)
		}
	}
	e.chunks = append(e.chunks, chunk)
	if !chunked {
		e.done = true
	}
	return chunk, nil
}

// shareInvocation is one caller's cursor over a shared entry.
type shareInvocation struct {
	entry *shareEntry
	next  int
}

// Fetch implements Invocation.
func (si *shareInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := ctx.Err(); err != nil {
		return Chunk{}, err
	}
	chunk, err := si.entry.fetchAt(ctx, si.next)
	if err != nil {
		return Chunk{}, err
	}
	si.next++
	return chunk, nil
}
