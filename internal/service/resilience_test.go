package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seco/internal/mart"
)

// fakeClock is a manually-advanced TimeSource: Sleep charges the slept
// duration into the current instant.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.slept += d
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *fakeClock) sleptTotal() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}

// switchSvc fails Invoke transiently while failing is set.
type switchSvc struct {
	inner   Service
	failing atomic.Bool
	calls   atomic.Int64
}

func (s *switchSvc) Interface() *mart.Interface { return s.inner.Interface() }
func (s *switchSvc) Stats() Stats               { return s.inner.Stats() }
func (s *switchSvc) Unwrap() Service            { return s.inner }

func (s *switchSvc) Invoke(ctx context.Context, in Input) (Invocation, error) {
	s.calls.Add(1)
	if s.failing.Load() {
		return nil, fmt.Errorf("backend down: %w", ErrTransient)
	}
	return s.inner.Invoke(ctx, in)
}

func TestBreakerStateMachine(t *testing.T) {
	sw := &switchSvc{inner: newMovieTable(t, 0)}
	b := NewBreaker(sw)
	b.Threshold = 3
	b.Cooldown = time.Minute
	clk := &fakeClock{now: time.Unix(0, 0)}
	b.SetTimeSource(clk)
	ctx := context.Background()

	// Three consecutive transient failures trip the circuit.
	sw.failing.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := b.Invoke(ctx, movieInput()); !errors.Is(err, ErrTransient) {
			t.Fatalf("failure %d: err = %v", i, err)
		}
	}
	if b.State() != "open" || b.Tripped() != 1 {
		t.Fatalf("after threshold failures: state %s, tripped %d", b.State(), b.Tripped())
	}

	// Open circuit rejects without touching the service.
	before := sw.calls.Load()
	if _, err := b.Invoke(ctx, movieInput()); !errors.Is(err, ErrOpen) {
		t.Fatalf("open circuit err = %v, want ErrOpen", err)
	}
	if sw.calls.Load() != before || b.Rejected() != 1 {
		t.Fatalf("open circuit touched the service (calls %d→%d, rejected %d)",
			before, sw.calls.Load(), b.Rejected())
	}

	// After the cooldown a half-open probe goes through; success closes.
	clk.advance(b.Cooldown)
	sw.failing.Store(false)
	if _, err := b.Invoke(ctx, movieInput()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if b.State() != "closed" {
		t.Fatalf("after successful probe: state %s", b.State())
	}

	// Trip again; a failing probe re-opens immediately.
	sw.failing.Store(true)
	for i := 0; i < 3; i++ {
		b.Invoke(ctx, movieInput())
	}
	if b.State() != "open" || b.Tripped() != 2 {
		t.Fatalf("second trip: state %s, tripped %d", b.State(), b.Tripped())
	}
	clk.advance(b.Cooldown)
	if _, err := b.Invoke(ctx, movieInput()); !errors.Is(err, ErrTransient) {
		t.Fatalf("failing probe err = %v", err)
	}
	if b.State() != "open" || b.Tripped() != 3 {
		t.Fatalf("after failing probe: state %s, tripped %d", b.State(), b.Tripped())
	}
	if _, err := b.Invoke(ctx, movieInput()); !errors.Is(err, ErrOpen) {
		t.Fatalf("re-opened circuit admitted a call: %v", err)
	}
}

func TestBreakerWithoutClockStaysOpenUntilReset(t *testing.T) {
	sw := &switchSvc{inner: newMovieTable(t, 0)}
	sw.failing.Store(true)
	b := NewBreaker(sw)
	b.Threshold = 2
	ctx := context.Background()
	b.Invoke(ctx, movieInput())
	b.Invoke(ctx, movieInput())
	if b.State() != "open" {
		t.Fatalf("state %s", b.State())
	}
	if _, err := b.Invoke(ctx, movieInput()); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen (no clock, no cooldown)", err)
	}
	sw.failing.Store(false)
	b.Reset()
	if _, err := b.Invoke(ctx, movieInput()); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// Hard errors (bad bindings, exhaustion, cancellation) are neutral: they
// neither trip nor heal the circuit.
func TestBreakerIgnoresNeutralErrors(t *testing.T) {
	b := NewBreaker(newMovieTable(t, 0))
	b.Threshold = 2
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := b.Invoke(ctx, Input{}); err == nil {
			t.Fatal("missing input accepted")
		}
	}
	if b.State() != "closed" || b.Tripped() != 0 {
		t.Fatalf("neutral errors moved the circuit: state %s, tripped %d", b.State(), b.Tripped())
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	record := func(seed int64) []time.Duration {
		f := NewFlaky(newMovieTable(t, 0), 1) // every call fails
		r := NewRetry(f)
		r.MaxRetries = 4
		r.Jitter = 0.5
		r.Seed = seed
		var slept []time.Duration
		r.Sleep = func(d time.Duration) { slept = append(slept, d) }
		r.Invoke(context.Background(), movieInput())
		return slept
	}
	a, b := record(7), record(7)
	if len(a) == 0 {
		t.Fatal("no backoffs recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different backoff schedule: %v vs %v", a, b)
	}
	if c := record(8); reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced the identical jittered schedule %v", a)
	}
	for _, d := range a {
		if d > 160*time.Millisecond || d <= 0 {
			t.Errorf("jittered backoff %v outside (0, base*2^tries]", d)
		}
	}
}

func TestRetryBackoffGrowsToCap(t *testing.T) {
	f := NewFlaky(newMovieTable(t, 0), 1)
	r := NewRetry(f)
	r.MaxRetries = 5
	r.BaseBackoff = 10 * time.Millisecond
	r.MaxBackoff = 40 * time.Millisecond
	var slept []time.Duration
	r.Sleep = func(d time.Duration) { slept = append(slept, d) }
	r.Invoke(context.Background(), movieInput())
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond,
	}
	if !reflect.DeepEqual(slept, want) {
		t.Errorf("backoffs = %v, want %v", slept, want)
	}
}

// Backoff flows through the installed TimeSource when no explicit Sleep
// hook is set — and InstallTimeSource reaches every layer of a chain.
func TestInstallTimeSourceWalksChain(t *testing.T) {
	flaky := NewFlaky(newMovieTable(t, 0), 1)
	chain := NewBreaker(NewRetry(flaky))
	clk := &fakeClock{now: time.Unix(0, 0)}
	InstallTimeSource(chain, clk)
	chain.Invoke(context.Background(), movieInput())
	if clk.sleptTotal() == 0 {
		t.Error("retry backoff never reached the installed TimeSource")
	}
}

// A spent budget aborts retries before their backoff and is enforced at
// the Counter choke point.
func TestBudgetShortCircuits(t *testing.T) {
	spent := errors.New("budget spent")
	ctx := WithBudget(context.Background(), func() error { return spent })

	f := NewFlaky(newMovieTable(t, 0), 1)
	r := NewRetry(f)
	var slept int
	r.Sleep = func(time.Duration) { slept++ }
	if _, err := r.Invoke(ctx, movieInput()); !errors.Is(err, spent) {
		t.Fatalf("retry under spent budget: err = %v, want budget error", err)
	}
	if slept != 0 || r.Retried() != 0 {
		t.Errorf("spent budget still slept %d times / retried %d times", slept, r.Retried())
	}

	c := NewCounter(newMovieTable(t, 0), nil)
	if _, err := c.Invoke(ctx, movieInput()); !errors.Is(err, spent) {
		t.Fatalf("counter under spent budget: err = %v, want budget error", err)
	}

	// A healthy budget is invisible.
	ok := WithBudget(context.Background(), func() error { return nil })
	if _, err := c.Invoke(ok, movieInput()); err != nil {
		t.Fatalf("healthy budget blocked the call: %v", err)
	}
	if err := CheckBudget(context.Background()); err != nil {
		t.Fatalf("no budget in context must check clean, got %v", err)
	}
}

func TestCollectResilienceSumsChain(t *testing.T) {
	flaky := NewFlaky(newMovieTable(t, 1), 3)
	retry := NewRetry(flaky)
	retry.Sleep = func(time.Duration) {}
	chain := NewBreaker(retry)
	ctx := context.Background()
	inv, err := chain.Invoke(ctx, movieInput())
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := inv.Fetch(ctx); errors.Is(err, ErrExhausted) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	stats := CollectResilience(chain)
	if stats.Injected == 0 || stats.Retries == 0 {
		t.Errorf("chain stats vacuous: %+v", stats)
	}
	if stats.Injected != flaky.Resilience().Injected || stats.Retries != retry.Resilience().Retries {
		t.Errorf("chain stats %+v do not match layer stats", stats)
	}
}

// TestResilienceCountersRace hammers a full middleware chain from many
// goroutines while readers poll the counters; run with -race this is the
// regression test for the Flaky/Retry data race.
func TestResilienceCountersRace(t *testing.T) {
	flaky := NewFlaky(newMovieTable(t, 1), 5)
	retry := NewRetry(flaky)
	retry.Jitter = 0.3
	retry.Sleep = func(time.Duration) {}
	chain := NewBreaker(retry)
	chain.Threshold = 1000 // never trips: pure counter contention
	ctx := context.Background()

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent readers and re-installations
		defer close(readerDone)
		clk := &fakeClock{now: time.Unix(0, 0)}
		for {
			select {
			case <-stop:
				return
			default:
			}
			CollectResilience(chain)
			InstallTimeSource(chain, clk)
			chain.State()
			retry.Retried()
			flaky.Injected()
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 25; i++ {
				inv, err := chain.Invoke(ctx, movieInput())
				if err != nil {
					continue
				}
				for {
					if _, err := inv.Fetch(ctx); err != nil {
						break
					}
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	<-readerDone
	if flaky.Injected() == 0 {
		t.Error("hammer injected nothing; race test is vacuous")
	}
	stats := CollectResilience(chain)
	if stats.Injected != int64(flaky.Injected()) {
		t.Errorf("stats disagree: %d vs %d", stats.Injected, flaky.Injected())
	}
}
