package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"seco/internal/mart"
	"seco/internal/obs"
)

// Counter wraps a Service and counts its request-responses, optionally
// charging the service's published latency to a delay hook on every
// fetch. The request-response cost metric and the benchmark harness read
// the counters; the execution engine installs either a real sleep or a
// virtual-clock advance as the delay hook.
//
// The Counter is also the service layer's observability choke point: it
// is the only wrapper that sees both the logical call (invoke/fetch) and
// the latency charged for it, so it emits the per-call trace spans (into
// the scope carried by the context, if any) and feeds the per-alias
// metrics instruments installed by the Invoker.
type Counter struct {
	inner Service
	// Delay, when non-nil, is invoked with the service latency on every
	// Fetch, before the fetch is served.
	Delay func(time.Duration)

	inst *instruments // per-alias metrics; nil means unmetered

	invocations atomic.Int64
	fetches     atomic.Int64
	tuples      atomic.Int64
}

// NewCounter wraps svc. A nil delay hook means fetches complete instantly.
func NewCounter(svc Service, delay func(time.Duration)) *Counter {
	return &Counter{inner: svc, Delay: delay}
}

// Unwrap implements Wrapper.
func (c *Counter) Unwrap() Service { return c.inner }

// Interface implements Service.
func (c *Counter) Interface() *mart.Interface { return c.inner.Interface() }

// Stats implements Service.
func (c *Counter) Stats() Stats { return c.inner.Stats() }

// Invoke implements Service, counting the invocation. The execution
// budget is checked first: the engine wraps every bound service in a
// Counter, so a context carrying a spent budget stops every further
// Invoke and Fetch of the run at this single choke point.
func (c *Counter) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := CheckBudget(ctx); err != nil {
		return nil, err
	}
	ctx, cancel := callContext(ctx)
	defer cancel()
	end := obs.ScopeFrom(ctx).StartCall("invoke")
	inv, err := c.inner.Invoke(ctx, in)
	if err != nil {
		end(0, obs.KV("err", errClass(err)))
		return nil, err
	}
	end(0)
	c.invocations.Add(1)
	c.inst.invoke()
	return &countedInvocation{counter: c, inner: inv}, nil
}

// Invocations returns the number of successful Invoke calls so far.
func (c *Counter) Invocations() int64 { return c.invocations.Load() }

// Fetches returns the number of request-responses (successful Fetch calls)
// so far; this is the quantity the request-response cost metric counts.
func (c *Counter) Fetches() int64 { return c.fetches.Load() }

// Tuples returns the total number of tuples served so far.
func (c *Counter) Tuples() int64 { return c.tuples.Load() }

// Reset zeroes all counters.
func (c *Counter) Reset() {
	c.invocations.Store(0)
	c.fetches.Store(0)
	c.tuples.Store(0)
}

type countedInvocation struct {
	counter *Counter
	inner   Invocation
	chunks  atomic.Int64 // fetch depth served through this invocation
}

// Fetch implements Invocation: it charges latency, performs the fetch and
// updates the counters. Exhausted fetches are not counted as
// request-responses — and not traced as calls — because no call would be
// issued for them.
func (ci *countedInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := CheckBudget(ctx); err != nil {
		return Chunk{}, err
	}
	ctx, cancel := callContext(ctx)
	defer cancel()
	depth := ci.chunks.Load() + 1
	end := obs.ScopeFrom(ctx).StartCall("fetch", obs.KI("chunk", depth))
	chunk, err := ci.inner.Fetch(ctx)
	if err != nil {
		if errors.Is(err, ErrExhausted) {
			end(0, obs.KV("exhausted", "true"))
		} else {
			end(0, obs.KV("err", errClass(err)))
		}
		return chunk, err
	}
	latency := ci.counter.inner.Stats().Latency
	if d := ci.counter.Delay; d != nil {
		d(latency)
	}
	ci.chunks.Add(1)
	ci.counter.fetches.Add(1)
	ci.counter.tuples.Add(int64(len(chunk.Tuples)))
	end(latency, obs.KI("tuples", int64(len(chunk.Tuples))))
	ci.counter.inst.fetch(latency, depth, len(chunk.Tuples))
	return chunk, nil
}

// callContext derives the per-call context: when the engine installed a
// remaining-time probe (wall-clock runs with an execution budget), every
// Invoke and Fetch carries its own deadline bounded by what is left of
// the budget, so a single stalled wire call can never outlive the run's
// deadline. Without a probe the context passes through untouched and the
// returned cancel is a no-op.
func callContext(ctx context.Context) (context.Context, context.CancelFunc) {
	rem, ok := RemainingBudget(ctx)
	if !ok {
		return ctx, func() {}
	}
	if rem < 0 {
		rem = 0
	}
	return context.WithTimeout(ctx, rem)
}

// errClass maps a service error onto a low-cardinality trace attribute.
func errClass(err error) string {
	switch {
	case errors.Is(err, ErrPermanent):
		return "permanent"
	case errors.Is(err, ErrOpen):
		return "breaker-open"
	case errors.Is(err, ErrExhausted):
		return "exhausted"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "transient"
	}
}
