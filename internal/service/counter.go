package service

import (
	"context"
	"sync/atomic"
	"time"

	"seco/internal/mart"
)

// Counter wraps a Service and counts its request-responses, optionally
// charging the service's published latency to a delay hook on every fetch.
// The request-response cost metric and the benchmark harness read the
// counters; the execution engine installs either a real sleep or a
// virtual-clock advance as the delay hook.
type Counter struct {
	inner Service
	// Delay, when non-nil, is invoked with the service latency on every
	// Fetch, before the fetch is served.
	Delay func(time.Duration)

	invocations atomic.Int64
	fetches     atomic.Int64
	tuples      atomic.Int64
}

// NewCounter wraps svc. A nil delay hook means fetches complete instantly.
func NewCounter(svc Service, delay func(time.Duration)) *Counter {
	return &Counter{inner: svc, Delay: delay}
}

// Unwrap implements Wrapper.
func (c *Counter) Unwrap() Service { return c.inner }

// Interface implements Service.
func (c *Counter) Interface() *mart.Interface { return c.inner.Interface() }

// Stats implements Service.
func (c *Counter) Stats() Stats { return c.inner.Stats() }

// Invoke implements Service, counting the invocation. The execution
// budget is checked first: the engine wraps every bound service in a
// Counter, so a context carrying a spent budget stops every further
// Invoke and Fetch of the run at this single choke point.
func (c *Counter) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := CheckBudget(ctx); err != nil {
		return nil, err
	}
	inv, err := c.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	c.invocations.Add(1)
	return &countedInvocation{counter: c, inner: inv}, nil
}

// Invocations returns the number of successful Invoke calls so far.
func (c *Counter) Invocations() int64 { return c.invocations.Load() }

// Fetches returns the number of request-responses (successful Fetch calls)
// so far; this is the quantity the request-response cost metric counts.
func (c *Counter) Fetches() int64 { return c.fetches.Load() }

// Tuples returns the total number of tuples served so far.
func (c *Counter) Tuples() int64 { return c.tuples.Load() }

// Reset zeroes all counters.
func (c *Counter) Reset() {
	c.invocations.Store(0)
	c.fetches.Store(0)
	c.tuples.Store(0)
}

type countedInvocation struct {
	counter *Counter
	inner   Invocation
}

// Fetch implements Invocation: it charges latency, performs the fetch and
// updates the counters. Exhausted fetches are not counted as
// request-responses because no call would be issued for them.
func (ci *countedInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := CheckBudget(ctx); err != nil {
		return Chunk{}, err
	}
	chunk, err := ci.inner.Fetch(ctx)
	if err != nil {
		return chunk, err
	}
	if d := ci.counter.Delay; d != nil {
		d(ci.counter.inner.Stats().Latency)
	}
	ci.counter.fetches.Add(1)
	ci.counter.tuples.Add(int64(len(chunk.Tuples)))
	return chunk, nil
}
