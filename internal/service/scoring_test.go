package service

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScoringKindString(t *testing.T) {
	names := map[ScoringKind]string{
		ScoringConstant: "constant", ScoringStep: "step", ScoringLinear: "linear",
		ScoringSquare: "square", ScoringGeometric: "geometric",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConstantScoring(t *testing.T) {
	s := Constant(0.7)
	for _, pos := range []int{0, 1, 100} {
		if got := s.Score(pos); got != 0.7 {
			t.Errorf("Constant.Score(%d) = %v", pos, got)
		}
	}
	if got := Constant(1.5).Score(0); got != 1 {
		t.Errorf("Constant clamps to 1, got %v", got)
	}
	if got := Constant(-0.3).Score(0); got != 0 {
		t.Errorf("Constant clamps to 0, got %v", got)
	}
}

func TestStepScoring(t *testing.T) {
	s := Step(40, 0.9, 0.1)
	if got := s.Score(0); got != 0.9 {
		t.Errorf("Score(0) = %v", got)
	}
	if got := s.Score(39); got != 0.9 {
		t.Errorf("Score(39) = %v", got)
	}
	if got := s.Score(40); got != 0.1 {
		t.Errorf("Score(40) = %v", got)
	}
	if h, ok := s.HasStep(); !ok || h != 40 {
		t.Errorf("HasStep = %d,%v", h, ok)
	}
}

func TestLinearScoring(t *testing.T) {
	s := Linear(100)
	if got := s.Score(0); got != 1 {
		t.Errorf("Score(0) = %v", got)
	}
	if got := s.Score(50); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Score(50) = %v", got)
	}
	if got := s.Score(100); got != 0 {
		t.Errorf("Score(100) = %v", got)
	}
	if got := s.Score(1000); got != 0 {
		t.Errorf("Score(1000) = %v", got)
	}
	if _, ok := s.HasStep(); ok {
		t.Error("linear has step")
	}
}

func TestSquareScoring(t *testing.T) {
	s := Square(100)
	if got := s.Score(50); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Score(50) = %v, want 0.25", got)
	}
}

func TestGeometricScoring(t *testing.T) {
	s := Geometric(0.5)
	if got := s.Score(0); got != 1 {
		t.Errorf("Score(0) = %v", got)
	}
	if got := s.Score(2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Score(2) = %v", got)
	}
	// Out-of-range ratio falls back to a sane default.
	if s := Geometric(2); s.Ratio != 0.9 {
		t.Errorf("Geometric(2).Ratio = %v", s.Ratio)
	}
}

func TestScoreNegativePositionClamps(t *testing.T) {
	if got := Linear(10).Score(-5); got != 1 {
		t.Errorf("Score(-5) = %v", got)
	}
}

func TestScoringValidate(t *testing.T) {
	good := []Scoring{
		Constant(0.5), Step(3, 1, 0), Linear(10), Square(5), Geometric(0.8),
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", s, err)
		}
	}
	bad := []Scoring{
		{Kind: ScoringStep, H: -1, High: 1},
		{Kind: ScoringLinear, N: 0, High: 1},
		{Kind: ScoringSquare, N: -2, High: 1},
		{Kind: ScoringGeometric, Ratio: 1.2, High: 1},
		{Kind: ScoringLinear, N: 5, High: 2},
		{Kind: ScoringLinear, N: 5, High: 0.2, Low: 0.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded, want error", s)
		}
	}
}

// Every scoring shape must be non-increasing in position and bounded in
// [0,1] — the standing assumptions of Section 4.1.
func TestScoringMonotoneProperty(t *testing.T) {
	shapes := []Scoring{
		Constant(0.4), Step(7, 0.95, 0.05), Linear(50), Square(50), Geometric(0.85),
	}
	f := func(rawPos uint16) bool {
		pos := int(rawPos % 200)
		for _, s := range shapes {
			a, b := s.Score(pos), s.Score(pos+1)
			if a < b || a < 0 || a > 1 || b < 0 || b > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
