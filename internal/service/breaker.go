package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"seco/internal/mart"
	"seco/internal/obs"
)

// Breaker wraps a service with a per-service circuit breaker: after
// Threshold consecutive failures the circuit trips open and calls are
// rejected with ErrOpen without touching the service; once Cooldown has
// elapsed on the installed TimeSource the circuit half-opens and lets a
// single probe call through — success closes it, failure re-trips it.
// The breaker bounds the cost a dying service can extract from a run
// (retry storms, queued timeouts) and converts a hammering failure mode
// into the immediate, cheap ErrOpen that the engine's Degrade mode turns
// into a partial result.
//
// Timing flows through the TimeSource the engine installs (its Clock),
// so virtual-clock runs trip and recover deterministically in simulated
// time. Without a time source there is no notion of elapsed cooldown: a
// tripped breaker stays open until Reset.
//
// Place the breaker outside Retry (Breaker(Retry(svc))) so a trip
// silences whole retried operations, or inside (Retry(Breaker(svc))) so
// retries themselves are cut short; both compose.
type Breaker struct {
	inner Service
	// Threshold is the number of consecutive failures that trips the
	// circuit (default 5).
	Threshold int
	// Cooldown is the open interval before a half-open probe is allowed
	// (default 1 s).
	Cooldown time.Duration

	clock atomic.Pointer[tsBox]

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool

	tripped  atomic.Int64
	rejected atomic.Int64
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for reports.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerState(%d)", int(s))
	}
}

// NewBreaker wraps svc with the default thresholds.
func NewBreaker(svc Service) *Breaker {
	return &Breaker{inner: svc}
}

// Tripped reports how many times the circuit transitioned to open.
func (b *Breaker) Tripped() int { return int(b.tripped.Load()) }

// Rejected reports how many calls were refused while open.
func (b *Breaker) Rejected() int { return int(b.rejected.Load()) }

// State reports the current circuit state as a string (closed, open,
// half-open).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// Reset force-closes the circuit and clears the failure streak.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// Resilience implements ResilienceReporter.
func (b *Breaker) Resilience() ResilienceStats {
	return ResilienceStats{Tripped: b.tripped.Load(), Rejected: b.rejected.Load()}
}

// Unwrap implements Wrapper.
func (b *Breaker) Unwrap() Service { return b.inner }

// SetTimeSource implements TimeSourceSetter: cooldown windows are
// measured on ts.
func (b *Breaker) SetTimeSource(ts TimeSource) { b.clock.Store(&tsBox{ts: ts}) }

// Interface implements Service.
func (b *Breaker) Interface() *mart.Interface { return b.inner.Interface() }

// Stats implements Service.
func (b *Breaker) Stats() Stats { return b.inner.Stats() }

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

// admit decides whether a call may proceed, transitioning open→half-open
// when the cooldown has elapsed. Rejections and the half-open
// transition are traced into the calling operator's lane.
func (b *Breaker) admit(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if box := b.clock.Load(); box != nil && box.ts != nil {
			if box.ts.Now().Sub(b.openedAt) >= b.cooldown() {
				b.state = breakerHalfOpen
				b.probing = true
				obs.ScopeFrom(ctx).Event("breaker-half-open")
				return nil
			}
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	b.rejected.Add(1)
	obs.ScopeFrom(ctx).Event("breaker-reject", obs.KV("state", b.state.String()))
	return fmt.Errorf("service %s: %w", b.inner.Interface().Name, ErrOpen)
}

// record folds a call outcome into the breaker state. Only failures of
// the service itself count toward the streak: injected faults and real
// outages (transient or permanent), not exhaustion, cancellation or
// binding errors.
func (b *Breaker) record(ctx context.Context, err error) {
	failure := err != nil && (errors.Is(err, ErrTransient) || errors.Is(err, ErrPermanent))
	if err != nil && !failure {
		return // neutral outcome: leaves the streak and state alone
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.consecutive = 0
		if b.state == breakerHalfOpen {
			b.state = breakerClosed
			obs.ScopeFrom(ctx).Event("breaker-close")
		}
		return
	}
	b.consecutive++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecutive >= b.threshold()) {
		b.state = breakerOpen
		if box := b.clock.Load(); box != nil && box.ts != nil {
			b.openedAt = box.ts.Now()
		}
		b.tripped.Add(1)
		obs.ScopeFrom(ctx).Event("breaker-trip", obs.KI("consecutive", int64(b.consecutive)))
	}
}

// Invoke implements Service behind the circuit.
func (b *Breaker) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := b.admit(ctx); err != nil {
		return nil, err
	}
	inv, err := b.inner.Invoke(ctx, in)
	b.record(ctx, err)
	if err != nil {
		return nil, err
	}
	return &breakerInvocation{breaker: b, inner: inv}, nil
}

type breakerInvocation struct {
	breaker *Breaker
	inner   Invocation
}

// Fetch implements Invocation behind the circuit.
func (bi *breakerInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := bi.breaker.admit(ctx); err != nil {
		return Chunk{}, err
	}
	chunk, err := bi.inner.Fetch(ctx)
	bi.breaker.record(ctx, err)
	return chunk, err
}
