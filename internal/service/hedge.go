package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"seco/internal/mart"
	"seco/internal/obs"
)

// Hedge wraps a service with hedged calls: when the primary attempt fails
// with a hedgeable error — a transient failure that survived the retry
// chain below, or a per-call deadline that expired while the surrounding
// run is still live — the layer immediately issues one second attempt and
// returns its result if it succeeds. The hedge is backoff-free by design:
// it is the last resort above the resilience chain, not another retry
// loop, and it composes with Retry and Breaker rather than replacing them
// (an open circuit is never hedged — ErrOpen is not hedgeable — so a
// hedge never hammers a breaker that just tripped).
//
// The Invoker mounts the Hedge above the Share layer, which is what makes
// hedging safe under load: a hedged attempt for a chunk funnels through
// Share's singleflight and memo, so a hedged pair performs at most one
// successful upstream fetch per chunk — the duplicate is absorbed as a
// dedup join or memo hit, never as duplicate wire traffic.
//
// The layer also watches for slow primaries: every successful fetch is
// compared against a latency-percentile trigger fed by the invoker's
// latency histogram (Stats().Latency when the histogram is still cold).
// Under the engine's deterministic sequential composition a hedge raced
// against a completed primary is observationally equivalent to not
// issuing it — Share would coalesce it onto the already-memoized chunk —
// so slow-but-successful calls are counted (seco.hedge.late) rather than
// duplicated. Timing flows through the TimeSource the engine installs, so
// virtual-clock runs evaluate the trigger deterministically in simulated
// time; with no time source the trigger is disabled and only failure
// hedging remains.
type Hedge struct {
	inner  Service
	policy HedgePolicy
	// lat is the published-latency histogram feeding the slow-call
	// trigger (the Invoker passes its seco.invoker.latency_ms.<alias>
	// instrument); nil falls back to Stats().Latency.
	lat   *obs.Histogram
	clock atomic.Pointer[tsBox]

	attempts atomic.Int64
	wins     atomic.Int64
	late     atomic.Int64

	mAttempts *obs.Counter
	mWins     *obs.Counter
	mLate     *obs.Counter
}

// HedgePolicy tunes the hedging layer. The zero value selects the
// defaults noted per field.
type HedgePolicy struct {
	// Percentile is the latency quantile of the trigger (default 0.99).
	Percentile float64
	// Multiplier scales the quantile into the trigger threshold
	// (default 1.5).
	Multiplier float64
	// MinSamples is how many histogram observations the quantile needs
	// before it is trusted over the published Stats().Latency
	// (default 20).
	MinSamples int64
	// Floor is the minimum trigger threshold (default 1ms).
	Floor time.Duration
}

// NewHedge wraps svc in a hedging layer.
func NewHedge(svc Service, policy HedgePolicy) *Hedge {
	return &Hedge{inner: svc, policy: policy}
}

// SetLatencySource installs the latency histogram feeding the slow-call
// trigger.
func (h *Hedge) SetLatencySource(lat *obs.Histogram) { h.lat = lat }

// bindMetrics registers the layer's counters on reg under the alias.
func (h *Hedge) bindMetrics(reg *obs.Registry, alias string) {
	if reg == nil {
		return
	}
	h.mAttempts = reg.Counter("seco.hedge.attempts." + alias)
	h.mWins = reg.Counter("seco.hedge.wins." + alias)
	h.mLate = reg.Counter("seco.hedge.late." + alias)
}

// Hedged reports how many second attempts were issued.
func (h *Hedge) Hedged() int { return int(h.attempts.Load()) }

// Wins reports how many hedged attempts recovered the call.
func (h *Hedge) Wins() int { return int(h.wins.Load()) }

// Late reports how many successful primaries exceeded the trigger.
func (h *Hedge) Late() int { return int(h.late.Load()) }

// Resilience implements ResilienceReporter.
func (h *Hedge) Resilience() ResilienceStats {
	return ResilienceStats{Hedges: h.attempts.Load(), HedgeWins: h.wins.Load()}
}

// Unwrap implements Wrapper.
func (h *Hedge) Unwrap() Service { return h.inner }

// SetTimeSource implements TimeSourceSetter: the slow-call trigger is
// measured on ts.
func (h *Hedge) SetTimeSource(ts TimeSource) { h.clock.Store(&tsBox{ts: ts}) }

// Interface implements Service.
func (h *Hedge) Interface() *mart.Interface { return h.inner.Interface() }

// Stats implements Service.
func (h *Hedge) Stats() Stats { return h.inner.Stats() }

// hedgeable reports whether a failed primary attempt is worth hedging:
// transient failures (the chain below already gave up on them) and
// expired per-call deadlines. Permanent faults, open circuits, exhausted
// streams and canceled runs are not — a second attempt would fail
// identically or outlive its caller.
func hedgeable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, context.DeadlineExceeded)
}

// trigger returns the slow-call threshold: the configured percentile of
// the observed per-call latency (published latency while the histogram is
// cold), scaled by the multiplier and floored.
func (h *Hedge) trigger() time.Duration {
	pct, mult, minSamples := h.policy.Percentile, h.policy.Multiplier, h.policy.MinSamples
	if pct <= 0 {
		pct = 0.99
	}
	if mult <= 0 {
		mult = 1.5
	}
	if minSamples <= 0 {
		minSamples = 20
	}
	floor := h.policy.Floor
	if floor <= 0 {
		floor = time.Millisecond
	}
	var base time.Duration
	if h.lat != nil && h.lat.Count() >= minSamples {
		base = time.Duration(h.lat.Quantile(pct) * float64(time.Millisecond))
	} else {
		base = h.inner.Stats().Latency
	}
	t := time.Duration(float64(base) * mult)
	if t < floor {
		t = floor
	}
	return t
}

// Invoke implements Service, hedging a failed primary invocation once.
func (h *Hedge) Invoke(ctx context.Context, in Input) (Invocation, error) {
	inv, err := h.inner.Invoke(ctx, in)
	if err == nil {
		return &hedgeInvocation{hedge: h, inner: inv}, nil
	}
	if !hedgeable(err) || ctx.Err() != nil {
		return nil, err
	}
	h.attempts.Add(1)
	h.mAttempts.Add(1)
	obs.ScopeFrom(ctx).Event("hedge-invoke")
	inv, err2 := h.inner.Invoke(ctx, in)
	if err2 != nil {
		return nil, err // the primary error names the original failure
	}
	h.wins.Add(1)
	h.mWins.Add(1)
	return &hedgeInvocation{hedge: h, inner: inv}, nil
}

// hedgeInvocation is one caller's cursor over the hedged service.
type hedgeInvocation struct {
	hedge *Hedge
	inner Invocation
}

// Fetch implements Invocation. A hedgeable primary failure is re-fetched
// immediately: by the service-layer convention a failed Fetch does not
// advance the stream cursor (Share memoizes only successes, invocations
// count only successes), so the second attempt targets the same chunk —
// through Share's singleflight, so it coalesces with any concurrent
// attempt instead of duplicating the wire call. A successful primary that
// exceeds the latency trigger is counted as late; the hedge it would have
// raced is a no-op under the dedup layer, so none is issued.
func (hi *hedgeInvocation) Fetch(ctx context.Context) (Chunk, error) {
	h := hi.hedge
	var ts TimeSource
	var start time.Time
	if box := h.clock.Load(); box != nil && box.ts != nil {
		ts = box.ts
		start = ts.Now()
	}
	chunk, err := hi.inner.Fetch(ctx)
	if err == nil {
		if ts != nil {
			// The charged cost of this call is everything the layers below
			// slept (spikes, backoff) plus the published latency the
			// Counter above is about to charge.
			took := ts.Now().Sub(start) + h.inner.Stats().Latency
			if took > h.trigger() {
				h.late.Add(1)
				h.mLate.Add(1)
				obs.ScopeFrom(ctx).Event("hedge-late")
			}
		}
		return chunk, nil
	}
	if !hedgeable(err) || ctx.Err() != nil {
		return chunk, err
	}
	h.attempts.Add(1)
	h.mAttempts.Add(1)
	obs.ScopeFrom(ctx).Event("hedge-fetch")
	chunk2, err2 := hi.inner.Fetch(ctx)
	if err2 != nil {
		return chunk, err
	}
	h.wins.Add(1)
	h.mWins.Add(1)
	return chunk2, nil
}
