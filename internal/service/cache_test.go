package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"seco/internal/types"
)

func TestCacheServesRepeatedBindingsFromMemory(t *testing.T) {
	tab := newMovieTable(t, 1)
	counter := NewCounter(tab, nil)
	cache := NewCache(counter)

	drainCache := func() int {
		inv, err := cache.Invoke(context.Background(), movieInput())
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			c, err := inv.Fetch(context.Background())
			if errors.Is(err, ErrExhausted) {
				return n
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(c.Tuples)
		}
	}
	first := drainCache()
	wire := counter.Fetches()
	second := drainCache()
	if first != second || first == 0 {
		t.Fatalf("replay differs: %d vs %d", first, second)
	}
	if counter.Fetches() != wire {
		t.Errorf("second drain hit the wire: %d → %d fetches", wire, counter.Fetches())
	}
	if cache.Hits() == 0 || cache.Misses() == 0 {
		t.Errorf("counters: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
}

func TestCachePrefixReuse(t *testing.T) {
	tab := newMovieTable(t, 1) // matching rows: 2 chunks of 1
	counter := NewCounter(tab, nil)
	cache := NewCache(counter)
	// First invocation reads only the first chunk.
	inv1, err := cache.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv1.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counter.Fetches() != 1 {
		t.Fatalf("wire fetches = %d", counter.Fetches())
	}
	// Second invocation reuses the prefix and extends past it.
	inv2, err := cache.Invoke(context.Background(), movieInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv2.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counter.Fetches() != 1 {
		t.Errorf("prefix refetched: %d wire fetches", counter.Fetches())
	}
	if _, err := inv2.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counter.Fetches() != 2 {
		t.Errorf("extension fetches = %d, want 2", counter.Fetches())
	}
}

func TestCacheDistinguishesBindings(t *testing.T) {
	tab := newMovieTable(t, 0)
	counter := NewCounter(tab, nil)
	cache := NewCache(counter)
	in1 := movieInput()
	in2 := movieInput()
	in2["Genres.Genre"] = types.String("Drama")
	for _, in := range []Input{in1, in2} {
		inv, err := cache.Invoke(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inv.Fetch(context.Background()); err != nil && !errors.Is(err, ErrExhausted) {
			t.Fatal(err)
		}
	}
	if counter.Invocations() != 2 {
		t.Errorf("distinct bindings shared an entry: %d invocations", counter.Invocations())
	}
}

func TestCacheUnchunkedService(t *testing.T) {
	tab := newMovieTable(t, 0) // unchunked: one response carries all
	cache := NewCache(tab)
	for round := 0; round < 2; round++ {
		inv, err := cache.Invoke(context.Background(), movieInput())
		if err != nil {
			t.Fatal(err)
		}
		c, err := inv.Fetch(context.Background())
		if err != nil || len(c.Tuples) != 2 {
			t.Fatalf("round %d: %v %v", round, len(c.Tuples), err)
		}
		if _, err := inv.Fetch(context.Background()); !errors.Is(err, ErrExhausted) {
			t.Fatalf("round %d: second fetch err = %v", round, err)
		}
	}
}

func TestCacheRejectsMissingInput(t *testing.T) {
	cache := NewCache(newMovieTable(t, 0))
	if _, err := cache.Invoke(context.Background(), Input{}); err == nil {
		t.Error("unbound invoke accepted")
	}
	if cache.Interface() == nil || cache.Stats().Validate() != nil {
		t.Error("forwarding broken")
	}
}

func TestCacheConcurrentSameBinding(t *testing.T) {
	tab := newMovieTable(t, 1)
	counter := NewCounter(tab, func(time.Duration) {})
	cache := NewCache(counter)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := cache.Invoke(context.Background(), movieInput())
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, err := inv.Fetch(context.Background()); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	// One shared upstream invocation: the wire saw each chunk once.
	if counter.Fetches() != 2 {
		t.Errorf("concurrent drains fetched %d chunks from the wire, want 2", counter.Fetches())
	}
}
