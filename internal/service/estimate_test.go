package service

import (
	"context"
	"math"
	"testing"

	"seco/internal/mart"
	"seco/internal/types"
)

// probeTable builds a one-input ranked table with n rows under the given
// scoring, keyed so one sample input returns everything.
func probeTable(t *testing.T, n, chunk int, sc Scoring) *Table {
	t.Helper()
	m := &mart.Mart{Name: "P", Attributes: []mart.Attribute{
		{Name: "Key", Kind: types.KindInt},
		{Name: "Val", Kind: types.KindFloat},
	}}
	si, err := mart.NewInterface("P1", m, map[string]mart.Adornment{"Key": mart.Input})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(si, Stats{AvgCardinality: float64(n), ChunkSize: chunk, Scoring: sc})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tu := types.NewTuple(sc.Score(i))
		tu.Set("Key", types.Int(1)).Set("Val", types.Float(sc.Score(i)))
		tab.Add(tu)
	}
	return tab
}

func probeInput() []Input {
	return []Input{{"Key": types.Int(1)}}
}

func TestEstimateStatsLinearService(t *testing.T) {
	tab := probeTable(t, 40, 10, Linear(40))
	st, err := EstimateStats(context.Background(), tab, probeInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgCardinality != 40 {
		t.Errorf("AvgCardinality = %v, want 40", st.AvgCardinality)
	}
	if st.ChunkSize != 10 {
		t.Errorf("ChunkSize = %v, want 10", st.ChunkSize)
	}
	if st.Scoring.Kind != ScoringLinear {
		t.Errorf("Scoring = %v, want linear", st.Scoring.Kind)
	}
	if st.Scoring.N < 35 || st.Scoring.N > 50 {
		t.Errorf("Scoring.N = %d, want ≈40", st.Scoring.N)
	}
}

func TestEstimateStatsStepService(t *testing.T) {
	tab := probeTable(t, 40, 10, Step(20, 0.9, 0.1))
	st, err := EstimateStats(context.Background(), tab, probeInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := st.Scoring.HasStep()
	if !ok {
		t.Fatalf("step not detected: %+v", st.Scoring)
	}
	if h != 20 {
		t.Errorf("step position = %d, want 20", h)
	}
}

func TestEstimateStatsConstantExactService(t *testing.T) {
	tab := probeTable(t, 7, 0, Constant(0.5))
	st, err := EstimateStats(context.Background(), tab, probeInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunkSize != 0 {
		t.Errorf("unchunked service estimated chunk %d", st.ChunkSize)
	}
	if st.Scoring.Kind != ScoringConstant {
		t.Errorf("Scoring = %v, want constant", st.Scoring.Kind)
	}
	if st.AvgCardinality != 7 {
		t.Errorf("AvgCardinality = %v, want 7", st.AvgCardinality)
	}
}

func TestEstimateStatsMultipleSamplesAverage(t *testing.T) {
	tab := probeTable(t, 12, 0, Constant(0.5))
	// Second sample matches nothing: average halves.
	samples := []Input{{"Key": types.Int(1)}, {"Key": types.Int(999)}}
	st, err := EstimateStats(context.Background(), tab, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.AvgCardinality-6) > 1e-9 {
		t.Errorf("AvgCardinality = %v, want 6", st.AvgCardinality)
	}
}

func TestEstimateStatsErrors(t *testing.T) {
	tab := probeTable(t, 4, 2, Linear(4))
	if _, err := EstimateStats(context.Background(), tab, nil, 0); err == nil {
		t.Error("no samples accepted")
	}
	if _, err := EstimateStats(context.Background(), tab, []Input{{}}, 0); err == nil {
		t.Error("unbound probe input accepted")
	}
}

func TestClassifyScoresEdgeCases(t *testing.T) {
	if sc := ClassifyScores(nil); sc.Kind != ScoringConstant {
		t.Errorf("empty scores → %v", sc.Kind)
	}
	if sc := ClassifyScores([]float64{0.7, 0.7, 0.7}); sc.Kind != ScoringConstant || sc.Score(0) != 0.7 {
		t.Errorf("flat scores → %+v", sc)
	}
	// Validated output: every classification passes Validate.
	for _, scores := range [][]float64{
		{1, 0.9, 0.8, 0.7},
		{0.9, 0.9, 0.1, 0.1},
		{0.5},
	} {
		if err := ClassifyScores(scores).Validate(); err != nil {
			t.Errorf("classification of %v invalid: %v", scores, err)
		}
	}
}

// The estimated statistics round-trip: probing a service built from the
// estimate behaves like the original for the optimizer's purposes
// (cardinality and chunking match).
func TestEstimateRoundTrip(t *testing.T) {
	orig := probeTable(t, 30, 5, Linear(30))
	st, err := EstimateStats(context.Background(), orig, probeInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Validate() != nil {
		t.Fatalf("estimated stats invalid: %+v", st)
	}
	rebuilt := probeTable(t, int(st.AvgCardinality), st.ChunkSize, st.Scoring)
	st2, err := EstimateStats(context.Background(), rebuilt, probeInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.AvgCardinality != st.AvgCardinality || st2.ChunkSize != st.ChunkSize {
		t.Errorf("round trip drifted: %+v vs %+v", st, st2)
	}
}
