package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"seco/internal/mart"
	"seco/internal/types"
)

// ErrExhausted is returned by Invocation.Fetch when the service has no
// further chunks for the invocation.
var ErrExhausted = errors.New("service: result list exhausted")

// Input binds the input attribute paths of a service interface to values.
type Input map[string]types.Value

// Clone returns a copy of the input binding.
func (in Input) Clone() Input {
	c := make(Input, len(in))
	for k, v := range in {
		c[k] = v
	}
	return c
}

// Chunk is one unit of results returned by a single request-response.
// Search services return chunks in decreasing ranking order; tuple scores
// within a chunk are non-increasing as well.
type Chunk struct {
	// Index is the 0-based sequence number of the chunk within its
	// invocation (the chapter's "i-th call").
	Index int
	// Tuples are the chunk's results.
	Tuples []*types.Tuple
}

// Stats captures the published statistics of a service, which are the only
// information the optimizer may use (Section 3.2: estimates descend from
// static properties under independence and uniform-distribution
// assumptions).
type Stats struct {
	// AvgCardinality is the expected number of output tuples per input
	// tuple for an exact service. A value below 1 makes the service
	// selective "per se" (Section 3.2).
	AvgCardinality float64
	// ChunkSize is the number of tuples per chunk for chunked services;
	// 0 means the service returns all tuples in one response.
	ChunkSize int
	// Latency is the expected elapsed time of one request-response.
	Latency time.Duration
	// CostPerCall is the monetary charge of one request-response, used by
	// the sum cost metric.
	CostPerCall float64
	// Scoring describes the service's score curve.
	Scoring Scoring
}

// Chunked reports whether the service returns results chunk by chunk.
func (s Stats) Chunked() bool { return s.ChunkSize > 0 }

// Selective reports whether the service is selective per se, i.e. produces
// fewer than one output tuple per input tuple on average.
func (s Stats) Selective() bool { return s.AvgCardinality < 1 }

// Validate checks the statistics for consistency.
func (s Stats) Validate() error {
	if s.AvgCardinality < 0 {
		return fmt.Errorf("service: negative average cardinality %v", s.AvgCardinality)
	}
	if s.ChunkSize < 0 {
		return fmt.Errorf("service: negative chunk size %d", s.ChunkSize)
	}
	if s.Latency < 0 {
		return fmt.Errorf("service: negative latency %v", s.Latency)
	}
	if s.CostPerCall < 0 {
		return fmt.Errorf("service: negative per-call cost %v", s.CostPerCall)
	}
	return s.Scoring.Validate()
}

// Invocation is a live request to a service for one input binding. Fetch
// performs one request-response and returns the next chunk, or ErrExhausted
// when the ranked list is finished. Implementations need not be safe for
// concurrent Fetch calls on the same invocation; the engine serializes them.
type Invocation interface {
	Fetch(ctx context.Context) (Chunk, error)
}

// Service is a callable information source bound to a service interface.
type Service interface {
	// Interface returns the design-time interface the service implements.
	Interface() *mart.Interface
	// Stats returns the published statistics.
	Stats() Stats
	// Invoke starts a new invocation for the given input binding. Missing
	// bindings for input-adorned paths are an error: access limitations
	// are mandatory (Section 2.3).
	Invoke(ctx context.Context, in Input) (Invocation, error)
}

// CheckInput verifies that in binds every input path of si, returning a
// descriptive error otherwise. Service implementations call it from Invoke.
func CheckInput(si *mart.Interface, in Input) error {
	for _, p := range si.InputPaths() {
		v, ok := in[p]
		if !ok || v.IsNull() {
			return fmt.Errorf("service %s: input attribute %q not bound", si.Name, p)
		}
	}
	return nil
}

// FuncInvocation adapts a fetch closure to the Invocation interface.
type FuncInvocation func(ctx context.Context) (Chunk, error)

// Fetch implements Invocation.
func (f FuncInvocation) Fetch(ctx context.Context) (Chunk, error) { return f(ctx) }
