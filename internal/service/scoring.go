// Package service defines the runtime face of an information source: a
// Service that can be invoked with bound input attributes and that returns
// its results in chunks, in ranking order when it is a search service.
//
// The package also models the two scoring-function classes of Section 4.1:
// step functions, where scores drop sharply after h request-responses, and
// progressive functions (linear, square, geometric), where scores decay
// smoothly. These shapes drive the choice between nested-loop and
// merge-scan invocation strategies.
package service

import (
	"fmt"
	"math"
)

// ScoringKind enumerates the shapes of a search service's score curve.
type ScoringKind int

const (
	// ScoringConstant is the fixed score of exact (unranked) services.
	ScoringConstant ScoringKind = iota
	// ScoringStep drops from High to Low after H leading tuples
	// (Section 4.1, class 1).
	ScoringStep
	// ScoringLinear decays linearly from 1 to 0 over N tuples.
	ScoringLinear
	// ScoringSquare decays quadratically ((1-pos/N)²) over N tuples.
	ScoringSquare
	// ScoringGeometric decays geometrically with a fixed ratio per tuple.
	ScoringGeometric
)

// String returns the kind's name.
func (k ScoringKind) String() string {
	switch k {
	case ScoringConstant:
		return "constant"
	case ScoringStep:
		return "step"
	case ScoringLinear:
		return "linear"
	case ScoringSquare:
		return "square"
	case ScoringGeometric:
		return "geometric"
	default:
		return fmt.Sprintf("ScoringKind(%d)", int(k))
	}
}

// Scoring is a concrete scoring function: it maps the 0-based rank position
// of a tuple in a service's result list to a relevance score in [0,1]. All
// shapes are non-increasing in the position, which realizes the chapter's
// standing assumption that search services return results in ranking order.
type Scoring struct {
	// Kind selects the curve shape.
	Kind ScoringKind
	// N calibrates linear/square decay: the position at which the score
	// reaches Low.
	N int
	// H is, for step curves, the number of leading tuples scored High.
	// The chapter's h counts request-responses; H = h × chunk size.
	H int
	// High and Low bound the curve. Defaults (when zero): High=1, Low=0.
	High, Low float64
	// Ratio is the per-position decay of geometric curves (0<Ratio<1).
	Ratio float64
}

// Constant returns the fixed scoring of an exact service; score is clamped
// into [0,1].
func Constant(score float64) Scoring {
	return Scoring{Kind: ScoringConstant, High: clamp01(score), Low: clamp01(score)}
}

// Step returns a step scoring: the first h tuples score high, the rest low.
func Step(h int, high, low float64) Scoring {
	return Scoring{Kind: ScoringStep, H: h, High: clamp01(high), Low: clamp01(low)}
}

// Linear returns a linear decay from 1 to 0 across n tuples.
func Linear(n int) Scoring { return Scoring{Kind: ScoringLinear, N: n, High: 1} }

// Square returns a quadratic decay from 1 to 0 across n tuples.
func Square(n int) Scoring { return Scoring{Kind: ScoringSquare, N: n, High: 1} }

// Geometric returns a geometric decay with the given per-position ratio.
func Geometric(ratio float64) Scoring {
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.9
	}
	return Scoring{Kind: ScoringGeometric, Ratio: ratio, High: 1}
}

func clamp01(f float64) float64 {
	return math.Max(0, math.Min(1, f))
}

// Score returns the score of the tuple at 0-based position pos.
func (s Scoring) Score(pos int) float64 {
	if pos < 0 {
		pos = 0
	}
	high := s.High
	if high == 0 && s.Kind != ScoringConstant {
		high = 1
	}
	switch s.Kind {
	case ScoringConstant:
		return s.High
	case ScoringStep:
		if pos < s.H {
			return high
		}
		return s.Low
	case ScoringLinear:
		if s.N <= 0 || pos >= s.N {
			return s.Low
		}
		return s.Low + (high-s.Low)*(1-float64(pos)/float64(s.N))
	case ScoringSquare:
		if s.N <= 0 || pos >= s.N {
			return s.Low
		}
		d := 1 - float64(pos)/float64(s.N)
		return s.Low + (high-s.Low)*d*d
	case ScoringGeometric:
		return high * math.Pow(s.Ratio, float64(pos))
	default:
		return 0
	}
}

// HasStep reports whether the curve is a step function, and if so after how
// many tuples the drop occurs. Invocation-strategy selection uses this to
// prefer nested-loop over merge-scan (Section 4.3.1).
func (s Scoring) HasStep() (h int, ok bool) {
	if s.Kind == ScoringStep {
		return s.H, true
	}
	return 0, false
}

// Validate checks the internal consistency of the scoring parameters.
func (s Scoring) Validate() error {
	if s.High < 0 || s.High > 1 || s.Low < 0 || s.Low > 1 {
		return fmt.Errorf("service: scoring bounds [%v,%v] outside [0,1]", s.Low, s.High)
	}
	if s.Low > s.High {
		return fmt.Errorf("service: scoring Low %v above High %v", s.Low, s.High)
	}
	switch s.Kind {
	case ScoringStep:
		if s.H < 0 {
			return fmt.Errorf("service: step scoring with negative H %d", s.H)
		}
	case ScoringLinear, ScoringSquare:
		if s.N <= 0 {
			return fmt.Errorf("service: %v scoring needs positive N, got %d", s.Kind, s.N)
		}
	case ScoringGeometric:
		if s.Ratio <= 0 || s.Ratio >= 1 {
			return fmt.Errorf("service: geometric ratio %v outside (0,1)", s.Ratio)
		}
	}
	return nil
}
