package service

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// EstimateStats probes a service with sample input bindings and estimates
// the statistics the optimizer consumes — the "service interface
// statistics" of Section 3.2: average cardinality per invocation,
// observed chunk size, mean request-response latency, and a
// classification of the scoring curve (constant, step with its h, or
// progressive/linear), obtained by inspecting the returned score
// sequences.
//
// maxFetches caps the chunks drained per sample (default 50 when zero).
func EstimateStats(ctx context.Context, svc Service, samples []Input, maxFetches int) (Stats, error) {
	if len(samples) == 0 {
		return Stats{}, fmt.Errorf("service: EstimateStats needs at least one sample input")
	}
	if maxFetches <= 0 {
		maxFetches = 50
	}
	var (
		totalTuples int
		chunkSizes  = map[int]int{}
		scores      []float64
		totalCalls  int
		elapsed     time.Duration
	)
	for _, in := range samples {
		inv, err := svc.Invoke(ctx, in)
		if err != nil {
			return Stats{}, fmt.Errorf("service: probing: %w", err)
		}
		for f := 0; f < maxFetches; f++ {
			start := time.Now()
			chunk, err := inv.Fetch(ctx)
			if errors.Is(err, ErrExhausted) {
				break
			}
			if err != nil {
				return Stats{}, fmt.Errorf("service: probing fetch: %w", err)
			}
			elapsed += time.Since(start)
			totalCalls++
			if len(chunk.Tuples) == 0 {
				break
			}
			totalTuples += len(chunk.Tuples)
			if f == 0 || len(chunk.Tuples) == chunkSizes[maxKey(chunkSizes)] {
				chunkSizes[len(chunk.Tuples)]++
			}
			for _, tu := range chunk.Tuples {
				scores = append(scores, tu.Score)
			}
		}
	}
	st := Stats{
		AvgCardinality: float64(totalTuples) / float64(len(samples)),
	}
	if totalCalls > 0 {
		st.Latency = elapsed / time.Duration(totalCalls)
	}
	// A service is chunked when an invocation needed several fetches.
	if totalCalls > len(samples) {
		st.ChunkSize = maxKey(chunkSizes)
	}
	st.Scoring = ClassifyScores(scores)
	return st, nil
}

func maxKey(m map[int]int) int {
	best, bestCount := 0, -1
	for k, c := range m {
		if c > bestCount || (c == bestCount && k > best) {
			best, bestCount = k, c
		}
	}
	return best
}

// ClassifyScores inspects a ranked score sequence and classifies its
// shape per Section 4.1: constant (all equal), step (one drop dominates
// the total decay — returning the step position h in tuples), or
// progressive (fitted as linear decay over the observed length).
func ClassifyScores(scores []float64) Scoring {
	if len(scores) == 0 {
		return Constant(0.5)
	}
	first, last := scores[0], scores[len(scores)-1]
	total := first - last
	if total < 1e-9 {
		return Constant(first)
	}
	// Find the largest single drop.
	maxDrop, dropAt := 0.0, 0
	for i := 1; i < len(scores); i++ {
		if d := scores[i-1] - scores[i]; d > maxDrop {
			maxDrop, dropAt = d, i
		}
	}
	if maxDrop > 0.6*total {
		return Scoring{Kind: ScoringStep, H: dropAt, High: first, Low: last}
	}
	// Progressive: linear decay calibrated so Score(len) ≈ last.
	n := len(scores)
	if last > 0 && first > last {
		// Extrapolate where the decay would reach zero.
		slope := total / float64(n-1)
		if slope > 0 {
			n = int(first/slope) + 1
		}
	}
	return Scoring{Kind: ScoringLinear, N: n, High: first}
}
