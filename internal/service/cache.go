package service

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"seco/internal/mart"
)

// Cache wraps a service and memoizes its chunks per input binding, with
// prefix reuse: if an earlier invocation for the same binding fetched the
// first n chunks, a later one replays them without request-responses and
// only goes to the wire for deeper chunks. Pipe joins repeatedly invoke
// the same service with recurring bindings (every movie showing at the
// same theatre pipes the same address into the restaurant service), so
// caching directly reduces the request-response cost the chapter's
// metrics count.
//
// Cache is safe for concurrent use; entries are never evicted.
//
// The engine itself no longer wraps services in a Cache: its Invoker's
// Share layer subsumes this memoization and adds in-flight deduplication
// across concurrent runs. Cache remains for callers composing their own
// chains outside the engine.
type Cache struct {
	inner   Service
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses atomic.Int64
}

// NewCache wraps svc.
func NewCache(svc Service) *Cache {
	return &Cache{inner: svc, entries: map[string]*cacheEntry{}}
}

// Hits counts chunk fetches served from memory.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses counts chunk fetches that went to the wrapped service.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Unwrap implements Wrapper.
func (c *Cache) Unwrap() Service { return c.inner }

// Interface implements Service.
func (c *Cache) Interface() *mart.Interface { return c.inner.Interface() }

// Stats implements Service.
func (c *Cache) Stats() Stats { return c.inner.Stats() }

// Invoke implements Service.
func (c *Cache) Invoke(ctx context.Context, in Input) (Invocation, error) {
	if err := CheckInput(c.inner.Interface(), in); err != nil {
		return nil, err
	}
	key := inputKey(in)
	c.mu.Lock()
	entry, ok := c.entries[key]
	if !ok {
		entry = &cacheEntry{cache: c, input: in.Clone()}
		c.entries[key] = entry
	}
	c.mu.Unlock()
	return &cachedInvocation{entry: entry}, nil
}

// inputKey canonicalizes a binding for use as a map key. Built with
// direct writes rather than Fprintf: this runs on every Invoke through
// the Share and Cache layers, and the formatter's reflection would
// allocate per path.
func inputKey(in Input) string {
	paths := make([]string, 0, len(in))
	for p := range in {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		b.WriteString(p)
		b.WriteByte('=')
		b.WriteString(in[p].String())
		b.WriteByte(';')
	}
	return b.String()
}

// cacheEntry holds the chunks fetched so far for one binding, plus the
// live upstream invocation used to extend the prefix on demand.
type cacheEntry struct {
	cache    *Cache
	input    Input
	mu       sync.Mutex
	chunks   []Chunk
	done     bool
	upstream Invocation
}

// fetchAt returns chunk i, extending the cached prefix through the
// wrapped service when needed.
func (e *cacheEntry) fetchAt(ctx context.Context, i int) (Chunk, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cached := i < len(e.chunks)
	for i >= len(e.chunks) {
		if e.done {
			return Chunk{}, ErrExhausted
		}
		if e.upstream == nil {
			inv, err := e.cache.inner.Invoke(ctx, e.input)
			if err != nil {
				return Chunk{}, err
			}
			e.upstream = inv
		}
		chunk, err := e.upstream.Fetch(ctx)
		if err == ErrExhausted || (err == nil && len(chunk.Tuples) == 0 && e.cache.inner.Stats().Chunked()) {
			e.done = true
			continue
		}
		if err != nil {
			return Chunk{}, err
		}
		e.cache.misses.Add(1)
		e.chunks = append(e.chunks, chunk)
		if !e.cache.inner.Stats().Chunked() {
			e.done = true
		}
	}
	if cached {
		e.cache.hits.Add(1)
	}
	return e.chunks[i], nil
}

type cachedInvocation struct {
	entry *cacheEntry
	next  int
}

// Fetch implements Invocation.
func (ci *cachedInvocation) Fetch(ctx context.Context) (Chunk, error) {
	if err := ctx.Err(); err != nil {
		return Chunk{}, err
	}
	chunk, err := ci.entry.fetchAt(ctx, ci.next)
	if err != nil {
		return Chunk{}, err
	}
	ci.next++
	return chunk, nil
}
