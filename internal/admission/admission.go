// Package admission implements the serving layer's overload control: a
// per-tenant token-bucket quota plus a global concurrency gate, combined
// into explicit load-shedding tiers. Every decision is a pure function of
// the controller state and the injected clock, so a virtual-clock harness
// (cmd/loadgen, the serving tests) replays identical traffic into
// identical decisions, bit for bit.
//
// The tiers, in order of degradation:
//
//	Admit   — quota and capacity both hold: the query runs with the full
//	          remaining deadline as its execution budget.
//	Degrade — the system is saturating (occupancy past the degrade
//	          threshold, or the request already queued away part of its
//	          deadline): the query is admitted with a reduced budget, so
//	          the engine returns a certified partial top-k instead of
//	          holding a slot for the full run.
//	Reject  — the tenant's bucket is empty, the gate is full, or too
//	          little of the deadline is left to produce anything: the
//	          request is refused with a retry-after hint. Rejection is
//	          cheap by design — no engine work happens at all.
package admission

import (
	"fmt"
	"sync"
	"time"

	"seco/internal/obs"
)

// Clock is the time source decisions are made on. engine.Clock satisfies
// it; the serving layer passes its engine's clock so admission, budget
// expiry and hedging all share one timeline.
type Clock interface {
	Now() time.Time
}

// Tier is the admission decision class.
type Tier int

const (
	// TierAdmit runs the query with the full remaining deadline.
	TierAdmit Tier = iota
	// TierDegrade runs the query with a reduced budget (certified
	// partial top-k under engine Degrade mode).
	TierDegrade
	// TierReject refuses the query with a retry-after hint.
	TierReject
)

// String names the tier for reports and metrics.
func (t Tier) String() string {
	switch t {
	case TierAdmit:
		return "admit"
	case TierDegrade:
		return "degrade"
	case TierReject:
		return "reject"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Config tunes a Controller. The zero value selects the defaults noted
// per field.
type Config struct {
	// Capacity is the global concurrency gate: the maximum number of
	// queries in flight at once (default 64).
	Capacity int
	// DegradeAt is the occupancy share at which admission drops to the
	// degrade tier (default 0.75): past it, new queries run with reduced
	// budgets so the saturated engine sheds work instead of queueing it.
	DegradeAt float64
	// DegradeFactor scales the remaining deadline into the reduced budget
	// of a degraded admit (default 0.5).
	DegradeFactor float64
	// TenantRate is each tenant's sustained admission rate in requests
	// per second (default 50).
	TenantRate float64
	// TenantBurst is each tenant's bucket capacity (default 2×rate).
	TenantBurst float64
	// QueueShare is the fraction of the deadline a request may spend
	// queued before admission drops to the degrade tier (default 0.25):
	// an open-loop backlog eats deadlines linearly, and shedding must
	// start before they are gone, not after.
	QueueShare float64
	// MinBudget is the smallest execution budget worth admitting
	// (default 5ms): when shedding would cut the budget below it, the
	// request is rejected instead — an admitted query that cannot
	// produce anything is worse than an honest rejection.
	MinBudget time.Duration
	// DefaultDeadline is assumed for requests that carry none
	// (default 1s).
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadline (default 10s).
	MaxDeadline time.Duration
	// Metrics, when non-nil, receives the seco.admission.* instruments.
	Metrics *obs.Registry
}

func (c Config) capacity() int { return defInt(c.Capacity, 64) }

func (c Config) degradeAt() float64 { return defFloat(c.DegradeAt, 0.75) }

func (c Config) degradeFactor() float64 { return defFloat(c.DegradeFactor, 0.5) }

func (c Config) tenantRate() float64 { return defFloat(c.TenantRate, 50) }

func (c Config) tenantBurst() float64 { return defFloat(c.TenantBurst, 2*c.tenantRate()) }

func (c Config) queueShare() float64 { return defFloat(c.QueueShare, 0.25) }

func (c Config) minBudget() time.Duration { return defDur(c.MinBudget, 5*time.Millisecond) }

func (c Config) defaultDeadline() time.Duration { return defDur(c.DefaultDeadline, time.Second) }

func (c Config) maxDeadline() time.Duration { return defDur(c.MaxDeadline, 10*time.Second) }

func defInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func defFloat(v, d float64) float64 {
	if v > 0 {
		return v
	}
	return d
}

func defDur(v, d time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return d
}

// Request describes one query at its admission point.
type Request struct {
	// Tenant identifies the quota bucket ("" falls into a shared
	// anonymous bucket).
	Tenant string
	// Deadline is how much time the client gives the whole request
	// (0 = Config.DefaultDeadline; capped at Config.MaxDeadline).
	Deadline time.Duration
	// Queued is how long the request waited before reaching admission —
	// the ingress lag an open-loop driver measures as now−arrival. It is
	// already-spent deadline: the budget of an admitted query is
	// Deadline−Queued.
	Queued time.Duration
}

// Decision is the admission outcome.
type Decision struct {
	// Tier classifies the outcome.
	Tier Tier
	// Budget is the execution budget of an admitted query (Admit and
	// Degrade tiers).
	Budget time.Duration
	// RetryAfter hints when a rejected request is worth retrying.
	RetryAfter time.Duration
	// Reason is a low-cardinality label for the decision ("ok",
	// "occupancy", "queued", "tenant-quota", "capacity", "deadline").
	Reason string
}

// Controller makes admission decisions. Safe for concurrent use; under a
// serial deterministic driver every decision is reproducible.
type Controller struct {
	cfg   Config
	clock Clock

	mu       sync.Mutex
	inflight int
	tenants  map[string]*bucket

	mAdmit    *obs.Counter
	mDegrade  *obs.Counter
	mReject   map[string]*obs.Counter
	gInflight *obs.Gauge
}

// bucket is one tenant's token bucket; refills lazily from the clock.
type bucket struct {
	level float64
	last  time.Time
}

// NewController builds a controller over the clock.
func NewController(cfg Config, clock Clock) *Controller {
	c := &Controller{cfg: cfg, clock: clock, tenants: map[string]*bucket{}}
	if reg := cfg.Metrics; reg != nil {
		c.mAdmit = reg.Counter("seco.admission.admitted")
		c.mDegrade = reg.Counter("seco.admission.degraded")
		c.mReject = map[string]*obs.Counter{
			"tenant-quota": reg.Counter("seco.admission.rejected.tenant-quota"),
			"capacity":     reg.Counter("seco.admission.rejected.capacity"),
			"deadline":     reg.Counter("seco.admission.rejected.deadline"),
		}
		c.gInflight = reg.Gauge("seco.admission.inflight")
	}
	return c
}

// Inflight reports the current occupancy of the concurrency gate.
func (c *Controller) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Admit decides one request. For admitted requests (Admit and Degrade
// tiers) the returned release must be called exactly once when the query
// finishes — it frees the concurrency slot. For rejections release is a
// no-op (but still safe to call), so callers can defer it uniformly.
func (c *Controller) Admit(req Request) (Decision, func()) {
	deadline := req.Deadline
	if deadline <= 0 {
		deadline = c.cfg.defaultDeadline()
	}
	if max := c.cfg.maxDeadline(); deadline > max {
		deadline = max
	}
	queued := req.Queued
	if queued < 0 {
		queued = 0
	}
	now := c.clock.Now()

	c.mu.Lock()
	defer c.mu.Unlock()

	// Deadline already spent in the queue: the client is no longer
	// waiting for an answer worth computing.
	remaining := deadline - queued
	if remaining <= 0 {
		return c.reject("deadline", deadline/2)
	}
	// Tenant quota: one token per admitted request, refilled at the
	// configured rate on this controller's clock.
	b := c.bucketFor(req.Tenant, now)
	if b.level < 1 {
		wait := time.Duration((1 - b.level) / c.cfg.tenantRate() * float64(time.Second))
		return c.reject("tenant-quota", wait)
	}
	// Global concurrency gate.
	capacity := c.cfg.capacity()
	if c.inflight >= capacity {
		return c.reject("capacity", remaining/2)
	}

	b.level--
	c.inflight++
	c.gInflight.Set(int64(c.inflight))
	release := c.releaseFunc()

	// Shedding tier: saturating occupancy or queue-eaten deadline means
	// the query runs, but with a reduced budget so it returns a certified
	// partial quickly instead of occupying the slot for a full run.
	occupancy := float64(c.inflight) / float64(capacity)
	reason := "ok"
	budget := remaining
	switch {
	case occupancy >= c.cfg.degradeAt():
		reason = "occupancy"
	case float64(queued) >= c.cfg.queueShare()*float64(deadline):
		reason = "queued"
	}
	if reason != "ok" {
		budget = time.Duration(float64(remaining) * c.cfg.degradeFactor())
		if budget < c.cfg.minBudget() {
			// Not enough deadline left to produce anything: undo the
			// admission and refuse honestly.
			b.level++
			c.inflight--
			c.gInflight.Set(int64(c.inflight))
			return c.reject("deadline", deadline/2)
		}
		c.mDegrade.Add(1)
		return Decision{Tier: TierDegrade, Budget: budget, Reason: reason}, release
	}
	c.mAdmit.Add(1)
	return Decision{Tier: TierAdmit, Budget: budget, Reason: reason}, release
}

// reject builds a rejection decision; called with c.mu held.
func (c *Controller) reject(reason string, retryAfter time.Duration) (Decision, func()) {
	if retryAfter < time.Millisecond {
		retryAfter = time.Millisecond
	}
	if m := c.mReject[reason]; m != nil {
		m.Add(1)
	}
	return Decision{Tier: TierReject, RetryAfter: retryAfter, Reason: reason}, func() {}
}

// releaseFunc returns the once-only slot release; called with c.mu held.
func (c *Controller) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.inflight--
			c.gInflight.Set(int64(c.inflight))
		})
	}
}

// bucketFor returns the tenant's bucket refilled to now; called with
// c.mu held.
func (c *Controller) bucketFor(tenant string, now time.Time) *bucket {
	b, ok := c.tenants[tenant]
	if !ok {
		b = &bucket{level: c.cfg.tenantBurst(), last: now}
		c.tenants[tenant] = b
		return b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.level += dt.Seconds() * c.cfg.tenantRate()
		if burst := c.cfg.tenantBurst(); b.level > burst {
			b.level = burst
		}
	}
	b.last = now
	return b
}
