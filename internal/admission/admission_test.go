package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seco/internal/obs"
)

// fakeClock is a hand-advanced Clock for deterministic tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestAdmitFullBudget(t *testing.T) {
	ctl := NewController(Config{}, &fakeClock{})
	dec, release := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
	defer release()
	if dec.Tier != TierAdmit {
		t.Fatalf("tier %v, want admit (%s)", dec.Tier, dec.Reason)
	}
	if dec.Budget != time.Second {
		t.Fatalf("budget %v, want full deadline", dec.Budget)
	}
	if got := ctl.Inflight(); got != 1 {
		t.Fatalf("inflight %d, want 1", got)
	}
	release()
	release() // release is once-only and idempotent
	if got := ctl.Inflight(); got != 0 {
		t.Fatalf("inflight after release %d, want 0", got)
	}
}

func TestDeadlineDefaultsAndCap(t *testing.T) {
	ctl := NewController(Config{DefaultDeadline: 300 * time.Millisecond, MaxDeadline: time.Second}, &fakeClock{})
	dec, release := ctl.Admit(Request{Tenant: "a"})
	release()
	if dec.Budget != 300*time.Millisecond {
		t.Fatalf("default deadline budget %v, want 300ms", dec.Budget)
	}
	dec, release = ctl.Admit(Request{Tenant: "a", Deadline: time.Minute})
	release()
	if dec.Budget != time.Second {
		t.Fatalf("capped deadline budget %v, want 1s", dec.Budget)
	}
}

func TestConcurrencyGate(t *testing.T) {
	ctl := NewController(Config{Capacity: 2, DegradeAt: 0.99, TenantRate: 1000, TenantBurst: 1000}, &fakeClock{})
	_, r1 := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
	_, r2 := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
	dec, r3 := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
	r3()
	if dec.Tier != TierReject || dec.Reason != "capacity" {
		t.Fatalf("full gate decided %v/%s, want reject/capacity", dec.Tier, dec.Reason)
	}
	if dec.RetryAfter <= 0 {
		t.Fatalf("rejection carries no retry-after")
	}
	r1()
	dec, r4 := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
	if dec.Tier == TierReject {
		t.Fatalf("released slot not reusable: %v/%s", dec.Tier, dec.Reason)
	}
	r4()
	r2()
}

func TestOccupancyDegradeTier(t *testing.T) {
	ctl := NewController(Config{Capacity: 4, DegradeAt: 0.5, DegradeFactor: 0.5,
		TenantRate: 1000, TenantBurst: 1000}, &fakeClock{})
	var releases []func()
	var tiers []Tier
	for i := 0; i < 4; i++ {
		dec, release := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
		releases = append(releases, release)
		tiers = append(tiers, dec.Tier)
		if dec.Tier == TierDegrade && dec.Budget != 500*time.Millisecond {
			t.Fatalf("degraded budget %v, want 500ms", dec.Budget)
		}
	}
	want := []Tier{TierAdmit, TierDegrade, TierDegrade, TierDegrade}
	for i := range want {
		if tiers[i] != want[i] {
			t.Fatalf("admission %d: tier %v, want %v (all: %v)", i, tiers[i], want[i], tiers)
		}
	}
	for _, r := range releases {
		r()
	}
}

func TestQueuedDegradeAndReject(t *testing.T) {
	ctl := NewController(Config{QueueShare: 0.25, DegradeFactor: 0.5, MinBudget: 5 * time.Millisecond}, &fakeClock{})
	// Queued past the share of the deadline: degrade with half the rest.
	dec, release := ctl.Admit(Request{Tenant: "a", Deadline: time.Second, Queued: 400 * time.Millisecond})
	release()
	if dec.Tier != TierDegrade || dec.Reason != "queued" {
		t.Fatalf("queued request decided %v/%s, want degrade/queued", dec.Tier, dec.Reason)
	}
	if dec.Budget != 300*time.Millisecond {
		t.Fatalf("queued budget %v, want (1s-400ms)/2", dec.Budget)
	}
	// Queued past the whole deadline: reject.
	dec, release = ctl.Admit(Request{Tenant: "a", Deadline: time.Second, Queued: time.Second})
	release()
	if dec.Tier != TierReject || dec.Reason != "deadline" {
		t.Fatalf("expired request decided %v/%s, want reject/deadline", dec.Tier, dec.Reason)
	}
	// Queued so deep the degraded budget falls under MinBudget: reject,
	// and the undo must leave no slot leaked.
	dec, release = ctl.Admit(Request{Tenant: "a", Deadline: time.Second, Queued: 995 * time.Millisecond})
	release()
	if dec.Tier != TierReject {
		t.Fatalf("sub-minimum budget decided %v/%s, want reject", dec.Tier, dec.Reason)
	}
	if got := ctl.Inflight(); got != 0 {
		t.Fatalf("inflight %d after rejections, want 0", got)
	}
}

func TestTenantTokenBucket(t *testing.T) {
	clk := &fakeClock{}
	ctl := NewController(Config{TenantRate: 10, TenantBurst: 2}, clk)
	// Burst of 2, then empty.
	for i := 0; i < 2; i++ {
		dec, release := ctl.Admit(Request{Tenant: "hot", Deadline: time.Second})
		release()
		if dec.Tier == TierReject {
			t.Fatalf("burst admission %d rejected: %s", i, dec.Reason)
		}
	}
	dec, release := ctl.Admit(Request{Tenant: "hot", Deadline: time.Second})
	release()
	if dec.Tier != TierReject || dec.Reason != "tenant-quota" {
		t.Fatalf("empty bucket decided %v/%s, want reject/tenant-quota", dec.Tier, dec.Reason)
	}
	if dec.RetryAfter <= 0 || dec.RetryAfter > 150*time.Millisecond {
		t.Fatalf("retry-after %v, want ~100ms (1 token at 10/s)", dec.RetryAfter)
	}
	// Another tenant is unaffected.
	dec, release = ctl.Admit(Request{Tenant: "cold", Deadline: time.Second})
	release()
	if dec.Tier == TierReject {
		t.Fatalf("independent tenant rejected: %s", dec.Reason)
	}
	// Refill at 10/s: after 100ms one token is back.
	clk.advance(100 * time.Millisecond)
	dec, release = ctl.Admit(Request{Tenant: "hot", Deadline: time.Second})
	release()
	if dec.Tier == TierReject {
		t.Fatalf("refilled bucket still rejecting: %s", dec.Reason)
	}
}

func TestDecisionsDeterministic(t *testing.T) {
	script := func() []string {
		clk := &fakeClock{}
		ctl := NewController(Config{Capacity: 3, DegradeAt: 0.6, TenantRate: 5, TenantBurst: 3}, clk)
		var out []string
		var releases []func()
		for i := 0; i < 30; i++ {
			clk.advance(50 * time.Millisecond)
			tenant := fmt.Sprintf("t%d", i%2)
			dec, release := ctl.Admit(Request{Tenant: tenant, Deadline: time.Second,
				Queued: time.Duration(i%5) * 100 * time.Millisecond})
			releases = append(releases, release)
			out = append(out, fmt.Sprintf("%s/%s/%v/%v", dec.Tier, dec.Reason, dec.Budget, dec.RetryAfter))
			if i%3 == 2 {
				for _, r := range releases {
					r()
				}
				releases = releases[:0]
			}
		}
		return out
	}
	a, b := script(), script()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical replays:\n a: %s\n b: %s", i, a[i], b[i])
		}
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	clk := &fakeClock{}
	ctl := NewController(Config{Capacity: 1, DegradeAt: 2, TenantRate: 1, TenantBurst: 1, Metrics: reg}, clk)
	_, r1 := ctl.Admit(Request{Tenant: "a", Deadline: time.Second}) // admit
	dec, r2 := ctl.Admit(Request{Tenant: "b", Deadline: time.Second})
	r2()
	if dec.Reason != "capacity" {
		t.Fatalf("second admit: %s, want capacity rejection", dec.Reason)
	}
	r1()
	dec, r3 := ctl.Admit(Request{Tenant: "a", Deadline: time.Second})
	r3()
	if dec.Reason != "tenant-quota" {
		t.Fatalf("drained tenant: %s, want tenant-quota rejection", dec.Reason)
	}
	if got := reg.Counter("seco.admission.admitted").Value(); got != 1 {
		t.Errorf("admitted counter %d, want 1", got)
	}
	if got := reg.Counter("seco.admission.rejected.capacity").Value(); got != 1 {
		t.Errorf("capacity rejections %d, want 1", got)
	}
	if got := reg.Counter("seco.admission.rejected.tenant-quota").Value(); got != 1 {
		t.Errorf("tenant-quota rejections %d, want 1", got)
	}
	if got := reg.Gauge("seco.admission.inflight").Value(); got != 0 {
		t.Errorf("inflight gauge %d, want 0", got)
	}
}

func TestConcurrentAdmissionsRace(t *testing.T) {
	clk := &fakeClock{}
	ctl := NewController(Config{Capacity: 8, TenantRate: 1e6, TenantBurst: 1e6}, clk)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dec, release := ctl.Admit(Request{Tenant: fmt.Sprintf("t%d", w%3), Deadline: time.Second})
				if dec.Tier != TierReject && dec.Budget <= 0 {
					t.Errorf("admitted with non-positive budget %v", dec.Budget)
				}
				release()
			}
		}(w)
	}
	wg.Wait()
	if got := ctl.Inflight(); got != 0 {
		t.Fatalf("inflight %d after all releases, want 0", got)
	}
}
