package join

import (
	"testing"
)

// linearRanker builds a ranker whose chunk representatives decay linearly.
func linearRanker(nx, ny int) TileRanker {
	tx := make([]float64, nx)
	ty := make([]float64, ny)
	for i := range tx {
		tx[i] = 1 - float64(i)/float64(nx)
	}
	for i := range ty {
		ty[i] = 1 - float64(i)/float64(ny)
	}
	return TileRanker{TopX: tx, TopY: ty}
}

// stepRanker: first h chunks high, rest near zero — the Section 4.1 step
// class.
func stepRanker(nx, ny, h int) TileRanker {
	tx := make([]float64, nx)
	ty := make([]float64, ny)
	for i := range tx {
		if i < h {
			tx[i] = 1
		} else {
			tx[i] = 0.01
		}
	}
	for i := range ty {
		ty[i] = 1 - float64(i)/float64(ny)
	}
	return TileRanker{TopX: tx, TopY: ty}
}

func TestRankerOutOfRangeIsZero(t *testing.T) {
	r := linearRanker(2, 2)
	if r.Rank(Tile{5, 0}) != 0 || r.Rank(Tile{0, 5}) != 0 {
		t.Error("out-of-range rank not zero")
	}
}

// The chapter: merge-scan + triangular approximates an extraction-optimal
// strategy. With symmetric linear rankings observed by the explorer, the
// emitted tile sequence must be rank-sorted (locally extraction-optimal
// relative to the admitted tiles). The approximation error of the
// triangular boundary lives entirely in *deferred* tiles: product-rank
// contours are hyperbolas while the admission boundary is a line, so a
// deferred corner tile can out-rank an admitted edge tile — that is the
// gap the chapter concedes by saying "approximates".
func TestMergeScanTriangularLocallyOptimal(t *testing.T) {
	r := linearRanker(6, 6)
	evs, err := TraceRanked(Strategy{Invocation: MergeScan, Completion: Triangular}, 6, 6, r.Rank)
	if err != nil {
		t.Fatal(err)
	}
	if !IsRankSorted(CollectTiles(evs), r) {
		t.Error("merge-scan/triangular emission not rank-sorted")
	}
}

// Without observed rankings the geometric diagonal order is only an
// approximation: inversions within an anti-diagonal are possible but the
// emission never regresses by more than one diagonal.
func TestTriangularGeometricApproximation(t *testing.T) {
	r := linearRanker(6, 6)
	evs := mustTrace(t, Strategy{Invocation: MergeScan, Completion: Triangular}, 6, 6)
	tiles := CollectTiles(evs)
	total := len(tiles) * (len(tiles) - 1) / 2
	if inv := Inversions(tiles, r); inv > total/10 {
		t.Errorf("geometric order has %d/%d inversions; approximation too loose", inv, total)
	}
}

// The chapter: rectangular completion is locally extraction-optimal.
func TestRectangularLocallyOptimalUnderStep(t *testing.T) {
	evs := mustTrace(t, Strategy{Invocation: NestedLoop, Completion: Rectangular, H: 2}, 2, 6)
	r := stepRanker(2, 6, 2)
	if !IsLocallyOptimal(evs, r) {
		t.Error("nested-loop/rectangular not locally optimal under its step ranking")
	}
}

// The chapter: with a step that drops from 1 to ~0 exactly at the h-th
// chunk, nested loop + rectangular is globally extraction-optimal over the
// explored region.
func TestNestedLoopGloballyOptimalOnSharpStep(t *testing.T) {
	h := 3
	evs := mustTrace(t, Strategy{Invocation: NestedLoop, Completion: Rectangular, H: h}, h, 4)
	tiles := CollectTiles(evs)
	r := stepRanker(h, 4, h)
	if !IsGloballyOptimal(tiles, r, h, 4) {
		t.Error("nested-loop not globally optimal on a sharp step")
	}
}

// Merge-scan with rectangular completion is NOT rank-sorted in general:
// growing squares emit the far corner of each square too early.
func TestMergeScanRectangularHasInversions(t *testing.T) {
	evs := mustTrace(t, Strategy{Invocation: MergeScan, Completion: Rectangular}, 6, 6)
	tiles := CollectTiles(evs)
	r := linearRanker(6, 6)
	if inv := Inversions(tiles, r); inv == 0 {
		t.Error("expected inversions from rectangular squares, got a perfect order")
	}
	// ... while the rank-aware triangular variant has none under
	// symmetric decay.
	evs, err := TraceRanked(Strategy{Invocation: MergeScan, Completion: Triangular}, 6, 6, r.Rank)
	if err != nil {
		t.Fatal(err)
	}
	tiles = CollectTiles(evs)
	if inv := Inversions(tiles, r); inv != 0 {
		t.Errorf("triangular emission has %d inversions, want 0", inv)
	}
}

func TestIsRankSorted(t *testing.T) {
	r := linearRanker(3, 3)
	sorted := []Tile{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if !IsRankSorted(sorted, r) {
		t.Error("diagonal order reported unsorted")
	}
	unsorted := []Tile{{2, 2}, {0, 0}}
	if IsRankSorted(unsorted, r) {
		t.Error("inverted order reported sorted")
	}
}

func TestInversionsCounts(t *testing.T) {
	r := linearRanker(3, 3)
	if got := Inversions([]Tile{{2, 2}, {0, 0}, {1, 1}}, r); got != 2 {
		t.Errorf("Inversions = %d, want 2", got)
	}
	if got := Inversions(nil, r); got != 0 {
		t.Errorf("Inversions(nil) = %d", got)
	}
}

func TestIsGloballyOptimalDetectsMissingBetterTile(t *testing.T) {
	r := linearRanker(3, 3)
	// Emitting only the worst tile while better ones exist is not global.
	if IsGloballyOptimal([]Tile{{2, 2}}, r, 3, 3) {
		t.Error("global optimality with unemitted better tiles")
	}
	// Emitting the best prefix is.
	if !IsGloballyOptimal([]Tile{{0, 0}}, r, 1, 1) {
		t.Error("single-tile space not optimal")
	}
}

func TestIsLocallyOptimalDetectsSkip(t *testing.T) {
	r := linearRanker(2, 2)
	evs := []Event{
		{Kind: EventFetch, Side: SideX},
		{Kind: EventFetch, Side: SideY},
		{Kind: EventFetch, Side: SideX},
		{Kind: EventFetch, Side: SideY},
		{Kind: EventTile, Tile: Tile{1, 1}}, // skips the better (0,0)
	}
	if IsLocallyOptimal(evs, r) {
		t.Error("skipping the best available tile reported locally optimal")
	}
}
