package join

import (
	"testing"

	"seco/internal/mart"
	"seco/internal/types"
)

// The Q2 example of Section 3.1: S1 and S2 expose repeating group R with
// sub-attributes A and B; the join S1.R.A=S2.R.A and S1.R.B=S2.R.B must be
// satisfied by a single sub-tuple on each side.
func q2Tuples() (t1, t2, t3, t4 *types.Tuple) {
	mk := func(subs ...[2]types.Value) *types.Tuple {
		t := types.NewTuple(1)
		for _, s := range subs {
			t.AddGroup("R", types.SubTuple{"A": s[0], "B": s[1]})
		}
		return t
	}
	t1 = mk([2]types.Value{types.Int(1), types.String("x")}, [2]types.Value{types.Int(2), types.String("x")})
	t2 = mk([2]types.Value{types.Int(2), types.String("x")}, [2]types.Value{types.Int(1), types.String("y")})
	t3 = mk([2]types.Value{types.Int(1), types.String("x")}, [2]types.Value{types.Int(2), types.String("y")})
	t4 = mk([2]types.Value{types.Int(2), types.String("x")})
	return
}

func q2Predicate() Predicate {
	return Predicate{Conds: []Condition{
		{Left: "R.A", Op: types.OpEq, Right: "R.A"},
		{Left: "R.B", Op: types.OpEq, Right: "R.B"},
	}}
}

// The chapter states Q2's result is {t1·t3, t1·t4, t2·t4}; in particular
// t2·t3 is excluded because its matching sub-attribute values live in
// different sub-tuples.
func TestPredicateRepeatingGroupSemantics(t *testing.T) {
	t1, t2, t3, t4 := q2Tuples()
	p := q2Predicate()
	cases := []struct {
		name string
		x, y *types.Tuple
		want bool
	}{
		{"t1·t3", t1, t3, true},
		{"t1·t4", t1, t4, true},
		{"t2·t4", t2, t4, true},
		{"t2·t3", t2, t3, false},
	}
	for _, c := range cases {
		got, err := p.Match(c.x, c.y)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPredicateAtomicPaths(t *testing.T) {
	x := types.NewTuple(1)
	x.Set("Title", types.String("Casablanca"))
	y := types.NewTuple(1)
	y.AddGroup("Movies", types.SubTuple{"Title": types.String("Casablanca")})
	p := Predicate{Conds: []Condition{{Left: "Title", Op: types.OpEq, Right: "Movies.Title"}}}
	ok, err := p.Match(x, y)
	if err != nil || !ok {
		t.Errorf("Match = %v, %v", ok, err)
	}
	y2 := types.NewTuple(1)
	y2.AddGroup("Movies", types.SubTuple{"Title": types.String("Other")})
	ok, err = p.Match(x, y2)
	if err != nil || ok {
		t.Errorf("non-matching Match = %v, %v", ok, err)
	}
}

func TestPredicateEmptyGroupNeverMatches(t *testing.T) {
	x := types.NewTuple(1) // no R group at all
	y := types.NewTuple(1)
	y.AddGroup("R", types.SubTuple{"A": types.Int(1), "B": types.String("x")})
	ok, err := q2Predicate().Match(x, y)
	if err != nil || ok {
		t.Errorf("Match with empty group = %v, %v", ok, err)
	}
}

func TestPredicateEmptyConjunctionIsTrue(t *testing.T) {
	ok, err := (Predicate{}).Match(types.NewTuple(1), types.NewTuple(1))
	if err != nil || !ok {
		t.Errorf("empty predicate = %v, %v", ok, err)
	}
}

func TestPredicateRangeOp(t *testing.T) {
	x := types.NewTuple(1)
	x.Set("Price", types.Float(50))
	y := types.NewTuple(1)
	y.Set("Budget", types.Float(100))
	p := Predicate{Conds: []Condition{{Left: "Price", Op: types.OpLe, Right: "Budget"}}}
	ok, err := p.Match(x, y)
	if err != nil || !ok {
		t.Errorf("Match = %v, %v", ok, err)
	}
}

func TestPredicateTypeErrorSurfaces(t *testing.T) {
	x := types.NewTuple(1)
	x.Set("A", types.String("s"))
	y := types.NewTuple(1)
	y.Set("B", types.Int(1))
	p := Predicate{Conds: []Condition{{Left: "A", Op: types.OpLt, Right: "B"}}}
	if _, err := p.Match(x, y); err == nil {
		t.Error("type mismatch did not error")
	}
}

func TestFromPattern(t *testing.T) {
	m1 := &mart.Mart{Name: "Theatre", Attributes: []mart.Attribute{
		{Name: "TAddress", Kind: types.KindString},
		{Name: "TCity", Kind: types.KindString},
	}}
	m2 := &mart.Mart{Name: "Restaurant", Attributes: []mart.Attribute{
		{Name: "UAddress", Kind: types.KindString},
		{Name: "UCity", Kind: types.KindString},
	}}
	cp := &mart.ConnectionPattern{
		Name: "DinnerPlace", From: m1, To: m2,
		Joins: []mart.Join{
			{From: "TAddress", To: "UAddress"},
			{From: "TCity", To: "UCity"},
		},
		Selectivity: 0.4,
	}
	p := FromPattern(cp)
	if len(p.Conds) != 2 || p.Conds[0].Op != types.OpEq {
		t.Fatalf("FromPattern = %+v", p)
	}
	if got := p.String(); got != "TAddress = UAddress and TCity = UCity" {
		t.Errorf("String = %q", got)
	}
}

func TestPredicateMixedGroupsBothSides(t *testing.T) {
	// Conditions on two different groups of the same tuple must each find
	// their own sub-tuple, independently.
	x := types.NewTuple(1)
	x.AddGroup("G1", types.SubTuple{"A": types.Int(1)})
	x.AddGroup("G1", types.SubTuple{"A": types.Int(2)})
	x.AddGroup("G2", types.SubTuple{"B": types.String("u")})
	y := types.NewTuple(1)
	y.Set("A", types.Int(2)).Set("B", types.String("u"))
	p := Predicate{Conds: []Condition{
		{Left: "G1.A", Op: types.OpEq, Right: "A"},
		{Left: "G2.B", Op: types.OpEq, Right: "B"},
	}}
	ok, err := p.Match(x, y)
	if err != nil || !ok {
		t.Errorf("Match = %v, %v", ok, err)
	}
}
