package join

// This file implements the extraction-optimality notions of Section 4.1.
// A join strategy is extraction-optimal if it produces results in
// decreasing order of the rank product ρX·ρY. The notion extends to tiles
// by taking the ranking of the first tuple of each chunk as the tile's
// representative, and comes in a global sense (relative to all tiles of
// the search space) and a local sense (relative to the tiles already
// available when each extraction happens).

// TileRanker supplies the representative rank of each chunk: the score of
// its first (best) tuple.
type TileRanker struct {
	// TopX[i] is the representative score of chunk i of service X;
	// likewise TopY for Y. Both must be non-increasing.
	TopX, TopY []float64
}

// Rank returns the representative rank product of a tile.
func (r TileRanker) Rank(t Tile) float64 {
	if t.X >= len(r.TopX) || t.Y >= len(r.TopY) {
		return 0
	}
	return r.TopX[t.X] * r.TopY[t.Y]
}

// IsGloballyOptimal reports whether the tile emission order is
// extraction-optimal in the global sense: every emitted tile has a rank at
// least as high as every tile emitted after it AND at least as high as
// every tile of the full gridX×gridY space that was never emitted.
func IsGloballyOptimal(order []Tile, r TileRanker, gridX, gridY int) bool {
	if !IsRankSorted(order, r) {
		return false
	}
	emitted := make(map[Tile]bool, len(order))
	minEmitted := 1.0
	for _, t := range order {
		emitted[t] = true
		if v := r.Rank(t); v < minEmitted {
			minEmitted = v
		}
	}
	if len(order) == 0 {
		minEmitted = 0
	}
	for x := 0; x < gridX; x++ {
		for y := 0; y < gridY; y++ {
			t := Tile{X: x, Y: y}
			if !emitted[t] && r.Rank(t) > minEmitted {
				return false
			}
		}
	}
	return true
}

// IsLocallyOptimal reports whether the event stream is extraction-optimal
// in the local sense: whenever a tile is processed, no other available
// (fetched on both sides) and still unprocessed tile has a strictly higher
// representative rank.
func IsLocallyOptimal(events []Event, r TileRanker) bool {
	nx, ny := 0, 0
	processed := make(map[Tile]bool)
	for _, ev := range events {
		switch ev.Kind {
		case EventFetch:
			if ev.Side == SideX {
				nx++
			} else {
				ny++
			}
		case EventTile:
			rank := r.Rank(ev.Tile)
			for x := 0; x < nx; x++ {
				for y := 0; y < ny; y++ {
					t := Tile{X: x, Y: y}
					if !processed[t] && r.Rank(t) > rank {
						return false
					}
				}
			}
			processed[ev.Tile] = true
		}
	}
	return true
}

// IsRankSorted reports whether the tile order has non-increasing
// representative ranks.
func IsRankSorted(order []Tile, r TileRanker) bool {
	for i := 1; i < len(order); i++ {
		if r.Rank(order[i]) > r.Rank(order[i-1])+1e-12 {
			return false
		}
	}
	return true
}

// Inversions counts the pairs of emitted tiles that are out of rank order:
// the Kendall-tau distance between the emission order and an ideal
// descending-rank order. Zero means extraction-optimal emission.
func Inversions(order []Tile, r TileRanker) int {
	inv := 0
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if r.Rank(order[j]) > r.Rank(order[i])+1e-12 {
				inv++
			}
		}
	}
	return inv
}

// CollectTiles extracts the tile events from an event stream, preserving
// order.
func CollectTiles(events []Event) []Tile {
	var ts []Tile
	for _, ev := range events {
		if ev.Kind == EventTile {
			ts = append(ts, ev.Tile)
		}
	}
	return ts
}

// Trace runs an explorer to completion against idealized services that
// never exhaust within the given limits, returning the full event stream.
// It is the workhorse of the figure-trace tests. Tiles are processed in
// geometric (diagonal) order, as no rankings are observed.
func Trace(s Strategy, limitX, limitY int) ([]Event, error) {
	return TraceRanked(s, limitX, limitY, nil)
}

// TraceRanked is Trace with an observed tile ranker, making the explorer
// process admitted tiles in decreasing representative rank.
func TraceRanked(s Strategy, limitX, limitY int, rank func(Tile) float64) ([]Event, error) {
	ex, err := NewExplorer(s, limitX, limitY)
	if err != nil {
		return nil, err
	}
	if rank != nil {
		ex.SetRanker(rank)
	}
	var evs []Event
	for {
		ev, ok := ex.Next()
		if !ok {
			return evs, nil
		}
		evs = append(evs, ev)
	}
}
