package join

import (
	"context"
	"errors"
	"fmt"

	"seco/internal/service"
	"seco/internal/types"
)

// Binding maps an output path of the upstream (left) tuple to an input
// path of the downstream (right) service: the data-shipping step of a pipe
// join (Section 4.2.1).
type Binding struct {
	// FromPath is read on the left tuple.
	FromPath string
	// ToInput is the input attribute of the right service it feeds.
	ToInput string
}

// PipeStats reports the work of a pipe-join run.
type PipeStats struct {
	// Invocations counts right-service invocations (one per left tuple).
	Invocations int
	// Fetches counts right-service request-responses.
	Fetches int
	// Matches counts emitted pairs.
	Matches int
	// Stopped reports an early stop via ErrStop.
	Stopped bool
}

// Pipe executes a pipe join: for every left tuple it invokes the right
// service with inputs assembled from fixed bindings plus per-tuple piped
// bindings, fetches up to fetches chunks (0 = all) and emits the composed
// pairs. Pipe joins correspond to nested loops with rectangular completion
// (Section 4.5): each left tuple drives the same number of fetches on the
// right service.
//
// The emitted Pair carries the left tuple as X and the right tuple as Y,
// with Tile{X: leftIndex, Y: chunkIndex}.
func Pipe(ctx context.Context, left []*types.Tuple, right service.Service,
	fixed service.Input, bindings []Binding, fetches int, emit EmitFunc) (PipeStats, error) {

	var stats PipeStats
	for li, lt := range left {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		in := fixed.Clone()
		if in == nil {
			in = make(service.Input, len(bindings))
		}
		for _, b := range bindings {
			v := lt.Get(b.FromPath)
			if v.IsNull() {
				return stats, fmt.Errorf("join: pipe binding %s→%s: left tuple has no value", b.FromPath, b.ToInput)
			}
			in[b.ToInput] = v
		}
		inv, err := right.Invoke(ctx, in)
		if err != nil {
			return stats, fmt.Errorf("join: pipe invoking %s: %w", right.Interface().Name, err)
		}
		stats.Invocations++
		for f := 0; fetches <= 0 || f < fetches; f++ {
			chunk, err := inv.Fetch(ctx)
			if errors.Is(err, service.ErrExhausted) {
				break
			}
			if err != nil {
				return stats, fmt.Errorf("join: pipe fetching %s: %w", right.Interface().Name, err)
			}
			stats.Fetches++
			for _, rt := range chunk.Tuples {
				stats.Matches++
				if err := emit(Pair{X: lt, Y: rt, Tile: Tile{X: li, Y: chunk.Index}}); err != nil {
					if errors.Is(err, ErrStop) {
						stats.Stopped = true
						return stats, nil
					}
					return stats, err
				}
			}
			if len(chunk.Tuples) == 0 {
				break
			}
		}
	}
	return stats, nil
}
