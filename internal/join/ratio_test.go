package join

import (
	"testing"
	"testing/quick"
)

func TestRatioFromCosts(t *testing.T) {
	cases := []struct {
		costX, costY float64
		rx, ry       int
	}{
		{1, 1, 1, 1},
		{0.12, 0.08, 2, 3}, // Movie 120ms vs Theatre 80ms: fetch Theatre 3 per 2
		{0.08, 0.12, 3, 2},
		{1, 2, 2, 1}, // Y twice as expensive: fetch X twice as often
		{2, 1, 1, 2},
		{1, 3, 3, 1},
		{0, 5, 1, 1}, // degenerate costs fall back to 1:1
		{5, -1, 1, 1},
	}
	for _, c := range cases {
		rx, ry := RatioFromCosts(c.costX, c.costY, 6)
		if rx != c.rx || ry != c.ry {
			t.Errorf("RatioFromCosts(%v,%v) = %d:%d, want %d:%d",
				c.costX, c.costY, rx, ry, c.rx, c.ry)
		}
	}
}

// The derived ratio always has positive coprime components within the
// bound, and approximates the cost ratio at least as well as 1:1.
func TestRatioFromCostsProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		cx := 0.01 + float64(a)/32
		cy := 0.01 + float64(b)/32
		rx, ry := RatioFromCosts(cx, cy, 6)
		if rx < 1 || ry < 1 || rx > 6 || ry > 6 {
			return false
		}
		if gcd(rx, ry) != 1 {
			return false
		}
		target := cy / cx
		errRatio := absFloat(target - float64(rx)/float64(ry))
		errUnit := absFloat(target - 1)
		return errRatio <= errUnit+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A clock driven by a cost-derived ratio spends call budget inversely to
// cost: with Y twice as expensive, X receives twice the calls.
func TestCostDrivenClock(t *testing.T) {
	rx, ry := RatioFromCosts(1, 2, 6)
	c := NewClock(rx, ry)
	xs, ys := 0, 0
	for i := 0; i < 30; i++ {
		if c.Next() == SideX {
			xs++
		} else {
			ys++
		}
	}
	if xs != 20 || ys != 10 {
		t.Errorf("calls %d:%d, want 20:10", xs, ys)
	}
}
