package join

import (
	"testing"
	"testing/quick"
)

func TestClockAlternatesAtUnitRatio(t *testing.T) {
	c := NewClock(1, 1)
	want := []Side{SideX, SideY, SideX, SideY, SideX, SideY}
	for i, w := range want {
		if got := c.Next(); got != w {
			t.Fatalf("call %d = %v, want %v", i, got, w)
		}
	}
}

func TestClockHonoursRatio(t *testing.T) {
	c := NewClock(3, 5)
	xs, ys := 0, 0
	for i := 0; i < 80; i++ {
		if c.Next() == SideX {
			xs++
		} else {
			ys++
		}
	}
	// 80 calls at ratio 3:5 → 30 X and 50 Y.
	if xs != 30 || ys != 50 {
		t.Errorf("calls %d:%d, want 30:50", xs, ys)
	}
}

func TestClockDefaultsAndAccessors(t *testing.T) {
	c := NewClock(0, -2)
	if rx, ry := c.Ratio(); rx != 1 || ry != 1 {
		t.Errorf("defaults = %d:%d", rx, ry)
	}
	c.Tick(SideX)
	c.Tick(SideY)
	if nx, ny := c.Calls(); nx != 1 || ny != 1 {
		t.Errorf("Calls = %d,%d", nx, ny)
	}
	c.Untick(SideX)
	if nx, _ := c.Calls(); nx != 0 {
		t.Errorf("Untick failed: %d", nx)
	}
	c.Untick(SideX) // no-op below zero
	if nx, _ := c.Calls(); nx != 0 {
		t.Errorf("Untick went negative: %d", nx)
	}
}

func TestClockSetRatio(t *testing.T) {
	c := NewClock(1, 1)
	if err := c.SetRatio(0, 1); err == nil {
		t.Error("invalid ratio accepted")
	}
	// Retune mid-run: after 4 balanced calls switch to 1:3.
	for i := 0; i < 4; i++ {
		c.Next()
	}
	if err := c.SetRatio(1, 3); err != nil {
		t.Fatal(err)
	}
	ys := 0
	for i := 0; i < 8; i++ {
		if c.Next() == SideY {
			ys++
		}
	}
	if ys < 6 {
		t.Errorf("after retuning to 1:3, only %d/8 calls went to Y", ys)
	}
}

// The drift of a regulated clock never exceeds 1: the interleave stays
// within one call of the exact ratio.
func TestClockDriftBoundedProperty(t *testing.T) {
	f := func(rx, ry uint8, steps uint8) bool {
		c := NewClock(int(rx%7)+1, int(ry%7)+1)
		for i := 0; i < int(steps); i++ {
			c.Next()
			if c.Drift() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
