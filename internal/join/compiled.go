package join

import (
	"fmt"
	"sort"
	"strings"

	"seco/internal/types"
)

// CompiledPredicate is a Predicate whose dotted paths have been cut and
// whose repeating-group references have been collected once, ahead of the
// match loop. Match on the compiled form is allocation-free for
// predicates that touch only atomic attributes (the overwhelmingly common
// case for connection patterns) and performs no per-call strings.Cut,
// map building or ref sorting for group predicates.
type CompiledPredicate struct {
	conds []compiledCond
	// refs lists the repeating groups mentioned by the conditions, in the
	// same deterministic (side, group) order the dynamic Match enumerates,
	// so compiled and uncompiled evaluation explore mappings identically.
	refs []groupRef
}

// compiledCond is one condition with both paths pre-cut. For a dotted
// path the ref index selects the matching entry of CompiledPredicate.refs
// so evalUnder can look its chosen sub-tuple up without hashing.
type compiledCond struct {
	src         Condition // original form, for error messages
	op          types.Op
	leftDotted  bool
	leftA       string // atomic attribute (undotted) …
	leftG       string // … or group / sub-attribute (dotted)
	leftS       string
	leftRef     int
	rightDotted bool
	rightA      string
	rightG      string
	rightS      string
	rightRef    int
}

// Compile cuts the predicate's paths and fixes the group-enumeration
// order. The compiled form evaluates exactly like p.Match.
func Compile(p Predicate) *CompiledPredicate {
	cp := &CompiledPredicate{conds: make([]compiledCond, 0, len(p.Conds))}
	refIdx := make(map[groupRef]int)
	addRef := func(s side, group string) int {
		ref := groupRef{side: s, group: group}
		if i, ok := refIdx[ref]; ok {
			return i
		}
		refIdx[ref] = len(cp.refs)
		cp.refs = append(cp.refs, ref)
		return len(cp.refs) - 1
	}
	for _, c := range p.Conds {
		cc := compiledCond{src: c, op: c.Op}
		if g, sub, ok := strings.Cut(c.Left, "."); ok {
			cc.leftDotted, cc.leftG, cc.leftS = true, g, sub
			cc.leftRef = addRef(leftSide, g)
		} else {
			cc.leftA = c.Left
		}
		if g, sub, ok := strings.Cut(c.Right, "."); ok {
			cc.rightDotted, cc.rightG, cc.rightS = true, g, sub
			cc.rightRef = addRef(rightSide, g)
		} else {
			cc.rightA = c.Right
		}
		cp.conds = append(cp.conds, cc)
	}
	// Same enumeration order as the dynamic Match: side, then group name.
	order := make([]int, len(cp.refs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := cp.refs[order[i]], cp.refs[order[j]]
		if a.side != b.side {
			return a.side < b.side
		}
		return a.group < b.group
	})
	sorted := make([]groupRef, len(cp.refs))
	remap := make([]int, len(cp.refs))
	for newI, oldI := range order {
		sorted[newI] = cp.refs[oldI]
		remap[oldI] = newI
	}
	cp.refs = sorted
	for i := range cp.conds {
		if cp.conds[i].leftDotted {
			cp.conds[i].leftRef = remap[cp.conds[i].leftRef]
		}
		if cp.conds[i].rightDotted {
			cp.conds[i].rightRef = remap[cp.conds[i].rightRef]
		}
	}
	return cp
}

// maxStackRefs bounds the group-choice vector kept on the stack; deeper
// predicates fall back to a heap slice.
const maxStackRefs = 8

// Match evaluates the compiled predicate over a pair of tuples with the
// semantics of Predicate.Match: all conditions on the same repeating
// group must be satisfied by one consistent sub-tuple choice.
func (cp *CompiledPredicate) Match(x, y *types.Tuple) (bool, error) {
	if len(cp.conds) == 0 {
		return true, nil
	}
	if len(cp.refs) == 0 {
		// Atomic-only fast path: no mapping to enumerate, no allocation.
		for i := range cp.conds {
			c := &cp.conds[i]
			ok, err := c.op.Eval(x.Atomic(c.leftA), y.Atomic(c.rightA))
			if err != nil {
				return false, fmt.Errorf("join: evaluating %s: %w", c.src, err)
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	var countsArr, choiceArr [maxStackRefs]int
	counts, choice := countsArr[:0], choiceArr[:0]
	if len(cp.refs) > maxStackRefs {
		counts = make([]int, 0, len(cp.refs))
		choice = make([]int, len(cp.refs))
	} else {
		choice = choiceArr[:len(cp.refs)]
	}
	for _, ref := range cp.refs {
		t := x
		if ref.side == rightSide {
			t = y
		}
		n := len(t.Groups[ref.group])
		if n == 0 {
			// An empty referenced group can never satisfy its conditions.
			return false, nil
		}
		counts = append(counts, n)
	}
	return cp.try(x, y, counts, choice, 0)
}

// try enumerates sub-tuple choices for refs[i:] and evaluates the
// conditions under each complete mapping.
func (cp *CompiledPredicate) try(x, y *types.Tuple, counts, choice []int, i int) (bool, error) {
	if i == len(cp.refs) {
		return cp.evalUnder(x, y, choice)
	}
	for k := 0; k < counts[i]; k++ {
		choice[i] = k
		ok, err := cp.try(x, y, counts, choice, i+1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// evalUnder evaluates every condition with the given sub-tuple choices.
func (cp *CompiledPredicate) evalUnder(x, y *types.Tuple, choice []int) (bool, error) {
	for i := range cp.conds {
		c := &cp.conds[i]
		var lv, rv types.Value
		if c.leftDotted {
			lv = groupAt(x, c.leftG, c.leftS, choice[c.leftRef])
		} else {
			lv = x.Atomic(c.leftA)
		}
		if c.rightDotted {
			rv = groupAt(y, c.rightG, c.rightS, choice[c.rightRef])
		} else {
			rv = y.Atomic(c.rightA)
		}
		ok, err := c.op.Eval(lv, rv)
		if err != nil {
			return false, fmt.Errorf("join: evaluating %s: %w", c.src, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// groupAt returns sub-attribute sub of sub-tuple k of the group, Null
// when out of range.
func groupAt(t *types.Tuple, group, sub string, k int) types.Value {
	subs := t.Groups[group]
	if k >= len(subs) {
		return types.Null
	}
	return subs[k][sub]
}

// EqKeyColumns reports the condition paths usable as a hash-join key: the
// pairs (leftPath, rightPath) of every equality condition over atomic
// attributes on both sides. Group-referencing or non-equality conditions
// are excluded — a hash index can only cover the returned columns, with
// residual conditions re-checked by Match.
func (cp *CompiledPredicate) EqKeyColumns() (left, right []string) {
	for i := range cp.conds {
		c := &cp.conds[i]
		if c.op == types.OpEq && !c.leftDotted && !c.rightDotted {
			left = append(left, c.leftA)
			right = append(right, c.rightA)
		}
	}
	return left, right
}

// HasOnlyAtomicEq reports whether every condition is an atomic-attribute
// equality — the case where a hash index fully decides Match and no
// residual evaluation is needed.
func (cp *CompiledPredicate) HasOnlyAtomicEq() bool {
	for i := range cp.conds {
		c := &cp.conds[i]
		if c.op != types.OpEq || c.leftDotted || c.rightDotted {
			return false
		}
	}
	return len(cp.conds) > 0
}
