package join

import (
	"fmt"

	"seco/internal/query"
	"seco/internal/types"
)

// This file defines the legality rules of the third join topology: the
// multi-way ranked join. Pipe and parallel joins accept any compilable
// predicate; the n-ary operator instead intersects per-branch posting
// lists built over interned value handles, so every cross-branch
// predicate must fall into one of two classes the intersection engine
// understands — atomic equality (handle-comparable) or bounded proximity
// (an order comparison verified on the sorted candidate frontier).
// Dotted group paths, and any other operator, make a node illegal for
// the multi-way topology; the optimizer then falls back to binary trees.

// ConditionClass classifies one cross-branch predicate for the
// multi-way join.
type ConditionClass int

const (
	// CondIllegal: the predicate cannot drive a multi-way intersection
	// (dotted group path on either side, or an operator outside the
	// equality/proximity classes).
	CondIllegal ConditionClass = iota
	// CondEquality: an atomic equality over two top-level attribute
	// paths — the posting-list intersection key.
	CondEquality
	// CondProximity: a bounded order comparison (<, <=, >, >=) over two
	// top-level attribute paths — verified per candidate after the
	// equality edges intersect.
	CondProximity
)

// String names the condition class.
func (c ConditionClass) String() string {
	switch c {
	case CondEquality:
		return "equality"
	case CondProximity:
		return "proximity"
	default:
		return "illegal"
	}
}

// atomicPath reports whether a path addresses a top-level attribute (no
// group traversal): only those values are interned as single handles.
func atomicPath(path string) bool {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return false
		}
	}
	return path != ""
}

// ClassifyCondition classifies one predicate for the multi-way join.
// Predicates that do not relate two services are always illegal.
func ClassifyCondition(p query.Predicate) ConditionClass {
	if p.Right.Kind != query.TermPath {
		return CondIllegal
	}
	if !atomicPath(p.Left.Path) || !atomicPath(p.Right.Path.Path) {
		return CondIllegal
	}
	switch p.Op {
	case types.OpEq:
		return CondEquality
	case types.OpLt, types.OpLe, types.OpGt, types.OpGe:
		return CondProximity
	default:
		return CondIllegal
	}
}

// LegalMultiway reports whether a predicate set can drive a multi-way
// ranked join: every predicate must classify as equality or proximity,
// and at least one must be an equality (a join with only proximity edges
// has no posting-list key and would degenerate to a filtered cross
// product). A nil error means legal.
func LegalMultiway(preds []query.Predicate) error {
	if len(preds) == 0 {
		return fmt.Errorf("join: multiway node has no cross-branch predicates")
	}
	eq := 0
	for _, p := range preds {
		switch ClassifyCondition(p) {
		case CondEquality:
			eq++
		case CondProximity:
		default:
			return fmt.Errorf("join: predicate %s is not an atomic equality or bounded proximity", p)
		}
	}
	if eq == 0 {
		return fmt.Errorf("join: multiway node has no equality edge among %d predicates", len(preds))
	}
	return nil
}

// CoverMultiway verifies that every branch of a multi-way join is bound
// by at least one legal cross predicate: branches[i] is the alias set a
// branch contributes, and each must be touched by some predicate whose
// other side lies in a different branch. It returns the indexes of
// unbound branches (empty = fully covered).
func CoverMultiway(branches []map[string]bool, preds []query.Predicate) []int {
	bound := make([]bool, len(branches))
	branchOf := func(alias string) int {
		for i, set := range branches {
			if set[alias] {
				return i
			}
		}
		return -1
	}
	for _, p := range preds {
		if ClassifyCondition(p) == CondIllegal {
			continue
		}
		l := branchOf(p.Left.Alias)
		r := branchOf(p.Right.Path.Alias)
		if l < 0 || r < 0 || l == r {
			continue
		}
		bound[l], bound[r] = true, true
	}
	var unbound []int
	for i, b := range bound {
		if !b {
			unbound = append(unbound, i)
		}
	}
	return unbound
}
