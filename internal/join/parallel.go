package join

import (
	"context"
	"errors"
	"fmt"

	"seco/internal/service"
	"seco/internal/types"
)

// ErrStop is returned by an emit callback to end a join early (typically
// because the k-th result has been produced); executors treat it as a
// clean termination.
var ErrStop = errors.New("join: stop requested")

// Pair is one joined result: the X tuple, the Y tuple and the tile that
// produced them. RankProduct is ρX·ρY, the quantity extraction-optimal
// strategies emit in decreasing order.
type Pair struct {
	X, Y *types.Tuple
	Tile Tile
}

// RankProduct returns the product of the component scores.
func (p Pair) RankProduct() float64 { return p.X.Score * p.Y.Score }

// EmitFunc receives joined pairs; returning ErrStop ends the join early,
// any other error aborts it.
type EmitFunc func(Pair) error

// RunStats reports what a parallel join run actually did.
type RunStats struct {
	// FetchesX and FetchesY count the request-responses per side.
	FetchesX, FetchesY int
	// Tiles counts processed tiles, Comparisons the evaluated pairs and
	// Matches the emitted results.
	Tiles, Comparisons, Matches int
	// Stopped reports whether the emit callback requested an early stop.
	Stopped bool
}

// TotalFetches is the request-response count of the run.
func (rs RunStats) TotalFetches() int { return rs.FetchesX + rs.FetchesY }

// Parallel executes a parallel join between two live invocations following
// the given strategy, emitting matching pairs tile by tile. limitX/limitY
// cap the fetches per side (the plan's fetching factors; 0 = unbounded,
// which requires at least one service to be finite).
func Parallel(ctx context.Context, sx, sy service.Invocation, strat Strategy,
	pred Predicate, limitX, limitY int, emit EmitFunc) (RunStats, error) {

	ex, err := NewExplorer(strat, limitX, limitY)
	if err != nil {
		return RunStats{}, err
	}
	var (
		chunksX, chunksY [][]*types.Tuple
		topX, topY       []float64
		stats            RunStats
	)
	// The representative rank of a tile is the score product of the first
	// tuples of its chunks (Section 4.1); the explorer uses it to process
	// admitted tiles in locally extraction-optimal order.
	ex.SetRanker(func(t Tile) float64 {
		if t.X >= len(topX) || t.Y >= len(topY) {
			return 0
		}
		return topX[t.X] * topY[t.Y]
	})
	fetch := func(side Side) error {
		inv := sx
		if side == SideY {
			inv = sy
		}
		chunk, err := inv.Fetch(ctx)
		if errors.Is(err, service.ErrExhausted) {
			ex.ReportExhausted(side)
			return nil
		}
		if err != nil {
			return fmt.Errorf("join: fetching %s: %w", side, err)
		}
		if len(chunk.Tuples) == 0 {
			// An empty chunk carries no join work and, for unchunked
			// services, signals an empty result; treat as exhaustion.
			ex.ReportExhausted(side)
			return nil
		}
		if side == SideX {
			chunksX = append(chunksX, chunk.Tuples)
			topX = append(topX, chunk.Tuples[0].Score)
			stats.FetchesX++
		} else {
			chunksY = append(chunksY, chunk.Tuples)
			topY = append(topY, chunk.Tuples[0].Score)
			stats.FetchesY++
		}
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		ev, ok := ex.Next()
		if !ok {
			return stats, nil
		}
		switch ev.Kind {
		case EventFetch:
			if err := fetch(ev.Side); err != nil {
				return stats, err
			}
		case EventTile:
			stats.Tiles++
			cx, cy := chunksX[ev.Tile.X], chunksY[ev.Tile.Y]
			for _, xt := range cx {
				for _, yt := range cy {
					stats.Comparisons++
					ok, err := pred.Match(xt, yt)
					if err != nil {
						return stats, err
					}
					if !ok {
						continue
					}
					stats.Matches++
					if err := emit(Pair{X: xt, Y: yt, Tile: ev.Tile}); err != nil {
						if errors.Is(err, ErrStop) {
							stats.Stopped = true
							return stats, nil
						}
						return stats, err
					}
				}
			}
		}
	}
}
