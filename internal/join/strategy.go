package join

import "fmt"

// InvocationKind selects the order and frequency of service calls
// (Section 4.3).
type InvocationKind int

const (
	// NestedLoop extracts the h high-scoring chunks of service X first,
	// then walks service Y chunk by chunk (Section 4.3.1, Fig. 5a). It is
	// the right choice when X has a step scoring function.
	NestedLoop InvocationKind = iota
	// MergeScan alternates calls between the services according to an
	// inter-service ratio, exploring the space diagonally
	// (Section 4.3.2, Fig. 5b). It is the right choice for progressive
	// scoring functions.
	MergeScan
)

// String names the invocation strategy as in the chapter (NL / MS).
func (k InvocationKind) String() string {
	switch k {
	case NestedLoop:
		return "nested-loop"
	case MergeScan:
		return "merge-scan"
	default:
		return fmt.Sprintf("InvocationKind(%d)", int(k))
	}
}

// CompletionKind selects the order in which available tiles are processed
// (Section 4.4).
type CompletionKind int

const (
	// Rectangular processes every tile as soon as its chunks are
	// available (Section 4.4.1); it is locally extraction-optimal.
	Rectangular CompletionKind = iota
	// Triangular defers tiles beyond the current weighted anti-diagonal,
	// processing roughly the most promising half of the explored
	// rectangle (Section 4.4.2); combined with merge-scan it approximates
	// a globally extraction-optimal strategy.
	Triangular
)

// String names the completion strategy.
func (k CompletionKind) String() string {
	switch k {
	case Rectangular:
		return "rectangular"
	case Triangular:
		return "triangular"
	default:
		return fmt.Sprintf("CompletionKind(%d)", int(k))
	}
}

// Strategy is a concrete join method: the topology-independent pair of
// invocation and completion strategies with their parameters. Together
// with the topology (pipe or parallel, chosen at the plan level) this
// realizes the classification of Section 4.5.
type Strategy struct {
	// Invocation is the fetch-ordering strategy.
	Invocation InvocationKind
	// Completion is the tile-ordering strategy.
	Completion CompletionKind
	// H is the nested-loop parameter: the number of chunks fetched from
	// service X before any Y fetch (the step length of X's scoring
	// function, in chunks).
	H int
	// RatioX:RatioY is the merge-scan inter-service call ratio
	// (e.g. 3:5). Both default to 1 when zero.
	RatioX, RatioY int
	// FlushOnExhaust makes a triangular strategy process its deferred
	// tiles once both services are exhausted (or at their fetch limits),
	// completing the rectangle. Leave false to keep the strict triangle,
	// as the instantiated plan of Fig. 10 assumes.
	FlushOnExhaust bool
}

// withDefaults returns the strategy with zero ratios replaced by 1.
func (s Strategy) withDefaults() Strategy {
	if s.RatioX == 0 {
		s.RatioX = 1
	}
	if s.RatioY == 0 {
		s.RatioY = 1
	}
	return s
}

// Validate checks the parameters required by the chosen strategies.
func (s Strategy) Validate() error {
	switch s.Invocation {
	case NestedLoop:
		if s.H < 1 {
			return fmt.Errorf("join: nested-loop requires H >= 1, got %d", s.H)
		}
	case MergeScan:
		if s.RatioX < 0 || s.RatioY < 0 {
			return fmt.Errorf("join: negative merge-scan ratio %d:%d", s.RatioX, s.RatioY)
		}
	default:
		return fmt.Errorf("join: unknown invocation strategy %d", int(s.Invocation))
	}
	switch s.Completion {
	case Rectangular, Triangular:
	default:
		return fmt.Errorf("join: unknown completion strategy %d", int(s.Completion))
	}
	return nil
}

// String renders the method name, e.g. "merge-scan/triangular(1:1)".
func (s Strategy) String() string {
	d := s.withDefaults()
	if s.Invocation == NestedLoop {
		return fmt.Sprintf("%s/%s(h=%d)", s.Invocation, s.Completion, s.H)
	}
	return fmt.Sprintf("%s/%s(%d:%d)", s.Invocation, s.Completion, d.RatioX, d.RatioY)
}

// Methods enumerates the strategy combinations of Section 4.5 with default
// parameters, for exhaustive comparisons in tests and benches.
func Methods(h int) []Strategy {
	return []Strategy{
		{Invocation: NestedLoop, Completion: Rectangular, H: h},
		{Invocation: NestedLoop, Completion: Triangular, H: h},
		{Invocation: MergeScan, Completion: Rectangular},
		{Invocation: MergeScan, Completion: Triangular},
	}
}
