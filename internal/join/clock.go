package join

import "fmt"

// Clock regulates the alternation of service calls according to an
// inter-service ratio, the control unit the chapter defers to Chapter 12:
// "units for controlling the execution strategy, called clocks, whose
// function is to regulate service calls based upon the inter-service
// ratio". A Clock with ratio rx:ry proposes sides so that after any
// prefix the issued calls per side deviate from the exact ratio by less
// than one call (a Bresenham interleave), starting with X so the first
// two calls alternate.
//
// The ratio can be retuned mid-run (the "variable inter-service ratio" of
// Section 4.3.2): SetRatio keeps the call history and re-balances future
// proposals against it.
type Clock struct {
	rx, ry int
	nx, ny int
}

// NewClock builds a clock with the given ratio; non-positive components
// default to 1.
func NewClock(rx, ry int) *Clock {
	if rx <= 0 {
		rx = 1
	}
	if ry <= 0 {
		ry = 1
	}
	return &Clock{rx: rx, ry: ry}
}

// Ratio returns the current inter-service ratio.
func (c *Clock) Ratio() (rx, ry int) { return c.rx, c.ry }

// SetRatio retunes the clock; the call history is kept.
func (c *Clock) SetRatio(rx, ry int) error {
	if rx <= 0 || ry <= 0 {
		return fmt.Errorf("join: invalid clock ratio %d:%d", rx, ry)
	}
	c.rx, c.ry = rx, ry
	return nil
}

// Calls reports the calls issued per side so far.
func (c *Clock) Calls() (nx, ny int) { return c.nx, c.ny }

// Propose returns the side the next call should go to, without recording
// it: X when nx/rx has not overtaken ny/ry (ties go to X).
func (c *Clock) Propose() Side {
	if c.nx*c.ry <= c.ny*c.rx {
		return SideX
	}
	return SideY
}

// Tick records one call on the given side.
func (c *Clock) Tick(side Side) {
	if side == SideX {
		c.nx++
	} else {
		c.ny++
	}
}

// Untick rolls back one recorded call (a fetch that found the service
// exhausted).
func (c *Clock) Untick(side Side) {
	if side == SideX && c.nx > 0 {
		c.nx--
	} else if side == SideY && c.ny > 0 {
		c.ny--
	}
}

// Next proposes and records in one step.
func (c *Clock) Next() Side {
	s := c.Propose()
	c.Tick(s)
	return s
}

// RatioFromCosts derives a merge-scan inter-service ratio from per-call
// costs (latency or price), realizing the chapter's forward reference to
// "merge-scan with variable inter-service ratios, based upon service
// costs": the cheaper service is called proportionally more often,
// rx:ry ≈ costY:costX, approximated by the best small-integer ratio with
// components at most maxComponent (default 6 when ≤ 0). Non-positive
// costs fall back to 1:1.
func RatioFromCosts(costX, costY float64, maxComponent int) (rx, ry int) {
	if maxComponent <= 0 {
		maxComponent = 6
	}
	if costX <= 0 || costY <= 0 {
		return 1, 1
	}
	target := costY / costX // desired rx/ry
	bestRX, bestRY := 1, 1
	bestErr := absFloat(target - 1)
	for p := 1; p <= maxComponent; p++ {
		for q := 1; q <= maxComponent; q++ {
			if e := absFloat(target - float64(p)/float64(q)); e < bestErr {
				bestRX, bestRY, bestErr = p, q, e
			}
		}
	}
	g := gcd(bestRX, bestRY)
	return bestRX / g, bestRY / g
}

func absFloat(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Drift measures how far the call history deviates from the exact ratio:
// |nx·ry − ny·rx| normalized by max(rx, ry). A well-regulated clock keeps
// drift at most 1 (within one call of the exact ratio).
func (c *Clock) Drift() float64 {
	d := c.nx*c.ry - c.ny*c.rx
	if d < 0 {
		d = -d
	}
	m := c.rx
	if c.ry > m {
		m = c.ry
	}
	return float64(d) / float64(m)
}
