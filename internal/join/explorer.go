package join

import "fmt"

// Explorer turns a join Strategy into a deterministic stream of events: it
// decides, step by step, whether to fetch the next chunk from X or Y and
// which available tile to process next. The caller drives it:
//
//	ex, _ := NewExplorer(strat, limitX, limitY)
//	for {
//		ev, ok := ex.Next()
//		if !ok { break }
//		switch ev.Kind {
//		case EventFetch:
//			// issue the request-response; on ErrExhausted call
//			// ex.ReportExhausted(ev.Side)
//		case EventTile:
//			// join the chunk pair ev.Tile
//		}
//	}
//
// The explorer never emits the same tile twice, prefers processing
// admitted tiles over fetching, and orders tiles by their weighted
// diagonal index so that consecutive extractions keep the index sum
// non-decreasing (extraction-optimality at the tile level, Section 4.1).
type Explorer struct {
	strat            Strategy
	limitX, limitY   int // 0 = unbounded
	nx, ny           int // successful fetches per side
	exhausted        [2]bool
	processed        map[Tile]bool
	flushing         bool
	lastFetch        Side
	fetchesOutstand  bool // a fetch event was emitted but not yet confirmed
	outstandingSide  Side
	totalTiles       int
	totalFetches     int
	fetchSequence    []Side
	recordFetchOrder bool
	ranker           func(Tile) float64
}

// NewExplorer builds an explorer for the strategy with optional per-side
// fetch limits (the plan's fetching factors; 0 means unbounded).
func NewExplorer(s Strategy, limitX, limitY int) (*Explorer, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if limitX < 0 || limitY < 0 {
		return nil, fmt.Errorf("join: negative fetch limit %d/%d", limitX, limitY)
	}
	return &Explorer{
		strat:     s.withDefaults(),
		limitX:    limitX,
		limitY:    limitY,
		processed: make(map[Tile]bool),
	}, nil
}

// RecordFetchOrder makes the explorer keep the sequence of fetch sides for
// inspection (used by strategy-trace tests).
func (e *Explorer) RecordFetchOrder() { e.recordFetchOrder = true }

// SetRanker supplies the representative rank of each tile (the product of
// the first-tuple scores of its chunks, Section 4.1). When set, the
// explorer processes admitted tiles in decreasing rank instead of pure
// diagonal order, which realizes local extraction-optimality with respect
// to the observed rankings. Without a ranker the order is geometric:
// increasing weighted diagonal.
func (e *Explorer) SetRanker(rank func(Tile) float64) { e.ranker = rank }

// FetchOrder returns the recorded fetch sequence.
func (e *Explorer) FetchOrder() []Side { return e.fetchSequence }

// Fetched returns the number of successful fetches per side.
func (e *Explorer) Fetched() (nx, ny int) { return e.nx, e.ny }

// Tiles returns the number of tile events emitted.
func (e *Explorer) Tiles() int { return e.totalTiles }

// ReportExhausted informs the explorer that the last fetch on the given
// side found the service exhausted: the optimistically counted chunk is
// rolled back and the side stops being fetched.
func (e *Explorer) ReportExhausted(side Side) {
	if e.fetchesOutstand && e.outstandingSide == side {
		if side == SideX {
			e.nx--
		} else {
			e.ny--
		}
		e.totalFetches--
		if e.recordFetchOrder && len(e.fetchSequence) > 0 {
			e.fetchSequence = e.fetchSequence[:len(e.fetchSequence)-1]
		}
		e.fetchesOutstand = false
	}
	e.exhausted[side] = true
}

// Next returns the next event, or ok=false when the exploration is
// complete.
func (e *Explorer) Next() (Event, bool) {
	e.fetchesOutstand = false
	for {
		if t, ok := e.bestTile(); ok {
			e.processed[t] = true
			e.totalTiles++
			return Event{Kind: EventTile, Tile: t}, true
		}
		side, ok := e.nextFetchSide()
		if !ok {
			if e.strat.Completion == Triangular && e.strat.FlushOnExhaust && !e.flushing && e.hasUnprocessed() {
				e.flushing = true
				continue
			}
			return Event{}, false
		}
		if side == SideX {
			e.nx++
		} else {
			e.ny++
		}
		e.totalFetches++
		e.lastFetch = side
		e.fetchesOutstand = true
		e.outstandingSide = side
		if e.recordFetchOrder {
			e.fetchSequence = append(e.fetchSequence, side)
		}
		return Event{Kind: EventFetch, Side: side}, true
	}
}

// bestTile returns the unprocessed, available, admitted tile with the
// highest representative rank (when a ranker is set), breaking ties — or
// ordering entirely, without a ranker — by the smallest (diagonal, y) key.
func (e *Explorer) bestTile() (Tile, bool) {
	rx, ry := e.strat.RatioX, e.strat.RatioY
	best := Tile{}
	bestKey := [2]int{1 << 30, 1 << 30}
	bestRank := -1.0
	found := false
	for x := 0; x < e.nx; x++ {
		for y := 0; y < e.ny; y++ {
			t := Tile{X: x, Y: y}
			if e.processed[t] || !e.admitted(t) {
				continue
			}
			rank := 0.0
			if e.ranker != nil {
				rank = e.ranker(t)
			}
			key := [2]int{t.Diagonal(rx, ry), y}
			better := !found ||
				rank > bestRank+1e-12 ||
				(rank > bestRank-1e-12 &&
					(key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1])))
			if better {
				best, bestKey, bestRank, found = t, key, rank, true
			}
		}
	}
	return best, found
}

// admitted applies the completion strategy: rectangular admits every
// available tile; triangular admits tiles strictly under the current
// weighted anti-diagonal max(nx·ry, ny·rx), which keeps roughly the most
// promising half of the explored rectangle.
func (e *Explorer) admitted(t Tile) bool {
	if e.strat.Completion == Rectangular || e.flushing {
		return true
	}
	thr := e.nx * e.strat.RatioY
	if v := e.ny * e.strat.RatioX; v > thr {
		thr = v
	}
	return t.Diagonal(e.strat.RatioX, e.strat.RatioY) < thr
}

func (e *Explorer) hasUnprocessed() bool {
	return e.totalTiles < e.nx*e.ny
}

// canFetch reports whether the side may still be fetched.
func (e *Explorer) canFetch(side Side) bool {
	if e.exhausted[side] {
		return false
	}
	n, limit := e.nx, e.limitX
	if side == SideY {
		n, limit = e.ny, e.limitY
	}
	if limit > 0 && n >= limit {
		return false
	}
	if e.strat.Invocation == NestedLoop && side == SideX && e.nx >= e.strat.H {
		// Nested loop takes exactly the h "step" chunks from X.
		return false
	}
	return true
}

// nextFetchSide applies the invocation strategy.
func (e *Explorer) nextFetchSide() (Side, bool) {
	cx, cy := e.canFetch(SideX), e.canFetch(SideY)
	if !cx && !cy {
		return 0, false
	}
	switch e.strat.Invocation {
	case NestedLoop:
		// All h chunks of X first, then Y chunk by chunk.
		if cx {
			return SideX, true
		}
		return SideY, true
	default: // MergeScan
		if !cx {
			return SideY, true
		}
		if !cy {
			return SideX, true
		}
		// The clock regulates the interleave per RatioX:RatioY, starting
		// with X so the first two calls alternate (Section 4.4.1).
		clock := Clock{rx: e.strat.RatioX, ry: e.strat.RatioY, nx: e.nx, ny: e.ny}
		return clock.Propose(), true
	}
}
