// Package join implements the join methods of Section 4: the tile model of
// the two-service search space (Fig. 4), the nested-loop and merge-scan
// invocation strategies (Fig. 5), the rectangular and triangular completion
// strategies (Figs. 6–7), a deterministic explorer that turns a strategy
// pair into a stream of fetch and tile events, and executors for parallel
// and pipe joins over ranked chunk streams.
package join

import "fmt"

// Side identifies one of the two services of a binary join, conventionally
// X (the first) and Y (the second).
type Side int

const (
	// SideX is the first joined service.
	SideX Side = iota
	// SideY is the second joined service.
	SideY
)

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == SideX {
		return SideY
	}
	return SideX
}

// String returns "X" or "Y".
func (s Side) String() string {
	if s == SideX {
		return "X"
	}
	return "Y"
}

// Tile is the rectangular region of the search space holding the point
// pairs of chunk X#x joined with chunk Y#y (Section 4.1). Coordinates are
// 0-based chunk indexes.
type Tile struct {
	X, Y int
}

// String renders the tile as t(x,y).
func (t Tile) String() string { return fmt.Sprintf("t(%d,%d)", t.X, t.Y) }

// IndexSum is x+y, the quantity extraction-optimal methods keep
// non-decreasing across adjacent extractions (Section 4.1).
func (t Tile) IndexSum() int { return t.X + t.Y }

// Adjacent reports whether two tiles share an edge.
func (t Tile) Adjacent(u Tile) bool {
	dx, dy := t.X-u.X, t.Y-u.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1
}

// Diagonal is the weighted diagonal index x·ry + y·rx used by the
// triangular completion strategy (Section 4.4.2, with ratio r = rx/ry).
func (t Tile) Diagonal(rx, ry int) int { return t.X*ry + t.Y*rx }

// EventKind discriminates explorer events.
type EventKind int

const (
	// EventFetch instructs the caller to issue one request-response to
	// the service on Event.Side.
	EventFetch EventKind = iota
	// EventTile instructs the caller to join the chunk pair of
	// Event.Tile.
	EventTile
)

// Event is one step of a join exploration.
type Event struct {
	Kind EventKind
	Side Side // valid when Kind == EventFetch
	Tile Tile // valid when Kind == EventTile
}

// String renders the event ("fetch X" or "t(2,1)").
func (e Event) String() string {
	if e.Kind == EventFetch {
		return "fetch " + e.Side.String()
	}
	return e.Tile.String()
}
