package join

import (
	"context"
	"fmt"
	"math"
	"testing"

	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/types"
)

// rankedService builds a chunked search Table over a one-attribute schema:
// n tuples keyed Key=i%mod (so joins hit when keys are equal), scored by
// the given scoring function.
func rankedService(t testing.TB, name string, n, mod, chunk int, sc service.Scoring) *service.Table {
	t.Helper()
	m := &mart.Mart{Name: name, Attributes: []mart.Attribute{
		{Name: "Key", Kind: types.KindInt},
		{Name: "Pos", Kind: types.KindInt},
	}}
	si, err := mart.NewInterface(name+"1", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := service.NewTable(si, service.Stats{
		AvgCardinality: float64(n), ChunkSize: chunk, Scoring: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tu := types.NewTuple(sc.Score(i))
		tu.Set("Key", types.Int(int64(i%mod))).Set("Pos", types.Int(int64(i)))
		tab.Add(tu)
	}
	return tab
}

func invokeAll(t testing.TB, svc service.Service) service.Invocation {
	t.Helper()
	inv, err := svc.Invoke(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func keyEqPredicate() Predicate {
	return Predicate{Conds: []Condition{{Left: "Key", Op: types.OpEq, Right: "Key"}}}
}

// referenceJoin computes the full cross join matches for comparison.
func referenceJoin(t testing.TB, a, b *service.Table, pred Predicate) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	ia, ib := invokeAll(t, a), invokeAll(t, b)
	var as, bs []*types.Tuple
	for {
		c, err := ia.Fetch(context.Background())
		if err != nil {
			break
		}
		as = append(as, c.Tuples...)
	}
	for {
		c, err := ib.Fetch(context.Background())
		if err != nil {
			break
		}
		bs = append(bs, c.Tuples...)
	}
	for _, x := range as {
		for _, y := range bs {
			ok, err := pred.Match(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				want[pairKey(x, y)] = true
			}
		}
	}
	return want
}

func pairKey(x, y *types.Tuple) string {
	return fmt.Sprintf("%d-%d", x.Get("Pos").IntVal(), y.Get("Pos").IntVal())
}

// Every strategy with full coverage (rectangular, or triangular with
// flush) must produce exactly the reference join result set.
func TestParallelMatchesReferenceJoin(t *testing.T) {
	a := rankedService(t, "A", 12, 4, 3, service.Linear(12))
	b := rankedService(t, "B", 8, 4, 2, service.Linear(8))
	pred := keyEqPredicate()
	want := referenceJoin(t, a, b, pred)
	if len(want) == 0 {
		t.Fatal("reference join empty; test is vacuous")
	}
	strategies := []Strategy{
		{Invocation: MergeScan, Completion: Rectangular},
		{Invocation: MergeScan, Completion: Rectangular, RatioX: 2, RatioY: 1},
		{Invocation: NestedLoop, Completion: Rectangular, H: 4},
		{Invocation: MergeScan, Completion: Triangular, FlushOnExhaust: true},
		{Invocation: NestedLoop, Completion: Triangular, H: 4, FlushOnExhaust: true},
	}
	for _, s := range strategies {
		got := map[string]bool{}
		stats, err := Parallel(context.Background(), invokeAll(t, a), invokeAll(t, b),
			s, pred, 0, 0, func(p Pair) error {
				got[pairKey(p.X, p.Y)] = true
				return nil
			})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(got) != len(want) {
			t.Errorf("%v: %d matches, want %d", s, len(got), len(want))
			continue
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%v: missing pair %s", s, k)
			}
		}
		if stats.Matches != len(want) {
			t.Errorf("%v: stats.Matches = %d, want %d", s, stats.Matches, len(want))
		}
	}
}

func TestParallelEarlyStop(t *testing.T) {
	a := rankedService(t, "A", 12, 2, 3, service.Linear(12))
	b := rankedService(t, "B", 12, 2, 3, service.Linear(12))
	count := 0
	stats, err := Parallel(context.Background(), invokeAll(t, a), invokeAll(t, b),
		Strategy{Invocation: MergeScan, Completion: Rectangular}, keyEqPredicate(),
		0, 0, func(Pair) error {
			count++
			if count >= 5 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stopped || count != 5 {
		t.Errorf("stopped=%v count=%d", stats.Stopped, count)
	}
	if stats.TotalFetches() >= 8 {
		t.Errorf("early stop still fetched %d chunks", stats.TotalFetches())
	}
}

func TestParallelFetchLimits(t *testing.T) {
	a := rankedService(t, "A", 12, 2, 2, service.Linear(12))
	b := rankedService(t, "B", 12, 2, 2, service.Linear(12))
	stats, err := Parallel(context.Background(), invokeAll(t, a), invokeAll(t, b),
		Strategy{Invocation: MergeScan, Completion: Rectangular}, keyEqPredicate(),
		2, 3, func(Pair) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.FetchesX != 2 || stats.FetchesY != 3 {
		t.Errorf("fetches %d/%d, want 2/3", stats.FetchesX, stats.FetchesY)
	}
	if stats.Tiles != 6 {
		t.Errorf("tiles = %d, want 6", stats.Tiles)
	}
	if stats.Comparisons != 6*4 {
		t.Errorf("comparisons = %d, want 24", stats.Comparisons)
	}
}

func TestParallelExhaustionHandled(t *testing.T) {
	a := rankedService(t, "A", 3, 2, 2, service.Linear(3)) // 2 chunks then exhausted
	b := rankedService(t, "B", 8, 2, 2, service.Linear(8))
	stats, err := Parallel(context.Background(), invokeAll(t, a), invokeAll(t, b),
		Strategy{Invocation: MergeScan, Completion: Rectangular}, keyEqPredicate(),
		0, 0, func(Pair) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.FetchesX != 2 {
		t.Errorf("FetchesX = %d, want 2", stats.FetchesX)
	}
	if stats.FetchesY != 4 {
		t.Errorf("FetchesY = %d, want 4", stats.FetchesY)
	}
	if stats.Tiles != 8 {
		t.Errorf("tiles = %d, want 8", stats.Tiles)
	}
}

func TestParallelContextCancel(t *testing.T) {
	a := rankedService(t, "A", 4, 2, 2, service.Linear(4))
	b := rankedService(t, "B", 4, 2, 2, service.Linear(4))
	ctx, cancel := context.WithCancel(context.Background())
	ia, ib := invokeAll(t, a), invokeAll(t, b)
	cancel()
	if _, err := Parallel(ctx, ia, ib,
		Strategy{Invocation: MergeScan, Completion: Rectangular}, keyEqPredicate(),
		0, 0, func(Pair) error { return nil }); err == nil {
		t.Error("cancelled join succeeded")
	}
}

// Merge-scan with triangular completion emits tiles whose representative
// rank products are non-increasing (extraction-optimal emission) when both
// score curves decay identically.
func TestParallelMergeScanTriangularEmissionOrder(t *testing.T) {
	a := rankedService(t, "A", 12, 1, 3, service.Linear(12))
	b := rankedService(t, "B", 12, 1, 3, service.Linear(12))
	lastRank := math.Inf(1)
	var lastTile Tile
	first := true
	_, err := Parallel(context.Background(), invokeAll(t, a), invokeAll(t, b),
		Strategy{Invocation: MergeScan, Completion: Triangular}, Predicate{},
		0, 0, func(p Pair) error {
			if !first && p.Tile != lastTile {
				// New tile: its best pair rank must not exceed the
				// previous tile's best pair rank.
				if p.RankProduct() > lastRank+1e-9 {
					t.Errorf("tile %v rank %v above previous %v", p.Tile, p.RankProduct(), lastRank)
				}
				lastRank = p.RankProduct()
			}
			if first {
				lastRank = p.RankProduct()
				first = false
			}
			lastTile = p.Tile
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
