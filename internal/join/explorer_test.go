package join

import (
	"testing"
	"testing/quick"
)

func TestStrategyValidate(t *testing.T) {
	good := []Strategy{
		{Invocation: NestedLoop, Completion: Rectangular, H: 2},
		{Invocation: MergeScan, Completion: Triangular},
		{Invocation: MergeScan, Completion: Rectangular, RatioX: 3, RatioY: 5},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", s, err)
		}
	}
	bad := []Strategy{
		{Invocation: NestedLoop, Completion: Rectangular, H: 0},
		{Invocation: MergeScan, Completion: Rectangular, RatioX: -1},
		{Invocation: InvocationKind(9), Completion: Rectangular},
		{Invocation: MergeScan, Completion: CompletionKind(9)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded, want error", s)
		}
	}
}

func TestStrategyString(t *testing.T) {
	s := Strategy{Invocation: NestedLoop, Completion: Rectangular, H: 3}
	if got := s.String(); got != "nested-loop/rectangular(h=3)" {
		t.Errorf("String = %q", got)
	}
	s = Strategy{Invocation: MergeScan, Completion: Triangular}
	if got := s.String(); got != "merge-scan/triangular(1:1)" {
		t.Errorf("String = %q", got)
	}
}

func TestMethodsEnumeration(t *testing.T) {
	ms := Methods(2)
	if len(ms) != 4 {
		t.Fatalf("Methods = %d entries", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("method %v invalid: %v", m, err)
		}
	}
}

// mustTrace runs Trace and fails the test on error.
func mustTrace(t *testing.T, s Strategy, lx, ly int) []Event {
	t.Helper()
	evs, err := Trace(s, lx, ly)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// Fig. 5a: nested loop fetches all h chunks of X first, then alternates a
// Y fetch with the processing of its whole column.
func TestNestedLoopFetchOrder(t *testing.T) {
	evs := mustTrace(t, Strategy{Invocation: NestedLoop, Completion: Rectangular, H: 3}, 3, 2)
	var fetches []Side
	for _, e := range evs {
		if e.Kind == EventFetch {
			fetches = append(fetches, e.Side)
		}
	}
	want := []Side{SideX, SideX, SideX, SideY, SideY}
	if len(fetches) != len(want) {
		t.Fatalf("fetches = %v", fetches)
	}
	for i := range want {
		if fetches[i] != want[i] {
			t.Fatalf("fetch[%d] = %v, want %v (full: %v)", i, fetches[i], want[i], fetches)
		}
	}
	tiles := CollectTiles(evs)
	if len(tiles) != 6 {
		t.Fatalf("tiles = %v", tiles)
	}
	// Each Y chunk joins the whole X column before the next Y fetch.
	wantTiles := []Tile{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i, w := range wantTiles {
		if tiles[i] != w {
			t.Errorf("tile[%d] = %v, want %v", i, tiles[i], w)
		}
	}
}

// Fig. 5b: merge-scan with ratio 1:1 alternates fetches and processes
// tiles along anti-diagonals.
func TestMergeScanAlternatesAndDiagonal(t *testing.T) {
	evs := mustTrace(t, Strategy{Invocation: MergeScan, Completion: Triangular}, 3, 3)
	var fetches []Side
	for _, e := range evs {
		if e.Kind == EventFetch {
			fetches = append(fetches, e.Side)
		}
	}
	want := []Side{SideX, SideY, SideX, SideY, SideX, SideY}
	for i := range want {
		if fetches[i] != want[i] {
			t.Fatalf("fetches = %v, want %v", fetches, want)
		}
	}
	tiles := CollectTiles(evs)
	wantTiles := []Tile{{0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}}
	if len(tiles) != len(wantTiles) {
		t.Fatalf("tiles = %v, want %v", tiles, wantTiles)
	}
	for i, w := range wantTiles {
		if tiles[i] != w {
			t.Errorf("tile[%d] = %v, want %v", i, tiles[i], w)
		}
	}
	// Triangular keeps only the anti-diagonal half: tiles with x+y >= 3
	// are never processed.
	for _, ti := range tiles {
		if ti.IndexSum() >= 3 {
			t.Errorf("triangular processed %v beyond the diagonal", ti)
		}
	}
}

// Fig. 7: merge-scan with rectangular completion and ratio 1 explores
// squares of increasing size.
func TestMergeScanRectangularSquares(t *testing.T) {
	evs := mustTrace(t, Strategy{Invocation: MergeScan, Completion: Rectangular}, 3, 3)
	// After the 2f-th fetch the processed region must be the f×f square.
	nx, ny, processed := 0, 0, map[Tile]bool{}
	for _, e := range evs {
		switch e.Kind {
		case EventFetch:
			if e.Side == SideX {
				nx++
			} else {
				ny++
			}
		case EventTile:
			processed[e.Tile] = true
		}
	}
	if nx != 3 || ny != 3 {
		t.Fatalf("fetched %d/%d", nx, ny)
	}
	if len(processed) != 9 {
		t.Fatalf("processed %d tiles, want full 3×3 square", len(processed))
	}
	// Check the square-growth order: tile (2,2) must come after all
	// tiles of the 2×2 square.
	tiles := CollectTiles(evs)
	seen22 := false
	for _, ti := range tiles {
		if ti == (Tile{2, 2}) {
			seen22 = true
		}
		if !seen22 && (ti.X > 2 || ti.Y > 2) {
			t.Errorf("tile %v out of square order", ti)
		}
	}
	if tiles[len(tiles)-1] != (Tile{2, 2}) {
		t.Errorf("last tile = %v, want t(2,2)", tiles[len(tiles)-1])
	}
}

// Fig. 6 degenerate case: when one side is exhausted after a single chunk,
// the rectangular strategy keeps adding "long and thin" single-tile
// columns.
func TestRectangularDegenerateLongThin(t *testing.T) {
	ex, err := NewExplorer(Strategy{Invocation: MergeScan, Completion: Rectangular}, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	var tiles []Tile
	for {
		ev, ok := ex.Next()
		if !ok {
			break
		}
		if ev.Kind == EventFetch && ev.Side == SideX {
			nx, _ := ex.Fetched()
			if nx > 1 {
				ex.ReportExhausted(SideX) // X has a single chunk
				continue
			}
		}
		if ev.Kind == EventTile {
			tiles = append(tiles, ev.Tile)
		}
	}
	if len(tiles) != 6 {
		t.Fatalf("tiles = %v", tiles)
	}
	for i, ti := range tiles {
		if ti.X != 0 || ti.Y != i {
			t.Errorf("tile[%d] = %v, want t(0,%d): each I/O adds one tile", i, ti, i)
		}
	}
}

func TestExplorerLimitsRespected(t *testing.T) {
	evs := mustTrace(t, Strategy{Invocation: MergeScan, Completion: Rectangular}, 2, 3)
	nx, ny := 0, 0
	for _, e := range evs {
		if e.Kind == EventFetch {
			if e.Side == SideX {
				nx++
			} else {
				ny++
			}
		}
	}
	if nx != 2 || ny != 3 {
		t.Errorf("fetches %d/%d, want 2/3", nx, ny)
	}
	if got := len(CollectTiles(evs)); got != 6 {
		t.Errorf("tiles = %d, want 6", got)
	}
}

func TestTriangularFlushOnExhaust(t *testing.T) {
	s := Strategy{Invocation: MergeScan, Completion: Triangular, FlushOnExhaust: true}
	evs := mustTrace(t, s, 3, 3)
	if got := len(CollectTiles(evs)); got != 9 {
		t.Errorf("flushed tiles = %d, want full 9", got)
	}
	// Without flushing only the strict triangle is processed.
	s.FlushOnExhaust = false
	evs = mustTrace(t, s, 3, 3)
	if got := len(CollectTiles(evs)); got != 6 {
		t.Errorf("strict tiles = %d, want 6", got)
	}
}

func TestMergeScanRatio(t *testing.T) {
	s := Strategy{Invocation: MergeScan, Completion: Rectangular, RatioX: 1, RatioY: 2}
	ex, err := NewExplorer(s, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ex.RecordFetchOrder()
	for {
		if _, ok := ex.Next(); !ok {
			break
		}
	}
	var xs, ys int
	for _, s := range ex.FetchOrder() {
		if s == SideX {
			xs++
		} else {
			ys++
		}
	}
	if xs != 2 || ys != 4 {
		t.Errorf("fetch mix %d:%d, want 2:4 (order %v)", xs, ys, ex.FetchOrder())
	}
	// The interleave must keep the running ratio close to 1:2, never
	// fetching X twice in a row.
	order := ex.FetchOrder()
	for i := 1; i < len(order); i++ {
		if order[i] == SideX && order[i-1] == SideX {
			t.Errorf("X fetched twice in a row at %d: %v", i, order)
		}
	}
}

func TestExplorerNoDuplicateTilesProperty(t *testing.T) {
	f := func(inv, comp bool, h, lx, ly uint8) bool {
		s := Strategy{Completion: Rectangular, H: int(h%4) + 1}
		if inv {
			s.Invocation = NestedLoop
		} else {
			s.Invocation = MergeScan
		}
		if comp {
			s.Completion = Triangular
		}
		limX, limY := int(lx%6)+1, int(ly%6)+1
		evs, err := Trace(s, limX, limY)
		if err != nil {
			return false
		}
		seen := map[Tile]bool{}
		nx, ny := 0, 0
		for _, e := range evs {
			switch e.Kind {
			case EventFetch:
				if e.Side == SideX {
					nx++
				} else {
					ny++
				}
			case EventTile:
				if seen[e.Tile] {
					return false // duplicate
				}
				// A tile may only be processed when both chunks exist.
				if e.Tile.X >= nx || e.Tile.Y >= ny {
					return false
				}
				seen[e.Tile] = true
			}
		}
		// Rectangular completion must cover the full fetched rectangle.
		if s.Completion == Rectangular && len(seen) != nx*ny {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Consecutive tiles of the triangular strategy keep non-decreasing
// weighted diagonals, the tile-level version of "the sum of indexes of two
// consecutive tiles cannot increase by more than one cannot decrease".
func TestTriangularDiagonalMonotoneProperty(t *testing.T) {
	f := func(lx, ly uint8) bool {
		s := Strategy{Invocation: MergeScan, Completion: Triangular}
		evs, err := Trace(s, int(lx%8)+1, int(ly%8)+1)
		if err != nil {
			return false
		}
		tiles := CollectTiles(evs)
		for i := 1; i < len(tiles); i++ {
			if tiles[i].IndexSum() < tiles[i-1].IndexSum()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewExplorerRejectsBadInput(t *testing.T) {
	if _, err := NewExplorer(Strategy{Invocation: NestedLoop, H: 0}, 1, 1); err == nil {
		t.Error("invalid strategy accepted")
	}
	if _, err := NewExplorer(Strategy{Invocation: MergeScan}, -1, 1); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestReportExhaustedRollsBack(t *testing.T) {
	ex, err := NewExplorer(Strategy{Invocation: MergeScan, Completion: Rectangular}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := ex.Next()
	if !ok || ev.Kind != EventFetch || ev.Side != SideX {
		t.Fatalf("first event = %v, %v", ev, ok)
	}
	ex.ReportExhausted(SideX)
	if nx, _ := ex.Fetched(); nx != 0 {
		t.Errorf("nx = %d after rollback", nx)
	}
	ev, ok = ex.Next()
	if !ok || ev.Kind != EventFetch || ev.Side != SideY {
		t.Fatalf("second event = %v, %v", ev, ok)
	}
	ex.ReportExhausted(SideY)
	if _, ok := ex.Next(); ok {
		t.Error("explorer continued after both sides exhausted")
	}
}
