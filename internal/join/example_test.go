package join_test

import (
	"fmt"
	"log"

	"seco/internal/join"
)

// Tracing the merge-scan / triangular strategy of Fig. 5b over a 3×3
// search space: fetches alternate and tiles are processed diagonally.
func ExampleTrace() {
	evs, err := join.Trace(join.Strategy{
		Invocation: join.MergeScan,
		Completion: join.Triangular,
	}, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range evs {
		fmt.Print(e, " ")
	}
	fmt.Println()
	// Output:
	// fetch X fetch Y t(0,0) fetch X t(1,0) fetch Y t(0,1) fetch X t(2,0) t(1,1) fetch Y t(0,2)
}

// A clock regulating a 1:2 inter-service ratio (Chapter 12's control
// unit): one X call for every two Y calls, within one call of the exact
// ratio at every prefix.
func ExampleClock() {
	c := join.NewClock(1, 2)
	for i := 0; i < 6; i++ {
		fmt.Print(c.Next(), " ")
	}
	fmt.Println()
	// Output:
	// X Y Y X Y Y
}
