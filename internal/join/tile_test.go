package join

import (
	"testing"
	"testing/quick"
)

func TestSide(t *testing.T) {
	if SideX.Other() != SideY || SideY.Other() != SideX {
		t.Error("Other broken")
	}
	if SideX.String() != "X" || SideY.String() != "Y" {
		t.Error("String broken")
	}
}

func TestTileBasics(t *testing.T) {
	ti := Tile{X: 2, Y: 1}
	if ti.String() != "t(2,1)" {
		t.Errorf("String = %q", ti.String())
	}
	if ti.IndexSum() != 3 {
		t.Errorf("IndexSum = %d", ti.IndexSum())
	}
	if ti.Diagonal(1, 1) != 3 {
		t.Errorf("Diagonal(1,1) = %d", ti.Diagonal(1, 1))
	}
	if ti.Diagonal(3, 5) != 2*5+1*3 {
		t.Errorf("Diagonal(3,5) = %d", ti.Diagonal(3, 5))
	}
}

func TestTileAdjacent(t *testing.T) {
	a := Tile{X: 1, Y: 1}
	adjacent := []Tile{{0, 1}, {2, 1}, {1, 0}, {1, 2}}
	for _, b := range adjacent {
		if !a.Adjacent(b) || !b.Adjacent(a) {
			t.Errorf("%v and %v should be adjacent", a, b)
		}
	}
	notAdjacent := []Tile{{1, 1}, {0, 0}, {2, 2}, {3, 1}, {0, 2}}
	for _, b := range notAdjacent {
		if a.Adjacent(b) {
			t.Errorf("%v and %v should not be adjacent", a, b)
		}
	}
}

func TestEventString(t *testing.T) {
	if got := (Event{Kind: EventFetch, Side: SideY}).String(); got != "fetch Y" {
		t.Errorf("fetch event = %q", got)
	}
	if got := (Event{Kind: EventTile, Tile: Tile{1, 2}}).String(); got != "t(1,2)" {
		t.Errorf("tile event = %q", got)
	}
}

func TestDiagonalSymmetryProperty(t *testing.T) {
	f := func(x, y uint8, rx, ry uint8) bool {
		t1 := Tile{X: int(x), Y: int(y)}
		t2 := Tile{X: int(y), Y: int(x)}
		return t1.Diagonal(int(rx), int(ry)) == t2.Diagonal(int(ry), int(rx))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
