package join

import (
	"context"
	"testing"

	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/types"
)

// pipeRightService is a search service with an input attribute "Key" so it
// can be the downstream end of a pipe join: it returns per-key tuples in
// score order.
func pipeRightService(t *testing.T, perKey, chunk int) *service.Table {
	t.Helper()
	m := &mart.Mart{Name: "Right", Attributes: []mart.Attribute{
		{Name: "Key", Kind: types.KindInt},
		{Name: "Rank", Kind: types.KindInt},
	}}
	si, err := mart.NewInterface("Right1", m, map[string]mart.Adornment{"Key": mart.Input})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := service.NewTable(si, service.Stats{
		AvgCardinality: float64(perKey), ChunkSize: chunk, Scoring: service.Linear(perKey),
	})
	if err != nil {
		t.Fatal(err)
	}
	for key := 0; key < 4; key++ {
		for r := 0; r < perKey; r++ {
			tu := types.NewTuple(service.Linear(perKey).Score(r))
			tu.Set("Key", types.Int(int64(key))).Set("Rank", types.Int(int64(r)))
			tab.Add(tu)
		}
	}
	return tab
}

func leftTuples(n int) []*types.Tuple {
	var ts []*types.Tuple
	for i := 0; i < n; i++ {
		tu := types.NewTuple(1 - float64(i)*0.1)
		tu.Set("Id", types.Int(int64(i))).Set("FKey", types.Int(int64(i%4)))
		ts = append(ts, tu)
	}
	return ts
}

func TestPipeJoinBasic(t *testing.T) {
	right := pipeRightService(t, 6, 2)
	left := leftTuples(3)
	var pairs []Pair
	stats, err := Pipe(context.Background(), left, right, nil,
		[]Binding{{FromPath: "FKey", ToInput: "Key"}}, 0,
		func(p Pair) error { pairs = append(pairs, p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Invocations != 3 {
		t.Errorf("Invocations = %d, want 3", stats.Invocations)
	}
	// Each left tuple matches its 6 per-key right tuples.
	if len(pairs) != 18 || stats.Matches != 18 {
		t.Errorf("pairs = %d, stats.Matches = %d, want 18", len(pairs), stats.Matches)
	}
	// Results are composed with the correct key.
	for _, p := range pairs {
		if p.X.Get("FKey").IntVal() != p.Y.Get("Key").IntVal() {
			t.Errorf("pair keys differ: %v vs %v", p.X, p.Y)
		}
	}
	// Per-invocation chunked fetches: 3 chunks of 2 per left tuple.
	if stats.Fetches != 9 {
		t.Errorf("Fetches = %d, want 9", stats.Fetches)
	}
}

func TestPipeJoinFetchLimit(t *testing.T) {
	right := pipeRightService(t, 6, 2)
	left := leftTuples(2)
	var pairs []Pair
	stats, err := Pipe(context.Background(), left, right, nil,
		[]Binding{{FromPath: "FKey", ToInput: "Key"}}, 1,
		func(p Pair) error { pairs = append(pairs, p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// One fetch of chunk size 2 per left tuple: the "same number of
	// fetches from the second service for each tuple" rule of
	// Section 4.5.
	if stats.Fetches != 2 || len(pairs) != 4 {
		t.Errorf("Fetches = %d, pairs = %d; want 2, 4", stats.Fetches, len(pairs))
	}
	// The fetched right tuples must be each key's best-ranked ones.
	for _, p := range pairs {
		if p.Y.Get("Rank").IntVal() >= 2 {
			t.Errorf("fetched non-top tuple %v", p.Y)
		}
	}
}

func TestPipeJoinEarlyStop(t *testing.T) {
	right := pipeRightService(t, 6, 2)
	left := leftTuples(4)
	n := 0
	stats, err := Pipe(context.Background(), left, right, nil,
		[]Binding{{FromPath: "FKey", ToInput: "Key"}}, 0,
		func(Pair) error {
			n++
			if n == 3 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stopped || n != 3 {
		t.Errorf("stopped=%v n=%d", stats.Stopped, n)
	}
	if stats.Invocations != 1 {
		t.Errorf("Invocations = %d, want 1 (stop inside first left tuple)", stats.Invocations)
	}
}

func TestPipeJoinFixedInputsMerged(t *testing.T) {
	// A right service with two inputs: one piped, one fixed by the query.
	m := &mart.Mart{Name: "R2", Attributes: []mart.Attribute{
		{Name: "Key", Kind: types.KindInt},
		{Name: "Country", Kind: types.KindString},
	}}
	si, err := mart.NewInterface("R2if", m, map[string]mart.Adornment{
		"Key": mart.Input, "Country": mart.Input,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := service.NewTable(si, service.Stats{Scoring: service.Constant(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"Italy", "France"} {
		tu := types.NewTuple(0.5)
		tu.Set("Key", types.Int(0)).Set("Country", types.String(c))
		tab.Add(tu)
	}
	left := leftTuples(1)
	var got []Pair
	_, err = Pipe(context.Background(), left, tab,
		service.Input{"Country": types.String("Italy")},
		[]Binding{{FromPath: "FKey", ToInput: "Key"}}, 0,
		func(p Pair) error { got = append(got, p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Y.Get("Country").Str() != "Italy" {
		t.Errorf("got %v", got)
	}
}

func TestPipeJoinMissingBindingValue(t *testing.T) {
	right := pipeRightService(t, 2, 2)
	bad := types.NewTuple(1) // no FKey attribute
	_, err := Pipe(context.Background(), []*types.Tuple{bad}, right, nil,
		[]Binding{{FromPath: "FKey", ToInput: "Key"}}, 0,
		func(Pair) error { return nil })
	if err == nil {
		t.Error("missing binding value did not error")
	}
}

func TestPipeJoinContextCancel(t *testing.T) {
	right := pipeRightService(t, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Pipe(ctx, leftTuples(1), right, nil,
		[]Binding{{FromPath: "FKey", ToInput: "Key"}}, 0,
		func(Pair) error { return nil })
	if err == nil {
		t.Error("cancelled pipe succeeded")
	}
}
