package join

import (
	"fmt"
	"sort"
	"strings"

	"seco/internal/mart"
	"seco/internal/types"
)

// Condition is one comparison of a join predicate: a path on the left
// (X-side) tuple compared with a path on the right (Y-side) tuple.
type Condition struct {
	Left  string
	Op    types.Op
	Right string
}

// String renders the condition as "left op right".
func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Predicate is a conjunction of conditions between two tuples. Its Match
// honours the repeating-group semantics of Section 3.1: all conditions
// that mention the same repeating group of the same tuple must be
// satisfied by a single sub-tuple of that group (a consistent mapping M).
type Predicate struct {
	Conds []Condition
}

// FromPattern converts a connection pattern's attribute equalities into a
// Predicate (left = pattern's From mart, right = To mart).
func FromPattern(cp *mart.ConnectionPattern) Predicate {
	p := Predicate{Conds: make([]Condition, 0, len(cp.Joins))}
	for _, j := range cp.Joins {
		p.Conds = append(p.Conds, Condition{Left: j.From, Op: types.OpEq, Right: j.To})
	}
	return p
}

// String renders the predicate as a conjunction.
func (p Predicate) String() string {
	parts := make([]string, len(p.Conds))
	for i, c := range p.Conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " and ")
}

// side selects which tuple a path binding refers to.
type side int

const (
	leftSide side = iota
	rightSide
)

// groupRef identifies a repeating group of one of the two tuples.
type groupRef struct {
	side  side
	group string
}

// Match evaluates the predicate over a pair of tuples. It enumerates the
// consistent sub-tuple mappings for every repeating group mentioned by the
// conditions and succeeds if some mapping satisfies every condition.
func (p Predicate) Match(x, y *types.Tuple) (bool, error) {
	if len(p.Conds) == 0 {
		return true, nil
	}
	// Collect the repeating groups mentioned on each side.
	groupSet := make(map[groupRef]int) // ref -> number of sub-tuples
	addRef := func(s side, path string, t *types.Tuple) {
		if g, _, dotted := strings.Cut(path, "."); dotted {
			ref := groupRef{side: s, group: g}
			if _, seen := groupSet[ref]; !seen {
				groupSet[ref] = len(t.Groups[g])
			}
		}
	}
	for _, c := range p.Conds {
		addRef(leftSide, c.Left, x)
		addRef(rightSide, c.Right, y)
	}
	refs := make([]groupRef, 0, len(groupSet))
	for ref := range groupSet {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].side != refs[j].side {
			return refs[i].side < refs[j].side
		}
		return refs[i].group < refs[j].group
	})
	// A group with no sub-tuples can never satisfy a condition on it.
	for _, ref := range refs {
		if groupSet[ref] == 0 {
			return false, nil
		}
	}
	// Enumerate mappings: one chosen sub-tuple index per referenced group.
	choice := make(map[groupRef]int, len(refs))
	var try func(i int) (bool, error)
	try = func(i int) (bool, error) {
		if i == len(refs) {
			return p.evalUnder(x, y, choice)
		}
		ref := refs[i]
		for k := 0; k < groupSet[ref]; k++ {
			choice[ref] = k
			ok, err := try(i + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return try(0)
}

// evalUnder evaluates every condition with the given sub-tuple mapping.
func (p Predicate) evalUnder(x, y *types.Tuple, choice map[groupRef]int) (bool, error) {
	resolve := func(s side, path string, t *types.Tuple) types.Value {
		g, sub, dotted := strings.Cut(path, ".")
		if !dotted {
			return t.Get(path)
		}
		subs := t.Groups[g]
		k := choice[groupRef{side: s, group: g}]
		if k >= len(subs) {
			return types.Null
		}
		return subs[k][sub]
	}
	for _, c := range p.Conds {
		lv := resolve(leftSide, c.Left, x)
		rv := resolve(rightSide, c.Right, y)
		ok, err := c.Op.Eval(lv, rv)
		if err != nil {
			return false, fmt.Errorf("join: evaluating %s: %w", c, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
