package synth

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/types"
)

func TestNewRankedGeneratesRankedChunks(t *testing.T) {
	tab, err := NewRanked(RankedConfig{
		Name: "G", N: 30, KeyMod: 5,
		Stats: service.Stats{AvgCardinality: 30, ChunkSize: 10, Scoring: service.Linear(30)},
	})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := tab.Invoke(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	last := 2.0
	chunks := 0
	for {
		c, err := inv.Fetch(context.Background())
		if errors.Is(err, service.ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		chunks++
		for _, tu := range c.Tuples {
			if tu.Score > last {
				t.Fatalf("scores not ranked: %v after %v", tu.Score, last)
			}
			last = tu.Score
		}
	}
	if chunks != 3 {
		t.Errorf("chunks = %d, want 3", chunks)
	}
}

func TestNewRankedShuffleDeterministic(t *testing.T) {
	mk := func() *service.Table {
		tab, err := NewRanked(RankedConfig{
			Name: "G", N: 20, KeyMod: 4, Shuffle: true, Seed: 42,
			Stats: service.Stats{ChunkSize: 5, Scoring: service.Linear(20)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a, b := mk(), mk()
	ia, _ := a.Invoke(context.Background(), nil)
	ib, _ := b.Invoke(context.Background(), nil)
	ca, _ := ia.Fetch(context.Background())
	cb, _ := ib.Fetch(context.Background())
	for i := range ca.Tuples {
		if !ca.Tuples[i].Get("Key").Equal(cb.Tuples[i].Get("Key")) {
			t.Fatal("same seed produced different keys")
		}
	}
}

func TestNewRankedRejectsBadConfig(t *testing.T) {
	if _, err := NewRanked(RankedConfig{Name: "G", N: 0, KeyMod: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewRanked(RankedConfig{Name: "G", N: 5, KeyMod: 0}); err == nil {
		t.Error("KeyMod=0 accepted")
	}
}

func TestNewKeyed(t *testing.T) {
	tab, err := NewKeyed("K", 4, 3, service.Stats{AvgCardinality: 3, Scoring: service.Linear(3)})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := tab.Invoke(context.Background(), service.Input{"Key": types.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := inv.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tuples) != 3 {
		t.Fatalf("per-key tuples = %d, want 3", len(c.Tuples))
	}
	for _, tu := range c.Tuples {
		if tu.Get("Key").IntVal() != 2 {
			t.Errorf("wrong key: %v", tu)
		}
	}
	if _, err := NewKeyed("K", 0, 1, service.Stats{}); err == nil {
		t.Error("keys=0 accepted")
	}
}

func TestMovieWorldCoherent(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewMovieWorld(reg, MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if w.Movies.Len() != 200 || w.Theatres.Len() != 50 {
		t.Errorf("sizes: %d movies, %d theatres", w.Movies.Len(), w.Theatres.Len())
	}
	if w.Restaurants.Len() == 0 {
		t.Fatal("no restaurants generated")
	}
	// The canonical inputs return movies.
	inv, err := w.Movies.Invoke(context.Background(), service.Input{
		"Genres.Genre":     w.Inputs["INPUT1"],
		"Language":         w.Inputs["INPUT7"],
		"Openings.Country": w.Inputs["INPUT2"],
		"Openings.Date":    w.Inputs["INPUT3"],
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := inv.Fetch(context.Background())
	if err != nil || len(c.Tuples) == 0 {
		t.Fatalf("no matching movies: %v", err)
	}
	// Theatres near the canonical user location exist and are ranked by
	// distance.
	tin, err := w.Theatres.Invoke(context.Background(), service.Input{
		"UAddress": w.Inputs["INPUT4"],
		"UCity":    w.Inputs["INPUT5"],
		"UCountry": w.Inputs["INPUT2"],
	})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := tin.Fetch(context.Background())
	if err != nil || len(tc.Tuples) == 0 {
		t.Fatalf("no theatres: %v", err)
	}
	// DinnerPlace holds for some theatre: a restaurant at the theatre's
	// address.
	found := false
	for _, th := range tc.Tuples {
		rinv, err := w.Restaurants.Invoke(context.Background(), service.Input{
			"UAddress":        th.Get("TAddress"),
			"UCity":           th.Get("TCity"),
			"UCountry":        th.Get("TCountry"),
			"Categories.Name": w.Inputs["INPUT6"],
		})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := rinv.Fetch(context.Background())
		if err == nil && len(rc.Tuples) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no theatre has a matching restaurant in the first chunk")
	}
}

func TestMovieWorldDeterministic(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewMovieWorld(reg, MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewMovieWorld(reg, MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if w1.Restaurants.Len() != w2.Restaurants.Len() {
		t.Error("same seed, different restaurant counts")
	}
	w3, err := NewMovieWorld(reg, MovieConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_ = w3 // different seed must still be valid
}

func TestTravelWorldCoherent(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewTravelWorld(reg, TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// 3 topics × 20 conferences.
	if w.Conferences.Len() != 60 {
		t.Errorf("conferences = %d, want 60", w.Conferences.Len())
	}
	// Conferences on the canonical topic.
	inv, err := w.Conferences.Invoke(context.Background(), service.Input{
		"Topic": w.Inputs["INPUT1"],
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := inv.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tuples) != 20 {
		t.Fatalf("conferences on topic = %d, want 20 (the Fig. 2 cardinality)", len(c.Tuples))
	}
	conf := c.Tuples[0]
	// Weather for the conference city and month exists.
	winv, err := w.Weather.Invoke(context.Background(), service.Input{
		"City":  conf.Get("City"),
		"Month": w.Inputs["INPUT3"],
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := winv.Fetch(context.Background())
	if err != nil || len(wc.Tuples) != 1 {
		t.Fatalf("weather tuples = %d (%v), want 1", len(wc.Tuples), err)
	}
	// Flights to the conference city on its start date exist, ranked.
	finv, err := w.Flights.Invoke(context.Background(), service.Input{
		"From": w.Inputs["INPUT2"],
		"To":   conf.Get("City"),
		"Date": conf.Get("StartDate"),
	})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := finv.Fetch(context.Background())
	if err != nil || len(fc.Tuples) == 0 {
		t.Fatalf("no flights: %v", err)
	}
	// Hotels in the city exist.
	hinv, err := w.Hotels.Invoke(context.Background(), service.Input{
		"City": conf.Get("City"),
	})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := hinv.Fetch(context.Background())
	if err != nil || len(hc.Tuples) == 0 {
		t.Fatalf("no hotels: %v", err)
	}
	if len(w.Services()) != 4 {
		t.Error("Services map incomplete")
	}
}

func TestTravelWorldSomeCitiesHot(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewTravelWorld(reg, TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for i := 0; i < 12; i++ {
		inv, err := w.Weather.Invoke(context.Background(), service.Input{
			"City":  types.String(fmtCity(i)),
			"Month": w.Inputs["INPUT3"],
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := inv.Fetch(context.Background())
		if err != nil || len(c.Tuples) != 1 {
			t.Fatal("missing weather row")
		}
		if c.Tuples[0].Get("AvgTemp").FloatVal() > 26 {
			hot++
		} else {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Errorf("weather not selective in context: %d hot, %d cold", hot, cold)
	}
}

func fmtCity(i int) string { return fmt.Sprintf("City-%02d", i) }

func TestRandomWorkloadBasics(t *testing.T) {
	w, err := RandomWorkload(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tables) != 5 || len(w.Stats) != 5 || len(w.Services()) != 5 {
		t.Fatalf("workload incomplete: %d tables, %d stats", len(w.Tables), len(w.Stats))
	}
	if w.QueryText == "" || w.Inputs["INPUT1"].IsNull() {
		t.Error("query text or inputs missing")
	}
	// Roots have no parent; non-roots point at an earlier alias.
	roots := 0
	for alias, parent := range w.Parents {
		if parent == "" {
			roots++
			continue
		}
		if _, ok := w.Tables[parent]; !ok {
			t.Errorf("alias %s has unknown parent %s", alias, parent)
		}
	}
	if roots == 0 {
		t.Error("no root service")
	}
	// Determinism: the same seed regenerates the same query text.
	w2, err := RandomWorkload(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if w2.QueryText != w.QueryText {
		t.Error("same seed produced different workloads")
	}
	// Bounds are enforced.
	if _, err := RandomWorkload(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RandomWorkload(1, 13); err == nil {
		t.Error("n=13 accepted")
	}
}
