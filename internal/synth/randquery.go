package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/types"
)

// Workload is a randomly generated multi-domain query instance: a
// registry of services with random statistics and dependency structure, a
// conjunctive query over all of them, and the per-alias statistics the
// optimizer needs. It drives the optimizer stress experiments (random
// query graphs of 3–8 services, per the E9/E10 design).
type Workload struct {
	Registry *mart.Registry
	// QueryText is the query in concrete syntax (exercising the parser).
	QueryText string
	// Stats maps alias → statistics.
	Stats map[string]service.Stats
	// Parents maps alias → the alias it pipes from ("" for roots bound
	// by the user input).
	Parents map[string]string
	// Tables maps alias → a populated service with coherent data: child
	// rows reference parent Ids, roots carry Seed = 1.
	Tables map[string]*service.Table
	// Inputs binds the workload's INPUT variables (INPUT1 = 1).
	Inputs map[string]types.Value
}

// Services returns the populated tables keyed by alias, for the engine.
func (w *Workload) Services() map[string]service.Service {
	out := make(map[string]service.Service, len(w.Tables))
	for a, t := range w.Tables {
		out[a] = t
	}
	return out
}

// RandomWorkload generates a workload of n services (2 ≤ n ≤ 12) under
// the given seed. Every non-root service depends on one earlier service
// through a connection pattern (Id → Key); roots bind their Seed input to
// INPUT1. Services are randomly exact or chunked search services with
// random cardinalities, chunk sizes, latencies and scoring shapes, so the
// dependency structure and the statistics vary across seeds while every
// generated query stays feasible.
func RandomWorkload(seed int64, n int) (*Workload, error) {
	if n < 2 || n > 12 {
		return nil, fmt.Errorf("synth: workload size %d outside [2,12]", n)
	}
	rng := rand.New(rand.NewSource(seed))
	reg := mart.NewRegistry()
	stats := make(map[string]service.Stats, n)
	parents := make(map[string]string, n)
	tables := make(map[string]*service.Table, n)
	ids := make(map[string][]int64, n) // alias → generated Ids

	var selectParts, condParts, rankParts []string
	marts := make([]*mart.Mart, n)
	searchCount := 0
	nextID := int64(0)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("S%02d", i)
		alias := fmt.Sprintf("A%d", i)
		isSearch := rng.Intn(2) == 0
		m := &mart.Mart{Name: name, Attributes: []mart.Attribute{
			{Name: "Id", Kind: types.KindInt},
			{Name: "Key", Kind: types.KindInt},
			{Name: "Seed", Kind: types.KindInt},
			{Name: "Val", Kind: types.KindFloat},
		}}
		marts[i] = m
		if err := reg.AddMart(m); err != nil {
			return nil, err
		}
		adorn := map[string]mart.Adornment{}
		// Roots take Seed as input; children take Key.
		isRoot := i == 0 || rng.Intn(3) == 0
		if isRoot {
			adorn["Seed"] = mart.Input
		} else {
			adorn["Key"] = mart.Input
		}
		if isSearch {
			adorn["Val"] = mart.Ranked
		}
		si, err := mart.NewInterface(name+"if", m, adorn)
		if err != nil {
			return nil, err
		}
		if err := reg.AddInterface(si); err != nil {
			return nil, err
		}

		st := service.Stats{
			Latency:     time.Duration(20+rng.Intn(180)) * time.Millisecond,
			CostPerCall: 1 + float64(rng.Intn(3)),
		}
		if isSearch {
			searchCount++
			st.ChunkSize = []int{5, 10, 20}[rng.Intn(3)]
			st.AvgCardinality = float64(st.ChunkSize * (2 + rng.Intn(8)))
			if rng.Intn(2) == 0 {
				st.Scoring = service.Linear(int(st.AvgCardinality))
			} else {
				st.Scoring = service.Step(st.ChunkSize*(1+rng.Intn(3)), 0.9, 0.1)
			}
			rankParts = append(rankParts, fmt.Sprintf("%g %s", 1.0, alias))
		} else {
			st.AvgCardinality = float64(1 + rng.Intn(30))
			st.Scoring = service.Constant(0.5)
		}
		stats[alias] = st

		selectParts = append(selectParts, fmt.Sprintf("%sif as %s", name, alias))
		parentAlias := ""
		if isRoot {
			condParts = append(condParts, fmt.Sprintf("%s.Seed = INPUT1", alias))
			parents[alias] = ""
		} else {
			parent := rng.Intn(i)
			parentAlias = fmt.Sprintf("A%d", parent)
			pattern := &mart.ConnectionPattern{
				Name: fmt.Sprintf("L%02dto%02d", parent, i),
				From: marts[parent], To: m,
				Joins:       []mart.Join{{From: "Id", To: "Key"}},
				Selectivity: 0.05 + rng.Float64()*0.6,
			}
			if err := reg.AddPattern(pattern); err != nil {
				return nil, err
			}
			condParts = append(condParts, fmt.Sprintf("%s(%s,%s)", pattern.Name, parentAlias, alias))
			parents[alias] = parentAlias
		}

		// Populate the table with coherent rows.
		tab, err := service.NewTable(si, st)
		if err != nil {
			return nil, err
		}
		rows := int(st.AvgCardinality)
		if rows < 1 {
			rows = 1
		}
		if rows > 40 {
			rows = 40
		}
		for r := 0; r < rows; r++ {
			score := st.Scoring.Score(r)
			tu := types.NewTuple(score)
			tu.Set("Id", types.Int(nextID)).
				Set("Val", types.Float(score)).
				Set("Seed", types.Int(1))
			nextID++
			if parentAlias == "" {
				tu.Set("Key", types.Int(-1))
			} else {
				pids := ids[parentAlias]
				tu.Set("Key", types.Int(pids[rng.Intn(len(pids))]))
			}
			ids[alias] = append(ids[alias], tu.Get("Id").IntVal())
			tab.Add(tu)
		}
		tables[alias] = tab
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Random%d: select %s where %s",
		seed, strings.Join(selectParts, ", "), strings.Join(condParts, " and "))
	if len(rankParts) > 0 {
		fmt.Fprintf(&b, " rank %s", strings.Join(rankParts, ", "))
	}
	return &Workload{
		Registry:  reg,
		QueryText: b.String(),
		Stats:     stats,
		Parents:   parents,
		Tables:    tables,
		Inputs:    map[string]types.Value{"INPUT1": types.Int(1)},
	}, nil
}
