package synth

import (
	"fmt"
	"math/rand"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/service"
	"seco/internal/types"
)

// MovieWorld is the generated universe of the running example: movie,
// theatre and restaurant services loaded with coherent data so the
// Shows and DinnerPlace connection patterns hold with approximately the
// chapter's selectivities (2% and 40%).
type MovieWorld struct {
	Movies      *service.Table
	Theatres    *service.Table
	Restaurants *service.Table
	// Inputs are canonical bindings for the running example's INPUT
	// variables (user in Milano looking for recent comedies and a
	// pizzeria).
	Inputs map[string]types.Value
}

// MovieConfig sizes the movie world.
type MovieConfig struct {
	// Movies is the movie-universe size (default 200).
	Movies int
	// Theatres is the theatre count (default 50).
	Theatres int
	// TitlesPerTheatre is the billboard size (default Movies/Theatres,
	// giving the chapter's 2% Shows selectivity).
	TitlesPerTheatre int
	// RestaurantShare is the fraction of theatres with a nearby
	// restaurant (default 0.4 = the DinnerPlace selectivity).
	RestaurantShare float64
	// Seed drives all pseudo-random choices.
	Seed int64
}

func (c *MovieConfig) defaults() {
	if c.Movies <= 0 {
		c.Movies = 200
	}
	if c.Theatres <= 0 {
		c.Theatres = 50
	}
	if c.TitlesPerTheatre <= 0 {
		c.TitlesPerTheatre = c.Movies / c.Theatres
		if c.TitlesPerTheatre < 1 {
			c.TitlesPerTheatre = 1
		}
	}
	if c.RestaurantShare <= 0 {
		c.RestaurantShare = 0.4
	}
}

// Genres, languages and countries of the generated movie universe.
var (
	genres    = []string{"Comedy", "Drama", "Thriller", "Romance"}
	languages = []string{"English", "Italian"}
	countries = []string{"Italy", "France", "USA"}
)

// NewMovieWorld generates the running-example universe against the given
// registry (which must hold the MovieScenario marts and interfaces).
func NewMovieWorld(reg *mart.Registry, cfg MovieConfig) (*MovieWorld, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := plan.RunningExampleStats()

	movieIf, ok := reg.Interface("Movie1")
	if !ok {
		return nil, fmt.Errorf("synth: Movie1 interface not registered")
	}
	theatreIf, ok := reg.Interface("Theatre1")
	if !ok {
		return nil, fmt.Errorf("synth: Theatre1 interface not registered")
	}
	restaurantIf, ok := reg.Interface("Restaurant1")
	if !ok {
		return nil, fmt.Errorf("synth: Restaurant1 interface not registered")
	}

	mStats := stats["M"]
	mStats.AvgCardinality = float64(cfg.Movies)
	movies, err := service.NewTable(movieIf, mStats)
	if err != nil {
		return nil, err
	}
	movies.SetMatchOp("Openings.Date", types.OpGe)

	base := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	titles := make([]string, cfg.Movies)
	movieScoring := service.Linear(cfg.Movies)
	for i := 0; i < cfg.Movies; i++ {
		title := fmt.Sprintf("Movie-%04d", i)
		titles[i] = title
		score := movieScoring.Score(i)
		tu := types.NewTuple(score)
		tu.Set("Title", types.String(title)).
			Set("Director", types.String(fmt.Sprintf("Director-%02d", i%37))).
			Set("Score", types.Float(score)).
			Set("Year", types.Int(int64(2000+i%10))).
			Set("Language", types.String(languages[i%len(languages)]))
		tu.AddGroup("Genres", types.SubTuple{"Genre": types.String(genres[i%len(genres)])})
		if i%3 == 0 { // some movies carry a second genre
			tu.AddGroup("Genres", types.SubTuple{"Genre": types.String(genres[(i+1)%len(genres)])})
		}
		for _, c := range countries {
			tu.AddGroup("Openings", types.SubTuple{
				"Country": types.String(c),
				"Date":    types.Date(base.AddDate(0, 0, rng.Intn(90))),
			})
		}
		tu.AddGroup("Actors", types.SubTuple{"Name": types.String(fmt.Sprintf("Actor-%02d", i%53))})
		movies.Add(tu)
	}

	tStats := stats["T"]
	tStats.AvgCardinality = float64(cfg.Theatres)
	theatres, err := service.NewTable(theatreIf, tStats)
	if err != nil {
		return nil, err
	}
	userAddr, userCity, userCountry := "Piazza Leonardo 32", "Milano", "Italy"
	theatreScoring := service.Square(cfg.Theatres)
	type theatreLoc struct{ addr, city, country string }
	var locs []theatreLoc
	for i := 0; i < cfg.Theatres; i++ {
		score := theatreScoring.Score(i)
		addr := fmt.Sprintf("Via Teatro %d", i)
		locs = append(locs, theatreLoc{addr, userCity, userCountry})
		tu := types.NewTuple(score)
		tu.Set("Name", types.String(fmt.Sprintf("Theatre-%02d", i))).
			Set("UAddress", types.String(userAddr)).
			Set("UCity", types.String(userCity)).
			Set("UCountry", types.String(userCountry)).
			Set("TAddress", types.String(addr)).
			Set("TCity", types.String(userCity)).
			Set("TCountry", types.String(userCountry)).
			Set("TPhone", types.String(fmt.Sprintf("+39-02-%07d", i))).
			Set("Distance", types.Float(0.2+0.15*float64(i)))
		for j := 0; j < cfg.TitlesPerTheatre; j++ {
			tu.AddGroup("Movies", types.SubTuple{
				"Title":      types.String(titles[rng.Intn(len(titles))]),
				"StartTimes": types.String("18:30;21:00"),
				"Duration":   types.Int(90 + int64(rng.Intn(60))),
			})
		}
		theatres.Add(tu)
	}

	rStats := stats["R"]
	restaurants, err := service.NewTable(restaurantIf, rStats)
	if err != nil {
		return nil, err
	}
	categories := []string{"Pizzeria", "Trattoria", "Sushi"}
	rIdx := 0
	for _, loc := range locs {
		if rng.Float64() >= cfg.RestaurantShare {
			continue
		}
		n := 1 + rng.Intn(2)
		for j := 0; j < n; j++ {
			score := 0.3 + 0.7*rng.Float64()
			tu := types.NewTuple(score)
			tu.Set("Name", types.String(fmt.Sprintf("Ristorante-%03d", rIdx))).
				Set("UAddress", types.String(loc.addr)).
				Set("UCity", types.String(loc.city)).
				Set("UCountry", types.String(loc.country)).
				Set("RAddress", types.String(fmt.Sprintf("%s/ang. %d", loc.addr, j))).
				Set("RCity", types.String(loc.city)).
				Set("RCountry", types.String(loc.country)).
				Set("Phone", types.String(fmt.Sprintf("+39-02-%07d", 1000000+rIdx))).
				Set("Url", types.String(fmt.Sprintf("http://example.test/r%d", rIdx))).
				Set("MapUrl", types.String(fmt.Sprintf("http://maps.test/r%d", rIdx))).
				Set("Distance", types.Float(0.05+0.05*float64(j))).
				Set("Rating", types.Float(score*5))
			// Every restaurant lists Pizzeria so the canonical category
			// input matches; some carry a second category.
			tu.AddGroup("Categories", types.SubTuple{"Name": types.String("Pizzeria")})
			if rng.Intn(2) == 0 {
				tu.AddGroup("Categories", types.SubTuple{"Name": types.String(categories[1+rng.Intn(2)])})
			}
			restaurants.Add(tu)
			rIdx++
		}
	}

	return &MovieWorld{
		Movies:      movies,
		Theatres:    theatres,
		Restaurants: restaurants,
		Inputs: map[string]types.Value{
			"INPUT1": types.String("Comedy"),
			"INPUT2": types.String("Italy"),
			"INPUT3": types.Date(base),
			"INPUT4": types.String(userAddr),
			"INPUT5": types.String(userCity),
			"INPUT6": types.String("Pizzeria"),
			"INPUT7": types.String("English"),
		},
	}, nil
}

// Services returns the world's services keyed by the running example's
// aliases.
func (w *MovieWorld) Services() map[string]service.Service {
	return map[string]service.Service{
		"M": w.Movies,
		"T": w.Theatres,
		"R": w.Restaurants,
	}
}
