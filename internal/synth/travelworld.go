package synth

import (
	"fmt"
	"math/rand"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/service"
	"seco/internal/types"
)

// TravelWorld is the generated universe behind the Conference/Weather/
// Flight/Hotel plan of Figs. 2–3.
type TravelWorld struct {
	Conferences *service.Table
	Weather     *service.Table
	Flights     *service.Table
	Hotels      *service.Table
	// Inputs are canonical bindings: topic "databases", origin "Milano",
	// month 7.
	Inputs map[string]types.Value
}

// TravelConfig sizes the travel world.
type TravelConfig struct {
	// ConferencesPerTopic (default 20, the Fig. 2 cardinality).
	ConferencesPerTopic int
	// Cities is the number of candidate cities (default 12).
	Cities int
	// FlightsPerCity and HotelsPerCity size the search services
	// (default 40 each).
	FlightsPerCity, HotelsPerCity int
	// HotShare is the fraction of cities above 26°C in the canonical
	// month (default 1/3, making Weather selective in context).
	HotShare float64
	// Seed drives all pseudo-random choices.
	Seed int64
}

func (c *TravelConfig) defaults() {
	if c.ConferencesPerTopic <= 0 {
		c.ConferencesPerTopic = 20
	}
	if c.Cities <= 0 {
		c.Cities = 12
	}
	if c.FlightsPerCity <= 0 {
		c.FlightsPerCity = 40
	}
	if c.HotelsPerCity <= 0 {
		c.HotelsPerCity = 40
	}
	if c.HotShare <= 0 {
		c.HotShare = 1.0 / 3.0
	}
}

var topics = []string{"databases", "ai", "systems"}

// NewTravelWorld generates the travel universe against the given registry
// (which must hold the TravelScenario marts and interfaces).
func NewTravelWorld(reg *mart.Registry, cfg TravelConfig) (*TravelWorld, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := plan.TravelStats()

	confIf, ok := reg.Interface("Conference1")
	if !ok {
		return nil, fmt.Errorf("synth: Conference1 interface not registered")
	}
	weatherIf, ok := reg.Interface("Weather1")
	if !ok {
		return nil, fmt.Errorf("synth: Weather1 interface not registered")
	}
	flightIf, ok := reg.Interface("Flight1")
	if !ok {
		return nil, fmt.Errorf("synth: Flight1 interface not registered")
	}
	hotelIf, ok := reg.Interface("Hotel1")
	if !ok {
		return nil, fmt.Errorf("synth: Hotel1 interface not registered")
	}

	cities := make([]string, cfg.Cities)
	for i := range cities {
		cities[i] = fmt.Sprintf("City-%02d", i)
	}
	month := 7
	year := 2009

	conferences, err := service.NewTable(confIf, stats["C"])
	if err != nil {
		return nil, err
	}
	type confSite struct {
		city string
		date time.Time
	}
	var sites []confSite
	for _, topic := range topics {
		for i := 0; i < cfg.ConferencesPerTopic; i++ {
			city := cities[rng.Intn(len(cities))]
			start := time.Date(year, time.Month(month), 1+rng.Intn(27), 0, 0, 0, 0, time.UTC)
			if topic == topics[0] {
				sites = append(sites, confSite{city, start})
			}
			tu := types.NewTuple(0.5)
			tu.Set("Name", types.String(fmt.Sprintf("%s-conf-%02d", topic, i))).
				Set("Topic", types.String(topic)).
				Set("City", types.String(city)).
				Set("Country", types.String("Wonderland")).
				Set("StartDate", types.Date(start)).
				Set("EndDate", types.Date(start.AddDate(0, 0, 3)))
			conferences.Add(tu)
		}
	}

	weather, err := service.NewTable(weatherIf, stats["W"])
	if err != nil {
		return nil, err
	}
	hot := int(float64(cfg.Cities) * cfg.HotShare)
	for i, city := range cities {
		for m := 1; m <= 12; m++ {
			temp := 10 + rng.Float64()*14 // 10..24 °C
			if i < hot && m == month {
				temp = 27 + rng.Float64()*8 // hot in the canonical month
			}
			tu := types.NewTuple(0.5)
			tu.Set("City", types.String(city)).
				Set("Month", types.Int(int64(m))).
				Set("AvgTemp", types.Float(temp))
			weather.Add(tu)
		}
	}

	flights, err := service.NewTable(flightIf, stats["F"])
	if err != nil {
		return nil, err
	}
	origin := "Milano"
	flightScoring := stats["F"].Scoring
	for _, site := range sites {
		for j := 0; j < cfg.FlightsPerCity; j++ {
			score := flightScoring.Score(j)
			tu := types.NewTuple(score)
			tu.Set("From", types.String(origin)).
				Set("To", types.String(site.city)).
				Set("Date", types.Date(site.date)).
				Set("Carrier", types.String(fmt.Sprintf("Carrier-%d", j%7))).
				Set("Price", types.Float(80+600*(1-score)))
			flights.Add(tu)
		}
	}

	hotels, err := service.NewTable(hotelIf, stats["H"])
	if err != nil {
		return nil, err
	}
	hotelScoring := stats["H"].Scoring
	for _, city := range cities {
		for j := 0; j < cfg.HotelsPerCity; j++ {
			score := hotelScoring.Score(j)
			tu := types.NewTuple(score)
			tu.Set("Name", types.String(fmt.Sprintf("Hotel-%s-%02d", city, j))).
				Set("City", types.String(city)).
				Set("Stars", types.Int(1+int64(4*score))).
				Set("Price", types.Float(60+300*score)).
				Set("Rating", types.Float(score*10))
			hotels.Add(tu)
		}
	}

	return &TravelWorld{
		Conferences: conferences,
		Weather:     weather,
		Flights:     flights,
		Hotels:      hotels,
		Inputs: map[string]types.Value{
			"INPUT1": types.String(topics[0]),
			"INPUT2": types.String(origin),
			"INPUT3": types.Int(int64(month)),
		},
	}, nil
}

// Services returns the world's services keyed by the travel example's
// aliases.
func (w *TravelWorld) Services() map[string]service.Service {
	return map[string]service.Service{
		"C": w.Conferences,
		"W": w.Weather,
		"F": w.Flights,
		"H": w.Hotels,
	}
}
