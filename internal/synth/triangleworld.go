package synth

import (
	"fmt"
	"math/rand"

	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/types"
)

// TriangleWorld is the generated universe of the cyclic triangle
// scenario: a festival seed plus artist, venue and promoter services
// whose three edge attributes (Genre, District, Label) are drawn
// independently, so each connection pattern holds with probability
// 1/Keys independently of the other two. That independence is what
// separates the join topologies: a binary cascade materializes an
// intermediate of about N²/Keys pairs before the cycle-closing edge
// prunes it, while the n-ary intersection applies all three edges at
// once.
type TriangleWorld struct {
	Festivals *service.Table
	Artists   *service.Table
	Venues    *service.Table
	Promoters *service.Table
	// Inputs binds INPUT1 to the canonical festival name.
	Inputs map[string]types.Value
}

// TriangleConfig sizes the triangle world.
type TriangleConfig struct {
	// Rows is the per-service universe size (default 120).
	Rows int
	// Keys is the number of distinct values per edge attribute (default
	// 6, giving each pattern the registered 1/6 selectivity).
	Keys int
	// ChunkSize is the per-fetch chunk of every service (default 5).
	ChunkSize int
	// Seed drives all pseudo-random choices.
	Seed int64
	// Skew, when > 1, draws every edge-attribute key from a zipf
	// distribution with that exponent instead of uniformly, while the
	// registered service statistics stay those of the uniform world. A
	// few hot keys then dominate every edge, the real match probability
	// rises far above the registered 1/Keys, and the static annotations
	// underestimate the join flow — the drift scenario the fidelity
	// report exists to expose.
	Skew float64
}

func (c *TriangleConfig) defaults() {
	if c.Rows <= 0 {
		c.Rows = 120
	}
	if c.Keys <= 0 {
		c.Keys = 6
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 5
	}
}

// NewTriangleWorld generates the triangle universe against the given
// registry (which must hold the TriangleScenario marts and interfaces).
func NewTriangleWorld(reg *mart.Registry, cfg TriangleConfig) (*TriangleWorld, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	const city = "Milano"

	festivalIf, ok := reg.Interface("Festival1")
	if !ok {
		return nil, fmt.Errorf("synth: Festival1 interface not registered")
	}
	festivals, err := service.NewTable(festivalIf, service.Stats{
		AvgCardinality: 1,
		CostPerCall:    1,
		Scoring:        service.Constant(0.5),
	})
	if err != nil {
		return nil, err
	}
	for i, name := range []string{"Aurora", "Borealis", "Cinder"} {
		tu := types.NewTuple(0.5)
		tu.Set("Name", types.String(name)).
			Set("City", types.String(fmt.Sprintf("%s-%d", city, i)))
		if i == 0 {
			tu.Set("City", types.String(city))
		}
		festivals.Add(tu)
	}

	searchStats := service.Stats{
		AvgCardinality: float64(cfg.Rows),
		ChunkSize:      cfg.ChunkSize,
		CostPerCall:    1,
		Scoring:        service.Linear(cfg.Rows),
	}
	build := func(iface string, fill func(tu *types.Tuple, i int)) (*service.Table, error) {
		si, ok := reg.Interface(iface)
		if !ok {
			return nil, fmt.Errorf("synth: %s interface not registered", iface)
		}
		tab, err := service.NewTable(si, searchStats)
		if err != nil {
			return nil, err
		}
		scoring := service.Linear(cfg.Rows)
		for i := 0; i < cfg.Rows; i++ {
			score := scoring.Score(i)
			tu := types.NewTuple(score)
			tu.Set("City", types.String(city)).
				Set("Score", types.Float(score))
			fill(tu, i)
			tab.Add(tu)
		}
		return tab, nil
	}

	keyIdx := func() int { return rng.Intn(cfg.Keys) }
	if cfg.Skew > 1 {
		z := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Keys-1))
		keyIdx = func() int { return int(z.Uint64()) }
	}
	genre := func() types.Value { return types.String(fmt.Sprintf("Genre-%02d", keyIdx())) }
	district := func() types.Value { return types.String(fmt.Sprintf("District-%02d", keyIdx())) }
	label := func() types.Value { return types.String(fmt.Sprintf("Label-%02d", keyIdx())) }

	artists, err := build("Artist1", func(tu *types.Tuple, i int) {
		tu.Set("Name", types.String(fmt.Sprintf("Artist-%03d", i))).
			Set("Genre", genre()).
			Set("Label", label()).
			Set("Draw", types.Int(int64(rng.Intn(100))))
	})
	if err != nil {
		return nil, err
	}
	venues, err := build("Venue1", func(tu *types.Tuple, i int) {
		tu.Set("Name", types.String(fmt.Sprintf("Venue-%03d", i))).
			Set("Genre", genre()).
			Set("District", district()).
			Set("Capacity", types.Int(int64(rng.Intn(100))))
	})
	if err != nil {
		return nil, err
	}
	promoters, err := build("Promoter1", func(tu *types.Tuple, i int) {
		tu.Set("Name", types.String(fmt.Sprintf("Promoter-%03d", i))).
			Set("District", district()).
			Set("Label", label())
	})
	if err != nil {
		return nil, err
	}

	return &TriangleWorld{
		Festivals: festivals,
		Artists:   artists,
		Venues:    venues,
		Promoters: promoters,
		Inputs: map[string]types.Value{
			"INPUT1": types.String("Aurora"),
		},
	}, nil
}

// Services returns the world's services keyed by the triangle query's
// aliases.
func (w *TriangleWorld) Services() map[string]service.Service {
	return map[string]service.Service{
		"S": w.Festivals,
		"A": w.Artists,
		"V": w.Venues,
		"P": w.Promoters,
	}
}
