// Package synth generates the deterministic synthetic data universes that
// stand in for the chapter's remote web services. Each generator loads an
// in-memory service.Table so that optimizer, engine and benchmarks
// exercise exactly the code paths a remote deployment would, with
// controllable statistics (cardinality, chunk size, latency, scoring
// shape) and reproducible content under a fixed seed.
package synth

import (
	"fmt"
	"math/rand"

	"seco/internal/mart"
	"seco/internal/service"
	"seco/internal/types"
)

// RankedConfig parameterizes a generic single-attribute ranked service
// used by join-method and baseline benchmarks.
type RankedConfig struct {
	// Name is the mart/interface base name.
	Name string
	// N is the number of tuples.
	N int
	// KeyMod maps tuple i to key i % KeyMod; two services with the same
	// KeyMod join on equal keys with selectivity ≈ 1/KeyMod.
	KeyMod int
	// Stats are the published service statistics (scoring drives the
	// generated score curve).
	Stats service.Stats
	// Shuffle permutes which keys get the best scores (seeded), so two
	// services' rankings are uncorrelated.
	Shuffle bool
	// Seed drives the permutation.
	Seed int64
}

// NewRanked builds a generic chunked search service: N tuples with Key =
// i % KeyMod and scores following the configured scoring curve in rank
// order.
func NewRanked(cfg RankedConfig) (*service.Table, error) {
	if cfg.N <= 0 || cfg.KeyMod <= 0 {
		return nil, fmt.Errorf("synth: invalid ranked config N=%d KeyMod=%d", cfg.N, cfg.KeyMod)
	}
	m := &mart.Mart{Name: cfg.Name, Attributes: []mart.Attribute{
		{Name: "Key", Kind: types.KindInt},
		{Name: "Pos", Kind: types.KindInt},
		{Name: "Score", Kind: types.KindFloat},
	}}
	si, err := mart.NewInterface(cfg.Name+"1", m, map[string]mart.Adornment{
		"Score": mart.Ranked,
	})
	if err != nil {
		return nil, err
	}
	tab, err := service.NewTable(si, cfg.Stats)
	if err != nil {
		return nil, err
	}
	perm := make([]int, cfg.N)
	for i := range perm {
		perm[i] = i
	}
	if cfg.Shuffle {
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	for i := 0; i < cfg.N; i++ {
		score := cfg.Stats.Scoring.Score(i)
		tu := types.NewTuple(score)
		tu.Set("Key", types.Int(int64(perm[i]%cfg.KeyMod))).
			Set("Pos", types.Int(int64(i))).
			Set("Score", types.Float(score))
		tab.Add(tu)
	}
	return tab, nil
}

// NewKeyed builds a generic exact service with an input attribute "Key":
// for each key in [0, keys) it holds perKey tuples, so one invocation with
// a bound key returns perKey results. Used as the downstream end of pipe
// joins and by the WSMS baseline benchmarks.
func NewKeyed(name string, keys, perKey int, stats service.Stats) (*service.Table, error) {
	if keys <= 0 || perKey < 0 {
		return nil, fmt.Errorf("synth: invalid keyed config keys=%d perKey=%d", keys, perKey)
	}
	m := &mart.Mart{Name: name, Attributes: []mart.Attribute{
		{Name: "Key", Kind: types.KindInt},
		{Name: "Rank", Kind: types.KindInt},
		{Name: "Payload", Kind: types.KindString},
	}}
	si, err := mart.NewInterface(name+"1", m, map[string]mart.Adornment{
		"Key": mart.Input,
	})
	if err != nil {
		return nil, err
	}
	tab, err := service.NewTable(si, stats)
	if err != nil {
		return nil, err
	}
	for k := 0; k < keys; k++ {
		for r := 0; r < perKey; r++ {
			score := stats.Scoring.Score(r)
			tu := types.NewTuple(score)
			tu.Set("Key", types.Int(int64(k))).
				Set("Rank", types.Int(int64(r))).
				Set("Payload", types.String(fmt.Sprintf("%s-%d-%d", name, k, r)))
			tab.Add(tu)
		}
	}
	return tab, nil
}
