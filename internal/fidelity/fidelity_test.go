package fidelity

import (
	"strings"
	"testing"

	"seco/internal/obs"
	"seco/internal/plan"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{10, 10, 1},
		{10, 100, 10},
		{100, 10, 10},
		{0, 0, 1},   // both clamped to epsilon
		{0, 5, 5},   // estimated empty, produced 5
		{5, 0, 5},   // estimated 5, produced nothing
		{0.2, 1, 1}, // sub-epsilon estimates clamp up
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5) // must not panic
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	var r *Recorder
	if r.Counter("x") != nil {
		t.Fatal("nil recorder handed out a counter")
	}
	if r.Value("x") != 0 {
		t.Fatal("nil recorder value != 0")
	}
}

func TestRecorderSlab(t *testing.T) {
	r := NewRecorder(2)
	a := r.Counter("a")
	b := r.Counter("b")
	if a == nil || b == nil || a == b {
		t.Fatal("expected two distinct counters")
	}
	if r.Counter("a") != a {
		t.Fatal("same node must return the same counter")
	}
	// Beyond the pre-sized slab the recorder still works (individual
	// allocation fallback).
	c := r.Counter("c")
	c.Add(3)
	a.Add(7)
	if r.Value("a") != 7 || r.Value("c") != 3 || r.Value("b") != 0 {
		t.Fatalf("values a=%d b=%d c=%d", r.Value("a"), r.Value("b"), r.Value("c"))
	}
	if r.Value("missing") != 0 {
		t.Fatal("missing node value != 0")
	}
}

func testAnn() *plan.Annotated {
	return &plan.Annotated{Ann: map[string]plan.Annotation{
		"S":    {TOut: 10, Calls: 2},
		"J":    {TOut: 4, Candidates: 50},
		"keep": {TOut: 8},
	}}
}

func TestAssessQAndDrift(t *testing.T) {
	acts := []Actuals{
		{Node: "S", Kind: "scan", TuplesOut: 10, Fetches: 2},
		{Node: "J", Kind: "join", TuplesOut: 40, Candidates: 50}, // out 10x under-estimated
		{Node: "keep", Kind: "selection", TuplesOut: 1},          // 8x over-estimated: no drift
	}
	rep := Assess(testAnn(), acts, 4)
	if len(rep.Nodes) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Nodes))
	}
	// Sorted by node ID: J, S, keep.
	j, s, keep := rep.Nodes[0], rep.Nodes[1], rep.Nodes[2]
	if j.Node != "J" || s.Node != "S" || keep.Node != "keep" {
		t.Fatalf("rows out of order: %v %v %v", j.Node, s.Node, keep.Node)
	}
	if s.QOut != 1 || s.QCalls != 1 || s.Q != 1 || s.Drift {
		t.Fatalf("S row: %+v", s)
	}
	if j.QOut != 10 || j.QCand != 1 || j.Q != 10 || !j.Drift {
		t.Fatalf("J row: %+v", j)
	}
	// One-sided rule: the selection overestimate (q=8) exceeds the
	// threshold but must NOT drift.
	if keep.QOut != 8 || keep.Drift {
		t.Fatalf("keep row: %+v", keep)
	}
	if rep.Drifted != 1 || rep.MaxQ != 10 || rep.MaxNode != "J" {
		t.Fatalf("report: drifted=%d max_q=%v max_node=%q", rep.Drifted, rep.MaxQ, rep.MaxNode)
	}
}

func TestAssessDefaultThreshold(t *testing.T) {
	acts := []Actuals{{Node: "keep", Kind: "selection", TuplesOut: 33}} // ~4.1x under
	rep := Assess(testAnn(), acts, 0)
	if rep.Threshold != DefaultThreshold {
		t.Fatalf("threshold = %v", rep.Threshold)
	}
	if rep.Drifted != 1 || !rep.Nodes[0].Drift {
		t.Fatalf("expected drift at default threshold: %+v", rep.Nodes[0])
	}
}

func TestAssessSkipsUnannotated(t *testing.T) {
	rep := Assess(testAnn(), []Actuals{{Node: "ghost", Kind: "scan"}}, 0)
	if len(rep.Nodes) != 0 {
		t.Fatalf("unannotated node produced a row: %+v", rep.Nodes)
	}
}

func TestReportTextDeterministic(t *testing.T) {
	acts := []Actuals{
		{Node: "S", Kind: "scan", TuplesOut: 10, Fetches: 2},
		{Node: "J", Kind: "join", TuplesOut: 40, Candidates: 50},
	}
	rep := Assess(testAnn(), acts, 4)
	txt := rep.Text()
	if txt != Assess(testAnn(), acts, 4).Text() {
		t.Fatal("Text not deterministic for equal inputs")
	}
	for _, want := range []string{"node", "q-out", "DRIFT", "threshold=4 drifted=1 max_q=10 (J)"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Text missing %q:\n%s", want, txt)
		}
	}
	// Undefined dimensions render as "-": the scan row has no candidate
	// columns, the join row no calls columns.
	for _, l := range strings.Split(txt, "\n") {
		if strings.HasPrefix(l, "S ") && !strings.Contains(l, "-") {
			t.Fatalf("scan row misses '-' placeholders: %q", l)
		}
	}
	if (&Report{}).Text() == "" || (*Report)(nil).Text() != "" {
		t.Fatal("Text nil/empty conventions broken")
	}
}

func TestPublish(t *testing.T) {
	acts := []Actuals{
		{Node: "S", Kind: "scan", TuplesOut: 10, Fetches: 2},
		{Node: "J", Kind: "join", TuplesOut: 40, Candidates: 50},
	}
	rep := Assess(testAnn(), acts, 4)
	reg := obs.NewRegistry()
	rep.Publish(reg)
	if got := reg.Counter("seco.fidelity.drift.detected").Value(); got != 1 {
		t.Fatalf("drift.detected = %d", got)
	}
	if got := reg.Gauge("seco.fidelity.worst_q_milli.join").Value(); got != 10000 {
		t.Fatalf("worst_q_milli.join = %d", got)
	}
	if got := reg.Histogram("seco.fidelity.qerror.scan", QBuckets).Count(); got != 1 {
		t.Fatalf("qerror.scan count = %d", got)
	}
	// Nil-safety on both sides.
	rep.Publish(nil)
	(*Report)(nil).Publish(reg)
}
