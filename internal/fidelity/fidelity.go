// Package fidelity measures how well a plan's static annotations
// predicted what its execution actually did. The engine records per-node
// actuals (tuples in/out, request-responses, candidate pairs examined)
// into a Recorder; Assess joins those actuals against plan.Annotation
// and scores every node with the q-error of the cardinality-estimation
// literature: q = max(est/act, act/est), clamped below by Epsilon so
// zero-row nodes compare sanely. A per-plan Report carries the per-node
// rows, the worst offender, and a drift verdict — the future trigger for
// mid-query re-planning (ROADMAP item 4).
//
// Drift is one-sided by design: a node drifts only when its actual
// exceeds its estimate by more than the threshold factor.
// Overestimation is expected and benign here — the pull driver halts
// early and hash joins prune candidate pairs, so actuals legitimately
// undershoot the annotation. Underestimation is the direction that
// invalidates the optimizer's plan choice (the node was more expensive
// than the plan was costed for), so only that direction fires
// drift.detected.
package fidelity

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"seco/internal/obs"
	"seco/internal/plan"
	"seco/internal/plancheck"
)

// DefaultThreshold is the drift threshold used when a caller passes 0:
// a node drifts when its actual exceeds its estimate by more than this
// factor on any measured dimension.
const DefaultThreshold = 4.0

// Epsilon is the zero-row convention: both sides of a q-error ratio are
// clamped to at least Epsilon, so an estimated-empty node that produced
// nothing scores a perfect 1 instead of 0/0.
const Epsilon = 1.0

// QBuckets are the histogram bounds for q-error distributions. q is
// ≥ 1 by construction; the grid is dense near 1 (good estimates) and
// widens geometrically toward the badly mis-estimated tail.
var QBuckets = []float64{1, 1.5, 2, 3, 4, 6, 8, 16, 32, 64, 128}

// QError is the symmetric relative estimation error
// max(est/act, act/est), with both sides clamped to Epsilon.
func QError(est, act float64) float64 {
	if est < Epsilon {
		est = Epsilon
	}
	if act < Epsilon {
		act = Epsilon
	}
	if est >= act {
		return est / act
	}
	return act / est
}

// underFactor is the one-sided drift ratio: how many times the actual
// exceeded the estimate (≤ 1 when the node was overestimated).
func underFactor(est, act float64) float64 {
	if est < Epsilon {
		est = Epsilon
	}
	if act < Epsilon {
		act = Epsilon
	}
	return act / est
}

// Counter is a nil-safe atomic tally, mirroring obs.Counter: operators
// record into it unconditionally, and a nil counter (fidelity disabled)
// costs one predictable branch and zero allocations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; no-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Recorder hands out one candidate counter per plan node for a single
// run. All counters come from a slab sized once at compile time, so the
// enabled path allocates O(nodes) up front and nothing per Next; a nil
// Recorder hands out nil counters, keeping the disabled path zero-alloc
// (the obs.Tracer pattern). Counter is called during graph compilation
// only and is not safe for concurrent use; the counters it returns are.
type Recorder struct {
	slab  []Counter
	index map[string]*Counter
}

// NewRecorder pre-sizes the slab for a plan with the given node count.
func NewRecorder(nodes int) *Recorder {
	return &Recorder{
		slab:  make([]Counter, 0, nodes),
		index: make(map[string]*Counter, nodes),
	}
}

// Counter returns (creating if needed) the node's candidate counter;
// nil on a nil Recorder.
func (r *Recorder) Counter(node string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.index[node]; ok {
		return c
	}
	var c *Counter
	if len(r.slab) < cap(r.slab) {
		r.slab = r.slab[:len(r.slab)+1]
		c = &r.slab[len(r.slab)-1]
	} else {
		c = &Counter{}
	}
	r.index[node] = c
	return c
}

// Value reads a node's counter (0 when absent or on a nil Recorder).
func (r *Recorder) Value(node string) int64 {
	if r == nil {
		return 0
	}
	return r.index[node].Value()
}

// Actuals is what one compiled operator measured during a run.
type Actuals struct {
	// Node is the plan-node ID, Kind the plancheck operator kind
	// ("scan", "pipe", "join", "multijoin", "selection", "input").
	Node string
	Kind string
	// TuplesIn/TuplesOut are the combinations that entered/left the node.
	TuplesIn  float64
	TuplesOut float64
	// Fetches counts the request-responses a service node issued.
	Fetches float64
	// Candidates counts the candidate combinations the node examined:
	// pairs visited by a join, prefixes expanded by the multi-way join,
	// compose attempts of a service node.
	Candidates float64
}

// NodeFidelity is one node's estimate-vs-actual row. Calls columns are
// meaningful for service kinds (scan/pipe), candidate columns for join
// kinds; undefined dimensions carry zero q and render as "-".
type NodeFidelity struct {
	Node string `json:"node"`
	Kind string `json:"kind"`

	EstOut float64 `json:"est_out"`
	ActOut float64 `json:"act_out"`
	QOut   float64 `json:"q_out"`

	EstCalls float64 `json:"est_calls,omitempty"`
	ActCalls float64 `json:"act_calls,omitempty"`
	QCalls   float64 `json:"q_calls,omitempty"`

	EstCand float64 `json:"est_cand,omitempty"`
	ActCand float64 `json:"act_cand,omitempty"`
	QCand   float64 `json:"q_cand,omitempty"`

	// Q is the node's q-error: the worst q over its defined dimensions.
	Q float64 `json:"q"`
	// Drift reports that the actual exceeded the estimate by more than
	// the report's threshold on some dimension (one-sided; see the
	// package comment).
	Drift bool `json:"drift,omitempty"`
}

// serviceKind reports whether the calls dimension is defined.
func serviceKind(kind string) bool {
	return kind == plancheck.OpScan || kind == plancheck.OpPipe
}

// joinKind reports whether the candidates dimension is defined.
func joinKind(kind string) bool {
	return kind == plancheck.OpJoin || kind == plancheck.OpMultiJoin
}

// Report is the plan-level fidelity verdict of one run.
type Report struct {
	// Threshold is the drift factor the report was assessed with.
	Threshold float64 `json:"threshold"`
	// Nodes holds one row per compiled operator, sorted by node ID.
	Nodes []NodeFidelity `json:"nodes"`
	// Drifted counts the nodes whose actuals exceeded their estimates by
	// more than Threshold.
	Drifted int `json:"drifted"`
	// MaxQ/MaxNode identify the worst-estimated node of the plan.
	MaxQ    float64 `json:"max_q"`
	MaxNode string  `json:"max_node,omitempty"`
}

// Assess joins per-node actuals against the plan's annotations and
// scores every node. threshold ≤ 0 selects DefaultThreshold. Nodes
// without an annotation entry are skipped; rows come back sorted by
// node ID, so equal inputs produce identical reports.
func Assess(ann *plan.Annotated, acts []Actuals, threshold float64) *Report {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rows := append([]Actuals(nil), acts...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	rep := &Report{Threshold: threshold}
	for _, a := range rows {
		est, ok := ann.Ann[a.Node]
		if !ok {
			continue
		}
		nf := NodeFidelity{
			Node: a.Node, Kind: a.Kind,
			EstOut: est.TOut, ActOut: a.TuplesOut,
		}
		nf.QOut = QError(nf.EstOut, nf.ActOut)
		nf.Q = nf.QOut
		drift := underFactor(nf.EstOut, nf.ActOut) > threshold
		if serviceKind(a.Kind) {
			nf.EstCalls, nf.ActCalls = est.Calls, a.Fetches
			nf.QCalls = QError(nf.EstCalls, nf.ActCalls)
			if nf.QCalls > nf.Q {
				nf.Q = nf.QCalls
			}
			drift = drift || underFactor(nf.EstCalls, nf.ActCalls) > threshold
		}
		if joinKind(a.Kind) {
			nf.EstCand, nf.ActCand = est.Candidates, a.Candidates
			nf.QCand = QError(nf.EstCand, nf.ActCand)
			if nf.QCand > nf.Q {
				nf.Q = nf.QCand
			}
			drift = drift || underFactor(nf.EstCand, nf.ActCand) > threshold
		}
		nf.Drift = drift
		if drift {
			rep.Drifted++
		}
		if nf.Q > rep.MaxQ {
			rep.MaxQ, rep.MaxNode = nf.Q, nf.Node
		}
		rep.Nodes = append(rep.Nodes, nf)
	}
	return rep
}

// Publish records the report into the registry: one q-error histogram
// per operator kind, a per-kind worst-node gauge (milli-q, so the
// integer gauge keeps three decimals), and the drift counter. Nil-safe
// on both sides.
func (r *Report) Publish(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	worst := map[string]float64{}
	for _, nf := range r.Nodes {
		reg.Histogram("seco.fidelity.qerror."+nf.Kind, QBuckets).Observe(nf.Q)
		if nf.Q > worst[nf.Kind] {
			worst[nf.Kind] = nf.Q
		}
	}
	kinds := make([]string, 0, len(worst))
	for k := range worst {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		reg.Gauge("seco.fidelity.worst_q_milli."+k).Set(int64(worst[k]*1000 + 0.5))
	}
	reg.Counter("seco.fidelity.drift.detected").Add(int64(r.Drifted))
}

// Fnum renders an estimate/actual/q value compactly ('g' with 6
// significant digits), matching the engine's trace-attribute format.
func Fnum(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }

// Text renders the report as a deterministic fixed-width table plus a
// one-line summary, suitable for goldens and the serving layer's text
// endpoint. Undefined dimensions render as "-".
func (r *Report) Text() string {
	if r == nil {
		return ""
	}
	header := []string{"node", "kind", "est-out", "act-out", "q-out",
		"est-calls", "act-calls", "q-calls", "est-cand", "act-cand", "q-cand", "drift"}
	rows := make([][]string, 0, len(r.Nodes))
	for _, nf := range r.Nodes {
		row := []string{nf.Node, nf.Kind, Fnum(nf.EstOut), Fnum(nf.ActOut), Fnum(nf.QOut),
			"-", "-", "-", "-", "-", "-", "no"}
		if serviceKind(nf.Kind) {
			row[5], row[6], row[7] = Fnum(nf.EstCalls), Fnum(nf.ActCalls), Fnum(nf.QCalls)
		}
		if joinKind(nf.Kind) {
			row[8], row[9], row[10] = Fnum(nf.EstCand), Fnum(nf.ActCand), Fnum(nf.QCand)
		}
		if nf.Drift {
			row[11] = "DRIFT"
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		b.WriteString(strings.TrimRight(strings.Join(parts, "  "), " "))
		b.WriteString("\n")
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintf(&b, "threshold=%s drifted=%d max_q=%s", Fnum(r.Threshold), r.Drifted, Fnum(r.MaxQ))
	if r.MaxNode != "" {
		fmt.Fprintf(&b, " (%s)", r.MaxNode)
	}
	b.WriteString("\n")
	return b.String()
}
