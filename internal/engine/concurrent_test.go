package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/service"
	"seco/internal/synth"
)

// This file is the concurrent-runtime stress test of the unified operator
// runtime: ONE engine instance, with the Invoker's cross-query sharing
// layer on, executes the movienight and conftravel scenarios from many
// goroutines at once under both driver policies. It asserts what the
// refactor promises:
//
//   - per-run isolation: every run reports exactly the combinations (and,
//     under the drain policy, exactly the call counts) of an isolated
//     reference execution;
//   - sharing coherence: summed over all runs, the logical fetches equal
//     the share layer's wire fetches plus its memo and dedup hits;
//   - the sharing measurably deduplicates: the wire sees strictly fewer
//     request-responses than the runs logically issued.
//
// Run with -race; the per-run counters, the Share layer and the operator
// pipelines are all exercised simultaneously here.

type stressScenario struct {
	name string
	ann  *plan.Annotated
	opts Options
}

func stressFixtures(t *testing.T) (map[string]service.Service, []stressScenario) {
	t.Helper()
	movieReg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	mp, mq, err := plan.RunningExamplePlan(movieReg)
	if err != nil {
		t.Fatal(err)
	}
	movieWorld, err := synth.NewMovieWorld(movieReg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := plan.Annotate(mp, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	travelReg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	tp, tq, err := plan.TravelPlan(travelReg)
	if err != nil {
		t.Fatal(err)
	}
	travelWorld, err := synth.NewTravelWorld(travelReg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := plan.Annotate(tp, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}

	// One alias namespace: the movie and travel scenarios bind disjoint
	// aliases, so a single engine serves both query shapes at once.
	services := map[string]service.Service{}
	for alias, svc := range movieWorld.Services() {
		services[alias] = svc
	}
	for alias, svc := range travelWorld.Services() {
		services[alias] = svc
	}
	scenarios := []stressScenario{
		{"movienight", ma, Options{Inputs: movieWorld.Inputs, Weights: mq.Weights, TargetK: 5, Parallelism: 4}},
		{"conftravel", ta, Options{Inputs: travelWorld.Inputs, Weights: tq.Weights, TargetK: 5, Parallelism: 4}},
	}
	return services, scenarios
}

func runKeys(run *Run) []string {
	out := make([]string, len(run.Combinations))
	for i, c := range run.Combinations {
		out[i] = c.String()
	}
	return out
}

func TestConcurrentRunsThroughOneEngine(t *testing.T) {
	services, scenarios := stressFixtures(t)

	// References: each (scenario, policy) cell executed alone on an
	// engine without sharing.
	type cell struct {
		keys  []string
		calls map[string]int64
	}
	refs := map[string]cell{}
	for _, sc := range scenarios {
		for _, materialize := range []bool{false, true} {
			opts := sc.opts
			opts.Materialize = materialize
			run, err := New(services, nil).Execute(context.Background(), sc.ann, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Combinations) == 0 {
				t.Fatalf("%s reference returned nothing", sc.name)
			}
			refs[fmt.Sprintf("%s/%v", sc.name, materialize)] = cell{keys: runKeys(run), calls: run.Calls}
		}
	}

	// The one engine under test: shared Invoker, sharing layer on.
	e := NewWithConfig(services, Config{Share: true})

	const workers = 8
	const iterations = 3
	runs := make([]*Run, workers*iterations)
	names := make([]string, workers*iterations)
	drains := make([]bool, workers*iterations)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				idx := w*iterations + i
				sc := scenarios[idx%len(scenarios)]
				materialize := (idx/len(scenarios))%2 == 0
				opts := sc.opts
				opts.Materialize = materialize
				run, err := e.Execute(context.Background(), sc.ann, opts)
				if err != nil {
					t.Errorf("worker %d run %d (%s): %v", w, i, sc.name, err)
					return
				}
				runs[idx], names[idx], drains[idx] = run, sc.name, materialize
			}
		}(w)
	}
	wg.Wait()

	var logical int64
	for idx, run := range runs {
		if run == nil {
			continue // an Execute error already failed the test
		}
		logical += run.TotalCalls()
		ref := refs[fmt.Sprintf("%s/%v", names[idx], drains[idx])]
		keys := runKeys(run)
		if len(keys) != len(ref.keys) {
			t.Errorf("run %d (%s): %d combinations, reference %d", idx, names[idx], len(keys), len(ref.keys))
			continue
		}
		for i := range keys {
			if keys[i] != ref.keys[i] {
				t.Errorf("run %d (%s): combination %d diverges from the isolated reference", idx, names[idx], i)
				break
			}
		}
		// Call counts replay exactly under the drain policy (the pull
		// policy's trailing prefetches race with the top-k stop, as in the
		// chaos sweep). Sharing must not leak into the logical counts.
		if drains[idx] {
			for alias, want := range ref.calls {
				if run.Calls[alias] != want {
					t.Errorf("run %d (%s): alias %s made %d calls, reference %d",
						idx, names[idx], alias, run.Calls[alias], want)
				}
			}
		}
	}

	st := e.Invoker().ShareStats()
	if got := st.WireFetches + st.MemoHits + st.DedupHits; got != logical {
		t.Errorf("share counters incoherent: wire %d + memo %d + dedup %d = %d, logical fetches %d",
			st.WireFetches, st.MemoHits, st.DedupHits, got, logical)
	}
	if st.WireFetches >= logical {
		t.Errorf("sharing saved nothing: wire %d of %d logical fetches", st.WireFetches, logical)
	}
	if st.Saved() == 0 {
		t.Error("Saved() = 0 across concurrent identical queries")
	}
}

// TestPooledBuffersHammer stresses the compact runtime's shared memory
// machinery — the sync.Pool-backed arena blocks and chunk buffers, and the
// engine-scoped interner feeding the Share memo — with 8 workers looping
// runs through ONE engine. Run with -race. Every iteration recycles the
// previous runs' buffers, so a pooled slice or arena block released while
// still referenced shows up as a corrupted (or racy) combination: each
// run's materialized output must keep matching the isolated reference
// byte for byte.
func TestPooledBuffersHammer(t *testing.T) {
	services, scenarios := stressFixtures(t)
	refs := map[string][]string{}
	for _, sc := range scenarios {
		run, err := New(services, nil).Execute(context.Background(), sc.ann, sc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Combinations) == 0 {
			t.Fatalf("%s reference returned nothing", sc.name)
		}
		refs[sc.name] = runKeys(run)
	}

	e := NewWithConfig(services, Config{Share: true})
	const workers = 8
	const iterations = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				sc := scenarios[(w+i)%len(scenarios)]
				run, err := e.Execute(context.Background(), sc.ann, sc.opts)
				if err != nil {
					t.Errorf("worker %d iter %d (%s): %v", w, i, sc.name, err)
					return
				}
				keys := runKeys(run)
				want := refs[sc.name]
				if len(keys) != len(want) {
					t.Errorf("worker %d iter %d (%s): %d combinations, reference %d",
						w, i, sc.name, len(keys), len(want))
					return
				}
				for j := range keys {
					if keys[j] != want[j] {
						t.Errorf("worker %d iter %d (%s): combination %d diverged:\n got %s\nwant %s",
							w, i, sc.name, j, keys[j], want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
