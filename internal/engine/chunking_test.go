package engine

import (
	"math"
	"testing"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/types"
)

func scored(score float64) *comb {
	return &comb{score: score, comps: []*types.Tuple{types.NewTuple(score)}}
}

func TestRechunk(t *testing.T) {
	var items []*comb
	for i := 0; i < 7; i++ {
		items = append(items, scored(float64(7-i)))
	}
	chunks := rechunk(items, 3)
	if len(chunks) != 3 || len(chunks[0]) != 3 || len(chunks[1]) != 3 || len(chunks[2]) != 1 {
		t.Fatalf("rechunk(7, 3) sizes: %d chunks", len(chunks))
	}
	if chunks[2][0] != items[6] {
		t.Error("short tail chunk holds the wrong item")
	}
	if got := rechunk(items, 0); len(got) != 1 || len(got[0]) != 7 {
		t.Errorf("non-positive size must fall back to DefaultRechunkSize, got %d chunks", len(got))
	}
	if got := rechunk[*comb](nil, 3); got != nil {
		t.Errorf("rechunk(nil) = %v", got)
	}
}

func TestChunkTopAndMaxScore(t *testing.T) {
	chunk := []*comb{scored(0.9), scored(0.4), scored(0.7)}
	if chunkTop(chunk) != 0.9 {
		t.Errorf("chunkTop = %v, want the first (best-ranked) score", chunkTop(chunk))
	}
	if chunkTop(nil) != 0 {
		t.Errorf("chunkTop(empty) = %v", chunkTop(nil))
	}
	if maxScore(chunk) != 0.9 {
		t.Errorf("maxScore = %v", maxScore(chunk))
	}
	if !math.IsInf(maxScore(nil), -1) {
		t.Errorf("maxScore(empty) = %v, want -Inf", maxScore(nil))
	}
}

func TestChunkSizeOf(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{ann: a}
	var chunkedID, inputID string
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		switch {
		case n.Kind == plan.KindService && n.Stats.Chunked() && chunkedID == "":
			chunkedID = id
		case n.Kind == plan.KindInput:
			inputID = id
		}
	}
	if chunkedID == "" || inputID == "" {
		t.Fatal("fixture plan lacks a chunked service or input node")
	}
	n, _ := p.Node(chunkedID)
	if got := ex.chunkSizeOf(chunkedID); got != n.Stats.ChunkSize {
		t.Errorf("chunked service: size %d, want the service's ChunkSize %d", got, n.Stats.ChunkSize)
	}
	if got := ex.chunkSizeOf(inputID); got != DefaultRechunkSize {
		t.Errorf("non-service predecessor: size %d, want default %d", got, DefaultRechunkSize)
	}
	ex.opts.DefaultChunkSize = 4
	if got := ex.chunkSizeOf(inputID); got != 4 {
		t.Errorf("override ignored: size %d, want 4", got)
	}
}

func TestGroupJoinPredsPairsAndSkips(t *testing.T) {
	n := &plan.Node{JoinPreds: []query.Predicate{
		{Left: query.PathRef{Alias: "T", Path: "Movies.Title"}, Op: types.OpEq,
			Right: query.Term{Kind: query.TermPath, Path: query.PathRef{Alias: "M", Path: "Title"}}},
		{Left: query.PathRef{Alias: "T", Path: "Movies.Lang"}, Op: types.OpEq,
			Right: query.Term{Kind: query.TermPath, Path: query.PathRef{Alias: "M", Path: "Language"}}},
		{Left: query.PathRef{Alias: "R", Path: "UAddress"}, Op: types.OpEq,
			Right: query.Term{Kind: query.TermPath, Path: query.PathRef{Alias: "T", Path: "TAddress"}}},
		// Non-path right-hand sides are selection-shaped, not join edges.
		{Left: query.PathRef{Alias: "T", Path: "City"}, Op: types.OpEq,
			Right: query.Term{Kind: query.TermConst, Const: types.String("Rome")}},
	}}
	preds := groupJoinPreds(n)
	if len(preds) != 2 {
		t.Fatalf("grouped %d pairs, want 2: %v", len(preds), preds)
	}
	// Pairs come back in deterministic (left, right) alias order.
	if preds[0].leftAlias != "R" || preds[0].rightAlias != "T" || len(preds[0].pred.Conds) != 1 {
		t.Fatalf("R|T pair missing or misplaced: %+v", preds)
	}
	if preds[1].leftAlias != "T" || preds[1].rightAlias != "M" || len(preds[1].pred.Conds) != 2 {
		t.Fatalf("T|M pair missing or not merged: %+v", preds)
	}
}

func TestMergeBranchesSharedComponents(t *testing.T) {
	layout := &aliasLayout{
		slots:   map[string]int{"C": 0, "F": 1, "H": 2},
		aliases: []string{"C", "F", "H"},
		weights: []float64{1, 1, 1},
	}
	arena := newCombArena(layout.width())
	defer arena.release()
	shared := types.NewTuple(0.5)
	left := &comb{comps: []*types.Tuple{shared, types.NewTuple(0.6), nil}}
	right := &comb{comps: []*types.Tuple{shared, nil, types.NewTuple(0.7)}}
	merged, ok := mergeBranches(arena, layout, left, right)
	if !ok {
		t.Fatal("shared-ancestor merge failed")
	}
	n := 0
	for _, c := range merged.comps {
		if c != nil {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("merged comb has %d components, want 3", n)
	}
	if merged.comps[0] != shared {
		t.Error("shared component lost its tuple identity")
	}
	if got := merged.score; math.Abs(got-1.8) > 1e-9 {
		t.Errorf("merged score = %v, want re-ranked 1.8", got)
	}
	// The same alias bound to a different tuple stems from a different
	// upstream row: the pair must not join.
	other := &comb{comps: []*types.Tuple{types.NewTuple(0.5), nil, types.NewTuple(0.7)}}
	if _, ok := mergeBranches(arena, layout, left, other); ok {
		t.Error("divergent shared components merged")
	}
}
