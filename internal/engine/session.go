package engine

import (
	"context"
	"sort"
	"strings"

	"seco/internal/plan"
	"seco/internal/types"
)

// Session implements the liquid-query interaction of Section 3.2: a user
// receives the first K combinations and can repeatedly ask for "more
// results of the same query", which continues the plan execution by
// increasing the fetching factors of the chunked services and returning
// only combinations not seen before.
type Session struct {
	engine  *Engine
	base    *plan.Plan
	opts    Options
	fetches map[string]int
	seen    map[string]bool
	calls   int
}

// NewSession prepares a resumable execution of the plan with the given
// initial fetching factors (nil = the factors of the plan's first
// annotation, i.e. 1 per chunked service).
func NewSession(e *Engine, p *plan.Plan, fetches map[string]int, opts Options) *Session {
	f := map[string]int{}
	for k, v := range fetches {
		f[k] = v
	}
	return &Session{engine: e, base: p, opts: opts, fetches: f, seen: map[string]bool{}}
}

// Next executes (or continues) the query and returns the next batch of at
// most Options.TargetK new combinations in ranking order. Each call after
// the first doubles the fetching factors of every chunked service before
// re-executing, so deeper regions of the search space are explored. An
// empty batch means the services are exhausted.
func (s *Session) Next(ctx context.Context) ([]*types.Combination, error) {
	if s.calls > 0 {
		for _, id := range s.base.NodeIDs() {
			n, _ := s.base.Node(id)
			if n.Kind == plan.KindService && n.Stats.Chunked() {
				f := s.fetches[id]
				if f <= 0 {
					f = 1
				}
				s.fetches[id] = f * 2
			}
		}
	}
	s.calls++
	ann, err := plan.Annotate(s.base, s.fetches)
	if err != nil {
		return nil, err
	}
	runOpts := s.opts
	// Rank and truncate here, after dedup — but let the streaming engine
	// stop early: the previously seen combinations all reappear under the
	// deeper fetch factors, so the guaranteed top (seen+K) contains at
	// least K unseen ones (any seen combination ranked below the cut only
	// makes room for more fresh ones).
	runOpts.TargetK = 0
	if s.opts.TargetK > 0 && !s.opts.Materialize {
		runOpts.TargetK = s.opts.TargetK + len(s.seen)
	}
	run, err := s.engine.Execute(ctx, ann, runOpts)
	if err != nil {
		return nil, err
	}
	var fresh []*types.Combination
	for _, c := range run.Combinations {
		key := comboKey(c)
		if s.seen[key] {
			continue
		}
		s.seen[key] = true
		fresh = append(fresh, c)
	}
	sort.SliceStable(fresh, func(i, j int) bool { return fresh[i].Score > fresh[j].Score })
	if s.opts.TargetK > 0 && len(fresh) > s.opts.TargetK {
		fresh = fresh[:s.opts.TargetK]
	}
	return fresh, nil
}

// comboKey is a stable identity for deduplication across re-executions.
func comboKey(c *types.Combination) string {
	var b strings.Builder
	for _, a := range c.Aliases() {
		b.WriteString(a)
		b.WriteByte('=')
		b.WriteString(c.Components[a].String())
		b.WriteByte(';')
	}
	return b.String()
}
