package engine

import (
	"fmt"
	"sort"
	"sync"

	"seco/internal/plan"
	"seco/internal/types"
)

// This file is the compact combination encoding the operator runtime
// computes with. Between the input operator and the driver's result
// boundary a combination is a comb: a score plus a fixed-width component
// vector indexed by the compile-time alias layout, so merging, predicate
// routing and ranking index by slot instead of hashing alias strings and
// rebuilding maps. combs are bump-allocated from per-operator arenas
// whose backing blocks come from (and return to, on Close) process-wide
// sync.Pools, so the steady-state hot loop performs no per-combination
// heap allocation. Map-backed types.Combination values exist only at the
// boundary: the driver materializes the final ranked top-K after
// truncation, before the deferred graph shutdown releases the arenas.

// aliasLayout is the compile-time alias → slot mapping of one compiled
// graph. Slots follow sorted alias order, so slot-order iteration is
// deterministic and the materialized Aliases() cache needs no sorting.
type aliasLayout struct {
	slots   map[string]int
	aliases []string // sorted; aliases[i] owns slot i
	weights []float64
}

// newAliasLayout collects every service alias of the plan into a slot
// layout carrying the run's ranking weight per slot.
func newAliasLayout(p *plan.Plan, weights map[string]float64) *aliasLayout {
	var aliases []string
	seen := map[string]bool{}
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		if n.Kind == plan.KindService && !seen[n.Alias] {
			seen[n.Alias] = true
			aliases = append(aliases, n.Alias)
		}
	}
	sort.Strings(aliases)
	l := &aliasLayout{
		slots:   make(map[string]int, len(aliases)),
		aliases: aliases,
		weights: make([]float64, len(aliases)),
	}
	for i, a := range aliases {
		l.slots[a] = i
		l.weights[i] = weights[a]
	}
	return l
}

// width is the component-vector length of every comb under this layout.
func (l *aliasLayout) width() int { return len(l.aliases) }

// slot returns the slot of an alias; compile rejects unknown aliases.
func (l *aliasLayout) slot(alias string) (int, error) {
	s, ok := l.slots[alias]
	if !ok {
		return 0, fmt.Errorf("engine: alias %q not in layout", alias)
	}
	return s, nil
}

// comb is the runtime's compact combination: the component vector (nil =
// alias not joined yet) plus the incremental ranking score.
type comb struct {
	score float64
	comps []*types.Tuple
}

// rank recomputes the comb's weighted score in slot order — a fixed,
// deterministic summation order, unlike the map iteration the map-backed
// Rank uses.
func (l *aliasLayout) rank(c *comb) float64 {
	s := 0.0
	for i, t := range c.comps {
		if t != nil {
			s += l.weights[i] * t.Score
		}
	}
	c.score = s
	return s
}

// materialize converts a comb back to the public map-backed Combination,
// with the sorted alias list precomputed (slot order is sorted order).
func (l *aliasLayout) materialize(c *comb) *types.Combination {
	n := 0
	for _, t := range c.comps {
		if t != nil {
			n++
		}
	}
	comps := make(map[string]*types.Tuple, n)
	aliases := make([]string, 0, n)
	for i, t := range c.comps {
		if t != nil {
			comps[l.aliases[i]] = t
			aliases = append(aliases, l.aliases[i])
		}
	}
	return types.NewCombinationPre(comps, aliases, c.score)
}

// combBlockLen is the number of comb headers per arena block;
// ptrBlockLen is the number of component-pointer cells per block.
const (
	combBlockLen = 256
	ptrBlockLen  = 1024
)

var combBlockPool = sync.Pool{New: func() any {
	b := make([]comb, 0, combBlockLen)
	return &b
}}

var ptrBlockPool = sync.Pool{New: func() any {
	b := make([]*types.Tuple, 0, ptrBlockLen)
	return &b
}}

// combArena bump-allocates combs (header + fixed-width component vector)
// from pooled blocks. An arena is single-owner — each allocating operator
// (or pipe-window slot goroutine) holds its own — and release returns the
// blocks to the pools. combs handed out stay valid until release, which
// the graph defers to operator Close: teardown runs only after the driver
// has materialized its results.
type combArena struct {
	width     int
	blocks    []*[]comb
	ptrBlocks []*[]*types.Tuple
}

func newCombArena(width int) *combArena { return &combArena{width: width} }

// new returns a zeroed comb with a width-sized component vector.
func (a *combArena) new() *comb {
	var blk *[]comb
	if n := len(a.blocks); n > 0 && len(*a.blocks[n-1]) < cap(*a.blocks[n-1]) {
		blk = a.blocks[n-1]
	} else {
		blk = combBlockPool.Get().(*[]comb)
		a.blocks = append(a.blocks, blk)
	}
	*blk = (*blk)[:len(*blk)+1]
	c := &(*blk)[len(*blk)-1]
	c.score = 0
	c.comps = a.ptrs()
	return c
}

// clone returns an arena copy of c (component vector and score).
func (a *combArena) clone(c *comb) *comb {
	d := a.new()
	copy(d.comps, c.comps)
	d.score = c.score
	return d
}

// ptrs carves one zeroed width-sized component vector.
func (a *combArena) ptrs() []*types.Tuple {
	if a.width == 0 {
		return nil
	}
	if a.width > ptrBlockLen {
		// Degenerate layout wider than a block: allocate directly.
		return make([]*types.Tuple, a.width)
	}
	var blk *[]*types.Tuple
	if n := len(a.ptrBlocks); n > 0 && len(*a.ptrBlocks[n-1])+a.width <= cap(*a.ptrBlocks[n-1]) {
		blk = a.ptrBlocks[n-1]
	} else {
		blk = ptrBlockPool.Get().(*[]*types.Tuple)
		a.ptrBlocks = append(a.ptrBlocks, blk)
	}
	lo := len(*blk)
	*blk = (*blk)[:lo+a.width]
	ps := (*blk)[lo : lo+a.width : lo+a.width]
	clear(ps)
	return ps
}

// release clears and returns the arena's blocks to the pools. The owner
// must not allocate from, nor anything dereference combs of, this arena
// afterwards.
func (a *combArena) release() {
	for _, blk := range a.blocks {
		for i := range *blk {
			(*blk)[i] = comb{}
		}
		*blk = (*blk)[:0]
		combBlockPool.Put(blk)
	}
	a.blocks = nil
	for _, blk := range a.ptrBlocks {
		clear((*blk)[:cap(*blk)])
		*blk = (*blk)[:0]
		ptrBlockPool.Put(blk)
	}
	a.ptrBlocks = nil
}

// Pools for the runtime's reusable chunk buffers: comb slices (branch
// chunks, tile output, pipe-slot results) and tuple slices (service fetch
// prefixes). Buffers are cleared on put so they never retain combinations
// or tuples past their owner's Close.

var combSlicePool = sync.Pool{New: func() any {
	s := make([]*comb, 0, 32)
	return &s
}}

var tupleSlicePool = sync.Pool{New: func() any {
	s := make([]*types.Tuple, 0, 64)
	return &s
}}

// getCombSlice returns an empty pooled comb buffer, grown to the hint.
// An undersized pooled buffer goes back to the pool before the fresh
// allocation replaces it, so large hints don't drain the pool.
func getCombSlice(hint int) []*comb {
	b := combSlicePool.Get().(*[]*comb)
	if hint > cap(*b) {
		combSlicePool.Put(b)
		return make([]*comb, 0, hint)
	}
	return (*b)[:0]
}

// putCombSlice clears and returns a comb buffer to the pool.
func putCombSlice(s []*comb) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	combSlicePool.Put(&s)
}

// getTupleSlice returns an empty pooled tuple buffer, grown to the hint.
// An undersized pooled buffer goes back to the pool before the fresh
// allocation replaces it, so large hints don't drain the pool.
func getTupleSlice(hint int) []*types.Tuple {
	b := tupleSlicePool.Get().(*[]*types.Tuple)
	if hint > cap(*b) {
		tupleSlicePool.Put(b)
		return make([]*types.Tuple, 0, hint)
	}
	return (*b)[:0]
}

// putTupleSlice clears and returns a tuple buffer to the pool.
func putTupleSlice(s []*types.Tuple) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	tupleSlicePool.Put(&s)
}
