package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/service"
	"seco/internal/synth"
)

// movienightOpts assembles the running-example world for degradation
// tests with the canonical deterministic options.
func movienightOpts(t *testing.T) (map[string]service.Service, *plan.Annotated, Options) {
	t.Helper()
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	return world.Services(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights, TargetK: 10, Parallelism: 1,
	}
}

// dyingSvc wraps a service and fails every call permanently once limit
// calls (Invoke and Fetch together) have gone through.
type dyingSvc struct {
	inner service.Service
	limit int64
	calls atomic.Int64
}

func (d *dyingSvc) Interface() *mart.Interface { return d.inner.Interface() }
func (d *dyingSvc) Stats() service.Stats       { return d.inner.Stats() }
func (d *dyingSvc) Unwrap() service.Service    { return d.inner }

func (d *dyingSvc) fail() error {
	if d.calls.Add(1) > d.limit {
		return fmt.Errorf("backend gone: %w", service.ErrPermanent)
	}
	return nil
}

func (d *dyingSvc) Invoke(ctx context.Context, in service.Input) (service.Invocation, error) {
	if err := d.fail(); err != nil {
		return nil, err
	}
	inv, err := d.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &dyingInvocation{svc: d, inner: inv}, nil
}

type dyingInvocation struct {
	svc   *dyingSvc
	inner service.Invocation
}

func (di *dyingInvocation) Fetch(ctx context.Context) (service.Chunk, error) {
	if err := di.svc.fail(); err != nil {
		return service.Chunk{}, err
	}
	return di.inner.Fetch(ctx)
}

// cancellingSvc cancels the run's context after limit calls, simulating
// a caller abandoning the query mid-flight.
type cancellingSvc struct {
	inner  service.Service
	limit  int64
	cancel context.CancelFunc
	calls  atomic.Int64
}

func (c *cancellingSvc) Interface() *mart.Interface { return c.inner.Interface() }
func (c *cancellingSvc) Stats() service.Stats       { return c.inner.Stats() }
func (c *cancellingSvc) Unwrap() service.Service    { return c.inner }

func (c *cancellingSvc) tick() {
	if c.calls.Add(1) == c.limit {
		c.cancel()
	}
}

func (c *cancellingSvc) Invoke(ctx context.Context, in service.Input) (service.Invocation, error) {
	c.tick()
	inv, err := c.inner.Invoke(ctx, in)
	if err != nil {
		return nil, err
	}
	return &cancellingInvocation{svc: c, inner: inv}, nil
}

type cancellingInvocation struct {
	svc   *cancellingSvc
	inner service.Invocation
}

func (ci *cancellingInvocation) Fetch(ctx context.Context) (service.Chunk, error) {
	ci.svc.tick()
	return ci.inner.Fetch(ctx)
}

// TestDegradePermanentFailure kills the restaurant service mid-run. With
// Degrade off the failure surfaces as an error; with Degrade on the
// streaming executor returns the combinations produced so far, names the
// failed service, and certifies the provably-correct prefix against the
// fault-free ranking.
func TestDegradePermanentFailure(t *testing.T) {
	services, a, opts := movienightOpts(t)
	clean, err := New(services, nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}

	build := func() map[string]service.Service {
		services, _, _ := movienightOpts(t)
		services["R"] = &dyingSvc{inner: services["R"], limit: 4}
		return services
	}

	if _, err := New(build(), nil).Execute(context.Background(), a, opts); !errors.Is(err, service.ErrPermanent) {
		t.Fatalf("without Degrade, err = %v, want ErrPermanent", err)
	}

	dopts := opts
	dopts.Degrade = true
	run, err := New(build(), nil).Execute(context.Background(), a, dopts)
	if err != nil {
		t.Fatalf("Degrade still surfaced the failure: %v", err)
	}
	d := run.Degraded
	if d == nil {
		t.Fatal("run did not degrade")
	}
	if d.Reason != DegradeServiceFailure {
		t.Errorf("reason = %s, want %s", d.Reason, DegradeServiceFailure)
	}
	if len(d.Failed) != 1 || d.Failed[0] != "R" {
		t.Errorf("failed services = %v, want [R]", d.Failed)
	}
	if d.Cause == "" {
		t.Error("degradation has no cause")
	}
	if len(d.FetchDepth) == 0 {
		t.Error("degradation reports no fetch depths")
	}
	if len(run.Combinations) >= len(clean.Combinations)+1 {
		t.Errorf("partial run has %d combinations, clean %d", len(run.Combinations), len(clean.Combinations))
	}
	if d.CertifiedK > len(run.Combinations) {
		t.Fatalf("certified %d of %d results", d.CertifiedK, len(run.Combinations))
	}
	for i := 0; i < d.CertifiedK; i++ {
		if run.Combinations[i].String() != clean.Combinations[i].String() {
			t.Errorf("certified combination %d differs from fault-free run:\n got %s\n want %s",
				i, run.Combinations[i], clean.Combinations[i])
		}
	}
}

// TestDegradeBudgetExpiry gives the run half the fault-free virtual
// elapsed time. The streaming executor must stop at the budget and
// return the partial result; the materializing executor has nothing
// partial to return and errors with ErrBudget.
func TestDegradeBudgetExpiry(t *testing.T) {
	services, a, opts := movienightOpts(t)
	clean, err := New(services, nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Elapsed <= 0 {
		t.Fatal("clean run has no simulated elapsed time; budget test is vacuous")
	}

	dopts := opts
	dopts.Budget = clean.Elapsed / 2
	dopts.Degrade = true
	run, err := New(services, nil).Execute(context.Background(), a, dopts)
	if err != nil {
		t.Fatalf("budget expiry surfaced as error despite Degrade: %v", err)
	}
	d := run.Degraded
	if d == nil {
		t.Fatal("run did not degrade on budget expiry")
	}
	if d.Reason != DegradeBudget {
		t.Errorf("reason = %s, want %s", d.Reason, DegradeBudget)
	}
	if len(run.Combinations) >= len(clean.Combinations) {
		t.Errorf("half the budget still produced the full result (%d combinations)", len(run.Combinations))
	}
	for i := 0; i < d.CertifiedK; i++ {
		if run.Combinations[i].String() != clean.Combinations[i].String() {
			t.Errorf("certified combination %d differs from fault-free run", i)
		}
	}

	mopts := dopts
	mopts.Materialize = true
	if _, err := New(services, nil).Execute(context.Background(), a, mopts); !errors.Is(err, ErrBudget) {
		t.Errorf("materializing executor under budget: err = %v, want ErrBudget", err)
	}

	// Without Degrade the streaming executor surfaces the budget too.
	sopts := opts
	sopts.Budget = clean.Elapsed / 2
	if _, err := New(services, nil).Execute(context.Background(), a, sopts); !errors.Is(err, ErrBudget) {
		t.Errorf("streaming executor without Degrade: err = %v, want ErrBudget", err)
	}
}

// TestDegradeNeverMasksCancellation: a context cancelled by the caller
// must surface as an error even in Degrade mode — degradation is for
// infrastructure failures, not for the user changing their mind.
func TestDegradeNeverMasksCancellation(t *testing.T) {
	for _, materialize := range []bool{false, true} {
		services, a, opts := movienightOpts(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		services["T"] = &cancellingSvc{inner: services["T"], limit: 3, cancel: cancel}
		opts.Degrade = true
		opts.Materialize = materialize
		run, err := New(services, nil).Execute(ctx, a, opts)
		if err == nil {
			if run.Degraded != nil {
				t.Errorf("materialize=%v: cancellation was masked as degradation: %v", materialize, run.Degraded)
			} else {
				t.Errorf("materialize=%v: cancelled run completed fully", materialize)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("materialize=%v: err = %v, want context.Canceled", materialize, err)
		}
	}
}

// TestCancellationStopsCalls verifies both executors stop issuing
// request-responses promptly once the context is cancelled: the wire
// call count must stay well below the full run's.
func TestCancellationStopsCalls(t *testing.T) {
	for _, materialize := range []bool{false, true} {
		services, a, opts := movienightOpts(t)
		opts.Materialize = materialize
		full, err := New(services, nil).Execute(context.Background(), a, opts)
		if err != nil {
			t.Fatal(err)
		}

		services, _, _ = movienightOpts(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		c := &cancellingSvc{inner: services["M"], limit: 2, cancel: cancel}
		services["M"] = c
		if _, err := New(services, nil).Execute(ctx, a, opts); err == nil {
			t.Errorf("materialize=%v: run survived cancellation", materialize)
			continue
		}
		if got, want := c.calls.Load(), full.TotalCalls(); got >= want {
			t.Errorf("materialize=%v: %d calls on the cancelling service, full run only needs %d total",
				materialize, got, want)
		}
	}
}

// TestStreamingParallelJoinsSurviveTransients extends the transient-
// equivalence guarantee to the streaming executor with parallel pipe
// joins: Retry(Flaky(svc)) at Parallelism 4 must reproduce the clean
// top-k even though the fault schedule itself is racy.
func TestStreamingParallelJoinsSurviveTransients(t *testing.T) {
	for _, materialize := range []bool{false, true} {
		services, a, opts := movienightOpts(t)
		opts.Parallelism = 4
		opts.Materialize = materialize
		clean, err := New(services, nil).Execute(context.Background(), a, opts)
		if err != nil {
			t.Fatal(err)
		}

		services, _, _ = movienightOpts(t)
		flakies := map[string]*service.Flaky{}
		wrapped := map[string]service.Service{}
		for alias, svc := range services {
			f := service.NewFlaky(svc, 3)
			r := service.NewRetry(f)
			r.Sleep = func(time.Duration) {}
			flakies[alias] = f
			wrapped[alias] = r
		}
		faulty, err := New(wrapped, nil).Execute(context.Background(), a, opts)
		if err != nil {
			t.Fatalf("materialize=%v: parallel run failed despite retries: %v", materialize, err)
		}
		injected := 0
		for _, f := range flakies {
			injected += f.Injected()
		}
		if injected == 0 {
			t.Fatalf("materialize=%v: no failures injected; test is vacuous", materialize)
		}
		if len(faulty.Combinations) != len(clean.Combinations) {
			t.Fatalf("materialize=%v: faulty run returned %d combinations, clean %d",
				materialize, len(faulty.Combinations), len(clean.Combinations))
		}
		for i := range clean.Combinations {
			if clean.Combinations[i].String() != faulty.Combinations[i].String() {
				t.Errorf("materialize=%v: combination %d differs", materialize, i)
			}
		}
		if len(faulty.Resilience) == 0 {
			t.Errorf("materialize=%v: run report carries no resilience stats", materialize)
		}
	}
}

// TestRunReportsResilienceStats checks the per-alias stats aggregation
// across a Breaker(Retry(Flaky)) chain.
func TestRunReportsResilienceStats(t *testing.T) {
	services, a, opts := movienightOpts(t)
	wrapped := map[string]service.Service{}
	for alias, svc := range services {
		f := service.NewFlaky(svc, 4)
		r := service.NewRetry(f)
		r.Sleep = func(time.Duration) {}
		wrapped[alias] = service.NewBreaker(r)
	}
	run, err := New(wrapped, nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	var total service.ResilienceStats
	for _, rs := range run.Resilience {
		total.Add(rs)
	}
	if total.Injected == 0 || total.Retries == 0 {
		t.Errorf("resilience totals vacuous: %+v", total)
	}
	if total.Injected != total.Retries+total.GiveUps {
		t.Errorf("injected %d but retries %d + give-ups %d don't account for them",
			total.Injected, total.Retries, total.GiveUps)
	}
}
