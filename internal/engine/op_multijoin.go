package engine

import (
	"context"
	"fmt"
	"math"

	"seco/internal/fidelity"
	"seco/internal/plan"
	"seco/internal/topk"
	"seco/internal/types"
)

// This file implements the multi-way ranked join operator: the third join
// topology beside pipe and parallel joins. All N branches prefetch
// concurrently (reusing the binary join's single-outstanding joinBranch
// machinery); arrivals are consumed round-robin, and each newly arrived
// chunk is delta-joined against the accumulated rows of every other
// branch, so by the time Next hands a combination out, every stored row
// combination has been enumerated exactly once — there is no deferred-
// tile backlog, and the operator's score bound reduces to the n-ary
// corner bound of topk.WeightedThreshold over the branch frontiers.
//
// Candidate enumeration is a leapfrog-style sorted intersection: every
// hashable equality edge maintains, per endpoint branch, posting lists
// from key to ascending row ids. Keys are interned uint32 handles for
// string values (the engine's interner canonicalizes on the fly, so
// handle equality is exact string equality process-wide) and the FNV
// fold of op_join.go for other kinds. A new row binds its branch; the
// remaining branches are bound most-constrained-first by intersecting
// the posting lists their bound edges select, and every surviving
// candidate is verified with the compiled pair predicates — which also
// evaluate the bounded-proximity edges the legality rules admit. Key
// columns mixing value classes never share a key, so cross-class pairs
// are treated as non-matches (plancheck's legality rules keep
// optimizer-built plans away from that corner).

// multiEdge is one compiled cross-branch predicate of the multi-way
// join, with both endpoint branches resolved and — when the predicate is
// a pure atomic equality — a posting list per endpoint.
type multiEdge struct {
	jp joinPred
	// bl and br are the branch indexes holding the predicate's left and
	// right alias.
	bl, br int
	// hashable marks a pure atomic-equality edge that can key posting
	// lists; proximity edges are verified per candidate instead.
	hashable bool
	// postL/postR map an edge key to the ascending row ids carrying it,
	// per endpoint branch (hashable edges only).
	postL, postR map[uint64][]int32
}

// multiJoinOp is the n-ary ranked join operator.
type multiJoinOp struct {
	g        *graph
	ex       *executor
	n        *plan.Node
	branches []*joinBranch
	// rows accumulates every arrived row per branch, flat across chunks
	// (the chunk buffers stay on the branches for pooled release).
	rows  [][]*comb
	edges []multiEdge
	// incident lists the edge indexes touching each branch.
	incident [][]int
	arena    *combArena
	// cand tallies the candidate prefixes the expansion examined
	// (intersection survivors plus scan-fallback rows); nil when fidelity
	// is off.
	cand *fidelity.Counter

	pending    []*comb
	pendingIdx int
	rr         int
	started    bool
	done       bool

	// Scratch buffers reused across Next calls.
	assign  []*comb
	boundB  []bool
	scratch []*types.Tuple
	ones    []float64
	bestBuf []float64
	curBuf  []float64
	lists   [][]int32
	// candBufs holds one candidate buffer per recursion depth: expand at
	// depth d iterates its candidates while deeper levels intersect into
	// their own buffers.
	candBufs [][]int32
}

func (g *graph) makeMultiJoinOp(id string, n *plan.Node) (Operator, error) {
	preds := g.ex.ann.Plan.Predecessors(id)
	if len(preds) < 2 {
		return nil, fmt.Errorf("engine: multijoin %s has %d predecessors", id, len(preds))
	}
	branches := make([]*joinBranch, len(preds))
	for i, pid := range preds {
		r, err := g.operator(pid)
		if err != nil {
			return nil, err
		}
		branches[i] = &joinBranch{
			reader: r, id: pid, size: g.ex.chunkSizeOf(pid),
			ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: r.Bound(),
		}
	}
	jps, err := compileJoinPreds(n, g.ex.layout)
	if err != nil {
		return nil, err
	}
	// Resolve which branch produces each layout slot, so every predicate
	// maps to the two branches it spans.
	slotBranch := make([]int, g.ex.layout.width())
	for i := range slotBranch {
		slotBranch[i] = -1
	}
	for i, pid := range preds {
		for alias := range g.ex.branchAliases(pid) {
			slot, err := g.ex.layout.slot(alias)
			if err != nil {
				return nil, err
			}
			slotBranch[slot] = i
		}
	}
	edges := make([]multiEdge, 0, len(jps))
	incident := make([][]int, len(preds))
	for _, jp := range jps {
		bl, br := slotBranch[jp.leftSlot], slotBranch[jp.rightSlot]
		if bl < 0 || br < 0 || bl == br {
			return nil, fmt.Errorf("engine: multijoin %s predicate does not span two branches", id)
		}
		e := multiEdge{jp: jp, bl: bl, br: br, hashable: jp.eqLeft != nil}
		if e.hashable {
			e.postL = make(map[uint64][]int32, 64)
			e.postR = make(map[uint64][]int32, 64)
		}
		ei := len(edges)
		edges = append(edges, e)
		incident[bl] = append(incident[bl], ei)
		incident[br] = append(incident[br], ei)
	}
	nb := len(preds)
	ones := make([]float64, nb)
	for i := range ones {
		ones[i] = 1
	}
	return &multiJoinOp{
		g: g, ex: g.ex, n: n,
		cand:     g.fid.Counter(id),
		branches: branches,
		rows:     make([][]*comb, nb),
		edges:    edges, incident: incident,
		arena:    newCombArena(g.ex.layout.width()),
		assign:   make([]*comb, nb),
		boundB:   make([]bool, nb),
		scratch:  make([]*types.Tuple, g.ex.layout.width()),
		ones:     ones,
		bestBuf:  make([]float64, nb),
		curBuf:   make([]float64, nb),
		candBufs: make([][]int32, nb),
	}, nil
}

// branchAliases collects the service aliases a branch subtree produces
// (the branch root itself plus everything upstream of it).
func (ex *executor) branchAliases(id string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]bool{}
	stack := []string{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if n, ok := ex.ann.Plan.Node(cur); ok && n.Kind == plan.KindService {
			out[n.Alias] = true
		}
		stack = append(stack, ex.ann.Plan.Predecessors(cur)...)
	}
	return out
}

func (s *multiJoinOp) Open(ctx context.Context) error {
	for _, b := range s.branches {
		if err := b.reader.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (s *multiJoinOp) Next(ctx context.Context) (*comb, error) {
	for {
		if s.pendingIdx < len(s.pending) {
			c := s.pending[s.pendingIdx]
			s.pendingIdx++
			return c, nil
		}
		if s.done {
			return nil, nil
		}
		if !s.started {
			s.started = true
			for _, b := range s.branches {
				s.g.startPull(ctx, b)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bi := s.nextBranch()
		if bi < 0 {
			s.done = true
			continue
		}
		if err := s.resolve(ctx, bi); err != nil {
			return nil, err
		}
	}
}

// nextBranch picks the next live branch round-robin, or -1 when every
// branch has run dry.
func (s *multiJoinOp) nextBranch() int {
	n := len(s.branches)
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if !s.branches[i].noMore {
			s.rr = (i + 1) % n
			return i
		}
	}
	return -1
}

// resolve consumes the outstanding prefetch of branch bi, appends the
// arrived rows to the branch's accumulated state (rows, posting lists,
// score maxima) and delta-joins them against every other branch.
func (s *multiJoinOp) resolve(ctx context.Context, bi int) error {
	b := s.branches[bi]
	res := <-b.ch
	b.outstanding = false
	if res.err != nil {
		putCombSlice(res.combos)
		return res.err
	}
	b.bound = res.bound
	if res.short {
		b.noMore = true
	}
	if len(res.combos) == 0 {
		putCombSlice(res.combos)
		b.bound = math.Inf(-1)
		b.noMore = true
		return nil
	}
	b.chunks = append(b.chunks, res.combos)
	m := maxScore(res.combos)
	b.chunkMax = append(b.chunkMax, m)
	if m > b.bestSeen {
		b.bestSeen = m
	}
	if !b.noMore {
		s.g.startPull(ctx, b)
	}
	from := len(s.rows[bi])
	s.rows[bi] = append(s.rows[bi], res.combos...)
	s.index(bi, from)
	return s.joinDelta(bi, from)
}

// index extends the posting lists of branch bi's hashable edges with the
// rows from index `from` on; appending in arrival order keeps every
// posting list sorted ascending — the invariant the intersection walks
// rely on.
func (s *multiJoinOp) index(bi, from int) {
	for _, ei := range s.incident[bi] {
		e := &s.edges[ei]
		if !e.hashable {
			continue
		}
		slot, cols, post := e.jp.rightSlot, e.jp.eqRight, e.postR
		if e.bl == bi {
			slot, cols, post = e.jp.leftSlot, e.jp.eqLeft, e.postL
		}
		for ri := from; ri < len(s.rows[bi]); ri++ {
			key, null, ok := s.edgeKey(s.rows[bi][ri], slot, cols)
			if !ok || null {
				continue // a null or absent key part matches nothing
			}
			post[key] = append(post[key], int32(ri))
		}
	}
}

// edgeKey folds one row's key columns for an edge endpoint: interned
// handles for strings (canonicalized through the engine's interner, so
// equal strings always collide), the canonical FNV fold otherwise.
func (s *multiJoinOp) edgeKey(c *comb, slot int, cols []string) (key uint64, null, ok bool) {
	t := c.comps[slot]
	if t == nil {
		return 0, false, false
	}
	h := uint64(14695981039346656037)
	for _, a := range cols {
		v := t.Atomic(a)
		if v.IsNull() {
			return 0, true, true
		}
		v = s.ex.engine.intern.Value(v)
		if v.Interned() {
			h = hashHandle(h, v.Handle())
		} else {
			h = hashValue(h, v)
		}
	}
	return h, false, true
}

// hashHandle folds an intern handle into the FNV chain, with a class
// delimiter so handle keys never collide with raw-byte keys of another
// column.
func hashHandle(h uint64, id uint32) uint64 {
	const prime = 1099511628211
	bits := uint64(id)
	for i := 0; i < 4; i++ {
		h = (h ^ (bits & 0xff)) * prime
		bits >>= 8
	}
	return (h ^ 0xfe) * prime
}

// joinDelta enumerates every combination using at least one of branch
// bi's rows from index `from` on. The delta rows bind branch bi; the
// remaining branches bind most-constrained-first through posting-list
// intersection. Results land in s.pending.
func (s *multiJoinOp) joinDelta(bi, from int) error {
	if s.pending == nil {
		hint := 0
		for _, b := range s.branches {
			hint += b.size
		}
		s.pending = getCombSlice(hint)
	}
	s.pending = s.pending[:0]
	s.pendingIdx = 0
	for i := range s.boundB {
		s.boundB[i] = false
		s.assign[i] = nil
	}
	s.boundB[bi] = true
	for ri := from; ri < len(s.rows[bi]); ri++ {
		s.assign[bi] = s.rows[bi][ri]
		if err := s.expand(1); err != nil {
			return err
		}
	}
	s.boundB[bi] = false
	return nil
}

// expand binds one more branch: the unbound branch with the most
// hashable edges into the bound set (smallest index on ties) is bound
// through the sorted intersection of the posting lists its bound edges
// select; a branch with no hashable bound edge falls back to scanning
// its rows. Every candidate is verified against all its bound edges
// (equality exactly, proximity included) before recursing.
func (s *multiJoinOp) expand(nBound int) error {
	if nBound == len(s.branches) {
		if m, ok := s.mergeMulti(); ok {
			s.pending = append(s.pending, m)
		}
		return nil
	}
	j := s.chooseNext()
	s.lists = s.lists[:0]
	for _, ei := range s.incident[j] {
		e := &s.edges[ei]
		other := e.bl
		if other == j {
			other = e.br
		}
		if !s.boundB[other] || !e.hashable {
			continue
		}
		// Key the bound row on its side, look the delta branch up on the
		// other.
		var key uint64
		var null, ok bool
		var post map[uint64][]int32
		if e.bl == j {
			key, null, ok = s.edgeKey(s.assign[other], e.jp.rightSlot, e.jp.eqRight)
			post = e.postL
		} else {
			key, null, ok = s.edgeKey(s.assign[other], e.jp.leftSlot, e.jp.eqLeft)
			post = e.postR
		}
		if !ok || null {
			return nil // this bound row's key matches nothing on branch j
		}
		list := post[key]
		if len(list) == 0 {
			return nil
		}
		s.lists = append(s.lists, list)
	}
	s.boundB[j] = true
	defer func() { s.boundB[j] = false; s.assign[j] = nil }()
	if len(s.lists) == 0 {
		// No equality edge into the bound set yet: scan the branch.
		s.cand.Add(int64(len(s.rows[j])))
		for _, r := range s.rows[j] {
			s.assign[j] = r
			ok, err := s.verify(j)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := s.expand(nBound + 1); err != nil {
				return err
			}
		}
		return nil
	}
	cand := intersectSorted(s.lists, s.candBufs[nBound][:0])
	s.candBufs[nBound] = cand // keep the (possibly grown) buffer for this depth
	s.cand.Add(int64(len(cand)))
	for _, ri := range cand {
		s.assign[j] = s.rows[j][ri]
		ok, err := s.verify(j)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := s.expand(nBound + 1); err != nil {
			return err
		}
	}
	return nil
}

// chooseNext picks the unbound branch with the most hashable edges into
// the bound set; smallest index breaks ties (and covers the no-edge
// fallback), keeping the enumeration order deterministic.
func (s *multiJoinOp) chooseNext() int {
	bestJ, bestN := -1, -1
	for j := range s.branches {
		if s.boundB[j] {
			continue
		}
		n := 0
		for _, ei := range s.incident[j] {
			e := &s.edges[ei]
			other := e.bl
			if other == j {
				other = e.br
			}
			if s.boundB[other] && e.hashable {
				n++
			}
		}
		if n > bestN {
			bestJ, bestN = j, n
		}
	}
	return bestJ
}

// verify checks every edge between the just-bound branch j and the rest
// of the bound set with the compiled pair predicates — exact equality
// (discharging hash collisions) plus the proximity conditions posting
// lists cannot key.
func (s *multiJoinOp) verify(j int) (bool, error) {
	for _, ei := range s.incident[j] {
		e := &s.edges[ei]
		other := e.bl
		if other == j {
			other = e.br
		}
		if !s.boundB[other] {
			continue
		}
		lt := s.assign[e.bl].comps[e.jp.leftSlot]
		rt := s.assign[e.br].comps[e.jp.rightSlot]
		if lt == nil || rt == nil {
			continue // component absent: nothing to check, as in matchAcross
		}
		ok, err := e.jp.cp.Match(lt, rt)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// mergeMulti merges the N bound rows into one comb. Branches may share
// upstream components; shared slots must hold the identical component
// tuple or the candidate stems from different upstream rows and does not
// join. The conflict check fills a scratch vector before any arena
// allocation, so rejected candidates never touch the allocator.
func (s *multiJoinOp) mergeMulti() (*comb, bool) {
	sc := s.scratch
	clear(sc)
	for _, p := range s.assign {
		for i, t := range p.comps {
			if t == nil {
				continue
			}
			if sc[i] != nil && sc[i] != t {
				return nil, false
			}
			sc[i] = t
		}
	}
	m := s.arena.new()
	copy(m.comps, sc)
	s.ex.layout.rank(m)
	return m, true
}

// intersectSorted leapfrogs the ascending row-id lists: the first list
// drives, every other list gallops forward to each probe. out is reused
// as the result buffer.
func intersectSorted(lists [][]int32, out []int32) []int32 {
	if len(lists) == 1 {
		return append(out, lists[0]...)
	}
	// Start from the shortest list: the intersection is no larger.
	drive := 0
	for i, l := range lists {
		if len(l) < len(lists[drive]) {
			drive = i
		}
	}
	pos := make([]int, len(lists))
probe:
	for _, v := range lists[drive] {
		for i, l := range lists {
			if i == drive {
				continue
			}
			p := pos[i]
			for p < len(l) && l[p] < v {
				p++
			}
			pos[i] = p
			if p >= len(l) {
				break probe
			}
			if l[p] != v {
				continue probe
			}
		}
		out = append(out, v)
	}
	return out
}

// Bound is the n-ary corner bound: the best score any combination using
// at least one unseen row can still achieve, plus the pending remainder.
// Branch combs carry weighted partial sums already, so the bound
// composes with unit weights; when every branch frontier is finite it is
// exactly topk.WeightedThreshold, and the -Inf cases (an exhausted or
// still-silent branch) fall back to the explicitly guarded loop — the
// threshold formula would turn a -Inf frontier into NaN.
func (s *multiJoinOp) Bound() float64 {
	b := math.Inf(-1)
	for i := s.pendingIdx; i < len(s.pending); i++ {
		if sc := s.pending[i].score; sc > b {
			b = sc
		}
	}
	if s.done {
		return b
	}
	allFinite := true
	for i, br := range s.branches {
		best := math.Max(br.bestSeen, br.bound)
		s.bestBuf[i] = best
		s.curBuf[i] = br.bound
		if math.IsInf(best, -1) || math.IsInf(br.bound, -1) {
			allFinite = false
		}
	}
	if allFinite {
		if v := topk.WeightedThreshold(s.ones, s.bestBuf, s.curBuf); v > b {
			b = v
		}
		return b
	}
	for i := range s.branches {
		if math.IsInf(s.curBuf[i], -1) {
			continue // branch exhausted: no unseen row can come from it
		}
		v := s.curBuf[i]
		ok := true
		for j := range s.branches {
			if j == i {
				continue
			}
			if math.IsInf(s.bestBuf[j], -1) {
				// The branch is silent so far: with no row seen and no
				// frontier, nothing can complete a combination through it.
				ok = false
				break
			}
			v += s.bestBuf[j]
		}
		if ok && v > b {
			b = v
		}
	}
	return b
}

// Close drains the outstanding branch pulls (ending the prefetch
// goroutines' ownership of the input readers), returns every chunk
// buffer to its pool, drops the posting lists and releases the arena.
func (s *multiJoinOp) Close() error {
	s.done = true
	for _, b := range s.branches {
		if b == nil {
			continue
		}
		if b.outstanding {
			res := <-b.ch
			b.outstanding = false
			putCombSlice(res.combos)
		}
		for _, ch := range b.chunks {
			putCombSlice(ch)
		}
		b.chunks = nil
	}
	for i := range s.rows {
		s.rows[i] = nil
	}
	for i := range s.edges {
		s.edges[i].postL = nil
		s.edges[i].postR = nil
	}
	if s.pending != nil {
		putCombSlice(s.pending)
		s.pending = nil
	}
	s.arena.release()
	return nil
}
