package engine

import (
	"container/heap"
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"seco/internal/obs"
	"seco/internal/types"
)

// This file implements the two driver policies over the compiled operator
// graph. A driver owns the root pull loop and the teardown discipline
// (cancel the pull context, wait for every pipeline goroutine, close the
// operators output side first); the operators themselves are policy-free.
//
//   - runDrain (Options.Materialize) pulls the root to exhaustion, ranks,
//     and truncates — the materialize-then-truncate baseline. It never
//     stops early and never degrades: a failure or budget expiry surfaces
//     as the run error.
//   - runPull (the default) is the K-bounded pull: it maintains the K-th
//     best score pulled so far and halts as soon as that score reaches
//     the root's bound — no unseen combination can then enter the top-K —
//     and, under Options.Degrade, turns mid-run failures into partial
//     results with a certified prefix.

// runDrain is the eager-drain driver policy: evaluate everything the
// fetch budgets reach, rank, then truncate.
func (ex *executor) runDrain(ctx context.Context, g *graph, start time.Time) (*Run, error) {
	runSc := ex.opts.Trace.Scope("run")
	endRun := runSc.StartTimed("run", obs.KindRun, obs.KV("policy", "drain"))
	pullCtx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
		g.wg.Wait()
		g.shutdown()
	}()
	if err := g.root.Open(pullCtx); err != nil {
		return nil, err
	}
	var all []*types.Combination
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := g.root.Next(pullCtx)
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		all = append(all, c)
	}
	// Stop the prefetchers and wait for every pipeline goroutine before
	// reading the counters.
	cancel()
	g.wg.Wait()

	ranked := all
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if ex.opts.TargetK > 0 && len(ranked) > ex.opts.TargetK {
		ranked = ranked[:ex.opts.TargetK]
	}
	run := ex.newRun(ranked, start, false)
	for id, n := range g.emitted {
		run.Produced[id] = int(n.Load())
	}
	run.Produced[g.outID] = len(all)
	endRun(run.Elapsed, obs.KI("combinations", int64(len(ranked))), obs.KI("pulled", int64(len(all))))
	return run, nil
}

// runPull is the K-bounded pull driver policy. With a TargetK and
// non-negative weights it maintains the K-th best score pulled so far and
// halts as soon as that score reaches the root's bound, so the result
// equals the full drain's top-K while the undone part of the search space
// is never paid for. Under Options.Degrade, a service failure or budget
// expiry ends the pull early with a partial result instead of an error
// (see degrade.go).
func (ex *executor) runPull(ctx context.Context, g *graph, start time.Time) (*Run, error) {
	runSc := ex.opts.Trace.Scope("run")
	endRun := runSc.StartTimed("run", obs.KindRun, obs.KV("policy", "pull"))
	pullCtx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
		g.wg.Wait()
		g.shutdown()
	}()
	if err := g.root.Open(pullCtx); err != nil {
		return nil, err
	}

	earlyStop := ex.opts.TargetK > 0 && nonNegative(ex.opts.Weights)
	budget := ex.budgetCheck(start)
	var (
		all    []*types.Combination
		kth    = &minHeap{}
		halted bool
		deg    *Degradation
	)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if budget != nil {
			if err := budget(); err != nil {
				d, ok := ex.classifyDegrade(ctx, err)
				if !ok {
					return nil, err
				}
				deg = d
				break
			}
		}
		c, err := g.root.Next(pullCtx)
		if err != nil {
			d, ok := ex.classifyDegrade(ctx, err)
			if !ok {
				return nil, err
			}
			deg = d
			break
		}
		if c == nil {
			break
		}
		all = append(all, c)
		if earlyStop {
			heap.Push(kth, c.Score)
			if kth.Len() > ex.opts.TargetK {
				heap.Pop(kth)
			}
			if kth.Len() == ex.opts.TargetK && (*kth)[0] >= g.root.Bound() {
				halted = true
				runSc.Event("halted",
					obs.KI("pulled", int64(len(all))),
					obs.KV("kth", trim((*kth)[0])),
					obs.KV("bound", trim(g.root.Bound())))
				break
			}
		}
	}
	// The degradation report needs the stop bound before the pipeline is
	// torn down (a cancelled operator's bound collapses).
	var stopBound float64
	if deg != nil {
		stopBound = g.root.Bound()
		runSc.Event("degraded",
			obs.KV("reason", string(deg.Reason)),
			obs.KV("failed", strings.Join(deg.Failed, ",")))
		if m := ex.engine.metrics; m != nil {
			m.Counter("seco.engine.degraded." + string(deg.Reason)).Add(1)
		}
	}
	// Stop the prefetchers and wait for every pipeline goroutine before
	// reading the counters.
	cancel()
	g.wg.Wait()

	ranked := all
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if ex.opts.TargetK > 0 && len(ranked) > ex.opts.TargetK {
		ranked = ranked[:ex.opts.TargetK]
	}
	run := ex.newRun(ranked, start, halted)
	for id, n := range g.emitted {
		run.Produced[id] = int(n.Load())
	}
	run.Produced[g.outID] = len(all)
	if deg != nil {
		deg.Bound = stopBound
		deg.CertifiedK = certifiedPrefix(ranked, stopBound, ex.opts.Weights)
		deg.FetchDepth = map[string]int{}
		for id, n := range g.depth {
			deg.FetchDepth[id] = int(n.Load())
		}
		run.Degraded = deg
	}
	endRun(
		run.Elapsed,
		obs.KI("combinations", int64(len(ranked))),
		obs.KI("pulled", int64(len(all))),
		obs.KV("halted", boolAttr(halted)),
		obs.KV("degraded", boolAttr(deg != nil)),
	)
	return run, nil
}

// trim renders a score for a trace attribute.
func trim(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }

func boolAttr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// nonNegative reports whether every ranking weight is ≥ 0 — the
// monotonicity requirement of the early-stopping bound.
func nonNegative(weights map[string]float64) bool {
	for _, w := range weights {
		if w < 0 {
			return false
		}
	}
	return true
}

// minHeap keeps the K best scores pulled so far; its root is the K-th
// best, the score an unseen combination must beat to enter the top-K.
type minHeap []float64

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
