package engine

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"seco/internal/obs"
	"seco/internal/types"
)

// This file implements the two driver policies over the compiled operator
// graph. A driver owns the root pull loop and the teardown discipline
// (cancel the pull context, wait for every pipeline goroutine, close the
// operators output side first); the operators themselves are policy-free.
//
//   - runDrain (Options.Materialize) pulls the root to exhaustion, ranks,
//     and truncates — the materialize-then-truncate baseline. It never
//     stops early and never degrades: a failure or budget expiry surfaces
//     as the run error.
//   - runPull (the default) is the K-bounded pull: it maintains the K-th
//     best score pulled so far and halts as soon as that score reaches
//     the root's bound — no unseen combination can then enter the top-K —
//     and, under Options.Degrade, turns mid-run failures into partial
//     results with a certified prefix.
//
// The drivers are the materialization boundary of the compact runtime:
// combs are sorted and truncated in compact form, and only the surviving
// top-K are converted back to map-backed Combinations — inside the driver
// body, before the deferred teardown releases the operator arenas the
// combs live in.

// runDrain is the eager-drain driver policy: evaluate everything the
// fetch budgets reach, rank, then truncate.
func (ex *executor) runDrain(ctx context.Context, g *graph, start time.Time) (*Run, error) {
	runSc := ex.opts.Trace.Scope("run")
	endRun := runSc.StartTimed("run", obs.KindRun, obs.KV("policy", "drain"))
	pullCtx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
		g.wg.Wait()
		g.shutdown()
	}()
	if err := g.root.Open(pullCtx); err != nil {
		return nil, err
	}
	all := make([]*comb, 0, ex.outHint(g))
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := g.root.Next(pullCtx)
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		all = append(all, c)
	}
	// Stop the prefetchers and wait for every pipeline goroutine before
	// reading the counters.
	cancel()
	g.wg.Wait()

	// Fidelity is scored before newRun snapshots the metrics registry, so
	// Run.Metrics includes this run's seco.fidelity.* instruments.
	fid := ex.assessFidelity(g)
	ranked := rankTruncate(all, ex.opts.TargetK)
	run := ex.newRun(ex.materialize(g, ranked), start, false)
	run.Fidelity = fid
	for id, n := range g.emitted {
		run.Produced[id] = int(n.Load())
	}
	run.Produced[g.outID] = len(all)
	endRun(run.Elapsed, obs.KI("combinations", int64(len(ranked))), obs.KI("pulled", int64(len(all))))
	return run, nil
}

// runPull is the K-bounded pull driver policy. With a TargetK and
// non-negative weights it maintains the K-th best score pulled so far and
// halts as soon as that score reaches the root's bound, so the result
// equals the full drain's top-K while the undone part of the search space
// is never paid for. Under Options.Degrade, a service failure or budget
// expiry ends the pull early with a partial result instead of an error
// (see degrade.go).
func (ex *executor) runPull(ctx context.Context, g *graph, start time.Time) (*Run, error) {
	runSc := ex.opts.Trace.Scope("run")
	endRun := runSc.StartTimed("run", obs.KindRun, obs.KV("policy", "pull"))
	pullCtx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
		g.wg.Wait()
		g.shutdown()
	}()
	if err := g.root.Open(pullCtx); err != nil {
		return nil, err
	}

	earlyStop := ex.opts.TargetK > 0 && nonNegative(ex.opts.Weights)
	budget := ex.budgetCheck(start)
	var (
		all    = make([]*comb, 0, ex.outHint(g))
		kth    minHeap
		halted bool
		deg    *Degradation
	)
	if earlyStop {
		kth.grow(ex.opts.TargetK + 1)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if budget != nil {
			if err := budget(); err != nil {
				d, ok := ex.classifyDegrade(ctx, err)
				if !ok {
					return nil, err
				}
				deg = d
				break
			}
		}
		c, err := g.root.Next(pullCtx)
		if err != nil {
			d, ok := ex.classifyDegrade(ctx, err)
			if !ok {
				return nil, err
			}
			deg = d
			break
		}
		if c == nil {
			break
		}
		all = append(all, c)
		if earlyStop {
			kth.push(c.score)
			if kth.len() > ex.opts.TargetK {
				kth.popMin()
			}
			if kth.len() == ex.opts.TargetK && kth.min() >= g.root.Bound() {
				halted = true
				runSc.Event("halted",
					obs.KI("pulled", int64(len(all))),
					obs.KV("kth", trim(kth.min())),
					obs.KV("bound", trim(g.root.Bound())))
				break
			}
		}
	}
	// The degradation report needs the stop bound before the pipeline is
	// torn down (a cancelled operator's bound collapses).
	var stopBound float64
	if deg != nil {
		stopBound = g.root.Bound()
		runSc.Event("degraded",
			obs.KV("reason", string(deg.Reason)),
			obs.KV("failed", strings.Join(deg.Failed, ",")))
		if m := ex.engine.metrics; m != nil {
			m.Counter("seco.engine.degraded." + string(deg.Reason)).Add(1)
		}
	}
	// Stop the prefetchers and wait for every pipeline goroutine before
	// reading the counters.
	cancel()
	g.wg.Wait()

	// Fidelity is scored before newRun snapshots the metrics registry, so
	// Run.Metrics includes this run's seco.fidelity.* instruments.
	fid := ex.assessFidelity(g)
	ranked := rankTruncate(all, ex.opts.TargetK)
	res := ex.materialize(g, ranked)
	run := ex.newRun(res, start, halted)
	run.Fidelity = fid
	for id, n := range g.emitted {
		run.Produced[id] = int(n.Load())
	}
	run.Produced[g.outID] = len(all)
	if deg != nil {
		deg.Bound = stopBound
		deg.CertifiedK = certifiedPrefix(res, stopBound, ex.opts.Weights)
		deg.FetchDepth = map[string]int{}
		for id, n := range g.depth {
			deg.FetchDepth[id] = int(n.Load())
		}
		run.Degraded = deg
	}
	endRun(
		run.Elapsed,
		obs.KI("combinations", int64(len(ranked))),
		obs.KI("pulled", int64(len(all))),
		obs.KV("halted", boolAttr(halted)),
		obs.KV("degraded", boolAttr(deg != nil)),
	)
	return run, nil
}

// rankTruncate stable-sorts the pulled combs by decreasing score and
// truncates to the top-K (K = 0 keeps everything) — all still in compact
// form, so the sort moves slice headers, not alias maps.
func rankTruncate(all []*comb, k int) []*comb {
	ranked := all
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// materialize converts the surviving combs to the public map-backed
// Combinations. This is the only place the runtime builds alias maps, and
// it must run before the graph teardown releases the operator arenas.
func (ex *executor) materialize(g *graph, ranked []*comb) []*types.Combination {
	out := make([]*types.Combination, len(ranked))
	for i, c := range ranked {
		out[i] = ex.layout.materialize(c)
	}
	return out
}

// outHint pre-sizes the driver's pull buffer from the annotation's
// expected output cardinality of the root node, clamped to a sane range.
func (ex *executor) outHint(g *graph) int {
	hint := int(ex.ann.Ann[g.rootID].TOut) + 1
	if hint < 16 {
		hint = 16
	}
	if hint > 4096 {
		hint = 4096
	}
	return hint
}

// trim renders a score for a trace attribute.
func trim(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }

func boolAttr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// nonNegative reports whether every ranking weight is ≥ 0 — the
// monotonicity requirement of the early-stopping bound.
func nonNegative(weights map[string]float64) bool {
	for _, w := range weights {
		if w < 0 {
			return false
		}
	}
	return true
}

// minHeap keeps the K best scores pulled so far; its root is the K-th
// best, the score an unseen combination must beat to enter the top-K.
// Hand-rolled over plain float64s: the container/heap interface would box
// every pushed score into an interface value, which is exactly the kind
// of per-pull allocation the compact runtime exists to avoid.
type minHeap struct{ h []float64 }

func (m *minHeap) len() int     { return len(m.h) }
func (m *minHeap) min() float64 { return m.h[0] }
func (m *minHeap) grow(n int)   { m.h = make([]float64, 0, n) }

func (m *minHeap) push(x float64) {
	m.h = append(m.h, x)
	i := len(m.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if m.h[p] <= m.h[i] {
			break
		}
		m.h[p], m.h[i] = m.h[i], m.h[p]
		i = p
	}
}

func (m *minHeap) popMin() float64 {
	v := m.h[0]
	n := len(m.h) - 1
	m.h[0] = m.h[n]
	m.h = m.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.h[l] < m.h[small] {
			small = l
		}
		if r < n && m.h[r] < m.h[small] {
			small = r
		}
		if small == i {
			break
		}
		m.h[i], m.h[small] = m.h[small], m.h[i]
		i = small
	}
	return v
}
