package engine

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/synth"
	"seco/internal/types"
)

// compileFixture compiles the running-example plan into an operator graph
// without running a driver, so tests can exercise the operator lifecycle
// directly.
func compileFixture(t *testing.T) *graph {
	t.Helper()
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{engine: e, ann: a,
		opts:  Options{Inputs: world.Inputs, Weights: q.Weights, Parallelism: 2},
		scope: e.Invoker().NewRun(),
	}
	outID := ""
	for _, id := range p.NodeIDs() {
		if n, _ := p.Node(id); n.Kind == plan.KindOutput {
			outID = id
		}
	}
	g, err := compile(ex, outID)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOperatorCloseBeforeExhaustion(t *testing.T) {
	g := compileFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := g.root.Open(ctx); err != nil {
		t.Fatal(err)
	}
	c, err := g.root.Next(ctx)
	if err != nil || c == nil {
		t.Fatalf("first pull: %v %v", c, err)
	}
	// Tear down mid-stream: every operator must come to rest, including
	// the pipe window and join prefetch goroutines still in flight.
	cancel()
	g.wg.Wait()
	g.shutdown()
	if _, err := g.root.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Next after Close: %v, want ErrClosed", err)
	}
	if b := g.root.Bound(); !math.IsInf(b, -1) {
		t.Errorf("Bound after Close = %v, want -Inf", b)
	}
}

func TestOperatorDoubleClose(t *testing.T) {
	g := compileFixture(t)
	ctx := context.Background()
	if err := g.root.Open(ctx); err != nil {
		t.Fatal(err)
	}
	g.shutdown()
	g.shutdown() // Close is idempotent on every operator
	for _, op := range g.ops {
		if err := op.Close(); err != nil {
			t.Fatalf("repeated Close: %v", err)
		}
	}
}

func TestOperatorCancelMidNext(t *testing.T) {
	g := compileFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	if err := g.root.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g.root.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The cancelled context must surface promptly — not hang on a pipe
	// slot or join prefetch — and teardown must still come to rest.
	for {
		c, err := g.root.Next(ctx)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("post-cancel error: %v", err)
			}
			break
		}
		if c == nil {
			break // already drained everything before the cancel landed
		}
	}
	g.wg.Wait()
	g.shutdown()
}

func TestOperatorOpenAfterCloseRefused(t *testing.T) {
	g := compileFixture(t)
	g.shutdown()
	if err := g.root.Open(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Open after Close: %v, want ErrClosed", err)
	}
}

// TestZeroResultUpstreams drives every operator kind above an empty
// service result: the movie scan yields nothing, so the selection above
// it, the pipes below it and the drivers all see a zero-result upstream.
func TestZeroResultUpstreams(t *testing.T) {
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]types.Value{}
	for k, v := range world.Inputs {
		inputs[k] = v
	}
	inputs["INPUT7"] = types.String("Klingon") // no movie matches
	for _, materialize := range []bool{false, true} {
		run, err := e.Execute(context.Background(), a, Options{
			Inputs: inputs, Weights: q.Weights, TargetK: 5, Materialize: materialize,
		})
		if err != nil {
			t.Fatalf("materialize=%v: %v", materialize, err)
		}
		if len(run.Combinations) != 0 {
			t.Errorf("materialize=%v: %d combinations from an empty world", materialize, len(run.Combinations))
		}
		// The empty scan must short-circuit: downstream services stay
		// uncalled.
		if run.Calls["R"] != 0 {
			t.Errorf("materialize=%v: restaurant called %d times below an empty scan", materialize, run.Calls["R"])
		}
	}
}

// TestZeroResultJoinBranch drives the parallel-join operator with both
// branches empty (no conference survives an impossible selection input).
func TestZeroResultJoinBranch(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e := New(world.Services(), nil)
	a, err := plan.Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]types.Value{}
	for k, v := range world.Inputs {
		inputs[k] = v
	}
	inputs["INPUT1"] = types.String("Cryonics") // no such conference topic
	for _, materialize := range []bool{false, true} {
		run, err := e.Execute(context.Background(), a, Options{
			Inputs: inputs, Weights: q.Weights, TargetK: 10, Materialize: materialize,
		})
		if err != nil {
			t.Fatalf("materialize=%v: %v", materialize, err)
		}
		if len(run.Combinations) != 0 {
			t.Errorf("materialize=%v: %d combinations for an empty join", materialize, len(run.Combinations))
		}
	}
}

func TestInputOpLifecycle(t *testing.T) {
	op := &countedOp{inner: &inputOp{}, n: &atomic.Int64{}}
	ctx := context.Background()
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if op.Bound() != 0 {
		t.Errorf("input bound before exhaustion = %v", op.Bound())
	}
	c, err := op.Next(ctx)
	if err != nil || c == nil {
		t.Fatalf("input op first pull: %v %v", c, err)
	}
	for _, comp := range c.comps {
		if comp != nil {
			t.Fatal("input op seeded a non-empty combination")
		}
	}
	c, err = op.Next(ctx)
	if err != nil || c != nil {
		t.Fatalf("input op second pull: %v %v", c, err)
	}
	if !math.IsInf(op.Bound(), -1) {
		t.Errorf("input bound after exhaustion = %v", op.Bound())
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Next(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("input op after Close: %v", err)
	}
}
