package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/types"
)

// pairPred bundles the join conditions between one pair of aliases into a
// single join.Predicate so repeating-group mappings stay consistent across
// the pair's conditions (Section 3.1 semantics).
type pairPred struct {
	leftAlias, rightAlias string
	pred                  join.Predicate
}

func (pp pairPred) otherAlias(self string) string {
	if self == pp.leftAlias {
		return pp.rightAlias
	}
	return pp.leftAlias
}

// match evaluates the predicate with self's tuple on whichever side it
// belongs to.
func (pp pairPred) match(self string, selfT, otherT *types.Tuple) (bool, error) {
	if self == pp.leftAlias {
		return pp.pred.Match(selfT, otherT)
	}
	return pp.pred.Match(otherT, selfT)
}

// groupJoinPreds groups a node's join predicates by alias pair.
func groupJoinPreds(n *plan.Node) map[string]pairPred {
	out := map[string]pairPred{}
	for _, p := range n.JoinPreds {
		if p.Right.Kind != query.TermPath {
			continue
		}
		la, ra := p.Left.Alias, p.Right.Path.Alias
		key := la + "|" + ra
		pp, ok := out[key]
		if !ok {
			pp = pairPred{leftAlias: la, rightAlias: ra}
		}
		pp.pred.Conds = append(pp.pred.Conds, join.Condition{
			Left: p.Left.Path, Op: p.Op, Right: p.Right.Path.Path,
		})
		out[key] = pp
	}
	return out
}

// matchAcross evaluates the node's pair predicates between two
// combinations about to be joined; predicates whose aliases are not split
// across the two sides are skipped (they were checked earlier).
func matchAcross(cl, cr *types.Combination, preds map[string]pairPred) (bool, error) {
	for _, pp := range preds {
		lt, lInLeft := cl.Components[pp.leftAlias]
		rt, rInRight := cr.Components[pp.rightAlias]
		if lInLeft && rInRight {
			ok, err := pp.pred.Match(lt, rt)
			if err != nil || !ok {
				return false, err
			}
			continue
		}
		lt2, lInRight := cr.Components[pp.leftAlias]
		rt2, rInLeft := cl.Components[pp.rightAlias]
		if lInRight && rInLeft {
			ok, err := pp.pred.Match(lt2, rt2)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

// evalJoin executes a parallel-join node: the two upstream combination
// streams are re-chunked, and the node's join strategy (invocation +
// completion) drives the tile exploration, with tile ranks taken from the
// first combination of each chunk. Matching pairs merge into combined
// combinations, emitted tile by tile.
func (ex *executor) evalJoin(ctx context.Context, id string, n *plan.Node) ([]*types.Combination, error) {
	preds := ex.ann.Plan.Predecessors(id)
	if len(preds) != 2 {
		return nil, fmt.Errorf("engine: join %s has %d predecessors", id, len(preds))
	}
	// The two branches of a parallel join are invoked concurrently — the
	// parallel service execution the plan's topology (and the
	// execution-time cost model) promises.
	left, right, err := ex.evalBranches(ctx, preds[0], preds[1])
	if err != nil {
		return nil, err
	}
	chunksL := rechunk(left, ex.chunkSizeOf(preds[0]))
	chunksR := rechunk(right, ex.chunkSizeOf(preds[1]))
	pairPreds := groupJoinPreds(n)

	explorer, err := join.NewExplorer(n.Strategy, len(chunksL), len(chunksR))
	if err != nil {
		return nil, err
	}
	explorer.SetRanker(func(t join.Tile) float64 {
		if t.X >= len(chunksL) || t.Y >= len(chunksR) {
			return 0
		}
		return chunkTop(chunksL[t.X]) * chunkTop(chunksR[t.Y])
	})
	nl, nr := 0, 0
	var out []*types.Combination
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev, ok := explorer.Next()
		if !ok {
			return out, nil
		}
		switch ev.Kind {
		case join.EventFetch:
			// Chunks are already materialized: a fetch just reveals the
			// next one (or reports exhaustion).
			if ev.Side == join.SideX {
				if nl >= len(chunksL) {
					explorer.ReportExhausted(join.SideX)
				} else {
					nl++
				}
			} else {
				if nr >= len(chunksR) {
					explorer.ReportExhausted(join.SideY)
				} else {
					nr++
				}
			}
		case join.EventTile:
			for _, cl := range chunksL[ev.Tile.X] {
				for _, cr := range chunksR[ev.Tile.Y] {
					ok, err := matchAcross(cl, cr, pairPreds)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					merged, ok := mergeBranches(cl, cr)
					if !ok {
						continue
					}
					merged.Rank(ex.opts.Weights)
					out = append(out, merged)
				}
			}
		}
	}
}

// evalBranches evaluates the two join inputs concurrently. Ancestors
// shared by both branches are evaluated first (once, sequentially) so the
// two goroutines only compute disjoint subgraphs.
func (ex *executor) evalBranches(ctx context.Context, a, b string) (left, right []*types.Combination, err error) {
	shared := intersect(ex.ancestors(a), ex.ancestors(b))
	for _, id := range shared {
		if _, err := ex.eval(ctx, id); err != nil {
			return nil, nil, err
		}
	}
	var (
		wg   sync.WaitGroup
		errA error
		errB error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		left, errA = ex.eval(ctx, a)
	}()
	go func() {
		defer wg.Done()
		right, errB = ex.eval(ctx, b)
	}()
	wg.Wait()
	if errA != nil {
		return nil, nil, errA
	}
	if errB != nil {
		return nil, nil, errB
	}
	return left, right, nil
}

// ancestors returns the node plus every node it depends on.
func (ex *executor) ancestors(id string) map[string]bool {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, p := range ex.ann.Plan.Predecessors(n) {
			walk(p)
		}
	}
	walk(id)
	return seen
}

// intersect returns the keys present in both sets, sorted for determinism.
func intersect(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// mergeBranches merges two combinations whose branches may share upstream
// components (both sides of the travel plan's join carry the Conference
// and Weather tuples that fed them). Shared aliases must hold the same
// component tuple — otherwise the pair stems from different upstream rows
// and does not join; disjoint aliases union.
func mergeBranches(cl, cr *types.Combination) (*types.Combination, bool) {
	merged := &types.Combination{Components: make(map[string]*types.Tuple, len(cl.Components)+len(cr.Components))}
	for a, t := range cl.Components {
		merged.Components[a] = t
	}
	for a, t := range cr.Components {
		if existing, shared := merged.Components[a]; shared {
			if existing != t {
				return nil, false
			}
			continue
		}
		merged.Components[a] = t
	}
	return merged, true
}

// DefaultRechunkSize is the re-chunking granularity used for join inputs
// that do not originate from a chunked service node (selections, exact
// services, nested joins); override per execution with
// Options.DefaultChunkSize.
const DefaultRechunkSize = 10

// chunkSizeOf picks the re-chunking granularity of a join input: the
// originating service's chunk size when the predecessor is a chunked
// service node, the configured default otherwise.
func (ex *executor) chunkSizeOf(id string) int {
	if n, ok := ex.ann.Plan.Node(id); ok && n.Kind == plan.KindService && n.Stats.Chunked() {
		return n.Stats.ChunkSize
	}
	if ex.opts.DefaultChunkSize > 0 {
		return ex.opts.DefaultChunkSize
	}
	return DefaultRechunkSize
}

func rechunk(items []*types.Combination, size int) [][]*types.Combination {
	if size <= 0 {
		size = DefaultRechunkSize
	}
	var chunks [][]*types.Combination
	for lo := 0; lo < len(items); lo += size {
		hi := lo + size
		if hi > len(items) {
			hi = len(items)
		}
		chunks = append(chunks, items[lo:hi])
	}
	return chunks
}

func chunkTop(chunk []*types.Combination) float64 {
	if len(chunk) == 0 {
		return 0
	}
	return chunk[0].Score
}
