package engine

import (
	"context"
	"sort"
	"testing"

	"seco/internal/mart"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/synth"
	"seco/internal/types"
)

// All four Fig. 9 topologies are different physical realizations of the
// same declarative query: executed with exhaustive fetch budgets and
// rectangular joins, each must produce exactly the same combination set.
// This exercises the engine's sequential-composition path (chains with
// service-node join predicates) against the parallel-join path.
func TestFig9TopologiesProduceSameResults(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.RunningExample(reg)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the world so exhaustive execution of chain topologies stays
	// fast (chains invoke the piped service per upstream tuple).
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{
		Movies: 40, Theatres: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := plan.RunningExampleStats()
	tops, err := optimizer.EnumerateTopologies(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 4 {
		t.Fatalf("topologies = %d", len(tops))
	}
	results := map[string][]string{}
	for _, top := range tops {
		p, err := optimizer.BuildPlan(q, top, stats, 1000, false)
		if err != nil {
			t.Fatalf("%v: %v", top, err)
		}
		// Exhaustive: every join rectangular, fetch budgets above the
		// world size.
		fetches := map[string]int{}
		for _, id := range p.NodeIDs() {
			n, _ := p.Node(id)
			if n.Kind == plan.KindJoin {
				n.Strategy.Completion = 0 // rectangular
			}
			if n.Kind == plan.KindService && n.Stats.Chunked() {
				fetches[id] = 100
			}
		}
		a, err := plan.Annotate(p, fetches)
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(world.Services(), nil).Execute(context.Background(), a, Options{
			Inputs: world.Inputs, Weights: q.Weights,
		})
		if err != nil {
			t.Fatalf("%v: %v", top, err)
		}
		var sigs []string
		for _, c := range run.Combinations {
			sigs = append(sigs, comboIdentity(c))
		}
		sort.Strings(sigs)
		results[top.String()] = sigs
	}
	var ref []string
	var refName string
	for name, sigs := range results {
		if ref == nil {
			ref, refName = sigs, name
			continue
		}
		if len(sigs) != len(ref) {
			t.Errorf("%s produced %d combinations, %s produced %d",
				name, len(sigs), refName, len(ref))
			continue
		}
		for i := range ref {
			if sigs[i] != ref[i] {
				t.Errorf("%s and %s diverge at %d: %s vs %s",
					name, refName, i, sigs[i], ref[i])
				break
			}
		}
	}
	if len(ref) == 0 {
		t.Fatal("no combinations produced by any topology; test is vacuous")
	}
}

func comboIdentity(c *types.Combination) string {
	var parts []string
	for _, a := range c.Aliases() {
		t := c.Components[a]
		label := t.Get("Title")
		if label.IsNull() {
			label = t.Get("Name")
		}
		parts = append(parts, a+"="+label.String())
	}
	sort.Strings(parts)
	out := ""
	for _, p := range parts {
		out += p + ";"
	}
	return out
}

// matchAcross must evaluate a pair predicate regardless of which side of
// the join carries the predicate's left alias.
func TestMatchAcrossOrientation(t *testing.T) {
	layout := &aliasLayout{
		slots:   map[string]int{"A": 0, "B": 1, "C": 2},
		aliases: []string{"A", "B", "C"},
		weights: []float64{1, 1, 1},
	}
	mk := func(alias, attr string, v int64) *comb {
		tu := types.NewTuple(1)
		tu.Set(attr, types.Int(v))
		comps := make([]*types.Tuple, layout.width())
		comps[layout.slots[alias]] = tu
		return &comb{comps: comps}
	}
	preds, err := compileJoinPreds(&plan.Node{JoinPreds: []query.Predicate{{
		Left: query.PathRef{Alias: "A", Path: "X"},
		Right: query.Term{Kind: query.TermPath,
			Path: query.PathRef{Alias: "B", Path: "Y"}},
	}}}, layout)
	if err != nil {
		t.Fatal(err)
	}
	// Natural orientation: A on the left side.
	ok, err := matchAcross(mk("A", "X", 5), mk("B", "Y", 5), preds)
	if err != nil || !ok {
		t.Errorf("natural orientation: %v %v", ok, err)
	}
	// Swapped: A arrives on the right side of the join.
	ok, err = matchAcross(mk("B", "Y", 5), mk("A", "X", 5), preds)
	if err != nil || !ok {
		t.Errorf("swapped orientation: %v %v", ok, err)
	}
	ok, err = matchAcross(mk("B", "Y", 6), mk("A", "X", 5), preds)
	if err != nil || ok {
		t.Errorf("swapped non-match: %v %v", ok, err)
	}
	// Predicate whose aliases are not split across the sides is skipped.
	ok, err = matchAcross(mk("A", "X", 1), mk("C", "Z", 2), preds)
	if err != nil || !ok {
		t.Errorf("unrelated pair: %v %v", ok, err)
	}
}

// compileSel1 compiles one selection over a single-alias layout for the
// path/term variant tests below.
func compileSel1(t *testing.T, p query.Predicate) compiledSel {
	t.Helper()
	layout := &aliasLayout{
		slots:   map[string]int{"A": 0},
		aliases: []string{"A"},
		weights: []float64{1},
	}
	sels, err := compileSelections([]query.Predicate{p}, layout)
	if err != nil {
		t.Fatal(err)
	}
	return sels[0]
}

func TestCompiledSelPathVariants(t *testing.T) {
	tu := types.NewTuple(1)
	tu.Set("A", types.Int(5))
	tu.AddGroup("G", types.SubTuple{"S": types.Int(1)})
	tu.AddGroup("G", types.SubTuple{"S": types.Int(9)})
	ex := &executor{}
	eval := func(path string, op types.Op, rhs types.Value) (bool, error) {
		cs := compileSel1(t, query.Predicate{
			Left: query.PathRef{Alias: "A", Path: path}, Op: op,
			Right: query.Term{Kind: query.TermConst, Const: rhs},
		})
		return cs.eval(ex, &comb{comps: []*types.Tuple{tu}})
	}
	// Atomic path.
	ok, err := eval("A", types.OpGt, types.Int(3))
	if err != nil || !ok {
		t.Errorf("atomic: %v %v", ok, err)
	}
	// Group path: existential over sub-tuples.
	ok, err = eval("G.S", types.OpGe, types.Int(8))
	if err != nil || !ok {
		t.Errorf("group existential: %v %v", ok, err)
	}
	ok, err = eval("G.S", types.OpGt, types.Int(100))
	if err != nil || ok {
		t.Errorf("group none: %v %v", ok, err)
	}
	// Dotted path on a non-group resolves to null → false.
	ok, err = eval("X.Y", types.OpEq, types.Int(1))
	if err != nil || ok {
		t.Errorf("missing path: %v %v", ok, err)
	}
	// Type error surfaces.
	if _, err := eval("A", types.OpLt, types.String("x")); err == nil {
		t.Error("type mismatch silent")
	}
}

func TestCompiledSelTermVariants(t *testing.T) {
	ex := &executor{opts: Options{Inputs: map[string]types.Value{"INPUT1": types.Int(7)}}}
	c := &comb{comps: []*types.Tuple{types.NewTuple(1).Set("X", types.Int(3))}}
	rhs := func(term query.Term) (types.Value, error) {
		cs := compileSel1(t, query.Predicate{
			Left: query.PathRef{Alias: "A", Path: "X"}, Op: types.OpEq, Right: term,
		})
		return cs.rhs(ex, c)
	}
	v, err := rhs(query.Term{Kind: query.TermConst, Const: types.Int(1)})
	if err != nil || v.IntVal() != 1 {
		t.Errorf("const: %v %v", v, err)
	}
	v, err = rhs(query.Term{Kind: query.TermInput, Input: "INPUT1"})
	if err != nil || v.IntVal() != 7 {
		t.Errorf("input: %v %v", v, err)
	}
	if _, err := rhs(query.Term{Kind: query.TermInput, Input: "INPUT9"}); err == nil {
		t.Error("unbound input silent")
	}
	v, err = rhs(query.Term{Kind: query.TermPath,
		Path: query.PathRef{Alias: "A", Path: "X"}})
	if err != nil || v.IntVal() != 3 {
		t.Errorf("path: %v %v", v, err)
	}
}

func TestEngineInvokerAccessor(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e := New(world.Services(), nil)
	if _, ok := e.Invoker().Lane("M"); !ok {
		t.Error("Lane(M) missing")
	}
	if _, ok := e.Invoker().Lane("Z"); ok {
		t.Error("Lane(Z) found")
	}
	var _ service.Service // keep the service import honest
}
