package engine

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/types"
)

// This file implements the parallel-join operator: the event-based join
// explorer (merge-scan or nested-loop, per the node's strategy) driven
// against live chunk arrivals from the two input operators. Each input is
// wrapped in a joinBranch whose single outstanding prefetch goroutine
// assembles the next chunk concurrently with the other branch — the
// parallel service invocation the plan topology promises.

// joinBranch is one input of the join operator. A single outstanding
// prefetch goroutine owns the reader and assembles the next chunk;
// results are handed over through a capacity-1 channel, so both branches
// fetch concurrently while the explorer is driven from one goroutine.
type joinBranch struct {
	reader Operator
	// id names the branch's input plan node — the pprof label of the
	// prefetch goroutine when the run is observed.
	id   string
	size int
	ch   chan branchPull
	// outstanding marks a prefetch in flight whose result has not been
	// consumed yet; Close drains it so the goroutine's reader ownership
	// has ended before the graph closes the inputs.
	outstanding bool

	chunks   [][]*types.Combination
	chunkMax []float64
	bestSeen float64
	// bound is the reader's bound snapshot as of the last completed pull
	// (the reader itself is owned by the prefetch goroutine while a pull
	// is outstanding).
	bound  float64
	noMore bool
}

type branchPull struct {
	combos []*types.Combination
	bound  float64
	short  bool // the reader ran dry during this pull
	err    error
}

func (g *graph) startPull(ctx context.Context, b *joinBranch) {
	b.outstanding = true
	g.wg.Add(1)
	observed := g.ex.opts.Trace != nil || g.ex.engine.metrics != nil
	go func() {
		defer g.wg.Done()
		pull := func(ctx context.Context) {
			var res branchPull
			for len(res.combos) < b.size {
				c, err := b.reader.Next(ctx)
				if err != nil {
					res.err = err
					break
				}
				if c == nil {
					res.short = true
					break
				}
				res.combos = append(res.combos, c)
			}
			res.bound = b.reader.Bound()
			b.ch <- res
		}
		if observed {
			// Label the prefetcher with its input node, so profiles split
			// the two concurrently-fetching join branches.
			pprof.Do(ctx, pprof.Labels("seco.operator", b.id), pull)
		} else {
			pull(ctx)
		}
	}()
}

// joinOp drives the event-based join explorer against live chunk
// arrivals. Chunk sizes, tile contents and tile order are deterministic
// functions of the input streams (the explorer's decisions depend only on
// fetch counts, exhaustion and processed tiles), so both driver policies
// enumerate the same combinations in the same order.
type joinOp struct {
	g           *graph
	ex          *executor
	n           *plan.Node
	explorer    *join.Explorer
	left, right *joinBranch
	preds       map[string]pairPred

	pending    []*types.Combination
	pendingIdx int
	seen       map[join.Tile]bool
	started    bool
	done       bool
}

func (g *graph) makeJoinOp(id string, n *plan.Node) (Operator, error) {
	preds := g.ex.ann.Plan.Predecessors(id)
	if len(preds) != 2 {
		return nil, fmt.Errorf("engine: join %s has %d predecessors", id, len(preds))
	}
	l, err := g.operator(preds[0])
	if err != nil {
		return nil, err
	}
	r, err := g.operator(preds[1])
	if err != nil {
		return nil, err
	}
	lb := &joinBranch{
		reader: l, id: preds[0], size: g.ex.chunkSizeOf(preds[0]),
		ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: l.Bound(),
	}
	rb := &joinBranch{
		reader: r, id: preds[1], size: g.ex.chunkSizeOf(preds[1]),
		ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: r.Bound(),
	}
	// No static fetch limits: branch lengths are unknown up front, so
	// exhaustion is reported live (the explorer rolls the probing fetch
	// back, leaving its state exactly as with a known limit).
	explorer, err := join.NewExplorer(n.Strategy, 0, 0)
	if err != nil {
		return nil, err
	}
	explorer.SetRanker(func(t join.Tile) float64 {
		if t.X >= len(lb.chunks) || t.Y >= len(rb.chunks) {
			return 0
		}
		return chunkTop(lb.chunks[t.X]) * chunkTop(rb.chunks[t.Y])
	})
	return &joinOp{
		g: g, ex: g.ex, n: n, explorer: explorer,
		left: lb, right: rb, preds: groupJoinPreds(n),
		seen: map[join.Tile]bool{},
	}, nil
}

func (s *joinOp) Open(ctx context.Context) error {
	if err := s.left.reader.Open(ctx); err != nil {
		return err
	}
	return s.right.reader.Open(ctx)
}

func (s *joinOp) Next(ctx context.Context) (*types.Combination, error) {
	for {
		if s.pendingIdx < len(s.pending) {
			c := s.pending[s.pendingIdx]
			s.pendingIdx++
			return c, nil
		}
		if s.done {
			return nil, nil
		}
		if !s.started {
			s.started = true
			s.g.startPull(ctx, s.left)
			s.g.startPull(ctx, s.right)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev, ok := s.explorer.Next()
		if !ok {
			s.done = true
			continue
		}
		switch ev.Kind {
		case join.EventFetch:
			b := s.left
			if ev.Side == join.SideY {
				b = s.right
			}
			if err := s.resolveFetch(ctx, ev.Side, b); err != nil {
				return nil, err
			}
		case join.EventTile:
			if err := s.fillTile(ev.Tile); err != nil {
				return nil, err
			}
		}
	}
}

// resolveFetch consumes the outstanding prefetch for the side the explorer
// asked about, reveals the chunk (or reports exhaustion) and keeps one
// pull in flight.
func (s *joinOp) resolveFetch(ctx context.Context, side join.Side, b *joinBranch) error {
	if b.noMore {
		s.explorer.ReportExhausted(side)
		return nil
	}
	res := <-b.ch
	b.outstanding = false
	if res.err != nil {
		return res.err
	}
	b.bound = res.bound
	if res.short {
		b.noMore = true
	}
	if len(res.combos) == 0 {
		b.bound = math.Inf(-1)
		s.explorer.ReportExhausted(side)
		return nil
	}
	b.chunks = append(b.chunks, res.combos)
	m := maxScore(res.combos)
	b.chunkMax = append(b.chunkMax, m)
	if m > b.bestSeen {
		b.bestSeen = m
	}
	if !b.noMore {
		s.g.startPull(ctx, b)
	}
	return nil
}

func (s *joinOp) fillTile(t join.Tile) error {
	s.seen[t] = true
	s.pending = s.pending[:0]
	s.pendingIdx = 0
	for _, cl := range s.left.chunks[t.X] {
		for _, cr := range s.right.chunks[t.Y] {
			ok, err := matchAcross(cl, cr, s.preds)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			merged, ok := mergeBranches(cl, cr)
			if !ok {
				continue
			}
			merged.Rank(s.ex.opts.Weights)
			s.pending = append(s.pending, merged)
		}
	}
	return nil
}

func (s *joinOp) Bound() float64 {
	b := math.Inf(-1)
	for i := s.pendingIdx; i < len(s.pending); i++ {
		if sc := s.pending[i].Score; sc > b {
			b = sc
		}
	}
	if s.done {
		// The explorer finished: only the pending remainder can emit.
		return b
	}
	lb, rb := s.left, s.right
	lBest := math.Max(lb.bestSeen, lb.bound)
	rBest := math.Max(rb.bestSeen, rb.bound)
	// Corner bounds: a future left chunk against the best right seen or
	// still to come, and symmetrically. Weights are non-negative, so a
	// merged score is at most the sum of the two sides (shared-alias
	// components are double-counted, which only loosens the bound).
	if !math.IsInf(lb.bound, -1) && !math.IsInf(rBest, -1) {
		if v := lb.bound + rBest; v > b {
			b = v
		}
	}
	if !math.IsInf(rb.bound, -1) && !math.IsInf(lBest, -1) {
		if v := rb.bound + lBest; v > b {
			b = v
		}
	}
	// Stored chunk pairs the explorer has not processed yet (deferred by
	// tile ordering, triangular admission, or a future flush).
	for x := range lb.chunks {
		for y := range rb.chunks {
			if s.seen[join.Tile{X: x, Y: y}] {
				continue
			}
			if v := lb.chunkMax[x] + rb.chunkMax[y]; v > b {
				b = v
			}
		}
	}
	return b
}

// Close drains any outstanding branch pulls, so the prefetch goroutines'
// ownership of the input readers has ended (the capacity-1 hand-over
// channel guarantees a sender never blocks) before the graph closes the
// inputs themselves.
func (s *joinOp) Close() error {
	s.done = true
	for _, b := range []*joinBranch{s.left, s.right} {
		if b != nil && b.outstanding {
			<-b.ch
			b.outstanding = false
		}
	}
	s.pending = nil
	return nil
}
