package engine

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"seco/internal/fidelity"
	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/types"
)

// This file implements the parallel-join operator: the event-based join
// explorer (merge-scan or nested-loop, per the node's strategy) driven
// against live chunk arrivals from the two input operators. Each input is
// wrapped in a joinBranch whose single outstanding prefetch goroutine
// assembles the next chunk concurrently with the other branch — the
// parallel service invocation the plan topology promises.
//
// Tile filling has two modes. When every pair predicate of the node is a
// pure atomic equality, the operator builds a hash index over each right
// chunk — pre-sized from the branch chunk sizes the optimizer's plan
// statistics determine — and probes it with the left rows, verifying
// bucket candidates with the compiled predicates (hash-then-verify, so
// false hash positives are impossible). The nested-loop scan remains both
// the fallback for non-equality predicates and the runtime escape hatch
// whenever a key column carries mixed value classes, where the hash path
// could hide the cross-kind comparison errors the scan would surface.
// Both modes emit identical combinations in identical order.

// joinBranch is one input of the join operator. A single outstanding
// prefetch goroutine owns the reader and assembles the next chunk;
// results are handed over through a capacity-1 channel, so both branches
// fetch concurrently while the explorer is driven from one goroutine.
type joinBranch struct {
	reader Operator
	// id names the branch's input plan node — the pprof label of the
	// prefetch goroutine when the run is observed.
	id   string
	size int
	ch   chan branchPull
	// outstanding marks a prefetch in flight whose result has not been
	// consumed yet; Close drains it so the goroutine's reader ownership
	// has ended before the graph closes the inputs.
	outstanding bool

	chunks   [][]*comb
	chunkMax []float64
	bestSeen float64
	// bound is the reader's bound snapshot as of the last completed pull
	// (the reader itself is owned by the prefetch goroutine while a pull
	// is outstanding).
	bound  float64
	noMore bool
}

type branchPull struct {
	combos []*comb
	bound  float64
	short  bool // the reader ran dry during this pull
	err    error
}

func (g *graph) startPull(ctx context.Context, b *joinBranch) {
	b.outstanding = true
	g.wg.Add(1)
	observed := g.ex.opts.Trace != nil || g.ex.engine.metrics != nil
	go func() {
		defer g.wg.Done()
		pull := func(ctx context.Context) {
			var res branchPull
			buf := getCombSlice(b.size)
			for len(buf) < b.size {
				c, err := b.reader.Next(ctx)
				if err != nil {
					res.err = err
					break
				}
				if c == nil {
					res.short = true
					break
				}
				buf = append(buf, c)
			}
			res.combos = buf
			res.bound = b.reader.Bound()
			b.ch <- res
		}
		if observed {
			// Label the prefetcher with its input node, so profiles split
			// the two concurrently-fetching join branches.
			pprof.Do(ctx, pprof.Labels("seco.operator", b.id), pull)
		} else {
			pull(ctx)
		}
	}()
}

// joinOp drives the event-based join explorer against live chunk
// arrivals. Chunk sizes, tile contents and tile order are deterministic
// functions of the input streams (the explorer's decisions depend only on
// fetch counts, exhaustion and processed tiles), so both driver policies
// enumerate the same combinations in the same order.
type joinOp struct {
	g           *graph
	ex          *executor
	n           *plan.Node
	explorer    *join.Explorer
	left, right *joinBranch
	preds       []joinPred
	arena       *combArena
	// cand tallies the candidate pairs the tiles examined (bucket
	// candidates under the hash path, the full cross product under the
	// nested scan); nil when fidelity is off.
	cand *fidelity.Counter

	// hashable marks that every pair predicate is a pure atomic equality,
	// so tiles may be filled through the pre-sized hash index; nested
	// remains the per-tile fallback on key-class conflicts.
	hashable bool
	// orient caches the per-predicate orientation (which branch holds
	// which predicate side), resolved once from the first tile — branch
	// alias sets are uniform across a branch's combs.
	orient      []int8 // 0 = undetermined/skip, 1 = pred left on X, 2 = pred left on Y
	orientReady bool
	// rIdx lazily caches one hash index per right (Y) chunk.
	rIdx []*chunkIndex

	pending    []*comb
	pendingIdx int
	seen       map[join.Tile]bool
	started    bool
	done       bool
}

func (g *graph) makeJoinOp(id string, n *plan.Node) (Operator, error) {
	preds := g.ex.ann.Plan.Predecessors(id)
	if len(preds) != 2 {
		return nil, fmt.Errorf("engine: join %s has %d predecessors", id, len(preds))
	}
	l, err := g.operator(preds[0])
	if err != nil {
		return nil, err
	}
	r, err := g.operator(preds[1])
	if err != nil {
		return nil, err
	}
	lb := &joinBranch{
		reader: l, id: preds[0], size: g.ex.chunkSizeOf(preds[0]),
		ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: l.Bound(),
	}
	rb := &joinBranch{
		reader: r, id: preds[1], size: g.ex.chunkSizeOf(preds[1]),
		ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: r.Bound(),
	}
	// No static fetch limits: branch lengths are unknown up front, so
	// exhaustion is reported live (the explorer rolls the probing fetch
	// back, leaving its state exactly as with a known limit).
	explorer, err := join.NewExplorer(n.Strategy, 0, 0)
	if err != nil {
		return nil, err
	}
	explorer.SetRanker(func(t join.Tile) float64 {
		if t.X >= len(lb.chunks) || t.Y >= len(rb.chunks) {
			return 0
		}
		return chunkTop(lb.chunks[t.X]) * chunkTop(rb.chunks[t.Y])
	})
	jps, err := compileJoinPreds(n, g.ex.layout)
	if err != nil {
		return nil, err
	}
	hashable := len(jps) > 0
	for i := range jps {
		if jps[i].eqLeft == nil {
			hashable = false
			break
		}
	}
	return &joinOp{
		g: g, ex: g.ex, n: n, explorer: explorer,
		left: lb, right: rb, preds: jps,
		arena:    newCombArena(g.ex.layout.width()),
		hashable: hashable,
		orient:   make([]int8, len(jps)),
		seen:     map[join.Tile]bool{},
		cand:     g.fid.Counter(id),
	}, nil
}

func (s *joinOp) Open(ctx context.Context) error {
	if err := s.left.reader.Open(ctx); err != nil {
		return err
	}
	return s.right.reader.Open(ctx)
}

func (s *joinOp) Next(ctx context.Context) (*comb, error) {
	for {
		if s.pendingIdx < len(s.pending) {
			c := s.pending[s.pendingIdx]
			s.pendingIdx++
			return c, nil
		}
		if s.done {
			return nil, nil
		}
		if !s.started {
			s.started = true
			s.g.startPull(ctx, s.left)
			s.g.startPull(ctx, s.right)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev, ok := s.explorer.Next()
		if !ok {
			s.done = true
			continue
		}
		switch ev.Kind {
		case join.EventFetch:
			b := s.left
			if ev.Side == join.SideY {
				b = s.right
			}
			if err := s.resolveFetch(ctx, ev.Side, b); err != nil {
				return nil, err
			}
		case join.EventTile:
			if err := s.fillTile(ev.Tile); err != nil {
				return nil, err
			}
		}
	}
}

// resolveFetch consumes the outstanding prefetch for the side the explorer
// asked about, reveals the chunk (or reports exhaustion) and keeps one
// pull in flight.
func (s *joinOp) resolveFetch(ctx context.Context, side join.Side, b *joinBranch) error {
	if b.noMore {
		s.explorer.ReportExhausted(side)
		return nil
	}
	res := <-b.ch
	b.outstanding = false
	if res.err != nil {
		putCombSlice(res.combos)
		return res.err
	}
	b.bound = res.bound
	if res.short {
		b.noMore = true
	}
	if len(res.combos) == 0 {
		putCombSlice(res.combos)
		b.bound = math.Inf(-1)
		s.explorer.ReportExhausted(side)
		return nil
	}
	b.chunks = append(b.chunks, res.combos)
	m := maxScore(res.combos)
	b.chunkMax = append(b.chunkMax, m)
	if m > b.bestSeen {
		b.bestSeen = m
	}
	if !b.noMore {
		s.g.startPull(ctx, b)
	}
	return nil
}

// resolveOrient fixes, from one concrete chunk pair, which branch holds
// each predicate's sides. Alias sets are uniform within a branch, so the
// answer holds for every subsequent tile.
func (s *joinOp) resolveOrient(cl, cr *comb) {
	for i := range s.preds {
		jp := &s.preds[i]
		switch {
		case cl.comps[jp.leftSlot] != nil && cr.comps[jp.rightSlot] != nil:
			s.orient[i] = 1
		case cr.comps[jp.leftSlot] != nil && cl.comps[jp.rightSlot] != nil:
			s.orient[i] = 2
		default:
			s.orient[i] = 0 // not split across the branches; checked earlier
		}
	}
	s.orientReady = true
}

func (s *joinOp) fillTile(t join.Tile) error {
	s.seen[t] = true
	if s.pending == nil {
		s.pending = getCombSlice(s.left.size * s.right.size / 4)
	}
	s.pending = s.pending[:0]
	s.pendingIdx = 0
	cl, cr := s.left.chunks[t.X], s.right.chunks[t.Y]
	if len(cl) == 0 || len(cr) == 0 {
		return nil
	}
	if !s.orientReady {
		s.resolveOrient(cl[0], cr[0])
	}
	if s.hashable {
		if done, err := s.fillTileHash(t, cl, cr); done || err != nil {
			return err
		}
		// Key-class conflict: rerun the tile through the exact scan.
		s.pending = s.pending[:0]
	}
	s.cand.Add(int64(len(cl) * len(cr)))
	for _, l := range cl {
		for _, r := range cr {
			ok, err := matchAcross(l, r, s.preds)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			merged, ok := mergeBranches(s.arena, s.ex.layout, l, r)
			if !ok {
				continue
			}
			s.pending = append(s.pending, merged)
		}
	}
	return nil
}

// fillTileHash fills the tile through a hash index over the right chunk,
// probing with the left rows and verifying candidates with the compiled
// predicates. It reports done=false (leaving partial pending state for
// the caller to reset) when a key column carries mixed value classes —
// the case where only the nested scan reproduces the error semantics of
// pairwise evaluation.
func (s *joinOp) fillTileHash(t join.Tile, cl, cr []*comb) (bool, error) {
	idx := s.indexFor(t.Y, cr)
	if idx == nil {
		return false, nil
	}
	// Candidates examined accumulate locally and count only when the hash
	// path commits to the tile — a key-class fallback reruns it through
	// the nested scan, which tallies the full cross product itself.
	var examined int64
	var clsArr [16]uint8
	for _, l := range cl {
		h, cls, null, bad := s.probeKey(l, clsArr[:0])
		if bad {
			return false, nil
		}
		if null {
			continue // a null key never equals anything: no match, no error
		}
		if !idx.classesCompatible(cls) {
			return false, nil
		}
		examined += int64(len(idx.buckets[h]))
		for _, ri := range idx.buckets[h] {
			r := cr[ri]
			ok, err := matchAcross(l, r, s.preds)
			if err != nil {
				s.cand.Add(examined)
				return true, err
			}
			if !ok {
				continue // hash collision; verification rejected it
			}
			merged, ok := mergeBranches(s.arena, s.ex.layout, l, r)
			if !ok {
				continue
			}
			s.pending = append(s.pending, merged)
		}
	}
	s.cand.Add(examined)
	return true, nil
}

// valueClass buckets a value's kind for hash-compatibility tracking:
// numeric kinds share a class (they compare with each other), every other
// kind is its own class. classNull marks a null (absent) key part.
const (
	classNull = iota
	classNumeric
	classString
	classBool
	classDate
)

func valueClass(v types.Value) uint8 {
	switch v.Kind() {
	case types.KindInt, types.KindFloat:
		return classNumeric
	case types.KindString:
		return classString
	case types.KindBool:
		return classBool
	case types.KindDate:
		return classDate
	default:
		return classNull
	}
}

// hashValue folds a value into an FNV-1a hash using a canonical encoding
// per class, so numerically equal int/float keys hash identically.
func hashValue(h uint64, v types.Value) uint64 {
	const prime = 1099511628211
	switch valueClass(v) {
	case classNumeric:
		bits := math.Float64bits(v.FloatVal())
		for i := 0; i < 8; i++ {
			h = (h ^ (bits & 0xff)) * prime
			bits >>= 8
		}
	case classString:
		s := v.Str()
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
		h = (h ^ 0xff) * prime // length delimiter for multi-column keys
	case classBool:
		b := uint64(0)
		if v.BoolVal() {
			b = 1
		}
		h = (h ^ b) * prime
	case classDate:
		bits := uint64(v.Time().UnixNano())
		for i := 0; i < 8; i++ {
			h = (h ^ (bits & 0xff)) * prime
			bits >>= 8
		}
	}
	return h
}

// chunkIndex is the hash index of one right chunk: bucket → row indices
// in chunk order, plus the per-column value class the index saw. A nil
// chunkIndex (or classes conflict) routes the tile to the nested scan.
type chunkIndex struct {
	buckets map[uint64][]int
	classes []uint8 // one per key column; classNull until a value is seen
}

// keyCols enumerates the key columns of the join in predicate order: for
// each split predicate, the (slot, attr) the given branch side
// contributes. left selects the X branch's columns.
func (s *joinOp) keyCols(left bool, fn func(slot int, attr string)) {
	for i := range s.preds {
		jp := &s.preds[i]
		switch s.orient[i] {
		case 1: // predicate left side lives on X
			if left {
				for _, a := range jp.eqLeft {
					fn(jp.leftSlot, a)
				}
			} else {
				for _, a := range jp.eqRight {
					fn(jp.rightSlot, a)
				}
			}
		case 2: // predicate left side lives on Y
			if left {
				for _, a := range jp.eqRight {
					fn(jp.rightSlot, a)
				}
			} else {
				for _, a := range jp.eqLeft {
					fn(jp.leftSlot, a)
				}
			}
		}
	}
}

// indexFor returns the (cached) hash index of right chunk y, or nil when
// the chunk cannot be indexed consistently (mixed classes in a key
// column) or the join has no active key columns.
func (s *joinOp) indexFor(y int, cr []*comb) *chunkIndex {
	for len(s.rIdx) <= y {
		s.rIdx = append(s.rIdx, nil)
	}
	if idx := s.rIdx[y]; idx != nil {
		if idx.buckets == nil {
			return nil // previously found unindexable
		}
		return idx
	}
	nCols := 0
	s.keyCols(false, func(int, string) { nCols++ })
	if nCols == 0 {
		s.rIdx[y] = &chunkIndex{}
		return nil
	}
	// Pre-size the bucket table to the chunk size the plan's service
	// statistics fixed for this branch — the hash join never rehashes.
	idx := &chunkIndex{
		buckets: make(map[uint64][]int, len(cr)),
		classes: make([]uint8, nCols),
	}
	bad := false
	for ri, r := range cr {
		h := uint64(14695981039346656037)
		null := false
		col := 0
		s.keyCols(false, func(slot int, attr string) {
			if bad {
				return
			}
			t := r.comps[slot]
			if t == nil {
				// Unexpectedly absent component: only the scan's per-pair
				// split checks are exact here.
				bad = true
				return
			}
			v := t.Atomic(attr)
			cls := valueClass(v)
			if cls == classNull {
				null = true
			} else if idx.classes[col] == classNull {
				idx.classes[col] = cls
			} else if idx.classes[col] != cls {
				bad = true // mixed classes: unindexable
				return
			}
			h = hashValue(h, v)
			col++
		})
		if bad {
			s.rIdx[y] = &chunkIndex{}
			return nil
		}
		if null {
			continue // rows with a null key part can never match
		}
		idx.buckets[h] = append(idx.buckets[h], ri)
	}
	s.rIdx[y] = idx
	return idx
}

// probeKey computes a left row's key hash and column classes; null
// reports a null key part (the row matches nothing), bad an absent
// component (the tile must fall back to the scan).
func (s *joinOp) probeKey(l *comb, cls []uint8) (h uint64, out []uint8, null, bad bool) {
	h = 14695981039346656037
	out = cls[:0]
	s.keyCols(true, func(slot int, attr string) {
		if bad {
			return
		}
		t := l.comps[slot]
		if t == nil {
			bad = true
			return
		}
		v := t.Atomic(attr)
		c := valueClass(v)
		if c == classNull {
			null = true
		}
		out = append(out, c)
		h = hashValue(h, v)
	})
	return h, out, null, bad
}

// classesCompatible reports whether a probe's column classes agree with
// everything the index saw: any non-null class pair that differs would
// make some row pair comparison a cross-kind error under the scan.
func (idx *chunkIndex) classesCompatible(cls []uint8) bool {
	for i, c := range cls {
		if c == classNull || i >= len(idx.classes) {
			continue
		}
		if idx.classes[i] != classNull && idx.classes[i] != c {
			return false
		}
	}
	return true
}

func (s *joinOp) Bound() float64 {
	b := math.Inf(-1)
	for i := s.pendingIdx; i < len(s.pending); i++ {
		if sc := s.pending[i].score; sc > b {
			b = sc
		}
	}
	if s.done {
		// The explorer finished: only the pending remainder can emit.
		return b
	}
	lb, rb := s.left, s.right
	lBest := math.Max(lb.bestSeen, lb.bound)
	rBest := math.Max(rb.bestSeen, rb.bound)
	// Corner bounds: a future left chunk against the best right seen or
	// still to come, and symmetrically. Weights are non-negative, so a
	// merged score is at most the sum of the two sides (shared-alias
	// components are double-counted, which only loosens the bound).
	if !math.IsInf(lb.bound, -1) && !math.IsInf(rBest, -1) {
		if v := lb.bound + rBest; v > b {
			b = v
		}
	}
	if !math.IsInf(rb.bound, -1) && !math.IsInf(lBest, -1) {
		if v := rb.bound + lBest; v > b {
			b = v
		}
	}
	// Stored chunk pairs the explorer has not processed yet (deferred by
	// tile ordering, triangular admission, or a future flush).
	for x := range lb.chunks {
		for y := range rb.chunks {
			if s.seen[join.Tile{X: x, Y: y}] {
				continue
			}
			if v := lb.chunkMax[x] + rb.chunkMax[y]; v > b {
				b = v
			}
		}
	}
	return b
}

// Close drains any outstanding branch pulls, so the prefetch goroutines'
// ownership of the input readers has ended (the capacity-1 hand-over
// channel guarantees a sender never blocks) before the graph closes the
// inputs themselves; then the chunk buffers go back to their pool and the
// arena's blocks are released.
func (s *joinOp) Close() error {
	s.done = true
	for _, b := range []*joinBranch{s.left, s.right} {
		if b == nil {
			continue
		}
		if b.outstanding {
			res := <-b.ch
			b.outstanding = false
			putCombSlice(res.combos)
		}
		for _, ch := range b.chunks {
			putCombSlice(ch)
		}
		b.chunks = nil
	}
	if s.pending != nil {
		putCombSlice(s.pending)
		s.pending = nil
	}
	s.rIdx = nil
	s.arena.release()
	return nil
}
