package engine

import (
	"context"
	"testing"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/synth"
	"seco/internal/types"
)

// fixture builds the running-example world, plan and engine.
func fixture(t testing.TB) (*Engine, *plan.Plan, *query.Query, *synth.MovieWorld) {
	t.Helper()
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return New(world.Services(), nil), p, q, world
}

func executeFixture(t testing.TB, fetches map[string]int, k int) (*Run, *query.Query, *synth.MovieWorld) {
	t.Helper()
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, fetches)
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Execute(context.Background(), a, Options{
		Inputs:  world.Inputs,
		Weights: q.Weights,
		TargetK: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run, q, world
}

func TestExecuteRunningExampleEndToEnd(t *testing.T) {
	run, _, world := executeFixture(t, plan.Fig10Fetches(), 10)
	if len(run.Combinations) == 0 {
		t.Fatal("no combinations produced")
	}
	if len(run.Combinations) > 10 {
		t.Errorf("TargetK not honoured: %d results", len(run.Combinations))
	}
	for _, c := range run.Combinations {
		m, tt, r := c.Components["M"], c.Components["T"], c.Components["R"]
		if m == nil || tt == nil || r == nil {
			t.Fatalf("incomplete combination: %v", c)
		}
		// Shows: the movie title appears on the theatre's billboard.
		title := m.Get("Title").Str()
		okTitle := false
		for _, v := range tt.GroupValues("Movies", "Title") {
			if v.Str() == title {
				okTitle = true
			}
		}
		if !okTitle {
			t.Errorf("combination violates Shows: movie %q not at theatre %v", title, tt.Get("Name"))
		}
		// DinnerPlace: the restaurant sits at the theatre's address.
		if r.Get("UAddress").Str() != tt.Get("TAddress").Str() {
			t.Errorf("combination violates DinnerPlace: %v vs %v", r.Get("UAddress"), tt.Get("TAddress"))
		}
		// The movie satisfies the selections.
		if m.Get("Language").Str() != world.Inputs["INPUT7"].Str() {
			t.Errorf("language selection violated: %v", m.Get("Language"))
		}
	}
}

func TestExecuteRankedOutput(t *testing.T) {
	run, _, _ := executeFixture(t, plan.Fig10Fetches(), 0)
	for i := 1; i < len(run.Combinations); i++ {
		if run.Combinations[i].Score > run.Combinations[i-1].Score+1e-12 {
			t.Fatalf("output not ranked at %d: %v after %v",
				i, run.Combinations[i].Score, run.Combinations[i-1].Score)
		}
	}
}

func TestExecuteCallCounts(t *testing.T) {
	run, _, _ := executeFixture(t, plan.Fig10Fetches(), 10)
	// Movie and Theatre: one invocation each, at most the planned 5
	// fetches (fewer when the matching result list exhausts earlier).
	if run.Calls["M"] < 1 || run.Calls["M"] > 5 {
		t.Errorf("M calls = %d, want 1..5", run.Calls["M"])
	}
	if run.Calls["T"] != 5 {
		t.Errorf("T calls = %d, want 5 (50 theatres in chunks of 5)", run.Calls["T"])
	}
	// Restaurant: one fetch per joined movie-theatre combination (only
	// for combinations that survived the MS join).
	if run.Calls["R"] == 0 {
		t.Error("R never called")
	}
	if run.TotalCalls() != run.Calls["M"]+run.Calls["T"]+run.Calls["R"] {
		t.Error("TotalCalls mismatch")
	}
}

func TestExecuteMoreFetchesMoreResults(t *testing.T) {
	small, _, _ := executeFixture(t, map[string]int{"M": 1, "T": 1, "R": 1}, 0)
	big, _, _ := executeFixture(t, plan.Fig10Fetches(), 0)
	if len(big.Combinations) < len(small.Combinations) {
		t.Errorf("more fetches produced fewer results: %d vs %d",
			len(big.Combinations), len(small.Combinations))
	}
}

func TestExecuteUnboundInputFails(t *testing.T) {
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]types.Value{}
	for k, v := range world.Inputs {
		inputs[k] = v
	}
	delete(inputs, "INPUT1")
	if _, err := e.Execute(context.Background(), a, Options{
		Inputs: inputs, Weights: q.Weights,
	}); err == nil {
		t.Error("execution with unbound INPUT1 succeeded")
	}
}

func TestExecuteContextCancel(t *testing.T) {
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Execute(ctx, a, Options{Inputs: world.Inputs, Weights: q.Weights}); err == nil {
		t.Error("cancelled execution succeeded")
	}
}

func TestExecuteTravelPlan(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e := New(world.Services(), nil)
	a, err := plan.Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights, TargetK: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Combinations) == 0 {
		t.Fatal("no travel combinations")
	}
	for _, c := range run.Combinations {
		conf, w, f, h := c.Components["C"], c.Components["W"], c.Components["F"], c.Components["H"]
		if conf == nil || w == nil || f == nil || h == nil {
			t.Fatalf("incomplete combination %v", c)
		}
		// Weather selection: only hot destinations survive.
		if temp := w.Get("AvgTemp").FloatVal(); temp <= 26 {
			t.Errorf("selection violated: temp %v", temp)
		}
		// The flight goes to the conference city; the hotel is there too.
		if f.Get("To").Str() != conf.Get("City").Str() {
			t.Errorf("flight to %v, conference in %v", f.Get("To"), conf.Get("City"))
		}
		if h.Get("City").Str() != conf.Get("City").Str() {
			t.Errorf("hotel in %v, conference in %v", h.Get("City"), conf.Get("City"))
		}
	}
	// Weather is invoked per conference: 20 calls.
	if run.Calls["W"] != 20 {
		t.Errorf("W calls = %d, want 20", run.Calls["W"])
	}
}

func TestExecuteWithLatencyDelay(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var charged time.Duration
	var mu chan struct{} = make(chan struct{}, 1)
	e := New(world.Services(), func(d time.Duration) {
		mu <- struct{}{}
		charged += d
		<-mu
	})
	a, err := plan.Annotate(p, map[string]int{"M": 1, "T": 1, "R": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights,
	}); err != nil {
		t.Fatal(err)
	}
	if charged == 0 {
		t.Error("delay hook never invoked")
	}
}

func TestSessionMoreResults(t *testing.T) {
	e, p, q, world := fixture(t)
	s := NewSession(e, p, map[string]int{"M": 1, "T": 1, "R": 1}, Options{
		Inputs: world.Inputs, Weights: q.Weights, TargetK: 5,
	})
	first, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// No combination repeats across batches.
	seen := map[string]bool{}
	for _, c := range first {
		seen[comboKey(c)] = true
	}
	for _, c := range second {
		if seen[comboKey(c)] {
			t.Errorf("combination repeated across batches: %v", c)
		}
	}
	if len(first) == 0 {
		t.Error("first batch empty")
	}
	if len(first)+len(second) == 0 {
		t.Fatal("no results at all")
	}
	// Draining repeatedly eventually exhausts the services.
	for i := 0; i < 12; i++ {
		batch, err := s.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			return // exhausted
		}
	}
	t.Log("session still producing after many batches (large world); acceptable")
}
