package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/service"
	"seco/internal/types"
)

// This file implements the pull-based streaming executor: every plan node
// becomes a combination stream that produces results on demand, so
// request-responses are only issued for the part of the search space the
// consumer actually visits. Each stream also publishes an upper bound on
// the score of any combination it can still emit, derived from the
// services' published Scoring curves and the scores already observed
// (results arrive in non-increasing score order per invocation). The
// output loop uses the root bound as a threshold-style stopping rule: once
// the K-th best score pulled so far is at least the bound, no unseen
// combination can enter the top-K and execution halts.
//
// The bounds are sound under the chapter's standing model: services serve
// tuples in decreasing score order and their published scoring curves
// upper-bound the actual scores at each rank position. Early termination
// additionally requires all ranking weights to be non-negative (the query
// layer enforces this); otherwise the engine silently falls back to a full
// drain, which reproduces the materializing semantics exactly.

// comboStream is the pull-based face of a plan node. Next returns the next
// combination, or (nil, nil) when the stream is exhausted; calling Next
// after exhaustion keeps returning (nil, nil). Bound returns an upper
// bound on the score of any combination a future Next can return, or
// -Inf when none remain. Streams are not safe for concurrent use; the
// joinBranch prefetcher and the pipe window own their sources exclusively,
// and fan-out nodes are wrapped in a mutex-guarded sharedStream.
type comboStream interface {
	Next(ctx context.Context) (*types.Combination, error)
	Bound() float64
}

// streamExec builds and tracks the stream pipeline of one execution.
type streamExec struct {
	ex *executor
	// wg tracks every goroutine the pipeline spawns (join-branch
	// prefetchers and pipe-window invocations); Execute waits for it after
	// cancelling, so counters are quiescent before the Run is assembled.
	wg      sync.WaitGroup
	emitted map[string]*atomic.Int64
	// depth counts request-responses per service node — the fetch depth
	// the node reached, reported by Degradation.FetchDepth.
	depth  map[string]*atomic.Int64
	shared map[string]*sharedStream
}

// stream returns a reader for the node's output. Nodes with several plan
// successors get one backing stream and a per-consumer tee, so the node is
// evaluated once and its combinations (with their component tuple
// identities) are shared.
func (se *streamExec) stream(id string) (comboStream, error) {
	n, ok := se.ex.ann.Plan.Node(id)
	if !ok {
		return nil, fmt.Errorf("engine: unknown node %q", id)
	}
	if len(se.ex.ann.Plan.Successors(id)) > 1 {
		sh, ok := se.shared[id]
		if !ok {
			src, err := se.makeStream(id, n)
			if err != nil {
				return nil, err
			}
			sh = &sharedStream{src: src}
			se.shared[id] = sh
		}
		return &teeReader{sh: sh}, nil
	}
	return se.makeStream(id, n)
}

// makeStream builds the node's stream (once per node).
func (se *streamExec) makeStream(id string, n *plan.Node) (comboStream, error) {
	var (
		s   comboStream
		err error
	)
	switch n.Kind {
	case plan.KindInput:
		s = &inputStream{}
	case plan.KindSelection:
		var up comboStream
		up, err = se.stream(se.ex.ann.Plan.Predecessors(id)[0])
		if err == nil {
			s = &selectionStream{ex: se.ex, n: n, up: up}
		}
	case plan.KindService:
		s, err = se.makeServiceStream(id, n)
	case plan.KindJoin:
		s, err = se.makeJoinStream(id, n)
	default:
		err = fmt.Errorf("engine: unsupported node kind %v", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	c := &atomic.Int64{}
	se.emitted[id] = c
	return &countedStream{inner: s, n: c}, nil
}

func (se *streamExec) makeServiceStream(id string, n *plan.Node) (comboStream, error) {
	up, err := se.stream(se.ex.ann.Plan.Predecessors(id)[0])
	if err != nil {
		return nil, err
	}
	counter, ok := se.ex.engine.counters[n.Alias]
	if !ok {
		return nil, fmt.Errorf("engine: no service bound for alias %q", n.Alias)
	}
	budget := se.ex.ann.Fetches[id]
	if budget <= 0 {
		budget = 1
	}
	if !n.Stats.Chunked() {
		budget = 1
	}
	fixed, err := se.ex.fixedInputs(n)
	if err != nil {
		return nil, err
	}
	preds := groupJoinPreds(n)
	w := se.ex.opts.Weights[n.Alias]
	depth := &atomic.Int64{}
	se.depth[id] = depth
	if n.PipedFrom() {
		return &pipeStream{
			se: se, ex: se.ex, n: n, counter: counter, fixed: fixed,
			preds: preds, budget: budget, w: w,
			par: se.ex.opts.Parallelism, up: up, depth: depth,
		}, nil
	}
	return &serviceStream{
		ex: se.ex, n: n, counter: counter, fixed: fixed,
		preds: preds, budget: budget, w: w, up: up, depth: depth,
	}, nil
}

// countedStream counts distinct emissions for Run.Produced.
type countedStream struct {
	inner comboStream
	n     *atomic.Int64
}

func (c *countedStream) Next(ctx context.Context) (*types.Combination, error) {
	combo, err := c.inner.Next(ctx)
	if combo != nil {
		c.n.Add(1)
	}
	return combo, err
}

func (c *countedStream) Bound() float64 { return c.inner.Bound() }

// inputStream emits the single empty combination every plan starts from.
type inputStream struct{ done bool }

func (s *inputStream) Next(context.Context) (*types.Combination, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return &types.Combination{Components: map[string]*types.Tuple{}}, nil
}

func (s *inputStream) Bound() float64 {
	if s.done {
		return math.Inf(-1)
	}
	return 0
}

// selectionStream filters its upstream; selections never change scores, so
// the upstream bound carries over.
type selectionStream struct {
	ex *executor
	n  *plan.Node
	up comboStream
}

func (s *selectionStream) Next(ctx context.Context) (*types.Combination, error) {
	for {
		c, err := s.up.Next(ctx)
		if err != nil || c == nil {
			return nil, err
		}
		keep, err := s.ex.satisfiesSelections(c, s.n.Selections)
		if err != nil {
			return nil, err
		}
		if keep {
			return c, nil
		}
	}
}

func (s *selectionStream) Bound() float64 { return s.up.Bound() }

// serviceStream runs a non-piped service node: the service is invoked
// lazily (never before the first upstream combination arrives, and never
// at all when the upstream is empty) and chunks are fetched only when the
// enumeration demands tuples beyond the fetched prefix. Enumeration order
// matches the materializing executor: upstream-outer, tuple-inner.
type serviceStream struct {
	ex      *executor
	n       *plan.Node
	counter *service.Counter
	fixed   service.Input
	preds   map[string]pairPred
	budget  int
	w       float64
	up      comboStream
	depth   *atomic.Int64

	inv       service.Invocation
	tuples    []*types.Tuple
	fetches   int
	exhausted bool
	cur       *types.Combination
	j         int
	done      bool
}

// canFetch reports whether another chunk may still be requested. All three
// disqualifiers (budget spent, limit reached, service exhausted) are
// permanent, so once an upstream combination has finished its inner loop
// the tuple list is final — which the bound relies on.
func (s *serviceStream) canFetch() bool {
	if s.exhausted || s.fetches >= s.budget {
		return false
	}
	if s.n.Limit > 0 && len(s.tuples) >= s.n.Limit {
		return false
	}
	return true
}

func (s *serviceStream) fetch(ctx context.Context) error {
	if s.inv == nil {
		inv, err := s.counter.Invoke(ctx, s.fixed)
		if err != nil {
			return withAlias(s.n.Alias, err)
		}
		s.inv = inv
	}
	chunk, err := s.inv.Fetch(ctx)
	if errors.Is(err, service.ErrExhausted) {
		s.exhausted = true
		return nil
	}
	if err != nil {
		return withAlias(s.n.Alias, err)
	}
	s.fetches++
	s.depth.Add(1)
	s.tuples = append(s.tuples, chunk.Tuples...)
	if s.n.Limit > 0 && len(s.tuples) > s.n.Limit {
		s.tuples = s.tuples[:s.n.Limit]
	}
	return nil
}

func (s *serviceStream) Next(ctx context.Context) (*types.Combination, error) {
	if s.done {
		return nil, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cur == nil {
			c, err := s.up.Next(ctx)
			if err != nil {
				return nil, err
			}
			if c == nil {
				s.done = true
				return nil, nil
			}
			s.cur, s.j = c, 0
		}
		for s.j >= len(s.tuples) && s.canFetch() {
			if err := s.fetch(ctx); err != nil {
				return nil, err
			}
		}
		if s.j >= len(s.tuples) {
			s.cur = nil
			if len(s.tuples) == 0 {
				// The service yielded nothing: no upstream combination can
				// ever compose, so skip the remaining upstream pulls.
				s.done = true
				return nil, nil
			}
			continue
		}
		tu := s.tuples[s.j]
		s.j++
		merged, ok, err := s.ex.compose(s.cur, s.n.Alias, tu, s.preds)
		if err != nil {
			return nil, err
		}
		if ok {
			return merged, nil
		}
	}
}

func (s *serviceStream) Bound() float64 {
	if s.done {
		return math.Inf(-1)
	}
	b := math.Inf(-1)
	if s.cur != nil {
		// Remaining inner loop of the current upstream combination: the
		// next tuple (fetched tuples are non-increasing) or, when the
		// prefix is spent but more is fetchable, the unseen-tuple cap.
		if s.j < len(s.tuples) {
			b = s.cur.Score + s.w*s.tuples[s.j].Score
		} else if s.canFetch() {
			b = s.cur.Score + s.w*s.unseenCap()
		}
	}
	if ub := s.up.Bound(); !math.IsInf(ub, -1) {
		if v := ub + s.w*s.bestTupleCap(); v > b {
			b = v
		}
	}
	return b
}

// unseenCap bounds the score of the next not-yet-fetched tuple: the
// published curve at the next rank position, tightened by the last score
// actually seen (tuples arrive in non-increasing order).
func (s *serviceStream) unseenCap() float64 {
	cap := scoringCap(s.n.Stats.Scoring, len(s.tuples))
	if len(s.tuples) > 0 {
		if last := s.tuples[len(s.tuples)-1].Score; last < cap {
			cap = last
		}
	}
	return cap
}

// bestTupleCap bounds the best tuple this service contributes to any
// future upstream combination.
func (s *serviceStream) bestTupleCap() float64 {
	if len(s.tuples) > 0 {
		return s.tuples[0].Score
	}
	if !s.canFetch() {
		return 0
	}
	return scoringCap(s.n.Stats.Scoring, 0)
}

// scoringCap evaluates the published curve at a rank position. A
// zero-value Scoring (constant zero) means the service never published a
// curve; scores live in [0,1], so assume the worst.
func scoringCap(sc service.Scoring, pos int) float64 {
	if sc.Kind == service.ScoringConstant && sc.High == 0 {
		return 1
	}
	return sc.Score(pos)
}

// pipeStream runs a piped service node: instead of a barrier over all
// upstream rows, it keeps a FIFO window of at most Parallelism in-flight
// invocations as a bounded prefetch, emitting results in upstream
// (ranking) order exactly as the materializing pipe join does.
type pipeStream struct {
	se      *streamExec
	ex      *executor
	n       *plan.Node
	counter *service.Counter
	fixed   service.Input
	preds   map[string]pairPred
	budget  int
	w       float64
	par     int
	up      comboStream
	depth   *atomic.Int64

	upDone  bool
	window  []*pipeSlot
	head    []*types.Combination
	headIdx int
	done    bool
}

type pipeSlot struct {
	src  *types.Combination
	out  []*types.Combination
	err  error
	done chan struct{}
}

// fill tops the window up to the parallelism bound, launching one
// invocation goroutine per upstream combination.
func (s *pipeStream) fill(ctx context.Context) error {
	for !s.upDone && len(s.window) < s.par {
		c, err := s.up.Next(ctx)
		if err != nil {
			return err
		}
		if c == nil {
			s.upDone = true
			return nil
		}
		slot := &pipeSlot{src: c, done: make(chan struct{})}
		s.window = append(s.window, slot)
		s.se.wg.Add(1)
		go func() {
			defer s.se.wg.Done()
			defer close(slot.done)
			var fetched int
			slot.out, fetched, slot.err = s.ex.pipeOne(ctx, s.n, s.counter, s.fixed, s.budget, slot.src, s.preds)
			s.depth.Add(int64(fetched))
		}()
	}
	return nil
}

func (s *pipeStream) Next(ctx context.Context) (*types.Combination, error) {
	for {
		if s.headIdx < len(s.head) {
			c := s.head[s.headIdx]
			s.headIdx++
			return c, nil
		}
		if s.done {
			return nil, nil
		}
		if err := s.fill(ctx); err != nil {
			return nil, err
		}
		if len(s.window) == 0 {
			s.done = true
			return nil, nil
		}
		slot := s.window[0]
		s.window = s.window[1:]
		<-slot.done
		if slot.err != nil {
			return nil, withAlias(s.n.Alias, slot.err)
		}
		s.head, s.headIdx = slot.out, 0
		// Refill behind the consumed slot so the window stays busy while
		// the head results are being emitted.
		if err := s.fill(ctx); err != nil {
			return nil, err
		}
	}
}

func (s *pipeStream) Bound() float64 {
	b := math.Inf(-1)
	for i := s.headIdx; i < len(s.head); i++ {
		if sc := s.head[i].Score; sc > b {
			b = sc
		}
	}
	// In-flight and future invocations: upstream score plus the best the
	// service can possibly return (its curve at position zero). slot.src
	// is immutable after launch, so reading it here is race-free.
	cap := s.w * scoringCap(s.n.Stats.Scoring, 0)
	for _, slot := range s.window {
		if v := slot.src.Score + cap; v > b {
			b = v
		}
	}
	if ub := s.up.Bound(); !math.IsInf(ub, -1) {
		if v := ub + cap; v > b {
			b = v
		}
	}
	return b
}

// joinBranch is one input of a streaming parallel join. A single
// outstanding prefetch goroutine owns the reader and assembles the next
// chunk; results are handed over through a capacity-1 channel, so both
// branches fetch concurrently (the parallel invocation the topology
// promises) while the explorer is driven from one goroutine.
type joinBranch struct {
	reader comboStream
	size   int
	ch     chan branchPull

	chunks   [][]*types.Combination
	chunkMax []float64
	bestSeen float64
	// bound is the reader's bound snapshot as of the last completed pull
	// (the reader itself is owned by the prefetch goroutine while a pull
	// is outstanding).
	bound  float64
	noMore bool
}

type branchPull struct {
	combos []*types.Combination
	bound  float64
	short  bool // the reader ran dry during this pull
	err    error
}

func (se *streamExec) startPull(ctx context.Context, b *joinBranch) {
	se.wg.Add(1)
	go func() {
		defer se.wg.Done()
		var res branchPull
		for len(res.combos) < b.size {
			c, err := b.reader.Next(ctx)
			if err != nil {
				res.err = err
				break
			}
			if c == nil {
				res.short = true
				break
			}
			res.combos = append(res.combos, c)
		}
		res.bound = b.reader.Bound()
		b.ch <- res
	}()
}

// joinStream drives the event-based join explorer against live chunk
// arrivals. Chunk sizes, tile contents and tile order replicate the
// materializing evalJoin exactly (the explorer's decisions depend only on
// fetch counts, exhaustion and processed tiles), so a full drain emits the
// same combinations in the same order.
type joinStream struct {
	se          *streamExec
	ex          *executor
	n           *plan.Node
	explorer    *join.Explorer
	left, right *joinBranch
	preds       map[string]pairPred

	pending    []*types.Combination
	pendingIdx int
	seen       map[join.Tile]bool
	started    bool
	done       bool
}

func (se *streamExec) makeJoinStream(id string, n *plan.Node) (comboStream, error) {
	preds := se.ex.ann.Plan.Predecessors(id)
	if len(preds) != 2 {
		return nil, fmt.Errorf("engine: join %s has %d predecessors", id, len(preds))
	}
	l, err := se.stream(preds[0])
	if err != nil {
		return nil, err
	}
	r, err := se.stream(preds[1])
	if err != nil {
		return nil, err
	}
	lb := &joinBranch{
		reader: l, size: se.ex.chunkSizeOf(preds[0]),
		ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: l.Bound(),
	}
	rb := &joinBranch{
		reader: r, size: se.ex.chunkSizeOf(preds[1]),
		ch: make(chan branchPull, 1), bestSeen: math.Inf(-1), bound: r.Bound(),
	}
	// No static fetch limits: branch lengths are unknown up front, so
	// exhaustion is reported live (the explorer rolls the probing fetch
	// back, leaving its state exactly as with a known limit).
	explorer, err := join.NewExplorer(n.Strategy, 0, 0)
	if err != nil {
		return nil, err
	}
	explorer.SetRanker(func(t join.Tile) float64 {
		if t.X >= len(lb.chunks) || t.Y >= len(rb.chunks) {
			return 0
		}
		return chunkTop(lb.chunks[t.X]) * chunkTop(rb.chunks[t.Y])
	})
	return &joinStream{
		se: se, ex: se.ex, n: n, explorer: explorer,
		left: lb, right: rb, preds: groupJoinPreds(n),
		seen: map[join.Tile]bool{},
	}, nil
}

func (s *joinStream) Next(ctx context.Context) (*types.Combination, error) {
	for {
		if s.pendingIdx < len(s.pending) {
			c := s.pending[s.pendingIdx]
			s.pendingIdx++
			return c, nil
		}
		if s.done {
			return nil, nil
		}
		if !s.started {
			s.started = true
			s.se.startPull(ctx, s.left)
			s.se.startPull(ctx, s.right)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev, ok := s.explorer.Next()
		if !ok {
			s.done = true
			continue
		}
		switch ev.Kind {
		case join.EventFetch:
			b := s.left
			if ev.Side == join.SideY {
				b = s.right
			}
			if err := s.resolveFetch(ctx, ev.Side, b); err != nil {
				return nil, err
			}
		case join.EventTile:
			if err := s.fillTile(ev.Tile); err != nil {
				return nil, err
			}
		}
	}
}

// resolveFetch consumes the outstanding prefetch for the side the explorer
// asked about, reveals the chunk (or reports exhaustion) and keeps one
// pull in flight.
func (s *joinStream) resolveFetch(ctx context.Context, side join.Side, b *joinBranch) error {
	if b.noMore {
		s.explorer.ReportExhausted(side)
		return nil
	}
	res := <-b.ch
	if res.err != nil {
		return res.err
	}
	b.bound = res.bound
	if res.short {
		b.noMore = true
	}
	if len(res.combos) == 0 {
		b.bound = math.Inf(-1)
		s.explorer.ReportExhausted(side)
		return nil
	}
	b.chunks = append(b.chunks, res.combos)
	m := maxScore(res.combos)
	b.chunkMax = append(b.chunkMax, m)
	if m > b.bestSeen {
		b.bestSeen = m
	}
	if !b.noMore {
		s.se.startPull(ctx, b)
	}
	return nil
}

func (s *joinStream) fillTile(t join.Tile) error {
	s.seen[t] = true
	s.pending = s.pending[:0]
	s.pendingIdx = 0
	for _, cl := range s.left.chunks[t.X] {
		for _, cr := range s.right.chunks[t.Y] {
			ok, err := matchAcross(cl, cr, s.preds)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			merged, ok := mergeBranches(cl, cr)
			if !ok {
				continue
			}
			merged.Rank(s.ex.opts.Weights)
			s.pending = append(s.pending, merged)
		}
	}
	return nil
}

func (s *joinStream) Bound() float64 {
	b := math.Inf(-1)
	for i := s.pendingIdx; i < len(s.pending); i++ {
		if sc := s.pending[i].Score; sc > b {
			b = sc
		}
	}
	if s.done {
		// The explorer finished: only the pending remainder can emit.
		return b
	}
	lb, rb := s.left, s.right
	lBest := math.Max(lb.bestSeen, lb.bound)
	rBest := math.Max(rb.bestSeen, rb.bound)
	// Corner bounds: a future left chunk against the best right seen or
	// still to come, and symmetrically. Weights are non-negative, so a
	// merged score is at most the sum of the two sides (shared-alias
	// components are double-counted, which only loosens the bound).
	if !math.IsInf(lb.bound, -1) && !math.IsInf(rBest, -1) {
		if v := lb.bound + rBest; v > b {
			b = v
		}
	}
	if !math.IsInf(rb.bound, -1) && !math.IsInf(lBest, -1) {
		if v := rb.bound + lBest; v > b {
			b = v
		}
	}
	// Stored chunk pairs the explorer has not processed yet (deferred by
	// tile ordering, triangular admission, or a future flush).
	for x := range lb.chunks {
		for y := range rb.chunks {
			if s.seen[join.Tile{X: x, Y: y}] {
				continue
			}
			if v := lb.chunkMax[x] + rb.chunkMax[y]; v > b {
				b = v
			}
		}
	}
	return b
}

func maxScore(combos []*types.Combination) float64 {
	m := math.Inf(-1)
	for _, c := range combos {
		if c.Score > m {
			m = c.Score
		}
	}
	return m
}

// sharedStream buffers a fan-out node's output so several consumers can
// replay it independently; combination (and component tuple) identity is
// preserved, which the join's shared-ancestor glue relies on.
type sharedStream struct {
	mu   sync.Mutex
	src  comboStream
	buf  []*types.Combination
	done bool
	err  error
}

// teeReader is one consumer's cursor over a sharedStream.
type teeReader struct {
	sh  *sharedStream
	pos int
}

func (t *teeReader) Next(ctx context.Context) (*types.Combination, error) {
	s := t.sh
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.pos < len(s.buf) {
		c := s.buf[t.pos]
		t.pos++
		return c, nil
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, nil
	}
	c, err := s.src.Next(ctx)
	if err != nil {
		s.err = err
		return nil, err
	}
	if c == nil {
		s.done = true
		return nil, nil
	}
	s.buf = append(s.buf, c)
	t.pos++
	return c, nil
}

func (t *teeReader) Bound() float64 {
	s := t.sh
	s.mu.Lock()
	defer s.mu.Unlock()
	b := math.Inf(-1)
	for i := t.pos; i < len(s.buf); i++ {
		if sc := s.buf[i].Score; sc > b {
			b = sc
		}
	}
	if !s.done && s.err == nil {
		if v := s.src.Bound(); v > b {
			b = v
		}
	}
	return b
}
