package engine

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"seco/internal/fidelity"
	"seco/internal/obs"
	"seco/internal/plan"
)

// TestFidelityReportShape runs the fixture with fidelity scoring under
// both policies and checks the report's internal consistency: every
// node's recorded output actuals equal the run's Produced counts, the
// q-errors are ≥ 1, and the worst node is the report maximum.
func TestFidelityReportShape(t *testing.T) {
	for _, materialize := range []bool{false, true} {
		e, p, q, world := fixture(t)
		a, err := plan.Annotate(p, plan.Fig10Fetches())
		if err != nil {
			t.Fatal(err)
		}
		run, err := e.Execute(context.Background(), a, Options{
			Inputs:      world.Inputs,
			Weights:     q.Weights,
			TargetK:     10,
			Materialize: materialize,
			Fidelity:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := run.Fidelity
		if rep == nil || len(rep.Nodes) == 0 {
			t.Fatalf("materialize=%v: no fidelity report", materialize)
		}
		if rep.Threshold != fidelity.DefaultThreshold {
			t.Errorf("materialize=%v: threshold %v, want default", materialize, rep.Threshold)
		}
		maxQ := 0.0
		for _, nf := range rep.Nodes {
			if nf.Q < 1 {
				t.Errorf("materialize=%v node %s: q %v < 1", materialize, nf.Node, nf.Q)
			}
			if nf.Q > maxQ {
				maxQ = nf.Q
			}
			if got, ok := run.Produced[nf.Node]; ok && float64(got) != nf.ActOut {
				t.Errorf("materialize=%v node %s: report act-out %v, Produced %d",
					materialize, nf.Node, nf.ActOut, got)
			}
		}
		if maxQ != rep.MaxQ {
			t.Errorf("materialize=%v: MaxQ %v, nodes say %v", materialize, rep.MaxQ, maxQ)
		}
	}
}

// TestFidelityReportsIsolatedUnderConcurrency is the -race hammer for
// the per-run accounting: many fidelity-scored executions share one
// engine concurrently, and every run's report must describe that run
// alone — its act-out column must equal its own Produced map, never a
// neighbour's. The per-run Recorder (rather than engine-global
// counters) is what this pins down.
func TestFidelityReportsIsolatedUnderConcurrency(t *testing.T) {
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const iterations = 3
	runs := make([]*Run, workers*iterations)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				idx := w*iterations + i
				run, err := e.Execute(context.Background(), a, Options{
					Inputs:      world.Inputs,
					Weights:     q.Weights,
					TargetK:     5 + idx%6, // vary K so runs differ in reach
					Parallelism: 4,
					Materialize: idx%2 == 0,
					Fidelity:    true,
				})
				if err != nil {
					t.Errorf("worker %d run %d: %v", w, i, err)
					return
				}
				runs[idx] = run
			}
		}(w)
	}
	wg.Wait()
	for idx, run := range runs {
		if run == nil {
			continue // Execute already failed the test
		}
		if run.Fidelity == nil {
			t.Fatalf("run %d: no fidelity report", idx)
		}
		for _, nf := range run.Fidelity.Nodes {
			if got, ok := run.Produced[nf.Node]; ok && float64(got) != nf.ActOut {
				t.Errorf("run %d node %s: report act-out %v leaked across runs (own Produced %d)",
					idx, nf.Node, nf.ActOut, got)
			}
		}
	}
}

// TestFidelityOverheadBounded bounds the cost of the accounting when
// enabled, mirroring TestTracingOverheadBounded: scoring fidelity on
// every run must stay within 1.5x of the plain execution (the issue's
// budget is 5% on benchmark hardware; the in-repo bound is generous
// because the test takes few samples on shared runners).
func TestFidelityOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	measure := func(scored bool) time.Duration {
		const rounds = 9
		times := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 10, Parallelism: 4}
			opts.Fidelity = scored
			begin := time.Now()
			if _, err := e.Execute(context.Background(), a, opts); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(begin))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}
	measure(false) // warm-up
	plain := measure(false)
	scored := measure(true)
	if plain <= 0 {
		t.Skip("timer resolution too coarse for this fixture")
	}
	if float64(scored) > float64(plain)*1.5+float64(2*time.Millisecond) {
		t.Errorf("fidelity overhead out of bounds: plain median %v, scored median %v", plain, scored)
	}
}

// TestFidelityMetricsPublished checks the instrument surface: q-error
// histograms per operator kind, worst-q gauges, and the drift counter
// all appear in the registry after a scored run — and a second run
// accumulates rather than resets them.
func TestFidelityMetricsPublished(t *testing.T) {
	_, p, q, world := fixture(t)
	reg := obs.NewRegistry()
	e := NewWithConfig(world.Services(), Config{Metrics: reg})
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 10, Fidelity: true}
	run, err := e.Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	scanNodes := int64(0)
	for _, nf := range run.Fidelity.Nodes {
		h := reg.Histogram("seco.fidelity.qerror."+nf.Kind, fidelity.QBuckets)
		if h.Count() == 0 {
			t.Fatalf("q-error histogram for kind %s recorded no samples", nf.Kind)
		}
		if nf.Kind == "scan" {
			scanNodes++
		}
	}
	if scanNodes == 0 {
		t.Fatal("fixture plan has no scan node; fixture changed?")
	}
	if g := reg.Gauge("seco.fidelity.worst_q_milli.scan").Value(); g < 1000 {
		t.Errorf("scan worst-q gauge %d, want >= 1000 (q is never below 1)", g)
	}
	before := reg.Histogram("seco.fidelity.qerror.scan", fidelity.QBuckets).Count()
	if _, err := e.Execute(context.Background(), a, opts); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("seco.fidelity.qerror.scan", fidelity.QBuckets).Count(); got != before+scanNodes {
		t.Errorf("scan q-error histogram count %d after another run, want %d", got, before+scanNodes)
	}
}
