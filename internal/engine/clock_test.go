package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/synth"
)

func TestVirtualClockAdvancesWithoutBlocking(t *testing.T) {
	c := NewVirtualClock()
	epoch := c.Now()
	wall := time.Now()
	c.Sleep(5 * time.Hour)
	if time.Since(wall) > time.Second {
		t.Fatal("VirtualClock.Sleep blocked in real time")
	}
	if got := c.Now().Sub(epoch); got != 5*time.Hour {
		t.Errorf("advanced by %v, want 5h", got)
	}
	c.Sleep(0)
	c.Sleep(-time.Minute)
	if got := c.Now().Sub(epoch); got != 5*time.Hour {
		t.Errorf("zero/negative sleeps moved the clock to %v past epoch", got)
	}
}

func TestVirtualClockConcurrentSleepsSum(t *testing.T) {
	c := NewVirtualClock()
	epoch := c.Now()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := c.Now().Sub(epoch); got != 50*time.Millisecond {
		t.Errorf("concurrent sleeps advanced %v, want 50ms", got)
	}
}

// A simulated run must report simulated elapsed time: the serial sum of
// every charged call latency, regardless of how fast the simulation
// itself ran. This is the regression test for Run.Elapsed previously
// reading the wall clock, which made simulated timings meaningless.
func TestSimulatedElapsedIsChargedLatencySum(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e := New(world.Services(), nil) // nil delay hook: virtual clock
	if _, ok := e.Clock().(*VirtualClock); !ok {
		t.Fatalf("New with nil delay installed %T, want *VirtualClock", e.Clock())
	}
	a, err := plan.Annotate(p, map[string]int{"M": 1, "T": 1, "R": 1})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Now()
	run, err := e.Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	if realTime := time.Since(wall); run.Elapsed < realTime {
		t.Errorf("simulated elapsed %v below real %v: latency not charged to the virtual clock", run.Elapsed, realTime)
	}
	var want time.Duration
	for alias, calls := range run.Calls {
		lane, ok := e.Invoker().Lane(alias)
		if !ok {
			t.Fatalf("no lane for %s", alias)
		}
		want += time.Duration(calls) * lane.Stats().Latency
	}
	if want == 0 {
		t.Fatal("no latency charged; world publishes zero latencies?")
	}
	if run.Elapsed != want {
		t.Errorf("Elapsed = %v, want the serial latency sum %v (calls %v)", run.Elapsed, want, run.Calls)
	}
}
