package engine

import (
	"sync"
	"time"
)

// Clock is the engine's notion of time: Now anchors elapsed-time
// reporting and Sleep charges per-call latency. Exactly one clock drives
// an execution, so a simulated run reports simulated elapsed time instead
// of the (meaningless) wall-clock duration of the simulation itself.
//
// This file is the single sanctioned home of time.Now/time.Sleep in the
// engine; the secolint wallclock analyzer allowlists it and flags direct
// wall-clock calls anywhere else.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep advances the clock by d, blocking only if the clock is real.
	Sleep(d time.Duration)
}

// WallClock is real time: time.Now and time.Sleep. Use it for live
// pacing, where service latencies are actually waited out.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is discrete simulated time: Sleep returns immediately and
// advances the clock by the full duration, so after a run Now has moved by
// the serial sum of all charged call latencies. It is safe for concurrent
// use (pipeline goroutines charge latency concurrently).
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at the zero time.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it advances the clock without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
