package engine

import (
	"context"
	"testing"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/synth"
)

// The branches of a parallel join must overlap in time: with both search
// services sleeping their published latency per fetch, the (M‖T) plan's
// elapsed time approaches max(latencies), not their sum. We give both
// sides one fetch (~120 ms and ~80 ms): a sequential engine would need
// ≥200 ms before the pipe stage; the parallel one stays well under.
func TestParallelBranchesOverlapInTime(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e := New(world.Services(), time.Sleep)
	a, err := plan.Annotate(p, map[string]int{"M": 1, "T": 1, "R": 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights, Parallelism: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Branch latencies: M 120 ms, T 80 ms (sum 200 ms). The pipe stage
	// adds R calls (100 ms each, parallelized). Allow generous slack for
	// the scheduler, but the M/T overlap must be visible: the total must
	// stay below the strictly sequential bound of 200 ms + R-time.
	rCalls := run.Calls["R"]
	sequentialFloor := 200*time.Millisecond + time.Duration(rCalls)*100*time.Millisecond
	if run.Elapsed >= sequentialFloor {
		t.Errorf("elapsed %v suggests sequential branch execution (floor %v, R calls %d)",
			run.Elapsed, sequentialFloor, rCalls)
	}
	if run.Elapsed < 100*time.Millisecond {
		t.Errorf("elapsed %v below the slowest branch latency; latency hook inactive?", run.Elapsed)
	}
}

// Pipe-join invocations run concurrently under the worker pool: 10 piped
// calls at 50 ms each with parallelism 8 must finish far sooner than
// 500 ms.
func TestPipeInvocationsRunConcurrently(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e := New(world.Services(), time.Sleep)
	a, err := plan.Annotate(p, map[string]int{"F": 1, "H": 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	run, err := e.Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights, Parallelism: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Weather alone is invoked 20× at 60 ms; strictly sequential piping
	// would exceed 1.2 s before flights and hotels. With 16 workers the
	// whole run should finish far below that.
	if elapsed >= 1200*time.Millisecond {
		t.Errorf("elapsed %v suggests sequential pipe invocations (calls: %v)", elapsed, run.Calls)
	}
}
