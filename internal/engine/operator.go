package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"seco/internal/obs"
	"seco/internal/types"
)

// Operator is the pull-based face of one plan node in the compiled
// operator graph. Operators exchange compact combinations (combs, see
// compact.go); the map-backed public Combination exists only past the
// driver's result boundary. The lifecycle is Open → Next* → Close:
//
//   - Open prepares the operator (and its inputs) for pulling. It never
//     issues service calls — invocation stays lazy, so an operator whose
//     output is never demanded costs nothing.
//   - Next returns the next ranked combination, or (nil, nil) once the
//     operator is exhausted; calling Next after exhaustion keeps
//     returning (nil, nil). After Close, Next returns ErrClosed.
//   - Bound returns an upper bound on the score of any combination a
//     future Next can return (-Inf when none remain), derived from the
//     services' published Scoring curves and the scores already observed.
//     The pull driver uses the root bound as its top-k stopping rule.
//   - Close releases the operator's resources — including its comb arena
//     and pooled buffers, which is why teardown must run only after the
//     driver has materialized its results. Close is idempotent and must
//     leave any goroutines the operator spawned quiescent.
//
// Operators are not safe for concurrent use; the join-branch prefetcher
// and the pipe window own their inputs exclusively, and fan-out nodes are
// compiled to a mutex-guarded sharedOp with per-consumer tee cursors.
type Operator interface {
	Open(ctx context.Context) error
	Next(ctx context.Context) (*comb, error)
	Bound() float64
	Close() error
}

// ErrClosed is returned by Next on an operator that has been closed
// before exhaustion.
var ErrClosed = errors.New("engine: operator closed")

// countedOp decorates every compiled operator: it enforces the lifecycle
// state machine (idempotent Open/Close, ErrClosed after Close), counts
// distinct emissions for Run.Produced, and — when the run is traced —
// records the operator's Open→Close span with aggregate pull statistics
// into the operator's trace lane.
type countedOp struct {
	inner  Operator
	n      *atomic.Int64
	sc     *obs.Scope // nil when the run is untraced
	endSp  func(...obs.Attr)
	nexts  atomic.Int64
	bounds atomic.Int64
	opened bool
	closed bool
}

func (c *countedOp) Open(ctx context.Context) error {
	if c.closed {
		return ErrClosed
	}
	if c.opened {
		return nil
	}
	if c.sc != nil {
		c.endSp = c.sc.StartSpan("operator", obs.KindOperator)
	}
	if err := c.inner.Open(ctx); err != nil {
		return err
	}
	c.opened = true
	return nil
}

func (c *countedOp) Next(ctx context.Context) (*comb, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.sc != nil {
		c.nexts.Add(1)
	}
	combo, err := c.inner.Next(ctx)
	if combo != nil {
		c.n.Add(1)
	}
	return combo, err
}

func (c *countedOp) Bound() float64 {
	if c.closed {
		return math.Inf(-1)
	}
	if c.sc != nil {
		c.bounds.Add(1)
	}
	return c.inner.Bound()
}

func (c *countedOp) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.endSp != nil {
		c.endSp(
			obs.KI("nexts", c.nexts.Load()),
			obs.KI("emitted", c.n.Load()),
			obs.KI("bounds", c.bounds.Load()),
		)
		c.endSp = nil
	}
	return c.inner.Close()
}

// inputOp emits the single empty combination every plan starts from.
type inputOp struct {
	width int
	done  bool
}

func (s *inputOp) Open(context.Context) error { return nil }

func (s *inputOp) Next(context.Context) (*comb, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return &comb{comps: make([]*types.Tuple, s.width)}, nil
}

func (s *inputOp) Bound() float64 {
	if s.done {
		return math.Inf(-1)
	}
	return 0
}

func (s *inputOp) Close() error {
	s.done = true
	return nil
}

// selectionOp filters its input; selections never change scores, so the
// input bound carries over.
type selectionOp struct {
	ex   *executor
	sels []compiledSel
	up   Operator
}

func (s *selectionOp) Open(ctx context.Context) error { return s.up.Open(ctx) }

func (s *selectionOp) Next(ctx context.Context) (*comb, error) {
	for {
		c, err := s.up.Next(ctx)
		if err != nil || c == nil {
			return nil, err
		}
		keep := true
		for i := range s.sels {
			ok, err := s.sels[i].eval(s.ex, c)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			return c, nil
		}
	}
}

func (s *selectionOp) Bound() float64 { return s.up.Bound() }

func (s *selectionOp) Close() error { return nil }

// sharedOp buffers a fan-out node's output so several consumers can
// replay it independently; comb (and component tuple) identity is
// preserved, which the join's shared-ancestor glue relies on.
type sharedOp struct {
	mu     sync.Mutex
	src    Operator
	opened bool
	buf    []*comb
	done   bool
	err    error
}

func (s *sharedOp) open(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opened {
		return nil
	}
	if err := s.src.Open(ctx); err != nil {
		return err
	}
	s.opened = true
	return nil
}

// teeOp is one consumer's cursor over a sharedOp.
type teeOp struct {
	sh  *sharedOp
	pos int
}

func (t *teeOp) Open(ctx context.Context) error { return t.sh.open(ctx) }

func (t *teeOp) Next(ctx context.Context) (*comb, error) {
	s := t.sh
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.pos < len(s.buf) {
		c := s.buf[t.pos]
		t.pos++
		return c, nil
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, nil
	}
	c, err := s.src.Next(ctx)
	if err != nil {
		s.err = err
		return nil, err
	}
	if c == nil {
		s.done = true
		return nil, nil
	}
	s.buf = append(s.buf, c)
	t.pos++
	return c, nil
}

func (t *teeOp) Bound() float64 {
	s := t.sh
	s.mu.Lock()
	defer s.mu.Unlock()
	b := math.Inf(-1)
	for i := t.pos; i < len(s.buf); i++ {
		if sc := s.buf[i].score; sc > b {
			b = sc
		}
	}
	if !s.done && s.err == nil {
		if v := s.src.Bound(); v > b {
			b = v
		}
	}
	return b
}

// Close detaches this consumer only; the backing operator is owned by the
// graph and closed during graph teardown.
func (t *teeOp) Close() error { return nil }
