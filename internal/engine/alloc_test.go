package engine

import (
	"context"
	"testing"

	"seco/internal/plan"
)

// TestPullDriverAllocsBounded is the allocation-regression guard of the
// compact runtime: a steady-state pull execution (pools warm, chunks
// memoized by the Share layer) must stay under a fixed allocs-per-run
// ceiling. The ceiling has headroom over the measured value, but sits far
// below what the map-backed runtime allocated, so reintroducing per-comb
// maps, per-pull boxing or per-chunk buffers trips it.
func TestPullDriverAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	_, p, q, world := fixture(t)
	e := NewWithConfig(world.Services(), Config{Share: true})
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 5}
	run := func() {
		r, err := e.Execute(context.Background(), a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Combinations) == 0 {
			t.Fatal("pull run returned nothing")
		}
	}
	// Warm the share memo and the buffer pools: the regression guard is
	// about the steady-state hot loop, not first-run cache misses.
	run()
	run()
	got := testing.AllocsPerRun(10, run)
	// Measured ≈870 allocs/run steady-state on the compact runtime; the
	// map-backed runtime sat near 3800. The ceiling leaves ~1.5x headroom
	// for toolchain drift while still catching any per-combination map or
	// per-pull boxing regression.
	const ceiling = 1300
	if got > ceiling {
		t.Errorf("steady-state pull run allocates %.0f objects, ceiling %d", got, ceiling)
	}
	t.Logf("steady-state pull run: %.0f allocs", got)
}
