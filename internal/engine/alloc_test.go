package engine

import (
	"context"
	"testing"

	"seco/internal/plan"
)

// TestPullDriverAllocsBounded is the allocation-regression guard of the
// compact runtime: a steady-state pull execution (pools warm, chunks
// memoized by the Share layer) must stay under a fixed allocs-per-run
// ceiling. The ceiling has headroom over the measured value, but sits far
// below what the map-backed runtime allocated, so reintroducing per-comb
// maps, per-pull boxing or per-chunk buffers trips it.
func TestPullDriverAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	_, p, q, world := fixture(t)
	e := NewWithConfig(world.Services(), Config{Share: true})
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(fid bool) func() {
		opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 5, Fidelity: fid}
		return func() {
			r, err := e.Execute(context.Background(), a, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Combinations) == 0 {
				t.Fatal("pull run returned nothing")
			}
		}
	}
	run := runWith(false)
	// Warm the share memo and the buffer pools: the regression guard is
	// about the steady-state hot loop, not first-run cache misses.
	run()
	run()
	got := testing.AllocsPerRun(10, run)
	// Measured ≈870 allocs/run steady-state on the compact runtime; the
	// map-backed runtime sat near 3800. The ceiling leaves ~1.5x headroom
	// for toolchain drift while still catching any per-combination map or
	// per-pull boxing regression. Fidelity accounting is off here, and the
	// nil-recorder fast path must keep it free: the disabled-run ceiling is
	// the same one that held before the accounting existed.
	const ceiling = 1300
	if got > ceiling {
		t.Errorf("steady-state pull run allocates %.0f objects, ceiling %d", got, ceiling)
	}
	t.Logf("steady-state pull run: %.0f allocs", got)

	// With fidelity scored, the extra cost is one recorder slab, the
	// actuals slice and the report — a fixed per-run sum, nothing
	// per-tuple. Bound the delta tightly so a counter allocation sneaking
	// into Next trips the guard.
	scored := runWith(true)
	scored()
	gotScored := testing.AllocsPerRun(10, scored)
	const fidelityBudget = 150
	if gotScored > got+fidelityBudget {
		t.Errorf("fidelity-scored pull run allocates %.0f objects, disabled %.0f + budget %d",
			gotScored, got, fidelityBudget)
	}
	t.Logf("fidelity-scored pull run: %.0f allocs (+%.0f)", gotScored, gotScored-got)
}
