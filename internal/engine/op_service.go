package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sync/atomic"

	"seco/internal/fidelity"
	"seco/internal/obs"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// This file implements the two service-node operators. serviceOp is the
// service scan of a non-piped node: the service is invoked lazily (never
// before the first upstream combination arrives, and never at all when
// the upstream is empty) and chunks are fetched only when the enumeration
// demands tuples beyond the fetched prefix. pipeOp is the pipe join of a
// piped node: a FIFO window of at most Parallelism in-flight invocations,
// one per upstream combination, emitting results in upstream (ranking)
// order. Both issue every service call through the run's Counter from the
// shared Invoker, so budget probing, latency charging and call counting
// happen at one choke point. Combinations are composed into per-operator
// arenas; the fetched-tuple prefix lives in a pooled buffer pre-sized
// from the node's fetch budget and chunk size, both returned on Close.

// serviceOp runs a non-piped service node. Enumeration order is
// upstream-outer, tuple-inner.
type serviceOp struct {
	ex      *executor
	n       *plan.Node
	counter *service.Counter
	fixed   service.Input
	preds   []svcPred
	slot    int
	budget  int
	w       float64
	up      Operator
	depth   *atomic.Int64
	sc      *obs.Scope        // the node's trace lane; nil when untraced
	cand    *fidelity.Counter // compose attempts; nil when fidelity is off

	arena     *combArena
	inv       service.Invocation
	tuples    []*types.Tuple
	fetches   int
	exhausted bool
	cur       *comb
	j         int
	done      bool
}

func (s *serviceOp) Open(ctx context.Context) error { return s.up.Open(ctx) }

// canFetch reports whether another chunk may still be requested. All three
// disqualifiers (budget spent, limit reached, service exhausted) are
// permanent, so once an upstream combination has finished its inner loop
// the tuple list is final — which the bound relies on.
func (s *serviceOp) canFetch() bool {
	if s.exhausted || s.fetches >= s.budget {
		return false
	}
	if s.n.Limit > 0 && len(s.tuples) >= s.n.Limit {
		return false
	}
	return true
}

func (s *serviceOp) fetch(ctx context.Context) error {
	// Attach this node's trace lane to the call context, so the Counter's
	// per-call spans and any middleware events attribute here.
	ctx = obs.WithScope(ctx, s.sc)
	if s.inv == nil {
		inv, err := s.counter.Invoke(ctx, s.fixed)
		if err != nil {
			return withAlias(s.n.Alias, err)
		}
		s.inv = inv
	}
	chunk, err := s.inv.Fetch(ctx)
	if errors.Is(err, service.ErrExhausted) {
		s.exhausted = true
		return nil
	}
	if err != nil {
		return withAlias(s.n.Alias, err)
	}
	s.fetches++
	s.depth.Add(1)
	if s.tuples == nil {
		// Pre-size the prefix buffer from the plan's fetch budget and the
		// service's published chunk size.
		s.tuples = getTupleSlice(prefixHint(s.n, s.budget))
	}
	s.tuples = append(s.tuples, chunk.Tuples...)
	if s.n.Limit > 0 && len(s.tuples) > s.n.Limit {
		s.tuples = s.tuples[:s.n.Limit]
	}
	return nil
}

// prefixHint estimates the fetched-tuple prefix a service scan reaches:
// fetch budget × chunk size, capped by the node limit.
func prefixHint(n *plan.Node, budget int) int {
	hint := 16
	if n.Stats.Chunked() && n.Stats.ChunkSize > 0 {
		hint = budget * n.Stats.ChunkSize
	} else if n.Stats.AvgCardinality > 0 {
		hint = int(n.Stats.AvgCardinality) + 1
	}
	if n.Limit > 0 && n.Limit < hint {
		hint = n.Limit
	}
	if hint < 1 {
		hint = 1
	}
	return hint
}

func (s *serviceOp) Next(ctx context.Context) (*comb, error) {
	if s.done {
		return nil, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cur == nil {
			c, err := s.up.Next(ctx)
			if err != nil {
				return nil, err
			}
			if c == nil {
				s.done = true
				return nil, nil
			}
			s.cur, s.j = c, 0
		}
		for s.j >= len(s.tuples) && s.canFetch() {
			if err := s.fetch(ctx); err != nil {
				return nil, err
			}
		}
		if s.j >= len(s.tuples) {
			s.cur = nil
			if len(s.tuples) == 0 {
				// The service yielded nothing: no upstream combination can
				// ever compose, so skip the remaining upstream pulls.
				s.done = true
				return nil, nil
			}
			continue
		}
		tu := s.tuples[s.j]
		s.j++
		s.cand.Add(1)
		merged, ok, err := compose(s.arena, s.ex.layout, s.cur, s.slot, tu, s.preds)
		if err != nil {
			return nil, err
		}
		if ok {
			return merged, nil
		}
	}
}

func (s *serviceOp) Bound() float64 {
	if s.done {
		return math.Inf(-1)
	}
	b := math.Inf(-1)
	if s.cur != nil {
		// Remaining inner loop of the current upstream combination: the
		// next tuple (fetched tuples are non-increasing) or, when the
		// prefix is spent but more is fetchable, the unseen-tuple cap.
		if s.j < len(s.tuples) {
			b = s.cur.score + s.w*s.tuples[s.j].Score
		} else if s.canFetch() {
			b = s.cur.score + s.w*s.unseenCap()
		}
	}
	if ub := s.up.Bound(); !math.IsInf(ub, -1) {
		if v := ub + s.w*s.bestTupleCap(); v > b {
			b = v
		}
	}
	return b
}

func (s *serviceOp) Close() error {
	s.done = true
	s.inv = nil
	s.cur = nil
	if s.tuples != nil {
		putTupleSlice(s.tuples)
		s.tuples = nil
	}
	s.arena.release()
	return nil
}

// unseenCap bounds the score of the next not-yet-fetched tuple: the
// published curve at the next rank position, tightened by the last score
// actually seen (tuples arrive in non-increasing order).
func (s *serviceOp) unseenCap() float64 {
	cap := scoringCap(s.n.Stats.Scoring, len(s.tuples))
	if len(s.tuples) > 0 {
		if last := s.tuples[len(s.tuples)-1].Score; last < cap {
			cap = last
		}
	}
	return cap
}

// bestTupleCap bounds the best tuple this service contributes to any
// future upstream combination.
func (s *serviceOp) bestTupleCap() float64 {
	if len(s.tuples) > 0 {
		return s.tuples[0].Score
	}
	if !s.canFetch() {
		return 0
	}
	return scoringCap(s.n.Stats.Scoring, 0)
}

// scoringCap evaluates the published curve at a rank position. A
// zero-value Scoring (constant zero) means the service never published a
// curve; scores live in [0,1], so assume the worst.
func scoringCap(sc service.Scoring, pos int) float64 {
	if sc.Kind == service.ScoringConstant && sc.High == 0 {
		return 1
	}
	return sc.Score(pos)
}

// pipeOp runs a piped service node: instead of a barrier over all
// upstream rows, it keeps a FIFO window of at most Parallelism in-flight
// invocations as a bounded prefetch, emitting results in upstream
// (ranking) order. Each window slot composes into its own arena (the slot
// goroutine is the arena's single owner until the slot's done channel
// closes); the operator collects the arenas and releases them on Close.
type pipeOp struct {
	g       *graph
	ex      *executor
	n       *plan.Node
	counter *service.Counter
	fixed   service.Input
	preds   []svcPred
	slot    int
	budget  int
	w       float64
	par     int
	up      Operator
	depth   *atomic.Int64
	sc      *obs.Scope        // the node's trace lane; nil when untraced
	cand    *fidelity.Counter // compose attempts; nil when fidelity is off

	upDone  bool
	window  []*pipeSlot
	arenas  []*combArena
	head    []*comb
	headIdx int
	done    bool
}

type pipeSlot struct {
	src   *comb
	arena *combArena
	out   []*comb
	err   error
	done  chan struct{}
}

func (s *pipeOp) Open(ctx context.Context) error { return s.up.Open(ctx) }

// fill tops the window up to the parallelism bound, launching one
// invocation goroutine per upstream combination.
func (s *pipeOp) fill(ctx context.Context) error {
	for !s.upDone && len(s.window) < s.par {
		c, err := s.up.Next(ctx)
		if err != nil {
			return err
		}
		if c == nil {
			s.upDone = true
			return nil
		}
		slot := &pipeSlot{src: c, arena: newCombArena(s.ex.layout.width()), done: make(chan struct{})}
		s.window = append(s.window, slot)
		s.arenas = append(s.arenas, slot.arena)
		s.g.wg.Add(1)
		// The slot goroutine carries the node's trace lane in its context
		// and, when the run is observed, a seco.operator pprof label so
		// profiles attribute the parallel invocations to this node.
		cctx := obs.WithScope(ctx, s.sc)
		go func() {
			defer s.g.wg.Done()
			defer close(slot.done)
			work := func(ctx context.Context) {
				var fetched int
				slot.out, fetched, slot.err = s.pipeOne(ctx, slot)
				s.depth.Add(int64(fetched))
			}
			if s.sc != nil || s.ex.engine.metrics != nil {
				pprof.Do(cctx, pprof.Labels("seco.operator", s.n.ID), work)
			} else {
				work(cctx)
			}
		}()
	}
	return nil
}

func (s *pipeOp) Next(ctx context.Context) (*comb, error) {
	for {
		if s.headIdx < len(s.head) {
			c := s.head[s.headIdx]
			s.headIdx++
			return c, nil
		}
		if s.done {
			return nil, nil
		}
		if err := s.fill(ctx); err != nil {
			return nil, err
		}
		if len(s.window) == 0 {
			s.done = true
			return nil, nil
		}
		slot := s.window[0]
		s.window = s.window[1:]
		<-slot.done
		if slot.err != nil {
			return nil, withAlias(s.n.Alias, slot.err)
		}
		if s.head != nil {
			// The previous head has been fully emitted; its combs live on
			// downstream but the buffer itself is recyclable.
			putCombSlice(s.head)
		}
		s.head, s.headIdx = slot.out, 0
		slot.out = nil
		// Refill behind the consumed slot so the window stays busy while
		// the head results are being emitted.
		if err := s.fill(ctx); err != nil {
			return nil, err
		}
	}
}

func (s *pipeOp) Bound() float64 {
	b := math.Inf(-1)
	for i := s.headIdx; i < len(s.head); i++ {
		if sc := s.head[i].score; sc > b {
			b = sc
		}
	}
	// In-flight and future invocations: upstream score plus the best the
	// service can possibly return (its curve at position zero). slot.src
	// is immutable after launch, so reading it here is race-free.
	cap := s.w * scoringCap(s.n.Stats.Scoring, 0)
	for _, slot := range s.window {
		if v := slot.src.score + cap; v > b {
			b = v
		}
	}
	if ub := s.up.Bound(); !math.IsInf(ub, -1) {
		if v := ub + cap; v > b {
			b = v
		}
	}
	return b
}

// Close waits out the in-flight window invocations (each is bounded work
// and observes the driver's cancellation), so the operator's goroutines
// are quiescent before its inputs are closed and before the slot arenas
// are released.
func (s *pipeOp) Close() error {
	s.done = true
	for _, slot := range s.window {
		<-slot.done
		if slot.out != nil {
			putCombSlice(slot.out)
			slot.out = nil
		}
	}
	s.window = nil
	if s.head != nil {
		putCombSlice(s.head)
		s.head = nil
	}
	for _, a := range s.arenas {
		a.release()
	}
	s.arenas = nil
	return nil
}

// pipeOne performs one piped invocation for an upstream combination,
// also reporting how many request-responses it issued. It runs on the
// slot's goroutine and composes into the slot's own arena.
func (s *pipeOp) pipeOne(ctx context.Context, slot *pipeSlot) ([]*comb, int, error) {
	inBinding := s.fixed.Clone()
	if inBinding == nil {
		inBinding = service.Input{}
	}
	for _, b := range s.n.Bindings {
		if b.Source.Kind != query.BindJoin {
			continue
		}
		v := combGet(s.ex.layout, slot.src, b.Source.From.Alias, b.Source.From.Path)
		if v.IsNull() {
			return nil, 0, fmt.Errorf("engine: pipe into %s: upstream %s has no value",
				s.n.Alias, b.Source.From)
		}
		inBinding[b.Path] = v
	}
	scratch := getTupleSlice(prefixHint(s.n, s.budget))
	tuples, fetched, err := fetchTuples(ctx, s.counter, inBinding, s.budget, s.n.Limit, scratch)
	if err != nil {
		putTupleSlice(scratch)
		return nil, fetched, err
	}
	// One compose attempt per fetched tuple, batched per invocation.
	s.cand.Add(int64(len(tuples)))
	var out []*comb
	for _, tu := range tuples {
		merged, ok, err := compose(slot.arena, s.ex.layout, slot.src, s.slot, tu, s.preds)
		if err != nil {
			putTupleSlice(tuples)
			putCombSlice(out) // lazily acquired; a cap-0 nil slice is a no-op
			return nil, fetched, err
		}
		if ok {
			if out == nil {
				out = getCombSlice(len(tuples))
			}
			out = append(out, merged)
		}
	}
	putTupleSlice(tuples)
	return out, fetched, nil
}

// combGet resolves "alias.path" against a comb through the layout — the
// compact counterpart of Combination.Get.
func combGet(l *aliasLayout, c *comb, alias, path string) types.Value {
	slot, ok := l.slots[alias]
	if !ok {
		return types.Null
	}
	t := c.comps[slot]
	if t == nil {
		return types.Null
	}
	return t.Get(path)
}

// fixedInputs assembles the constant and INPUT-variable bindings of a
// service node.
func (ex *executor) fixedInputs(n *plan.Node) (service.Input, error) {
	fixed := service.Input{}
	for _, b := range n.Bindings {
		switch b.Source.Kind {
		case query.BindConst:
			fixed[b.Path] = b.Source.Const
		case query.BindInput:
			v, ok := ex.opts.Inputs[b.Source.Input]
			if !ok {
				return nil, fmt.Errorf("engine: unbound input variable %s (service %s)",
					b.Source.Input, n.Alias)
			}
			fixed[b.Path] = v
		}
	}
	return fixed, nil
}

// fetchTuples invokes the service once and drains up to maxFetches chunks
// (all chunks when the service is unchunked), keeping at most limit tuples
// when limit > 0. It appends into dst (reusing its backing array) and also
// reports the number of chunks fetched — the fetch depth reached into the
// service's ranked list.
func fetchTuples(ctx context.Context, svc service.Service, in service.Input, maxFetches, limit int, dst []*types.Tuple) ([]*types.Tuple, int, error) {
	inv, err := svc.Invoke(ctx, in)
	if err != nil {
		return nil, 0, err
	}
	tuples := dst[:0]
	fetched := 0
	chunked := svc.Stats().Chunked()
	for f := 0; ; f++ {
		if chunked && f >= maxFetches {
			break
		}
		chunk, err := inv.Fetch(ctx)
		if errors.Is(err, service.ErrExhausted) {
			break
		}
		if err != nil {
			return nil, fetched, err
		}
		fetched++
		tuples = append(tuples, chunk.Tuples...)
		if limit > 0 && len(tuples) >= limit {
			tuples = tuples[:limit]
			break
		}
		if !chunked {
			break
		}
	}
	return tuples, fetched, nil
}
