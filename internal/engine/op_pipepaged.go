package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"seco/internal/fidelity"
	"seco/internal/obs"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// pagedPipeOp is the demand-paged variant of the pipe join, compiled for
// a piped service node whose sole consumer is a multi-way ranked join.
// The regular pipeOp pre-pays its whole fetch budget per invocation — the
// right call under a binary join tree, where the window goroutines hide
// service latency behind the barrier of composing the invocation's full
// result. The n-ary operator instead pulls its branches chunk by chunk,
// steered by the fused corner bound, and stops pulling a branch the
// moment the bound certifies — so its branch readers must not fetch
// deeper than the enumeration actually demanded. This operator mirrors
// serviceOp's paging discipline (fetch a chunk only when the composed
// prefix is spent) while building the invocation input from the upstream
// combination like pipeOne does; the fetch budget stays a per-invocation
// ceiling, never a prepayment.
type pagedPipeOp struct {
	ex      *executor
	n       *plan.Node
	counter *service.Counter
	fixed   service.Input
	preds   []svcPred
	slot    int
	budget  int
	w       float64
	up      Operator
	depth   *atomic.Int64
	sc      *obs.Scope        // the node's trace lane; nil when untraced
	cand    *fidelity.Counter // compose attempts; nil when fidelity is off

	arena *combArena

	// Per-upstream-combination invocation state, reset whenever cur
	// advances: unlike serviceOp, every upstream combination pipes its own
	// input binding, so the fetched prefix cannot be shared across them.
	cur       *comb
	inv       service.Invocation
	tuples    []*types.Tuple
	fetches   int
	exhausted bool
	j         int
	done      bool
}

func (s *pagedPipeOp) Open(ctx context.Context) error { return s.up.Open(ctx) }

func (s *pagedPipeOp) canFetch() bool {
	if s.exhausted || s.fetches >= s.budget {
		return false
	}
	if s.n.Limit > 0 && len(s.tuples) >= s.n.Limit {
		return false
	}
	return true
}

// invoke starts the invocation for the current upstream combination,
// assembling its pipe bindings on top of the fixed ones.
func (s *pagedPipeOp) invoke(ctx context.Context) error {
	in := s.fixed.Clone()
	if in == nil {
		in = service.Input{}
	}
	for _, b := range s.n.Bindings {
		if b.Source.Kind != query.BindJoin {
			continue
		}
		v := combGet(s.ex.layout, s.cur, b.Source.From.Alias, b.Source.From.Path)
		if v.IsNull() {
			return fmt.Errorf("engine: pipe into %s: upstream %s has no value",
				s.n.Alias, b.Source.From)
		}
		in[b.Path] = v
	}
	inv, err := s.counter.Invoke(ctx, in)
	if err != nil {
		return withAlias(s.n.Alias, err)
	}
	s.inv = inv
	return nil
}

func (s *pagedPipeOp) fetch(ctx context.Context) error {
	ctx = obs.WithScope(ctx, s.sc)
	if s.inv == nil {
		if err := s.invoke(ctx); err != nil {
			return err
		}
	}
	chunk, err := s.inv.Fetch(ctx)
	if errors.Is(err, service.ErrExhausted) {
		s.exhausted = true
		return nil
	}
	if err != nil {
		return withAlias(s.n.Alias, err)
	}
	s.fetches++
	s.depth.Add(1)
	if s.tuples == nil {
		s.tuples = getTupleSlice(prefixHint(s.n, s.budget))
	}
	s.tuples = append(s.tuples, chunk.Tuples...)
	if s.n.Limit > 0 && len(s.tuples) > s.n.Limit {
		s.tuples = s.tuples[:s.n.Limit]
	}
	if !s.n.Stats.Chunked() {
		// Unchunked services answer in full on the first fetch.
		s.exhausted = true
	}
	return nil
}

// reset drops the invocation state of the spent upstream combination.
func (s *pagedPipeOp) reset() {
	s.cur = nil
	s.inv = nil
	if s.tuples != nil {
		putTupleSlice(s.tuples)
		s.tuples = nil
	}
	s.fetches = 0
	s.exhausted = false
	s.j = 0
}

func (s *pagedPipeOp) Next(ctx context.Context) (*comb, error) {
	if s.done {
		return nil, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cur == nil {
			c, err := s.up.Next(ctx)
			if err != nil {
				return nil, err
			}
			if c == nil {
				s.done = true
				return nil, nil
			}
			s.cur, s.j = c, 0
		}
		for s.j >= len(s.tuples) && s.canFetch() {
			if err := s.fetch(ctx); err != nil {
				return nil, err
			}
		}
		if s.j >= len(s.tuples) {
			// This upstream combination's invocation is spent; unlike the
			// non-piped scan, the next combination pipes a different input
			// and may still yield.
			s.reset()
			continue
		}
		tu := s.tuples[s.j]
		s.j++
		s.cand.Add(1)
		merged, ok, err := compose(s.arena, s.ex.layout, s.cur, s.slot, tu, s.preds)
		if err != nil {
			return nil, err
		}
		if ok {
			return merged, nil
		}
	}
}

func (s *pagedPipeOp) Bound() float64 {
	if s.done {
		return math.Inf(-1)
	}
	b := math.Inf(-1)
	if s.cur != nil {
		if s.j < len(s.tuples) {
			b = s.cur.score + s.w*s.tuples[s.j].Score
		} else if s.canFetch() {
			b = s.cur.score + s.w*s.pagedUnseenCap()
		}
	}
	if ub := s.up.Bound(); !math.IsInf(ub, -1) {
		// Future upstream combinations start a fresh invocation, so the
		// best they can compose with is the curve's top position.
		if v := ub + s.w*scoringCap(s.n.Stats.Scoring, 0); v > b {
			b = v
		}
	}
	return b
}

// pagedUnseenCap bounds the next not-yet-fetched tuple of the current
// invocation: the published curve at the next rank, tightened by the last
// score actually seen.
func (s *pagedPipeOp) pagedUnseenCap() float64 {
	cap := scoringCap(s.n.Stats.Scoring, len(s.tuples))
	if len(s.tuples) > 0 {
		if last := s.tuples[len(s.tuples)-1].Score; last < cap {
			cap = last
		}
	}
	return cap
}

func (s *pagedPipeOp) Close() error {
	s.done = true
	s.inv = nil
	s.cur = nil
	if s.tuples != nil {
		putTupleSlice(s.tuples)
		s.tuples = nil
	}
	s.arena.release()
	return nil
}

// pagedFeedsMultiJoin reports whether a piped service node should compile
// to the demand-paged reader: its only consumer is a multi-way join, so
// no other operator relies on the pipe window's eager prefetch.
func pagedFeedsMultiJoin(p *plan.Plan, id string) bool {
	succ := p.Successors(id)
	if len(succ) != 1 {
		return false
	}
	n, ok := p.Node(succ[0])
	return ok && n.Kind == plan.KindMultiJoin
}
