package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"seco/internal/service"
	"seco/internal/types"
)

// This file implements graceful degradation: when a service fails
// permanently (or a circuit stays open, or retries are exhausted) or the
// execution budget expires mid-run, the streaming executor stops pulling
// and returns the combinations produced so far as a partial result
// instead of an error. The Run's Degraded report names the failure, the
// fetch depth each service node reached, and — using the same score
// bounds that drive top-k early termination — how many of the returned
// results are provably identical to the fault-free run's top-k, versus
// merely best-effort.

// ErrBudget reports that the execution budget (Options.Budget) was spent
// before the run completed. It is surfaced as the run error when Degrade
// is off, and recorded in Run.Degraded when Degrade is on.
var ErrBudget = errors.New("engine: execution budget exhausted")

// DegradeReason classifies what ended a degraded run.
type DegradeReason string

const (
	// DegradeServiceFailure: a service failed past the resilience
	// middleware (permanent fault, open circuit, or exhausted retries).
	DegradeServiceFailure DegradeReason = "service-failure"
	// DegradeBudget: the execution budget expired mid-run.
	DegradeBudget DegradeReason = "budget-exhausted"
	// DegradeDeadline: the budget was derived from a request deadline and
	// the deadline expired mid-run (Options.BudgetReason).
	DegradeDeadline DegradeReason = "deadline"
	// DegradeShed: the budget was reduced by admission-control load
	// shedding and expired mid-run (Options.BudgetReason).
	DegradeShed DegradeReason = "load-shed"
)

// Degradation reports why and how a run returned a partial result.
type Degradation struct {
	// Reason classifies the trigger.
	Reason DegradeReason
	// Failed names the service aliases whose failure ended the run
	// (empty for pure budget expiry).
	Failed []string
	// Cause is the text of the triggering error.
	Cause string
	// FetchDepth records, per service plan-node ID, how many chunks the
	// node had fetched when execution stopped — the depth the search
	// reached into each ranked result list.
	FetchDepth map[string]int
	// Bound is the streaming score bound at the stop point: no unseen
	// combination can score above it.
	Bound float64
	// CertifiedK is the length of the leading prefix of Combinations
	// that is provably identical to the fault-free run's ranking: every
	// certified combination outscores Bound, so nothing the run failed
	// to see could displace or reorder it. Results beyond the prefix are
	// best-effort.
	CertifiedK int
}

// String summarizes the degradation for logs and reports.
func (d *Degradation) String() string {
	if d == nil {
		return "<nil>"
	}
	return fmt.Sprintf("degraded(%s failed=%v certified=%d bound=%.3f)",
		d.Reason, d.Failed, d.CertifiedK, d.Bound)
}

// aliasError attributes a failure to the plan alias whose service call
// raised it, so degradation reports can name the failed service.
type aliasError struct {
	alias string
	err   error
}

func (e *aliasError) Error() string { return fmt.Sprintf("service %q: %v", e.alias, e.err) }

func (e *aliasError) Unwrap() error { return e.err }

// withAlias wraps err with the alias unless it already carries one (the
// innermost attribution names the failing service, not a downstream node
// that merely propagated it).
func withAlias(alias string, err error) error {
	if err == nil {
		return nil
	}
	var ae *aliasError
	if errors.As(err, &ae) {
		return err
	}
	return &aliasError{alias: alias, err: err}
}

// budgetCheck returns the budget-expiry probe for a run, or nil when no
// budget is set. The probe reads the engine clock, so wall and virtual
// runs expire identically relative to their own time.
func (ex *executor) budgetCheck(start time.Time) func() error {
	if ex.opts.Budget <= 0 {
		return nil
	}
	deadline := start.Add(ex.opts.Budget)
	clock := ex.engine.clock
	return func() error {
		if clock.Now().Before(deadline) {
			return nil
		}
		return ErrBudget
	}
}

// classifyDegrade decides whether err ends the run as a degraded partial
// result. User cancellation is never degraded — the caller asked the run
// to stop, not the services.
func (ex *executor) classifyDegrade(ctx context.Context, err error) (*Degradation, bool) {
	if !ex.opts.Degrade || err == nil || ctx.Err() != nil {
		return nil, false
	}
	if errors.Is(err, ErrBudget) {
		reason := ex.opts.BudgetReason
		if reason == "" {
			reason = DegradeBudget
		}
		return &Degradation{Reason: reason, Cause: err.Error()}, true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// A per-call deadline (derived from the remaining budget under a
		// wall clock) expired while the run itself is still live: degrade
		// as a deadline, not a service failure — the service was slow, the
		// budget ran out.
		d := &Degradation{Reason: DegradeDeadline, Cause: err.Error()}
		var ae *aliasError
		if errors.As(err, &ae) {
			d.Failed = []string{ae.alias}
		}
		return d, true
	}
	if errors.Is(err, service.ErrPermanent) || errors.Is(err, service.ErrOpen) ||
		errors.Is(err, service.ErrTransient) {
		d := &Degradation{Reason: DegradeServiceFailure, Cause: err.Error()}
		var ae *aliasError
		if errors.As(err, &ae) {
			d.Failed = []string{ae.alias}
		}
		return d, true
	}
	return nil, false
}

// certifiedPrefix counts the leading ranked combinations that provably
// belong to the true top-k in this exact order: each must strictly
// outscore the stop bound (no unseen combination can reach above it),
// and the guarantee requires the monotone ranking the bounds assume.
func certifiedPrefix(ranked []*types.Combination, bound float64, weights map[string]float64) int {
	if !nonNegative(weights) {
		return 0
	}
	if math.IsInf(bound, -1) {
		// Nothing unseen remains: the whole partial result is exact.
		return len(ranked)
	}
	k := 0
	for _, c := range ranked {
		if c.Score <= bound {
			break
		}
		k++
	}
	return k
}
