package engine

import (
	"context"
	"testing"

	"seco/internal/mart"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/synth"
)

// A three-member parallel group — C → (F‖H‖W) — builds a left-deep join
// tree; the engine must evaluate all three branches concurrently, apply
// the Weather selection inside its branch, and glue the combinations on
// the shared Conference component.
func TestExecuteThreeWayParallelGroup(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.TravelExample(reg)
	if err != nil {
		t.Fatal(err)
	}
	top := optimizer.Topology{
		{Group: []string{"C"}},
		{Group: []string{"F", "H", "W"}},
	}
	p, err := optimizer.BuildPlan(q, top, plan.TravelStats(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two join nodes for three branches.
	joins := 0
	for _, id := range p.NodeIDs() {
		if n, _ := p.Node(id); n.Kind == plan.KindJoin {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("join nodes = %d, want 2 (left-deep tree)", joins)
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(world.Services(), nil).Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights, TargetK: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Combinations) == 0 {
		t.Fatal("three-way group produced no combinations")
	}
	for _, c := range run.Combinations {
		conf, w, f, h := c.Components["C"], c.Components["W"], c.Components["F"], c.Components["H"]
		if conf == nil || w == nil || f == nil || h == nil {
			t.Fatalf("incomplete combination: %v", c)
		}
		city := conf.Get("City").Str()
		if w.Get("City").Str() != city || f.Get("To").Str() != city || h.Get("City").Str() != city {
			t.Errorf("branches glued to different conferences: %v", c)
		}
		if temp := w.Get("AvgTemp").FloatVal(); temp <= 26 {
			t.Errorf("in-branch selection violated: %v", temp)
		}
	}
	if run.Produced["C"] == 0 || run.Produced["output"] == 0 {
		t.Errorf("Produced map incomplete: %v", run.Produced)
	}
}
