package engine

import (
	"math"

	"seco/internal/plan"
)

// This file is the one home of the re-chunking helpers the parallel-join
// operator uses to slice its two ranked input streams into the chunk grid
// the tile explorer walks.

// DefaultRechunkSize is the re-chunking granularity used for join inputs
// that do not originate from a chunked service node (selections, exact
// services, nested joins); override per execution with
// Options.DefaultChunkSize.
const DefaultRechunkSize = 10

// chunkSizeOf picks the re-chunking granularity of a join input: the
// originating service's chunk size when the predecessor is a chunked
// service node, the configured default otherwise.
func (ex *executor) chunkSizeOf(id string) int {
	if n, ok := ex.ann.Plan.Node(id); ok && n.Kind == plan.KindService && n.Stats.Chunked() {
		return n.Stats.ChunkSize
	}
	if ex.opts.DefaultChunkSize > 0 {
		return ex.opts.DefaultChunkSize
	}
	return DefaultRechunkSize
}

// rechunk slices a ranked list into chunks of the given size (the last
// chunk may run short).
func rechunk[T any](items []T, size int) [][]T {
	if size <= 0 {
		size = DefaultRechunkSize
	}
	var chunks [][]T
	for lo := 0; lo < len(items); lo += size {
		hi := lo + size
		if hi > len(items) {
			hi = len(items)
		}
		chunks = append(chunks, items[lo:hi])
	}
	return chunks
}

// chunkTop is the score of a chunk's first (best-ranked) combination, the
// rank the tile explorer orders chunk pairs by.
func chunkTop(chunk []*comb) float64 {
	if len(chunk) == 0 {
		return 0
	}
	return chunk[0].score
}

// maxScore is the best score in a combination list (-Inf when empty).
func maxScore(combos []*comb) float64 {
	m := math.Inf(-1)
	for _, c := range combos {
		if c.score > m {
			m = c.score
		}
	}
	return m
}
