package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"seco/internal/obs"
	"seco/internal/plan"
)

// Regenerate with: go test ./internal/engine -run TestTraceGolden -update-trace-golden
var updateTraceGolden = flag.Bool("update-trace-golden", false, "rewrite trace golden files")

// tracedFixtureRun executes the movienight fixture on a fresh engine
// (virtual clock) with a fresh tracer and returns the run plus the
// trace snapshot.
func tracedFixtureRun(t *testing.T, materialize bool, parallelism int) (*Run, *obs.Trace) {
	t.Helper()
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	run, err := e.Execute(context.Background(), a, Options{
		Inputs:      world.Inputs,
		Weights:     q.Weights,
		TargetK:     10,
		Parallelism: parallelism,
		Materialize: materialize,
		Trace:       tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run, tr.Snapshot()
}

func chromeBytes(t *testing.T, tr *obs.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenMovienight pins the full Chrome trace of the
// running-example execution under both driver policies. The engine runs
// on the virtual clock, so the trace is stamped from deterministic
// lane-local cursors and must be byte-identical run over run — the
// golden file is that guarantee made durable. Parallelism is pinned to 1
// because pipe slots are the one source of same-lane concurrency: with
// several slots the set of spans is still deterministic but their
// within-lane interleaving (and hence seq order) is not.
func TestTraceGoldenMovienight(t *testing.T) {
	for _, tc := range []struct {
		name        string
		materialize bool
	}{
		{"pull", false},
		{"drain", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, first := tracedFixtureRun(t, tc.materialize, 1)
			_, second := tracedFixtureRun(t, tc.materialize, 1)
			got := chromeBytes(t, first)
			if again := chromeBytes(t, second); !bytes.Equal(got, again) {
				t.Fatalf("virtual-clock trace not byte-stable across two runs (%d vs %d bytes)",
					len(got), len(again))
			}
			if !first.Deterministic {
				t.Fatal("virtual-clock run did not bind the tracer in deterministic mode")
			}

			golden := filepath.Join("testdata", "trace_movienight_"+tc.name+".golden")
			if *updateTraceGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update-trace-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace drifted from %s (%d vs %d bytes); rerun with -update-trace-golden and review the diff",
					golden, len(got), len(want))
			}
		})
	}
}

// TestTraceChromeValidAndComplete is the acceptance check: the Chrome
// export is valid JSON and the per-lane invoke span count equals the
// run's per-alias Invocations (service lanes are named by the plan node
// ID, which for service nodes is the query alias).
func TestTraceChromeValidAndComplete(t *testing.T) {
	run, tr := tracedFixtureRun(t, false, 4)

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(chromeBytes(t, tr), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("Chrome export malformed: %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}

	invokes := map[string]int64{}
	for _, sp := range tr.Spans {
		if sp.Kind == obs.KindCall && sp.Name == "invoke" {
			invokes[sp.Lane]++
		}
	}
	if len(run.Invocations) == 0 {
		t.Fatal("run recorded no invocations")
	}
	for alias, want := range run.Invocations {
		if got := invokes[alias]; got != want {
			t.Errorf("lane %s: %d invoke spans, Run.Invocations says %d", alias, got, want)
		}
	}
	for lane, got := range invokes {
		if _, ok := run.Invocations[lane]; !ok {
			t.Errorf("invoke spans in lane %s with no matching Run.Invocations entry (%d spans)", lane, got)
		}
	}
}

// TestTraceConcurrentRunsDisjoint runs several traced executions against
// one engine concurrently (exercised under -race in CI) and checks that
// each tracer's span tree is self-contained and well nested: every span
// belongs to that run's own plan lanes, each lane's operator span covers
// all of the lane's calls and events, and the lane's call spans do not
// overlap (deterministic cursors advance serially within a lane).
func TestTraceConcurrentRunsDisjoint(t *testing.T) {
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = make([]*Run, runs)
		traces  = make([]*obs.Trace, runs)
		errs    = make([]error, runs)
	)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := obs.NewTracer()
			run, err := e.Execute(context.Background(), a, Options{
				Inputs:      world.Inputs,
				Weights:     q.Weights,
				TargetK:     10,
				Parallelism: 4,
				Trace:       tr,
			})
			mu.Lock()
			results[i], traces[i], errs[i] = run, tr.Snapshot(), err
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	wantLanes := map[string]bool{"run": true}
	for _, id := range p.NodeIDs() {
		wantLanes[id] = true
	}
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		tr := traces[i]
		invokes := map[string]int64{}
		for _, sp := range tr.Spans {
			if !wantLanes[sp.Lane] {
				t.Fatalf("run %d: span in foreign lane %q — tracers are not disjoint", i, sp.Lane)
			}
			if sp.Kind == obs.KindCall && sp.Name == "invoke" {
				invokes[sp.Lane]++
			}
		}
		for alias, want := range results[i].Invocations {
			if got := invokes[alias]; got != want {
				t.Errorf("run %d lane %s: %d invoke spans vs %d invocations", i, alias, got, want)
			}
		}
		checkWellNested(t, i, tr)
	}
}

// checkWellNested asserts, per lane, that the container span (operator
// or run) covers every other span in the lane and that call spans are
// serial (non-overlapping) — the shape deterministic cursor stamping
// guarantees.
func checkWellNested(t *testing.T, runIdx int, tr *obs.Trace) {
	t.Helper()
	byLane := map[string][]obs.Span{}
	for _, sp := range tr.Spans {
		byLane[sp.Lane] = append(byLane[sp.Lane], sp)
	}
	for lane, spans := range byLane {
		var container *obs.Span
		for j := range spans {
			if spans[j].Kind == obs.KindOperator || spans[j].Kind == obs.KindRun {
				if container == nil || spans[j].End() > container.End() {
					container = &spans[j]
				}
			}
		}
		if container == nil {
			// Lanes without a compiled operator (e.g. middleware-only
			// lanes) have no container; nothing to check.
			continue
		}
		var lastCallEnd int64 = -1
		for _, sp := range spans {
			if sp.Start < container.Start || sp.End() > container.End() {
				t.Errorf("run %d lane %s: span %s [%d,%d) escapes container [%d,%d)",
					runIdx, lane, sp.Name, sp.Start, sp.End(), container.Start, container.End())
			}
			if sp.Kind == obs.KindCall {
				if int64(sp.Start) < lastCallEnd {
					t.Errorf("run %d lane %s: call %s starts at %d before previous call ended at %d",
						runIdx, lane, sp.Name, sp.Start, lastCallEnd)
				}
				lastCallEnd = int64(sp.End())
			}
		}
	}
}

// TestTracingOverheadBounded is the coarse in-repo companion to CI's
// benchmark-level regression budget: executing the fixture with a full
// tracer must stay within 1.5x of the untraced execution (the CI budget
// for the *untraced* path against the previous baseline is 5%; this
// bound is deliberately generous because the test runs only a handful of
// iterations on shared runners).
func TestTracingOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	e, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	measure := func(traced bool) time.Duration {
		const rounds = 9
		times := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 10, Parallelism: 4}
			if traced {
				opts.Trace = obs.NewTracer()
			}
			begin := time.Now()
			if _, err := e.Execute(context.Background(), a, opts); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(begin))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}
	measure(false) // warm-up: JIT-free, but page in the world and caches
	untraced := measure(false)
	traced := measure(true)
	if untraced <= 0 {
		t.Skip("timer resolution too coarse for this fixture")
	}
	if float64(traced) > float64(untraced)*1.5+float64(2*time.Millisecond) {
		t.Errorf("tracing overhead out of bounds: untraced median %v, traced median %v", untraced, traced)
	}
}
