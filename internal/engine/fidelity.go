package engine

import (
	"seco/internal/fidelity"
	"seco/internal/obs"
)

// assessFidelity assembles the per-node actuals of a finished execution
// and scores them against the plan's annotations. It must run after the
// driver's cancel + wg.Wait (the counters are quiescent then) and
// returns nil unless Options.Fidelity was set. Beside building the
// report it publishes the seco.fidelity.* metrics into the engine
// registry and — when the run is traced — emits one "fidelity" event on
// every node's lane, so the Chrome export shows est-vs-act inline with
// the node's call spans.
func (ex *executor) assessFidelity(g *graph) *fidelity.Report {
	if !ex.opts.Fidelity {
		return nil
	}
	acts := make([]fidelity.Actuals, 0, len(g.descs))
	for _, d := range g.descs {
		a := fidelity.Actuals{Node: d.Node, Kind: d.Kind}
		if c := g.emitted[d.Node]; c != nil {
			a.TuplesOut = float64(c.Load())
		}
		for _, in := range d.Inputs {
			if c := g.emitted[in]; c != nil {
				a.TuplesIn += float64(c.Load())
			}
		}
		if c := g.depth[d.Node]; c != nil {
			a.Fetches = float64(c.Load())
		}
		a.Candidates = float64(g.fid.Value(d.Node))
		acts = append(acts, a)
	}
	rep := fidelity.Assess(ex.ann, acts, ex.opts.DriftThreshold)
	rep.Publish(ex.engine.metrics)
	if tr := ex.opts.Trace; tr != nil {
		// Report rows are sorted by node ID, so the event order — and with
		// it the virtual-clock trace bytes — is deterministic.
		for _, nf := range rep.Nodes {
			tr.Scope(nf.Node).Event("fidelity",
				obs.KV("est_out", fidelity.Fnum(nf.EstOut)),
				obs.KV("act_out", fidelity.Fnum(nf.ActOut)),
				obs.KV("q", fidelity.Fnum(nf.Q)),
				obs.KV("drift", boolAttr(nf.Drift)))
		}
	}
	return rep
}
