//go:build race

package engine

// raceEnabled reports that the race detector is instrumenting this build;
// the allocation-regression tests skip themselves under it, since the
// instrumentation allocates on its own.
const raceEnabled = true
