package engine

import (
	"context"
	"testing"
	"time"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/service"
	"seco/internal/synth"
)

// Failure injection: wrapping every service in Retry(Flaky(...)) must
// produce exactly the same combinations as the clean run, despite
// injected transient failures on the wire.
func TestExecuteSurvivesTransientFailures(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 10,
		Parallelism: 1} // deterministic call interleaving for the flaky schedule
	clean, err := New(world.Services(), nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}

	flakies := map[string]*service.Flaky{}
	wrapped := map[string]service.Service{}
	for alias, svc := range world.Services() {
		f := service.NewFlaky(svc, 4) // every 4th call fails transiently
		r := service.NewRetry(f)
		r.Sleep = func(time.Duration) {}
		flakies[alias] = f
		wrapped[alias] = r
	}
	faulty, err := New(wrapped, nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatalf("execution failed despite retries: %v", err)
	}

	injected := 0
	for _, f := range flakies {
		injected += f.Injected()
	}
	if injected == 0 {
		t.Fatal("no failures injected; test is vacuous")
	}
	if len(faulty.Combinations) != len(clean.Combinations) {
		t.Fatalf("faulty run returned %d combinations, clean %d (after %d injected failures)",
			len(faulty.Combinations), len(clean.Combinations), injected)
	}
	for i := range clean.Combinations {
		if clean.Combinations[i].String() != faulty.Combinations[i].String() {
			t.Errorf("combination %d differs:\n clean  %s\n faulty %s",
				i, clean.Combinations[i], faulty.Combinations[i])
		}
	}
}

// Ablation: caching the restaurant service cuts its wire calls, because
// the pipe join repeatedly invokes it with recurring theatre addresses
// (several movies show at the same theatre). Results must be identical.
func TestCacheReducesPipeJoinWireCalls(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights, Parallelism: 1}

	baseWire := service.NewCounter(world.Restaurants, nil)
	baseline := map[string]service.Service{
		"M": world.Movies, "T": world.Theatres, "R": baseWire,
	}
	runBase, err := New(baseline, nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	baselineCalls := baseWire.Fetches()

	cachedWire := service.NewCounter(world.Restaurants, nil)
	cached := map[string]service.Service{
		"M": world.Movies, "T": world.Theatres, "R": service.NewCache(cachedWire),
	}
	runCached, err := New(cached, nil).Execute(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	cachedCalls := cachedWire.Fetches()

	if len(runBase.Combinations) != len(runCached.Combinations) {
		t.Fatalf("cache changed results: %d vs %d combinations",
			len(runBase.Combinations), len(runCached.Combinations))
	}
	for i := range runBase.Combinations {
		if runBase.Combinations[i].String() != runCached.Combinations[i].String() {
			t.Errorf("combination %d differs under cache", i)
		}
	}
	if cachedCalls >= baselineCalls {
		t.Errorf("cache saved nothing: %d wire calls vs %d baseline", cachedCalls, baselineCalls)
	}
	t.Logf("wire calls: baseline %d, cached %d", baselineCalls, cachedCalls)
}

// Without retries, injected failures surface as execution errors.
func TestExecuteFailsWithoutRetries(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := map[string]service.Service{}
	for alias, svc := range world.Services() {
		wrapped[alias] = service.NewFlaky(svc, 2)
	}
	_, err = New(wrapped, nil).Execute(context.Background(), a, Options{
		Inputs: world.Inputs, Weights: q.Weights, Parallelism: 1,
	})
	if err == nil {
		t.Error("execution over flaky services without retries succeeded")
	}
}
