// Package engine executes fully instantiated query plans against live
// services through a unified pull-based operator runtime. A plan compiles
// into a graph of operators (Open/Next/Close over ranked combination
// chunks): service scans, pipe joins, parallel joins, selections, and
// fan-out tees. Two thin driver policies execute the same graph: the
// default K-bounded pull maintains the K-th best score pulled so far and
// — using the score bounds each operator publishes, derived from the
// services' Scoring curves — halts (and stops issuing request-responses)
// as soon as the top-K set is guaranteed; Options.Materialize selects the
// eager-drain policy, which evaluates everything the fetch budgets reach
// before ranking and truncating — the measurement baseline.
//
// Beneath the operators, every service call goes through a shared
// service.Invoker: per-run Counters give each execution isolated call
// statistics, budget probing and latency charging, so a single Engine
// safely executes any number of concurrent queries; an optional
// cross-query sharing layer deduplicates in-flight calls and memoizes
// fetched chunks between them.
package engine

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"seco/internal/fidelity"
	"seco/internal/obs"
	"seco/internal/plan"
	"seco/internal/plancheck"
	"seco/internal/service"
	"seco/internal/types"
)

// Options configures one execution.
type Options struct {
	// Inputs binds the query's INPUT variables.
	Inputs map[string]types.Value
	// Weights is the ranking function (alias → weight); combinations are
	// scored incrementally as components accumulate.
	Weights map[string]float64
	// TargetK truncates the ranked output to the best K combinations
	// (0 = return everything the fetch factors produced). The pull driver
	// additionally uses it to stop early once the top-K set is guaranteed
	// by the score bounds.
	TargetK int
	// Parallelism bounds the concurrent service invocations of a pipe
	// join (default 8).
	Parallelism int
	// Materialize selects the eager-drain driver policy (materialize,
	// rank, then truncate) instead of the default K-bounded pull —
	// the baseline for measurements and equivalence tests.
	Materialize bool
	// DefaultChunkSize overrides the re-chunking granularity used for join
	// inputs that do not originate from a chunked service node
	// (default DefaultRechunkSize).
	DefaultChunkSize int
	// SkipValidate disables the pre-execution plancheck verification.
	// By default Execute refuses plans with Error-severity diagnostics
	// (cycles, uncovered bindings, illegal strategies, stale annotations,
	// negative weights under a top-K pull run, mis-compiled operator
	// graphs); set SkipValidate for callers that have already verified
	// the plan and need the few microseconds back.
	SkipValidate bool
	// Budget bounds the execution time on the engine's Clock (0 = no
	// budget): wall time under WallClock, simulated time under
	// VirtualClock. The deadline is propagated through the context into
	// every Invoke and Fetch, so in-flight service calls stop promptly
	// once the budget is spent. Without Degrade, expiry surfaces as
	// ErrBudget; with Degrade, the pull driver returns the combinations
	// produced so far.
	Budget time.Duration
	// Degrade turns permanent service failures, open circuits, exhausted
	// retries and budget expiry into partial results: the pull driver
	// stops pulling, returns what it has, and fills Run.Degraded with the
	// failure report and the provably-correct prefix length. The drain
	// driver does not degrade (it has no meaningful partial state to
	// return); plancheck warns on that combination.
	Degrade bool
	// BudgetReason classifies a budget expiry in Run.Degraded (default
	// DegradeBudget). The serving layer maps its admission decisions here:
	// a budget derived from the request deadline reports DegradeDeadline,
	// a budget reduced by load shedding reports DegradeShed — so the
	// degraded-run metrics distinguish "client asked for this bound" from
	// "the server was protecting itself".
	BudgetReason DegradeReason
	// Fidelity enables per-node estimate-vs-actual accounting: every
	// compiled operator records its actuals (tuples in/out, fetches,
	// candidate combinations examined) and the drivers assemble a
	// fidelity.Report on Run.Fidelity, publish seco.fidelity.* metrics,
	// and — when the run is traced — emit one "fidelity" event per node
	// lane. Counters come from a per-run slab sized at compile time, so
	// the enabled path stays cheap; disabled, the operators carry nil
	// counters and the hot path allocates nothing (the obs.Tracer
	// pattern).
	Fidelity bool
	// DriftThreshold is the one-sided drift factor of the fidelity
	// report: a node drifts when its actual exceeds its estimate by more
	// than this factor (0 = fidelity.DefaultThreshold). Overestimates
	// never drift — the pull driver's early halt legitimately undershoots
	// the annotation.
	DriftThreshold float64
	// Trace, when non-nil, records per-operator spans for this execution:
	// operator lifecycles, every service invoke/fetch, retry and breaker
	// events, cache hits, injected faults, and degradations. The engine
	// binds the tracer to its Clock at the start of the run; under a
	// VirtualClock the tracer stamps spans deterministically (lane-local
	// charged-time cursors), so two identical virtual runs produce
	// byte-identical traces. A Tracer records one run — pass a fresh one
	// per Execute.
	Trace *obs.Tracer
}

// Run is the outcome of one plan execution.
type Run struct {
	// Combinations are the result tuples in decreasing ranking order.
	Combinations []*types.Combination
	// Calls counts request-responses per alias.
	Calls map[string]int64
	// Invocations counts service invocations per alias (each invocation
	// spans one or more request-responses).
	Invocations map[string]int64
	// Produced counts the combinations each plan node emitted — the
	// measured counterpart of the annotation engine's tout estimates.
	// Under the pull driver this is the number of combinations the node
	// actually emitted before execution stopped.
	Produced map[string]int
	// CallsSaved is the number of request-responses the execution avoided
	// relative to the annotated plan's expected total (the cost a full
	// materializing drain is planned for); 0 when nothing was saved.
	CallsSaved float64
	// Halted reports that the pull driver stopped early because the top-K
	// set was guaranteed by the score bounds.
	Halted bool
	// Elapsed is the execution time as measured by the engine's Clock:
	// wall-clock time under WallClock, simulated time (the serial sum of
	// charged call latencies) under VirtualClock.
	Elapsed time.Duration
	// Resilience aggregates, per alias, the counters of the service's
	// resilience middleware chain (retries, injected faults, breaker
	// trips and rejections); aliases with no recorded events are absent.
	Resilience map[string]service.ResilienceStats
	// Fidelity is the per-node estimate-vs-actual report of this run,
	// nil unless Options.Fidelity was set.
	Fidelity *fidelity.Report
	// Degraded is non-nil when the run returned a partial result under
	// Options.Degrade: it names the failure, the per-node fetch depth
	// reached, and how much of the returned prefix is provably correct.
	Degraded *Degradation
	// Metrics is a text dump of the engine's metrics registry as of the
	// end of this run (empty when the engine was built without
	// Config.Metrics). The registry is engine-wide and cumulative; the
	// dump is the registry state, not a per-run delta.
	Metrics string
}

// TotalCalls sums the per-alias request-responses.
func (r *Run) TotalCalls() int64 {
	var sum int64
	for _, c := range r.Calls {
		sum += c
	}
	return sum
}

// Engine executes plans against a set of services keyed by query alias.
// All service calls funnel through one shared Invoker, and every Execute
// opens its own counting scope there, so a single Engine instance is safe
// for concurrent executions.
type Engine struct {
	invoker *service.Invoker
	clock   Clock
	metrics *obs.Registry
	// intern is the engine's interning scope: one front cache over the
	// process-global handle registry, shared by every run of this engine.
	// The share layer canonicalizes memoized chunks through it, so a
	// chunk cached by one query serves later queries without re-cloning.
	intern *types.Interner
}

// Config configures an Engine beyond its bound services.
type Config struct {
	// Clock drives latency charging and elapsed-time reporting. Nil
	// selects a VirtualClock when Delay is nil (simulated time) and
	// WallClock otherwise.
	Clock Clock
	// Delay, when non-nil, is invoked with the service's published
	// latency on every fetch (pass time.Sleep for live pacing). Nil means
	// the clock's own Sleep charges the latency.
	Delay func(time.Duration)
	// Share enables the Invoker's cross-query call-sharing layer:
	// in-flight calls for the same service, input binding and chunk are
	// deduplicated across concurrent runs, and fetched chunks are
	// memoized engine-wide. Results are unchanged; only wire traffic and
	// call counts below the per-run Counters shrink.
	Share bool
	// Metrics, when non-nil, receives the engine's instruments: per-alias
	// call counters and latency/chunk-depth histograms from the Invoker,
	// share-layer hit counters, and per-run driver counters. The registry
	// is engine-wide (cumulative across runs); each Run carries a text
	// snapshot in Run.Metrics. Nil keeps the hot path unmetered.
	Metrics *obs.Registry
	// Hedge, when non-nil, mounts the Invoker's hedging layer on every
	// lane (above Share): hedgeable failures get one immediate second
	// attempt, and slow successes are counted against a latency-percentile
	// trigger fed by the per-alias invoker histograms. See
	// service.HedgePolicy.
	Hedge *service.HedgePolicy
}

// New builds an engine over the given services. The delay hook, when
// non-nil, is invoked with the service's published latency on every fetch
// (pass time.Sleep for live pacing). A nil hook selects a VirtualClock:
// fetches complete instantly while their published latency is charged to
// simulated time, so Run.Elapsed reports the simulated duration of the
// run. Callers that need a specific clock or the cross-query sharing
// layer use NewWithConfig.
func New(services map[string]service.Service, delay func(time.Duration)) *Engine {
	return NewWithConfig(services, Config{Delay: delay})
}

// NewWithClock builds an engine whose latency charging and elapsed-time
// reporting both go through the given clock: WallClock paces fetches in
// real time, VirtualClock simulates them instantly while keeping the
// elapsed-time accounting.
func NewWithClock(services map[string]service.Service, clk Clock) *Engine {
	return NewWithConfig(services, Config{Clock: clk})
}

// NewWithConfig builds an engine with explicit clock, delay-hook and
// call-sharing configuration.
func NewWithConfig(services map[string]service.Service, cfg Config) *Engine {
	clk := cfg.Clock
	if clk == nil {
		if cfg.Delay == nil {
			clk = NewVirtualClock()
		} else {
			clk = WallClock{}
		}
	}
	delay := cfg.Delay
	if delay == nil {
		delay = clk.Sleep
	}
	for _, svc := range services {
		// Route all resilience timing (retry backoff, breaker cooldowns,
		// injected latency spikes) through this engine's clock, so a
		// virtual-clock run charges them into simulated time.
		service.InstallTimeSource(svc, clk)
	}
	intern := types.NewInterner()
	inv := service.NewInvoker(services, service.InvokerOptions{
		Delay: delay, Share: cfg.Share, Metrics: cfg.Metrics, Interner: intern,
		Hedge: cfg.Hedge,
	})
	// The Invoker's own layers (Hedge above Share) also need the clock:
	// walk each complete lane so every time-dependent layer — not just the
	// user chain walked above — measures on this engine's clock.
	for _, alias := range inv.Aliases() {
		if lane, ok := inv.Lane(alias); ok {
			service.InstallTimeSource(lane, clk)
		}
	}
	return &Engine{
		invoker: inv,
		clock:   clk,
		metrics: cfg.Metrics,
		intern:  intern,
	}
}

// Interner exposes the engine's interning scope; loaders can canonicalize
// service data through it so runtime comparisons hit the handle fast
// paths.
func (e *Engine) Interner() *types.Interner { return e.intern }

// Clock returns the clock driving this engine's latency charging and
// elapsed-time reporting.
func (e *Engine) Clock() Clock { return e.clock }

// Invoker exposes the engine's shared service-call choke point (per-alias
// lanes, cross-query sharing statistics).
func (e *Engine) Invoker() *service.Invoker { return e.invoker }

// Metrics exposes the engine's metrics registry (nil when the engine was
// built without Config.Metrics).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Execute runs the annotated plan and returns the ranked combinations.
// The plan compiles into an operator graph executed by one of the two
// driver policies (see Options.Materialize). Unless Options.SkipValidate
// is set, the plan is first verified with plancheck — and the compiled
// operator graph checked against it — and refused when it carries
// Error-severity diagnostics: a hand-built or JSON-loaded plan violating
// the engine's invariants would otherwise silently return wrong top-K
// results. Execute is safe for concurrent use on one Engine; every call
// gets its own counting scope from the Invoker.
func (e *Engine) Execute(ctx context.Context, a *plan.Annotated, opts Options) (*Run, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	if !opts.SkipValidate {
		rep := plancheck.CheckAnnotated(a)
		rep.Merge(plancheck.CheckExec(a.Plan, plancheck.Exec{
			Weights: opts.Weights, TargetK: opts.TargetK, Streaming: !opts.Materialize,
			Degrade: opts.Degrade,
		}))
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("engine: refusing invalid plan: %w", err)
		}
	}
	// Bind the tracer to this engine's clock before any span can be
	// recorded. A VirtualClock selects the deterministic stamping mode:
	// spans carry lane-local charged-time cursors instead of raw clock
	// readings, so goroutine scheduling cannot perturb the trace.
	if opts.Trace != nil {
		_, virtual := e.clock.(*VirtualClock)
		opts.Trace.Bind(e.clock, virtual)
	}
	start := e.clock.Now()
	ex := &executor{engine: e, ann: a, opts: opts, scope: e.invoker.NewRun()}
	// Thread the execution budget through the context: every Invoke and
	// Fetch passes the run's Counter, which refuses calls once the budget
	// probe reports expiry — on this engine's clock, so virtual runs
	// expire in simulated time.
	if check := ex.budgetCheck(start); check != nil {
		ctx = service.WithBudget(ctx, check)
		// Under a wall clock the budget also yields per-call deadlines:
		// every Invoke/Fetch gets a context.WithTimeout bounded by what is
		// left, so a stalled wire call cannot outlive the run's deadline.
		// Virtual runs skip this — their time only advances through charged
		// latency, so the deterministic budget probe is the sole authority.
		if _, wall := e.clock.(WallClock); wall {
			deadline := start.Add(opts.Budget)
			clk := e.clock
			ctx = service.WithRemaining(ctx, func() time.Duration {
				return deadline.Sub(clk.Now())
			})
		}
	}
	order, err := a.Plan.TopoSort()
	if err != nil {
		return nil, err
	}
	var outID string
	for _, id := range order {
		if n, _ := a.Plan.Node(id); n.Kind == plan.KindOutput {
			outID = id
		}
	}
	if outID == "" {
		return nil, fmt.Errorf("engine: plan has no output node")
	}
	g, err := compile(ex, outID)
	if err != nil {
		return nil, err
	}
	if !opts.SkipValidate {
		if err := plancheck.CheckOpGraph(a.Plan, g.describe()).Err(); err != nil {
			return nil, fmt.Errorf("engine: refusing mis-compiled operator graph: %w", err)
		}
	}
	// Label the run's goroutines for profiling: children (join-branch
	// prefetchers, pipe-window invocations) inherit the label, so a pprof
	// profile partitions CPU/heap by query root.
	var run *Run
	var runErr error
	pprof.Do(ctx, pprof.Labels("seco.query", g.rootID), func(ctx context.Context) {
		if opts.Materialize {
			run, runErr = ex.runDrain(ctx, g, start)
		} else {
			run, runErr = ex.runPull(ctx, g, start)
		}
	})
	return run, runErr
}

// executor is the per-run context shared by the compiled operators: the
// engine, the annotated plan, the execution options, the run's private
// counting scope from the Invoker, and the alias layout every comb of the
// compiled graph is indexed by (set by compile).
type executor struct {
	engine *Engine
	ann    *plan.Annotated
	opts   Options
	scope  *service.RunScope
	layout *aliasLayout
}

// newRun assembles the common Run fields from the run's counting scope.
func (ex *executor) newRun(ranked []*types.Combination, start time.Time, halted bool) *Run {
	run := &Run{
		Combinations: ranked,
		Calls:        map[string]int64{},
		Invocations:  map[string]int64{},
		Produced:     map[string]int{},
		Resilience:   map[string]service.ResilienceStats{},
		Halted:       halted,
		Elapsed:      ex.engine.clock.Now().Sub(start),
	}
	for alias, c := range ex.scope.Counters() {
		run.Calls[alias] = c.Fetches()
		run.Invocations[alias] = c.Invocations()
		if rs := service.CollectResilience(c); !rs.Zero() {
			run.Resilience[alias] = rs
		}
	}
	if est := ex.ann.TotalCalls(); est > float64(run.TotalCalls()) {
		run.CallsSaved = est - float64(run.TotalCalls())
	}
	if m := ex.engine.metrics; m != nil {
		policy := "pull"
		if ex.opts.Materialize {
			policy = "drain"
		}
		m.Counter("seco.engine.runs." + policy).Add(1)
		if halted {
			m.Counter("seco.engine.halted").Add(1)
		}
		m.Histogram("seco.engine.combinations", obs.DepthBuckets).Observe(float64(len(ranked)))
		m.Histogram("seco.engine.elapsed_ms", obs.LatencyBucketsMS).
			Observe(float64(run.Elapsed) / float64(time.Millisecond))
		run.Metrics = m.Text()
	}
	return run
}
