// Package engine executes fully instantiated query plans against live
// services. The default executor is a pull-based streaming pipeline:
// every plan node is a combination stream that fetches service chunks on
// demand, pipe joins keep a bounded window of in-flight invocations, and
// parallel joins drive the event-based explorer against live chunk
// arrivals. When a TargetK is set, a threshold-style stopping rule (the
// score bounds published by each stream, derived from the services'
// Scoring curves) halts execution — and stops issuing request-responses —
// as soon as the top-K set is guaranteed. Options.Materialize selects the
// original materialize-then-truncate executor, kept as the measurement
// baseline. Request-responses are counted per service, and an optional
// delay hook simulates per-call latency so wall-clock experiments can
// validate the execution-time cost model.
package engine

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seco/internal/plan"
	"seco/internal/plancheck"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// Options configures one execution.
type Options struct {
	// Inputs binds the query's INPUT variables.
	Inputs map[string]types.Value
	// Weights is the ranking function (alias → weight); combinations are
	// scored incrementally as components accumulate.
	Weights map[string]float64
	// TargetK truncates the ranked output to the best K combinations
	// (0 = return everything the fetch factors produced). The streaming
	// executor additionally uses it to stop early once the top-K set is
	// guaranteed by the score bounds.
	TargetK int
	// Parallelism bounds the concurrent service invocations of a pipe
	// join (default 8).
	Parallelism int
	// Materialize selects the original materialize-then-truncate executor
	// instead of the streaming pipeline (baseline for measurements and
	// equivalence tests).
	Materialize bool
	// DefaultChunkSize overrides the re-chunking granularity used for join
	// inputs that do not originate from a chunked service node
	// (default DefaultRechunkSize).
	DefaultChunkSize int
	// SkipValidate disables the pre-execution plancheck verification.
	// By default Execute refuses plans with Error-severity diagnostics
	// (cycles, uncovered bindings, illegal strategies, stale annotations,
	// negative weights under a top-K streaming run); set SkipValidate for
	// callers that have already verified the plan and need the few
	// microseconds back.
	SkipValidate bool
	// Budget bounds the execution time on the engine's Clock (0 = no
	// budget): wall time under WallClock, simulated time under
	// VirtualClock. The deadline is propagated through the context into
	// every Invoke and Fetch, so in-flight service calls stop promptly
	// once the budget is spent. Without Degrade, expiry surfaces as
	// ErrBudget; with Degrade, the streaming executor returns the
	// combinations produced so far.
	Budget time.Duration
	// Degrade turns permanent service failures, open circuits, exhausted
	// retries and budget expiry into partial results: the streaming
	// executor stops pulling, returns what it has, and fills
	// Run.Degraded with the failure report and the provably-correct
	// prefix length. The materializing executor does not degrade (it has
	// no partial state to return); plancheck warns on that combination.
	Degrade bool
}

// Run is the outcome of one plan execution.
type Run struct {
	// Combinations are the result tuples in decreasing ranking order.
	Combinations []*types.Combination
	// Calls counts request-responses per alias.
	Calls map[string]int64
	// Invocations counts service invocations per alias (each invocation
	// spans one or more request-responses).
	Invocations map[string]int64
	// Produced counts the combinations each plan node emitted — the
	// measured counterpart of the annotation engine's tout estimates.
	// Under the streaming executor this is the number of combinations the
	// node actually emitted before execution stopped.
	Produced map[string]int
	// CallsSaved is the number of request-responses the execution avoided
	// relative to the annotated plan's expected total (the cost a full
	// materializing drain is planned for); 0 when nothing was saved.
	CallsSaved float64
	// Halted reports that the streaming executor stopped early because
	// the top-K set was guaranteed by the score bounds.
	Halted bool
	// Elapsed is the execution time as measured by the engine's Clock:
	// wall-clock time under WallClock, simulated time (the serial sum of
	// charged call latencies) under VirtualClock.
	Elapsed time.Duration
	// Resilience aggregates, per alias, the counters of the service's
	// resilience middleware chain (retries, injected faults, breaker
	// trips and rejections); aliases with no recorded events are absent.
	Resilience map[string]service.ResilienceStats
	// Degraded is non-nil when the run returned a partial result under
	// Options.Degrade: it names the failure, the per-node fetch depth
	// reached, and how much of the returned prefix is provably correct.
	Degraded *Degradation
}

// TotalCalls sums the per-alias request-responses.
func (r *Run) TotalCalls() int64 {
	var sum int64
	for _, c := range r.Calls {
		sum += c
	}
	return sum
}

// Engine executes plans against a set of services keyed by query alias.
type Engine struct {
	counters map[string]*service.Counter
	clock    Clock
}

// New builds an engine over the given services. The delay hook, when
// non-nil, is invoked with the service's published latency on every fetch
// (pass time.Sleep for live pacing). A nil hook selects a VirtualClock:
// fetches complete instantly while their published latency is charged to
// simulated time, so Run.Elapsed reports the simulated duration of the
// run. Callers that need a specific clock use NewWithClock.
func New(services map[string]service.Service, delay func(time.Duration)) *Engine {
	if delay == nil {
		return NewWithClock(services, NewVirtualClock())
	}
	cs := make(map[string]*service.Counter, len(services))
	for alias, svc := range services {
		service.InstallTimeSource(svc, WallClock{})
		cs[alias] = service.NewCounter(svc, delay)
	}
	return &Engine{counters: cs, clock: WallClock{}}
}

// NewWithClock builds an engine whose latency charging and elapsed-time
// reporting both go through the given clock: WallClock paces fetches in
// real time, VirtualClock simulates them instantly while keeping the
// elapsed-time accounting.
func NewWithClock(services map[string]service.Service, clk Clock) *Engine {
	cs := make(map[string]*service.Counter, len(services))
	for alias, svc := range services {
		// Route all resilience timing (retry backoff, breaker cooldowns,
		// injected latency spikes) through this engine's clock, so a
		// virtual-clock run charges them into simulated time.
		service.InstallTimeSource(svc, clk)
		cs[alias] = service.NewCounter(svc, clk.Sleep)
	}
	return &Engine{counters: cs, clock: clk}
}

// Clock returns the clock driving this engine's latency charging and
// elapsed-time reporting.
func (e *Engine) Clock() Clock { return e.clock }

// Counter exposes the per-alias request-response counter.
func (e *Engine) Counter(alias string) (*service.Counter, bool) {
	c, ok := e.counters[alias]
	return c, ok
}

// Execute runs the annotated plan and returns the ranked combinations.
// Unless Options.SkipValidate is set, the plan is first verified with
// plancheck and refused when it carries Error-severity diagnostics — a
// hand-built or JSON-loaded plan violating the engine's invariants would
// otherwise silently return wrong top-K results.
func (e *Engine) Execute(ctx context.Context, a *plan.Annotated, opts Options) (*Run, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	if !opts.SkipValidate {
		rep := plancheck.CheckAnnotated(a)
		rep.Merge(plancheck.CheckExec(a.Plan, plancheck.Exec{
			Weights: opts.Weights, TargetK: opts.TargetK, Streaming: !opts.Materialize,
			Degrade: opts.Degrade,
		}))
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("engine: refusing invalid plan: %w", err)
		}
	}
	for _, c := range e.counters {
		c.Reset()
	}
	start := e.clock.Now()
	ex := &executor{engine: e, ann: a, opts: opts, memo: map[string][]*types.Combination{}}
	// Thread the execution budget through the context: every Invoke and
	// Fetch passes the engine's Counter, which refuses calls once the
	// budget probe reports expiry — on this engine's clock, so virtual
	// runs expire in simulated time.
	if check := ex.budgetCheck(start); check != nil {
		ctx = service.WithBudget(ctx, check)
	}
	order, err := a.Plan.TopoSort()
	if err != nil {
		return nil, err
	}
	var outID string
	for _, id := range order {
		if n, _ := a.Plan.Node(id); n.Kind == plan.KindOutput {
			outID = id
		}
	}
	if outID == "" {
		return nil, fmt.Errorf("engine: plan has no output node")
	}
	if opts.Materialize {
		return ex.runMaterialized(ctx, outID, start)
	}
	return ex.runStreaming(ctx, outID, start)
}

// runMaterialized is the original executor: evaluate every node to a full
// combination slice, rank, then truncate.
func (ex *executor) runMaterialized(ctx context.Context, outID string, start time.Time) (*Run, error) {
	combos, err := ex.eval(ctx, outID)
	if err != nil {
		return nil, err
	}
	ranked := append([]*types.Combination(nil), combos...)
	for _, c := range ranked {
		c.Rank(ex.opts.Weights)
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if ex.opts.TargetK > 0 && len(ranked) > ex.opts.TargetK {
		ranked = ranked[:ex.opts.TargetK]
	}
	run := ex.newRun(ranked, start, false)
	ex.mu.Lock()
	for id, combos := range ex.memo {
		run.Produced[id] = len(combos)
	}
	ex.mu.Unlock()
	return run, nil
}

// runStreaming builds the pull-based pipeline and drains it through the
// output node. With a TargetK and non-negative weights it maintains the
// K-th best score pulled so far and halts as soon as that score reaches
// the root stream's bound — no unseen combination can then enter the
// top-K, so the result equals the full drain's top-K while the undone
// part of the search space is never paid for. Under Options.Degrade, a
// service failure or budget expiry ends the drain early with a partial
// result instead of an error (see degrade.go).
func (ex *executor) runStreaming(ctx context.Context, outID string, start time.Time) (*Run, error) {
	se := &streamExec{ex: ex, emitted: map[string]*atomic.Int64{},
		depth: map[string]*atomic.Int64{}, shared: map[string]*sharedStream{}}
	root, err := se.stream(ex.ann.Plan.Predecessors(outID)[0])
	if err != nil {
		return nil, err
	}
	pullCtx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
		se.wg.Wait()
	}()

	earlyStop := ex.opts.TargetK > 0 && nonNegative(ex.opts.Weights)
	budget := ex.budgetCheck(start)
	var (
		all    []*types.Combination
		kth    = &minHeap{}
		halted bool
		deg    *Degradation
	)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if budget != nil {
			if err := budget(); err != nil {
				d, ok := ex.classifyDegrade(ctx, err)
				if !ok {
					return nil, err
				}
				deg = d
				break
			}
		}
		c, err := root.Next(pullCtx)
		if err != nil {
			d, ok := ex.classifyDegrade(ctx, err)
			if !ok {
				return nil, err
			}
			deg = d
			break
		}
		if c == nil {
			break
		}
		all = append(all, c)
		if earlyStop {
			heap.Push(kth, c.Score)
			if kth.Len() > ex.opts.TargetK {
				heap.Pop(kth)
			}
			if kth.Len() == ex.opts.TargetK && (*kth)[0] >= root.Bound() {
				halted = true
				break
			}
		}
	}
	// The degradation report needs the stop bound before the pipeline is
	// torn down (a cancelled stream's bound collapses).
	var stopBound float64
	if deg != nil {
		stopBound = root.Bound()
	}
	// Stop the prefetchers and wait for every pipeline goroutine before
	// reading the counters.
	cancel()
	se.wg.Wait()

	ranked := all
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if ex.opts.TargetK > 0 && len(ranked) > ex.opts.TargetK {
		ranked = ranked[:ex.opts.TargetK]
	}
	run := ex.newRun(ranked, start, halted)
	for id, n := range se.emitted {
		run.Produced[id] = int(n.Load())
	}
	run.Produced[outID] = len(all)
	if deg != nil {
		deg.Bound = stopBound
		deg.CertifiedK = certifiedPrefix(ranked, stopBound, ex.opts.Weights)
		deg.FetchDepth = map[string]int{}
		for id, n := range se.depth {
			deg.FetchDepth[id] = int(n.Load())
		}
		run.Degraded = deg
	}
	return run, nil
}

// newRun assembles the common Run fields from the engine's counters.
func (ex *executor) newRun(ranked []*types.Combination, start time.Time, halted bool) *Run {
	run := &Run{
		Combinations: ranked,
		Calls:        map[string]int64{},
		Invocations:  map[string]int64{},
		Produced:     map[string]int{},
		Resilience:   map[string]service.ResilienceStats{},
		Halted:       halted,
		Elapsed:      ex.engine.clock.Now().Sub(start),
	}
	for alias, c := range ex.engine.counters {
		run.Calls[alias] = c.Fetches()
		run.Invocations[alias] = c.Invocations()
		if rs := service.CollectResilience(c); !rs.Zero() {
			run.Resilience[alias] = rs
		}
	}
	if est := ex.ann.TotalCalls(); est > float64(run.TotalCalls()) {
		run.CallsSaved = est - float64(run.TotalCalls())
	}
	return run
}

// nonNegative reports whether every ranking weight is ≥ 0 — the
// monotonicity requirement of the early-stopping bound.
func nonNegative(weights map[string]float64) bool {
	for _, w := range weights {
		if w < 0 {
			return false
		}
	}
	return true
}

// minHeap keeps the K best scores pulled so far; its root is the K-th
// best, the score an unseen combination must beat to enter the top-K.
type minHeap []float64

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// executor evaluates plan nodes bottom-up, memoizing shared predecessors
// (a selection node may feed several downstream services). The memo is
// mutex-guarded because the branches of a parallel join evaluate in
// concurrent goroutines; the branches themselves touch disjoint subgraphs
// (shared ancestors are pre-evaluated by evalBranches).
type executor struct {
	engine *Engine
	ann    *plan.Annotated
	opts   Options
	mu     sync.Mutex
	memo   map[string][]*types.Combination
}

func (ex *executor) memoGet(id string) ([]*types.Combination, bool) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	got, ok := ex.memo[id]
	return got, ok
}

func (ex *executor) memoSet(id string, out []*types.Combination) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.memo[id] = out
}

func (ex *executor) eval(ctx context.Context, id string) ([]*types.Combination, error) {
	if got, ok := ex.memoGet(id); ok {
		return got, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, ok := ex.ann.Plan.Node(id)
	if !ok {
		return nil, fmt.Errorf("engine: unknown node %q", id)
	}
	var (
		out []*types.Combination
		err error
	)
	switch n.Kind {
	case plan.KindInput:
		out = []*types.Combination{{Components: map[string]*types.Tuple{}}}
	case plan.KindOutput:
		out, err = ex.eval(ctx, ex.ann.Plan.Predecessors(id)[0])
	case plan.KindSelection:
		out, err = ex.evalSelection(ctx, id, n)
	case plan.KindService:
		out, err = ex.evalService(ctx, id, n)
	case plan.KindJoin:
		out, err = ex.evalJoin(ctx, id, n)
	default:
		err = fmt.Errorf("engine: unsupported node kind %v", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	ex.memoSet(id, out)
	return out, nil
}

func (ex *executor) evalSelection(ctx context.Context, id string, n *plan.Node) ([]*types.Combination, error) {
	in, err := ex.eval(ctx, ex.ann.Plan.Predecessors(id)[0])
	if err != nil {
		return nil, err
	}
	var out []*types.Combination
	for _, c := range in {
		keep, err := ex.satisfiesSelections(c, n.Selections)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, c)
		}
	}
	return out, nil
}

// satisfiesSelections evaluates selection predicates on a combination with
// existential semantics for repeating-group paths.
func (ex *executor) satisfiesSelections(c *types.Combination, preds []query.Predicate) (bool, error) {
	for _, p := range preds {
		rhs, err := ex.termValue(c, p.Right)
		if err != nil {
			return false, err
		}
		t, ok := c.Components[p.Left.Alias]
		if !ok {
			return false, nil
		}
		ok, err = pathSatisfies(t, p.Left.Path, p.Op, rhs)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// pathSatisfies evaluates "path op value" on one tuple: atomic paths
// directly, repeating-group paths existentially over the sub-tuples.
func pathSatisfies(t *types.Tuple, path string, op types.Op, v types.Value) (bool, error) {
	group, sub, dotted := strings.Cut(path, ".")
	if !dotted {
		return op.Eval(t.Get(path), v)
	}
	if _, isGroup := t.Groups[group]; !isGroup {
		return op.Eval(t.Get(path), v)
	}
	for _, gv := range t.GroupValues(group, sub) {
		ok, err := op.Eval(gv, v)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (ex *executor) termValue(c *types.Combination, term query.Term) (types.Value, error) {
	switch term.Kind {
	case query.TermConst:
		return term.Const, nil
	case query.TermInput:
		v, ok := ex.opts.Inputs[term.Input]
		if !ok {
			return types.Null, fmt.Errorf("engine: unbound input variable %s", term.Input)
		}
		return v, nil
	default:
		return c.Get(term.Path.Alias, term.Path.Path), nil
	}
}
