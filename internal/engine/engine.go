// Package engine executes fully instantiated query plans against live
// services: it walks the plan DAG, invokes services with inputs assembled
// from constants, INPUT variables and piped upstream values, runs pipe
// joins per incoming tuple (with concurrent service calls), runs parallel
// joins tile by tile under the node's join strategy, applies selections,
// and emits ranked combinations. Request-responses are counted per
// service, and an optional delay hook simulates per-call latency so
// wall-clock experiments can validate the execution-time cost model.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// Options configures one execution.
type Options struct {
	// Inputs binds the query's INPUT variables.
	Inputs map[string]types.Value
	// Weights is the ranking function (alias → weight); combinations are
	// scored incrementally as components accumulate.
	Weights map[string]float64
	// TargetK truncates the ranked output to the best K combinations
	// (0 = return everything the fetch factors produced).
	TargetK int
	// Parallelism bounds the concurrent service invocations of a pipe
	// join (default 8).
	Parallelism int
}

// Run is the outcome of one plan execution.
type Run struct {
	// Combinations are the result tuples in decreasing ranking order.
	Combinations []*types.Combination
	// Calls counts request-responses per alias.
	Calls map[string]int64
	// Produced counts the combinations each plan node emitted — the
	// measured counterpart of the annotation engine's tout estimates.
	Produced map[string]int
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// TotalCalls sums the per-alias request-responses.
func (r *Run) TotalCalls() int64 {
	var sum int64
	for _, c := range r.Calls {
		sum += c
	}
	return sum
}

// Engine executes plans against a set of services keyed by query alias.
type Engine struct {
	counters map[string]*service.Counter
}

// New builds an engine over the given services. The delay hook, when
// non-nil, is invoked with the service's published latency on every fetch
// (pass time.Sleep for live pacing, nil for as-fast-as-possible runs).
func New(services map[string]service.Service, delay func(time.Duration)) *Engine {
	cs := make(map[string]*service.Counter, len(services))
	for alias, svc := range services {
		cs[alias] = service.NewCounter(svc, delay)
	}
	return &Engine{counters: cs}
}

// Counter exposes the per-alias request-response counter.
func (e *Engine) Counter(alias string) (*service.Counter, bool) {
	c, ok := e.counters[alias]
	return c, ok
}

// Execute runs the annotated plan and returns the ranked combinations.
func (e *Engine) Execute(ctx context.Context, a *plan.Annotated, opts Options) (*Run, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	for _, c := range e.counters {
		c.Reset()
	}
	start := time.Now()
	ex := &executor{engine: e, ann: a, opts: opts, memo: map[string][]*types.Combination{}}
	order, err := a.Plan.TopoSort()
	if err != nil {
		return nil, err
	}
	var outID string
	for _, id := range order {
		if n, _ := a.Plan.Node(id); n.Kind == plan.KindOutput {
			outID = id
		}
	}
	if outID == "" {
		return nil, fmt.Errorf("engine: plan has no output node")
	}
	combos, err := ex.eval(ctx, outID)
	if err != nil {
		return nil, err
	}
	ranked := append([]*types.Combination(nil), combos...)
	for _, c := range ranked {
		c.Rank(opts.Weights)
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if opts.TargetK > 0 && len(ranked) > opts.TargetK {
		ranked = ranked[:opts.TargetK]
	}
	run := &Run{
		Combinations: ranked,
		Calls:        map[string]int64{},
		Produced:     map[string]int{},
		Elapsed:      time.Since(start),
	}
	for alias, c := range e.counters {
		run.Calls[alias] = c.Fetches()
	}
	ex.mu.Lock()
	for id, combos := range ex.memo {
		run.Produced[id] = len(combos)
	}
	ex.mu.Unlock()
	return run, nil
}

// executor evaluates plan nodes bottom-up, memoizing shared predecessors
// (a selection node may feed several downstream services). The memo is
// mutex-guarded because the branches of a parallel join evaluate in
// concurrent goroutines; the branches themselves touch disjoint subgraphs
// (shared ancestors are pre-evaluated by evalBranches).
type executor struct {
	engine *Engine
	ann    *plan.Annotated
	opts   Options
	mu     sync.Mutex
	memo   map[string][]*types.Combination
}

func (ex *executor) memoGet(id string) ([]*types.Combination, bool) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	got, ok := ex.memo[id]
	return got, ok
}

func (ex *executor) memoSet(id string, out []*types.Combination) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.memo[id] = out
}

func (ex *executor) eval(ctx context.Context, id string) ([]*types.Combination, error) {
	if got, ok := ex.memoGet(id); ok {
		return got, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, ok := ex.ann.Plan.Node(id)
	if !ok {
		return nil, fmt.Errorf("engine: unknown node %q", id)
	}
	var (
		out []*types.Combination
		err error
	)
	switch n.Kind {
	case plan.KindInput:
		out = []*types.Combination{{Components: map[string]*types.Tuple{}}}
	case plan.KindOutput:
		out, err = ex.eval(ctx, ex.ann.Plan.Predecessors(id)[0])
	case plan.KindSelection:
		out, err = ex.evalSelection(ctx, id, n)
	case plan.KindService:
		out, err = ex.evalService(ctx, id, n)
	case plan.KindJoin:
		out, err = ex.evalJoin(ctx, id, n)
	default:
		err = fmt.Errorf("engine: unsupported node kind %v", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	ex.memoSet(id, out)
	return out, nil
}

func (ex *executor) evalSelection(ctx context.Context, id string, n *plan.Node) ([]*types.Combination, error) {
	in, err := ex.eval(ctx, ex.ann.Plan.Predecessors(id)[0])
	if err != nil {
		return nil, err
	}
	var out []*types.Combination
	for _, c := range in {
		keep, err := ex.satisfiesSelections(c, n.Selections)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, c)
		}
	}
	return out, nil
}

// satisfiesSelections evaluates selection predicates on a combination with
// existential semantics for repeating-group paths.
func (ex *executor) satisfiesSelections(c *types.Combination, preds []query.Predicate) (bool, error) {
	for _, p := range preds {
		rhs, err := ex.termValue(c, p.Right)
		if err != nil {
			return false, err
		}
		t, ok := c.Components[p.Left.Alias]
		if !ok {
			return false, nil
		}
		ok, err = pathSatisfies(t, p.Left.Path, p.Op, rhs)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// pathSatisfies evaluates "path op value" on one tuple: atomic paths
// directly, repeating-group paths existentially over the sub-tuples.
func pathSatisfies(t *types.Tuple, path string, op types.Op, v types.Value) (bool, error) {
	group, sub, dotted := strings.Cut(path, ".")
	if !dotted {
		return op.Eval(t.Get(path), v)
	}
	if _, isGroup := t.Groups[group]; !isGroup {
		return op.Eval(t.Get(path), v)
	}
	for _, gv := range t.GroupValues(group, sub) {
		ok, err := op.Eval(gv, v)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (ex *executor) termValue(c *types.Combination, term query.Term) (types.Value, error) {
	switch term.Kind {
	case query.TermConst:
		return term.Const, nil
	case query.TermInput:
		v, ok := ex.opts.Inputs[term.Input]
		if !ok {
			return types.Null, fmt.Errorf("engine: unbound input variable %s", term.Input)
		}
		return v, nil
	default:
		return c.Get(term.Path.Alias, term.Path.Path), nil
	}
}
