package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"seco/internal/cost"
	"seco/internal/join"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/synth"
	"seco/internal/types"
)

// referenceEvaluate computes the formal query semantics of Section 3.1 by
// brute force: the largest set of composite tuples drawn from the full
// cross product of the services' rows that satisfies every selection and
// join predicate (with consistent repeating-group mappings per alias
// pair). It ignores access limitations, rankings, chunking and fetch
// budgets entirely — a semantics oracle the engine's output must be a
// subset of.
func referenceEvaluate(t *testing.T, q *query.Query, tables map[string]*service.Table,
	inputs map[string]types.Value) map[string]bool {
	t.Helper()
	aliases := q.Aliases()
	rows := make([][]*types.Tuple, len(aliases))
	for i, a := range aliases {
		rows[i] = drainTable(t, tables[a])
	}
	joins := q.JoinPredicates()
	result := map[string]bool{}
	combo := make([]*types.Tuple, len(aliases))
	var rec func(i int)
	rec = func(i int) {
		if i == len(aliases) {
			result[comboSig(aliases, combo)] = true
			return
		}
		for _, tu := range rows[i] {
			combo[i] = tu
			if refSatisfies(t, q, aliases, combo, i, joins, inputs) {
				rec(i + 1)
			}
		}
		combo[i] = nil
	}
	rec(0)
	return result
}

// refSatisfies checks all predicates whose aliases are bound among the
// first i+1 components.
func refSatisfies(t *testing.T, q *query.Query, aliases []string, combo []*types.Tuple,
	upto int, joins []query.Predicate, inputs map[string]types.Value) bool {
	t.Helper()
	bound := map[string]*types.Tuple{}
	for i := 0; i <= upto; i++ {
		bound[aliases[i]] = combo[i]
	}
	// Selections on the newly bound alias.
	for _, p := range q.SelectionsFor(aliases[upto]) {
		rhs := p.Right.Const
		if p.Right.Kind == query.TermInput {
			rhs = inputs[p.Right.Input]
		}
		ok, err := refPathSatisfies(bound[aliases[upto]], p.Left.Path, p.Op, rhs)
		if err != nil || !ok {
			return false
		}
	}
	// Join predicates with both sides bound, grouped per alias pair so
	// repeating-group mappings stay consistent.
	byPair := map[string]*join.Predicate{}
	pairTuples := map[string][2]*types.Tuple{}
	for _, p := range joins {
		lt, lok := bound[p.Left.Alias]
		rt, rok := bound[p.Right.Path.Alias]
		if !lok || !rok {
			continue
		}
		// Only re-check pairs involving the newly bound alias.
		if p.Left.Alias != aliases[upto] && p.Right.Path.Alias != aliases[upto] {
			continue
		}
		key := p.Left.Alias + "|" + p.Right.Path.Alias
		jp, ok := byPair[key]
		if !ok {
			jp = &join.Predicate{}
			byPair[key] = jp
			pairTuples[key] = [2]*types.Tuple{lt, rt}
		}
		jp.Conds = append(jp.Conds, join.Condition{
			Left: p.Left.Path, Op: p.Op, Right: p.Right.Path.Path,
		})
	}
	for key, jp := range byPair {
		ts := pairTuples[key]
		ok, err := jp.Match(ts[0], ts[1])
		if err != nil {
			t.Fatalf("reference predicate: %v", err)
		}
		if !ok {
			return false
		}
	}
	return true
}

// refPathSatisfies is the oracle's own path semantics (kept independent
// of the engine's compiled selections): atomic paths evaluate directly,
// dotted paths existentially over the group's sub-tuples, and a dotted
// path on a missing group resolves to Null.
func refPathSatisfies(tu *types.Tuple, path string, op types.Op, rhs types.Value) (bool, error) {
	g, sub, dotted := strings.Cut(path, ".")
	if !dotted {
		return op.Eval(tu.Get(path), rhs)
	}
	subs, ok := tu.Groups[g]
	if !ok {
		return op.Eval(types.Null, rhs)
	}
	for _, st := range subs {
		ok, err := op.Eval(st[sub], rhs)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// drainTable enumerates the rows of a workload table by invoking it for
// every plausible input value (Seed = 1 for roots, Key = 0..maxID for
// children) — the Table intentionally exposes no raw accessor, and the
// workload tables are small, so this stays cheap.
func drainTable(t *testing.T, tab *service.Table) []*types.Tuple {
	t.Helper()
	var all []*types.Tuple
	inputs := tab.Interface().InputPaths()
	tryInput := func(in service.Input) {
		inv, err := tab.Invoke(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		for {
			c, err := inv.Fetch(context.Background())
			if errors.Is(err, service.ErrExhausted) {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, c.Tuples...)
			if len(c.Tuples) == 0 {
				return
			}
		}
	}
	switch {
	case len(inputs) == 0:
		tryInput(nil)
	case inputs[0] == "Seed":
		tryInput(service.Input{"Seed": types.Int(1)})
	case inputs[0] == "Key":
		for id := int64(0); id < 500; id++ {
			tryInput(service.Input{"Key": types.Int(id)})
		}
	default:
		t.Fatalf("unexpected input paths %v", inputs)
	}
	return all
}

func comboSig(aliases []string, combo []*types.Tuple) string {
	parts := make([]string, len(aliases))
	for i, a := range aliases {
		parts[i] = fmt.Sprintf("%s=%d", a, combo[i].Get("Id").IntVal())
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

// Soundness oracle: every combination the engine produces for a random
// workload must belong to the brute-force semantics of Section 3.1, and
// whenever the semantics is non-empty the engine (with generous fetch
// factors) finds at least one combination.
func TestEngineSoundAgainstReferenceSemantics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n := 2 + int(seed%4)
		w, err := synth.RandomWorkload(seed, n)
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.Parse(w.QueryText)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Analyze(w.Registry); err != nil {
			t.Fatal(err)
		}
		ref := referenceEvaluate(t, q, w.Tables, w.Inputs)

		res, err := optimizer.Optimize(q, w.Registry, optimizer.Options{
			K: 1000, Metric: cost.RequestResponse{}, Stats: w.Stats, FixedInterfaces: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Complete the search space: rectangular joins, generous fetches.
		p := res.Plan.Clone()
		fetches := map[string]int{}
		for _, id := range p.NodeIDs() {
			node, _ := p.Node(id)
			if node.Kind == plan.KindJoin {
				node.Strategy.Completion = join.Rectangular
			}
			if node.Kind == plan.KindService && node.Stats.Chunked() {
				fetches[id] = 50
			}
		}
		a, err := plan.Annotate(p, fetches)
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(w.Services(), nil).Execute(context.Background(), a, Options{
			Inputs: w.Inputs, Weights: q.Weights,
		})
		if err != nil {
			t.Fatalf("seed %d: execute: %v", seed, err)
		}
		for _, c := range run.Combinations {
			sig := engineComboSig(c)
			if !ref[sig] {
				t.Errorf("seed %d: engine produced %s outside the reference semantics (%d ref combos)",
					seed, sig, len(ref))
			}
		}
		if len(ref) > 0 && len(run.Combinations) == 0 {
			t.Errorf("seed %d: reference has %d combinations, engine found none (topology %v)",
				seed, len(ref), res.Topology)
		}
	}
}

func engineComboSig(c *types.Combination) string {
	parts := make([]string, 0, len(c.Components))
	for a, tu := range c.Components {
		parts = append(parts, fmt.Sprintf("%s=%d", a, tu.Get("Id").IntVal()))
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}
