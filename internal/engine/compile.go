package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"seco/internal/fidelity"
	"seco/internal/plan"
	"seco/internal/plancheck"
)

// This file compiles a plan.Plan into the operator graph both driver
// policies execute: one Operator per plan node (input, selection, service
// scan, pipe join, parallel join), with fan-out nodes compiled once and
// shared through per-consumer tees. The graph also owns the run-wide
// bookkeeping the drivers read back: per-node emission counts, per-service
// fetch depths, the WaitGroup tracking every pipeline goroutine, and the
// close order of the operators.

// graph is the compiled operator graph of one execution.
type graph struct {
	ex *executor
	// wg tracks every goroutine the pipeline spawns (join-branch
	// prefetchers and pipe-window invocations); the drivers wait for it
	// after cancelling, so counters are quiescent before the Run is
	// assembled and before the operators are closed.
	wg      sync.WaitGroup
	emitted map[string]*atomic.Int64
	// depth counts request-responses per service node — the fetch depth
	// the node reached, reported by Degradation.FetchDepth.
	depth  map[string]*atomic.Int64
	shared map[string]*sharedOp
	// ops lists the compiled operators in build order (inputs before
	// consumers); shutdown closes them in reverse, output side first.
	ops   []Operator
	descs []plancheck.OpDesc
	// fid hands out the per-node candidate counters of the fidelity
	// accounting; nil (handing out nil counters) unless Options.Fidelity.
	fid *fidelity.Recorder

	outID  string
	rootID string
	root   Operator
}

// compile builds the operator graph rooted at the output node's single
// predecessor. It first fixes the run's alias layout — the compile-time
// alias → slot mapping every comb of this graph is indexed by.
func compile(ex *executor, outID string) (*graph, error) {
	preds := ex.ann.Plan.Predecessors(outID)
	if len(preds) != 1 {
		return nil, fmt.Errorf("engine: output node has %d predecessors", len(preds))
	}
	ex.layout = newAliasLayout(ex.ann.Plan, ex.opts.Weights)
	g := &graph{
		ex: ex, outID: outID, rootID: preds[0],
		emitted: map[string]*atomic.Int64{},
		depth:   map[string]*atomic.Int64{},
		shared:  map[string]*sharedOp{},
	}
	if ex.opts.Fidelity {
		g.fid = fidelity.NewRecorder(len(ex.ann.Plan.NodeIDs()))
	}
	root, err := g.operator(g.rootID)
	if err != nil {
		return nil, err
	}
	g.root = root
	return g, nil
}

// operator returns a reader for the node's output. Nodes with several
// plan successors get one backing operator and a per-consumer tee, so the
// node is evaluated once and its combinations (with their component tuple
// identities) are shared.
func (g *graph) operator(id string) (Operator, error) {
	n, ok := g.ex.ann.Plan.Node(id)
	if !ok {
		return nil, fmt.Errorf("engine: unknown node %q", id)
	}
	if len(g.ex.ann.Plan.Successors(id)) > 1 {
		sh, ok := g.shared[id]
		if !ok {
			src, err := g.makeOp(id, n)
			if err != nil {
				return nil, err
			}
			sh = &sharedOp{src: src}
			g.shared[id] = sh
		}
		return &teeOp{sh: sh}, nil
	}
	return g.makeOp(id, n)
}

// makeOp builds the node's operator (once per node), wraps it with the
// lifecycle-and-counting decorator, and records its description for the
// plancheck operator-graph verification.
func (g *graph) makeOp(id string, n *plan.Node) (Operator, error) {
	var (
		op   Operator
		kind string
		err  error
	)
	switch n.Kind {
	case plan.KindInput:
		op, kind = &inputOp{width: g.ex.layout.width()}, plancheck.OpInput
	case plan.KindSelection:
		var up Operator
		up, err = g.operator(g.ex.ann.Plan.Predecessors(id)[0])
		if err == nil {
			var sels []compiledSel
			sels, err = compileSelections(n.Selections, g.ex.layout)
			if err == nil {
				op, kind = &selectionOp{ex: g.ex, sels: sels, up: up}, plancheck.OpSelection
			}
		}
	case plan.KindService:
		op, err = g.makeServiceOp(id, n)
		kind = plancheck.OpScan
		if n.PipedFrom() {
			kind = plancheck.OpPipe
		}
	case plan.KindJoin:
		op, err = g.makeJoinOp(id, n)
		kind = plancheck.OpJoin
	case plan.KindMultiJoin:
		op, err = g.makeMultiJoinOp(id, n)
		kind = plancheck.OpMultiJoin
	default:
		err = fmt.Errorf("engine: unsupported node kind %v", n.Kind)
	}
	if err != nil {
		return nil, err
	}
	c := &atomic.Int64{}
	g.emitted[id] = c
	counted := &countedOp{inner: op, n: c}
	if tr := g.ex.opts.Trace; tr != nil {
		counted.sc = tr.Scope(id)
	}
	g.ops = append(g.ops, counted)
	g.descs = append(g.descs, plancheck.OpDesc{
		Node:   id,
		Kind:   kind,
		Inputs: append([]string(nil), g.ex.ann.Plan.Predecessors(id)...),
		Shared: len(g.ex.ann.Plan.Successors(id)) > 1,
	})
	return counted, nil
}

func (g *graph) makeServiceOp(id string, n *plan.Node) (Operator, error) {
	up, err := g.operator(g.ex.ann.Plan.Predecessors(id)[0])
	if err != nil {
		return nil, err
	}
	counter := g.ex.scope.Counter(n.Alias)
	if counter == nil {
		return nil, fmt.Errorf("engine: no service bound for alias %q", n.Alias)
	}
	budget := g.ex.ann.Fetches[id]
	if budget <= 0 {
		budget = 1
	}
	if !n.Stats.Chunked() {
		budget = 1
	}
	fixed, err := g.ex.fixedInputs(n)
	if err != nil {
		return nil, err
	}
	preds, err := compileSvcPreds(n, g.ex.layout)
	if err != nil {
		return nil, err
	}
	slot, err := g.ex.layout.slot(n.Alias)
	if err != nil {
		return nil, err
	}
	w := g.ex.opts.Weights[n.Alias]
	depth := &atomic.Int64{}
	g.depth[id] = depth
	// The service operators carry their trace scope and attach it to the
	// context of every Invoke/Fetch, so the per-call spans the Counter
	// emits — and any middleware events beneath it — land in this node's
	// lane. Scope is nil (and WithScope a no-op) when the run is untraced.
	sc := g.ex.opts.Trace.Scope(id)
	cand := g.fid.Counter(id)
	if n.PipedFrom() {
		if pagedFeedsMultiJoin(g.ex.ann.Plan, id) {
			return &pagedPipeOp{
				ex: g.ex, n: n, counter: counter, fixed: fixed,
				preds: preds, slot: slot, budget: budget, w: w,
				up: up, depth: depth, sc: sc, cand: cand,
				arena: newCombArena(g.ex.layout.width()),
			}, nil
		}
		return &pipeOp{
			g: g, ex: g.ex, n: n, counter: counter, fixed: fixed,
			preds: preds, slot: slot, budget: budget, w: w,
			par: g.ex.opts.Parallelism, up: up, depth: depth, sc: sc, cand: cand,
		}, nil
	}
	return &serviceOp{
		ex: g.ex, n: n, counter: counter, fixed: fixed,
		preds: preds, slot: slot, budget: budget, w: w, up: up, depth: depth, sc: sc,
		cand:  cand,
		arena: newCombArena(g.ex.layout.width()),
	}, nil
}

// describe reports the compiled graph for plancheck.CheckOpGraph.
func (g *graph) describe() plancheck.OpGraph {
	return plancheck.OpGraph{
		Root: g.rootID,
		Ops:  append([]plancheck.OpDesc(nil), g.descs...),
	}
}

// shutdown closes every operator, output side first. It must run after
// the drivers' cancel + wg.Wait, except that the operators' own Close
// implementations drain any goroutines still owning their inputs.
func (g *graph) shutdown() {
	for i := len(g.ops) - 1; i >= 0; i-- {
		_ = g.ops[i].Close()
	}
}
