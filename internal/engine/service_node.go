package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// evalService executes a service node. Piped services (some input value
// arrives from upstream tuples) are invoked once per incoming combination,
// with up to Options.Parallelism concurrent invocations — the pipe join of
// Section 4.2.1. Services whose inputs are all constants or INPUT
// variables are invoked exactly once and their results composed with every
// incoming combination, filtered by the node's join predicates (sequential
// composition).
func (ex *executor) evalService(ctx context.Context, id string, n *plan.Node) ([]*types.Combination, error) {
	in, err := ex.eval(ctx, ex.ann.Plan.Predecessors(id)[0])
	if err != nil {
		return nil, err
	}
	counter, ok := ex.engine.counters[n.Alias]
	if !ok {
		return nil, fmt.Errorf("engine: no service bound for alias %q", n.Alias)
	}
	fetches := ex.ann.Fetches[id]
	if fetches <= 0 {
		fetches = 1
	}
	if !n.Stats.Chunked() {
		fetches = 1
	}
	fixed, err := ex.fixedInputs(n)
	if err != nil {
		return nil, err
	}
	pairPreds := groupJoinPreds(n)

	if len(in) == 0 {
		// Nothing upstream to compose with: invoking the service would
		// spend request-responses on results that are discarded anyway.
		return nil, nil
	}

	if !n.PipedFrom() {
		tuples, _, err := fetchTuples(ctx, counter, fixed, fetches, n.Limit)
		if err != nil {
			return nil, err
		}
		var out []*types.Combination
		for _, c := range in {
			for _, tu := range tuples {
				merged, ok, err := ex.compose(c, n.Alias, tu, pairPreds)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, merged)
				}
			}
		}
		return out, nil
	}

	// Pipe join: one invocation per upstream combination, concurrently,
	// preserving upstream (ranking) order in the output.
	results := make([][]*types.Combination, len(in))
	errs := make([]error, len(in))
	sem := make(chan struct{}, ex.opts.Parallelism)
	var wg sync.WaitGroup
	for i, c := range in {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c *types.Combination) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], _, errs[i] = ex.pipeOne(ctx, n, counter, fixed, fetches, c, pairPreds)
		}(i, c)
	}
	wg.Wait()
	var out []*types.Combination
	for i := range in {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// pipeOne performs one piped invocation for an upstream combination,
// also reporting how many request-responses it issued.
func (ex *executor) pipeOne(ctx context.Context, n *plan.Node, counter *service.Counter,
	fixed service.Input, fetches int, c *types.Combination, pairPreds map[string]pairPred) ([]*types.Combination, int, error) {

	inBinding := fixed.Clone()
	if inBinding == nil {
		inBinding = service.Input{}
	}
	for _, b := range n.Bindings {
		if b.Source.Kind != query.BindJoin {
			continue
		}
		v := c.Get(b.Source.From.Alias, b.Source.From.Path)
		if v.IsNull() {
			return nil, 0, fmt.Errorf("engine: pipe into %s: upstream %s has no value",
				n.Alias, b.Source.From)
		}
		inBinding[b.Path] = v
	}
	tuples, fetched, err := fetchTuples(ctx, counter, inBinding, fetches, n.Limit)
	if err != nil {
		return nil, fetched, err
	}
	var out []*types.Combination
	for _, tu := range tuples {
		merged, ok, err := ex.compose(c, n.Alias, tu, pairPreds)
		if err != nil {
			return nil, fetched, err
		}
		if ok {
			out = append(out, merged)
		}
	}
	return out, fetched, nil
}

// fixedInputs assembles the constant and INPUT-variable bindings of a
// service node.
func (ex *executor) fixedInputs(n *plan.Node) (service.Input, error) {
	fixed := service.Input{}
	for _, b := range n.Bindings {
		switch b.Source.Kind {
		case query.BindConst:
			fixed[b.Path] = b.Source.Const
		case query.BindInput:
			v, ok := ex.opts.Inputs[b.Source.Input]
			if !ok {
				return nil, fmt.Errorf("engine: unbound input variable %s (service %s)",
					b.Source.Input, n.Alias)
			}
			fixed[b.Path] = v
		}
	}
	return fixed, nil
}

// fetchTuples invokes the service once and drains up to maxFetches chunks
// (all chunks when the service is unchunked), keeping at most limit tuples
// when limit > 0. It also reports the number of chunks fetched — the fetch
// depth reached into the service's ranked list.
func fetchTuples(ctx context.Context, svc service.Service, in service.Input, maxFetches, limit int) ([]*types.Tuple, int, error) {
	inv, err := svc.Invoke(ctx, in)
	if err != nil {
		return nil, 0, err
	}
	var tuples []*types.Tuple
	fetched := 0
	chunked := svc.Stats().Chunked()
	for f := 0; ; f++ {
		if chunked && f >= maxFetches {
			break
		}
		chunk, err := inv.Fetch(ctx)
		if errors.Is(err, service.ErrExhausted) {
			break
		}
		if err != nil {
			return nil, fetched, err
		}
		fetched++
		tuples = append(tuples, chunk.Tuples...)
		if limit > 0 && len(tuples) >= limit {
			tuples = tuples[:limit]
			break
		}
		if !chunked {
			break
		}
	}
	return tuples, fetched, nil
}

// compose merges a new component into a combination, checks the node's
// join predicates against the already-present components, and scores the
// result incrementally.
func (ex *executor) compose(c *types.Combination, alias string, tu *types.Tuple, preds map[string]pairPred) (*types.Combination, bool, error) {
	for _, pp := range preds {
		other, ok := c.Components[pp.otherAlias(alias)]
		if !ok {
			continue // the peer component joins later in the plan
		}
		ok, err := pp.match(alias, tu, other)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	merged := c.Merge(types.NewCombination(alias, tu))
	merged.Rank(ex.opts.Weights)
	return merged, true, nil
}
