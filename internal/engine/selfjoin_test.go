package engine

import (
	"context"
	"testing"

	"seco/internal/cost"
	"seco/internal/mart"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/synth"
	"seco/internal/types"
)

// The same service interface can occur several times in a query under
// different aliases (Section 3.1). A self-join pairing a comedy with a
// drama by the same director must run correctly through parser, optimizer
// and engine, with both aliases bound to the same physical service.
func TestSelfJoinSameInterfaceTwice(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Movies: 60, Theatres: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(`SameDirector:
		select Movie1 as M1, Movie1 as M2
		where M1.Genres.Genre = INPUT1 and M1.Language = INPUT7 and
		      M1.Openings.Country = INPUT2 and M1.Openings.Date > INPUT3 and
		      M2.Genres.Genre = INPUT8 and M2.Language = INPUT7 and
		      M2.Openings.Country = INPUT2 and M2.Openings.Date > INPUT3 and
		      M1.Director = M2.Director
		rank 0.5 M1, 0.5 M2`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Analyze(reg); err != nil {
		t.Fatal(err)
	}
	f, err := q.CheckFeasibility()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Feasible {
		t.Fatalf("self-join infeasible: %v", f.Unreachable)
	}
	mStats := plan.RunningExampleStats()["M"]
	res, err := optimizer.Optimize(q, reg, optimizer.Options{
		K: 5, Metric: cost.RequestResponse{},
		Stats:           map[string]service.Stats{"M1": mStats, "M2": mStats},
		FixedInterfaces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]types.Value{}
	for k, v := range world.Inputs {
		inputs[k] = v
	}
	inputs["INPUT8"] = types.String("Drama")
	e := New(map[string]service.Service{"M1": world.Movies, "M2": world.Movies}, nil)
	run, err := e.Execute(context.Background(), res.Annotated, Options{
		Inputs: inputs, Weights: q.Weights, TargetK: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Combinations) == 0 {
		t.Skip("no same-director comedy/drama pair in this world; seed-dependent")
	}
	for _, c := range run.Combinations {
		m1, m2 := c.Components["M1"], c.Components["M2"]
		if m1.Get("Director").Str() != m2.Get("Director").Str() {
			t.Errorf("self-join predicate violated: %v vs %v",
				m1.Get("Director"), m2.Get("Director"))
		}
	}
}
