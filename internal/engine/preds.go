package engine

import (
	"fmt"
	"sort"
	"strings"

	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/types"
)

// This file is the one home of the join-predicate plumbing shared by the
// service operators (sequential composition), the pipe operator and the
// parallel-join operator — all in compiled form: a node's predicates are
// grouped by alias pair once at compile time, their dotted paths are cut
// by join.Compile, and alias routing is resolved to layout slots, so the
// per-tuple hot loop performs no string cutting, map building or alias
// hashing. Branch merging (mergeBranches) checks shared-component
// identity before allocating, which is what keeps the parallel join's
// candidate explosion off the allocator.

// pairPred bundles the join conditions between one pair of aliases into a
// single join.Predicate so repeating-group mappings stay consistent across
// the pair's conditions (Section 3.1 semantics).
type pairPred struct {
	leftAlias, rightAlias string
	pred                  join.Predicate
}

// groupJoinPreds groups a node's join predicates by alias pair, in
// deterministic (left, right) alias order.
func groupJoinPreds(n *plan.Node) []pairPred {
	byKey := map[string]int{}
	var out []pairPred
	for _, p := range n.JoinPreds {
		if p.Right.Kind != query.TermPath {
			continue
		}
		la, ra := p.Left.Alias, p.Right.Path.Alias
		key := la + "|" + ra
		i, ok := byKey[key]
		if !ok {
			i = len(out)
			byKey[key] = i
			out = append(out, pairPred{leftAlias: la, rightAlias: ra})
		}
		out[i].pred.Conds = append(out[i].pred.Conds, join.Condition{
			Left: p.Left.Path, Op: p.Op, Right: p.Right.Path.Path,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].leftAlias != out[j].leftAlias {
			return out[i].leftAlias < out[j].leftAlias
		}
		return out[i].rightAlias < out[j].rightAlias
	})
	return out
}

// svcPred is one compiled pair predicate as seen from a service node: the
// new component is matched against the already-present peer component at
// otherSlot, on whichever predicate side the node's alias occupies.
type svcPred struct {
	cp        *join.CompiledPredicate
	selfLeft  bool
	otherSlot int
}

// compileSvcPreds compiles a service node's pair predicates against the
// layout.
func compileSvcPreds(n *plan.Node, layout *aliasLayout) ([]svcPred, error) {
	pps := groupJoinPreds(n)
	out := make([]svcPred, 0, len(pps))
	for _, pp := range pps {
		sp := svcPred{cp: join.Compile(pp.pred), selfLeft: n.Alias == pp.leftAlias}
		other := pp.leftAlias
		if sp.selfLeft {
			other = pp.rightAlias
		}
		slot, err := layout.slot(other)
		if err != nil {
			return nil, err
		}
		sp.otherSlot = slot
		out = append(out, sp)
	}
	return out, nil
}

// match evaluates the predicate with the node's own tuple on whichever
// side it belongs to.
func (sp *svcPred) match(selfT, otherT *types.Tuple) (bool, error) {
	if sp.selfLeft {
		return sp.cp.Match(selfT, otherT)
	}
	return sp.cp.Match(otherT, selfT)
}

// joinPred is one compiled pair predicate as seen from a parallel join:
// both alias slots resolved, plus the equality-column split the hash tile
// fill keys on (empty when the predicate is not a pure atomic equality).
type joinPred struct {
	cp                  *join.CompiledPredicate
	leftSlot, rightSlot int
	// eqLeft/eqRight are the per-condition atomic equality columns when
	// the predicate is hashable (HasOnlyAtomicEq); nil otherwise.
	eqLeft, eqRight []string
}

// compileJoinPreds compiles a join node's pair predicates against the
// layout.
func compileJoinPreds(n *plan.Node, layout *aliasLayout) ([]joinPred, error) {
	pps := groupJoinPreds(n)
	out := make([]joinPred, 0, len(pps))
	for _, pp := range pps {
		jp := joinPred{cp: join.Compile(pp.pred)}
		var err error
		if jp.leftSlot, err = layout.slot(pp.leftAlias); err != nil {
			return nil, err
		}
		if jp.rightSlot, err = layout.slot(pp.rightAlias); err != nil {
			return nil, err
		}
		if jp.cp.HasOnlyAtomicEq() {
			jp.eqLeft, jp.eqRight = jp.cp.EqKeyColumns()
		}
		out = append(out, jp)
	}
	return out, nil
}

// matchAcross evaluates the node's pair predicates between two combs
// about to be joined; predicates whose aliases are not split across the
// two sides are skipped (they were checked earlier).
func matchAcross(cl, cr *comb, preds []joinPred) (bool, error) {
	for i := range preds {
		jp := &preds[i]
		lt, rt := cl.comps[jp.leftSlot], cr.comps[jp.rightSlot]
		if lt != nil && rt != nil {
			ok, err := jp.cp.Match(lt, rt)
			if err != nil || !ok {
				return false, err
			}
			continue
		}
		lt2, rt2 := cr.comps[jp.leftSlot], cl.comps[jp.rightSlot]
		if lt2 != nil && rt2 != nil {
			ok, err := jp.cp.Match(lt2, rt2)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

// mergeBranches merges two combs whose branches may share upstream
// components (both sides of the travel plan's join carry the Conference
// and Weather tuples that fed them). Shared slots must hold the same
// component tuple — otherwise the pair stems from different upstream rows
// and does not join; the identity check runs before any allocation, so
// the (dominant) rejected candidates never touch the arena.
func mergeBranches(a *combArena, layout *aliasLayout, cl, cr *comb) (*comb, bool) {
	for i, t := range cr.comps {
		if t != nil && cl.comps[i] != nil && cl.comps[i] != t {
			return nil, false
		}
	}
	m := a.clone(cl)
	for i, t := range cr.comps {
		if t != nil {
			m.comps[i] = t
		}
	}
	layout.rank(m)
	return m, true
}

// compose merges a new component into a comb, checks the node's compiled
// pair predicates against the already-present peer components, and
// re-scores the result.
func compose(a *combArena, layout *aliasLayout, c *comb, slot int, tu *types.Tuple, preds []svcPred) (*comb, bool, error) {
	for i := range preds {
		sp := &preds[i]
		other := c.comps[sp.otherSlot]
		if other == nil {
			continue // the peer component joins later in the plan
		}
		ok, err := sp.match(tu, other)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	if c.comps[slot] != nil {
		panic(fmt.Sprintf("engine: duplicate slot %d in composition", slot))
	}
	m := a.clone(c)
	m.comps[slot] = tu
	layout.rank(m)
	return m, true, nil
}

// compiledSel is one selection predicate with its left path pre-cut and
// its alias resolved to a slot. The right term stays lazily resolved so
// unbound-input errors keep surfacing at evaluation time, as before.
type compiledSel struct {
	src    query.Predicate
	slot   int
	op     types.Op
	dotted bool
	atom   string
	group  string
	sub    string
	// Right-hand term, pre-resolved where possible.
	constV    types.Value
	isConst   bool
	inputName string
	rSlot     int // TermPath: peer component slot
	rDotted   bool
	rAtom     string
	rGroup    string
	rSub      string
	isPath    bool
}

// compileSelections compiles a selection node's predicates against the
// layout.
func compileSelections(preds []query.Predicate, layout *aliasLayout) ([]compiledSel, error) {
	out := make([]compiledSel, 0, len(preds))
	for _, p := range preds {
		cs := compiledSel{src: p, op: p.Op}
		slot, err := layout.slot(p.Left.Alias)
		if err != nil {
			return nil, err
		}
		cs.slot = slot
		if g, sub, ok := strings.Cut(p.Left.Path, "."); ok {
			cs.dotted, cs.group, cs.sub = true, g, sub
		} else {
			cs.atom = p.Left.Path
		}
		switch p.Right.Kind {
		case query.TermConst:
			cs.isConst, cs.constV = true, p.Right.Const
		case query.TermInput:
			cs.inputName = p.Right.Input
		default:
			cs.isPath = true
			if cs.rSlot, err = layout.slot(p.Right.Path.Alias); err != nil {
				return nil, err
			}
			if g, sub, ok := strings.Cut(p.Right.Path.Path, "."); ok {
				cs.rDotted, cs.rGroup, cs.rSub = true, g, sub
			} else {
				cs.rAtom = p.Right.Path.Path
			}
		}
		out = append(out, cs)
	}
	return out, nil
}

// rhs resolves the right-hand term of the selection against the comb.
func (cs *compiledSel) rhs(ex *executor, c *comb) (types.Value, error) {
	switch {
	case cs.isConst:
		return cs.constV, nil
	case cs.isPath:
		t := c.comps[cs.rSlot]
		if t == nil {
			return types.Null, nil
		}
		if cs.rDotted {
			return t.GroupFirst(cs.rGroup, cs.rSub), nil
		}
		return t.Atomic(cs.rAtom), nil
	default:
		v, ok := ex.opts.Inputs[cs.inputName]
		if !ok {
			return types.Null, fmt.Errorf("engine: unbound input variable %s", cs.inputName)
		}
		return v, nil
	}
}

// eval evaluates the selection on a comb: atomic paths directly,
// repeating-group paths existentially over the sub-tuples.
func (cs *compiledSel) eval(ex *executor, c *comb) (bool, error) {
	rhs, err := cs.rhs(ex, c)
	if err != nil {
		return false, err
	}
	t := c.comps[cs.slot]
	if t == nil {
		return false, nil
	}
	if !cs.dotted {
		return cs.op.Eval(t.Atomic(cs.atom), rhs)
	}
	subs, isGroup := t.Groups[cs.group]
	if !isGroup {
		// A dotted path on a tuple without that group resolves to Null,
		// exactly as the uncompiled Tuple.Get did.
		return cs.op.Eval(types.Null, rhs)
	}
	for _, st := range subs {
		ok, err := cs.op.Eval(st[cs.sub], rhs)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
