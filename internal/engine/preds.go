package engine

import (
	"seco/internal/join"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/types"
)

// This file is the one home of the join-predicate plumbing shared by the
// service operators (sequential composition), the pipe operator and the
// parallel-join operator: grouping a node's predicates by alias pair,
// evaluating them across the two sides of a join, and merging branch
// combinations that may share upstream components.

// pairPred bundles the join conditions between one pair of aliases into a
// single join.Predicate so repeating-group mappings stay consistent across
// the pair's conditions (Section 3.1 semantics).
type pairPred struct {
	leftAlias, rightAlias string
	pred                  join.Predicate
}

func (pp pairPred) otherAlias(self string) string {
	if self == pp.leftAlias {
		return pp.rightAlias
	}
	return pp.leftAlias
}

// match evaluates the predicate with self's tuple on whichever side it
// belongs to.
func (pp pairPred) match(self string, selfT, otherT *types.Tuple) (bool, error) {
	if self == pp.leftAlias {
		return pp.pred.Match(selfT, otherT)
	}
	return pp.pred.Match(otherT, selfT)
}

// groupJoinPreds groups a node's join predicates by alias pair.
func groupJoinPreds(n *plan.Node) map[string]pairPred {
	out := map[string]pairPred{}
	for _, p := range n.JoinPreds {
		if p.Right.Kind != query.TermPath {
			continue
		}
		la, ra := p.Left.Alias, p.Right.Path.Alias
		key := la + "|" + ra
		pp, ok := out[key]
		if !ok {
			pp = pairPred{leftAlias: la, rightAlias: ra}
		}
		pp.pred.Conds = append(pp.pred.Conds, join.Condition{
			Left: p.Left.Path, Op: p.Op, Right: p.Right.Path.Path,
		})
		out[key] = pp
	}
	return out
}

// matchAcross evaluates the node's pair predicates between two
// combinations about to be joined; predicates whose aliases are not split
// across the two sides are skipped (they were checked earlier).
func matchAcross(cl, cr *types.Combination, preds map[string]pairPred) (bool, error) {
	for _, pp := range preds {
		lt, lInLeft := cl.Components[pp.leftAlias]
		rt, rInRight := cr.Components[pp.rightAlias]
		if lInLeft && rInRight {
			ok, err := pp.pred.Match(lt, rt)
			if err != nil || !ok {
				return false, err
			}
			continue
		}
		lt2, lInRight := cr.Components[pp.leftAlias]
		rt2, rInLeft := cl.Components[pp.rightAlias]
		if lInRight && rInLeft {
			ok, err := pp.pred.Match(lt2, rt2)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

// mergeBranches merges two combinations whose branches may share upstream
// components (both sides of the travel plan's join carry the Conference
// and Weather tuples that fed them). Shared aliases must hold the same
// component tuple — otherwise the pair stems from different upstream rows
// and does not join; disjoint aliases union.
func mergeBranches(cl, cr *types.Combination) (*types.Combination, bool) {
	merged := &types.Combination{Components: make(map[string]*types.Tuple, len(cl.Components)+len(cr.Components))}
	for a, t := range cl.Components {
		merged.Components[a] = t
	}
	for a, t := range cr.Components {
		if existing, shared := merged.Components[a]; shared {
			if existing != t {
				return nil, false
			}
			continue
		}
		merged.Components[a] = t
	}
	return merged, true
}
