package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"seco/internal/mart"
	"seco/internal/optimizer"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/synth"
	"seco/internal/types"
)

// runBoth executes the same annotated plan with the streaming and the
// materializing executor (fresh engines, so counters don't interfere).
func runBoth(t testing.TB, services map[string]service.Service, a *plan.Annotated, opts Options) (stream, mat *Run) {
	t.Helper()
	sOpts, mOpts := opts, opts
	sOpts.Materialize = false
	mOpts.Materialize = true
	var err error
	stream, err = New(services, nil).Execute(context.Background(), a, sOpts)
	if err != nil {
		t.Fatalf("streaming execute: %v", err)
	}
	mat, err = New(services, nil).Execute(context.Background(), a, mOpts)
	if err != nil {
		t.Fatalf("materializing execute: %v", err)
	}
	return stream, mat
}

// scoreSig renders the result scores as a sorted multiset signature.
func scoreSig(combos []*types.Combination) []float64 {
	out := make([]float64, len(combos))
	for i, c := range combos {
		out[i] = c.Score
	}
	sort.Float64s(out)
	return out
}

func sameScores(t *testing.T, label string, stream, mat []*types.Combination) {
	t.Helper()
	ss, ms := scoreSig(stream), scoreSig(mat)
	if len(ss) != len(ms) {
		t.Fatalf("%s: streaming returned %d combinations, materializing %d", label, len(ss), len(ms))
	}
	for i := range ss {
		if math.Abs(ss[i]-ms[i]) > 1e-9 {
			t.Fatalf("%s: score multiset differs at %d: %v vs %v", label, i, ss[i], ms[i])
		}
	}
}

func callsNoWorse(t *testing.T, label string, stream, mat *Run) {
	t.Helper()
	if stream.TotalCalls() > mat.TotalCalls() {
		t.Errorf("%s: streaming issued %d request-responses, materializing %d",
			label, stream.TotalCalls(), mat.TotalCalls())
	}
}

// A full drain of the streaming pipeline must reproduce the materializing
// executor's result set exactly (same combinations, same emission-derived
// order after ranking) on the running example.
func TestStreamingFullDrainMatchesMaterializingMovieNight(t *testing.T) {
	e, p, q, world := fixture(t)
	_ = e
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights}
	stream, mat := runBoth(t, world.Services(), a, opts)
	sameScores(t, "movienight full drain", stream.Combinations, mat.Combinations)
	callsNoWorse(t, "movienight full drain", stream, mat)
	if stream.Halted {
		t.Error("full drain reported Halted")
	}
	// Component-level identity, not just scores.
	sigs := map[string]int{}
	for _, c := range mat.Combinations {
		sigs[comboKey(c)]++
	}
	for _, c := range stream.Combinations {
		sigs[comboKey(c)]--
	}
	for k, n := range sigs {
		if n != 0 {
			t.Errorf("combination sets differ (%+d): %s", n, k)
		}
	}
}

// Same equivalence on the travel plan, which exercises pipes, selections,
// fan-out shared ancestors and a rectangular join.
func TestStreamingFullDrainMatchesMaterializingTravel(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights}
	stream, mat := runBoth(t, world.Services(), a, opts)
	sameScores(t, "travel full drain", stream.Combinations, mat.Combinations)
	callsNoWorse(t, "travel full drain", stream, mat)
}

// With a TargetK the streaming engine must return the same top-K score
// multiset as the materializing path at every K, never spending more
// request-responses.
func TestStreamingTopKMatchesMaterializing(t *testing.T) {
	_, p, q, world := fixture(t)
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, 10, 25} {
		opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: k}
		stream, mat := runBoth(t, world.Services(), a, opts)
		label := fmt.Sprintf("movienight K=%d", k)
		sameScores(t, label, stream.Combinations, mat.Combinations)
		callsNoWorse(t, label, stream, mat)
		t.Logf("%s: streaming %d calls (halted=%v, saved=%.1f), materializing %d",
			label, stream.TotalCalls(), stream.Halted, stream.CallsSaved, mat.TotalCalls())
	}
}

// The acceptance criterion of the streaming executor: on the reference
// 3-service scenario with TargetK=5 it issues at least 30% fewer
// request-responses than the materializing engine while returning an
// identical top-5 combination set.
func TestStreamingTopKSavesCalls(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	// The chapter's world sizes (200 movies, 50 theatres — matching the
	// published curves) with a denser billboard, so the Shows join yields
	// a search space deep enough that draining it all is visibly wasteful.
	world, err := synth.NewMovieWorld(reg, synth.MovieConfig{Seed: 7, TitlesPerTheatre: 16})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, plan.Fig10Fetches())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Inputs: world.Inputs, Weights: q.Weights, TargetK: 5, Parallelism: 4}
	stream, mat := runBoth(t, world.Services(), a, opts)

	// Identical top-5 set (component identity, order included).
	if len(stream.Combinations) != len(mat.Combinations) {
		t.Fatalf("result sizes differ: %d vs %d", len(stream.Combinations), len(mat.Combinations))
	}
	for i := range stream.Combinations {
		if comboKey(stream.Combinations[i]) != comboKey(mat.Combinations[i]) {
			t.Errorf("top-5 differs at rank %d:\n  streaming    %s\n  materializing %s",
				i, comboKey(stream.Combinations[i]), comboKey(mat.Combinations[i]))
		}
	}

	sc, mc := stream.TotalCalls(), mat.TotalCalls()
	t.Logf("streaming: %d calls %v (halted=%v), materializing: %d calls %v",
		sc, stream.Calls, stream.Halted, mc, mat.Calls)
	if !stream.Halted {
		t.Error("streaming engine did not halt early")
	}
	if float64(sc) > 0.7*float64(mc) {
		t.Errorf("streaming issued %d request-responses, want ≤ 70%% of materializing's %d", sc, mc)
	}
}

// The streaming engine must agree with the materializing engine on
// optimizer-produced plans over randomized workloads, both full-drain and
// top-K (this also exercises the pipeline's concurrency under -race).
func TestStreamingMatchesMaterializingOnRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			n := 2 + int(seed%4)
			w, err := synth.RandomWorkload(seed, n)
			if err != nil {
				t.Fatal(err)
			}
			q, err := query.Parse(w.QueryText)
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Analyze(w.Registry); err != nil {
				t.Fatal(err)
			}
			res, err := optimizer.Optimize(q, w.Registry, optimizer.Options{
				K: 5, Stats: w.Stats, FixedInterfaces: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{0, 3} {
				opts := Options{Inputs: w.Inputs, Weights: q.Weights, TargetK: k}
				stream, mat := runBoth(t, w.Services(), res.Annotated, opts)
				label := fmt.Sprintf("K=%d", k)
				sameScores(t, label, stream.Combinations, mat.Combinations)
				callsNoWorse(t, label, stream, mat)
			}
		})
	}
}

// The empty-upstream bugfix: when every upstream combination is filtered
// out before a non-piped service node, the service must not be invoked at
// all — under both executors.
func TestServiceNotInvokedOnEmptyUpstream(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	// Make the weather selection unsatisfiable so sigma emits nothing and
	// the downstream Flight/Hotel services have an empty upstream.
	sigma, _ := p.Node("sigma")
	sigma.Selections = []query.Predicate{{
		Left:  query.PathRef{Alias: "W", Path: "AvgTemp"},
		Op:    types.OpGt,
		Right: query.Term{Kind: query.TermConst, Const: types.Float(1000)},
	}}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, materialize := range []bool{false, true} {
		run, err := New(world.Services(), nil).Execute(context.Background(), a, Options{
			Inputs: world.Inputs, Weights: q.Weights, Materialize: materialize,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Combinations) != 0 {
			t.Errorf("materialize=%v: unsatisfiable selection produced %d combinations",
				materialize, len(run.Combinations))
		}
		if run.Calls["F"] != 0 || run.Calls["H"] != 0 {
			t.Errorf("materialize=%v: services invoked on empty upstream: F=%d H=%d",
				materialize, run.Calls["F"], run.Calls["H"])
		}
	}
}

// DefaultChunkSize must reach the join re-chunking (observable through the
// result set staying correct and the option not being ignored — a size of
// 1 changes the tile structure drastically but not the full-drain output).
func TestDefaultChunkSizeOption(t *testing.T) {
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := plan.TravelPlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	world, err := synth.NewTravelWorld(reg, synth.TravelConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, map[string]int{"F": 2, "H": 2})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Inputs: world.Inputs, Weights: q.Weights, Materialize: true}
	def, err := New(world.Services(), nil).Execute(context.Background(), a, base)
	if err != nil {
		t.Fatal(err)
	}
	small := base
	small.DefaultChunkSize = 1
	tiny, err := New(world.Services(), nil).Execute(context.Background(), a, small)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, "default chunk size", tiny.Combinations, def.Combinations)
}
