package types

import (
	"strings"
	"testing"
)

func sampleTuple() *Tuple {
	t := NewTuple(0.8)
	t.Set("Title", String("Casablanca")).Set("Year", Int(1942))
	t.AddGroup("Genres", SubTuple{"Genre": String("Drama")})
	t.AddGroup("Genres", SubTuple{"Genre": String("Romance")})
	return t
}

func TestTupleGet(t *testing.T) {
	tup := sampleTuple()
	if got := tup.Get("Title"); !got.Equal(String("Casablanca")) {
		t.Errorf("Get(Title) = %v", got)
	}
	if got := tup.Get("Genres.Genre"); !got.Equal(String("Drama")) {
		t.Errorf("Get(Genres.Genre) = %v", got)
	}
	if got := tup.Get("Missing"); !got.IsNull() {
		t.Errorf("Get(Missing) = %v, want null", got)
	}
	if got := tup.Get("Nope.Sub"); !got.IsNull() {
		t.Errorf("Get(Nope.Sub) = %v, want null", got)
	}
}

func TestGroupValues(t *testing.T) {
	tup := sampleTuple()
	vals := tup.GroupValues("Genres", "Genre")
	if len(vals) != 2 || !vals[0].Equal(String("Drama")) || !vals[1].Equal(String("Romance")) {
		t.Errorf("GroupValues = %v", vals)
	}
	if got := tup.GroupValues("None", "X"); len(got) != 0 {
		t.Errorf("GroupValues on missing group = %v", got)
	}
}

func TestTupleClone(t *testing.T) {
	tup := sampleTuple()
	c := tup.Clone()
	c.Set("Title", String("Other"))
	c.Groups["Genres"][0]["Genre"] = String("Horror")
	if !tup.Get("Title").Equal(String("Casablanca")) {
		t.Error("clone shares Attrs map")
	}
	if !tup.Get("Genres.Genre").Equal(String("Drama")) {
		t.Error("clone shares group sub-tuples")
	}
	if c.Score != tup.Score {
		t.Error("clone lost score")
	}
}

func TestTupleStringStable(t *testing.T) {
	s1, s2 := sampleTuple().String(), sampleTuple().String()
	if s1 != s2 {
		t.Errorf("String not deterministic: %q vs %q", s1, s2)
	}
	for _, frag := range []string{"Title", "Casablanca", "Genres", "Drama"} {
		if !strings.Contains(s1, frag) {
			t.Errorf("String %q missing %q", s1, frag)
		}
	}
}

func TestCombinationMergeAndGet(t *testing.T) {
	m := NewCombination("M", sampleTuple())
	th := NewTuple(0.5)
	th.Set("Name", String("Odeon"))
	c := m.Merge(NewCombination("T", th))
	if got := c.Get("M", "Title"); !got.Equal(String("Casablanca")) {
		t.Errorf("Get(M.Title) = %v", got)
	}
	if got := c.Get("T", "Name"); !got.Equal(String("Odeon")) {
		t.Errorf("Get(T.Name) = %v", got)
	}
	if got := c.Get("X", "Name"); !got.IsNull() {
		t.Errorf("Get on missing alias = %v", got)
	}
	if as := c.Aliases(); len(as) != 2 || as[0] != "M" || as[1] != "T" {
		t.Errorf("Aliases = %v", as)
	}
}

func TestCombinationMergeDisjointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge with duplicate alias did not panic")
		}
	}()
	a := NewCombination("M", sampleTuple())
	a.Merge(NewCombination("M", sampleTuple()))
}

func TestCombinationRank(t *testing.T) {
	m := NewCombination("M", sampleTuple()) // score 0.8
	th := NewTuple(0.5)
	c := m.Merge(NewCombination("T", th))
	got := c.Rank(map[string]float64{"M": 0.3, "T": 0.5})
	want := 0.3*0.8 + 0.5*0.5
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Rank = %v, want %v", got, want)
	}
	if c.Score != got {
		t.Error("Rank did not store score")
	}
	// Unweighted alias contributes 0 (unranked services get weight 0).
	if got := c.Rank(map[string]float64{"M": 1}); got != 0.8 {
		t.Errorf("Rank with missing weight = %v, want 0.8", got)
	}
}

func TestCombinationString(t *testing.T) {
	c := NewCombination("M", sampleTuple())
	c.Rank(map[string]float64{"M": 1})
	s := c.String()
	if !strings.Contains(s, "score=0.8000") || !strings.Contains(s, "M=") {
		t.Errorf("String = %q", s)
	}
}
