package types

import "fmt"

// Op is a comparison operator of the query language (Section 3.1):
// {=, <, <=, >, >=, like}.
type Op int

const (
	// OpEq is equality (=).
	OpEq Op = iota
	// OpLt is less-than (<).
	OpLt
	// OpLe is less-or-equal (<=).
	OpLe
	// OpGt is greater-than (>).
	OpGt
	// OpGe is greater-or-equal (>=).
	OpGe
	// OpLike is the case-insensitive pattern match.
	OpLike
)

// ParseOp parses the textual form of an operator.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "like", "LIKE":
		return OpLike, nil
	default:
		return 0, fmt.Errorf("types: unknown operator %q", s)
	}
}

// String returns the operator's source form.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "like"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Eval applies the operator to two values. Comparisons against null are
// false without error, matching the query semantics in which a missing
// attribute never satisfies a predicate.
func (op Op) Eval(a, b Value) (bool, error) {
	if a.IsNull() || b.IsNull() {
		return false, nil
	}
	if op == OpEq && a.iid != 0 && b.iid != 0 {
		// Both interned: handles are globally coherent, so equality is
		// one integer comparison (both sides are strings by construction).
		return a.iid == b.iid, nil
	}
	if op == OpLike {
		return a.Like(b)
	}
	c, err := a.Compare(b)
	if err != nil {
		return false, err
	}
	switch op {
	case OpEq:
		return c == 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("types: cannot evaluate operator %v", op)
	}
}

// Selectivity returns the default selectivity estimate for the operator,
// used by the annotation engine when no per-predicate statistics are
// registered. The figures follow the classical System R defaults.
func (op Op) Selectivity() float64 {
	switch op {
	case OpEq:
		return 0.1
	case OpLike:
		return 0.25
	default: // range comparators
		return 1.0 / 3.0
	}
}
