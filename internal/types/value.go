// Package types defines the value model shared by every layer of the SeCo
// stack: typed atomic values, comparison operators, tuples with repeating
// groups, and ranked composite tuples assembled by joins.
//
// The model follows Section 3.1 of the chapter: a tuple maps each attribute
// to a value; atomic attributes are single-valued while repeating groups are
// multi-valued (a set of sub-tuples). Composite tuples carry per-source
// scores in [0,1] and the provenance of each component.
package types

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the atomic value types supported by service attributes.
type Kind int

const (
	// KindNull is the zero Kind; it marks the absence of a value.
	KindNull Kind = iota
	// KindString is a UTF-8 string.
	KindString
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindBool is a boolean.
	KindBool
	// KindDate is a calendar timestamp (UTC).
	KindDate
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an immutable typed atomic value. The zero Value is the null
// value. Values of different numeric kinds (int, float) compare numerically
// with each other; all other cross-kind comparisons are errors.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	// iid is the intern handle of a canonicalized string value (see
	// intern.go); 0 means not interned. Handles are process-globally
	// coherent: equal handles ⟺ equal strings.
	iid uint32
	t   time.Time
}

// Null is the null value.
var Null = Value{}

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Date returns a date value (normalized to UTC).
func Date(t time.Time) Value { return Value{kind: KindDate, t: t.UTC()} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload; it is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload; for KindInt it returns the integer
// widened to float so numeric code can treat both uniformly.
func (v Value) FloatVal() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// BoolVal returns the boolean payload; it is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// Time returns the date payload; it is only meaningful for KindDate.
func (v Value) Time() time.Time { return v.t }

// String renders the value as in query literals: strings are quoted, dates
// use RFC 3339 date form, null renders as NULL.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return strconv.Quote(v.s)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindDate:
		return v.t.Format("2006-01-02")
	default:
		return "?"
	}
}

// Equal reports deep equality of two values. Numeric values of different
// kinds are equal when they denote the same number. Two interned values
// compare by handle — one integer comparison instead of a string walk.
func (v Value) Equal(w Value) bool {
	if v.iid != 0 && w.iid != 0 {
		return v.iid == w.iid
	}
	c, err := v.Compare(w)
	return err == nil && c == 0
}

// numeric reports whether the value is of a numeric kind.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders v against w, returning -1, 0 or +1. It returns an error
// for incompatible kinds or null operands (three-valued logic is handled by
// predicate evaluation, not by Compare).
func (v Value) Compare(w Value) (int, error) {
	if v.iid != 0 && v.iid == w.iid {
		return 0, nil
	}
	if v.kind == KindNull || w.kind == KindNull {
		return 0, fmt.Errorf("types: cannot compare null values")
	}
	if v.numeric() && w.numeric() {
		a, b := v.FloatVal(), w.FloatVal()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != w.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", v.kind, w.kind)
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s), nil
	case KindBool:
		switch {
		case v.b == w.b:
			return 0, nil
		case !v.b:
			return -1, nil
		default:
			return 1, nil
		}
	case KindDate:
		switch {
		case v.t.Before(w.t):
			return -1, nil
		case v.t.After(w.t):
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("types: cannot compare kind %s", v.kind)
	}
}

// Like implements the query language's "like" operator: a case-insensitive
// substring match with SQL-style % wildcards at either end. Both operands
// must be strings.
func (v Value) Like(pattern Value) (bool, error) {
	if v.kind != KindString || pattern.kind != KindString {
		return false, fmt.Errorf("types: like requires string operands, got %s like %s", v.kind, pattern.kind)
	}
	s := strings.ToLower(v.s)
	p := strings.ToLower(pattern.s)
	prefix := strings.HasPrefix(p, "%")
	suffix := strings.HasSuffix(p, "%")
	core := strings.Trim(p, "%")
	switch {
	case prefix && suffix:
		return strings.Contains(s, core), nil
	case prefix:
		return strings.HasSuffix(s, core), nil
	case suffix:
		return strings.HasPrefix(s, core), nil
	default:
		return s == p, nil
	}
}

// ParseValue parses a literal into a Value, trying bool, int, float and
// date (YYYY-MM-DD) in turn and falling back to string. Quoted literals are
// always strings.
func ParseValue(lit string) Value {
	if len(lit) >= 2 && (lit[0] == '"' || lit[0] == '\'') && lit[len(lit)-1] == lit[0] {
		return String(lit[1 : len(lit)-1])
	}
	switch lit {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	case "NULL", "null":
		return Null
	}
	if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(lit, 64); err == nil {
		return Float(f)
	}
	if t, err := time.Parse("2006-01-02", lit); err == nil {
		return Date(t)
	}
	return String(lit)
}
