package types

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternCanonicalHandles(t *testing.T) {
	a := Intern("Casablanca")
	b := Intern("Casablanca")
	if !a.Interned() || !b.Interned() {
		t.Fatal("interned values carry no handle")
	}
	if a.iid != b.iid {
		t.Errorf("same string interned twice: handles %d and %d", a.iid, b.iid)
	}
	c := Intern("Metropolis")
	if c.iid == a.iid {
		t.Error("distinct strings share a handle")
	}
	// Handle fast paths must agree with the byte-wise slow paths, in every
	// interned/uninterned pairing.
	plain := String("Casablanca")
	for _, pair := range [][2]Value{{a, b}, {a, plain}, {plain, a}, {a, c}} {
		cmpFast := pair[0].Equal(pair[1])
		cmpSlow := pair[0].Str() == pair[1].Str()
		if cmpFast != cmpSlow {
			t.Errorf("Equal(%v, %v) = %v, byte-wise %v", pair[0], pair[1], cmpFast, cmpSlow)
		}
		ok, err := OpEq.Eval(pair[0], pair[1])
		if err != nil || ok != cmpSlow {
			t.Errorf("OpEq(%v, %v) = %v %v, want %v", pair[0], pair[1], ok, err, cmpSlow)
		}
	}
	if n, err := a.Compare(b); err != nil || n != 0 {
		t.Errorf("Compare(interned, interned) = %d %v", n, err)
	}
}

func TestInternValuePassThrough(t *testing.T) {
	in := NewInterner()
	for _, v := range []Value{Int(3), Float(1.5), Bool(true)} {
		if got := in.Value(v); !got.Equal(v) || got.Interned() {
			t.Errorf("non-string %v changed by interning: %v", v, got)
		}
	}
	if got := in.Value(Null); !got.IsNull() || got.Interned() {
		t.Errorf("Null changed by interning: %v", got)
	}
	s := in.Value(String("x"))
	if !s.Interned() || s.Str() != "x" {
		t.Errorf("string not interned: %v", s)
	}
	if again := in.Value(s); again.iid != s.iid {
		t.Error("re-interning an interned value changed its handle")
	}
}

func TestInternerTupleSemantics(t *testing.T) {
	in := NewInterner()
	tu := NewTuple(0.5)
	tu.Set("City", String("Rome"))
	tu.AddGroup("Openings", SubTuple{"Cinema": String("Odeon")})
	canon := in.Tuple(tu)
	if canon == tu {
		t.Fatal("uninterned tuple returned as its own canonical form")
	}
	if tu.Get("City").Interned() {
		t.Error("Interner.Tuple mutated the original")
	}
	if !canon.Get("City").Interned() || !canon.Get("Openings.Cinema").Interned() {
		t.Error("canonical copy not fully interned")
	}
	// A fully interned tuple is its own canonical form: pointer identity is
	// preserved, which the Share layer's memo relies on.
	if again := in.Tuple(canon); again != canon {
		t.Error("interned tuple was copied again")
	}
}

// TestInternRegistryHammer drives the global handle registry from many
// goroutines through separate Interner fronts, with heavily overlapping
// string sets. Run with -race. The invariant is process-wide handle
// coherence: equal strings always map to equal handles, regardless of
// which front interned them first.
func TestInternRegistryHammer(t *testing.T) {
	const workers = 8
	const strings = 200
	handles := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := NewInterner()
			handles[w] = make([]uint32, strings)
			for i := 0; i < strings; i++ {
				// Every worker interleaves the shared set with its private
				// strings, so shards see registration races and cache hits.
				v := in.String(fmt.Sprintf("shared-%d", i))
				_ = in.String(fmt.Sprintf("private-%d-%d", w, i))
				handles[w][i] = v.iid
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < strings; i++ {
			if handles[w][i] != handles[0][i] {
				t.Fatalf("worker %d got handle %d for shared-%d, worker 0 got %d",
					w, handles[w][i], i, handles[0][i])
			}
		}
	}
}
