package types

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a single result object produced by a service call. Atomic
// attributes map to a Value; repeating groups map to a slice of sub-tuples
// (each sub-tuple being a flat attribute→Value map). A Tuple also carries
// the score assigned by the producing service's scoring function, in [0,1].
type Tuple struct {
	// Attrs holds the atomic attribute values.
	Attrs map[string]Value
	// Groups holds repeating-group values: group name → set of sub-tuples.
	Groups map[string][]SubTuple
	// Score is the service-assigned relevance score in [0,1]; exact
	// (unranked) services assign a fixed constant.
	Score float64
}

// SubTuple is one member of a repeating group: sub-attribute name → value.
type SubTuple map[string]Value

// NewTuple returns an empty tuple with the given score.
func NewTuple(score float64) *Tuple {
	return &Tuple{
		Attrs:  make(map[string]Value),
		Groups: make(map[string][]SubTuple),
		Score:  score,
	}
}

// Get resolves a possibly dotted attribute path against the tuple.
// "A" resolves an atomic attribute. For a repeating-group path "R.A" Get
// returns the value of sub-attribute A in the first sub-tuple, which is
// only appropriate for display; predicate evaluation must use GroupValues
// to honour the existential single-sub-tuple semantics of Section 3.1.
// Hot paths that evaluate the same path repeatedly should cut it once and
// use Atomic/GroupFirst instead.
func (t *Tuple) Get(path string) Value {
	if group, sub, ok := strings.Cut(path, "."); ok {
		return t.GroupFirst(group, sub)
	}
	return t.Atomic(path)
}

// Atomic resolves an atomic attribute (Null when absent) without the
// dotted-path scan of Get.
func (t *Tuple) Atomic(name string) Value {
	if v, ok := t.Attrs[name]; ok {
		return v
	}
	return Null
}

// GroupFirst returns sub-attribute sub of the first sub-tuple of the
// repeating group (Null when the group is empty) — the pre-cut form of
// Get on a dotted path.
func (t *Tuple) GroupFirst(group, sub string) Value {
	subs := t.Groups[group]
	if len(subs) == 0 {
		return Null
	}
	return subs[0][sub]
}

// GroupValues returns all values of sub-attribute sub within repeating
// group group, one per sub-tuple, preserving order.
func (t *Tuple) GroupValues(group, sub string) []Value {
	subs := t.Groups[group]
	vals := make([]Value, 0, len(subs))
	for _, st := range subs {
		vals = append(vals, st[sub])
	}
	return vals
}

// Set assigns an atomic attribute.
func (t *Tuple) Set(attr string, v Value) *Tuple {
	t.Attrs[attr] = v
	return t
}

// AddGroup appends a sub-tuple to a repeating group.
func (t *Tuple) AddGroup(group string, st SubTuple) *Tuple {
	t.Groups[group] = append(t.Groups[group], st)
	return t
}

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() *Tuple {
	c := NewTuple(t.Score)
	for k, v := range t.Attrs {
		c.Attrs[k] = v
	}
	for g, subs := range t.Groups {
		cs := make([]SubTuple, len(subs))
		for i, st := range subs {
			m := make(SubTuple, len(st))
			for k, v := range st {
				m[k] = v
			}
			cs[i] = m
		}
		c.Groups[g] = cs
	}
	return c
}

// String renders the tuple with attributes in sorted order, for stable
// test output.
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('{')
	keys := make([]string, 0, len(t.Attrs))
	for k := range t.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", k, t.Attrs[k])
	}
	groups := make([]string, 0, len(t.Groups))
	for g := range t.Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		if b.Len() > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:[", g)
		for i, st := range t.Groups[g] {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(subString(st))
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}

func subString(st SubTuple) string {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('<')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, st[k])
	}
	b.WriteByte('>')
	return b.String()
}

// Combination is a composite tuple t1·…·tn formed by joining component
// tuples from the query's services (Section 3.1). Components are keyed by
// the alias the query gave each service occurrence.
type Combination struct {
	// Components maps query alias → component tuple.
	Components map[string]*Tuple
	// Score is the value of the query's ranking function
	// f = w1·S1 + … + wn·Sn on this combination.
	Score float64
	// sorted caches the sorted alias list when the combination was built
	// through NewCombinationPre; Aliases falls back to sorting fresh
	// whenever the cache no longer matches Components.
	sorted []string
}

// NewCombination returns a combination holding a single component.
func NewCombination(alias string, t *Tuple) *Combination {
	return &Combination{Components: map[string]*Tuple{alias: t}}
}

// NewCombinationPre builds a combination whose sorted alias list is
// already known — the engine's result-materialization boundary resolves
// aliases from its compile-time layout, so Aliases and String never
// re-sort. aliases must be the keys of components in sorted order; the
// slice is retained.
func NewCombinationPre(components map[string]*Tuple, aliases []string, score float64) *Combination {
	return &Combination{Components: components, Score: score, sorted: aliases}
}

// Merge returns a new combination holding the union of components of c and
// d. Aliases must be disjoint; Merge panics otherwise, because joins in a
// well-formed plan never combine the same service occurrence twice.
func (c *Combination) Merge(d *Combination) *Combination {
	m := &Combination{Components: make(map[string]*Tuple, len(c.Components)+len(d.Components))}
	for a, t := range c.Components {
		m.Components[a] = t
	}
	for a, t := range d.Components {
		if _, dup := m.Components[a]; dup {
			panic(fmt.Sprintf("types: duplicate alias %q in combination merge", a))
		}
		m.Components[a] = t
	}
	return m
}

// Get resolves a qualified path "Alias.Attr" or "Alias.Group.Sub" against
// the combination.
func (c *Combination) Get(alias, path string) Value {
	t, ok := c.Components[alias]
	if !ok {
		return Null
	}
	return t.Get(path)
}

// Rank computes the weighted score w·S summed over components, writing it
// to c.Score and returning it. Aliases without a weight contribute 0, which
// realizes the chapter's rule that unranked services get weight 0.
func (c *Combination) Rank(weights map[string]float64) float64 {
	s := 0.0
	for alias, t := range c.Components {
		s += weights[alias] * t.Score
	}
	c.Score = s
	return s
}

// Aliases returns the component aliases in sorted order. Combinations
// built by the engine carry the list precomputed; callers must treat the
// returned slice as read-only.
func (c *Combination) Aliases() []string {
	if len(c.sorted) == len(c.Components) {
		return c.sorted
	}
	as := make([]string, 0, len(c.Components))
	for a := range c.Components {
		as = append(as, a)
	}
	sort.Strings(as)
	return as
}

// String renders the combination alias by alias in sorted order.
func (c *Combination) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[score=%.4f", c.Score)
	for _, a := range c.Aliases() {
		fmt.Fprintf(&b, " %s=%s", a, c.Components[a])
	}
	b.WriteByte(']')
	return b.String()
}
