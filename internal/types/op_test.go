package types

import (
	"testing"
	"testing/quick"
)

func TestParseOp(t *testing.T) {
	cases := map[string]Op{
		"=": OpEq, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
		"like": OpLike, "LIKE": OpLike,
	}
	for s, want := range cases {
		got, err := ParseOp(s)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParseOp(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseOp("!="); err == nil {
		t.Error("ParseOp(!=) succeeded, want error")
	}
}

func TestOpStringRoundTrip(t *testing.T) {
	for _, op := range []Op{OpEq, OpLt, OpLe, OpGt, OpGe, OpLike} {
		back, err := ParseOp(op.String())
		if err != nil || back != op {
			t.Errorf("round trip failed for %v: %v %v", op, back, err)
		}
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b Value
		want bool
	}{
		{OpEq, Int(2), Int(2), true},
		{OpEq, Int(2), Int(3), false},
		{OpLt, Int(2), Int(3), true},
		{OpLe, Int(3), Int(3), true},
		{OpGt, Int(4), Int(3), true},
		{OpGe, Int(2), Int(3), false},
		{OpLike, String("Milano"), String("mil%"), true},
	}
	for _, c := range cases {
		got, err := c.op.Eval(c.a, c.b)
		if err != nil {
			t.Fatalf("%v.Eval(%v,%v): %v", c.op, c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v.Eval(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestOpEvalNullIsFalse(t *testing.T) {
	for _, op := range []Op{OpEq, OpLt, OpLe, OpGt, OpGe, OpLike} {
		got, err := op.Eval(Null, Int(1))
		if err != nil || got {
			t.Errorf("%v.Eval(null,1) = %v,%v; want false,nil", op, got, err)
		}
		got, err = op.Eval(Int(1), Null)
		if err != nil || got {
			t.Errorf("%v.Eval(1,null) = %v,%v; want false,nil", op, got, err)
		}
	}
}

func TestOpEvalTypeError(t *testing.T) {
	if _, err := OpLt.Eval(String("a"), Int(1)); err == nil {
		t.Error("OpLt on mixed kinds succeeded, want error")
	}
}

func TestOpSelectivityInUnitRange(t *testing.T) {
	for _, op := range []Op{OpEq, OpLt, OpLe, OpGt, OpGe, OpLike} {
		s := op.Selectivity()
		if s <= 0 || s > 1 {
			t.Errorf("%v.Selectivity() = %v out of (0,1]", op, s)
		}
	}
}

func TestOpEvalComplementProperty(t *testing.T) {
	// For non-null ints, a<b is the complement of a>=b, and a>b of a<=b.
	f := func(a, b int64) bool {
		lt, _ := OpLt.Eval(Int(a), Int(b))
		ge, _ := OpGe.Eval(Int(a), Int(b))
		gt, _ := OpGt.Eval(Int(a), Int(b))
		le, _ := OpLe.Eval(Int(a), Int(b))
		return lt != ge && gt != le
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
