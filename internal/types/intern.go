package types

import (
	"sync"
	"sync/atomic"
)

// Value interning. At serving scale the engine compares join keys — mostly
// strings — millions of times per second, and every scenario repeats the
// same city names, titles and identifiers across tuples. Interning gives
// every distinct string one canonical backing array plus a small integer
// handle, so (a) repeated values share memory instead of duplicating it,
// and (b) equality between two interned values is one integer comparison
// instead of a byte-wise string compare.
//
// Handles are coherent process-wide: every Interner allocates them from
// one global registry, so two values interned through different Interners
// still satisfy "equal handles ⟺ equal strings". That makes the handle
// fast paths in Value.Equal, Value.Compare and Op.Eval unconditionally
// safe — there is no "wrong interner" failure mode, only the slow path
// for values that were never interned (iid 0).
//
// An Interner is the per-scope front of that registry: a read-mostly
// cache that keeps one engine's lookups off the global shards. The engine
// holds one Interner for its whole lifetime (shared across runs), which
// is what keeps the Share layer's memoized chunks canonical between
// queries.

// internRegistry is the process-global string → handle table, sharded to
// keep concurrent engines off one lock. The zero handle is reserved for
// "not interned".
const internShards = 32

var internRegistry [internShards]struct {
	mu sync.RWMutex
	m  map[string]Value
}

var internNext atomic.Uint32

// internShard picks the registry shard for a string (FNV-1a).
func internShard(s string) *struct {
	mu sync.RWMutex
	m  map[string]Value
} {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return &internRegistry[h%internShards]
}

// internGlobal returns the canonical interned Value for s, registering it
// on first sight.
func internGlobal(s string) Value {
	sh := internShard(s)
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[s]; ok {
		return v
	}
	if sh.m == nil {
		sh.m = make(map[string]Value, 64)
	}
	v = Value{kind: KindString, s: s, iid: internNext.Add(1)}
	sh.m[s] = v
	return v
}

// Interner is a per-scope interning front: a local cache over the global
// handle registry. It is safe for concurrent use. The zero Interner is
// not usable; construct with NewInterner.
type Interner struct {
	mu sync.RWMutex
	m  map[string]Value
}

// NewInterner returns an empty interning scope.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]Value, 256)}
}

// String interns s and returns the canonical string Value carrying its
// handle.
func (in *Interner) String(s string) Value {
	in.mu.RLock()
	v, ok := in.m[s]
	in.mu.RUnlock()
	if ok {
		return v
	}
	v = internGlobal(s)
	in.mu.Lock()
	in.m[v.s] = v
	in.mu.Unlock()
	return v
}

// Value returns v with its canonical interned form when v is a string;
// all other kinds (and already-interned strings) pass through unchanged.
func (in *Interner) Value(v Value) Value {
	if v.kind != KindString || v.iid != 0 {
		return v
	}
	return in.String(v.s)
}

// TupleInPlace rewrites the tuple's string values (atomic attributes and
// repeating-group sub-values) to their canonical interned forms. It
// mutates t and must only be called while the caller exclusively owns the
// tuple — e.g. at load time, before the tuple is served.
func (in *Interner) TupleInPlace(t *Tuple) {
	for k, v := range t.Attrs {
		if iv := in.Value(v); iv.iid != v.iid {
			t.Attrs[k] = iv
		}
	}
	for _, subs := range t.Groups {
		for _, st := range subs {
			for k, v := range st {
				if iv := in.Value(v); iv.iid != v.iid {
					st[k] = iv
				}
			}
		}
	}
}

// tupleInterned reports whether every string value in the tuple already
// carries an intern handle.
func tupleInterned(t *Tuple) bool {
	for _, v := range t.Attrs {
		if v.kind == KindString && v.iid == 0 {
			return false
		}
	}
	for _, subs := range t.Groups {
		for _, st := range subs {
			for _, v := range st {
				if v.kind == KindString && v.iid == 0 {
					return false
				}
			}
		}
	}
	return true
}

// Tuple returns a canonical interned form of t: t itself when every
// string value is already interned (the common case once services intern
// at load time), otherwise an interned deep copy. The original is never
// mutated, so it is safe on tuples shared with concurrent readers.
func (in *Interner) Tuple(t *Tuple) *Tuple {
	if tupleInterned(t) {
		return t
	}
	c := t.Clone()
	in.TupleInPlace(c)
	return c
}

// global is the default interning scope used by the package-level
// helpers; services that intern at load time share it, so their handles
// agree with every engine-scoped Interner.
var global = NewInterner()

// Intern interns s in the process-global scope.
func Intern(s string) Value { return global.String(s) }

// InternValue interns string values in the process-global scope.
func InternValue(v Value) Value { return global.Value(v) }

// InternTupleInPlace canonicalizes a tuple's string values in the
// process-global scope. The caller must exclusively own the tuple.
func InternTupleInPlace(t *Tuple) { global.TupleInPlace(t) }

// Interned reports whether the value carries an intern handle.
func (v Value) Interned() bool { return v.iid != 0 }

// Handle returns the value's intern handle (0 for values never interned).
// Handles are process-wide coherent — equal handles hold equal strings and
// interned equal strings share one handle — which is the property the
// multi-way ranked join's posting lists key on.
func (v Value) Handle() uint32 { return v.iid }
