package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", KindDate: "date",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind renders %q", got)
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null is not null")
	}
	if v := String("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("String: %v", v)
	}
	if v := Int(7); v.Kind() != KindInt || v.IntVal() != 7 || v.FloatVal() != 7 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.FloatVal() != 2.5 {
		t.Errorf("Float: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Errorf("Bool: %v", v)
	}
	day := time.Date(2009, 7, 1, 10, 0, 0, 0, time.FixedZone("CET", 3600))
	if v := Date(day); v.Kind() != KindDate || !v.Time().Equal(day) {
		t.Errorf("Date: %v", v)
	}
	if v := Date(day); v.Time().Location() != time.UTC {
		t.Error("Date did not normalize to UTC")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{String("ab"), `"ab"`},
		{Int(-3), "-3"},
		{Float(0.5), "0.5"},
		{Bool(false), "false"},
		{Date(time.Date(2009, 7, 1, 0, 0, 0, 0, time.UTC)), "2009-07-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Bool(true), Bool(false), 1},
		{Date(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)), Date(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)), -1},
		{Date(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)), Date(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)), 0},
		{Date(time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)), Date(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)), 1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	bad := [][2]Value{
		{Null, Int(1)},
		{Int(1), Null},
		{String("a"), Int(1)},
		{Bool(true), String("x")},
		{Date(time.Now()), Int(1)},
	}
	for _, p := range bad {
		if _, err := p[0].Compare(p[1]); err == nil {
			t.Errorf("Compare(%v,%v) succeeded, want error", p[0], p[1])
		}
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) != Float(2.0)")
	}
	if Int(2).Equal(String("2")) {
		t.Error("Int(2) == String(2)")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Casablanca", "%casa%", true},
		{"Casablanca", "casa%", true},
		{"Casablanca", "%casa", false},
		{"Casablanca", "%anca", true},
		{"Casablanca", "casablanca", true},
		{"Casablanca", "blanca", false},
		{"", "%", true},
	}
	for _, c := range cases {
		got, err := String(c.s).Like(String(c.p))
		if err != nil {
			t.Fatalf("Like(%q,%q): %v", c.s, c.p, err)
		}
		if got != c.want {
			t.Errorf("Like(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if _, err := Int(1).Like(String("%")); err == nil {
		t.Error("Like on int succeeded, want error")
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{`"hello"`, String("hello")},
		{`'hi'`, String("hi")},
		{"42", Int(42)},
		{"4.5", Float(4.5)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"NULL", Null},
		{"2009-07-01", Date(time.Date(2009, 7, 1, 0, 0, 0, 0, time.UTC))},
		{"Comedy", String("Comedy")},
	}
	for _, c := range cases {
		got := ParseValue(c.in)
		if got.Kind() != c.want.Kind() {
			t.Errorf("ParseValue(%q) kind = %v, want %v", c.in, got.Kind(), c.want.Kind())
			continue
		}
		if !got.IsNull() && !got.Equal(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Int(a).Compare(Int(b))
		y, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStringTotalOrderProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		ab, _ := String(a).Compare(String(b))
		bc, _ := String(b).Compare(String(c))
		ac, _ := String(a).Compare(String(c))
		if ab <= 0 && bc <= 0 {
			return ac <= 0 // transitivity
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
