package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for wall-mode tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestNilTracerAndScopeAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.Bind(nil, true) // must not panic
	sc := tr.Scope("x")
	if sc != nil {
		t.Fatal("nil tracer should hand out nil scopes")
	}
	sc.Event("e")
	sc.StartCall("c")(time.Second)
	sc.StartSpan("s", KindOperator)()
	if got := sc.Lane(); got != "" {
		t.Fatalf("nil scope lane = %q", got)
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 0 {
		t.Fatalf("nil tracer snapshot has %d spans", len(snap.Spans))
	}
}

func TestDeterministicCursorStamping(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	sc := tr.Scope("A")

	endOp := sc.StartSpan("operator", KindOperator)
	sc.StartCall("invoke")(0)
	sc.StartCall("fetch", KI("chunk", 1))(100 * time.Millisecond)
	sc.Event("retry", KI("attempt", 1))
	sc.StartCall("fetch", KI("chunk", 2))(50 * time.Millisecond)
	endOp(KI("emitted", 3))

	snap := tr.Snapshot()
	if !snap.Deterministic {
		t.Fatal("snapshot not marked deterministic")
	}
	// Sorted by (lane, seq): operator, invoke, fetch#1, retry, fetch#2.
	want := []struct {
		name  string
		start time.Duration
		dur   time.Duration
	}{
		{"operator", 0, 150 * time.Millisecond},
		{"invoke", 0, 0},
		{"fetch", 0, 100 * time.Millisecond},
		{"retry", 100 * time.Millisecond, 0},
		{"fetch", 100 * time.Millisecond, 50 * time.Millisecond},
	}
	if len(snap.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(snap.Spans), len(want))
	}
	for i, w := range want {
		sp := snap.Spans[i]
		if sp.Name != w.name || sp.Start != w.start || sp.Dur != w.dur {
			t.Errorf("span %d = %s [%v +%v], want %s [%v +%v]",
				i, sp.Name, sp.Start, sp.Dur, w.name, w.start, w.dur)
		}
	}
	// Cursor semantics: the operator span covers exactly the charged time.
	if snap.Spans[0].End() != 150*time.Millisecond {
		t.Errorf("operator end = %v", snap.Spans[0].End())
	}
}

func TestWallClockStamping(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	tr := NewTracer()
	tr.Bind(clk, false)
	sc := tr.Scope("A")

	clk.advance(10 * time.Millisecond)
	end := sc.StartCall("fetch")
	clk.advance(30 * time.Millisecond)
	end(time.Hour) // the charge is ignored in wall mode

	snap := tr.Snapshot()
	if snap.Deterministic {
		t.Fatal("wall-mode snapshot marked deterministic")
	}
	sp := snap.Spans[0]
	if sp.Start != 10*time.Millisecond || sp.Dur != 30*time.Millisecond {
		t.Fatalf("wall span = [%v +%v], want [10ms +30ms]", sp.Start, sp.Dur)
	}
}

func TestBindFirstWins(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	tr.Bind(&fakeClock{}, false) // must not flip the mode
	if !tr.Deterministic() {
		t.Fatal("second Bind overrode the first")
	}
}

func TestTracerConcurrentLanes(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	const lanes, calls = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := tr.Scope(string(rune('a' + i)))
			for j := 0; j < calls; j++ {
				sc.StartCall("fetch")(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Spans) != lanes*calls {
		t.Fatalf("got %d spans, want %d", len(snap.Spans), lanes*calls)
	}
	// Per lane: seq 0..calls-1, cursor advances by 1ms per call.
	perLane := map[string]int{}
	for _, sp := range snap.Spans {
		seq := perLane[sp.Lane]
		if sp.Seq != seq {
			t.Fatalf("lane %s: seq %d out of order (want %d)", sp.Lane, sp.Seq, seq)
		}
		if want := time.Duration(seq) * time.Millisecond; sp.Start != want {
			t.Fatalf("lane %s seq %d: start %v, want %v", sp.Lane, seq, sp.Start, want)
		}
		perLane[sp.Lane]++
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	sc := tr.Scope("A")
	sc.StartCall("fetch", KI("chunk", 1), KV("svc", "M"))(25 * time.Millisecond)
	sc.Event("chaos-fault", KV("kind", "transient"))

	snap := tr.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deterministic != snap.Deterministic || len(got.Spans) != len(snap.Spans) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, snap)
	}
	for i := range got.Spans {
		g, w := got.Spans[i], snap.Spans[i]
		if g.Lane != w.Lane || g.Name != w.Name || g.Kind != w.Kind ||
			g.Start != w.Start || g.Dur != w.Dur || g.Attrs["chunk"] != w.Attrs["chunk"] {
			t.Fatalf("span %d differs after round trip: %+v vs %+v", i, g, w)
		}
	}

	// Serialization is deterministic: same trace, same bytes.
	var again bytes.Buffer
	if err := snap.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		// buf was drained by ReadTrace; re-serialize the first for a
		// fair comparison.
		var first bytes.Buffer
		if err := snap.WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatal("WriteJSON not byte-stable for equal traces")
		}
	}
}

func TestWriteChromeShape(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	a, b := tr.Scope("A"), tr.Scope("B")
	endA := a.StartSpan("operator", KindOperator)
	a.StartCall("fetch")(10 * time.Millisecond)
	endA()
	b.Event("retry")

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TID   int               `json:"tid"`
			Dur   *int64            `json:"dur"`
			Scope string            `json:"s"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur == nil {
				t.Errorf("complete event %s without dur", ev.Name)
			}
		case "i":
			instant++
			if ev.Scope != "t" {
				t.Errorf("instant event %s scope = %q", ev.Name, ev.Scope)
			}
		}
	}
	if meta != 2 || complete != 2 || instant != 1 {
		t.Errorf("event mix M/X/i = %d/%d/%d, want 2/2/1", meta, complete, instant)
	}
}

func TestTraceSummary(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	sc := tr.Scope("M")
	sc.StartCall("invoke")(0)
	sc.StartCall("fetch", KI("chunk", 1))(100*time.Millisecond, KI("tuples", 5))
	sc.StartCall("fetch", KI("chunk", 3))(50*time.Millisecond, KI("tuples", 2))
	sc.Event("share-memo-hit", KI("chunk", 2))

	st := tr.Snapshot().Summary()["M"]
	if st.Invokes != 1 || st.Fetches != 2 || st.Tuples != 7 || st.Events != 1 {
		t.Errorf("summary counts = %+v", st)
	}
	if st.Busy != 150*time.Millisecond {
		t.Errorf("busy = %v", st.Busy)
	}
	if st.MaxChunk != 3 {
		t.Errorf("max chunk = %d", st.MaxChunk)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", LatencyBucketsMS)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	c.Add(1)
	g.Set(2)
	g.Add(3)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Text() != "" {
		t.Fatal("nil registry Text must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil registry JSON = %q", buf.String())
	}
}

func TestRegistryInstrumentsAndIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("seco.test.calls")
	c.Add(2)
	c.Add(3)
	if r.Counter("seco.test.calls") != c {
		t.Fatal("counter lookup not idempotent")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("seco.test.depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	h := r.Histogram("seco.test.lat", []float64{10, 20, 40})
	if r.Histogram("seco.test.lat", []float64{999}) != h {
		t.Fatal("histogram lookup not idempotent (first bounds must win)")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20, 40})
	// 10 samples in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if h.Count() != 20 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 200 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// p50 lands exactly on the first bucket's upper edge.
	if q := h.Quantile(0.50); q != 10 {
		t.Errorf("p50 = %v, want 10", q)
	}
	// p75 interpolates halfway into the second bucket: 10 + 10*0.5 = 15.
	if q := h.Quantile(0.75); q != 15 {
		t.Errorf("p75 = %v, want 15", q)
	}
	// Overflow samples report the last bound.
	h.Observe(1000)
	if q := h.Quantile(1.0); q != 40 {
		t.Errorf("p100 with overflow = %v, want 40", q)
	}
}

func TestRegistryTextAndJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("seco.b.calls").Add(3)
		r.Counter("seco.a.calls").Add(1)
		r.Gauge("seco.c.depth").Set(4)
		h := r.Histogram("seco.a.lat", []float64{10, 20})
		h.Observe(5)
		h.Observe(15)
		return r
	}
	r1, r2 := build(), build()
	if r1.Text() != r2.Text() {
		t.Fatal("Text not deterministic for equal registries")
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteJSON not deterministic for equal registries")
	}
	// Valid JSON with sorted keys and expvar-compatible scalar values.
	var m map[string]any
	if err := json.Unmarshal(b1.Bytes(), &m); err != nil {
		t.Fatalf("invalid registry JSON: %v", err)
	}
	if m["seco.a.calls"] != float64(1) || m["seco.b.calls"] != float64(3) || m["seco.c.depth"] != float64(4) {
		t.Fatalf("scalar values wrong: %v", m)
	}
	hist, ok := m["seco.a.lat"].(map[string]any)
	if !ok || hist["count"] != float64(2) {
		t.Fatalf("histogram JSON wrong: %v", m["seco.a.lat"])
	}
	// Text lines are sorted by instrument name.
	lines := strings.Split(strings.TrimSpace(r1.Text()), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("Text lines not sorted: %q >= %q", lines[i-1], lines[i])
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("seco.x.calls").Add(1)
				r.Histogram("seco.x.lat", LatencyBucketsMS).Observe(float64(j % 30))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("seco.x.calls").Value(); v != 800 {
		t.Fatalf("counter = %d, want 800", v)
	}
	if n := r.Histogram("seco.x.lat", LatencyBucketsMS).Count(); n != 800 {
		t.Fatalf("histogram count = %d, want 800", n)
	}
}

func TestScopeFromContext(t *testing.T) {
	tr := NewTracer()
	tr.Bind(nil, true)
	sc := tr.Scope("A")
	ctx := WithScope(context.Background(), sc)
	if got := ScopeFrom(ctx); got != sc {
		t.Fatal("ScopeFrom did not return the attached scope")
	}
	if got := ScopeFrom(context.Background()); got != nil {
		t.Fatal("ScopeFrom on a bare context must be nil")
	}
	// Attaching a nil scope leaves the context unchanged.
	if ctx2 := WithScope(ctx, nil); ctx2 != ctx {
		t.Fatal("WithScope(nil) should return the context unchanged")
	}
}

// TestDisabledPathZeroAlloc is the "observability off is free" guard:
// every instrumentation site degrades to a nil receiver, and the nil
// paths must not allocate — this is what keeps the engine's untraced
// benchmarks inside the <5% regression budget.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var sc *Scope
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		sc.Event("event")
		end := sc.StartCall("call")
		end(time.Millisecond)
		endSp := sc.StartSpan("span", KindOperator)
		endSp()
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("disabled observability path allocates %v per op", n)
	}
}
