package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBucketsMS are the default histogram bounds for per-call
// latency, in milliseconds. The seeded worlds publish latencies in the
// 60–200ms range, so the grid is dense there.
var LatencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 75, 100, 150, 250, 500, 1000, 2500}

// DepthBuckets are the default histogram bounds for chunk fetch depth
// (1-based chunk index per fetch).
var DepthBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Counter is a monotonically increasing metric. Nil counters are no-ops
// so instrumentation sites need no registry branching.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-anywhere metric. Nil gauges are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with explicit upper bounds
// plus an overflow bucket. Nil histograms are no-ops.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sample sum.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear
// interpolation within the containing bucket; samples in the overflow
// bucket report the last explicit bound. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.n == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := p * float64(h.n)
	var cum int64
	for i, c := range h.counts[:len(h.bounds)] {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= target {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

type histSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []bucketCount `json:"buckets"`
}

type bucketCount struct {
	Le string `json:"le"`
	N  int64  `json:"n"`
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := histSnapshot{
		Count: h.n,
		Sum:   h.sum,
		P50:   h.quantileLocked(0.50),
		P90:   h.quantileLocked(0.90),
		P99:   h.quantileLocked(0.99),
	}
	for i, b := range h.bounds {
		s.Buckets = append(s.Buckets, bucketCount{Le: trimFloat(b), N: h.counts[i]})
	}
	s.Buckets = append(s.Buckets, bucketCount{Le: "+Inf", N: h.counts[len(h.bounds)]})
	return s
}

// Registry is a named collection of instruments. Lookups create on
// first use; a nil *Registry hands out nil (no-op) instruments, so a
// metrics-less engine pays a nil check per site and nothing more.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The
// bucket bounds of the first creation win; they must be ascending.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Counters returns a snapshot of every counter's value by name, for
// programmatic rollups (e.g. summing the per-alias seco.hedge.*
// instruments) without going through a serialized dump.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// names returns all instrument names, sorted.
func (r *Registry) names() []string {
	var out []string
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteJSON emits the registry as one expvar-compatible JSON object:
// counters and gauges as numbers, histograms as objects with count,
// sum, interpolated quantiles and explicit buckets. Keys are sorted,
// so equal registry states serialize identically.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.Lock()
	names := r.names()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	var b strings.Builder
	b.WriteString("{")
	for i, name := range names {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		b.WriteString(strconv.Quote(name))
		b.WriteString(": ")
		switch {
		case counters[name] != nil:
			b.WriteString(strconv.FormatInt(counters[name].Value(), 10))
		case gauges[name] != nil:
			b.WriteString(strconv.FormatInt(gauges[name].Value(), 10))
		default:
			writeHistJSON(&b, hists[name].snapshot())
		}
	}
	if len(names) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistJSON(b *strings.Builder, s histSnapshot) {
	fmt.Fprintf(b, `{"count": %d, "sum": %s, "p50": %s, "p90": %s, "p99": %s, "buckets": {`,
		s.Count, trimFloat(s.Sum), trimFloat(s.P50), trimFloat(s.P90), trimFloat(s.P99))
	for i, bc := range s.Buckets {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %d", strconv.Quote(bc.Le), bc.N)
	}
	b.WriteString("}}")
}

// Text renders a deterministic line-per-instrument dump, suitable for
// embedding in Run.Metrics and for golden comparisons:
//
//	seco.invoker.fetches.M 12
//	seco.invoker.latency_ms.M count=12 sum=1440 p50=110 p99=119.8
func (r *Registry) Text() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := r.names()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range names {
		switch {
		case counters[name] != nil:
			fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
		case gauges[name] != nil:
			fmt.Fprintf(&b, "%s %d\n", name, gauges[name].Value())
		default:
			s := hists[name].snapshot()
			fmt.Fprintf(&b, "%s count=%d sum=%s p50=%s p90=%s p99=%s\n",
				name, s.Count, trimFloat(s.Sum), trimFloat(s.P50), trimFloat(s.P90), trimFloat(s.P99))
		}
	}
	return b.String()
}

// trimFloat renders a float compactly (no trailing zeros, no exponent
// for the magnitudes metrics use).
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
