package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Clock is the subset of the engine clock the tracer needs. The engine
// binds its own Clock (wall or virtual) at the start of a traced run.
type Clock interface {
	Now() time.Time
}

// SpanKind classifies a trace record.
type SpanKind string

const (
	// KindRun is the single root span covering a whole execution.
	KindRun SpanKind = "run"
	// KindOperator covers an operator's life from Open to Close.
	KindOperator SpanKind = "operator"
	// KindCall covers one service call (invoke or fetch).
	KindCall SpanKind = "call"
	// KindEvent is an instantaneous marker (retry, breaker transition,
	// cache hit, injected fault, degradation, ...).
	KindEvent SpanKind = "event"
)

// Span is one trace record. Start is an offset from the trace epoch
// (the clock reading when the tracer was bound to the run).
type Span struct {
	Lane  string            `json:"lane"`
	Name  string            `json:"name"`
	Kind  SpanKind          `json:"kind"`
	Seq   int               `json:"seq"`
	Start time.Duration     `json:"start_ns"`
	Dur   time.Duration     `json:"dur_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// End returns the span's exclusive end offset.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// KV builds a string attribute.
func KV(k, v string) Attr { return Attr{Key: k, Val: v} }

// KI builds an integer attribute.
func KI(k string, v int64) Attr { return Attr{Key: k, Val: strconv.FormatInt(v, 10)} }

// KD builds a duration attribute (rendered as time.Duration text).
func KD(k string, d time.Duration) Attr { return Attr{Key: k, Val: d.String()} }

// laneState is the per-lane bookkeeping: a record sequence number and,
// in deterministic mode, the lane-local time cursor.
type laneState struct {
	seq    int
	cursor time.Duration
}

// Tracer collects spans for one execution. It is safe for concurrent
// use by the pipeline's goroutines; a nil *Tracer (and the nil *Scope
// it hands out) is a valid no-op.
type Tracer struct {
	mu            sync.Mutex
	bound         bool
	deterministic bool
	clock         Clock
	epoch         time.Time
	lanes         map[string]*laneState
	spans         []Span
}

// NewTracer returns an empty tracer. It becomes active when the engine
// binds it to the run's clock.
func NewTracer() *Tracer {
	return &Tracer{lanes: map[string]*laneState{}}
}

// Bind attaches the tracer to the run's clock and fixes the stamping
// mode: deterministic (lane-local charged-time cursors) or wall (clock
// readings). The first Bind wins — a Tracer records exactly one run.
func (t *Tracer) Bind(clock Clock, deterministic bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bound {
		return
	}
	t.bound = true
	t.clock = clock
	t.deterministic = deterministic
	if clock != nil {
		t.epoch = clock.Now()
	}
}

// Deterministic reports the stamping mode fixed by Bind.
func (t *Tracer) Deterministic() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deterministic
}

// Scope returns the per-lane handle operators hold. Lanes are created
// on first use; a nil tracer returns a nil (still usable) scope.
func (t *Tracer) Scope(lane string) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, lane: lane}
}

func (t *Tracer) laneLocked(name string) *laneState {
	ls, ok := t.lanes[name]
	if !ok {
		ls = &laneState{}
		t.lanes[name] = ls
	}
	return ls
}

func (t *Tracer) now() time.Time {
	if t.clock != nil {
		return t.clock.Now()
	}
	return time.Time{}
}

// Snapshot returns the spans recorded so far, sorted by (lane, seq) so
// deterministic-mode traces serialize byte-identically.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return &Trace{}
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	det := t.deterministic
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Lane != spans[j].Lane {
			return spans[i].Lane < spans[j].Lane
		}
		return spans[i].Seq < spans[j].Seq
	})
	return &Trace{Deterministic: det, Spans: spans}
}

// Scope is an operator's handle into one trace lane. All methods are
// safe on a nil receiver, so untraced runs need no branching at the
// instrumentation sites.
type Scope struct {
	t    *Tracer
	lane string
}

// Lane names the scope's trace lane (empty on a nil scope).
func (s *Scope) Lane() string {
	if s == nil {
		return ""
	}
	return s.lane
}

// Event records an instantaneous marker in the lane.
func (s *Scope) Event(name string, attrs ...Attr) {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	var wall time.Time
	if !t.Deterministic() {
		wall = t.now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := t.laneLocked(s.lane)
	sp := Span{Lane: s.lane, Name: name, Kind: KindEvent, Seq: ls.seq, Attrs: attrMap(attrs, nil)}
	ls.seq++
	if t.deterministic {
		sp.Start = ls.cursor
	} else {
		sp.Start = wall.Sub(t.epoch)
	}
	t.spans = append(t.spans, sp)
}

// StartCall opens a leaf call span (service invoke or fetch) and
// returns its closer. The closer takes the latency charged to the call:
// in deterministic mode that charge is the span's duration and advances
// the lane cursor; in wall mode the duration is measured on the clock
// and the charge is ignored.
func (s *Scope) StartCall(name string, open ...Attr) func(charged time.Duration, close_ ...Attr) {
	return s.StartTimed(name, KindCall, open...)
}

// StartTimed is StartCall with an explicit span kind — the drivers use
// it to give the run span its measured elapsed time as the charge.
func (s *Scope) StartTimed(name string, kind SpanKind, open ...Attr) func(charged time.Duration, close_ ...Attr) {
	if s == nil || s.t == nil {
		return func(time.Duration, ...Attr) {}
	}
	t := s.t
	var wallStart time.Time
	if !t.Deterministic() {
		wallStart = t.now()
	}
	return func(charged time.Duration, close_ ...Attr) {
		var wallEnd time.Time
		if !t.Deterministic() {
			wallEnd = t.now()
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		ls := t.laneLocked(s.lane)
		sp := Span{Lane: s.lane, Name: name, Kind: kind, Seq: ls.seq, Attrs: attrMap(open, close_)}
		ls.seq++
		if t.deterministic {
			sp.Start = ls.cursor
			sp.Dur = charged
			ls.cursor += charged
		} else {
			sp.Start = wallStart.Sub(t.epoch)
			sp.Dur = wallEnd.Sub(wallStart)
		}
		t.spans = append(t.spans, sp)
	}
}

// StartSpan opens a container span (operator Open→Close, the run span)
// and returns its closer. Container spans do not advance the lane
// cursor; in deterministic mode they cover the cursor interval between
// open and close, so they nest around the lane's call spans.
func (s *Scope) StartSpan(name string, kind SpanKind, open ...Attr) func(close_ ...Attr) {
	if s == nil || s.t == nil {
		return func(...Attr) {}
	}
	t := s.t
	var wallStart time.Time
	if !t.Deterministic() {
		wallStart = t.now()
	}
	t.mu.Lock()
	ls := t.laneLocked(s.lane)
	seq := ls.seq
	ls.seq++
	startCursor := ls.cursor
	t.mu.Unlock()
	return func(close_ ...Attr) {
		var wallEnd time.Time
		if !t.Deterministic() {
			wallEnd = t.now()
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		ls := t.laneLocked(s.lane)
		sp := Span{Lane: s.lane, Name: name, Kind: kind, Seq: seq, Attrs: attrMap(open, close_)}
		if t.deterministic {
			sp.Start = startCursor
			sp.Dur = ls.cursor - startCursor
		} else {
			sp.Start = wallStart.Sub(t.epoch)
			sp.Dur = wallEnd.Sub(wallStart)
		}
		t.spans = append(t.spans, sp)
	}
}

func attrMap(open, close_ []Attr) map[string]string {
	if len(open)+len(close_) == 0 {
		return nil
	}
	m := make(map[string]string, len(open)+len(close_))
	for _, a := range open {
		m[a.Key] = a.Val
	}
	for _, a := range close_ {
		m[a.Key] = a.Val
	}
	return m
}
