package obs

import "context"

// scopeKey follows the service package's budgetKey pattern: an unexported
// key type so only this package can install or retrieve the scope.
type scopeKey struct{}

// WithScope attaches an operator's trace scope to the context it passes
// into the service layer. Middleware deep in the chain (retry, breaker,
// share, chaos) recovers it with ScopeFrom and emits events into the
// operator's lane. A nil scope returns ctx unchanged, so untraced runs
// allocate nothing.
func WithScope(ctx context.Context, s *Scope) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, s)
}

// ScopeFrom retrieves the trace scope installed by WithScope, or nil —
// and a nil *Scope is itself a valid no-op, so callers never branch.
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}
