// Package obs is the engine's zero-dependency observability layer:
// per-operator tracing, an atomic metrics registry, and the glue that
// lets every layer of the runtime (operators, drivers, invoker, share,
// resilience middleware, chaos injector) report what it is doing
// without knowing who is listening.
//
// The package has three deliberately separable parts:
//
//   - Tracing (trace.go, context.go): a Tracer collects Spans grouped
//     into lanes — one lane per plan node plus a synthetic "run" lane.
//     Operators hold a *Scope (tracer + lane) and attach it to the
//     context they pass into the service layer, so middleware deep in
//     the chain (retry loops, breakers, the chaos injector) can emit
//     events into the correct lane without any plumbing of its own.
//     All Scope methods are nil-safe: an untraced run pays only a nil
//     check per call site.
//
//   - Metrics (metrics.go): a Registry of named counters, gauges and
//     fixed-bucket histograms. Instruments are cheap (atomics; a short
//     mutex for histograms), nil-safe, and exported as expvar-style
//     JSON or a deterministic text dump.
//
//   - Export (export.go): a Trace snapshot serializes as structured
//     JSON or as Chrome trace_event format (load chrome://tracing or
//     https://ui.perfetto.dev), and aggregates into per-lane summaries
//     for the planviz -trace overlay.
//
// Clock stamping rule. The tracer is bound to the engine Clock at the
// start of a run. Under a wall clock, spans carry real clock readings.
// Under the engine's VirtualClock the tracer switches to deterministic
// mode: each lane keeps a local time cursor that advances only by the
// latency explicitly charged to that lane's calls, so the resulting
// trace depends on per-lane call order alone and is byte-identical
// across runs regardless of goroutine scheduling — the property the
// golden-file trace tests pin down.
package obs
