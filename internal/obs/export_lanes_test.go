package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

var updateLanesGolden = flag.Bool("update-lanes-golden", false, "rewrite the JSON-export lane golden")

// lanesFixture builds a deterministic two-lane trace with the span
// shapes Summary aggregates: invokes, fetches with chunk/tuples attrs,
// and an instant event.
func lanesFixture() *Trace {
	tr := NewTracer()
	tr.Bind(nil, true)
	a, b := tr.Scope("A"), tr.Scope("B")
	a.StartCall("invoke")(2 * time.Millisecond)
	a.StartCall("fetch", KI("chunk", 1), KI("tuples", 5))(10 * time.Millisecond)
	a.StartCall("fetch", KI("chunk", 2), KI("tuples", 3))(12 * time.Millisecond)
	a.Event("fidelity", KV("q", "1"))
	b.StartCall("invoke")(time.Millisecond)
	b.StartCall("fetch", KI("chunk", 1), KI("tuples", 7))(8 * time.Millisecond)
	return tr.Snapshot()
}

// TestJSONExportCarriesLaneTotals pins the fix for the JSON/Chrome
// asymmetry: the per-node tuple totals used to be derivable only from
// the Chrome export's span args. The JSON export now embeds a "lanes"
// object, and this test asserts it matches both Summary() and the
// totals recomputed from the Chrome export — so the two paths cannot
// drift apart again.
func TestJSONExportCarriesLaneTotals(t *testing.T) {
	snap := lanesFixture()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Lanes map[string]LaneStats `json:"lanes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	want := snap.Summary()
	if len(decoded.Lanes) != len(want) {
		t.Fatalf("lanes = %v, want %v", decoded.Lanes, want)
	}
	for lane, ws := range want {
		if decoded.Lanes[lane] != ws {
			t.Fatalf("lane %s: JSON export %+v, Summary %+v", lane, decoded.Lanes[lane], ws)
		}
	}

	// Recompute per-lane tuple totals from the Chrome export: resolve
	// tid → lane through the thread_name metadata, then sum the
	// "tuples" args of the fetch events.
	var chrome bytes.Buffer
	if err := snap.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TID   int               `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	laneOf := map[int]string{}
	for _, ev := range ct.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			laneOf[ev.TID] = ev.Args["name"]
		}
	}
	tuples := map[string]int{}
	for _, ev := range ct.TraceEvents {
		if ev.Phase != "X" || ev.Name != "fetch" {
			continue
		}
		n, err := strconv.Atoi(ev.Args["tuples"])
		if err != nil {
			t.Fatalf("fetch event without parsable tuples attr: %v", ev.Args)
		}
		tuples[laneOf[ev.TID]] += n
	}
	for lane, ws := range want {
		if tuples[lane] != ws.Tuples {
			t.Fatalf("lane %s: chrome export tuples %d, JSON export %d", lane, tuples[lane], ws.Tuples)
		}
	}

	// Golden: the JSON export shape (spans + lanes) is load-bearing for
	// external consumers; byte-compare against the committed form.
	golden := filepath.Join("testdata", "trace_lanes_json.golden")
	if *updateLanesGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-lanes-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), wantBytes) {
		t.Fatalf("JSON export drifted from golden %s:\n%s", golden, buf.String())
	}
}
