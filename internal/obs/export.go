package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Trace is an immutable snapshot of a tracer: the spans of one run,
// sorted by (lane, seq).
type Trace struct {
	Deterministic bool   `json:"deterministic"`
	Spans         []Span `json:"spans"`
}

// WriteJSON serializes the trace as structured JSON, including the
// per-lane activity totals of Summary — the same aggregates the Chrome
// export carries in its span args — so the two export paths expose the
// same tuple accounting. With sorted spans and map-keyed attrs
// (encoding/json sorts map keys) the output is byte-identical for equal
// traces.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		*Trace
		Lanes map[string]LaneStats `json:"lanes,omitempty"`
	}{tr, tr.Summary()})
}

// ReadTrace parses a trace previously written by WriteJSON.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("obs: decoding trace: %w", err)
	}
	return &tr, nil
}

// Lanes returns the distinct lane names in sorted order.
func (tr *Trace) Lanes() []string {
	seen := map[string]bool{}
	var out []string
	for _, sp := range tr.Spans {
		if !seen[sp.Lane] {
			seen[sp.Lane] = true
			out = append(out, sp.Lane)
		}
	}
	sort.Strings(out)
	return out
}

// chromeEvent is one Chrome trace_event record. Complete spans use
// ph "X" (ts+dur), instants ph "i", thread metadata ph "M".
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   *int64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the trace in Chrome trace_event format: one
// thread per lane (named via thread_name metadata), complete "X"
// events for run/operator/call spans and instant "i" events for
// markers. Timestamps are integer microseconds from the trace epoch.
func (tr *Trace) WriteChrome(w io.Writer) error {
	lanes := tr.Lanes()
	tid := make(map[string]int, len(lanes))
	ct := chromeTrace{DisplayUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, lane := range lanes {
		tid[lane] = i + 1
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   i + 1,
			Args:  map[string]string{"name": lane},
		})
	}
	for _, sp := range tr.Spans {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  string(sp.Kind),
			TS:   sp.Start.Microseconds(),
			PID:  1,
			TID:  tid[sp.Lane],
			Args: sp.Attrs,
		}
		if sp.Kind == KindEvent {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			d := sp.Dur.Microseconds()
			ev.Dur = &d
		}
		ct.TraceEvents = append(ct.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// LaneStats aggregates one lane's service activity for the planviz
// overlay: call counts, the latency charged to the lane, and the
// deepest chunk fetched.
type LaneStats struct {
	Invokes  int           `json:"invokes,omitempty"`
	Fetches  int           `json:"fetches,omitempty"`
	Tuples   int           `json:"tuples,omitempty"`
	Events   int           `json:"events,omitempty"`
	Busy     time.Duration `json:"busy_ns,omitempty"`
	MaxChunk int           `json:"max_chunk,omitempty"`
}

// Summary aggregates the trace per lane. Call spans named "invoke" and
// "fetch" feed the counts; fetch durations sum into Busy; the "chunk"
// attribute (1-based) feeds MaxChunk.
func (tr *Trace) Summary() map[string]LaneStats {
	out := map[string]LaneStats{}
	for _, sp := range tr.Spans {
		st := out[sp.Lane]
		switch {
		case sp.Kind == KindCall && sp.Name == "invoke":
			st.Invokes++
		case sp.Kind == KindCall && sp.Name == "fetch":
			st.Fetches++
			st.Busy += sp.Dur
			if v, err := strconv.Atoi(sp.Attrs["chunk"]); err == nil && v > st.MaxChunk {
				st.MaxChunk = v
			}
			if v, err := strconv.Atoi(sp.Attrs["tuples"]); err == nil {
				st.Tuples += v
			}
		case sp.Kind == KindEvent:
			st.Events++
		}
		out[sp.Lane] = st
	}
	return out
}
