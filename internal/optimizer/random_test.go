package optimizer

import (
	"encoding/json"
	"math"
	"testing"

	"seco/internal/cost"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/synth"
)

// parseWorkload parses, analyzes and feasibility-checks a random workload.
func parseWorkload(t *testing.T, seed int64, n int) (*query.Query, *synth.Workload) {
	t.Helper()
	w, err := synth.RandomWorkload(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(w.QueryText)
	if err != nil {
		t.Fatalf("seed %d: parse: %v\nquery: %s", seed, err, w.QueryText)
	}
	if err := q.Analyze(w.Registry); err != nil {
		t.Fatalf("seed %d: analyze: %v", seed, err)
	}
	f, err := q.CheckFeasibility()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Feasible {
		t.Fatalf("seed %d: generated workload infeasible: %v", seed, f.Unreachable)
	}
	return q, w
}

// Every generated workload parses, analyzes and stays feasible.
func TestRandomWorkloadsAlwaysFeasible(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		n := 2 + int(seed%6)
		parseWorkload(t, seed, n)
	}
}

// Branch and bound returns the exhaustive optimum on random query graphs
// of 3–6 services, across metrics — the randomized strengthening of E10.
func TestRandomWorkloadsBnBOptimal(t *testing.T) {
	metrics := []cost.Metric{cost.ExecutionTime{}, cost.RequestResponse{}, cost.Bottleneck{}}
	for seed := int64(0); seed < 12; seed++ {
		n := 3 + int(seed%4)
		for _, m := range metrics {
			q, w := parseWorkload(t, seed, n)
			exhaustive, err := Optimize(q, w.Registry, Options{
				K: 10, Metric: m, Stats: w.Stats, DisablePruning: true, FixedInterfaces: true,
			})
			if err != nil {
				t.Fatalf("seed %d %s exhaustive: %v", seed, m.Name(), err)
			}
			pruned, err := Optimize(q, w.Registry, Options{
				K: 10, Metric: m, Stats: w.Stats, FixedInterfaces: true,
				Heuristics: Heuristics{Topology: ParallelIsBetter},
			})
			if err != nil {
				t.Fatalf("seed %d %s pruned: %v", seed, m.Name(), err)
			}
			if math.Abs(exhaustive.Cost-pruned.Cost) > 1e-9 {
				t.Errorf("seed %d n=%d %s: exhaustive %v vs pruned %v (topologies %v vs %v)",
					seed, n, m.Name(), exhaustive.Cost, pruned.Cost,
					exhaustive.Topology, pruned.Topology)
			}
			if pruned.Explored > exhaustive.Explored {
				t.Errorf("seed %d %s: pruning explored more plans (%d > %d)",
					seed, m.Name(), pruned.Explored, exhaustive.Explored)
			}
		}
	}
}

// The anytime property on random graphs: a budget of one plan always
// yields a valid plan whose cost upper-bounds the optimum.
func TestRandomWorkloadsAnytime(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 3 + int(seed%4)
		q, w := parseWorkload(t, seed, n)
		first, err := Optimize(q, w.Registry, Options{
			K: 10, Metric: cost.ExecutionTime{}, Stats: w.Stats,
			MaxPlans: 1, FixedInterfaces: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := first.Plan.Validate(); err != nil {
			t.Errorf("seed %d: anytime plan invalid: %v", seed, err)
		}
		full, err := Optimize(q, w.Registry, Options{
			K: 10, Metric: cost.ExecutionTime{}, Stats: w.Stats, FixedInterfaces: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if full.Cost > first.Cost+1e-9 {
			t.Errorf("seed %d: full search worse than first plan (%v > %v)",
				seed, full.Cost, first.Cost)
		}
	}
}

// Optimized plans for random workloads survive a JSON round trip with
// identical annotations.
func TestRandomPlansJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		q, w := parseWorkload(t, seed, 3+int(seed%4))
		res, err := Optimize(q, w.Registry, Options{
			K: 10, Metric: cost.RequestResponse{}, Stats: w.Stats, FixedInterfaces: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		back, err := plan.UnmarshalPlan(data, w.Registry)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("seed %d: decoded plan invalid: %v", seed, err)
		}
		a1, err := plan.Annotate(res.Plan, res.Annotated.Fetches)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := plan.Annotate(back, res.Annotated.Fetches)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range res.Plan.NodeIDs() {
			if a1.Ann[id] != a2.Ann[id] {
				t.Errorf("seed %d: node %s annotation drifted: %+v vs %+v",
					seed, id, a1.Ann[id], a2.Ann[id])
			}
		}
	}
}

// Large random graphs stay tractable under an anytime budget: twelve
// services optimize within a bounded number of costed plans and still
// yield a valid result.
func TestLargeWorkloadAnytimeBudget(t *testing.T) {
	for seed := int64(100); seed < 103; seed++ {
		q, w := parseWorkload(t, seed, 12)
		res, err := Optimize(q, w.Registry, Options{
			K: 10, Metric: cost.ExecutionTime{}, Stats: w.Stats,
			MaxPlans: 50, FixedInterfaces: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Explored > 50 {
			t.Errorf("seed %d: budget ignored (%d plans)", seed, res.Explored)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("seed %d: budgeted plan invalid: %v", seed, err)
		}
		if len(res.Topology.Aliases()) != 12 {
			t.Errorf("seed %d: plan covers %d services", seed, len(res.Topology.Aliases()))
		}
	}
}

// Every explored topology respects the generated dependency structure:
// children never precede their parent.
func TestRandomWorkloadsTopologiesRespectDependencies(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 3 + int(seed%4)
		q, w := parseWorkload(t, seed, n)
		tops, err := EnumerateTopologies(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(tops) == 0 {
			t.Fatalf("seed %d: no topologies", seed)
		}
		for _, tp := range tops {
			pos := map[string]int{}
			for i, a := range tp.Aliases() {
				pos[a] = i
			}
			for child, parent := range w.Parents {
				if parent == "" {
					continue
				}
				if pos[child] < pos[parent] {
					t.Errorf("seed %d: topology %v places %s before its parent %s",
						seed, tp, child, parent)
				}
			}
		}
	}
}
