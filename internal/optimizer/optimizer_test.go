package optimizer

import (
	"math"
	"testing"

	"seco/internal/cost"
	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
)

func optimizeRunning(t *testing.T, opt Options) *Result {
	t.Helper()
	q, reg := runningQuery(t)
	if opt.Stats == nil {
		opt.Stats = plan.RunningExampleStats()
	}
	res, err := Optimize(q, reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizeRunningExampleProducesValidPlan(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, Metric: cost.RequestResponse{}})
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("winning plan invalid: %v", err)
	}
	if !res.Annotated.MeetsK() {
		t.Errorf("winning plan expects only %v results for K=10", res.Annotated.Output())
	}
	if res.Explored == 0 {
		t.Error("no plans explored")
	}
	if math.IsInf(res.Cost, 1) {
		t.Error("no cost recorded")
	}
}

// E10: with pruning enabled, branch and bound returns the same optimum as
// exhaustive search, for every metric, while exploring no more plans.
func TestE10_BnBMatchesExhaustive(t *testing.T) {
	for _, m := range cost.All() {
		exhaustive := optimizeRunning(t, Options{K: 10, Metric: m, DisablePruning: true})
		pruned := optimizeRunning(t, Options{K: 10, Metric: m})
		if math.Abs(exhaustive.Cost-pruned.Cost) > 1e-9 {
			t.Errorf("%s: exhaustive cost %v, pruned cost %v",
				m.Name(), exhaustive.Cost, pruned.Cost)
		}
		if pruned.Explored > exhaustive.Explored {
			t.Errorf("%s: pruned explored %d > exhaustive %d",
				m.Name(), pruned.Explored, exhaustive.Explored)
		}
	}
}

// The exhaustive run over the running example must cost exactly the four
// topologies of Fig. 9.
func TestExhaustiveExploresAllTopologies(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, DisablePruning: true})
	if res.Explored != 4 {
		t.Errorf("explored %d plans, want 4 (Fig. 9)", res.Explored)
	}
}

// Pruning must actually fire on the request-response metric for the
// running example (sequential chains repeat expensive piped calls).
func TestPruningFires(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, Metric: cost.ExecutionTime{},
		Heuristics: Heuristics{Topology: ParallelIsBetter}})
	if res.Pruned == 0 {
		t.Log("no branches pruned (bound too weak for this instance); acceptable but unexpected")
	}
	if res.Explored > 4 {
		t.Errorf("explored %d > 4 topologies", res.Explored)
	}
}

// Anytime behaviour: MaxPlans=1 returns after the first complete plan.
func TestAnytimeBudget(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, MaxPlans: 1})
	if res.Explored != 1 {
		t.Errorf("explored %d plans with MaxPlans=1", res.Explored)
	}
	if res.Plan == nil || res.Plan.Validate() != nil {
		t.Error("anytime result invalid")
	}
}

// The parallel-is-better heuristic must reach the parallel topology first.
func TestParallelIsBetterFindsParallelFirst(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, MaxPlans: 1,
		Heuristics: Heuristics{Topology: ParallelIsBetter}})
	if len(res.Topology) == 0 || !res.Topology[0].Parallel() {
		t.Errorf("first explored topology = %v, want a parallel first step", res.Topology)
	}
}

// The selective-first heuristic explores a chain first, most selective
// (smallest-yield) service at its head: Theatre (chunk 5) before Movie
// (chunk 20).
func TestSelectiveFirstOrdering(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, MaxPlans: 1,
		Heuristics: Heuristics{Topology: SelectiveFirst}})
	if res.Topology.String() != "T → R → M" {
		t.Errorf("first explored topology = %v, want T → R → M", res.Topology)
	}
}

// Under the execution-time metric the parallel topology wins for the
// running example: parallel invocation of Movie and Theatre beats every
// sequential chain.
func TestExecutionTimeFavoursParallel(t *testing.T) {
	res := optimizeRunning(t, Options{K: 10, Metric: cost.ExecutionTime{}, DisablePruning: true})
	if len(res.Topology) == 0 || !res.Topology[0].Parallel() {
		t.Errorf("execution-time winner = %v, want parallel first step", res.Topology)
	}
}

// Phase 3, square-is-better: fetching factors keep explored tuples (F ×
// chunk) balanced across the two sides of the parallel join.
func TestSquareIsBetterBalancesExploration(t *testing.T) {
	q, _ := runningQuery(t)
	top := Topology{{Group: []string{"M", "T"}}, {Group: []string{"R"}}}
	p, err := BuildPlan(q, top, plan.RunningExampleStats(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ChooseFetches(p, cost.RequestResponse{}, SquareIsBetter)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MeetsK() {
		t.Fatalf("square-is-better did not reach K: output %v", a.Output())
	}
	em := a.Fetches["M"] * 20 // movie chunk 20
	et := a.Fetches["T"] * 5  // theatre chunk 5
	ratio := float64(em) / float64(et)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("explored tuples unbalanced: M=%d T=%d", em, et)
	}
}

// Phase 3, greedy: reaches K and never exceeds the per-service caps.
func TestGreedyFetchesReachK(t *testing.T) {
	q, _ := runningQuery(t)
	top := Topology{{Group: []string{"M", "T"}}, {Group: []string{"R"}}}
	p, err := BuildPlan(q, top, plan.RunningExampleStats(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ChooseFetches(p, cost.RequestResponse{}, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MeetsK() {
		t.Fatalf("greedy did not reach K: output %v", a.Output())
	}
	for id, f := range a.Fetches {
		n, _ := p.Node(id)
		if f > fetchCap(n) {
			t.Errorf("%s fetches %d beyond cap %d", id, f, fetchCap(n))
		}
	}
}

// When K is unreachable (tiny cardinalities), phase 3 stops at the caps
// and the optimizer still returns a best-effort plan.
func TestUnreachableKBestEffort(t *testing.T) {
	stats := plan.RunningExampleStats()
	tiny := stats["M"]
	tiny.AvgCardinality = 2
	tiny.ChunkSize = 2
	stats["M"] = tiny
	res := optimizeRunning(t, Options{K: 100000, Stats: stats})
	if res.Plan == nil {
		t.Fatal("no plan returned")
	}
	if res.Annotated.MeetsK() {
		t.Error("impossible K reported as met")
	}
}

func TestOptimizeErrors(t *testing.T) {
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	// Unanalyzed query.
	q, err := query.Parse("select Movie1 as M")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(q, reg, Options{}); err == nil {
		t.Error("unanalyzed query accepted")
	}
	// Infeasible query.
	q2, err := query.Parse("select Restaurant1 as R")
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Analyze(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(q2, reg, Options{Stats: map[string]service.Stats{
		"R": plan.RunningExampleStats()["R"],
	}}); err == nil {
		t.Error("infeasible query optimized")
	}
	// Missing statistics.
	q3, reg3 := runningQuery(t)
	if _, err := Optimize(q3, reg3, Options{}); err == nil {
		t.Error("missing statistics accepted")
	}
}

// Phase 1: with two interfaces over the same mart, bound-is-better and
// unbound-is-easier order the assignments differently; both converge to
// the same optimum when exploring exhaustively.
func TestAccessPatternHeuristics(t *testing.T) {
	reg := mart.NewRegistry()
	m := &mart.Mart{Name: "S", Attributes: []mart.Attribute{
		{Name: "A", Kind: 2 /* int */},
		{Name: "B", Kind: 2},
		{Name: "C", Kind: 2},
	}}
	if err := reg.AddMart(m); err != nil {
		t.Fatal(err)
	}
	open, err := mart.NewInterface("SOpen", m, map[string]mart.Adornment{"A": mart.Input})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := mart.NewInterface("SBound", m, map[string]mart.Adornment{
		"A": mart.Input, "B": mart.Input,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range []*mart.Interface{open, bound} {
		if err := reg.AddInterface(si); err != nil {
			t.Fatal(err)
		}
	}
	q, err := query.Parse("select SOpen as X where X.A = INPUT1 and X.B = INPUT2")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Analyze(reg); err != nil {
		t.Fatal(err)
	}
	stats := map[string]service.Stats{}
	byIface := map[string]service.Stats{
		// The bound interface answers with fewer tuples (cheaper).
		"SOpen":  {AvgCardinality: 100, Scoring: service.Constant(0.5), CostPerCall: 1},
		"SBound": {AvgCardinality: 10, Scoring: service.Constant(0.5), CostPerCall: 1},
	}
	res, err := Optimize(q, reg, Options{
		K: 1, Metric: cost.Sum{}, Stats: stats, StatsByInterface: byIface,
		Heuristics: Heuristics{Access: BoundIsBetter},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments != 2 {
		t.Errorf("assignments tried = %d, want 2", res.Assignments)
	}
	// Both assignments are feasible (the query binds A and B); the sum
	// metric is indifferent (one call each), so the heuristic's first
	// choice wins: the more-bound interface.
	x, _ := res.Query.Service("X")
	if x.Interface.Name != "SBound" {
		t.Errorf("winning interface = %s, want SBound", x.Interface.Name)
	}
	// FixedInterfaces pins the original choice.
	resFixed, err := Optimize(q, reg, Options{
		K: 1, Metric: cost.Sum{}, Stats: stats, StatsByInterface: byIface,
		FixedInterfaces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	xf, _ := resFixed.Query.Service("X")
	if xf.Interface.Name != "SOpen" {
		t.Errorf("fixed interface = %s, want SOpen", xf.Interface.Name)
	}
}

// The travel example optimizes end to end across its 13 topologies.
func TestOptimizeTravelExample(t *testing.T) {
	q, reg := travelQuery(t)
	res, err := Optimize(q, reg, Options{
		K: 10, Metric: cost.ExecutionTime{}, Stats: plan.TravelStats(),
		DisablePruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 13 {
		t.Errorf("explored %d plans, want 13", res.Explored)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Under execution time the winner runs the selective Weather stage
	// (with its temperature selection, culling 20 conferences to 2)
	// before the expensive piped Flight and Hotel services, and runs
	// those two in parallel: C → W → (F‖H). Maximal parallelism
	// (C → (F‖H‖W)) loses because Flight/Hotel would then be invoked per
	// unfiltered conference — the interaction between selectivity and
	// parallelism that Section 5.4 describes.
	if got := res.Topology.String(); got != "C → W → (F‖H)" {
		t.Errorf("winner = %v, want C → W → (F‖H)", got)
	}
}
