package optimizer

import (
	"fmt"
	"math"
	"sort"

	"seco/internal/cost"
	"seco/internal/plan"
)

// FetchHeuristic selects how phase 3 increments fetching factors until the
// plan is expected to deliver K results (Section 5.5).
type FetchHeuristic int

const (
	// Greedy increments, at each iteration, the factor with the highest
	// sensitivity: expected gain in output tuples per unit of additional
	// cost under the optimization metric.
	Greedy FetchHeuristic = iota
	// SquareIsBetter increments the factor of the service that has
	// explored the fewest tuples so far (fetch × chunk), keeping the
	// explored regions of all binary joins square and equally sized.
	SquareIsBetter
)

// String names the heuristic.
func (h FetchHeuristic) String() string {
	switch h {
	case Greedy:
		return "greedy"
	case SquareIsBetter:
		return "square-is-better"
	default:
		return fmt.Sprintf("FetchHeuristic(%d)", int(h))
	}
}

// maxFetchIterations bounds the phase-3 climb; with per-service caps the
// loop always terminates long before this.
const maxFetchIterations = 10000

// ChooseFetches runs phase 3 on a complete plan: starting from the n-uple
// ⟨1,…,1⟩ it increments fetching factors per the heuristic until the
// annotated plan is expected to produce at least K combinations, every
// factor is capped by its service's cardinality, or the iteration bound is
// hit. It returns the annotated plan of the final assignment; MeetsK
// reports whether K was reached.
func ChooseFetches(p *plan.Plan, metric cost.Metric, h FetchHeuristic) (*plan.Annotated, error) {
	chunked := chunkedServiceIDs(p)
	fetches := map[string]int{}
	for _, id := range chunked {
		fetches[id] = 1
	}
	a, err := plan.Annotate(p, fetches)
	if err != nil {
		return nil, err
	}
	for iter := 0; iter < maxFetchIterations; iter++ {
		if a.Output() >= float64(p.K) || len(chunked) == 0 {
			return a, nil
		}
		id, ok := pickIncrement(p, a, metric, h, chunked, fetches)
		if !ok {
			return a, nil // every factor at its cap: best effort
		}
		fetches[id]++
		a, err = plan.Annotate(p, fetches)
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// chunkedServiceIDs returns the IDs of chunked service nodes, sorted.
func chunkedServiceIDs(p *plan.Plan) []string {
	var ids []string
	for _, id := range p.NodeIDs() {
		if n, _ := p.Node(id); n.Kind == plan.KindService && n.Stats.Chunked() {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// fetchCap bounds a service's useful fetching factor: beyond its average
// cardinality further chunks return nothing.
func fetchCap(n *plan.Node) int {
	if n.Stats.AvgCardinality <= 0 {
		return 1 << 20 // effectively unbounded
	}
	c := int(math.Ceil(n.Stats.AvgCardinality / float64(n.Stats.ChunkSize)))
	if c < 1 {
		c = 1
	}
	return c
}

// pickIncrement chooses the next factor to bump, or ok=false when all
// capped.
func pickIncrement(p *plan.Plan, a *plan.Annotated, metric cost.Metric,
	h FetchHeuristic, chunked []string, fetches map[string]int) (string, bool) {

	switch h {
	case SquareIsBetter:
		bestID, bestExplored := "", math.Inf(1)
		for _, id := range chunked {
			n, _ := p.Node(id)
			if fetches[id] >= fetchCap(n) {
				continue
			}
			explored := float64(fetches[id] * n.Stats.ChunkSize)
			if explored < bestExplored {
				bestID, bestExplored = id, explored
			}
		}
		return bestID, bestID != ""
	default: // Greedy
		baseOut, baseCost := a.Output(), metric.Cost(a)
		bestID, bestGain := "", -1.0
		for _, id := range chunked {
			n, _ := p.Node(id)
			if fetches[id] >= fetchCap(n) {
				continue
			}
			trial := cloneFetches(fetches)
			trial[id]++
			ta, err := plan.Annotate(p, trial)
			if err != nil {
				continue
			}
			dOut := ta.Output() - baseOut
			dCost := metric.Cost(ta) - baseCost
			if dCost <= 0 {
				dCost = 1e-9 // free progress: take it eagerly
			}
			gain := dOut / dCost
			if gain > bestGain {
				bestID, bestGain = id, gain
			}
		}
		return bestID, bestID != ""
	}
}

func cloneFetches(f map[string]int) map[string]int {
	c := make(map[string]int, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}
