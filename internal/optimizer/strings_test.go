package optimizer

import "testing"

func TestHeuristicStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{BoundIsBetter.String(), "bound-is-better"},
		{UnboundIsEasier.String(), "unbound-is-easier"},
		{SelectiveFirst.String(), "selective-first"},
		{ParallelIsBetter.String(), "parallel-is-better"},
		{Greedy.String(), "greedy"},
		{SquareIsBetter.String(), "square-is-better"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if FetchHeuristic(9).String() == "" {
		t.Error("unknown fetch heuristic renders empty")
	}
}
