package optimizer

import (
	"fmt"
	"math"
	"sort"

	"seco/internal/cost"
	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/plancheck"
	"seco/internal/query"
	"seco/internal/service"
)

// AccessHeuristic orders the candidate interfaces of phase 1
// (Section 5.3).
type AccessHeuristic int

const (
	// BoundIsBetter prefers interfaces with many input attributes:
	// smaller answers, faster services, less caching.
	BoundIsBetter AccessHeuristic = iota
	// UnboundIsEasier prefers interfaces with few input attributes,
	// making it easier to find a feasible assignment.
	UnboundIsEasier
)

// String names the heuristic.
func (h AccessHeuristic) String() string {
	if h == BoundIsBetter {
		return "bound-is-better"
	}
	return "unbound-is-easier"
}

// TopologyHeuristic orders the candidate steps of phase 2 (Section 5.4).
type TopologyHeuristic int

const (
	// SelectiveFirst builds long linear paths ordered by decreasing
	// selectivity: singleton steps first, most selective service first.
	SelectiveFirst TopologyHeuristic = iota
	// ParallelIsBetter always tries the choice maximizing parallelism:
	// the largest groups first.
	ParallelIsBetter
)

// String names the heuristic.
func (h TopologyHeuristic) String() string {
	if h == SelectiveFirst {
		return "selective-first"
	}
	return "parallel-is-better"
}

// Heuristics bundles the per-phase branch-ordering choices.
type Heuristics struct {
	Access   AccessHeuristic
	Topology TopologyHeuristic
	Fetch    FetchHeuristic
}

// Options configures an optimization run.
type Options struct {
	// K is the number of requested combinations (default 10).
	K int
	// Metric is the cost metric to minimize (default request-response).
	Metric cost.Metric
	// Heuristics select the branch orderings.
	Heuristics Heuristics
	// Stats supplies per-alias service statistics; aliases without an
	// entry get the statistics registered for their interface via
	// StatsByInterface.
	Stats map[string]service.Stats
	// StatsByInterface supplies statistics keyed by interface name, used
	// when phase 1 explores alternative interfaces.
	StatsByInterface map[string]service.Stats
	// MaxPlans stops the search after fully costing this many complete
	// plans (0 = explore exhaustively). The search is anytime: the best
	// plan found so far is returned.
	MaxPlans int
	// DisablePruning turns off bound-based pruning (exhaustive
	// exploration), used to verify optimality in tests.
	DisablePruning bool
	// DisableMultiway turns off the n-ary multijoin variant of eligible
	// parallel steps, restricting phase 2 to binary join trees (used to
	// compare the two topologies and to pin the binary plan in tests).
	DisableMultiway bool
	// FixedInterfaces skips phase 1 and uses the interfaces already
	// bound by Analyze.
	FixedInterfaces bool
}

// Result is the outcome of an optimization run.
type Result struct {
	// Plan is the best complete plan found.
	Plan *plan.Plan
	// Annotated is its fully instantiated annotation.
	Annotated *plan.Annotated
	// Query is the (possibly re-interfaced) query the plan executes.
	Query *query.Query
	// Cost is the plan's cost under the chosen metric.
	Cost float64
	// Topology is the winning topology.
	Topology Topology
	// Explored counts complete plans costed; Pruned counts topology
	// prefixes discarded by the bound; Assignments counts phase-1
	// interface assignments tried.
	Explored, Pruned, Assignments int
}

// Optimize runs the three-phase branch and bound of Section 5.2 and
// returns the cheapest fully instantiated plan found. The query must have
// been analyzed against reg.
func Optimize(q *query.Query, reg *mart.Registry, opt Options) (*Result, error) {
	if !q.Analyzed() {
		return nil, fmt.Errorf("optimizer: query not analyzed")
	}
	if opt.K <= 0 {
		opt.K = 10
	}
	if opt.Metric == nil {
		opt.Metric = cost.RequestResponse{}
	}
	res := &Result{Cost: math.Inf(1)}
	assignments := enumerateAssignments(q, reg, opt)
	if len(assignments) == 0 {
		return nil, fmt.Errorf("optimizer: no interface assignment available")
	}
	for _, assign := range assignments {
		res.Assignments++
		qa := q.WithInterfaces(assign)
		if !feasible(qa) {
			continue
		}
		if err := searchTopologies(qa, assign, opt, res); err != nil {
			return nil, err
		}
		if opt.MaxPlans > 0 && res.Explored >= opt.MaxPlans {
			break
		}
	}
	if res.Plan == nil {
		return nil, fmt.Errorf("optimizer: query is not feasible under any interface assignment")
	}
	// Assert mode: the winning plan must satisfy every invariant the
	// engine's correctness arguments assume. A violation here is an
	// optimizer bug, not a user error — surface it loudly instead of
	// letting the engine reject (or silently mis-execute) the plan.
	if rep := plancheck.CheckAnnotated(res.Annotated); !rep.OK() {
		return nil, fmt.Errorf("optimizer: produced invalid plan: %w", rep.Err())
	}
	return res, nil
}

// enumerateAssignments lists the phase-1 interface assignments in
// heuristic order. With FixedInterfaces (or when no alternatives exist)
// there is a single assignment: the one Analyze bound.
func enumerateAssignments(q *query.Query, reg *mart.Registry, opt Options) []map[string]*mart.Interface {
	current := map[string]*mart.Interface{}
	for _, ref := range q.Services {
		current[ref.Alias] = ref.Interface
	}
	if opt.FixedInterfaces {
		return []map[string]*mart.Interface{current}
	}
	perAlias := make([][]*mart.Interface, len(q.Services))
	for i, ref := range q.Services {
		cands := reg.InterfacesFor(ref.Interface.Mart.Name)
		if len(cands) == 0 {
			cands = []*mart.Interface{ref.Interface}
		}
		ordered := append([]*mart.Interface(nil), cands...)
		sort.SliceStable(ordered, func(a, b int) bool {
			na, nb := len(ordered[a].InputPaths()), len(ordered[b].InputPaths())
			if na != nb {
				if opt.Heuristics.Access == BoundIsBetter {
					return na > nb
				}
				return na < nb
			}
			return ordered[a].Name < ordered[b].Name
		})
		perAlias[i] = ordered
	}
	var out []map[string]*mart.Interface
	assign := map[string]*mart.Interface{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Services) {
			cp := make(map[string]*mart.Interface, len(assign))
			for k, v := range assign {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		for _, si := range perAlias[i] {
			assign[q.Services[i].Alias] = si
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func feasible(q *query.Query) bool {
	f, err := q.CheckFeasibility()
	return err == nil && f.Feasible
}

// searchTopologies runs phases 2–3 for one interface assignment,
// branch-and-bounding over topology prefixes.
func searchTopologies(q *query.Query, assign map[string]*mart.Interface, opt Options, res *Result) error {
	stats, err := resolveStats(q, opt)
	if err != nil {
		return err
	}
	var current Topology
	included := map[string]bool{}
	var rec func() error
	rec = func() error {
		if opt.MaxPlans > 0 && res.Explored >= opt.MaxPlans {
			return nil
		}
		if len(included) == len(q.Services) {
			return completePlan(q, current, stats, opt, res)
		}
		// Bound: the partial plan with minimal fetches lower-bounds every
		// completion; prune when it already exceeds the best cost. The
		// bound is the min over both join topologies of the prefix — a
		// binary bound alone could wrongly prune a cheaper multi-way
		// completion.
		if !opt.DisablePruning && len(current) > 0 && res.Plan != nil {
			bound, err := partialBound(q, current, stats, opt)
			if err != nil {
				return err
			}
			if bound >= res.Cost {
				res.Pruned++
				return nil
			}
		}
		for _, step := range orderedSteps(q, stats, included, opt.Heuristics.Topology) {
			current = append(current, step)
			for _, a := range step.Group {
				included[a] = true
			}
			if err := rec(); err != nil {
				return err
			}
			for _, a := range step.Group {
				delete(included, a)
			}
			current = current[:len(current)-1]
		}
		return nil
	}
	return rec()
}

// partialBound lower-bounds the cost of every completion of a topology
// prefix: the cheaper of its binary and (when distinct and enabled)
// multi-way materializations with minimal fetches.
func partialBound(q *query.Query, t Topology, stats map[string]service.Stats, opt Options) (float64, error) {
	pp, err := BuildPlan(q, t, stats, opt.K, true)
	if err != nil {
		return 0, err
	}
	pa, err := plan.Annotate(pp, nil)
	if err != nil {
		return 0, err
	}
	bound := opt.Metric.Cost(pa)
	if !opt.DisableMultiway {
		mp, used, err := BuildPlanMultiway(q, t, stats, opt.K, true)
		if err != nil {
			return 0, err
		}
		if used {
			ma, err := plan.Annotate(mp, nil)
			if err != nil {
				return 0, err
			}
			if c := opt.Metric.Cost(ma); c < bound {
				bound = c
			}
		}
	}
	return bound, nil
}

// completePlan builds, instantiates and costs a full topology — both its
// binary-tree and, when a parallel step is multiway-eligible, its n-ary
// materialization — updating the incumbent when cheaper.
func completePlan(q *query.Query, t Topology, stats map[string]service.Stats, opt Options, res *Result) error {
	p, err := BuildPlan(q, t, stats, opt.K, false)
	if err != nil {
		return err
	}
	variants := []*plan.Plan{p}
	if !opt.DisableMultiway {
		mp, used, err := BuildPlanMultiway(q, t, stats, opt.K, false)
		if err != nil {
			return err
		}
		if used {
			variants = append(variants, mp)
		}
	}
	for _, p := range variants {
		a, err := ChooseFetches(p, opt.Metric, opt.Heuristics.Fetch)
		if err != nil {
			return err
		}
		res.Explored++
		c := opt.Metric.Cost(a)
		// Prefer plans that meet K; among those, the cheaper one.
		better := false
		switch {
		case res.Plan == nil:
			better = true
		case a.MeetsK() && !res.Annotated.MeetsK():
			better = true
		case a.MeetsK() == res.Annotated.MeetsK() && c < res.Cost:
			better = true
		}
		if better {
			res.Plan = p
			res.Annotated = a
			res.Cost = c
			res.Query = q
			res.Topology = append(Topology(nil), t...)
		}
	}
	return nil
}

// orderedSteps lists the candidate next steps in heuristic order.
func orderedSteps(q *query.Query, stats map[string]service.Stats, included map[string]bool, h TopologyHeuristic) []Step {
	reachable := reachableAliases(q, included)
	var singles []Step
	for _, a := range reachable {
		singles = append(singles, Step{Group: []string{a}})
	}
	var groups []Step
	for _, g := range groupCandidates(q, reachable, included) {
		groups = append(groups, Step{Group: g})
	}
	switch h {
	case ParallelIsBetter:
		sort.SliceStable(groups, func(i, j int) bool {
			return len(groups[i].Group) > len(groups[j].Group)
		})
		return append(groups, singles...)
	default: // SelectiveFirst
		sort.SliceStable(singles, func(i, j int) bool {
			return standaloneYield(stats, singles[i].Group[0]) < standaloneYield(stats, singles[j].Group[0])
		})
		return append(singles, groups...)
	}
}

// standaloneYield estimates the tuples one invocation of the alias
// produces with one fetch: the selective-first ordering key.
func standaloneYield(stats map[string]service.Stats, alias string) float64 {
	st, ok := stats[alias]
	if !ok {
		return math.Inf(1)
	}
	if st.Chunked() {
		return float64(st.ChunkSize)
	}
	return st.AvgCardinality
}

// resolveStats produces the per-alias statistics for the current
// interface assignment.
func resolveStats(q *query.Query, opt Options) (map[string]service.Stats, error) {
	out := make(map[string]service.Stats, len(q.Services))
	for _, ref := range q.Services {
		if st, ok := opt.Stats[ref.Alias]; ok {
			out[ref.Alias] = st
			continue
		}
		if st, ok := opt.StatsByInterface[ref.Interface.Name]; ok {
			out[ref.Alias] = st
			continue
		}
		return nil, fmt.Errorf("optimizer: no statistics for alias %q (interface %s)", ref.Alias, ref.Interface.Name)
	}
	return out, nil
}
