// Package optimizer implements the branch-and-bound query optimization of
// Section 5: phase 1 selects access patterns (service interfaces), phase 2
// selects a query topology (the DAG of service invocations and joins),
// phase 3 chooses the fetching factors of chunked services. All cost
// metrics are monotone, so the cost of a partially constructed plan lower-
// bounds every completion and branches whose bound exceeds the best known
// complete plan are pruned. The search is anytime: it can be stopped after
// a budget of explored plans and still returns the best plan found.
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"seco/internal/join"
	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/query"
	"seco/internal/service"
	"seco/internal/types"
)

// Step is one increment of a topology: a single service appended in series
// to the plan's frontier, or a group of ≥2 mutually independent services
// invoked in parallel and merged by parallel-join nodes before the
// frontier moves on (the "in series or in parallel" construction of
// Section 5.4).
type Step struct {
	// Group holds the aliases added by the step, sorted. A singleton is a
	// series step; larger groups are parallel steps.
	Group []string
}

// Parallel reports whether the step opens parallel branches.
func (s Step) Parallel() bool { return len(s.Group) > 1 }

// String renders the step, e.g. "T" or "(M‖T)".
func (s Step) String() string {
	if !s.Parallel() {
		return s.Group[0]
	}
	return "(" + strings.Join(s.Group, "‖") + ")"
}

// Topology is an ordered sequence of steps covering every service of the
// query exactly once.
type Topology []Step

// String renders the topology, e.g. "(M‖T) → R".
func (t Topology) String() string {
	parts := make([]string, len(t))
	for i, s := range t {
		parts[i] = s.String()
	}
	return strings.Join(parts, " → ")
}

// Aliases returns all aliases of the topology in step order.
func (t Topology) Aliases() []string {
	var out []string
	for _, s := range t {
		out = append(out, s.Group...)
	}
	return out
}

// EnumerateTopologies generates every topology of the analyzed query under
// the given interface assignment: every ordered partition of the services
// into steps such that each step's services are reachable from the user
// input and the services of earlier steps. Singleton steps become series
// placements; larger steps become parallel placements merged by join
// nodes. For the running example this yields exactly the four topologies
// of Fig. 9.
func EnumerateTopologies(q *query.Query) ([]Topology, error) {
	if !q.Analyzed() {
		return nil, fmt.Errorf("optimizer: query not analyzed")
	}
	var (
		result  []Topology
		current Topology
	)
	included := map[string]bool{}
	var rec func()
	rec = func() {
		if len(included) == len(q.Services) {
			cp := make(Topology, len(current))
			copy(cp, current)
			result = append(result, cp)
			return
		}
		reachable := reachableAliases(q, included)
		// Singletons.
		for _, a := range reachable {
			current = append(current, Step{Group: []string{a}})
			included[a] = true
			rec()
			delete(included, a)
			current = current[:len(current)-1]
		}
		// Groups of every size ≥ 2, restricted to peers: members of a
		// parallel step must share the same dependency set, because they
		// are fed identically from the plan frontier before being merged
		// (this restriction reproduces exactly the four topologies of
		// Fig. 9 for the running example).
		for _, g := range groupCandidates(q, reachable, included) {
			for _, a := range g {
				included[a] = true
			}
			current = append(current, Step{Group: g})
			rec()
			current = current[:len(current)-1]
			for _, a := range g {
				delete(included, a)
			}
		}
	}
	rec()
	return result, nil
}

// reachableAliases lists the not-yet-included aliases whose inputs are
// coverable given the included set, sorted.
func reachableAliases(q *query.Query, included map[string]bool) []string {
	var out []string
	for _, ref := range q.Services {
		if included[ref.Alias] {
			continue
		}
		if _, ok := q.BindingsGiven(ref.Alias, included); ok {
			out = append(out, ref.Alias)
		}
	}
	sort.Strings(out)
	return out
}

// groupCandidates enumerates the admissible parallel groups among the
// reachable aliases: subsets of size ≥ 2 whose members share the same
// dependency set given the included services.
func groupCandidates(q *query.Query, reachable []string, included map[string]bool) [][]string {
	var out [][]string
	for _, g := range subsetsAtLeast2(reachable) {
		sig := depSignature(q, g[0], included)
		same := true
		for _, a := range g[1:] {
			if depSignature(q, a, included) != sig {
				same = false
				break
			}
		}
		if same {
			out = append(out, g)
		}
	}
	return out
}

// depSignature returns a canonical string of the aliases the given alias
// pipes from, given the included set.
func depSignature(q *query.Query, alias string, included map[string]bool) string {
	bindings, ok := q.BindingsGiven(alias, included)
	if !ok {
		return "<unreachable>"
	}
	set := map[string]bool{}
	for _, b := range bindings {
		if b.Source.Kind == query.BindJoin {
			set[b.Source.From.Alias] = true
		}
	}
	deps := make([]string, 0, len(set))
	for d := range set {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	return strings.Join(deps, ",")
}

// subsetsAtLeast2 enumerates the subsets of size ≥ 2 of the sorted slice,
// each returned sorted, in deterministic order.
func subsetsAtLeast2(items []string) [][]string {
	var out [][]string
	n := len(items)
	for mask := 1; mask < 1<<n; mask++ {
		if popcount(mask) < 2 {
			continue
		}
		var g []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				g = append(g, items[i])
			}
		}
		out = append(out, g)
	}
	return out
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// BuildPlan materializes a topology into a plan DAG with the given
// statistics and K: service nodes with their input bindings and pipe
// selectivities, selection nodes for residual predicates over output
// attributes, and parallel-join nodes (left-deep) for parallel steps. The
// join strategy of each parallel join follows Section 4.3: nested loop
// when the left side has a step scoring function, merge-scan otherwise;
// completion is triangular when both sides are search services.
// When partial is true the output node is omitted (the plan annotates but
// does not validate), which is how the branch-and-bound costs prefixes.
func BuildPlan(q *query.Query, t Topology, stats map[string]service.Stats, k int, partial bool) (*plan.Plan, error) {
	p, _, err := buildPlan(q, t, stats, k, partial, false)
	return p, err
}

// BuildPlanMultiway materializes a topology like BuildPlan, except that
// every parallel step of three or more services whose cross-predicate
// graph is multiway-legal and cyclic is merged by a single n-ary
// multijoin node instead of a left-deep binary tree. The boolean reports
// whether any step actually took the multi-way form; when false the plan
// is structurally identical to BuildPlan's and need not be costed again.
func BuildPlanMultiway(q *query.Query, t Topology, stats map[string]service.Stats, k int, partial bool) (*plan.Plan, bool, error) {
	return buildPlan(q, t, stats, k, partial, true)
}

func buildPlan(q *query.Query, t Topology, stats map[string]service.Stats, k int, partial, multiway bool) (*plan.Plan, bool, error) {
	p := plan.New(k)
	if err := p.AddNode(&plan.Node{ID: "input", Kind: plan.KindInput}); err != nil {
		return nil, false, err
	}
	frontier := "input"
	included := map[string]bool{}
	joinSeq := 0
	usedMultiway := false
	for _, step := range t {
		if step.Parallel() {
			// Add every member branch off the frontier, then merge:
			// through one n-ary multijoin node when asked for and the
			// group is eligible, left-deep binary joins otherwise.
			var branchTop []string // top node of each branch (service or selection)
			var branchAliases [][]string
			for _, a := range step.Group {
				top, err := addServiceChain(p, q, a, frontier, included, stats)
				if err != nil {
					return nil, false, err
				}
				branchTop = append(branchTop, top)
				branchAliases = append(branchAliases, []string{a})
			}
			if sel, preds, ok := multiwayStep(q, step.Group); multiway && len(branchTop) >= 3 && ok {
				joinSeq++
				id := fmt.Sprintf("join%d", joinSeq)
				n := &plan.Node{
					ID: id, Kind: plan.KindMultiJoin,
					JoinSelectivity: sel,
					JoinPreds:       preds,
				}
				if err := p.AddNode(n); err != nil {
					return nil, false, err
				}
				for _, top := range branchTop {
					if err := p.Connect(top, id); err != nil {
						return nil, false, err
					}
				}
				frontier = id
				usedMultiway = true
				for _, a := range step.Group {
					included[a] = true
				}
				continue
			}
			for len(branchTop) > 1 {
				joinSeq++
				id := fmt.Sprintf("join%d", joinSeq)
				leftAliases, rightAliases := branchAliases[0], branchAliases[1]
				sel, preds := joinSelectivity(q, leftAliases, rightAliases)
				n := &plan.Node{
					ID: id, Kind: plan.KindJoin,
					Strategy:        chooseStrategy(q, stats, leftAliases, rightAliases),
					JoinSelectivity: sel,
					JoinPreds:       preds,
				}
				if err := p.AddNode(n); err != nil {
					return nil, false, err
				}
				if err := p.Connect(branchTop[0], id); err != nil {
					return nil, false, err
				}
				if err := p.Connect(branchTop[1], id); err != nil {
					return nil, false, err
				}
				merged := append(append([]string(nil), leftAliases...), rightAliases...)
				branchTop = append([]string{id}, branchTop[2:]...)
				branchAliases = append([][]string{merged}, branchAliases[2:]...)
			}
			frontier = branchTop[0]
			for _, a := range step.Group {
				included[a] = true
			}
		} else {
			a := step.Group[0]
			top, err := addServiceChain(p, q, a, frontier, included, stats)
			if err != nil {
				return nil, false, err
			}
			frontier = top
			included[a] = true
		}
	}
	if !partial {
		if err := p.AddNode(&plan.Node{ID: "output", Kind: plan.KindOutput}); err != nil {
			return nil, false, err
		}
		if err := p.Connect(frontier, "output"); err != nil {
			return nil, false, err
		}
		if err := p.Validate(); err != nil {
			return nil, false, err
		}
	}
	return p, usedMultiway, nil
}

// multiwayStep inspects a parallel group for n-ary eligibility. The group
// qualifies when its cross-predicate graph (one vertex per member, one
// edge per member pair related by at least one predicate) is cyclic —
// a tree of equalities gains nothing over a binary join cascade, while a
// cycle gives the n-ary intersection an extra pruning edge the left-deep
// tree can only apply after materializing an oversized intermediate —
// every member is touched by some edge, and the predicate set satisfies
// the multi-way legality rules (atomic equalities or bounded proximity,
// at least one equality). It returns the combined selectivity and the
// collected cross predicates.
func multiwayStep(q *query.Query, group []string) (float64, []query.Predicate, bool) {
	sel := 1.0
	var preds []query.Predicate
	parent := make([]int, len(group))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	cyclic := false
	touched := make([]bool, len(group))
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			ps, pp := joinSelectivity(q, group[i:i+1], group[j:j+1])
			if len(pp) == 0 {
				continue
			}
			sel *= ps
			preds = append(preds, pp...)
			touched[i], touched[j] = true, true
			if ri, rj := find(i), find(j); ri == rj {
				cyclic = true
			} else {
				parent[ri] = rj
			}
		}
	}
	if !cyclic {
		return 0, nil, false
	}
	for _, t := range touched {
		if !t {
			return 0, nil, false
		}
	}
	if join.LegalMultiway(preds) != nil {
		return 0, nil, false
	}
	return sel, preds, true
}

// addServiceChain adds the service node for alias (fed from the given
// upstream node) followed by a selection node for its residual output
// predicates, if any. It returns the topmost node added.
func addServiceChain(p *plan.Plan, q *query.Query, alias, from string, included map[string]bool, stats map[string]service.Stats) (string, error) {
	ref, ok := q.Service(alias)
	if !ok {
		return "", fmt.Errorf("optimizer: unknown alias %q", alias)
	}
	bindings, ok := q.BindingsGiven(alias, included)
	if !ok {
		return "", fmt.Errorf("optimizer: alias %q not reachable at its step", alias)
	}
	st, ok := stats[alias]
	if !ok {
		return "", fmt.Errorf("optimizer: no statistics for alias %q", alias)
	}
	pipeSel, connPreds := connectionSelectivity(q, alias, included)
	n := &plan.Node{
		ID: alias, Kind: plan.KindService, Alias: alias,
		Interface: ref.Interface, Stats: st,
		Bindings:        bindings,
		PipeSelectivity: pipeSel,
		// The connecting join predicates are evaluated by the engine
		// when composing this service's tuples with the upstream stream
		// (they hold trivially for equalities realized by the pipe
		// bindings, and do the actual filtering work for sequential
		// compositions of independent services).
		JoinPreds: connPreds,
	}
	if err := p.AddNode(n); err != nil {
		return "", err
	}
	if err := p.Connect(from, alias); err != nil {
		return "", err
	}
	// Residual selections: predicates over non-input paths, evaluable as
	// soon as the service has been called.
	var residual []query.Predicate
	selEstimate := 1.0
	for _, pr := range q.SelectionsFor(alias) {
		if ref.Interface.Adornments[pr.Left.Path] == mart.Input {
			continue // consumed by the invocation binding
		}
		residual = append(residual, pr)
		selEstimate *= pr.Op.Selectivity()
	}
	if len(residual) == 0 {
		return alias, nil
	}
	sigma := &plan.Node{
		ID: "sigma_" + alias, Kind: plan.KindSelection,
		Selections: residual, Selectivity: selEstimate,
	}
	if err := p.AddNode(sigma); err != nil {
		return "", err
	}
	if err := p.Connect(alias, sigma.ID); err != nil {
		return "", err
	}
	return sigma.ID, nil
}

// connectionSelectivity estimates the selectivity of the join conditions
// connecting alias to the included aliases — the product of the
// selectivities of the connection patterns touching both sides plus the
// default selectivities of explicit join predicates — and collects those
// predicates so the plan node can evaluate them at execution time. An
// empty predicate list means a cartesian composition.
func connectionSelectivity(q *query.Query, alias string, included map[string]bool) (float64, []query.Predicate) {
	sel := 1.0
	var preds []query.Predicate
	for _, u := range q.Patterns {
		if u.Pattern == nil {
			continue
		}
		if (u.FromAlias == alias && included[u.ToAlias]) ||
			(u.ToAlias == alias && included[u.FromAlias]) {
			sel *= u.Pattern.Selectivity
			for _, j := range u.Pattern.Joins {
				preds = append(preds, query.Predicate{
					Left: query.PathRef{Alias: u.FromAlias, Path: j.From},
					Op:   types.OpEq,
					Right: query.Term{Kind: query.TermPath,
						Path: query.PathRef{Alias: u.ToAlias, Path: j.To}},
				})
			}
		}
	}
	for _, pr := range q.Predicates {
		if !pr.IsJoin() {
			continue
		}
		l, r := pr.Left.Alias, pr.Right.Path.Alias
		if (l == alias && included[r]) || (r == alias && included[l]) {
			sel *= pr.Op.Selectivity()
			preds = append(preds, pr)
		}
	}
	return sel, preds
}

// joinSelectivity estimates the selectivity of a parallel join between two
// alias sets, and collects the predicates it evaluates.
func joinSelectivity(q *query.Query, left, right []string) (float64, []query.Predicate) {
	inLeft, inRight := toSet(left), toSet(right)
	sel := 1.0
	var preds []query.Predicate
	for _, u := range q.Patterns {
		if u.Pattern == nil {
			continue
		}
		if (inLeft[u.FromAlias] && inRight[u.ToAlias]) || (inRight[u.FromAlias] && inLeft[u.ToAlias]) {
			sel *= u.Pattern.Selectivity
			for _, j := range u.Pattern.Joins {
				preds = append(preds, query.Predicate{
					Left: query.PathRef{Alias: u.FromAlias, Path: j.From},
					Right: query.Term{Kind: query.TermPath,
						Path: query.PathRef{Alias: u.ToAlias, Path: j.To}},
				})
			}
		}
	}
	for _, pr := range q.Predicates {
		if !pr.IsJoin() {
			continue
		}
		l, r := pr.Left.Alias, pr.Right.Path.Alias
		if (inLeft[l] && inRight[r]) || (inLeft[r] && inRight[l]) {
			sel *= pr.Op.Selectivity()
			preds = append(preds, pr)
		}
	}
	return sel, preds
}

// chooseStrategy applies the guidance of Section 4.3: nested loop with the
// step length h when the left side's scoring function exhibits a step,
// merge-scan otherwise; triangular completion when both sides are search
// services (approximating extraction-optimality), rectangular otherwise.
// Merge-scan ratios follow the services' per-call latencies (the variable
// inter-service ratio the chapter defers to Chapter 11's clocks): the
// cheaper side is fetched proportionally more often.
func chooseStrategy(q *query.Query, stats map[string]service.Stats, left, right []string) join.Strategy {
	ls, lok := singleAliasStats(stats, left)
	rs, rok := singleAliasStats(stats, right)
	if lok {
		if h, stepped := ls.Scoring.HasStep(); stepped && ls.ChunkSize > 0 {
			chunks := (h + ls.ChunkSize - 1) / ls.ChunkSize
			if chunks < 1 {
				chunks = 1
			}
			return join.Strategy{Invocation: join.NestedLoop, Completion: join.Rectangular, H: chunks}
		}
	}
	comp := join.Rectangular
	if lok && rok && ls.Scoring.Kind != service.ScoringConstant && rs.Scoring.Kind != service.ScoringConstant {
		comp = join.Triangular
	}
	rx, ry := 1, 1
	if lok && rok {
		rx, ry = join.RatioFromCosts(ls.Latency.Seconds(), rs.Latency.Seconds(), 4)
	}
	return join.Strategy{Invocation: join.MergeScan, Completion: comp, RatioX: rx, RatioY: ry}
}

func singleAliasStats(stats map[string]service.Stats, aliases []string) (service.Stats, bool) {
	if len(aliases) != 1 {
		return service.Stats{}, false
	}
	s, ok := stats[aliases[0]]
	return s, ok
}

func toSet(items []string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, it := range items {
		m[it] = true
	}
	return m
}
