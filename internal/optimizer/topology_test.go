package optimizer

import (
	"testing"

	"seco/internal/mart"
	"seco/internal/plan"
	"seco/internal/query"
)

func runningQuery(t *testing.T) (*query.Query, *mart.Registry) {
	t.Helper()
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.RunningExample(reg)
	if err != nil {
		t.Fatal(err)
	}
	return q, reg
}

func travelQuery(t *testing.T) (*query.Query, *mart.Registry) {
	t.Helper()
	reg, err := mart.TravelScenario()
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.TravelExample(reg)
	if err != nil {
		t.Fatal(err)
	}
	return q, reg
}

// E3 / Fig. 9: the running example admits exactly four topologies:
// M→T→R, T→M→R, T→R→M and (M‖T)→R.
func TestE3_Fig9Topologies(t *testing.T) {
	q, _ := runningQuery(t)
	tops, err := EnumerateTopologies(q)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(tops))
	for _, tp := range tops {
		got[tp.String()] = true
	}
	want := []string{
		"M → T → R",
		"T → M → R",
		"T → R → M",
		"(M‖T) → R",
	}
	if len(tops) != len(want) {
		t.Errorf("enumerated %d topologies, want %d: %v", len(tops), len(want), keys(got))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing topology %q (have %v)", w, keys(got))
		}
	}
	// In every topology Theatre precedes Restaurant (the chapter's
	// observation about the DinnerPlace I/O dependency).
	for _, tp := range tops {
		seenT := false
		for _, a := range tp.Aliases() {
			if a == "T" {
				seenT = true
			}
			if a == "R" && !seenT {
				t.Errorf("topology %s places R before T", tp)
			}
		}
	}
}

func keys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// The travel example: C must come first; W, F, H then arrange in ordered
// set partitions of 3 elements = 13 topologies.
func TestTravelTopologyCount(t *testing.T) {
	q, _ := travelQuery(t)
	tops, err := EnumerateTopologies(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != 13 {
		t.Errorf("enumerated %d topologies, want 13", len(tops))
	}
	for _, tp := range tops {
		if tp.Aliases()[0] != "C" {
			t.Errorf("topology %s does not start with C", tp)
		}
	}
}

func TestBuildPlanParallelTopology(t *testing.T) {
	q, _ := runningQuery(t)
	top := Topology{{Group: []string{"M", "T"}}, {Group: []string{"R"}}}
	p, err := BuildPlan(q, top, plan.RunningExampleStats(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	j, ok := p.Node("join1")
	if !ok {
		t.Fatalf("no join node: %v", p.NodeIDs())
	}
	if j.JoinSelectivity != 0.02 {
		t.Errorf("join selectivity = %v, want 0.02 (Shows)", j.JoinSelectivity)
	}
	// Both Movie and Theatre have progressive scoring: merge-scan with
	// triangular completion, and the ratio follows the per-call
	// latencies (Movie 120 ms : Theatre 80 ms ⇒ fetch Theatre more
	// often, rx:ry = 80:120 = 2:3).
	if j.Strategy.String() != "merge-scan/triangular(2:3)" {
		t.Errorf("strategy = %v", j.Strategy)
	}
	r, _ := p.Node("R")
	if r.PipeSelectivity != 0.4 {
		t.Errorf("R pipe selectivity = %v, want 0.4 (DinnerPlace)", r.PipeSelectivity)
	}
	if !r.PipedFrom() {
		t.Error("R not piped")
	}
	// The parallel topology annotates like Fig. 10 (modulo the explicit
	// Limit of the fixture): M and T feed join1, join1 feeds R.
	if succ := p.Successors("join1"); len(succ) != 1 || succ[0] != "R" {
		t.Errorf("join1 successors = %v", succ)
	}
}

func TestBuildPlanChainTopology(t *testing.T) {
	q, _ := runningQuery(t)
	top := Topology{{Group: []string{"T"}}, {Group: []string{"R"}}, {Group: []string{"M"}}}
	p, err := BuildPlan(q, top, plan.RunningExampleStats(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chain: input→T→R→M→output, no join nodes.
	for _, id := range p.NodeIDs() {
		n, _ := p.Node(id)
		if n.Kind == plan.KindJoin {
			t.Errorf("chain topology has join node %s", id)
		}
	}
	m, _ := p.Node("M")
	// M connects to T via Shows: sequential composition with
	// selectivity 0.02, invoked once (inputs are INPUT variables).
	if m.PipeSelectivity != 0.02 {
		t.Errorf("M pipe selectivity = %v, want 0.02", m.PipeSelectivity)
	}
	if m.PipedFrom() {
		t.Error("M should not be per-tuple piped (constant inputs)")
	}
	a, err := plan.Annotate(p, map[string]int{"M": 5, "T": 5, "R": 1})
	if err != nil {
		t.Fatal(err)
	}
	// M invoked once: calls = fetches = 5 even though tin is large.
	if got := a.Ann["M"].Calls; got != 5 {
		t.Errorf("M calls = %v, want 5", got)
	}
	// R is per-tuple piped: calls = tin × 1.
	if got, tin := a.Ann["R"].Calls, a.Ann["R"].TIn; got != tin {
		t.Errorf("R calls = %v, tin = %v", got, tin)
	}
}

func TestBuildPlanSelectionNode(t *testing.T) {
	q, _ := travelQuery(t)
	top := Topology{
		{Group: []string{"C"}}, {Group: []string{"W"}},
		{Group: []string{"F", "H"}},
	}
	p, err := BuildPlan(q, top, plan.TravelStats(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	sigma, ok := p.Node("sigma_W")
	if !ok {
		t.Fatalf("no selection node after W: %v", p.NodeIDs())
	}
	if len(sigma.Selections) != 1 || sigma.Selections[0].Left.Path != "AvgTemp" {
		t.Errorf("selection predicates = %v", sigma.Selections)
	}
	// The selection sits between W and the downstream services.
	if succ := p.Successors("W"); len(succ) != 1 || succ[0] != "sigma_W" {
		t.Errorf("W successors = %v", succ)
	}
}

func TestBuildPlanPartialSkipsOutput(t *testing.T) {
	q, _ := runningQuery(t)
	top := Topology{{Group: []string{"T"}}}
	p, err := BuildPlan(q, top, plan.RunningExampleStats(), 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Node("output"); ok {
		t.Error("partial plan has output node")
	}
	// Partial plans annotate fine.
	if _, err := plan.Annotate(p, nil); err != nil {
		t.Errorf("partial annotate: %v", err)
	}
}

func TestBuildPlanUnreachableStepFails(t *testing.T) {
	q, _ := runningQuery(t)
	top := Topology{{Group: []string{"R"}}, {Group: []string{"T"}}, {Group: []string{"M"}}}
	if _, err := BuildPlan(q, top, plan.RunningExampleStats(), 10, false); err == nil {
		t.Error("topology placing R before T built successfully")
	}
}

func TestStepString(t *testing.T) {
	if got := (Step{Group: []string{"A"}}).String(); got != "A" {
		t.Errorf("single step = %q", got)
	}
	if got := (Step{Group: []string{"A", "B"}}).String(); got != "(A‖B)" {
		t.Errorf("group step = %q", got)
	}
	top := Topology{{Group: []string{"A", "B"}}, {Group: []string{"C"}}}
	if got := top.String(); got != "(A‖B) → C" {
		t.Errorf("topology = %q", got)
	}
}
