package cost

import (
	"math"
	"testing"

	"seco/internal/mart"
	"seco/internal/plan"
)

func annotatedRunningExample(t *testing.T, fetches map[string]int) *plan.Annotated {
	t.Helper()
	reg, err := mart.MovieScenario()
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := plan.RunningExamplePlan(reg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Annotate(p, fetches)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRequestResponseOnFig10(t *testing.T) {
	a := annotatedRunningExample(t, plan.Fig10Fetches())
	// Movie 5 + Theatre 5 + Restaurant 25 calls.
	if got := (RequestResponse{}).Cost(a); got != 35 {
		t.Errorf("request-response = %v, want 35", got)
	}
}

func TestSumWithUniformChargesEqualsRequestResponse(t *testing.T) {
	a := annotatedRunningExample(t, plan.Fig10Fetches())
	// Every fixture service charges 1 per call, so sum == call count.
	if got, want := (Sum{}).Cost(a), (RequestResponse{}).Cost(a); got != want {
		t.Errorf("sum = %v, request-response = %v", got, want)
	}
	// Charging comparisons adds the MS candidates (1250).
	withCmp := Sum{PerComparison: 1}.Cost(a)
	if got := withCmp - (Sum{}).Cost(a); got != 1250 {
		t.Errorf("comparison charge = %v, want 1250", got)
	}
}

func TestExecutionTimeSlowestPath(t *testing.T) {
	a := annotatedRunningExample(t, plan.Fig10Fetches())
	// Paths: input→M→MS→R→out = 5×0.12 + 25×0.1 = 3.1
	//        input→T→MS→R→out = 5×0.08 + 25×0.1 = 2.9
	got := (ExecutionTime{}).Cost(a)
	if math.Abs(got-3.1) > 1e-9 {
		t.Errorf("execution-time = %v, want 3.1", got)
	}
}

func TestTimeToScreen(t *testing.T) {
	a := annotatedRunningExample(t, plan.Fig10Fetches())
	// One call per service on the slowest path: 0.12 + 0.1.
	got := (TimeToScreen{}).Cost(a)
	if math.Abs(got-0.22) > 1e-9 {
		t.Errorf("time-to-screen = %v, want 0.22", got)
	}
}

func TestBottleneck(t *testing.T) {
	a := annotatedRunningExample(t, plan.Fig10Fetches())
	// Restaurant: 25 calls × 0.1s = 2.5s dominates Movie (0.6) and
	// Theatre (0.4).
	got := (Bottleneck{}).Cost(a)
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("bottleneck = %v, want 2.5", got)
	}
}

// Monotonicity: increasing fetch factors never lowers any metric.
func TestMetricsMonotoneInFetches(t *testing.T) {
	base := annotatedRunningExample(t, map[string]int{"M": 2, "T": 2, "R": 1})
	bigger := annotatedRunningExample(t, map[string]int{"M": 3, "T": 4, "R": 2})
	for _, m := range All() {
		lo, hi := m.Cost(base), m.Cost(bigger)
		if hi < lo-1e-12 {
			t.Errorf("%s: cost decreased %v → %v with more fetches", m.Name(), lo, hi)
		}
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", m.Name(), err)
			continue
		}
		if got.Name() != m.Name() {
			t.Errorf("ByName(%q) returned %q", m.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestAllMetricsNonNegative(t *testing.T) {
	a := annotatedRunningExample(t, plan.Fig10Fetches())
	for _, m := range All() {
		if c := m.Cost(a); c < 0 {
			t.Errorf("%s cost negative: %v", m.Name(), c)
		}
	}
}
