// Package cost implements the cost metrics of Section 5.1 over fully
// instantiated (annotated) query plans: execution time, sum cost,
// request-response count, bottleneck and time-to-screen. Every metric is
// monotone — extending a plan or increasing fetching factors never lowers
// its cost — which is the property the branch-and-bound optimizer's
// pruning relies on: the cost of a partial plan is a valid lower bound for
// every plan that completes it.
package cost

import (
	"fmt"

	"seco/internal/plan"
)

// Metric maps an annotated plan to a non-negative cost. Lower is better.
type Metric interface {
	// Name identifies the metric in reports.
	Name() string
	// Cost evaluates the metric. The annotation may describe a partial
	// plan (prefix of a full plan); by monotonicity the result lower-
	// bounds the cost of every completion.
	Cost(a *plan.Annotated) float64
}

// ExecutionTime measures the expected elapsed seconds from submission to
// the production of the k-th answer: the slowest input-to-output path,
// where each service node contributes its expected request-responses ×
// latency and joins/selections are free main-memory work (the cost-model
// assumption of Section 4.1).
type ExecutionTime struct{}

// Name implements Metric.
func (ExecutionTime) Name() string { return "execution-time" }

// Cost implements Metric.
func (ExecutionTime) Cost(a *plan.Annotated) float64 {
	return slowestPath(a, func(n *plan.Node, ann plan.Annotation) float64 {
		if n.Kind != plan.KindService {
			return 0
		}
		return ann.Calls * n.Stats.Latency.Seconds()
	})
}

// TimeToScreen measures the expected seconds until the *first* output
// tuple: the slowest path where every service contributes a single
// request-response (its first chunk), suiting interactive settings.
type TimeToScreen struct{}

// Name implements Metric.
func (TimeToScreen) Name() string { return "time-to-screen" }

// Cost implements Metric.
func (TimeToScreen) Cost(a *plan.Annotated) float64 {
	return slowestPath(a, func(n *plan.Node, ann plan.Annotation) float64 {
		if n.Kind != plan.KindService || ann.Calls == 0 {
			return 0
		}
		return n.Stats.Latency.Seconds()
	})
}

// Sum adds the cost of every operator: service request-responses weighted
// by their per-call charge, plus an optional charge per join comparison
// (zero by default, matching the chapter's request-response-dominated
// scenario).
type Sum struct {
	// PerComparison charges each candidate pair a join processes.
	PerComparison float64
}

// Name implements Metric.
func (Sum) Name() string { return "sum" }

// Cost implements Metric.
func (m Sum) Cost(a *plan.Annotated) float64 {
	total := 0.0
	for _, id := range a.Plan.NodeIDs() {
		n, _ := a.Plan.Node(id)
		ann := a.Ann[id]
		switch n.Kind {
		case plan.KindService:
			total += ann.Calls * n.Stats.CostPerCall
		case plan.KindJoin, plan.KindMultiJoin:
			total += ann.Candidates * m.PerComparison
		}
	}
	return total
}

// RequestResponse is the special case of the sum metric that counts every
// service call with uniform cost 1: the number of request-responses, the
// dominant factor when network transfer dominates.
type RequestResponse struct{}

// Name implements Metric.
func (RequestResponse) Name() string { return "request-response" }

// Cost implements Metric.
func (RequestResponse) Cost(a *plan.Annotated) float64 { return a.TotalCalls() }

// Bottleneck is the metric of Srivastava et al. (WSMS): the execution time
// of the slowest single service in the plan, relevant for pipelined
// continuous queries. The chapter notes it is ill-suited to search
// services, which rarely produce all their tuples.
type Bottleneck struct{}

// Name implements Metric.
func (Bottleneck) Name() string { return "bottleneck" }

// Cost implements Metric.
func (Bottleneck) Cost(a *plan.Annotated) float64 {
	worst := 0.0
	for _, id := range a.Plan.NodeIDs() {
		n, _ := a.Plan.Node(id)
		if n.Kind != plan.KindService {
			continue
		}
		if t := a.Ann[id].Calls * n.Stats.Latency.Seconds(); t > worst {
			worst = t
		}
	}
	return worst
}

// slowestPath computes the maximum, over all input-to-output paths, of the
// summed node weights (longest path in the DAG).
func slowestPath(a *plan.Annotated, weight func(*plan.Node, plan.Annotation) float64) float64 {
	order, err := a.Plan.TopoSort()
	if err != nil {
		return 0
	}
	best := make(map[string]float64, len(order))
	overall := 0.0
	for _, id := range order {
		n, _ := a.Plan.Node(id)
		w := weight(n, a.Ann[id])
		in := 0.0
		for _, pr := range a.Plan.Predecessors(id) {
			if best[pr] > in {
				in = best[pr]
			}
		}
		best[id] = in + w
		if best[id] > overall {
			overall = best[id]
		}
	}
	return overall
}

// ByName returns the metric with the given name.
func ByName(name string) (Metric, error) {
	switch name {
	case "execution-time":
		return ExecutionTime{}, nil
	case "time-to-screen":
		return TimeToScreen{}, nil
	case "sum":
		return Sum{}, nil
	case "request-response":
		return RequestResponse{}, nil
	case "bottleneck":
		return Bottleneck{}, nil
	default:
		return nil, fmt.Errorf("cost: unknown metric %q", name)
	}
}

// All returns every metric with default parameters, for comparisons.
func All() []Metric {
	return []Metric{ExecutionTime{}, Sum{}, RequestResponse{}, Bottleneck{}, TimeToScreen{}}
}
