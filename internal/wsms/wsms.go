// Package wsms reimplements the baseline this chapter positions itself
// against: the Web Service Management System optimizer of Srivastava,
// Munagala, Widom and Motwani (VLDB 2006). WSMS arranges a query's web
// service calls into a pipelined execution plan that minimizes the
// bottleneck cost metric — the per-tuple processing time of the slowest
// service — modelling every service as exact, unchunked, and characterized
// only by its per-tuple response time and selectivity.
//
// The chapter (Section 2.4) notes the two assumptions that break down in
// Search Computing: WSMS services have no ranking and no chunking, and the
// execution retrieves all tuples rather than stopping at the best k. The
// E11 benchmark quantifies exactly that gap.
package wsms

import (
	"fmt"
	"math"
	"sort"
)

// Service is the WSMS service model: per-tuple response time and
// selectivity (expected output tuples per input tuple; below 1 the
// service filters, above 1 it proliferates).
type Service struct {
	Name string
	// Cost is the per-tuple response time in seconds.
	Cost float64
	// Selectivity is the expected output/input tuple ratio.
	Selectivity float64
}

// Validate checks the parameters.
func (s Service) Validate() error {
	if s.Cost < 0 {
		return fmt.Errorf("wsms: service %s with negative cost %v", s.Name, s.Cost)
	}
	if s.Selectivity < 0 {
		return fmt.Errorf("wsms: service %s with negative selectivity %v", s.Name, s.Selectivity)
	}
	return nil
}

// Arrangement is a pipelined chain of services with its bottleneck cost.
type Arrangement struct {
	// Order is the service sequence.
	Order []Service
	// Bottleneck is max_i cost_i × ∏_{j<i} sel_j: the per-input-tuple
	// time of the slowest stage in pipelined execution.
	Bottleneck float64
}

// Names returns the ordered service names.
func (a Arrangement) Names() []string {
	ns := make([]string, len(a.Order))
	for i, s := range a.Order {
		ns[i] = s.Name
	}
	return ns
}

// BottleneckOf computes the bottleneck metric of a chain: each service
// processes the fraction of tuples that survived its predecessors, and
// under pipelining the chain's throughput is limited by the stage with the
// highest per-source-tuple work.
func BottleneckOf(order []Service) float64 {
	flow := 1.0
	worst := 0.0
	for _, s := range order {
		if w := flow * s.Cost; w > worst {
			worst = w
		}
		flow *= s.Selectivity
	}
	return worst
}

// OptimalChain finds the bottleneck-minimal chain by exhaustive
// permutation search. It is exponential and intended for n ≤ 9 (the
// baseline comparisons of the chapter involve a handful of services).
func OptimalChain(services []Service) (Arrangement, error) {
	if len(services) == 0 {
		return Arrangement{}, fmt.Errorf("wsms: no services")
	}
	for _, s := range services {
		if err := s.Validate(); err != nil {
			return Arrangement{}, err
		}
	}
	if len(services) > 9 {
		return Arrangement{}, fmt.Errorf("wsms: exhaustive search limited to 9 services, got %d", len(services))
	}
	best := Arrangement{Bottleneck: math.Inf(1)}
	perm := append([]Service(nil), services...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			if b := BottleneckOf(perm); b < best.Bottleneck {
				best = Arrangement{Order: append([]Service(nil), perm...), Bottleneck: b}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, nil
}

// GreedyChain orders services by the pairwise exchange criterion: place i
// before j when max(c_i, s_i·c_j) ≤ max(c_j, s_j·c_i). For selective
// services this is the WSMS greedy arrangement; it coincides with the
// optimum on the instances the paper considers (and E11 cross-checks it
// against OptimalChain).
func GreedyChain(services []Service) (Arrangement, error) {
	if len(services) == 0 {
		return Arrangement{}, fmt.Errorf("wsms: no services")
	}
	for _, s := range services {
		if err := s.Validate(); err != nil {
			return Arrangement{}, err
		}
	}
	order := append([]Service(nil), services...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ab := math.Max(a.Cost, a.Selectivity*b.Cost)
		ba := math.Max(b.Cost, b.Selectivity*a.Cost)
		if ab != ba {
			return ab < ba
		}
		return a.Name < b.Name
	})
	// The pairwise criterion is not guaranteed transitive; one pass of
	// adjacent-exchange repair keeps the result locally optimal.
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(order); i++ {
			cur := append([]Service(nil), order...)
			cur[i], cur[i+1] = cur[i+1], cur[i]
			if BottleneckOf(cur) < BottleneckOf(order) {
				order = cur
				changed = true
			}
		}
	}
	return Arrangement{Order: order, Bottleneck: BottleneckOf(order)}, nil
}

// TotalWork computes the sum-cost of the chain under the WSMS model: every
// tuple surviving the prefix is shipped to the next service. This is the
// quantity a retrieve-everything baseline pays, contrasted in E11 with the
// stop-at-k request-response counts of the SeCo engine.
func TotalWork(order []Service, sourceTuples float64) float64 {
	flow := sourceTuples
	total := 0.0
	for _, s := range order {
		total += flow * s.Cost
		flow *= s.Selectivity
	}
	return total
}
