package wsms

import (
	"math"
	"math/rand"
	"testing"
)

func TestBottleneckOf(t *testing.T) {
	chain := []Service{
		{Name: "a", Cost: 1, Selectivity: 0.5},
		{Name: "b", Cost: 3, Selectivity: 0.5},
	}
	// a: 1×1; b: 0.5×3 = 1.5 → bottleneck 1.5.
	if got := BottleneckOf(chain); got != 1.5 {
		t.Errorf("bottleneck = %v, want 1.5", got)
	}
	// Swapped: b: 3; a: 0.5×1 → bottleneck 3.
	swapped := []Service{chain[1], chain[0]}
	if got := BottleneckOf(swapped); got != 3 {
		t.Errorf("bottleneck = %v, want 3", got)
	}
}

func TestOptimalChainSmall(t *testing.T) {
	services := []Service{
		{Name: "slow", Cost: 3, Selectivity: 0.5},
		{Name: "fast", Cost: 1, Selectivity: 0.5},
	}
	best, err := OptimalChain(services)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bottleneck != 1.5 {
		t.Errorf("optimal bottleneck = %v, want 1.5", best.Bottleneck)
	}
	if ns := best.Names(); ns[0] != "fast" {
		t.Errorf("order = %v, want fast first", ns)
	}
}

func TestOptimalChainErrors(t *testing.T) {
	if _, err := OptimalChain(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := OptimalChain([]Service{{Cost: -1, Selectivity: 1}}); err == nil {
		t.Error("negative cost accepted")
	}
	big := make([]Service, 10)
	for i := range big {
		big[i] = Service{Cost: 1, Selectivity: 1}
	}
	if _, err := OptimalChain(big); err == nil {
		t.Error("oversized input accepted")
	}
	if _, err := GreedyChain(nil); err == nil {
		t.Error("greedy empty input accepted")
	}
	if _, err := GreedyChain([]Service{{Selectivity: -2}}); err == nil {
		t.Error("greedy invalid service accepted")
	}
}

// GreedyChain matches OptimalChain on random selective instances.
func TestGreedyMatchesOptimalOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mismatches := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(4)
		services := make([]Service, n)
		for i := range services {
			services[i] = Service{
				Name:        string(rune('a' + i)),
				Cost:        0.1 + rng.Float64()*5,
				Selectivity: 0.1 + rng.Float64()*0.9,
			}
		}
		opt, err := OptimalChain(services)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GreedyChain(services)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Bottleneck > opt.Bottleneck*1.0001 {
			mismatches++
		}
	}
	// The exchange-repaired greedy should be optimal on virtually all
	// selective instances.
	if mismatches > trials/20 {
		t.Errorf("greedy missed the optimum on %d/%d instances", mismatches, trials)
	}
}

func TestTotalWork(t *testing.T) {
	chain := []Service{
		{Name: "a", Cost: 1, Selectivity: 0.5},
		{Name: "b", Cost: 2, Selectivity: 0.5},
	}
	// 100 tuples: a costs 100, b sees 50 tuples → 100. Total 200.
	if got := TotalWork(chain, 100); got != 200 {
		t.Errorf("total work = %v, want 200", got)
	}
}

// Proliferative services are allowed (selectivity > 1): the bottleneck
// grows downstream.
func TestProliferativeServices(t *testing.T) {
	chain := []Service{
		{Name: "p", Cost: 1, Selectivity: 20},
		{Name: "q", Cost: 1, Selectivity: 1},
	}
	if got := BottleneckOf(chain); got != 20 {
		t.Errorf("bottleneck = %v, want 20", got)
	}
	best, err := OptimalChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	// The optimum defers the proliferative service to the end, where its
	// output feeds nothing: q then p gives bottleneck 1.
	if math.Abs(best.Bottleneck-1) > 1e-12 {
		t.Errorf("optimal = %v, want 1 (proliferative service last)", best.Bottleneck)
	}
	if ns := best.Names(); ns[len(ns)-1] != "p" {
		t.Errorf("order = %v, want p last", ns)
	}
}
