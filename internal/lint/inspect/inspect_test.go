package inspect

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func check(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

const src = `package p
type pool struct{}
func (p *pool) Get() []int { return nil }
func (p *pool) Put(s []int) {}
func helper() {}
func (p *pool) work() {
	s := p.Get()
	f := func() { _ = s }
	f()
	p.Put(s)
}
`

func TestFuncs(t *testing.T) {
	f, info := check(t, src)
	fns := Funcs(info, f)
	var names []string
	for _, fn := range fns {
		names = append(names, fn.Name)
	}
	want := []string{"Get", "Put", "helper", "work", "func literal in work"}
	if len(names) != len(want) {
		t.Fatalf("funcs = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("func %d = %q, want %q", i, names[i], want[i])
		}
	}
	// The method carries receiver metadata; the literal does not.
	for _, fn := range fns {
		if fn.Name == "work" {
			if fn.RecvType != "pool" || fn.Recv == nil {
				t.Errorf("work receiver = (%q, %v), want (pool, non-nil)", fn.RecvType, fn.Recv)
			}
		}
		if fn.Lit != nil && fn.Recv != nil {
			t.Errorf("literal %q should not carry a receiver var", fn.Name)
		}
	}
}

func TestMethodOnAndCallee(t *testing.T) {
	f, info := check(t, src)
	var getCalls, putCalls, otherCalls int
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := MethodOn(info, call, "", "pool", "Get"); ok {
			getCalls++
			if recv == nil {
				t.Error("Get receiver expr is nil")
			}
		} else if _, ok := MethodOn(info, call, "", "pool", "Put"); ok {
			putCalls++
		} else {
			otherCalls++
		}
		return true
	})
	if getCalls != 1 || putCalls != 1 {
		t.Errorf("Get/Put calls = %d/%d, want 1/1", getCalls, putCalls)
	}
	// MethodOn with a non-matching package path rejects the local pool.
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := MethodOn(info, call, "some/other/pkg", "pool", "Get"); ok {
				t.Error("MethodOn matched a wrong package path")
			}
		}
		return true
	})
}

func TestIsNamed(t *testing.T) {
	f, info := check(t, src)
	var poolType types.Type
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "pool" {
			return true
		}
		poolType = info.Defs[ts.Name].Type()
		return true
	})
	if poolType == nil {
		t.Fatal("pool type not found")
	}
	ptr := types.NewPointer(poolType)
	if !IsNamed(poolType, "", "pool") || !IsNamed(ptr, "", "pool") {
		t.Error("IsNamed failed on pool / *pool with empty package path")
	}
	if !IsNamed(poolType, "p", "pool") {
		t.Error("IsNamed failed on exact package path")
	}
	if IsNamed(poolType, "q", "pool") || IsNamed(poolType, "", "notpool") {
		t.Error("IsNamed matched a wrong package or name")
	}
}
