// Package inspect is the shared traversal and resolution layer under the
// repo's dataflow-based analyzers. It factors out the walking every
// types-aware analyzer repeats: enumerating function bodies (declarations
// and literals, with receiver metadata), resolving call expressions to
// their static callees, classifying receiver types, and answering "what
// syntactic context does this node sit in" through a parent map. Nothing
// here reports diagnostics; analyzers compose these primitives with the
// dataflow package's def-use, escape and pair-tracking machinery.
package inspect

import (
	"go/ast"
	"go/types"
	"strings"
)

// Func is one function body found in a file: a declaration or a function
// literal. Literals carry the enclosing declaration's name for reporting.
type Func struct {
	// Decl is the enclosing declaration; nil for a literal at file scope
	// (package-level var initializer).
	Decl *ast.FuncDecl
	// Lit is non-nil when the body belongs to a function literal.
	Lit *ast.FuncLit
	// Name is the declaration name, or "func literal in <name>".
	Name string
	// Recv is the receiver's *types.Var when the body is a method with a
	// named receiver; nil otherwise (functions, literals, "_" receivers).
	Recv *types.Var
	// RecvType is the bare receiver type name ("serviceOp"), "" otherwise.
	RecvType string
	Body     *ast.BlockStmt
}

// Funcs enumerates every function body in the file in source order:
// each declaration, then each literal nested anywhere inside it (literals
// are returned as their own Func so dataflow analyses stay one-body
// deep — a literal's body is not re-walked as part of its enclosure).
func Funcs(info *types.Info, f *ast.File) []Func {
	var out []Func
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn := Func{Decl: fd, Name: fd.Name.Name, Body: fd.Body}
		fn.RecvType = RecvTypeName(fd)
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			fn.Recv, _ = info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
		}
		out = append(out, fn)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, Func{
					Decl: fd,
					Lit:  lit,
					Name: "func literal in " + fd.Name.Name,
					Body: lit.Body,
				})
			}
			return true
		})
	}
	return out
}

// RecvTypeName returns the bare name of a method declaration's receiver
// type ("(*serviceOp)" → "serviceOp"), or "" for plain functions.
func RecvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// Callee resolves a call expression to its statically-known function or
// method object, or nil (calls through function values, builtins).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether the call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// NamedType unwraps pointers and aliases down to the *types.Named core of
// a type, or nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (through pointers) is the named type `name`
// declared in a package whose import path equals pkgPath or ends with
// "/"+pkgPath. An empty pkgPath matches any package, which is how the
// testdata corpora stand in local doubles for the engine's unexported
// types.
func IsNamed(t types.Type, pkgPath, name string) bool {
	named := NamedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	if pkgPath == "" {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// MethodOn reports whether the call is a method call with the given name
// on a receiver satisfying IsNamed(recv, pkgPath, typeName), returning
// the receiver expression.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if !IsNamed(sig.Recv().Type(), pkgPath, typeName) {
		return nil, false
	}
	return sel.X, true
}

// Parents maps every node under root to its syntactic parent. The map is
// what lets an analyzer ask "is this identifier the value of a send
// statement / an element of a composite literal / the left side of an
// assignment" without threading a stack through every walk.
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// LocalVar resolves an expression (through parens) to the local variable
// it names, or nil: package-level variables, fields and non-identifiers
// all return nil.
func LocalVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = info.Defs[id].(*types.Var); !ok {
			return nil
		}
	}
	if v.IsField() || v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}
