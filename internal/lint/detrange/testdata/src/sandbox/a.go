package sandbox

import (
	"slices"
	"sort"
)

func bad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appending to keys while ranging over a map"
	}
	return keys
}

func badValues(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		if v > 0 {
			vals = append(vals, v) // want "appending to vals while ranging over a map"
		}
	}
	return vals
}

func badPackageLevel(m map[string]bool) {
	for k := range m {
		global = append(global, k) // want "appending to global while ranging over a map"
	}
}

var global []string

func sortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // redeemed by the sort below
	}
	sort.Strings(keys)
	return keys
}

func slicesSortAfter(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // redeemed by slices.Sort
	}
	slices.Sort(vals)
	return vals
}

func sortSliceAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // redeemed by sort.Slice
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortConverted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // redeemed even through a conversion
	}
	sort.Sort(sort.StringSlice(keys))
	return keys
}

func mapIndexTarget(m map[string]int, out map[string][]int) {
	for k, v := range m {
		out[k] = append(out[k], v) // per-key order: iteration order is irrelevant
	}
}

func declaredInside(m map[string]int) int {
	total := 0
	for _, v := range m {
		s := []int{}
		s = append(s, v) // s is loop-local: no cross-iteration accumulation
		total += s[0]
	}
	return total
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // ranging a slice preserves order
	}
	return out
}

func channelRange(ch chan int) []int {
	var out []int
	for v := range ch {
		out = append(out, v) // channels deliver in send order
	}
	return out
}
