// Package detrange reports map-range loops that build ordered slices.
// Go map iteration order is deliberately randomized, so appending to a
// slice while ranging over a map yields a different element order on
// every run — which in the optimizer and plan packages silently breaks
// plan determinism (stable topology enumeration, stable JSON encodings,
// reproducible branch-and-bound tie-breaks).
//
// A loop is exempt when the slice is later handed to a sort.* or
// slices.* call in the same function: sorting re-establishes a
// deterministic order, which is the repo's standard idiom (collect then
// sort). Appends into a map index (out[k] = append(out[k], v)) are also
// exempt — per-key order does not depend on iteration order — as are
// slices declared inside the loop body.
package detrange

import (
	"go/ast"
	"go/types"

	"seco/internal/lint"
)

// Analyzer flags nondeterministically ordered slices built from map
// ranges in the plan-producing packages.
var Analyzer = &lint.Analyzer{
	Name:  "detrange",
	Doc:   "flags slices built by appending inside range-over-map without a later sort",
	Scope: []string{"seco/internal/optimizer", "seco/internal/plan"},
	Run:   run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc inspects one function body. The whole body doubles as the
// window in which a later sort call redeems an append.
func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Info.Types[rng.X].Type; t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, target := range mapRangeAppends(pass, rng) {
			obj := identObj(pass, target)
			if obj == nil {
				continue
			}
			if sortedInFunc(pass, body, obj) {
				continue
			}
			pass.Reportf(target.Pos(),
				"appending to %s while ranging over a map yields nondeterministic order; sort it afterwards or range over sorted keys",
				target.Name)
		}
		return true
	})
}

// mapRangeAppends returns the identifiers of outer-scope slices that the
// range body grows via s = append(s, ...).
func mapRangeAppends(pass *lint.Pass, rng *ast.RangeStmt) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		target, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true // an index expression like out[k] = append(...) carries no order
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			return true
		}
		obj := identObj(pass, target)
		if obj == nil {
			return true
		}
		// Slices declared inside the loop do not accumulate across
		// iterations, so their order cannot leak the map's.
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			return true
		}
		out = append(out, target)
		return true
	})
	return out
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedInFunc reports whether obj is passed (possibly nested inside a
// conversion or composite) to a sort.* or slices.* call anywhere in the
// function body.
func sortedInFunc(pass *lint.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && identObj(pass, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// identObj resolves an identifier to its object, whether this mention
// uses or (re)declares it.
func identObj(pass *lint.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
