package ctxdeadline

import (
	"testing"

	"seco/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/deadbox")
}

func TestClean(t *testing.T) {
	linttest.RunClean(t, Analyzer, "testdata/src/deadclean")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"seco/cmd/secoserve":    true,
		"seco/internal/serve":   true,
		"seco/internal/engine":  false,
		"seco/internal/service": false,
		"seco/cmd/loadgen":      false,
	} {
		if got := Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
